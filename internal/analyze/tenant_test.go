package analyze

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func hostCmd(at sim.Time, tenant string, queue int, kind int64, dur sim.Duration, failed bool) obs.Event {
	return obs.Event{
		Time: at, Kind: obs.KindHostCmd, Chip: -1,
		Label: tenant, Depth: queue, Cycles: kind, Dur: dur, Err: failed,
	}
}

func TestTenantReportFromEvents(t *testing.T) {
	us := sim.Duration(1_000_000) // 1us in ps
	events := []obs.Event{
		hostCmd(0, "alpha", 0, 0, 10*us, false),
		hostCmd(sim.Time(us), "beta", 1, 1, 20*us, false),
		hostCmd(sim.Time(2*us), "alpha", 0, 0, 30*us, false),
		hostCmd(sim.Time(3*us), "alpha", 0, 2, 5*us, false),
		hostCmd(sim.Time(4*us), "beta", 1, 1, 0, true),
	}
	rep := TenantReportFromEvents(events)
	if rep == nil {
		t.Fatal("want report, got nil")
	}
	if got, want := len(rep.Rows), 2; got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	if rep.Span != 4*us {
		t.Errorf("span = %v, want %v", rep.Span, 4*us)
	}
	a, b := rep.Rows[0], rep.Rows[1]
	if a.Name != "alpha" || b.Name != "beta" {
		t.Fatalf("rows not sorted by name: %q, %q", a.Name, b.Name)
	}
	if a.Completed != 3 || a.Failed != 0 || a.Reads != 2 || a.Writes != 0 || a.Trims != 1 {
		t.Errorf("alpha = %+v", a)
	}
	if b.Completed != 1 || b.Failed != 1 || b.Writes != 2 {
		t.Errorf("beta = %+v", b)
	}
	// Failed commands are excluded from the latency summary.
	if b.Latency.Count != 1 || b.Latency.Mean != 20*us {
		t.Errorf("beta latency = %+v", b.Latency)
	}
	if a.Latency.Count != 3 || a.Latency.Max != 30*us {
		t.Errorf("alpha latency = %+v", a.Latency)
	}
	// Jain over completions {3, 1}: (4)^2 / (2 * 10) = 0.8.
	if math.Abs(rep.Fairness-0.8) > 1e-9 {
		t.Errorf("fairness = %v, want 0.8", rep.Fairness)
	}
	if a.Queue != 0 || b.Queue != 1 {
		t.Errorf("queues = %d, %d", a.Queue, b.Queue)
	}
}

func TestTenantReportNilWithoutHostCmds(t *testing.T) {
	events := []obs.Event{
		{Time: 0, Kind: obs.KindOpAdmitted, OpID: 1, Chip: 0, Label: "active"},
	}
	if rep := TenantReportFromEvents(events); rep != nil {
		t.Fatalf("want nil report for host-cmd-free trace, got %+v", rep)
	}
	if rep := TenantReportFromEvents(nil); rep != nil {
		t.Fatalf("want nil report for empty trace, got %+v", rep)
	}
}

func TestAnalyzeWiresTenantReport(t *testing.T) {
	us := sim.Duration(1_000_000)
	events := []obs.Event{
		hostCmd(0, "solo", 2, 0, 7*us, false),
		hostCmd(sim.Time(us), "solo", 2, 1, 9*us, false),
	}
	res := Analyze(events)
	if len(res.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(res.Runs))
	}
	rep := res.Runs[0].Tenants
	if rep == nil {
		t.Fatal("run 0 has no tenant report")
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Name != "solo" || rep.Rows[0].Completed != 2 {
		t.Fatalf("tenant report = %+v", rep)
	}

	// Both renderings carry the section; a host-cmd-free analysis
	// carries neither (golden stability).
	text := res.Render()
	if !strings.Contains(text, "tenant QoS (run 0)") || !strings.Contains(text, "solo") {
		t.Errorf("Render missing tenant section:\n%s", text)
	}
	csv := res.CSV()
	if !strings.Contains(csv, "run,tenant,queue,completed") {
		t.Errorf("CSV missing tenant section:\n%s", csv)
	}

	quiet := Analyze([]obs.Event{
		{Time: 0, Kind: obs.KindOpAdmitted, OpID: 1, Chip: 0, Label: "active"},
	})
	if strings.Contains(quiet.Render(), "tenant QoS") {
		t.Error("host-cmd-free Render grew a tenant section")
	}
	if strings.Contains(quiet.CSV(), "run,tenant,queue") {
		t.Error("host-cmd-free CSV grew a tenant section")
	}
}
