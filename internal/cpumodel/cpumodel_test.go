package cpumodel

import (
	"testing"

	"repro/internal/sim"
)

func TestNewRejectsBadFreq(t *testing.T) {
	if _, err := New(sim.NewKernel(), 0, Coro()); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := New(sim.NewKernel(), -5, RTOS()); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestCycleTime(t *testing.T) {
	k := sim.NewKernel()
	c, err := New(k, 1000, Coro()) // 1 GHz
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CycleTime(1000); got != sim.Microsecond {
		t.Errorf("1000 cycles at 1GHz = %v, want 1us", got)
	}
	c150, _ := New(k, 150, Coro())
	// 150 cycles at 150 MHz = 1 µs.
	if got := c150.CycleTime(150); got != sim.Microsecond {
		t.Errorf("150 cycles at 150MHz = %v, want 1us", got)
	}
}

func TestPollIterationCalibration(t *testing.T) {
	k := sim.NewKernel()
	coro, _ := New(k, 1000, Coro())
	// Fig. 11: the coroutine controller takes on the order of 30 µs per
	// polling cycle at 1 GHz.
	d := coro.CycleTime(Coro().PollIteration())
	if d < 25*sim.Microsecond || d > 35*sim.Microsecond {
		t.Errorf("Coro poll iteration at 1GHz = %v, want ≈30us", d)
	}
	rtos, _ := New(k, 1000, RTOS())
	dr := rtos.CycleTime(RTOS().PollIteration())
	if dr >= d/5 {
		t.Errorf("RTOS poll (%v) should be far faster than Coro (%v)", dr, d)
	}
}

func TestExecSerializes(t *testing.T) {
	k := sim.NewKernel()
	c, _ := New(k, 1000, RTOS())
	var done []sim.Time
	c.Exec(1000, func() { done = append(done, k.Now()) }) // 1 µs
	c.Exec(2000, func() { done = append(done, k.Now()) }) // queued: +2 µs
	k.Run()
	if len(done) != 2 {
		t.Fatalf("executions = %d", len(done))
	}
	if done[0] != sim.Time(sim.Microsecond) {
		t.Errorf("first exec at %v", done[0])
	}
	if done[1] != sim.Time(3*sim.Microsecond) {
		t.Errorf("second exec at %v, want 3us (serialized)", done[1])
	}
	st := c.Stats()
	if st.CyclesCharged != 3000 || st.Executions != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestExecAfterIdle(t *testing.T) {
	k := sim.NewKernel()
	c, _ := New(k, 1000, RTOS())
	c.Exec(1000, func() {})
	k.Run() // now = 1 µs, CPU idle
	k.After(9*sim.Microsecond, func() {
		c.Exec(1000, func() {
			if k.Now() != sim.Time(11*sim.Microsecond) {
				t.Errorf("exec after idle at %v, want 11us", k.Now())
			}
		})
	})
	k.Run()
}

func TestProfileNames(t *testing.T) {
	if Coro().Name != "Coro" || RTOS().Name != "RTOS" {
		t.Error("profile names wrong")
	}
}

func TestFreqScaling(t *testing.T) {
	k := sim.NewKernel()
	fast, _ := New(k, 1000, Coro())
	slow, _ := New(k, 150, Coro())
	if slow.CycleTime(30000) <= fast.CycleTime(30000) {
		t.Error("slower clock should take longer")
	}
	// 150 MHz is 1000/150 ≈ 6.7× slower.
	ratio := float64(slow.CycleTime(30000)) / float64(fast.CycleTime(30000))
	if ratio < 6.5 || ratio > 6.8 {
		t.Errorf("scaling ratio = %v", ratio)
	}
}
