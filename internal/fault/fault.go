// Package fault is the deterministic fault-injection harness for the
// BABOL rig: seedable campaign plans that perturb NAND array
// operations at the package boundary — stuck-busy LUNs, StatusFail
// storms on PROGRAM/ERASE, uncorrectable-ECC bursts keyed by row, and
// erratic tR jitter — so the controller's recovery paths (bounded
// polling, RESET recovery, chip offlining, read-only degradation) can
// be exercised and regression-tested.
//
// Faults surface only through what a real controller can observe:
// status bits, busy timing, and data contents. The plan itself is
// pure state driven by operation ordinals and row addresses, never by
// wall-clock time or global randomness, so a chaos run is exactly
// reproducible from its seed (see Randomized).
package fault

import (
	"sort"

	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
)

// StuckBusy wedges one chip: its AfterOps-th array operation (0-based,
// counting reads, programs, and erases together) never comes ready.
// If Recoverable, an ONFI RESET clears the condition and the chip
// resumes service; otherwise the chip stays busy through every RESET
// and the controller must offline it.
type StuckBusy struct {
	Chip        int
	AfterOps    int
	Recoverable bool
}

// FailStorm makes a run of PROGRAM/ERASE operations on one chip report
// StatusFail (the array is left unchanged). The storm covers the
// program/erase ordinals [FirstOp, FirstOp+Count); Count <= 0 makes it
// persistent — every program and erase from FirstOp on fails, which
// retires block after block until the chip's spares are exhausted.
type FailStorm struct {
	Chip    int
	FirstOp int
	Count   int
}

// ECCBurst corrupts reads of rows in [RowLow, RowHigh] on one chip
// beyond ECC's correction ability. Hits bounds how many reads corrupt
// before the burst clears; Hits <= 0 makes it persistent.
type ECCBurst struct {
	Chip    int
	RowLow  uint32
	RowHigh uint32
	Hits    int
}

// TRJitter stretches every EveryN-th read on one chip by Delay —
// erratic tR well past the nominal value, but still finite.
type TRJitter struct {
	Chip   int
	EveryN int
	Delay  sim.Duration
}

// Plan is one rig's fault campaign set. Campaigns address chips by the
// SSD's global chip index (channel*ways + way). The zero Plan injects
// nothing. Build a plan by hand for targeted regression tests or with
// Randomized for seeded chaos runs, then hand it to
// ssd.BuildConfig.Faults; the assembly binds one Injector per targeted
// LUN.
type Plan struct {
	Seed       int64
	StuckBusy  []StuckBusy
	FailStorms []FailStorm
	ECCBursts  []ECCBurst
	TRJitter   []TRJitter

	injectors map[int]*Injector
}

// Touched returns the sorted set of chips any campaign targets — the
// complement is the "surviving" set a soak test verifies data on.
func (p *Plan) Touched() []int {
	set := map[int]bool{}
	for _, c := range p.StuckBusy {
		set[c.Chip] = true
	}
	for _, c := range p.FailStorms {
		set[c.Chip] = true
	}
	for _, c := range p.ECCBursts {
		set[c.Chip] = true
	}
	for _, c := range p.TRJitter {
		set[c.Chip] = true
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Hits reports how many fault injections have fired across all chips.
func (p *Plan) Hits() uint64 {
	var n uint64
	for _, inj := range p.injectors {
		n += inj.hits
	}
	return n
}

// Injector builds (or returns, if already built) the per-LUN injector
// for one global chip index, or nil when no campaign targets it.
// Events for each fired fault go to tracer (which may be nil) tagged
// with localChip, matching the channel-local chip numbering the rest
// of the obs stream uses.
func (p *Plan) Injector(chip int, tracer obs.Tracer, localChip int) *Injector {
	if inj, ok := p.injectors[chip]; ok {
		return inj
	}
	inj := &Injector{tracer: tracer, chip: localChip}
	for _, c := range p.StuckBusy {
		if c.Chip == chip {
			stuck := c
			inj.stuck = &stuck
		}
	}
	for _, c := range p.FailStorms {
		if c.Chip == chip {
			inj.storms = append(inj.storms, c)
		}
	}
	for _, c := range p.ECCBursts {
		if c.Chip == chip {
			inj.bursts = append(inj.bursts, burstState{ECCBurst: c})
		}
	}
	for _, c := range p.TRJitter {
		if c.Chip == chip && c.EveryN > 0 {
			inj.jitter = append(inj.jitter, c)
		}
	}
	if inj.stuck == nil && len(inj.storms) == 0 && len(inj.bursts) == 0 && len(inj.jitter) == 0 {
		return nil
	}
	if p.injectors == nil {
		p.injectors = make(map[int]*Injector)
	}
	p.injectors[chip] = inj
	return inj
}

type burstState struct {
	ECCBurst
	used int
}

// Injector implements nand.FaultInjector for one LUN, consulting the
// plan's campaigns by operation ordinal and row address.
type Injector struct {
	tracer obs.Tracer
	chip   int

	ops   int // array-operation ordinal (reads + programs + erases)
	pe    int // program/erase ordinal
	reads int // read ordinal

	stuck       *StuckBusy
	stuckFired  bool
	stuckActive bool
	dead        bool
	storms      []FailStorm
	bursts      []burstState
	jitter      []TRJitter

	hits uint64
}

func (in *Injector) hit(now sim.Time, label string) {
	in.hits++
	if in.tracer != nil {
		in.tracer.Event(obs.Event{Time: now, Kind: obs.KindFault, Chip: in.chip, Label: label})
	}
}

func (in *Injector) checkStuck(now sim.Time, fo *nand.FaultOutcome) {
	if in.stuck != nil && !in.stuckFired && in.ops > in.stuck.AfterOps {
		in.stuckFired = true
		in.stuckActive = true
		fo.Stuck = true
		in.hit(now, "stuck-busy")
	}
}

func (in *Injector) checkStorm(now sim.Time, fo *nand.FaultOutcome) {
	for _, s := range in.storms {
		if in.pe < s.FirstOp {
			continue
		}
		if s.Count > 0 && in.pe >= s.FirstOp+s.Count {
			continue
		}
		fo.Fail = true
		in.hit(now, "fail-storm")
		return
	}
}

// OnRead implements nand.FaultInjector.
func (in *Injector) OnRead(now sim.Time, row uint32) nand.FaultOutcome {
	var fo nand.FaultOutcome
	in.ops++
	in.reads++
	in.checkStuck(now, &fo)
	for i := range in.bursts {
		b := &in.bursts[i]
		if row < b.RowLow || row > b.RowHigh {
			continue
		}
		if b.Hits > 0 && b.used >= b.Hits {
			continue
		}
		b.used++
		fo.Corrupt = true
		in.hit(now, "ecc-burst")
		break
	}
	for _, j := range in.jitter {
		if in.reads%j.EveryN == 0 {
			fo.Delay += j.Delay
			in.hit(now, "tr-jitter")
		}
	}
	return fo
}

// OnProgram implements nand.FaultInjector.
func (in *Injector) OnProgram(now sim.Time, row uint32) nand.FaultOutcome {
	var fo nand.FaultOutcome
	in.ops++
	in.pe++
	in.checkStuck(now, &fo)
	in.checkStorm(now, &fo)
	return fo
}

// OnErase implements nand.FaultInjector.
func (in *Injector) OnErase(now sim.Time, block int) nand.FaultOutcome {
	var fo nand.FaultOutcome
	in.ops++
	in.pe++
	in.checkStuck(now, &fo)
	in.checkStorm(now, &fo)
	return fo
}

// OnReset implements nand.FaultInjector: a recoverable stuck condition
// clears; an unrecoverable one leaves the chip dead through this and
// every future RESET.
func (in *Injector) OnReset(now sim.Time) bool {
	if in.stuckActive {
		in.stuckActive = false
		if !in.stuck.Recoverable {
			in.dead = true
		}
	}
	return in.dead
}

// Hits reports how many faults this injector has fired.
func (in *Injector) Hits() uint64 { return in.hits }
