package nand

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/onfi"
	"repro/internal/sim"
)

// TestLatchStormNeverPanics drives the LUN decoder with random latch
// sequences, data bursts, and time jumps. Protocol errors are expected
// and fine; panics, stuck-busy states, or corrupted bookkeeping are not.
// This is the robustness property a real controller relies on: no
// command sequence, however buggy the firmware, may wedge the model.
func TestLatchStormNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d panicked: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		l, err := NewLUN(smallParams())
		if err != nil {
			return false
		}
		now := sim.Time(0)
		interesting := []byte{
			0x00, 0x30, 0x31, 0x3F, 0x05, 0xE0, 0x80, 0x85, 0x10, 0x15,
			0x60, 0xD0, 0x70, 0x78, 0x90, 0xEC, 0xEF, 0xEE, 0xFF, 0xA2,
			0x61, 0xD2, 0x35,
		}
		for i := 0; i < 400; i++ {
			switch rng.Intn(5) {
			case 0: // command latch
				_ = l.Latch(now, []onfi.Latch{onfi.CmdLatch(onfi.Cmd(interesting[rng.Intn(len(interesting))]))})
			case 1: // address latch burst
				n := 1 + rng.Intn(6)
				ls := make([]onfi.Latch, n)
				for j := range ls {
					ls[j] = onfi.AddrLatch(byte(rng.Intn(256)))
				}
				_ = l.Latch(now, ls)
			case 2: // data in
				buf := make([]byte, 1+rng.Intn(64))
				_ = l.DataIn(now, buf)
			case 3: // data out
				_, _ = l.DataOut(now, 1+rng.Intn(64))
			case 4: // time advances (lets busy states expire)
				now = now.Add(sim.Duration(rng.Intn(int(l.Params().TBERS))))
			}
		}
		// After the storm the LUN must still be recoverable by RESET.
		now = now.Add(l.Params().TBERS)
		if err := l.Latch(now, []onfi.Latch{onfi.CmdLatch(onfi.CmdReset)}); err != nil {
			t.Logf("seed %d: reset rejected: %v", seed, err)
			return false
		}
		now = now.Add(sim.Millisecond)
		if !l.Ready(now) {
			t.Logf("seed %d: not ready after reset", seed)
			return false
		}
		// And a clean READ must still work end to end.
		if err := l.SeedPage(onfi.RowAddr{Block: 1}, []byte{0x42}); err != nil {
			return false
		}
		var latches []onfi.Latch
		latches = append(latches, onfi.CmdLatch(onfi.CmdRead1))
		latches = append(latches, l.Params().Geometry.AddrLatches(onfi.Addr{Row: onfi.RowAddr{Block: 1}})...)
		latches = append(latches, onfi.CmdLatch(onfi.CmdRead2))
		if err := l.Latch(now, latches); err != nil {
			t.Logf("seed %d: post-reset read rejected: %v", seed, err)
			return false
		}
		now = now.Add(2 * l.Params().TR)
		data, err := l.DataOut(now, 1)
		if err != nil {
			t.Logf("seed %d: post-reset data out: %v", seed, err)
			return false
		}
		return data[0] == 0x42
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestParamPageParserNeverPanics feeds the parameter-page parser random
// bytes: it must reject or accept, never crash.
func TestParamPageParserNeverPanics(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(size)%600)
		rng.Read(buf)
		_, _ = ParseParameterPage(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
