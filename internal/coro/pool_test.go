package coro

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitGoroutines polls until the process goroutine count drops to at
// most want (goroutine exit is asynchronous after the final handshake).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine count stuck at %d, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolReusesGoroutine(t *testing.T) {
	p := NewPool()
	for i := 0; i < 10; i++ {
		ran := false
		c := p.Get(func(y *Yielder) error {
			ran = true
			y.Yield()
			return nil
		})
		if c.Finished() {
			t.Fatal("finished before first resume")
		}
		if c.Resume() {
			t.Fatal("finished at first yield")
		}
		if !c.Resume() {
			t.Fatal("not finished after final resume")
		}
		if !ran || c.Err() != nil {
			t.Fatalf("ran=%v err=%v", ran, c.Err())
		}
		if p.Parked() != 1 {
			t.Fatalf("iteration %d: parked = %d, want 1", i, p.Parked())
		}
	}
	if p.Spawned() != 1 {
		t.Errorf("spawned %d workers for 10 sequential coroutines, want 1", p.Spawned())
	}
	p.Close()
}

func TestPoolSpawnsPerConcurrentCoroutine(t *testing.T) {
	p := NewPool()
	defer p.Close()
	mk := func() *Coroutine {
		return p.Get(func(y *Yielder) error {
			y.Yield()
			return nil
		})
	}
	a, b := mk(), mk()
	a.Resume()
	b.Resume() // both suspended: two live workers
	if p.Spawned() != 2 {
		t.Fatalf("spawned = %d, want 2", p.Spawned())
	}
	a.Resume()
	b.Resume()
	if p.Parked() != 2 {
		t.Fatalf("parked = %d, want 2", p.Parked())
	}
	// Sequential churn reuses the two parked workers, no new spawns.
	for i := 0; i < 5; i++ {
		c := mk()
		c.Resume()
		c.Resume()
	}
	if p.Spawned() != 2 {
		t.Errorf("spawned grew to %d under sequential reuse", p.Spawned())
	}
}

// An aborted pooled coroutine must release its goroutine back to the
// pool in a reusable state: the abortSignal unwind is contained by the
// worker loop, and the next Get gets a clean coroutine.
func TestPoolAbortParksWorker(t *testing.T) {
	p := NewPool()
	defer p.Close()
	cleaned := false
	c := p.Get(func(y *Yielder) error {
		defer func() { cleaned = true }()
		for {
			y.Yield()
		}
	})
	c.Resume()
	c.Abort()
	if !c.Finished() || !errors.Is(c.Err(), ErrAborted) {
		t.Fatalf("finished=%v err=%v", c.Finished(), c.Err())
	}
	if !cleaned {
		t.Error("deferred cleanup did not run on abort")
	}
	if p.Parked() != 1 {
		t.Fatalf("parked = %d after abort, want 1", p.Parked())
	}
	// Double-Abort and Abort-after-finish are no-ops.
	c.Abort()
	c.Abort()
	if p.Parked() != 1 {
		t.Fatalf("parked = %d after double abort, want 1", p.Parked())
	}
	// The recycled worker runs a fresh body with clean state.
	c2 := p.Get(func(y *Yielder) error { return nil })
	if c2.Err() != nil || c2.Finished() {
		t.Fatal("recycled coroutine carries stale state")
	}
	if !c2.Resume() {
		t.Fatal("recycled coroutine did not finish")
	}
	if c2.Err() != nil {
		t.Fatalf("recycled coroutine err = %v", c2.Err())
	}
	if p.Spawned() != 1 {
		t.Errorf("abort leaked the worker: spawned = %d", p.Spawned())
	}
}

func TestPoolAbortBeforeFirstResume(t *testing.T) {
	p := NewPool()
	defer p.Close()
	ran := false
	c := p.Get(func(y *Yielder) error {
		ran = true
		return nil
	})
	c.Abort()
	if !c.Finished() || !errors.Is(c.Err(), ErrAborted) {
		t.Fatalf("finished=%v err=%v", c.Finished(), c.Err())
	}
	if ran {
		t.Fatal("aborted coroutine body ran")
	}
	if p.Parked() != 1 {
		t.Fatalf("parked = %d, want 1", p.Parked())
	}
}

// A panic in a pooled coroutine body surfaces as an error (with the
// stack) and leaves the worker reusable.
func TestPoolPanicKeepsWorkerReusable(t *testing.T) {
	p := NewPool()
	defer p.Close()
	c := p.Get(func(y *Yielder) error {
		poolPanicHelper()
		return nil
	})
	if !c.Resume() {
		t.Fatal("panicking coroutine not finished")
	}
	if c.Err() == nil || !strings.Contains(c.Err().Error(), "poolPanicHelper") {
		t.Fatalf("panic error lost the stack: %v", c.Err())
	}
	if p.Parked() != 1 {
		t.Fatalf("parked = %d after panic, want 1", p.Parked())
	}
	c2 := p.Get(func(y *Yielder) error { return nil })
	c2.Resume()
	if c2.Err() != nil {
		t.Fatalf("worker unusable after panic: %v", c2.Err())
	}
	if p.Spawned() != 1 {
		t.Errorf("panic leaked the worker: spawned = %d", p.Spawned())
	}
}

func poolPanicHelper() { panic("pooled kaboom") }

func TestPoolCloseStopsParkedWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool()
	var cs []*Coroutine
	for i := 0; i < 8; i++ {
		cs = append(cs, p.Get(func(y *Yielder) error {
			y.Yield()
			return nil
		}))
	}
	for _, c := range cs {
		c.Resume() // all suspended: 8 live workers
	}
	for _, c := range cs {
		c.Resume() // all finished and parked
	}
	if p.Parked() != 8 {
		t.Fatalf("parked = %d, want 8", p.Parked())
	}
	p.Close()
	p.Close() // idempotent
	waitGoroutines(t, base)
}

// A coroutine still in flight when the pool closes finishes normally
// and its worker exits instead of re-parking.
func TestPoolCloseWithInFlightCoroutine(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool()
	c := p.Get(func(y *Yielder) error {
		y.Yield()
		return nil
	})
	c.Resume() // suspended, not parked
	p.Close()
	if !c.Resume() {
		t.Fatal("in-flight coroutine did not finish after Close")
	}
	if p.Parked() != 0 {
		t.Fatalf("parked = %d on a closed pool", p.Parked())
	}
	waitGoroutines(t, base)
}

func TestPoolGetAfterCloseFallsBackToNew(t *testing.T) {
	p := NewPool()
	p.Close()
	c := p.Get(func(y *Yielder) error { return nil })
	if !c.Resume() {
		t.Fatal("fallback coroutine did not run")
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if p.Parked() != 0 {
		t.Fatalf("closed pool parked a worker")
	}
}

// TestPoolStressConcurrentRigs is the -race workout: many "rigs" (one
// goroutine each, as in parallel sweeps), each owning a private pool and
// churning coroutines through finish, abort, panic, and nested-yield
// paths. Pools share nothing; the race detector confirms the handshake
// ordering claims in the Pool contract.
func TestPoolStressConcurrentRigs(t *testing.T) {
	const rigs = 8
	const opsPerRig = 300
	done := make(chan error, rigs)
	for r := 0; r < rigs; r++ {
		r := r
		go func() {
			p := NewPool()
			defer p.Close()
			for i := 0; i < opsPerRig; i++ {
				switch i % 4 {
				case 0: // run to completion across yields
					c := p.Get(func(y *Yielder) error {
						y.Yield()
						y.Yield()
						return nil
					})
					for !c.Resume() {
					}
					if c.Err() != nil {
						done <- fmt.Errorf("rig %d op %d: %v", r, i, c.Err())
						return
					}
				case 1: // abort mid-flight
					c := p.Get(func(y *Yielder) error {
						for {
							y.Yield()
						}
					})
					c.Resume()
					c.Abort()
					if !errors.Is(c.Err(), ErrAborted) {
						done <- fmt.Errorf("rig %d op %d: err=%v", r, i, c.Err())
						return
					}
				case 2: // panic
					c := p.Get(func(y *Yielder) error { panic("stress") })
					c.Resume()
					if c.Err() == nil {
						done <- fmt.Errorf("rig %d op %d: panic lost", r, i)
						return
					}
				case 3: // error return
					sentinel := errors.New("boom")
					c := p.Get(func(y *Yielder) error { return sentinel })
					c.Resume()
					if c.Err() != sentinel {
						done <- fmt.Errorf("rig %d op %d: err=%v", r, i, c.Err())
						return
					}
				}
			}
			if p.Spawned() > 1 {
				done <- fmt.Errorf("rig %d: %d workers spawned for sequential ops", r, p.Spawned())
				return
			}
			done <- nil
		}()
	}
	for r := 0; r < rigs; r++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestAllocGateCoroPool is the allocation-regression gate for pooled
// coroutine turnover: a full Get → run → finish cycle on a warmed pool
// must allocate nothing (the goroutine, handshake channels, handle, and
// Yielder are all recycled).
func TestAllocGateCoroPool(t *testing.T) {
	p := NewPool()
	defer p.Close()
	fn := func(y *Yielder) error { return nil }
	// Warm: spawn the one worker outside the measured region.
	c := p.Get(fn)
	c.Resume()
	allocs := testing.AllocsPerRun(200, func() {
		c := p.Get(fn)
		c.Resume()
	})
	if allocs != 0 {
		t.Errorf("pooled coroutine cycle allocates %.1f objects, want 0", allocs)
	}
}
