// Package babol is the public face of the BABOL software-defined NAND
// flash controller library: a faithful, fully simulated reproduction of
// "BABOL: A Software-Defined NAND Flash Controller" (MICRO 2024).
//
// A System bundles everything needed to run flash operations against
// simulated ONFI packages: a deterministic virtual-time kernel, a
// channel bus with attached LUNs, a DRAM staging buffer, a firmware CPU
// model, and the BABOL controller itself. Operations — standard READ,
// PROGRAM, and ERASE, plus the advanced variants the paper motivates
// (pSLC, cache read, read retry, gang/RAIL reads, erase suspension) —
// are ordinary sequential Go functions written against Ctx, BABOL's
// software environment.
//
// Quick start:
//
//	sys, _ := babol.NewSystem(babol.SystemConfig{})
//	defer sys.Close()
//	sys.Chip(0).SeedPage(onfi.RowAddr{Block: 1}, []byte("hello"))
//	sys.Start(babol.OpRequest{
//	    Func: babol.ReadPage(onfi.Addr{Row: onfi.RowAddr{Block: 1}}, 0, 16),
//	    Chip: 0,
//	    Done: func(err error) { /* page now at DRAM address 0 */ },
//	})
//	sys.Run()
//
// The deeper layers remain importable for advanced use: internal/core
// (controller), internal/ops (operation library), internal/nand (package
// models), internal/ssd (full-drive assembly), internal/exp (the paper's
// experiments).
package babol

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/dram"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/wave"
)

// Re-exported core types: these are the API operations are written
// against.
type (
	// Ctx is the software environment handed to an operation.
	Ctx = core.Ctx
	// OpFunc is a flash operation.
	OpFunc = core.OpFunc
	// OpRequest asks the controller to run one operation.
	OpRequest = core.OpRequest
	// Params describes a NAND package.
	Params = nand.Params
)

// Env selects the software environment the controller firmware runs on.
type Env uint8

const (
	// EnvRTOS is the FreeRTOS-style environment: lean scheduling,
	// usable on slow cores, more demanding to program against.
	EnvRTOS Env = iota
	// EnvCoro is the coroutine-style environment: programmer-friendly
	// but heavier, wanting a fast core.
	EnvCoro
)

func (e Env) String() string {
	if e == EnvRTOS {
		return "RTOS"
	}
	return "Coro"
}

// SystemConfig describes a single-channel BABOL deployment. The zero
// value gives a Hynix-preset channel (8 LUNs) at 200 MT/s driven by the
// RTOS environment on a 1 GHz core, with waveform capture enabled.
type SystemConfig struct {
	// Package selects the NAND preset; default Hynix (Table I).
	Package Params
	// PerChip, when set, customizes each chip instance (e.g. per-board
	// DQS phase variation for calibration demos). It receives the chip
	// index and the base Package and returns the instance's parameters.
	PerChip func(i int, base Params) Params
	// Ways is the LUN count on the channel; default: the preset wiring.
	Ways int
	// RateMT is the channel speed in megatransfers/s; default 200.
	RateMT int
	// Env selects the software environment; default EnvRTOS.
	Env Env
	// CPUMHz is the firmware clock; default 1000.
	CPUMHz int
	// DRAMBytes sizes the staging buffer; default 4 MiB.
	DRAMBytes int
	// DisableCapture turns off the waveform recorder.
	DisableCapture bool
	// TaskQueue and TxnQueue override the schedulers (defaults: FIFO
	// task scheduling and issue-first transaction scheduling).
	TaskQueue sched.TaskQueue
	TxnQueue  sched.TxnQueue
}

// System is a ready-to-use BABOL channel: kernel, bus, packages, DRAM,
// CPU model, and controller.
type System struct {
	kernel *sim.Kernel
	ch     *bus.Channel
	mem    *dram.Buffer
	cpu    *cpumodel.CPU
	ctrl   *core.Controller
	rec    *wave.Recorder
}

// NewSystem assembles a System per cfg.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Package.Name == "" {
		cfg.Package = nand.Hynix()
	}
	if cfg.Ways == 0 {
		cfg.Ways = cfg.Package.LUNsPerChannel
	}
	if cfg.RateMT == 0 {
		cfg.RateMT = 200
	}
	if cfg.CPUMHz == 0 {
		cfg.CPUMHz = 1000
	}
	if cfg.DRAMBytes == 0 {
		cfg.DRAMBytes = 4 << 20
	}

	k := sim.NewKernel()
	var rec *wave.Recorder
	if !cfg.DisableCapture {
		rec = wave.NewRecorder()
	}
	ch, err := bus.New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: cfg.RateMT}, onfi.DefaultTiming(), rec)
	if err != nil {
		return nil, fmt.Errorf("babol: %w", err)
	}
	for i := 0; i < cfg.Ways; i++ {
		params := cfg.Package
		if cfg.PerChip != nil {
			params = cfg.PerChip(i, params)
		}
		lun, err := nand.NewLUN(params)
		if err != nil {
			return nil, fmt.Errorf("babol: %w", err)
		}
		ch.Attach(lun)
	}
	profile := cpumodel.RTOS()
	if cfg.Env == EnvCoro {
		profile = cpumodel.Coro()
	}
	cpu, err := cpumodel.New(k, cfg.CPUMHz, profile)
	if err != nil {
		return nil, fmt.Errorf("babol: %w", err)
	}
	mem := dram.New(cfg.DRAMBytes)
	ctrl, err := core.New(core.Config{
		Kernel: k, Channel: ch, DRAM: mem, CPU: cpu,
		TaskQueue: cfg.TaskQueue, TxnQueue: cfg.TxnQueue,
	})
	if err != nil {
		return nil, fmt.Errorf("babol: %w", err)
	}
	return &System{kernel: k, ch: ch, mem: mem, cpu: cpu, ctrl: ctrl, rec: rec}, nil
}

// Start submits an operation and returns its ID. Done fires in virtual
// time during Run.
func (s *System) Start(req OpRequest) uint64 { return s.ctrl.Start(req) }

// Run advances virtual time until all scheduled work drains.
func (s *System) Run() { s.kernel.Run() }

// RunFor advances virtual time by d.
func (s *System) RunFor(d sim.Duration) { s.kernel.RunFor(d) }

// Now reports the current virtual time.
func (s *System) Now() sim.Time { return s.kernel.Now() }

// Chip returns LUN i for seeding, peeking, and wear control.
func (s *System) Chip(i int) *nand.LUN { return s.ch.Chip(i) }

// Chips reports the channel width.
func (s *System) Chips() int { return s.ch.Chips() }

// DRAM returns the staging buffer operations DMA against.
func (s *System) DRAM() *dram.Buffer { return s.mem }

// Controller exposes the underlying controller for stats and advanced
// composition.
func (s *System) Controller() *core.Controller { return s.ctrl }

// Kernel exposes the simulation kernel for custom event scheduling.
func (s *System) Kernel() *sim.Kernel { return s.kernel }

// Waveform returns the captured channel trace (nil if capture disabled).
func (s *System) Waveform() *wave.Recorder { return s.rec }

// Close aborts in-flight operations and releases resources.
func (s *System) Close() { s.ctrl.Close() }

// Package presets (Table I).
var (
	// Hynix returns the Hynix module preset: tR 100 µs, 8 LUNs/channel.
	Hynix = nand.Hynix
	// Toshiba returns the Toshiba module preset: tR 78 µs, 8 LUNs/channel.
	Toshiba = nand.Toshiba
	// Micron returns the Micron module preset: tR 53 µs, 2 LUNs/channel.
	Micron = nand.Micron
)

// The operation library (paper Figure 8 and §IV-§V extensions).
var (
	// ReadPage is the READ with Column Address Change (Algorithm 2).
	ReadPage = ops.ReadPage
	// ReadPageSLC is the pseudo-SLC READ (Algorithm 3).
	ReadPageSLC = ops.ReadPageSLC
	// ReadPageFixedWait is the naive fixed-tR READ variant.
	ReadPageFixedWait = ops.ReadPageFixedWait
	// ProgramPage is the PAGE PROGRAM operation.
	ProgramPage = ops.ProgramPage
	// ProgramPageSLC is the pSLC PROGRAM variation.
	ProgramPageSLC = ops.ProgramPageSLC
	// EraseBlock is the BLOCK ERASE operation.
	EraseBlock = ops.EraseBlock
	// ReadID is the READ ID operation.
	ReadID = ops.ReadID
	// Reset is the RESET operation.
	Reset = ops.Reset
	// SetFeature and GetFeature drive the SET/GET FEATURES registers.
	SetFeature = ops.SetFeature
	GetFeature = ops.GetFeature
	// CacheReadPages streams consecutive pages with READ CACHE.
	CacheReadPages = ops.CacheReadPages
	// ReadWithRetry walks the vendor read-retry voltage table.
	ReadWithRetry = ops.ReadWithRetry
	// GangRead and GangProgram are the RAIL-style replicated operations.
	GangRead    = ops.GangRead
	GangProgram = ops.GangProgram
	// EraseWithSuspend services an urgent read inside a block erase.
	EraseWithSuspend = ops.EraseWithSuspend
	// CopybackPage moves a page inside one LUN without channel traffic.
	CopybackPage = ops.CopybackPage
	// ReadParameterPage fetches and validates the ONFI self-description.
	ReadParameterPage = ops.ReadParameterPage
	// CalibratePhase trims the per-package DQS sampling phase (§IV-C).
	CalibratePhase = ops.CalibratePhase
	// InterruptibleErase erases while serving urgent reads mid-erase.
	InterruptibleErase = ops.InterruptibleErase
	// MPReadPages, MPProgramPages, and MPEraseBlocks run one page/block
	// per plane concurrently, sharing a single array time.
	MPReadPages    = ops.MPReadPages
	MPProgramPages = ops.MPProgramPages
	MPEraseBlocks  = ops.MPEraseBlocks
	// BootSequence initializes a freshly attached package.
	BootSequence = ops.BootSequence
	// ReadStatus issues one READ STATUS from inside an operation.
	ReadStatus = ops.ReadStatus
)
