//go:build bufdebug

package pagebuf

import (
	"fmt"
	"sync/atomic"
)

// PoisonByte fills every released payload so a reader holding a stale
// alias sees an unmistakable pattern instead of plausible data.
const PoisonByte = 0xDB

// DebugEnabled reports whether the bufdebug build tag is active.
const DebugEnabled = true

// debugState tracks liveness per handle. released is accessed atomically
// so racing misuse panics rather than corrupting the flag itself.
type debugState struct {
	released atomic.Bool
}

func (b *Buf) checkLive(op string) {
	if b.dbg.released.Load() {
		panic(fmt.Sprintf("pagebuf: %s on released buffer (size %d): use-after-release or double-release", op, len(b.data)))
	}
}

func (b *Buf) onGet() {
	b.dbg.released.Store(false)
}

func (b *Buf) onRelease() {
	for i := range b.data {
		b.data[i] = PoisonByte
	}
	if b.dbg.released.Swap(true) {
		panic(fmt.Sprintf("pagebuf: double release of buffer (size %d)", len(b.data)))
	}
}
