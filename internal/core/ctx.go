package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/coro"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/onfi"
	"repro/internal/sim"
	"repro/internal/txn"
)

// opState tracks one admitted operation. It implements sched.Task.
type opState struct {
	id   uint64
	req  OpRequest
	ctrl *Controller
	co   *coro.Coroutine
	ctx  *Ctx
	// admitFn/wakeFn/runFn are this state's admission, sleep-wake, and
	// coroutine-body callbacks, created at most once per pooled state so
	// repeated admission passes, sleeps, and reuses charge no fresh
	// closures. Each reads the state's current fields, which keeps it
	// valid when the controller recycles the state for a later operation.
	admitFn func()
	wakeFn  func()
	runFn   func(*coro.Yielder) error
	// wakeExtra is charged on top of the context switch at the next
	// resume (e.g. poll-result decode after a completed transaction).
	wakeExtra int64
	// staged marks an operation pre-admitted behind a chip's active
	// operation; its first transaction is withheld in heldTxn until the
	// chip frees. submittedAny records whether any transaction was
	// already released (only the first is ever gated).
	staged       bool
	submittedAny bool
	heldTxn      *txn.Transaction
	// startedAt stamps Start() for latency accounting.
	startedAt sim.Time
	// chipsCache memoizes chips(); chipArr backs it for the common
	// single-chip case so the cache costs no allocation.
	chipsCache []int
	chipArr    [1]int
}

func (s *opState) TaskID() uint64    { return s.id }
func (s *opState) TaskChip() int     { return s.req.Chip }
func (s *opState) TaskPriority() int { return s.req.Priority }

// reset re-arms a recycled state for a fresh operation. The pre-bound
// callbacks (admitFn, wakeFn, runFn, txnBox.Done) are kept: they read
// the fields assigned here.
func (s *opState) reset(id uint64, req OpRequest, now sim.Time) {
	s.id = id
	s.req = req
	s.startedAt = now
	s.co = nil
	s.wakeExtra = 0
	s.staged = false
	s.submittedAny = false
	s.heldTxn = nil
	s.chipsCache = nil
	s.ctx.reset()
}

// chips lists every chip the operation needs admitted.
func (s *opState) chips() []int {
	if s.chipsCache == nil {
		if len(s.req.ExtraChips) == 0 {
			s.chipArr[0] = s.req.Chip
			s.chipsCache = s.chipArr[:]
		} else {
			s.chipsCache = append([]int{s.req.Chip}, s.req.ExtraChips...)
		}
	}
	return s.chipsCache
}

// pendingKind is the reason an operation yielded.
type pendingKind uint8

const (
	pendNone pendingKind = iota
	pendSubmit
	pendSleep
)

// Ctx is the software environment handed to an operation: the API for
// composing µFSM instructions into transactions (paper §V). All methods
// must be called from inside the operation function.
type Ctx struct {
	st   *opState
	ctrl *Controller
	y    *coro.Yielder

	instrs   []txn.Instr
	selected bool

	// Transaction-building storage, recycled submit-to-submit: txnBox is
	// the one Transaction value every Submit of this operation reuses,
	// latchArena backs the latch bursts the accumulated instructions
	// point into, and capBuf receives captured bytes. All three are safe
	// to recycle because a submitted transaction is fully consumed
	// (executed and delivered) before the operation resumes to build the
	// next one; Result.Captured is likewise only valid until the next
	// Submit.
	txnBox     txn.Transaction
	latchArena []onfi.Latch
	capBuf     []byte

	pending    pendingKind
	pendingTxn *txn.Transaction
	sleepFor   sim.Duration
	result     txn.Result

	// poll-resubmission tracking: a capture transaction submitted right
	// after another capture transaction *with the same leading command*
	// is a polling loop iteration. The command signature distinguishes
	// back-to-back capture phases of different kinds (READ ID followed
	// by READ STATUS is not a resubmission), and an intervening
	// non-capture submit or Sleep breaks the loop.
	lastWasCapture bool
	lastCaptureCmd int
	pollResubmit   bool
}

// reset clears per-operation context state while keeping the recycled
// storage (instruction slice, latch arena, capture buffer) and the
// bound transaction-completion callback.
func (x *Ctx) reset() {
	x.y = nil
	x.instrs = x.instrs[:0]
	x.selected = false
	x.latchArena = x.latchArena[:0]
	x.capBuf = x.capBuf[:0]
	x.pending = pendNone
	x.pendingTxn = nil
	x.sleepFor = 0
	x.result = txn.Result{}
	x.lastWasCapture = false
	x.lastCaptureCmd = 0
	x.pollResubmit = false
}

// OpID returns the operation's controller-assigned ID.
func (x *Ctx) OpID() uint64 { return x.st.id }

// ChipIndex returns the operation's primary chip.
func (x *Ctx) ChipIndex() int { return x.st.req.Chip }

// Now returns the current virtual time.
func (x *Ctx) Now() sim.Time { return x.ctrl.k.Now() }

// Params returns the primary chip's NAND parameters (geometry, timings).
func (x *Ctx) Params() nand.Params {
	return x.ctrl.ch.Chip(x.st.req.Chip).Params()
}

// Geometry returns the primary chip's geometry.
func (x *Ctx) Geometry() onfi.Geometry { return x.Params().Geometry }

// Chip emits a C/E Control instruction selecting the given chips for the
// instructions that follow within the current transaction.
func (x *Ctx) Chip(mask bus.ChipMask) {
	x.instrs = append(x.instrs, txn.ChipControl(mask))
	x.selected = true
}

// selectDefault ensures the primary chip is selected if the operation
// hasn't chosen explicitly.
func (x *Ctx) selectDefault() {
	if !x.selected {
		x.Chip(bus.Mask(x.st.req.Chip))
	}
}

// CmdAddr emits a Command/Address Writer instruction: one latch burst.
// The burst is copied into the context's latch arena, so callers may
// build it in stack storage.
func (x *Ctx) CmdAddr(latches ...onfi.Latch) {
	x.selectDefault()
	base := len(x.latchArena)
	x.latchArena = append(x.latchArena, latches...)
	burst := x.latchArena[base:len(x.latchArena):len(x.latchArena)]
	x.instrs = append(x.instrs, txn.CmdAddr(burst))
}

// Cmd is shorthand for a single command latch.
func (x *Ctx) Cmd(c onfi.Cmd) { x.CmdAddr(onfi.CmdLatch(c)) }

// WriteData emits a Data Writer + Packetizer instruction: n bytes from
// DRAM address addr into the selected chips' page registers.
func (x *Ctx) WriteData(addr, n int) {
	x.selectDefault()
	x.instrs = append(x.instrs, txn.DataWrite(addr, n))
}

// ReadData emits a Data Reader + Packetizer instruction: n bytes from the
// selected chip into DRAM at addr.
func (x *Ctx) ReadData(addr, n int) {
	x.selectDefault()
	x.instrs = append(x.instrs, txn.DataRead(addr, n, false))
}

// ReadCapture emits a Data Reader instruction whose bytes are returned in
// the submit result instead of DMA-ed to DRAM (status/ID/feature reads).
func (x *Ctx) ReadCapture(n int) {
	x.selectDefault()
	x.instrs = append(x.instrs, txn.DataRead(-1, n, true))
}

// Wait emits a Timer instruction holding the channel for d (tADL-style
// inter-segment delays that must keep the bus quiet).
func (x *Ctx) Wait(d sim.Duration) {
	x.instrs = append(x.instrs, txn.TimerWait(d))
}

// Submit bundles the accumulated instructions into a transaction,
// enqueues it for the transaction scheduler, and suspends the operation
// until the hardware has executed it — the paper's
// add_transaction(...) / co_await pair. It returns the execution result.
func (x *Ctx) Submit() txn.Result { return x.submit(false) }

// SubmitFinal is Submit for an operation's statically known last
// transaction (e.g. a READ's data transfer). The hardware opens the
// chip's gate when it completes, so a staged successor starts instantly.
func (x *Ctx) SubmitFinal() txn.Result { return x.submit(true) }

func (x *Ctx) submit(final bool) txn.Result {
	if len(x.instrs) == 0 {
		return txn.Result{Err: fmt.Errorf("core: submit with no instructions")}
	}
	capture := false
	for _, in := range x.instrs {
		if in.Kind == txn.KindDataRead && in.Capture {
			capture = true
			break
		}
	}
	cmd := leadingCmd(x.instrs)
	x.pollResubmit = capture && x.lastWasCapture && cmd >= 0 && cmd == x.lastCaptureCmd
	x.lastWasCapture = capture
	x.lastCaptureCmd = cmd
	// Reuse the context's transaction box: the previous submit's
	// transaction was executed and delivered before the operation
	// resumed, so nothing references it anymore. Done was bound once at
	// activation.
	tx := &x.txnBox
	tx.ID = 0
	tx.OpID = x.st.id
	tx.Chip = x.st.req.Chip
	tx.Priority = x.st.req.Priority
	tx.Final = final
	tx.Instrs = x.instrs
	tx.CapBuf = x.capBuf
	x.selected = false
	x.pending = pendSubmit
	x.pendingTxn = tx
	x.y.Yield()
	x.pending = pendNone
	// The executor may have grown the capture buffer past our backing
	// store; adopt the larger one for the next submit.
	if cap(x.result.Captured) > cap(x.capBuf) {
		x.capBuf = x.result.Captured[:0]
	}
	// The executed transaction no longer references the instruction
	// slice or latch arena; recycle both for the next build.
	x.instrs = x.instrs[:0]
	x.latchArena = x.latchArena[:0]
	return x.result
}

// leadingCmd returns the first command latch value in a transaction's
// instructions, or -1 if it has none — the signature used to tell one
// polling loop's status reads apart from an unrelated capture phase.
func leadingCmd(instrs []txn.Instr) int {
	for i := range instrs {
		if instrs[i].Kind != txn.KindCmdAddr {
			continue
		}
		for _, l := range instrs[i].Latches {
			if l.Kind == onfi.LatchCmd {
				return int(l.Value)
			}
		}
	}
	return -1
}

// Sleep suspends the operation for d of virtual time without occupying
// the channel. Operations use it for coarse waits where polling would be
// wasteful. Sleeping breaks a polling loop: the next capture submit is
// a fresh poll, not a resubmission.
func (x *Ctx) Sleep(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	x.lastWasCapture = false
	x.pending = pendSleep
	x.sleepFor = d
	x.y.Yield()
	x.pending = pendNone
}

// YieldHint cooperatively reschedules the operation, letting other
// runnable operations use the firmware core.
func (x *Ctx) YieldHint() {
	x.pending = pendNone
	x.y.Yield()
}

// Recovery records a recovery action taken by the running operation —
// a RESET escalation after an exhausted poll budget, a chip declared
// dead — bumping the controller's recovery counter and emitting a
// KindRecovery event so the action is visible in the obs stream and
// metrics.
func (x *Ctx) Recovery(label string) {
	x.ctrl.stats.Recoveries++
	if x.ctrl.tracer != nil {
		x.ctrl.tracer.Event(obs.Event{
			Time: x.ctrl.k.Now(), Kind: obs.KindRecovery,
			OpID: x.st.id, Chip: x.st.req.Chip, Label: label,
		})
	}
}
