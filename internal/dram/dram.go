// Package dram models the SSD's DRAM staging buffer. The Packetizer DMAs
// page data between this buffer and the flash channel; the host interface
// stages command payloads here.
//
// The model is functional (byte-accurate contents, bounds-checked windows)
// rather than timed: in the systems the paper studies, DRAM bandwidth is
// far above channel bandwidth, so DRAM access never gates the datapath.
package dram

import "fmt"

// Buffer is a byte-addressable DRAM region.
type Buffer struct {
	mem []byte
}

// New allocates a buffer of the given size.
func New(size int) *Buffer {
	if size <= 0 {
		panic(fmt.Sprintf("dram: non-positive size %d", size))
	}
	return &Buffer{mem: make([]byte, size)}
}

// Size reports the buffer capacity in bytes.
func (b *Buffer) Size() int { return len(b.mem) }

// Window returns a mutable view of [addr, addr+n). It is the DMA target
// handed to the Packetizer. Out-of-range windows return an error — the
// hardware equivalent of an AXI bus fault.
func (b *Buffer) Window(addr, n int) ([]byte, error) {
	if addr < 0 || n < 0 || addr+n > len(b.mem) {
		return nil, fmt.Errorf("dram: window [%d,%d) outside buffer of %d bytes", addr, addr+n, len(b.mem))
	}
	return b.mem[addr : addr+n], nil
}

// Read copies n bytes at addr into a fresh slice. Hot paths use ReadInto
// or View instead.
func (b *Buffer) Read(addr, n int) ([]byte, error) {
	w, err := b.Window(addr, n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, w)
	return out, nil
}

// ReadInto copies len(dst) bytes at addr into dst — the destination-
// passing sibling of Read for callers that own a buffer.
func (b *Buffer) ReadInto(dst []byte, addr int) error {
	w, err := b.Window(addr, len(dst))
	if err != nil {
		return err
	}
	copy(dst, w)
	return nil
}

// View returns a borrowed read-only view of [addr, addr+n). Unlike Read
// it never copies; unlike Window the caller promises not to write
// through it. The view stays coherent with the buffer: it is only valid
// until the next DMA or host write that overlaps the range (in virtual
// time: until the channel's next granted transaction may touch it), so
// consume or copy it before yielding the CPU.
func (b *Buffer) View(addr, n int) ([]byte, error) {
	return b.Window(addr, n)
}

// Write copies data into the buffer at addr.
func (b *Buffer) Write(addr int, data []byte) error {
	w, err := b.Window(addr, len(data))
	if err != nil {
		return err
	}
	copy(w, data)
	return nil
}

// Fill sets [addr, addr+n) to v.
func (b *Buffer) Fill(addr, n int, v byte) error {
	w, err := b.Window(addr, n)
	if err != nil {
		return err
	}
	for i := range w {
		w[i] = v
	}
	return nil
}

// Allocator hands out non-overlapping regions of a Buffer in a simple
// bump-pointer fashion. It is how the FTL and the workload generators
// carve per-request DMA areas.
type Allocator struct {
	buf  *Buffer
	next int
}

// NewAllocator wraps buf.
func NewAllocator(buf *Buffer) *Allocator { return &Allocator{buf: buf} }

// Alloc reserves n bytes and returns the region's base address.
func (a *Allocator) Alloc(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("dram: alloc of %d bytes", n)
	}
	if a.next+n > a.buf.Size() {
		return 0, fmt.Errorf("dram: out of memory (want %d, %d free)", n, a.buf.Size()-a.next)
	}
	addr := a.next
	a.next += n
	return addr, nil
}

// Reset releases all allocations.
func (a *Allocator) Reset() { a.next = 0 }

// InUse reports allocated bytes.
func (a *Allocator) InUse() int { return a.next }
