package fault

import "repro/internal/sim"

// splitmix64 is the canonical SplitMix64 mixer — a tiny, seedable,
// allocation-free PRNG step so plans never touch the global RNG.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Randomized derives a mixed fault campaign from seed, covering every
// fault class the harness models: one stuck-busy chip (usually
// recoverable, sometimes dead), one or two StatusFail storms
// (occasionally persistent, which grinds a chip's spares down), one
// uncorrectable-ECC burst over a window of rows, and erratic tR on one
// chip. The same (seed, chips, rows, nominalTR) always yields the
// same plan, so a chaos run reproduces exactly from its seed.
func Randomized(seed int64, chips int, rows uint32, nominalTR sim.Duration) Plan {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ 0xD1B54A32D192ED03
	pick := func(n int) int {
		if n <= 0 {
			return 0
		}
		return int(splitmix64(&x) % uint64(n))
	}
	p := Plan{Seed: seed}

	p.StuckBusy = append(p.StuckBusy, StuckBusy{
		Chip:        pick(chips),
		AfterOps:    10 + pick(30),
		Recoverable: pick(4) != 0,
	})

	for i, n := 0, 1+pick(2); i < n; i++ {
		st := FailStorm{Chip: pick(chips), FirstOp: 4 + pick(20), Count: 1 + pick(3)}
		if pick(8) == 0 {
			st.Count = 0 // persistent: fails every program/erase from FirstOp on
		}
		p.FailStorms = append(p.FailStorms, st)
	}

	if rows > 0 {
		lo := uint32(splitmix64(&x)) % rows
		hi := lo + 15
		if hi >= rows {
			hi = rows - 1
		}
		p.ECCBursts = append(p.ECCBursts, ECCBurst{
			Chip:    pick(chips),
			RowLow:  lo,
			RowHigh: hi,
			Hits:    2 + pick(8),
		})
	}

	p.TRJitter = append(p.TRJitter, TRJitter{
		Chip:   pick(chips),
		EveryN: 3 + pick(5),
		Delay:  nominalTR * sim.Duration(2+pick(6)),
	})
	return p
}
