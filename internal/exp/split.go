package exp

import (
	"fmt"
	"sort"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// SplitRow is one configuration's software/hardware time decomposition —
// the paper's Table II view, derived entirely from the obs event stream
// rather than ad-hoc counters.
type SplitRow struct {
	Controller ssd.ControllerKind
	CPUMHz     int
	Reads      int
	// Software is the firmware time charged to the CPU model; Hardware
	// is the channel's bus occupancy. Both are event-stream sums that
	// reproduce the cpumodel/bus counters exactly.
	Software sim.Duration
	Hardware sim.Duration
	// Elapsed is the virtual span of the run.
	Elapsed sim.Duration
	// PollResubmits counts re-issued status transactions (§VI-C), the
	// dominant software overhead of the coroutine environment.
	PollResubmits uint64
	// MeanQueueDepth is the average hardware-visible transaction queue
	// depth, sampled at every enqueue and pop.
	MeanQueueDepth float64
	// Charges breaks Software down per firmware action.
	Charges map[string]obs.ChargeStats
}

// SoftwareShare is Software / (Software + Hardware).
func (r SplitRow) SoftwareShare() float64 {
	total := r.Software + r.Hardware
	if total <= 0 {
		return 0
	}
	return float64(r.Software) / float64(total)
}

// splitCPUs are the firmware clocks swept: the 150 MHz soft core where
// software time dominates, and the 1 GHz ARM case where it vanishes.
var splitCPUs = []int{150, 1000}

// TimeSplit runs a single-LUN sequential read stream against both BABOL
// software environments at each clock in splitCPUs, with the metrics
// roll-up enabled, and reports where the time went.
func TimeSplit(opt Options) ([]SplitRow, error) {
	opt = opt.withDefaults()
	reads := opt.Ops / 4
	if reads < 8 {
		reads = 8
	}
	type cfg struct {
		kind ssd.ControllerKind
		mhz  int
	}
	var cfgs []cfg
	for _, kind := range []ssd.ControllerKind{ssd.CtrlBabolRTOS, ssd.CtrlBabolCoro} {
		for _, mhz := range splitCPUs {
			cfgs = append(cfgs, cfg{kind, mhz})
		}
	}
	out := make([]SplitRow, len(cfgs))
	err := sweep(opt, len(cfgs), func(i int, tracer obs.Tracer) error {
		c := cfgs[i]
		rig, err := ssd.Build(ssd.BuildConfig{
			Params: shrink(nand.Hynix(), opt.Blocks), Ways: 1, RateMT: 200,
			Controller: c.kind, CPUMHz: c.mhz,
			Observe: true, Tracer: tracer,
		})
		if err != nil {
			return err
		}
		defer rig.Close()
		if err := rig.SSD.Preload(reads); err != nil {
			return err
		}
		res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
			Pattern: hic.Sequential, Kind: hic.KindRead,
			NumOps: reads, QueueDepth: 2, LogicalPages: reads,
		})
		if err != nil {
			return err
		}
		rig.Kernel.Run()
		if res.Completed != reads || res.Failed != 0 {
			return fmt.Errorf("timesplit %v@%d: %d/%d completed, %d failed",
				c.kind, c.mhz, res.Completed, reads, res.Failed)
		}
		s := rig.Metrics.Snapshot()
		out[i] = SplitRow{
			Controller: c.kind, CPUMHz: c.mhz, Reads: reads,
			Software: s.SoftwareTime, Hardware: s.HardwareTime,
			Elapsed:        s.Span(),
			PollResubmits:  s.PollResubmits,
			MeanQueueDepth: s.QueueDepth.Mean(),
			Charges:        s.Charges,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TimeSplitCSV renders the decomposition as machine-readable CSV.
func TimeSplitCSV(rows []SplitRow) string {
	out := "controller,cpu_mhz,reads,software_us,hardware_us,software_share,poll_resubmits,mean_qdepth\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s,%d,%d,%.2f,%.2f,%.3f,%d,%.2f\n",
			r.Controller, r.CPUMHz, r.Reads,
			r.Software.Micros(), r.Hardware.Micros(), r.SoftwareShare(),
			r.PollResubmits, r.MeanQueueDepth)
	}
	return out
}

// RenderTimeSplit formats the software/hardware decomposition with the
// per-action charge breakdown.
func RenderTimeSplit(rows []SplitRow) string {
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("%-6s @%-5d sw=%-10s hw=%-10s sw%%=%-6.1f polls=%-6d qdepth=%.2f",
			r.Controller, r.CPUMHz, us(r.Software), us(r.Hardware),
			100*r.SoftwareShare(), r.PollResubmits, r.MeanQueueDepth))
	}
	out := table("Time split: software (CPU) vs hardware (channel) time from the event stream", lines)
	for _, r := range rows {
		labels := make([]string, 0, len(r.Charges))
		for l := range r.Charges {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		out += fmt.Sprintf("\n%s @%d MHz charge breakdown:\n", r.Controller, r.CPUMHz)
		for _, l := range labels {
			c := r.Charges[l]
			out += fmt.Sprintf("  %-14s n=%-7d cycles=%-10d time=%s\n", l, c.Count, c.Cycles, us(c.Time))
		}
	}
	return out
}
