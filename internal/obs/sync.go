package obs

import "sync"

// SyncMetrics is a mutex-guarded Metrics registry: a Tracer that may be
// fed from many goroutines at once and snapshotted concurrently. It is
// the live-introspection sink behind `babolbench -http` — the parallel
// sweep runner keeps the *deterministic* trace discipline (per-rig
// buffers merged in configuration order), but a long sweep watched in
// flight needs a view that updates while rigs are still running, and
// every aggregate Metrics computes (counter sums, min/max first/last
// event, histogram buckets) is order-insensitive, so interleaving
// events from concurrent rigs changes nothing about the final totals.
//
// The plain Metrics stays lock-free for the single-goroutine simulation
// hot path; wrap it in SyncMetrics only at a concurrency boundary.
type SyncMetrics struct {
	mu sync.Mutex
	m  *Metrics
}

// NewSyncMetrics returns an empty concurrency-safe registry.
func NewSyncMetrics() *SyncMetrics {
	return &SyncMetrics{m: NewMetrics()}
}

// Event implements Tracer. Safe for concurrent use.
func (s *SyncMetrics) Event(e Event) {
	s.mu.Lock()
	s.m.Event(e)
	s.mu.Unlock()
}

// Snapshot returns an atomic deep copy of the aggregated state: no
// event is half-applied in the copy, even while other goroutines keep
// feeding events.
func (s *SyncMetrics) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Snapshot()
}
