package exp

import (
	"fmt"

	"repro/internal/area"
)

// Table3Row is one controller's resource estimate next to the paper's
// synthesis result.
type Table3Row struct {
	Controller string
	Model      area.Resources
	Paper      area.Resources
}

// Table3 reproduces Table III (FPGA resources per controller type) via
// the structural area model — the documented substitution for Vivado
// synthesis. The inventories describe an 8-LUN channel, matching the
// Hynix/Toshiba wiring the paper synthesizes for.
func Table3() []Table3Row {
	paper := area.PaperTableIII()
	invs := []area.Inventory{area.SyncHW(8), area.AsyncHW(8), area.Babol()}
	rows := make([]Table3Row, 0, len(invs))
	for _, inv := range invs {
		rows = append(rows, Table3Row{
			Controller: inv.Name,
			Model:      area.Estimate(inv),
			Paper:      paper[inv.Name],
		})
	}
	return rows
}

// RenderTable3 formats Table III.
func RenderTable3() string {
	out := []string{fmt.Sprintf("%-28s %8s %8s %8s | %8s %8s %8s",
		"", "LUT", "FF", "BRAM", "LUT(ppr)", "FF(ppr)", "BRAM(ppr)")}
	for _, r := range Table3() {
		out = append(out, fmt.Sprintf("%-28s %8d %8d %8.1f | %8d %8d %8.1f",
			r.Controller, r.Model.LUT, r.Model.FF, r.Model.BRAM,
			r.Paper.LUT, r.Paper.FF, r.Paper.BRAM))
	}
	return table("Table III: FPGA resources per controller (area model vs paper)", out)
}
