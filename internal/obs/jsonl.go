package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// jsonlEvent is the wire form of an Event: the kind travels as its
// string name so the stream is self-describing and stable across
// reorderings of the Kind enum, and zero fields are omitted to keep
// traces compact.
type jsonlEvent struct {
	Time    sim.Time     `json:"t"`
	Kind    string       `json:"kind"`
	Channel int          `json:"ch,omitempty"`
	OpID    uint64       `json:"op,omitempty"`
	TxnID   uint64       `json:"txn,omitempty"`
	Chip    int          `json:"chip,omitempty"`
	Dur     sim.Duration `json:"dur,omitempty"`
	Start   sim.Time     `json:"start,omitempty"`
	End     sim.Time     `json:"end,omitempty"`
	Depth   int          `json:"depth,omitempty"`
	Cycles  int64        `json:"cycles,omitempty"`
	Bytes   int          `json:"bytes,omitempty"`
	Err     bool         `json:"err,omitempty"`
	Label   string       `json:"label,omitempty"`
}

// JSONLWriter is a Tracer persisting the event stream as one JSON
// object per line — the `babolbench -trace out.jsonl` sink. Writes are
// buffered; call Flush (or check Err) when the run ends. Encoding
// errors are sticky: the first one is retained and later events are
// dropped, so the hot path never has to handle an error return.
type JSONLWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter wraps w in a buffered JSONL event sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{w: bw, enc: json.NewEncoder(bw)}
}

// Event implements Tracer.
func (j *JSONLWriter) Event(e Event) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(jsonlEvent{
		Time: e.Time, Kind: e.Kind.String(), Channel: e.Channel,
		OpID: e.OpID, TxnID: e.TxnID, Chip: e.Chip,
		Dur: e.Dur, Start: e.Start, End: e.End, Depth: e.Depth,
		Cycles: e.Cycles, Bytes: e.Bytes, Err: e.Err, Label: e.Label,
	})
}

// Flush drains the buffer and returns the first error seen, if any.
func (j *JSONLWriter) Flush() error {
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Err reports the first write or encoding error, if any.
func (j *JSONLWriter) Err() error { return j.err }

// ReadJSONL decodes a JSONL trace back into events — the inverse of
// JSONLWriter, used for offline replay into a Metrics registry, by the
// babolbench analyze subcommand, and in round-trip tests. Parse errors
// name the 1-based line they occurred on, so a corrupted or truncated
// trace points at itself; unknown kinds are an error so schema drift is
// loud. Blank lines are skipped.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return out, fmt.Errorf("obs: line %d: %w", line, err)
		}
		k, ok := KindFromString(je.Kind)
		if !ok {
			return out, fmt.Errorf("obs: line %d: unknown kind %q", line, je.Kind)
		}
		out = append(out, Event{
			Time: je.Time, Kind: k, Channel: je.Channel,
			OpID: je.OpID, TxnID: je.TxnID, Chip: je.Chip,
			Dur: je.Dur, Start: je.Start, End: je.End, Depth: je.Depth,
			Cycles: je.Cycles, Bytes: je.Bytes, Err: je.Err, Label: je.Label,
		})
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: line %d: %w", line+1, err)
	}
	return out, nil
}
