package ops

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/sim"
)

// UrgentRead is a latency-critical page read waiting to preempt a long
// array operation.
type UrgentRead struct {
	Addr     onfi.Addr
	DramAddr int
	N        int
	// Done is called when the read's data is in DRAM (or on failure).
	Done func(error)
}

// InterruptibleErase erases a block while servicing latency-critical
// reads that arrive mid-erase: whenever next returns an UrgentRead, the
// operation suspends the erase (61h), runs the read, drains any further
// urgent reads, and resumes (D2h) — the erase-suspend optimization from
// the literature the paper cites ([23], [54]). Being plain software, the
// whole policy fits in one operation; a hardware controller would need a
// new FSM and a re-spin.
//
// Between suspension checks the operation sleeps rather than polls, so a
// multi-millisecond erase does not spam the channel with status reads.
func InterruptibleErase(block int, next func() (UrgentRead, bool)) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		row := onfi.RowAddr{Block: block}
		if err := g.CheckAddr(onfi.Addr{Row: row}); err != nil {
			return err
		}
		// Kick off the erase.
		var lbuf [5]onfi.Latch
		latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdErase1))
		latches = g.AppendRowLatches(latches, row)
		latches = append(latches, onfi.CmdLatch(onfi.CmdErase2))
		ctx.CmdAddr(latches...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}

		// checkSlice is how often we look for urgent work; a fraction of
		// tBERS so preemption latency stays small against a ms-scale
		// erase without burning the channel.
		checkSlice := ctx.Params().TBERS / 64
		if checkSlice < 10*sim.Microsecond {
			checkSlice = 10 * sim.Microsecond
		}

		// A busy wait paced by sleeps is still a poll loop: bound the
		// status checks by the worst-case busy time (suspend/serve
		// excursions reset nothing — each check advances checkSlice).
		budget := sleepPollBudget(ctx, checkSlice)
		for checks := 0; ; {
			// Serve any urgent reads first.
			if ur, ok := next(); ok {
				if err := suspendAndServe(ctx, chip, g, ur, next); err != nil {
					return err
				}
				continue
			}
			// Check for completion.
			s, err := ReadStatus(ctx, chip)
			if err != nil {
				return err
			}
			if s&onfi.StatusRDY != 0 {
				if s&onfi.StatusFail != 0 {
					return fmt.Errorf("ops: interruptible erase of block %d reported FAIL", block)
				}
				return nil
			}
			if checks++; checks >= budget {
				return recoverStuck(ctx, chip)
			}
			ctx.Sleep(checkSlice)
		}
	}
}

// sleepPollBudget bounds a sleep-paced poll loop: enough checkSlice
// steps to span the package's worst-case busy time, with the same
// slack philosophy as onfi.Timing.PollBudget.
func sleepPollBudget(ctx *core.Ctx, checkSlice sim.Duration) int {
	if checkSlice <= 0 {
		checkSlice = sim.Duration(1)
	}
	n := int64(ctx.Params().WorstCaseBusy()) / int64(checkSlice)
	return int(n)*4 + 64
}

// suspendAndServe suspends the in-flight erase, runs ur plus any other
// queued urgent reads, and resumes. A suspend that races with erase
// completion is benign: the reads run against an idle array and no
// resume is needed.
func suspendAndServe(ctx *core.Ctx, chip int, g onfi.Geometry, ur UrgentRead, next func() (UrgentRead, bool)) error {
	suspended := false
	ctx.Cmd(onfi.CmdSuspend)
	if res := ctx.Submit(); res.Err != nil {
		if !errors.Is(res.Err, nand.ErrNotSuspendable) {
			return res.Err
		}
		// The erase finished just before the suspend latched: serve the
		// reads directly.
	} else {
		suspended = true
		if _, err := pollReady(ctx, chip); err != nil {
			return err
		}
	}

	for {
		err := serveRead(ctx, chip, g, ur)
		if ur.Done != nil {
			ur.Done(err)
		}
		if err != nil {
			return err
		}
		var ok bool
		ur, ok = next()
		if !ok {
			break
		}
	}

	if suspended {
		ctx.Cmd(onfi.CmdResume)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
	}
	return nil
}

// serveRead performs one inline page read on behalf of an urgent host
// request.
func serveRead(ctx *core.Ctx, chip int, g onfi.Geometry, ur UrgentRead) error {
	if err := g.CheckAddr(ur.Addr); err != nil {
		return err
	}
	var lbuf [8]onfi.Latch
	ctx.CmdAddr(appendReadLatches(lbuf[:0], g, onfi.Addr{Row: ur.Addr.Row}, onfi.CmdRead2)...)
	if res := ctx.Submit(); res.Err != nil {
		return res.Err
	}
	s, err := pollReady(ctx, chip)
	if err != nil {
		return err
	}
	if s&onfi.StatusFail != 0 {
		return fmt.Errorf("ops: urgent read at %+v reported FAIL", ur.Addr.Row)
	}
	ctx.CmdAddr(appendChangeColumnLatches(lbuf[:0], ur.Addr.Col)...)
	ctx.ReadData(ur.DramAddr, ur.N)
	res := ctx.Submit()
	return res.Err
}

// InterruptibleProgram programs a page while servicing latency-critical
// reads that arrive during tPROG, via program suspension — the program
// suspend/resume optimizations of [10], [52], [54]. Structure mirrors
// InterruptibleErase; tPROG is shorter than tBERS, so the check slice is
// finer.
func InterruptibleProgram(addr onfi.Addr, dramAddr, n int, next func() (UrgentRead, bool)) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		if err := g.CheckAddr(addr); err != nil {
			return err
		}
		var lbuf [8]onfi.Latch
		latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdProgram1))
		latches = g.AppendAddrLatches(latches, addr)
		ctx.CmdAddr(latches...)
		ctx.WriteData(dramAddr, n)
		ctx.CmdAddr(onfi.CmdLatch(onfi.CmdProgram2))
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}

		checkSlice := ctx.Params().TPROG / 16
		if checkSlice < 10*sim.Microsecond {
			checkSlice = 10 * sim.Microsecond
		}
		budget := sleepPollBudget(ctx, checkSlice)
		for checks := 0; ; {
			if ur, ok := next(); ok {
				if err := suspendAndServe(ctx, chip, g, ur, next); err != nil {
					return err
				}
				continue
			}
			s, err := ReadStatus(ctx, chip)
			if err != nil {
				return err
			}
			if s&onfi.StatusRDY != 0 {
				if s&onfi.StatusFail != 0 {
					return fmt.Errorf("ops: interruptible program at %+v reported FAIL", addr.Row)
				}
				return nil
			}
			if checks++; checks >= budget {
				return recoverStuck(ctx, chip)
			}
			ctx.Sleep(checkSlice)
		}
	}
}
