// Package loc counts lines of code per operation implementation — the
// measurement behind Table II ("number of lines of code involved in
// different operations"). It parses Go sources with go/parser and counts
// non-blank, non-comment lines of named functions and of selected case
// clauses inside a function's switch statements, so the hardware
// baseline's per-operation FSM states can be attributed to their
// operation.
package loc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// File is a parsed source file ready for counting.
type File struct {
	fset  *token.FileSet
	file  *ast.File
	lines []string
}

// Parse loads and parses one Go source file.
func Parse(path string) (*File, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("loc: %w", err)
	}
	return &File{fset: fset, file: f, lines: strings.Split(string(src), "\n")}, nil
}

// countRange counts the non-blank, non-comment lines in [from, to]
// (1-based, inclusive).
func (f *File) countRange(from, to int) int {
	n := 0
	inBlock := false
	for i := from; i <= to && i-1 < len(f.lines); i++ {
		line := strings.TrimSpace(f.lines[i-1])
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.TrimSpace(line[idx+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		n++
	}
	return n
}

// FuncLines counts the lines of the named function (receiver methods
// match by bare name), including its signature and braces.
func (f *File) FuncLines(name string) (int, error) {
	for _, decl := range f.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != name {
			continue
		}
		from := f.fset.Position(fd.Pos()).Line
		to := f.fset.Position(fd.End()).Line
		return f.countRange(from, to), nil
	}
	return 0, fmt.Errorf("loc: function %q not found", name)
}

// FuncsLines sums FuncLines over several functions.
func (f *File) FuncsLines(names ...string) (int, error) {
	total := 0
	for _, n := range names {
		c, err := f.FuncLines(n)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// CaseLines counts the lines of every case clause (in any switch inside
// the named function) whose expression text contains prefix — e.g.
// prefix "stRead" attributes the READ states of a hardware FSM.
func (f *File) CaseLines(funcName, prefix string) (int, error) {
	var target *ast.FuncDecl
	for _, decl := range f.file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == funcName {
			target = fd
			break
		}
	}
	if target == nil {
		return 0, fmt.Errorf("loc: function %q not found", funcName)
	}
	total := 0
	ast.Inspect(target, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		match := false
		for _, expr := range cc.List {
			from := f.fset.Position(expr.Pos())
			to := f.fset.Position(expr.End())
			if from.Line-1 < len(f.lines) {
				text := f.lines[from.Line-1]
				if from.Line == to.Line && to.Column-1 <= len(text) {
					text = text[from.Column-1 : to.Column-1]
				}
				if strings.Contains(text, prefix) {
					match = true
					break
				}
			}
		}
		if match {
			from := f.fset.Position(cc.Pos()).Line
			to := f.fset.Position(cc.End()).Line
			total += f.countRange(from, to)
		}
		return true
	})
	return total, nil
}
