package hwctrl

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/onfi"
	"repro/internal/sim"
)

// state enumerates every state of the three hard-wired operation FSMs.
// One Go constant per Verilog state register value.
type state uint8

const (
	stIdle state = iota

	// READ operation states.
	stReadIssue    // drive 00h + 5 address cycles + 30h
	stReadWaitRB   // wait for R/B# to deassert (tR)
	stReadTransfer // drive 70h status check, 05h/E0h column, stream data

	// PROGRAM operation states.
	stProgIssue  // drive 80h + 5 address cycles, stream data, 10h
	stProgWaitRB // wait for R/B# (tPROG)
	stProgStatus // drive 70h and check FAIL

	// ERASE operation states.
	stEraseIssue  // drive 60h + 3 row cycles + D0h
	stEraseWaitRB // wait for R/B# (tBERS)
	stEraseStatus // drive 70h and check FAIL
)

// isIssue reports whether the state's bus step is a command issue (a
// short latch burst that starts a long LUN-internal operation). The
// arbiter prioritizes these.
func (s state) isIssue() bool {
	switch s {
	case stReadIssue, stProgIssue, stEraseIssue:
		return true
	}
	return false
}

// opFSM is one per-LUN operation engine: the Operation_i block of
// Figure 4. It holds a request FIFO, a state register, and a wants-bus
// flag the arbiter samples.
type opFSM struct {
	ctrl     *Controller
	lun      int
	state    state
	wantsBus bool
	queue    []Request
	cur      Request
	// scratch receives read-out data for requests with no DRAM
	// destination, reused across requests so discarded reads don't
	// allocate.
	scratch []byte
}

// loadNext pops the FIFO head into the execution register and enters the
// operation's issue state.
func (f *opFSM) loadNext() {
	if len(f.queue) == 0 {
		f.state = stIdle
		return
	}
	f.cur = f.queue[0]
	f.queue[0] = Request{}
	f.queue = f.queue[1:]
	switch f.cur.Kind {
	case KindRead:
		f.state = stReadIssue
	case KindProgram:
		f.state = stProgIssue
	case KindErase:
		f.state = stEraseIssue
	}
	f.wantsBus = true
}

// fail completes the current request with an error.
func (f *opFSM) fail(err error) {
	done := f.cur.Done
	f.ctrl.stats.OpsCompleted++
	f.ctrl.stats.OpsFailed++
	f.loadNext()
	f.ctrl.arm()
	if done != nil {
		done(err)
	}
}

// complete finishes the current request successfully.
func (f *opFSM) complete() {
	done := f.cur.Done
	f.ctrl.stats.OpsCompleted++
	f.loadNext()
	f.ctrl.arm()
	if done != nil {
		done(nil)
	}
}

// waitRB parks the FSM until the LUN's R/B# pin deasserts, then enters
// next and raises wants-bus.
func (f *opFSM) waitRB(next state) {
	f.state = next
	lun := f.ctrl.ch.Chip(f.lun)
	at := lun.ReadyAt()
	if at < f.ctrl.k.Now() {
		at = f.ctrl.k.Now()
	}
	f.ctrl.k.At(at, func() {
		f.wantsBus = true
		f.ctrl.arm()
	})
}

// busStep performs the bus work of the FSM's current state. It is called
// by the arbiter with the channel granted; the segments it issues chain
// back to back. It returns the time the channel frees.
func (f *opFSM) busStep() (sim.Time, error) {
	ch := f.ctrl.ch
	sel := bus.Mask(f.lun)
	g := ch.Chip(f.lun).Params().Geometry

	switch f.state {
	case stReadIssue:
		var lbuf [8]onfi.Latch
		latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdRead1))
		latches = g.AppendAddrLatches(latches, onfi.Addr{Row: f.cur.Addr.Row})
		latches = append(latches, onfi.CmdLatch(onfi.CmdRead2))
		end, err := ch.Latch(sel, latches, 0)
		if err != nil {
			return 0, err
		}
		f.waitRB(stReadTransfer)
		return end, nil

	case stReadTransfer:
		// Check the status register first: the FSM hard-wires the FAIL
		// branch.
		status, _, err := ch.Status(f.lun, 0)
		if err != nil {
			return 0, err
		}
		if status&onfi.StatusFail != 0 {
			return 0, fmt.Errorf("hwctrl: READ FAIL on LUN %d at %+v", f.lun, f.cur.Addr.Row)
		}
		cb := onfi.EncodeColAddr(f.cur.Addr.Col)
		lbuf := [4]onfi.Latch{
			onfi.CmdLatch(onfi.CmdChangeReadCol1),
			onfi.AddrLatch(cb[0]), onfi.AddrLatch(cb[1]),
			onfi.CmdLatch(onfi.CmdChangeReadCol2),
		}
		_, err = ch.Latch(sel, lbuf[:], 0)
		if err != nil {
			return 0, err
		}
		// Stream straight into the DRAM window (or a reused scratch sink
		// for destination-less reads) — no intermediate per-read buffer.
		var dst []byte
		if f.cur.DRAMAddr >= 0 {
			dst, err = f.ctrl.mem.Window(f.cur.DRAMAddr, f.cur.N)
			if err != nil {
				return 0, err
			}
		} else {
			if cap(f.scratch) < f.cur.N {
				f.scratch = make([]byte, f.cur.N)
			}
			dst = f.scratch[:f.cur.N]
		}
		end, err := ch.DataOutInto(sel, dst, 0)
		if err != nil {
			return 0, err
		}
		f.ctrl.k.At(end, f.complete)
		return end, nil

	case stProgIssue:
		window, err := f.ctrl.mem.Window(f.cur.DRAMAddr, f.cur.N)
		if err != nil {
			return 0, err
		}
		var lbuf [8]onfi.Latch
		latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdProgram1))
		latches = g.AppendAddrLatches(latches, f.cur.Addr)
		if _, err := ch.Latch(sel, latches, 0); err != nil {
			return 0, err
		}
		if _, err := ch.DataIn(sel, window, 0); err != nil {
			return 0, err
		}
		confirm := [1]onfi.Latch{onfi.CmdLatch(onfi.CmdProgram2)}
		end, err := ch.Latch(sel, confirm[:], 0)
		if err != nil {
			return 0, err
		}
		f.waitRB(stProgStatus)
		return end, nil

	case stProgStatus:
		status, end, err := ch.Status(f.lun, 0)
		if err != nil {
			return 0, err
		}
		if status&onfi.StatusFail != 0 {
			return 0, fmt.Errorf("hwctrl: PROGRAM FAIL on LUN %d at %+v", f.lun, f.cur.Addr.Row)
		}
		f.ctrl.k.At(end, f.complete)
		return end, nil

	case stEraseIssue:
		var lbuf [5]onfi.Latch
		latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdErase1))
		latches = g.AppendRowLatches(latches, f.cur.Addr.Row)
		latches = append(latches, onfi.CmdLatch(onfi.CmdErase2))
		end, err := ch.Latch(sel, latches, 0)
		if err != nil {
			return 0, err
		}
		f.waitRB(stEraseStatus)
		return end, nil

	case stEraseStatus:
		status, end, err := ch.Status(f.lun, 0)
		if err != nil {
			return 0, err
		}
		if status&onfi.StatusFail != 0 {
			return 0, fmt.Errorf("hwctrl: ERASE FAIL on LUN %d of block %d", f.lun, f.cur.Addr.Row.Block)
		}
		f.ctrl.k.At(end, f.complete)
		return end, nil

	default:
		return 0, fmt.Errorf("hwctrl: bus step in unexpected state %d", f.state)
	}
}
