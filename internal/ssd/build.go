package ssd

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/cpumodel"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/hwctrl"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/onfi"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/wave"
)

// ControllerKind selects which channel controller the SSD uses.
type ControllerKind uint8

const (
	// CtrlHW is the hardware baseline (the paper's "HW" / Cosmos+).
	CtrlHW ControllerKind = iota
	// CtrlBabolRTOS is BABOL on the RTOS software environment.
	CtrlBabolRTOS
	// CtrlBabolCoro is BABOL on the coroutine software environment.
	CtrlBabolCoro
)

func (k ControllerKind) String() string {
	switch k {
	case CtrlHW:
		return "HW"
	case CtrlBabolRTOS:
		return "RTOS"
	default:
		return "Coro"
	}
}

// BuildConfig describes a complete SSD: one or more channels, each with
// its own bus and controller, striped by a shared FTL.
type BuildConfig struct {
	Params         nand.Params    // package preset (geometry, timings)
	Channels       int            // independent channels (default 1)
	Ways           int            // LUNs per channel (defaults to preset wiring)
	RateMT         int            // channel speed in MT/s (default 200)
	Controller     ControllerKind // which controller drives the channel
	CPUMHz         int            // firmware clock for BABOL controllers (default 1000)
	ReservedBlocks int            // FTL over-provisioning per chip (default 2)
	Slots          int            // in-flight DRAM staging slots (default 2×ways)
	WithECC        bool
	// UseCopyback relocates GC pages with NAND copyback (BABOL only).
	UseCopyback bool
	// SuspendReads lets host reads preempt GC erases (BABOL only).
	SuspendReads bool
	Record       bool // capture the channel waveform
	// TxnQueue overrides BABOL's transaction scheduler (default RR).
	TxnQueue sched.TxnQueue
	// Tracer receives the controllers' event streams; multi-channel rigs
	// tag each channel's events with its index. nil disables tracing.
	// The hardware baseline controller emits no events.
	//
	// Concurrency contract: a rig is single-threaded (everything runs on
	// its kernel's goroutine), so the Tracer sees strictly sequential
	// calls from this rig — but when many rigs run concurrently (the
	// exp package's parallel sweeps), each rig must get its own Tracer;
	// give each rig a private obs.Buffer and merge after the fact rather
	// than sharing one sink.
	Tracer obs.Tracer
	// Observe additionally aggregates the event stream into Rig.Metrics
	// (it composes with Tracer: both sinks see every event).
	Observe bool
	// Faults, when non-nil, arms the plan's campaigns on the LUNs they
	// target (global chip numbering: channel*Ways + way). Fault hits are
	// emitted as obs.KindFault events on the targeted chip's channel.
	Faults *fault.Plan
	// NoCoroPool disables the per-rig coroutine pool: every operation
	// gets a fresh goroutine, as before pooling existed. Virtual-time
	// results are identical either way (the pooled-determinism tests
	// compare the two paths byte for byte); the switch costs ~5 allocs
	// and a goroutine spawn per operation.
	NoCoroPool bool
}

// Rig is a fully wired SSD plus handles to its parts. The singular
// Channel/Babol/HW fields alias channel 0 for the common single-channel
// case; the slices cover every channel.
type Rig struct {
	Kernel  *sim.Kernel
	Channel *bus.Channel
	DRAM    *dram.Buffer
	SSD     *SSD
	FTL     *ftl.FTL

	Channels []*bus.Channel

	// Babol is non-nil for BABOL controller kinds.
	Babol  *core.Controller
	Babols []*core.Controller
	// HW is non-nil for the hardware baseline.
	HW  *hwctrl.Controller
	HWs []*hwctrl.Controller

	// Metrics is the cross-channel roll-up of the controllers' event
	// streams; non-nil iff BuildConfig.Observe was set.
	Metrics *obs.Metrics

	// CoroPool is the rig's shared operation-coroutine pool (nil for
	// hardware-only rigs or when BuildConfig.NoCoroPool is set). All
	// BABOL controllers on the rig draw from it; it lives across
	// operations, GC cycles, and fault-recovery reissues, and is closed
	// by Rig.Close after the controllers have aborted their operations.
	CoroPool *coro.Pool
}

// Close releases controller resources: in-flight operation coroutines
// are aborted, then the rig's coroutine pool (if any) stops its parked
// workers, returning the process goroutine count to baseline.
func (r *Rig) Close() {
	for _, c := range r.Babols {
		c.Close()
	}
	if r.CoroPool != nil {
		r.CoroPool.Close()
	}
}

// Build assembles an SSD per cfg.
func Build(cfg BuildConfig) (*Rig, error) {
	if cfg.Params.Name == "" {
		cfg.Params = nand.Hynix()
	}
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	if cfg.Ways == 0 {
		cfg.Ways = cfg.Params.LUNsPerChannel
	}
	if cfg.RateMT == 0 {
		cfg.RateMT = 200
	}
	if cfg.CPUMHz == 0 {
		cfg.CPUMHz = 1000
	}
	if cfg.ReservedBlocks == 0 {
		cfg.ReservedBlocks = 2
	}
	if cfg.Slots == 0 {
		cfg.Slots = 2 * cfg.Ways * cfg.Channels
	}

	k := sim.NewKernel()
	geo := cfg.Params.Geometry
	slotSize := geo.PageBytes + geo.SpareBytes
	memSize := cfg.Slots*slotSize + cfg.Channels*(128<<10) // slots + per-controller scratch
	mem := dram.New(memSize)

	f, err := ftl.New(geo, cfg.Ways*cfg.Channels, cfg.ReservedBlocks)
	if err != nil {
		return nil, err
	}
	rig := &Rig{Kernel: k, DRAM: mem, FTL: f}

	tracer := cfg.Tracer
	if cfg.Observe {
		rig.Metrics = obs.NewMetrics()
		if tracer != nil {
			tracer = obs.Multi{rig.Metrics, tracer}
		} else {
			tracer = rig.Metrics
		}
	}

	var backends []Backend
	for c := 0; c < cfg.Channels; c++ {
		var rec *wave.Recorder
		if cfg.Record {
			rec = wave.NewRecorder()
		}
		ch, err := bus.New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: cfg.RateMT}, onfi.DefaultTiming(), rec)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Ways; i++ {
			lun, err := nand.NewLUN(cfg.Params)
			if err != nil {
				return nil, err
			}
			if cfg.Faults != nil {
				if inj := cfg.Faults.Injector(c*cfg.Ways+i, obs.OnChannel(tracer, c), i); inj != nil {
					lun.SetFaults(inj)
				}
			}
			ch.Attach(lun)
		}
		rig.Channels = append(rig.Channels, ch)

		switch cfg.Controller {
		case CtrlHW:
			hw := hwctrl.New(k, ch, mem)
			rig.HWs = append(rig.HWs, hw)
			backends = append(backends, NewHWBackend(hw))
		case CtrlBabolRTOS, CtrlBabolCoro:
			profile := cpumodel.RTOS()
			if cfg.Controller == CtrlBabolCoro {
				profile = cpumodel.Coro()
			}
			cpu, err := cpumodel.New(k, cfg.CPUMHz, profile)
			if err != nil {
				return nil, err
			}
			if rig.CoroPool == nil && !cfg.NoCoroPool {
				// One pool per rig, shared by every channel controller:
				// they all run on this kernel's goroutine, so the pool's
				// single-threaded contract holds across channels.
				rig.CoroPool = coro.NewPool()
			}
			ctrl, err := core.New(core.Config{
				Kernel: k, Channel: ch, DRAM: mem, CPU: cpu, TxnQueue: cfg.TxnQueue,
				Tracer:   obs.OnChannel(tracer, c),
				CoroPool: rig.CoroPool, DisableCoroPool: cfg.NoCoroPool,
			})
			if err != nil {
				return nil, err
			}
			rig.Babols = append(rig.Babols, ctrl)
			backends = append(backends, NewBabolBackend(ctrl))
		default:
			return nil, fmt.Errorf("ssd: unknown controller kind %d", cfg.Controller)
		}
	}
	rig.Channel = rig.Channels[0]
	if len(rig.Babols) > 0 {
		rig.Babol = rig.Babols[0]
	}
	if len(rig.HWs) > 0 {
		rig.HW = rig.HWs[0]
	}
	var backend Backend
	if cfg.Channels == 1 {
		backend = backends[0]
	} else {
		backend = NewMultiBackend(cfg.Ways, backends)
	}

	drive, err := New(Config{
		Kernel: k, Backend: backend, FTL: f, DRAM: mem,
		SlotBase: 0, Slots: cfg.Slots, WithECC: cfg.WithECC,
		UseCopyback: cfg.UseCopyback, SuspendReads: cfg.SuspendReads,
		Tracer: tracer,
	})
	if err != nil {
		return nil, err
	}
	rig.SSD = drive
	return rig, nil
}
