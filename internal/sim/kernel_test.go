package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{500 * Picosecond, "500ps"},
		{3 * Nanosecond, "3ns"},
		{53 * Microsecond, "53us"},
		{1500 * Microsecond, "1.5ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d ps).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationStd(t *testing.T) {
	if got := (53 * Microsecond).Std(); got != 53*time.Microsecond {
		t.Errorf("Std() = %v, want 53µs", got)
	}
	if got := (999 * Picosecond).Std(); got != 0 {
		t.Errorf("sub-ns Std() = %v, want 0", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: got %d", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d", d)
	}
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(30, func() { order = append(order, 3) })
	k.After(10, func() { order = append(order, 1) })
	k.After(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %v, want 30", k.Now())
	}
}

func TestKernelFIFOAtSameInstant(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var hits []Time
	k.After(10, func() {
		hits = append(hits, k.Now())
		k.After(5, func() { hits = append(hits, k.Now()) })
	})
	k.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested scheduling: %v", hits)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	id := k.After(10, func() { fired = true })
	k.Cancel(id)
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Executed() != 0 {
		t.Fatalf("executed = %d, want 0", k.Executed())
	}
}

func TestKernelCancelOneOfMany(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(10, func() { order = append(order, 1) })
	id := k.After(10, func() { order = append(order, 2) })
	k.After(10, func() { order = append(order, 3) })
	k.Cancel(id)
	k.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("cancel in middle: %v", order)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.After(10, func() { fired = append(fired, k.Now()) })
	k.After(20, func() { fired = append(fired, k.Now()) })
	k.After(30, func() { fired = append(fired, k.Now()) })
	k.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("RunUntil fired %d events, want 2", len(fired))
	}
	if k.Now() != 20 {
		t.Fatalf("clock = %v, want 20", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	// Clock advances to deadline even with no events.
	k.RunUntil(25)
	if k.Now() != 25 {
		t.Fatalf("clock = %v, want 25", k.Now())
	}
}

func TestKernelRunFor(t *testing.T) {
	k := NewKernel()
	n := 0
	k.After(10, func() { n++ })
	k.After(100, func() { n++ })
	k.RunFor(50)
	if n != 1 {
		t.Fatalf("RunFor(50) fired %d events, want 1", n)
	}
	if k.Now() != 50 {
		t.Fatalf("clock = %v", k.Now())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	n := 0
	k.After(10, func() { n++; k.Stop() })
	k.After(20, func() { n++ })
	k.Run()
	if n != 1 {
		t.Fatalf("Stop did not halt the run: n=%d", n)
	}
	// A subsequent Run resumes.
	k.Run()
	if n != 2 {
		t.Fatalf("resume after Stop: n=%d", n)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewKernel().After(-1, func() {})
}

// Property: for any batch of random (non-negative) delays, events fire in
// non-decreasing time order and the count matches.
func TestKernelMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var times []Time
		for _, d := range delays {
			k.After(Duration(d), func() { times = append(times, k.Now()) })
		}
		k.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: two kernels fed the same seeded workload produce identical
// firing sequences (determinism).
func TestKernelDeterminismProperty(t *testing.T) {
	run := func(seed int64) []int64 {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var trace []int64
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 3 {
				return
			}
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				d := Duration(rng.Intn(1000))
				k.After(d, func() {
					trace = append(trace, int64(k.Now()))
					spawn(depth + 1)
				})
			}
		}
		spawn(0)
		k.Run()
		return trace
	}
	for seed := int64(1); seed <= 5; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d", seed, i)
			}
		}
	}
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 100; j++ {
			k.After(Duration(j), func() {})
		}
		k.Run()
	}
}
