package hic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Trace replay: instead of a synthetic pattern, drive the SSD with a
// recorded host trace — one command per line:
//
//	# comment lines and blanks are ignored
//	<arrival_us> <read|write|trim> <lpn>
//
// Arrival times are virtual microseconds from replay start and must be
// non-decreasing. Commands are submitted at their arrival instant
// regardless of completion of earlier ones (open-loop replay, like
// fio --read_iolog), so queue buildup under overload is visible in the
// latency distribution.

// TraceEntry is one parsed trace line.
type TraceEntry struct {
	At   sim.Duration // arrival, relative to replay start
	Kind Kind
	LPN  int
}

// ParseTrace reads the text trace format.
func ParseTrace(r io.Reader) ([]TraceEntry, error) {
	var out []TraceEntry
	sc := bufio.NewScanner(r)
	lineNo := 0
	var last sim.Duration
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("hic: trace line %d: want `<us> <read|write|trim> <lpn>`, got %q", lineNo, line)
		}
		us, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || us < 0 {
			return nil, fmt.Errorf("hic: trace line %d: bad arrival %q", lineNo, fields[0])
		}
		at := sim.Duration(us * float64(sim.Microsecond))
		if at < last {
			return nil, fmt.Errorf("hic: trace line %d: arrivals must be non-decreasing", lineNo)
		}
		last = at
		kind, ok := KindFromString(fields[1])
		if !ok {
			return nil, fmt.Errorf("hic: trace line %d: bad op %q", lineNo, fields[1])
		}
		lpn, err := strconv.Atoi(fields[2])
		if err != nil || lpn < 0 {
			return nil, fmt.Errorf("hic: trace line %d: bad LPN %q", lineNo, fields[2])
		}
		out = append(out, TraceEntry{At: at, Kind: kind, LPN: lpn})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hic: trace has no commands")
	}
	return out, nil
}

// ReplayTrace schedules every entry's submission at its arrival time and
// returns the aggregate result (populated once the caller runs the
// kernel to completion).
func ReplayTrace(k *sim.Kernel, sub Submitter, entries []TraceEntry) (*Result, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("hic: empty trace")
	}
	res := &Result{Start: k.Now(), latencies: make([]sim.Duration, 0, len(entries))}
	for _, e := range entries {
		e := e
		k.After(e.At, func() {
			submitted := k.Now()
			sub.Submit(Command{
				Kind: e.Kind,
				LPN:  e.LPN,
				Done: func(err error) {
					if err != nil {
						res.Failed++
					} else {
						res.Completed++
						res.latencies = append(res.latencies, k.Now().Sub(submitted))
					}
					res.End = k.Now()
				},
			})
		})
	}
	return res, nil
}
