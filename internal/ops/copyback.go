package ops

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/onfi"
)

// CopybackPage moves a page from src to dst inside one LUN without the
// data ever crossing the channel: READ FOR COPYBACK (00h…35h) pulls the
// page into the LUN's register, COPYBACK PROGRAM (85h…10h) writes the
// register to the new address. Only the latch bursts and status polls
// touch the bus, so a 16-KiB relocation costs ~1 µs of channel time
// instead of ~165 µs of read-out plus write-in — the reason garbage
// collection wants this operation.
//
// Caveat (as on real NAND): the data is not ECC-scrubbed in transit, so
// accumulated bit errors propagate to the destination. Drives alternate
// copyback with read-verify passes; the SSD assembly exposes the choice.
func CopybackPage(src, dst onfi.RowAddr) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		if err := g.CheckAddr(onfi.Addr{Row: src}); err != nil {
			return fmt.Errorf("ops: copyback source: %w", err)
		}
		if err := g.CheckAddr(onfi.Addr{Row: dst}); err != nil {
			return fmt.Errorf("ops: copyback destination: %w", err)
		}
		// Transaction 1: READ FOR COPYBACK.
		var lbuf [8]onfi.Latch
		ctx.CmdAddr(appendReadLatches(lbuf[:0], g, onfi.Addr{Row: src}, onfi.CmdCopybackRead)...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		s, err := pollReady(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusFail != 0 {
			return fmt.Errorf("ops: copyback read of %+v reported FAIL", src)
		}
		// Transaction 2: COPYBACK PROGRAM to the destination.
		latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdCopybackProgram))
		latches = g.AppendAddrLatches(latches, onfi.Addr{Row: dst})
		latches = append(latches, onfi.CmdLatch(onfi.CmdProgram2))
		ctx.CmdAddr(latches...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		s, err = pollReady(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusFail != 0 {
			return fmt.Errorf("ops: copyback program to %+v reported FAIL", dst)
		}
		return nil
	}
}
