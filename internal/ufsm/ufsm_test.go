package ufsm

import (
	"bytes"
	"testing"

	"repro/internal/bus"
	"repro/internal/dram"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/wave"
)

func smallParams() nand.Params {
	p := nand.Hynix()
	p.Geometry = onfi.Geometry{Planes: 1, BlocksPerLUN: 8, PagesPerBlk: 4, PageBytes: 256, SpareBytes: 16}
	p.JitterPct = 0
	return p
}

func newRig(t *testing.T, chips int) (*sim.Kernel, *Executor, *dram.Buffer) {
	t.Helper()
	k := sim.NewKernel()
	ch, err := bus.New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}, onfi.DefaultTiming(), wave.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chips; i++ {
		l, err := nand.NewLUN(smallParams())
		if err != nil {
			t.Fatal(err)
		}
		ch.Attach(l)
	}
	mem := dram.New(1 << 16)
	return k, NewExecutor(ch, mem), mem
}

func TestExecuteStatusTransaction(t *testing.T) {
	_, e, _ := newRig(t, 1)
	tx := &txn.Transaction{
		ID: 1, OpID: 1, Chip: 0,
		Instrs: []txn.Instr{
			txn.ChipControl(bus.Mask(0)),
			txn.CmdAddr([]onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}),
			txn.DataRead(-1, 1, true),
		},
	}
	res := e.Execute(tx)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Captured) != 1 {
		t.Fatalf("captured %d bytes", len(res.Captured))
	}
	if res.Captured[0]&onfi.StatusRDY == 0 {
		t.Errorf("status %08b not ready", res.Captured[0])
	}
	if res.End == 0 {
		t.Error("transaction took no time")
	}
	st := e.Stats()
	if st.Transactions != 1 || st.Instructions != 3 {
		t.Errorf("stats: %+v", st)
	}
}

func TestExecuteFullReadIntoDRAM(t *testing.T) {
	k, e, mem := newRig(t, 1)
	lun := e.Channel().Chip(0)
	want := bytes.Repeat([]byte{0x42}, 256)
	if err := lun.SeedPage(onfi.RowAddr{Block: 1, Page: 1}, want); err != nil {
		t.Fatal(err)
	}
	g := lun.Params().Geometry

	// Transaction 1: command + address.
	var latches []onfi.Latch
	latches = append(latches, onfi.CmdLatch(onfi.CmdRead1))
	latches = append(latches, g.AddrLatches(onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 1}})...)
	latches = append(latches, onfi.CmdLatch(onfi.CmdRead2))
	res := e.Execute(&txn.Transaction{
		ID: 1, OpID: 1, Chip: 0,
		Instrs: []txn.Instr{
			txn.ChipControl(bus.Mask(0)),
			txn.CmdAddr(latches),
		},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}

	// Wait out tR, then transaction 2: data → DRAM at 4096.
	k.RunUntil(res.End.Add(lun.Params().TR))
	res = e.Execute(&txn.Transaction{
		ID: 2, OpID: 1, Chip: 0,
		Instrs: []txn.Instr{
			txn.ChipControl(bus.Mask(0)),
			txn.DataRead(4096, 256, false),
		},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	got, err := mem.Read(4096, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("DMA'd page mismatch")
	}
	if e.Stats().DMAOutBytes != 256 {
		t.Errorf("DMAOutBytes = %d", e.Stats().DMAOutBytes)
	}
	// The full trace is ONFI-legal.
	chk := wave.NewChecker(e.Channel().Timing(), e.Channel().Config())
	if vs := chk.Check(e.Channel().Recorder().Segments()); len(vs) != 0 {
		t.Errorf("waveform violations: %v", vs)
	}
}

func TestExecuteProgramFromDRAM(t *testing.T) {
	k, e, mem := newRig(t, 1)
	lun := e.Channel().Chip(0)
	g := lun.Params().Geometry
	payload := bytes.Repeat([]byte{0x99}, 128)
	if err := mem.Write(0, payload); err != nil {
		t.Fatal(err)
	}
	var latches []onfi.Latch
	latches = append(latches, onfi.CmdLatch(onfi.CmdProgram1))
	latches = append(latches, g.AddrLatches(onfi.Addr{Row: onfi.RowAddr{Block: 2}})...)
	res := e.Execute(&txn.Transaction{
		ID: 1, OpID: 1, Chip: 0,
		Instrs: []txn.Instr{
			txn.ChipControl(bus.Mask(0)),
			txn.CmdAddr(latches),
			txn.DataWrite(0, 128),
			txn.CmdAddr([]onfi.Latch{onfi.CmdLatch(onfi.CmdProgram2)}),
		},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	k.RunUntil(res.End.Add(lun.Params().TPROG))
	page, err := lun.PeekPage(onfi.RowAddr{Block: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page[:128], payload) {
		t.Error("programmed data mismatch")
	}
	if e.Stats().DMAInBytes != 128 {
		t.Errorf("DMAInBytes = %d", e.Stats().DMAInBytes)
	}
}

func TestExecuteTimerWait(t *testing.T) {
	_, e, _ := newRig(t, 1)
	res := e.Execute(&txn.Transaction{
		ID: 1, OpID: 1,
		Instrs: []txn.Instr{txn.TimerWait(150 * sim.Nanosecond)},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.End != sim.Time(150*sim.Nanosecond) {
		t.Errorf("timer end = %v", res.End)
	}
}

func TestExecuteInvalidTransaction(t *testing.T) {
	_, e, _ := newRig(t, 1)
	res := e.Execute(&txn.Transaction{})
	if res.Err == nil {
		t.Error("empty transaction executed")
	}
}

func TestExecuteBadDRAMWindow(t *testing.T) {
	_, e, _ := newRig(t, 1)
	res := e.Execute(&txn.Transaction{
		Instrs: []txn.Instr{
			txn.ChipControl(bus.Mask(0)),
			txn.DataWrite(1<<20, 16),
		},
	})
	if res.Err == nil {
		t.Error("out-of-range DMA accepted")
	}
}

func TestExecuteLUNProtocolErrorSurfaces(t *testing.T) {
	_, e, _ := newRig(t, 1)
	// A bare confirm command is a protocol error at the LUN.
	res := e.Execute(&txn.Transaction{
		Instrs: []txn.Instr{
			txn.ChipControl(bus.Mask(0)),
			txn.CmdAddr([]onfi.Latch{onfi.CmdLatch(onfi.CmdRead2)}),
		},
	})
	if res.Err == nil {
		t.Error("LUN protocol error not surfaced")
	}
}
