//go:build race

package sim

func init() { raceDetectorEnabled = true }
