package ssd

import (
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/sim"
)

// Sharded rigs split the drive across event-loop shards: the host
// complex (SSD assembly, FTL, HIC, ECC) is one sim.Domain on shard 0,
// and each channel (bus, LUNs, controller, firmware CPU) is a domain on
// its channel group's shard. Everything that crosses the host↔channel
// boundary funnels through this file: backend calls travel as domain
// posts with the configured HostHop latency, and completions post back.
// Nothing else is shared, so the shards can run on separate goroutines
// inside the cluster's conservative time windows.

// urgentSink accepts latency-critical reads for a chip whose erase is
// suspendable. The legacy urgentQueue is one (same-domain); the sharded
// eraseRelay is the cross-domain one.
type urgentSink interface {
	push(ops.UrgentRead)
}

// relayEraser is the sharded counterpart of InterruptibleEraser: the
// synchronous next() pull cannot cross domains, so the channel side owns
// the urgent-read queue and the host gets back a sink to push into.
// armed=false means the chip's channel cannot suspend erases (no start
// was issued); the caller falls back to the other erase paths.
type relayEraser interface {
	eraseBlockRelay(chip, block int, done func(error)) (sink urgentSink, armed bool)
}

// shardBackend adapts one channel's backend for cross-domain use: every
// call posts to the channel's domain, every completion posts back to the
// host's. Call states are pooled host-side with their closures prebound,
// so the steady-state crossing allocates nothing.
type shardBackend struct {
	inner Backend
	host  *sim.Domain
	dom   *sim.Domain
	free  []*crossCall
}

// shardFullBackend additionally exposes copyback and relayed erase
// suspension when the inner backend has both capabilities (BABOL). The
// split mirrors multiBackend/plainMultiBackend: type identity is the
// capability advertisement.
type shardFullBackend struct {
	shardBackend
}

// wrapShard adapts a channel backend built on dom's kernel for use by
// the host domain.
func wrapShard(inner Backend, host, dom *sim.Domain) Backend {
	_, cb := inner.(Copybacker)
	_, ie := inner.(InterruptibleEraser)
	if cb && ie {
		b := &shardFullBackend{}
		b.inner, b.host, b.dom = inner, host, dom
		return b
	}
	return &shardBackend{inner: inner, host: host, dom: dom}
}

type callKind uint8

const (
	callRead callKind = iota
	callProgram
	callErase
	callCopyback
)

// crossCall carries one backend call across the host↔channel boundary
// and its completion back. States recycle through the owning
// shardBackend's free list; both ends of the pool run on the host shard.
type crossCall struct {
	b       *shardBackend
	kind    callKind
	chip    int
	row     onfi.RowAddr
	dstRow  onfi.RowAddr // copyback destination
	addr, n int
	block   int
	done    func(error)
	err     error

	startFn   func() // runs channel-side: issue on the inner backend
	finishFn  func(error)
	deliverFn func() // runs host-side: recycle, then complete
}

func (b *shardBackend) get() *crossCall {
	if n := len(b.free); n > 0 {
		c := b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
		return c
	}
	c := &crossCall{b: b}
	c.startFn = c.start
	c.finishFn = c.finish
	c.deliverFn = c.deliver
	return c
}

func (c *crossCall) start() {
	switch c.kind {
	case callRead:
		c.b.inner.ReadPage(c.chip, c.row, c.addr, c.n, c.finishFn)
	case callProgram:
		c.b.inner.ProgramPage(c.chip, c.row, c.addr, c.n, c.finishFn)
	case callErase:
		c.b.inner.EraseBlock(c.chip, c.block, c.finishFn)
	case callCopyback:
		c.b.inner.(Copybacker).CopybackPage(c.chip, c.row, c.dstRow, c.finishFn)
	}
}

func (c *crossCall) finish(err error) {
	c.err = err
	c.b.dom.Post(c.b.host, c.deliverFn)
}

// deliver recycles before completing, like readState.finish: a
// synchronously chained backend call reuses this state.
func (c *crossCall) deliver() {
	done, err := c.done, c.err
	c.done, c.err = nil, nil
	c.b.free = append(c.b.free, c)
	done(err)
}

func (b *shardBackend) post(c *crossCall) { b.host.Post(b.dom, c.startFn) }

func (b *shardBackend) Chip(i int) *nand.LUN { return b.inner.Chip(i) }

func (b *shardBackend) ReadPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error)) {
	c := b.get()
	c.kind, c.chip, c.row, c.addr, c.n, c.done = callRead, chip, row, dramAddr, n, done
	b.post(c)
}

func (b *shardBackend) ProgramPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error)) {
	c := b.get()
	c.kind, c.chip, c.row, c.addr, c.n, c.done = callProgram, chip, row, dramAddr, n, done
	b.post(c)
}

func (b *shardBackend) EraseBlock(chip, block int, done func(error)) {
	c := b.get()
	c.kind, c.chip, c.block, c.done = callErase, chip, block, done
	b.post(c)
}

// CopybackPage implements Copybacker (shardFullBackend only).
func (b *shardFullBackend) CopybackPage(chip int, src, dst onfi.RowAddr, done func(error)) {
	c := b.get()
	c.kind, c.chip, c.row, c.dstRow, c.done = callCopyback, chip, src, dst, done
	b.post(c)
}

// eraseBlockRelay implements relayEraser (shardFullBackend only): start
// an interruptible erase whose urgent-read queue lives on the channel's
// domain, and hand the host a sink that pushes across.
func (b *shardFullBackend) eraseBlockRelay(chip, block int, done func(error)) (urgentSink, bool) {
	r := &eraseRelay{b: &b.shardBackend, chip: chip}
	b.host.Post(b.dom, func() {
		b.inner.(InterruptibleEraser).EraseBlockInterruptible(chip, block, r.q.next, func(err error) {
			// Urgent reads that arrived after the erase's last queue check
			// are leftovers; restart them here as ordinary channel reads
			// so they never cross back to the host unserved.
			for {
				ur, ok := r.q.next()
				if !ok {
					break
				}
				b.inner.ReadPage(chip, ur.Addr.Row, ur.DramAddr, ur.N, ur.Done)
			}
			r.closed = true
			b.dom.Post(b.host, func() { done(err) })
		})
	})
	return r, true
}

// eraseRelay is the cross-domain urgent-read funnel of one suspended
// erase. q and closed are channel-domain state, touched only inside
// posted closures; push runs host-side.
type eraseRelay struct {
	b      *shardBackend
	chip   int
	q      urgentQueue
	closed bool
}

func (r *eraseRelay) push(ur ops.UrgentRead) {
	hostDone := ur.Done
	b := r.b
	ur.Done = func(err error) { b.dom.Post(b.host, func() { hostDone(err) }) }
	b.host.Post(b.dom, func() {
		if r.closed {
			// The erase completed while this read was in flight to the
			// channel (the host's delete of its sink entry races the hop
			// by design); serve it as an ordinary read.
			b.inner.ReadPage(r.chip, ur.Addr.Row, ur.DramAddr, ur.N, ur.Done)
			return
		}
		r.q.push(ur)
	})
}

// Run drives the rig to quiescence: the whole cluster for sharded rigs
// (then folds the per-domain trace buffers into the configured sinks),
// or just the kernel otherwise. Sharded rigs must run through here —
// running rig.Kernel alone would advance only the host shard.
func (r *Rig) Run() {
	if r.Cluster == nil {
		r.Kernel.Run()
		return
	}
	r.Cluster.Run()
	r.drainShardTraces()
	r.flushShardTelemetry()
}

// flushShardTelemetry appends the run's shard-window records and
// mailbox aggregates to the trace stream (TraceShardWindows rigs only).
// It runs after drainShardTraces, so the operation events keep their
// merged (time, domain) order and the shard events ride behind them.
// Only windows recorded since the previous flush are emitted, and
// mailbox posts are emitted as per-Run deltas, so replaying a stream
// from a rig that Ran more than once sums back to the true totals.
func (r *Rig) flushShardTelemetry() {
	if !r.traceWindows || r.Telemetry == nil || r.sink == nil {
		return
	}
	snap := r.Telemetry.Snapshot()
	recent := snap.Recent
	for len(recent) > 0 && recent[0].Seq <= r.shardSeqEmitted {
		recent = recent[1:]
	}
	snap.Recent = recent
	r.shardSeqEmitted = snap.Windows
	if r.mboxEmitted == nil {
		r.mboxEmitted = make(map[[2]int]uint64)
	}
	deltas := snap.Mailboxes[:0:0]
	for _, mb := range snap.Mailboxes {
		key := [2]int{mb.Src, mb.Dst}
		delta := mb.Posts - r.mboxEmitted[key]
		r.mboxEmitted[key] = mb.Posts
		if delta == 0 {
			continue
		}
		mb.Posts = delta
		deltas = append(deltas, mb)
	}
	snap.Mailboxes = deltas
	obs.EmitShardTelemetry(r.sink, snap, r.Now())
}

// Now reports the rig's virtual time (the host shard's clock).
func (r *Rig) Now() sim.Time { return r.Kernel.Now() }

// HostTracer returns the tracer host-domain code (the HIC frontend and
// the workload engine) must emit into: the host shard's private trace
// buffer on a sharded rig — merged by Run under the (time, domain)
// discipline, so host events interleave deterministically with channel
// events at any shard count — or the rig's plain sink otherwise. nil
// when tracing is off.
func (r *Rig) HostTracer() obs.Tracer {
	if r.Cluster != nil {
		return domainTracer(r.domBufs, 0)
	}
	return r.tracer
}

// drainShardTraces k-way-merges the per-domain trace buffers into the
// rig's configured sink in (time, domain index) order. Each domain's
// buffer is already time-ordered (a kernel never runs backwards), so a
// linear merge suffices, and the domain-index tie-break makes the merged
// stream a pure function of the simulation — independent of shard count,
// like everything else. Buffers are reset afterwards so a later Run
// appends rather than replays.
func (r *Rig) drainShardTraces() {
	if r.sink == nil {
		return
	}
	idx := make([]int, len(r.domBufs))
	for {
		best := -1
		var at sim.Time
		for d, b := range r.domBufs {
			evs := b.Events()
			if idx[d] >= len(evs) {
				continue
			}
			if t := evs[idx[d]].Time; best < 0 || t < at {
				best, at = d, t
			}
		}
		if best < 0 {
			break
		}
		r.sink.Event(r.domBufs[best].Events()[idx[best]])
		idx[best]++
	}
	for _, b := range r.domBufs {
		b.Reset()
	}
}

// shardOf maps a channel to its shard under `shards` total shards (one
// host shard plus shards-1 channel shards): contiguous channel groups,
// as even as integer math allows. The mapping affects only which
// goroutine runs a channel, never the simulation's results.
func shardOf(channel, channels, shards int) int {
	if shards <= 1 {
		return 0
	}
	return 1 + channel*(shards-1)/channels
}

// domainTracer returns the tracer for one domain of a sharded rig: its
// private buffer, or nil when tracing is off.
func domainTracer(bufs []*obs.Buffer, idx int) obs.Tracer {
	if bufs == nil {
		return nil
	}
	return bufs[idx]
}
