// Package area estimates FPGA resource usage (LUTs, flip-flops, BRAM)
// from a structural inventory of a controller's hardware modules — the
// substitution for the Vivado synthesis runs behind Table III, which we
// cannot perform without the Xilinx toolchain and fabric.
//
// The model is deliberately simple and stated in the open: next-state
// logic costs LUTs per FSM state, datapath registers cost flip-flops and
// LUT routing per bit, comparators cost LUTs, and buffering maps to
// 18-kbit BRAM tiles. The coefficients are calibrated so the three
// controller inventories land near the paper's published numbers; the
// claim the table carries — moving logic into software shrinks the
// hardware, Sync-HW ≫ Async-HW > BABOL — comes from the inventories
// themselves, not the calibration.
package area

// Module is one hardware block's structural description.
type Module struct {
	Name        string
	FSMStates   int // distinct controller states (next-state logic)
	RegBits     int // datapath/pipeline register bits
	Comparators int // address/status comparators
	BufferBytes int // FIFO and scratch buffering
}

// Inventory is the full structural description of one controller.
type Inventory struct {
	Name    string
	Modules []Module
}

// Resources is the estimated FPGA cost.
type Resources struct {
	LUT  int
	FF   int
	BRAM float64
}

// Cost coefficients (per unit, Zynq-7000-class fabric).
const (
	lutPerState      = 10.0
	lutPerRegBit     = 1.1
	lutPerComparator = 30.0
	ffPerState       = 6.0
	ffPerRegBit      = 1.8
	bramBytesPerTile = 2048.0 // one 18-kbit BRAM ≈ 2 KiB
)

// Estimate applies the cost model to an inventory.
func Estimate(inv Inventory) Resources {
	var states, regs, cmps, bufs int
	for _, m := range inv.Modules {
		states += m.FSMStates
		regs += m.RegBits
		cmps += m.Comparators
		bufs += m.BufferBytes
	}
	return Resources{
		LUT:  int(lutPerState*float64(states) + lutPerRegBit*float64(regs) + lutPerComparator*float64(cmps)),
		FF:   int(ffPerState*float64(states) + ffPerRegBit*float64(regs)),
		BRAM: float64(bufs) / bramBytesPerTile,
	}
}

// SyncHW is the structural inventory of the synchronous hardware
// controller of Qiu et al. [50]: one full operation-FSM block per LUN
// (each independently implements READ, PROGRAM, and ERASE waveform
// generation), a channel arbiter, and a wide merged control/data path.
func SyncHW(luns int) Inventory {
	mods := []Module{
		{Name: "arbiter", FSMStates: 12, RegBits: 96, Comparators: 4},
		{Name: "channel datapath", RegBits: 800, Comparators: 12},
	}
	for i := 0; i < luns; i++ {
		mods = append(mods, Module{
			Name:        "operation module",
			FSMStates:   27, // READ 11 + PROGRAM 9 + ERASE 7 states
			RegBits:     640,
			BufferBytes: 2048, // per-LUN command/data staging
		})
	}
	mods = append(mods, Module{Name: "shared data buffer", BufferBytes: 7168})
	return Inventory{Name: "Synchronous HW-based [50]", Modules: mods}
}

// AsyncHW is the inventory of the Cosmos+ OpenSSD asynchronous
// controller [25]: a single shared operation engine, small per-LUN
// request queues, and a completion unit.
func AsyncHW(luns int) Inventory {
	mods := []Module{
		{Name: "shared op engine", FSMStates: 45, RegBits: 1000, Comparators: 6},
		{Name: "completion unit", FSMStates: 12, RegBits: 200},
		{Name: "channel datapath", RegBits: 600, Comparators: 2},
		{Name: "data buffer", BufferBytes: 8192},
	}
	for i := 0; i < luns; i++ {
		mods = append(mods, Module{
			Name: "request queue", FSMStates: 5, RegBits: 64, BufferBytes: 1024,
		})
	}
	return Inventory{Name: "Asynchronous HW-based [25]", Modules: mods}
}

// Babol is the inventory of BABOL's Operation Execution hardware: only
// the five µFSMs, the Packetizer, and the transaction queue remain in
// fabric — scheduling and operation logic moved to software (and the
// processor, as in the paper, is not counted: it is hard silicon on the
// SoC, not fabric).
func Babol() Inventory {
	return Inventory{Name: "BABOL", Modules: []Module{
		{Name: "C/A writer µFSM", FSMStates: 12, RegBits: 160},
		{Name: "data writer µFSM", FSMStates: 10, RegBits: 256},
		{Name: "data reader µFSM", FSMStates: 10, RegBits: 256},
		{Name: "timer µFSM", FSMStates: 4, RegBits: 48},
		{Name: "chip control µFSM", FSMStates: 2, RegBits: 24},
		{Name: "packetizer", FSMStates: 16, RegBits: 640, Comparators: 2, BufferBytes: 8192},
		{Name: "transaction queue", FSMStates: 12, RegBits: 420, Comparators: 2, BufferBytes: 4096},
		{Name: "CSR block", FSMStates: 8, RegBits: 256},
	}}
}

// PaperTableIII is the paper's published Table III for reference output.
func PaperTableIII() map[string]Resources {
	return map[string]Resources{
		"Synchronous HW-based [50]":  {LUT: 9343, FF: 13021, BRAM: 11.5},
		"Asynchronous HW-based [25]": {LUT: 3909, FF: 3745, BRAM: 8},
		"BABOL":                      {LUT: 3539, FF: 3635, BRAM: 6},
	}
}
