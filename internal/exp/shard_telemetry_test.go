package exp

import (
	"bytes"
	"fmt"
	"testing"
)

// TestShardedTelemetryDeterminism is the harness-level half of the
// telemetry invariant: arming ShardTelemetry on whole figure sweeps —
// every shard count, through the parallel worker pool — changes neither
// the CSVs nor a byte of the merged JSONL traces. The per-rig invariant
// lives in ssd.TestShardedTelemetryInvariance; this proves the arming
// path composes with sweep merging and parallel workers.
// (TraceShardWindows is deliberately NOT part of this invariant: it
// appends shard-layout-dependent events, so it is exercised separately
// below.)
func TestShardedTelemetryDeterminism(t *testing.T) {
	type figure struct {
		name string
		run  func(Options) (string, error)
	}
	figures := []figure{
		{"fig10", func(o Options) (string, error) {
			pts, err := Fig10(o)
			if err != nil {
				return "", err
			}
			return Fig10CSV(pts), nil
		}},
		{"fig11", func(o Options) (string, error) {
			res, err := Fig11(o)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		}},
		{"fig12", func(o Options) (string, error) {
			pts, err := Fig12(o)
			if err != nil {
				return "", err
			}
			return Fig12CSV(pts), nil
		}},
	}
	for _, fig := range figures {
		t.Run(fig.name, func(t *testing.T) {
			for _, shards := range shardCounts {
				var refCSV string
				var refTrace []byte
				for i, telemetry := range []bool{false, true} {
					opt := shardQuick()
					opt.Shards = shards
					opt.ShardTelemetry = telemetry
					var csv string
					trace := traceRun(t, opt, func(o Options) error {
						var err error
						csv, err = fig.run(o)
						return err
					})
					if i == 0 {
						refCSV, refTrace = csv, trace
						if len(trace) == 0 {
							t.Fatalf("%s trace is empty; determinism check is vacuous", fig.name)
						}
						continue
					}
					if csv != refCSV {
						t.Errorf("%s results at shards=%d changed when telemetry armed", fig.name, shards)
					}
					if !bytes.Equal(trace, refTrace) {
						t.Errorf("%s merged trace at shards=%d changed when telemetry armed", fig.name, shards)
					}
				}
			}
		})
	}
}

// TestShardedTelemetryTraceWindows pins the opt-in trace flush at the
// harness level: with TraceShardWindows set on a sharded sweep, the
// merged trace grows shard-window records but the figure results stay
// byte-identical to the plain sharded run.
func TestShardedTelemetryTraceWindows(t *testing.T) {
	run := func(traceWindows bool) (string, []byte) {
		opt := shardQuick()
		opt.Shards = 2
		opt.TraceShardWindows = traceWindows
		var csv string
		trace := traceRun(t, opt, func(o Options) error {
			pts, err := Fig12(o)
			if err == nil {
				csv = Fig12CSV(pts)
			}
			return err
		})
		return csv, trace
	}
	plainCSV, plainTrace := run(false)
	tracedCSV, tracedTrace := run(true)
	if tracedCSV != plainCSV {
		t.Error("fig12 CSV changed when TraceShardWindows set")
	}
	if !bytes.Contains(tracedTrace, []byte(`"shard-window"`)) {
		t.Error("traced sweep carries no shard-window events")
	}
	if bytes.Contains(plainTrace, []byte(`"shard-window"`)) {
		t.Error("plain sweep leaked shard-window events")
	}
	if len(tracedTrace) <= len(plainTrace) {
		t.Error("traced sweep is not longer than the plain sweep")
	}
}
