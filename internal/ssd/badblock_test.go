package ssd

import (
	"testing"

	"repro/internal/hic"
)

// TestGrownBadBlocksAreTransparent marks several factory-bad blocks and
// verifies the host never sees a program failure: the FTL retires them
// and retries on healthy blocks.
func TestGrownBadBlocksAreTransparent(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Ways = 2
	rig := mustBuild(t, cfg)
	// Grow a realistic number of bad blocks at the media level: programs
	// to them will FAIL. (Retiring more than the over-provisioning can
	// absorb would legitimately shrink the drive below its logical
	// capacity.)
	rig.Channel.Chip(0).MarkBad(0)
	rig.Channel.Chip(0).MarkBad(7)
	rig.Channel.Chip(1).MarkBad(3)
	logical := rig.FTL.LogicalPages() * 3 / 4
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical, QueueDepth: 2, LogicalPages: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 {
		t.Fatalf("%d host writes failed despite retirement", res.Failed)
	}
	if res.Completed != logical {
		t.Fatalf("completed %d/%d", res.Completed, logical)
	}
	if rig.FTL.Stats().BadBlocks == 0 {
		t.Error("no blocks retired")
	}
	if err := rig.FTL.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Everything written is readable and correct.
	buf := make([]byte, 512)
	for lpn := 0; lpn < logical; lpn++ {
		loc, ok := rig.FTL.Lookup(lpn)
		if !ok {
			t.Fatalf("LPN %d unmapped", lpn)
		}
		data, err := rig.SSD.backend.Chip(loc.Chip).PeekPage(loc.Row)
		if err != nil {
			t.Fatal(err)
		}
		FillPattern(buf, lpn)
		for i := range buf {
			if data[i] != buf[i] {
				t.Fatalf("LPN %d corrupt at byte %d", lpn, i)
			}
		}
	}
}

// TestRetireBlockBookkeeping exercises the FTL-level retirement paths.
func TestRetireBlockBookkeeping(t *testing.T) {
	cfg := smallBuild(CtrlHW)
	rig := mustBuild(t, cfg)
	f := rig.FTL
	free := f.FreeBlocks(0)
	f.RetireBlock(0, 5)
	if f.FreeBlocks(0) != free-1 {
		t.Errorf("free blocks %d, want %d", f.FreeBlocks(0), free-1)
	}
	f.RetireBlock(0, 5) // idempotent
	if f.Stats().BadBlocks != 1 {
		t.Errorf("BadBlocks = %d", f.Stats().BadBlocks)
	}
	f.RetireBlock(-1, 0)  // no-ops
	f.RetireBlock(0, 999) // no-ops
	f.RetireBlock(99, 0)  // no-ops
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
