package area

import "testing"

func TestEstimateAdditive(t *testing.T) {
	m := Module{FSMStates: 10, RegBits: 100, Comparators: 2, BufferBytes: 4096}
	single := Estimate(Inventory{Modules: []Module{m}})
	double := Estimate(Inventory{Modules: []Module{m, m}})
	if double.LUT != 2*single.LUT || double.FF != 2*single.FF || double.BRAM != 2*single.BRAM {
		t.Errorf("estimate not additive: %+v vs %+v", single, double)
	}
}

func TestEstimateComponents(t *testing.T) {
	states := Estimate(Inventory{Modules: []Module{{FSMStates: 1}}})
	if states.LUT != 10 || states.FF != 6 || states.BRAM != 0 {
		t.Errorf("per-state cost: %+v", states)
	}
	buf := Estimate(Inventory{Modules: []Module{{BufferBytes: 2048}}})
	if buf.BRAM != 1 {
		t.Errorf("one tile of buffer: %+v", buf)
	}
}

func TestOrderingMatchesPaper(t *testing.T) {
	sync := Estimate(SyncHW(8))
	async := Estimate(AsyncHW(8))
	babol := Estimate(Babol())
	if !(sync.LUT > async.LUT && async.LUT > babol.LUT) {
		t.Errorf("LUT ordering wrong: sync=%d async=%d babol=%d", sync.LUT, async.LUT, babol.LUT)
	}
	if !(sync.FF > async.FF && async.FF > babol.FF) {
		t.Errorf("FF ordering wrong: sync=%d async=%d babol=%d", sync.FF, async.FF, babol.FF)
	}
	if !(sync.BRAM > async.BRAM && async.BRAM > babol.BRAM) {
		t.Errorf("BRAM ordering wrong: sync=%v async=%v babol=%v", sync.BRAM, async.BRAM, babol.BRAM)
	}
}

func TestCalibrationNearPaper(t *testing.T) {
	paper := PaperTableIII()
	ests := map[string]Resources{
		"Synchronous HW-based [50]":  Estimate(SyncHW(8)),
		"Asynchronous HW-based [25]": Estimate(AsyncHW(8)),
		"BABOL":                      Estimate(Babol()),
	}
	// The model is a structural estimate, not synthesis: require each
	// figure within 2× of the published number — the shape test above is
	// the real claim.
	for name, want := range paper {
		got := ests[name]
		check := func(metric string, g, w float64) {
			if g < w/2 || g > w*2 {
				t.Errorf("%s %s: model %v vs paper %v (off >2×)", name, metric, g, w)
			}
		}
		check("LUT", float64(got.LUT), float64(want.LUT))
		check("FF", float64(got.FF), float64(want.FF))
		check("BRAM", got.BRAM, want.BRAM)
	}
}

func TestBabolSmallestByConstruction(t *testing.T) {
	// BABOL's fabric must be a subset-scale design: fewer FSM states
	// than even one synchronous controller's per-LUN modules combined.
	var babolStates, syncStates int
	for _, m := range Babol().Modules {
		babolStates += m.FSMStates
	}
	for _, m := range SyncHW(8).Modules {
		syncStates += m.FSMStates
	}
	if babolStates >= syncStates {
		t.Errorf("BABOL states %d not below sync %d", babolStates, syncStates)
	}
}
