package ecc

import "testing"

// TestAllocGateCodecPage is the allocation-regression gate for whole-
// page ECC: a warmed Codec must encode and decode a 16 KB page with
// zero allocations — the codec's point is hoisting the per-codeword
// temporaries into reusable scratch.
func TestAllocGateCodecPage(t *testing.T) {
	page := make([]byte, 16384)
	for i := range page {
		page[i] = byte(i * 31)
	}
	parity := make([]byte, PageParityBytes(len(page)))
	var c Codec
	cycle := func() {
		if err := c.EncodePageInto(parity, page); err != nil {
			t.Fatal(err)
		}
		if _, err := c.DecodePage(page, parity); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	if avg := testing.AllocsPerRun(20, cycle); avg > 0 {
		t.Errorf("codec page encode+decode allocated %.1f objects, want 0", avg)
	}
}

// BenchmarkCodecPage measures steady-state whole-page ECC throughput.
// Run with -benchmem: the target is 0 allocs/op.
func BenchmarkCodecPage(b *testing.B) {
	page := make([]byte, 16384)
	for i := range page {
		page[i] = byte(i * 31)
	}
	parity := make([]byte, PageParityBytes(len(page)))
	var c Codec
	b.ReportAllocs()
	b.SetBytes(int64(len(page)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncodePageInto(parity, page); err != nil {
			b.Fatal(err)
		}
		if _, err := c.DecodePage(page, parity); err != nil {
			b.Fatal(err)
		}
	}
}
