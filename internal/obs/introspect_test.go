package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// Regression: a zero-valued observation must land in bucket 0 — a naive
// log2 bucketing (63 - leading zeros) underflows to -1 on zero and
// panics indexing the bucket array.
func TestHistogramZeroObservation(t *testing.T) {
	var h Histogram
	h.Observe(0)
	if h.Buckets[0] != 1 {
		t.Fatalf("Observe(0): bucket 0 = %d, want 1", h.Buckets[0])
	}
	if h.Count != 1 || h.Sum != 0 || h.Max != 0 {
		t.Fatalf("Observe(0): count=%d sum=%d max=%d", h.Count, h.Sum, h.Max)
	}
	// Negatives clamp to zero and join bucket 0 rather than underflow.
	h.Observe(-17)
	if h.Buckets[0] != 2 {
		t.Fatalf("Observe(-17): bucket 0 = %d, want 2", h.Buckets[0])
	}
	// The extremes of the int64 range stay in bounds: 2^62 has bit 62
	// set, so it lands in the last bucket (63).
	h.Observe(1 << 62)
	if h.Buckets[63] != 1 {
		t.Fatalf("Observe(1<<62): bucket 63 = %d, want 1", h.Buckets[63])
	}
}

func TestReadJSONLReportsLineNumber(t *testing.T) {
	trace := `{"t":1,"kind":"op-admitted","op":1}
{"t":2,"kind":"op-resumed","op":1}
{"t":3,"kind":"op-finished",BROKEN}
{"t":4,"kind":"op-admitted","op":2}
`
	events, err := ReadJSONL(strings.NewReader(trace))
	if err == nil {
		t.Fatal("want parse error for corrupted line")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not name line 3", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events before the corruption, want 2", len(events))
	}

	// Unknown kinds also name their line.
	_, err = ReadJSONL(strings.NewReader("{\"t\":1,\"kind\":\"op-admitted\"}\n\n{\"t\":2,\"kind\":\"martian\"}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("unknown-kind error %v does not name line 3", err)
	}

	// Blank lines are skipped, not counted as events.
	events, err = ReadJSONL(strings.NewReader("\n{\"t\":1,\"kind\":\"op-admitted\"}\n\n"))
	if err != nil || len(events) != 1 {
		t.Fatalf("blank-line handling: events=%d err=%v", len(events), err)
	}
}

// SyncMetrics must tolerate concurrent emitters and snapshotters — the
// exact situation of a parallel sweep feeding the -http live registry
// while HTTP requests read it. Run under -race, this is the data-race
// acceptance check.
func TestSyncMetricsConcurrent(t *testing.T) {
	sm := NewSyncMetrics()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for _, e := range sampleStream() {
					e.Channel = w
					sm.Event(e)
				}
				if i%100 == 0 {
					_ = sm.Snapshot()
				}
			}
		}(w)
	}
	// Snapshot continuously while emitters run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = sm.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	s := sm.Snapshot()
	want := uint64(workers * perWorker * len(sampleStream()))
	if s.Events != want {
		t.Fatalf("Events = %d, want %d", s.Events, want)
	}
	if len(s.Channels) != workers {
		t.Fatalf("channels = %d, want %d", len(s.Channels), workers)
	}
}

func TestMetricsHandler(t *testing.T) {
	sm := NewSyncMetrics()
	for _, e := range sampleStream() {
		sm.Event(e)
	}
	h := MetricsHandler(sm.Snapshot)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, rec.Body.Bytes())
	}
	s := sm.Snapshot()
	if ev, ok := got["events"].(float64); !ok || uint64(ev) != s.Events {
		t.Fatalf("events = %v, want %d", got["events"], s.Events)
	}
	if _, ok := got["charges"].(map[string]any)["admit"]; !ok {
		t.Fatalf("charges missing admit site: %v", got["charges"])
	}
	if _, ok := got["chips"].([]any); !ok {
		t.Fatalf("chips did not marshal as array: %v", got["chips"])
	}
	// The handler must serve while the registry is being written — the
	// -race acceptance path for live introspection during a sweep.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, e := range sampleStream() {
				sm.Event(e)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("status %d mid-write", rec.Code)
		}
		if !bytes.Contains(rec.Body.Bytes(), []byte("software_time_ps")) {
			t.Fatal("snapshot body missing software_time_ps")
		}
	}
	wg.Wait()
}
