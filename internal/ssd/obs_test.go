package ssd

import (
	"testing"

	"repro/internal/hic"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestObserveRollsUpChannels verifies the multi-channel metrics
// roll-up: one registry aggregates every controller's stream with
// events tagged per channel, and the software/hardware split
// reconciles with the per-controller CPU and bus counters.
func TestObserveRollsUpChannels(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Channels = 2
	cfg.Observe = true
	rig := mustBuild(t, cfg)
	if rig.Metrics == nil {
		t.Fatal("Observe did not attach Rig.Metrics")
	}
	if err := rig.SSD.Preload(16); err != nil {
		t.Fatal(err)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindRead,
		NumOps: 32, QueueDepth: 4, LogicalPages: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Completed != 32 || res.Failed != 0 {
		t.Fatalf("workload: %d completed, %d failed", res.Completed, res.Failed)
	}

	s := rig.Metrics.Snapshot()
	if len(s.Channels) != 2 {
		t.Fatalf("channel roll-up has %d channels, want 2", len(s.Channels))
	}
	var swWant sim.Duration
	for _, ctrl := range rig.Babols {
		swWant += ctrl.CPU().Stats().BusyTime
	}
	if s.SoftwareTime != swWant {
		t.Errorf("SoftwareTime %v != summed cpu BusyTime %v", s.SoftwareTime, swWant)
	}
	var hwWant sim.Duration
	for i, ch := range rig.Channels {
		hwWant += ch.Stats().BusyTime
		if got := s.Channels[i].BusyTime; got != ch.Stats().BusyTime {
			t.Errorf("channel %d BusyTime %v != bus %v", i, got, ch.Stats().BusyTime)
		}
	}
	if s.HardwareTime != hwWant {
		t.Errorf("HardwareTime %v != summed bus BusyTime %v", s.HardwareTime, hwWant)
	}
	var txnWant uint64
	for _, ctrl := range rig.Babols {
		txnWant += ctrl.Stats().TxnsExecuted
	}
	if s.TxnsExecuted != txnWant {
		t.Errorf("TxnsExecuted %d != summed stats %d", s.TxnsExecuted, txnWant)
	}
	// Every chip key must carry a valid channel tag.
	for k := range s.Chips {
		if k.Channel < 0 || k.Channel >= 2 {
			t.Errorf("chip key with untagged channel: %+v", k)
		}
	}
}

// TestObserveComposesWithTracer checks that an external tracer and the
// built-in roll-up both see the stream.
func TestObserveComposesWithTracer(t *testing.T) {
	var n int
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Observe = true
	cfg.Tracer = obs.Func(func(obs.Event) { n++ })
	rig := mustBuild(t, cfg)
	if err := rig.SSD.Preload(4); err != nil {
		t.Fatal(err)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindRead,
		NumOps: 4, QueueDepth: 1, LogicalPages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Completed != 4 {
		t.Fatalf("completed %d", res.Completed)
	}
	if n == 0 {
		t.Error("external tracer saw no events")
	}
	if got := rig.Metrics.Snapshot().Events; got != uint64(n) {
		t.Errorf("roll-up saw %d events, external tracer %d", got, n)
	}
}
