package ssd

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/hic"
	"repro/internal/obs"
	"repro/internal/sim"
)

// telemetryRun drives a fixed read workload on a sharded 4-channel rig
// and returns the rig plus a fingerprint of its merged trace.
func telemetryRun(t *testing.T, telemetry, traceWindows bool) (*Rig, string) {
	t.Helper()
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Channels = 4
	cfg.Ways = 1
	cfg.Shards = 5
	cfg.HostHop = sim.Microsecond
	cfg.ShardTelemetry = telemetry
	cfg.TraceShardWindows = traceWindows
	var trace obs.Buffer
	cfg.Tracer = &trace
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical); err != nil {
		t.Fatal(err)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindRead,
		NumOps: 80, QueueDepth: 4, LogicalPages: logical, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Run()
	if res.Failed != 0 {
		t.Fatalf("%d reads failed", res.Failed)
	}
	var fp strings.Builder
	for _, e := range trace.Events() {
		fmt.Fprintf(&fp, "%+v\n", e)
	}
	return rig, fp.String()
}

// TestShardedTelemetryInvariance pins the rig-level Flashmon contract:
// arming telemetry changes nothing observable — the merged trace is
// byte-identical to the unarmed rig's.
func TestShardedTelemetryInvariance(t *testing.T) {
	_, ref := telemetryRun(t, false, false)
	armed, got := telemetryRun(t, true, false)
	if got != ref {
		t.Fatal("trace with telemetry armed differs from unarmed trace")
	}
	if armed.Telemetry == nil {
		t.Fatal("ShardTelemetry set but rig.Telemetry is nil")
	}
	snap := armed.Telemetry.Snapshot()
	if snap.Windows != armed.Cluster.Windows() {
		t.Fatalf("telemetry windows %d != cluster windows %d", snap.Windows, armed.Cluster.Windows())
	}
	var posts, events uint64
	for _, mb := range snap.Mailboxes {
		posts += mb.Posts
	}
	for _, s := range snap.Shards {
		events += s.Events
	}
	if posts != armed.Cluster.Posts() {
		t.Fatalf("mailbox posts %d != cluster posts %d", posts, armed.Cluster.Posts())
	}
	if events == 0 {
		t.Fatal("telemetry recorded no events")
	}
	if len(snap.Shards) != 5 {
		t.Fatalf("%d shard slots, want 5", len(snap.Shards))
	}
}

// TestShardedTelemetryTraceFlush pins TraceShardWindows: the run's
// operation trace is unchanged and the shard events ride behind it,
// replayable into the metrics registry.
func TestShardedTelemetryTraceFlush(t *testing.T) {
	_, ref := telemetryRun(t, false, false)
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Channels = 4
	cfg.Ways = 1
	cfg.Shards = 5
	cfg.HostHop = sim.Microsecond
	cfg.TraceShardWindows = true
	var trace obs.Buffer
	cfg.Tracer = &trace
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical); err != nil {
		t.Fatal(err)
	}
	if _, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindRead,
		NumOps: 80, QueueDepth: 4, LogicalPages: logical, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	rig.Run()

	var ops, windows, mailboxes strings.Builder
	windowEvents, mailboxEvents := 0, 0
	sawShardEvent := false
	for _, e := range trace.Events() {
		switch e.Kind {
		case obs.KindShardWindow:
			sawShardEvent = true
			windowEvents++
			fmt.Fprintf(&windows, "%+v\n", e)
		case obs.KindShardMailbox:
			sawShardEvent = true
			mailboxEvents++
			fmt.Fprintf(&mailboxes, "%+v\n", e)
		default:
			if sawShardEvent {
				t.Fatalf("operation event after shard events: %+v", e)
			}
			fmt.Fprintf(&ops, "%+v\n", e)
		}
	}
	if ops.String() != ref {
		t.Fatal("operation events differ from the plain run with TraceShardWindows set")
	}
	if windowEvents == 0 || mailboxEvents == 0 {
		t.Fatalf("shard events missing: %d window, %d mailbox", windowEvents, mailboxEvents)
	}

	m := obs.NewMetrics()
	m.Replay(trace.Events())
	s := m.Snapshot()
	if s.ShardWindows != rig.Cluster.Windows() {
		t.Fatalf("replayed ShardWindows %d != cluster windows %d (recorder depth %d)",
			s.ShardWindows, rig.Cluster.Windows(), sim.DefaultFlightRecorder)
	}
	var posts uint64
	for _, mb := range s.Mailboxes {
		posts += mb.Posts
	}
	if posts != rig.Cluster.Posts() {
		t.Fatalf("replayed mailbox posts %d != cluster posts %d", posts, rig.Cluster.Posts())
	}
	// A second Run must not re-emit already-flushed windows.
	trace.Reset()
	rig.Run()
	for _, e := range trace.Events() {
		if e.Kind == obs.KindShardWindow || e.Kind == obs.KindShardMailbox {
			t.Fatalf("idle re-Run re-emitted shard event %+v", e)
		}
	}
}

// TestShardedTelemetryAllocGate extends the funnel alloc gate's
// contract to the armed instrument: a warmed sharded rig with telemetry
// on allocates no more than the telemetry-off rig (plus fixed slack for
// the one Snapshot the comparison itself takes).
func TestShardedTelemetryAllocGate(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	measure := func(telemetry bool) uint64 {
		cfg := smallBuild(CtrlBabolRTOS)
		cfg.Channels = 2
		cfg.Ways = 2
		cfg.Shards = 3
		cfg.HostHop = sim.Microsecond
		cfg.ShardTelemetry = telemetry
		rig := mustBuild(t, cfg)
		if err := rig.SSD.Preload(rig.FTL.LogicalPages()); err != nil {
			t.Fatal(err)
		}
		workload := func() {
			res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
				Pattern: hic.Sequential, Kind: hic.KindRead,
				NumOps: 400, QueueDepth: 8, LogicalPages: rig.FTL.LogicalPages(),
			})
			if err != nil {
				t.Fatal(err)
			}
			rig.Run()
			if res.Failed != 0 {
				t.Fatalf("%d reads failed", res.Failed)
			}
		}
		workload() // warm to high-water
		runtime.GC()
		var m1, m2 runtime.MemStats
		runtime.ReadMemStats(&m1)
		workload()
		runtime.ReadMemStats(&m2)
		return m2.Mallocs - m1.Mallocs
	}
	off := measure(false)
	on := measure(true)
	const slack = 200
	if on > off+slack {
		t.Fatalf("armed telemetry allocated %d vs %d unarmed — the hot path is allocating", on, off)
	}
	t.Logf("allocs: telemetry-off=%d telemetry-on=%d", off, on)
}
