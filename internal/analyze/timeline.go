package analyze

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wave"
)

// Interval is one strip of reconstructed activity on a timeline: either
// channel occupancy (a command/address burst, a data burst, a timed
// wait) or a die-internal busy window (tR/tPROG/tBERS), distinguished
// by OnChannel.
type Interval struct {
	Start, End sim.Time
	Chip       int
	OpID       uint64
	TxnID      uint64
	// Label names the activity: a µFSM instruction ("cmd-addr",
	// "data-read", "data-write", "timer-wait"), a transaction ("txn"),
	// or a busy cause ("tR", "tPROG", "tBERS").
	Label string
	Bytes int
	// OnChannel marks bus occupancy; false marks a die-busy window that
	// runs in parallel with the channel.
	OnChannel bool
}

// Duration of the interval.
func (iv Interval) Duration() sim.Duration { return iv.End.Sub(iv.Start) }

// Timeline is the reconstructed activity of one channel: what the
// paper reads off the logic analyzer in Figure 9, recovered from the
// event stream (and optionally enriched with wave.Recorder segments
// for die-busy lanes).
type Timeline struct {
	Channel   int
	Intervals []Interval // sorted by Start, channel and die mixed
	// First/Last bound the observed activity.
	First, Last sim.Time
}

// timelineFromEvents reconstructs one channel's timeline from its event
// stream. µFSM instruction events give instruction-level strips when
// present (each KindHWInstr reports the bus occupancy it appended, so
// its strip is [Time−Dur, Time]); otherwise the coarser per-transaction
// brackets are used. Using both would double-count the same bus time.
func timelineFromEvents(channel int, events []obs.Event) *Timeline {
	t := &Timeline{Channel: channel}
	instrLevel := false
	for _, e := range events {
		if e.Channel == channel && e.Kind == obs.KindHWInstr && e.Dur > 0 {
			instrLevel = true
			break
		}
	}
	for _, e := range events {
		if e.Channel != channel {
			continue
		}
		switch e.Kind {
		case obs.KindHWInstr:
			if !instrLevel || e.Dur <= 0 {
				continue
			}
			t.add(Interval{
				Start: e.Time.Add(-e.Dur), End: e.Time, Chip: e.Chip,
				OpID: e.OpID, TxnID: e.TxnID, Label: e.Label, Bytes: e.Bytes,
				OnChannel: true,
			})
		case obs.KindTxnExecuted:
			if instrLevel {
				continue
			}
			t.add(Interval{
				Start: e.Start, End: e.End, Chip: e.Chip,
				OpID: e.OpID, TxnID: e.TxnID, Label: "txn", OnChannel: true,
			})
		}
	}
	t.sortIntervals()
	return t
}

// AddSegments merges wave.Recorder segments into the timeline — the
// recorder contributes the die-busy windows (KindBusy) that the event
// stream does not carry, turning the per-chip lanes into the full
// Figure 9 picture. Channel-occupying segment kinds are skipped when
// the timeline already has channel intervals from events (same bus
// time, two sources).
func (t *Timeline) AddSegments(segs []wave.Segment) {
	hasChannel := false
	for _, iv := range t.Intervals {
		if iv.OnChannel {
			hasChannel = true
			break
		}
	}
	for _, s := range segs {
		if s.OnChannel() && hasChannel {
			continue
		}
		t.add(Interval{
			Start: s.Start, End: s.End, Chip: s.Chip, OpID: s.OpID,
			Label: s.Label, Bytes: s.Bytes, OnChannel: s.OnChannel(),
		})
	}
	t.sortIntervals()
}

func (t *Timeline) add(iv Interval) {
	if len(t.Intervals) == 0 || iv.Start < t.First {
		t.First = iv.Start
	}
	if iv.End > t.Last {
		t.Last = iv.End
	}
	t.Intervals = append(t.Intervals, iv)
}

func (t *Timeline) sortIntervals() {
	sort.SliceStable(t.Intervals, func(i, j int) bool {
		if t.Intervals[i].Start != t.Intervals[j].Start {
			return t.Intervals[i].Start < t.Intervals[j].Start
		}
		return t.Intervals[i].End < t.Intervals[j].End
	})
}

// channel returns only the bus-occupying intervals, in start order.
func (t *Timeline) channel() []Interval {
	var out []Interval
	for _, iv := range t.Intervals {
		if iv.OnChannel {
			out = append(out, iv)
		}
	}
	return out
}

// dieBusy returns only the die-busy intervals, in start order.
func (t *Timeline) dieBusy() []Interval {
	var out []Interval
	for _, iv := range t.Intervals {
		if !iv.OnChannel {
			out = append(out, iv)
		}
	}
	return out
}

// Occupancy summarizes where a channel's time went: the §VI occupancy
// and interleaving statistics (how busy the bus was, how the idle time
// fragments, how much die work overlapped).
type Occupancy struct {
	// Span is Last−First; Busy is the union of channel intervals; Idle
	// is the remainder.
	Span, Busy, Idle sim.Duration
	// IdleGaps counts idle stretches between channel activity;
	// LongestIdle is the widest one.
	IdleGaps    int
	LongestIdle sim.Duration
	// PerChip is each chip's share of the channel occupancy.
	PerChip map[int]sim.Duration
	// DieOverlap is the time during which two or more dies were busy at
	// once — the multi-LUN interleaving the paper's software-defined
	// scheduling exists to exploit.
	DieOverlap sim.Duration
	// PipelineOverlap is the time the channel was transferring while at
	// least one die was busy: command/data work hidden under cell time.
	PipelineOverlap sim.Duration
}

// Utilization is Busy/Span (0 for an empty timeline).
func (o Occupancy) Utilization() float64 {
	if o.Span <= 0 {
		return 0
	}
	return float64(o.Busy) / float64(o.Span)
}

// merge unions sorted intervals into disjoint [start,end) pairs.
func merge(ivs []Interval) []Interval {
	var out []Interval
	for _, iv := range ivs {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, Interval{Start: iv.Start, End: iv.End})
	}
	return out
}

// overlap reports the total time covered by both disjoint sets.
func overlap(a, b []Interval) sim.Duration {
	var total sim.Duration
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := a[i].Start, a[i].End
		if b[j].Start > lo {
			lo = b[j].Start
		}
		if b[j].End < hi {
			hi = b[j].End
		}
		if hi > lo {
			total += hi.Sub(lo)
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return total
}

// Occupancy computes the timeline's occupancy statistics.
func (t *Timeline) Occupancy() Occupancy {
	o := Occupancy{Span: t.Last.Sub(t.First), PerChip: map[int]sim.Duration{}}
	ch := t.channel()
	for _, iv := range ch {
		o.PerChip[iv.Chip] += iv.Duration()
	}
	busy := merge(ch)
	for _, iv := range busy {
		o.Busy += iv.Duration()
	}
	o.Idle = o.Span - o.Busy
	if o.Idle < 0 {
		o.Idle = 0
	}
	for i := 1; i < len(busy); i++ {
		if gap := busy[i].Start.Sub(busy[i-1].End); gap > 0 {
			o.IdleGaps++
			if gap > o.LongestIdle {
				o.LongestIdle = gap
			}
		}
	}

	// Die overlap: union per chip, then pairwise overlap of the unions
	// (with ≤8 dies per channel the quadratic pass is nothing).
	perDie := map[int][]Interval{}
	for _, iv := range t.dieBusy() {
		perDie[iv.Chip] = append(perDie[iv.Chip], iv)
	}
	chips := make([]int, 0, len(perDie))
	for c := range perDie {
		perDie[c] = merge(perDie[c])
		chips = append(chips, c)
	}
	sort.Ints(chips)
	var allBusy []Interval
	for _, c := range chips {
		allBusy = append(allBusy, perDie[c]...)
	}
	for i, c := range chips {
		for _, d := range chips[i+1:] {
			o.DieOverlap += overlap(perDie[c], perDie[d])
		}
	}
	sort.SliceStable(allBusy, func(i, j int) bool { return allBusy[i].Start < allBusy[j].Start })
	o.PipelineOverlap = overlap(busy, merge(allBusy))
	return o
}

// Violation is one protocol-sanity breach found in a reconstructed
// timeline. These are structural checks on the reconstruction
// (exclusivity, plausibility); wave.Checker remains the authority on
// ONFI electrical timing minima for recorded segments.
type Violation struct {
	Time    sim.Time
	Channel int
	Chip    int
	Rule    string
	Detail  string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v ch%d chip%d: %s: %s", v.Time, v.Channel, v.Chip, v.Rule, v.Detail)
}

// Violations runs the protocol sanity pass:
//
//  1. channel exclusivity — two bus intervals must never overlap;
//  2. zero-length bursts — a command or data strip with no width means
//     a µFSM charged no bus time for real work;
//  3. die-busy data transfer — a multi-byte data burst addressed to a
//     die inside its own tR/tPROG window can't be answered (single-byte
//     status polls during busy are exactly how polling works, and a
//     suspended erase legitimately services reads inside tBERS, so
//     both are exempt).
func (t *Timeline) Violations() []Violation {
	var out []Violation
	ch := t.channel()
	for i := 1; i < len(ch); i++ {
		if ch[i].Start < ch[i-1].End {
			out = append(out, Violation{
				Time: ch[i].Start, Channel: t.Channel, Chip: ch[i].Chip,
				Rule: "channel exclusivity",
				Detail: fmt.Sprintf("%s (op %d) overlaps %s (op %d) by %v",
					ch[i].Label, ch[i].OpID, ch[i-1].Label, ch[i-1].OpID,
					ch[i-1].End.Sub(ch[i].Start)),
			})
		}
	}
	for _, iv := range ch {
		if iv.End <= iv.Start && iv.Label != "timer-wait" {
			out = append(out, Violation{
				Time: iv.Start, Channel: t.Channel, Chip: iv.Chip,
				Rule:   "zero-length burst",
				Detail: fmt.Sprintf("%s (op %d) has no width", iv.Label, iv.OpID),
			})
		}
	}
	busyDies := map[int][]Interval{}
	for _, iv := range t.dieBusy() {
		if iv.Label == "tR" || iv.Label == "tPROG" {
			busyDies[iv.Chip] = append(busyDies[iv.Chip], iv)
		}
	}
	for _, iv := range ch {
		if iv.Bytes <= 1 {
			continue // status polls are allowed (and expected) during busy
		}
		for _, b := range busyDies[iv.Chip] {
			if iv.Start < b.End && b.Start < iv.End {
				out = append(out, Violation{
					Time: iv.Start, Channel: t.Channel, Chip: iv.Chip,
					Rule: "data transfer during die busy",
					Detail: fmt.Sprintf("%s (%dB, op %d) inside %s [%v,%v]",
						iv.Label, iv.Bytes, iv.OpID, b.Label, b.Start, b.End),
				})
				break
			}
		}
	}
	return out
}

// CheckSegments converts wave.Checker's ONFI timing verdicts on a
// recorded trace into analyzer violations, so one report covers both
// the structural pass and the electrical-timing pass.
func CheckSegments(chk *wave.Checker, channel int, segs []wave.Segment) []Violation {
	var out []Violation
	for _, v := range chk.Check(segs) {
		s := segs[v.Index]
		out = append(out, Violation{
			Time: s.Start, Channel: channel, Chip: s.Chip,
			Rule:   "onfi timing: " + v.Rule,
			Detail: fmt.Sprintf("need ≥%v, got %v (%s)", v.Want, v.Got, s.Label),
		})
	}
	return out
}
