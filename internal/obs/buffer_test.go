package obs

import "testing"

func TestBufferRecordsAndReplaysInOrder(t *testing.T) {
	var b Buffer
	for i := 0; i < 5; i++ {
		b.Event(Event{OpID: uint64(i), Kind: KindOpFinished})
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
	var got []uint64
	b.ReplayInto(Func(func(e Event) { got = append(got, e.OpID) }))
	if len(got) != 5 {
		t.Fatalf("replayed %d events", len(got))
	}
	for i, id := range got {
		if id != uint64(i) {
			t.Fatalf("replay out of order: %v", got)
		}
	}
	// Replay is non-destructive.
	if b.Len() != 5 {
		t.Fatalf("replay consumed the buffer: Len = %d", b.Len())
	}
}

func TestBufferReplayIntoNilIsNoOp(t *testing.T) {
	var b Buffer
	b.Event(Event{})
	b.ReplayInto(nil) // must not panic
}

func TestBufferReset(t *testing.T) {
	var b Buffer
	b.Event(Event{})
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len = %d after Reset", b.Len())
	}
	b.Event(Event{OpID: 9})
	if b.Len() != 1 || b.Events()[0].OpID != 9 {
		t.Fatal("buffer unusable after Reset")
	}
}
