package analyze

import (
	"strings"
	"testing"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// TestShardReportFromEvents pins the report math on a hand-built
// two-window trace: utilization, the imbalance barrier attribution,
// single-busy share, mailbox folding, and the lookahead sweep.
func TestShardReportFromEvents(t *testing.T) {
	L := sim.Microsecond
	evs := []obs.Event{
		// Window 3 (recorder truncated: first seq > 1): shard0=4, shard1=2.
		{Time: sim.Time(10 * L), Kind: obs.KindShardWindow, TxnID: 3, Chip: 0, Depth: 4, Dur: L},
		{Time: sim.Time(10 * L), Kind: obs.KindShardWindow, TxnID: 3, Chip: 1, Depth: 2, Dur: L},
		// Window 4, starting within 2L of window 3: shard0 alone.
		{Time: sim.Time(11 * L), Kind: obs.KindShardWindow, TxnID: 4, Chip: 0, Depth: 3, Dur: L},
		// Window 5, far away: shard1 alone.
		{Time: sim.Time(40 * L), Kind: obs.KindShardWindow, TxnID: 5, Chip: 1, Depth: 1, Dur: L},
		{Time: sim.Time(41 * L), Kind: obs.KindShardMailbox, Channel: 0, Chip: 1, Cycles: 7, Depth: 2},
		{Time: sim.Time(41 * L), Kind: obs.KindShardMailbox, Channel: 0, Chip: 1, Cycles: 3, Depth: 1},
	}
	rep := ShardReportFromEvents(evs)
	if rep == nil {
		t.Fatal("nil report for a trace with shard events")
	}
	if rep.Windows != 5 || rep.Recorded != 3 || !rep.Truncated {
		t.Fatalf("windows=%d recorded=%d truncated=%v, want 5/3/true", rep.Windows, rep.Recorded, rep.Truncated)
	}
	if rep.Lookahead != L {
		t.Fatalf("lookahead %v, want %v", rep.Lookahead, L)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("%d shards, want 2", len(rep.Shards))
	}
	s0, s1 := rep.Shards[0], rep.Shards[1]
	if s0.Shard != 0 || s0.BusyWindows != 2 || s0.Events != 7 || s0.BarrierCost != 0 {
		t.Fatalf("shard0 = %+v", s0)
	}
	// Shard 1 waited (4-2)/4 of window 3 on shard 0; critical itself in
	// window 5.
	if s1.Shard != 1 || s1.BusyWindows != 2 || s1.Events != 3 || s1.BarrierCost != L/2 {
		t.Fatalf("shard1 = %+v (barrier-cost want %v)", s1, L/2)
	}
	if want := 2.0 / 3.0; rep.SingleBusyShare != want {
		t.Fatalf("single-busy share %v, want %v", rep.SingleBusyShare, want)
	}
	if len(rep.Mailboxes) != 1 || rep.Mailboxes[0].Posts != 10 || rep.Mailboxes[0].Peak != 2 {
		t.Fatalf("mailboxes = %+v, want one 0->1 posts=10 peak=2", rep.Mailboxes)
	}
	// Lookahead sweep: at 2x, windows 3+4 coalesce (starts 1L apart),
	// window 5 stands alone -> 2 groups; 4x and 8x the same here.
	if rep.Lookaheads[0].Windows != 3 || rep.Lookaheads[1].Windows != 2 {
		t.Fatalf("lookahead sweep = %+v, want 1x=3 2x=2", rep.Lookaheads)
	}
	// Critical path: 3 recorded windows -> 3 buckets; shard 0 wins the
	// first two, shard 1 the last.
	if len(rep.CriticalPath) != 3 || rep.CriticalPath[0].Shard != 0 || rep.CriticalPath[2].Shard != 1 {
		t.Fatalf("critical path = %+v", rep.CriticalPath)
	}

	if ShardReportFromEvents([]obs.Event{{Kind: obs.KindOpAdmitted, OpID: 1}}) != nil {
		t.Fatal("report invented from a trace without shard events")
	}
}

// TestAnalyzeShardReportEndToEnd runs a sharded rig with shard tracing
// on, analyzes the merged trace, and checks the report reaches both
// renderers — and that a plain sharded trace (tracing off) keeps the
// sections absent.
func TestAnalyzeShardReportEndToEnd(t *testing.T) {
	run := func(traceWindows bool) *Result {
		p := nand.Hynix()
		p.Geometry.BlocksPerLUN = 16
		var buf obs.Buffer
		rig, err := ssd.Build(ssd.BuildConfig{
			Params: p, Channels: 2, Ways: 2, RateMT: 200,
			Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000,
			Tracer: &buf, Shards: 3, HostHop: sim.Microsecond,
			TraceShardWindows: traceWindows,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rig.Close()
		const reads = 48
		if err := rig.SSD.Preload(reads); err != nil {
			t.Fatal(err)
		}
		if _, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
			Pattern: hic.Sequential, Kind: hic.KindRead,
			NumOps: reads, QueueDepth: 8, LogicalPages: reads,
		}); err != nil {
			t.Fatal(err)
		}
		rig.Run()
		return Analyze(buf.Events())
	}

	a := run(true)
	if len(a.Runs) != 1 {
		t.Fatalf("%d runs, want 1", len(a.Runs))
	}
	rep := a.Runs[0].Shards
	if rep == nil {
		t.Fatal("sharded trace with TraceShardWindows produced no shard report")
	}
	if rep.Windows == 0 || rep.Recorded == 0 || len(rep.Shards) == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.Windows != a.Runs[0].Metrics.ShardWindows {
		t.Fatalf("report windows %d != metrics ShardWindows %d", rep.Windows, a.Runs[0].Metrics.ShardWindows)
	}
	text := a.Render()
	if !strings.Contains(text, "shard report (run 0)") {
		t.Fatalf("Render lacks shard report:\n%s", text)
	}
	csv := a.CSV()
	if !strings.Contains(csv, "run,shard,busy_windows") || !strings.Contains(csv, "lookahead_multiple") {
		t.Fatal("CSV lacks shard sections")
	}

	plain := run(false)
	if plain.Runs[0].Shards != nil {
		t.Fatal("shard report present without TraceShardWindows")
	}
	if strings.Contains(plain.Render(), "shard report") || strings.Contains(plain.CSV(), "busy_windows") {
		t.Fatal("shard sections rendered for a plain trace")
	}
}
