//go:build race

package ssd

func init() { raceDetectorEnabled = true }
