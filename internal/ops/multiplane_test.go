package ops_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/wave"
)

// twoPlaneParams returns a small two-plane geometry (blocks interleave
// across planes: even blocks plane 0, odd blocks plane 1).
func twoPlaneParams() nand.Params {
	p := smallParams()
	p.Geometry.Planes = 2
	return p
}

func TestMPReadPages(t *testing.T) {
	r := newRig(t, 1, twoPlaneParams())
	lun := r.ch.Chip(0)
	p0 := bytes.Repeat([]byte{0xA0}, 256)
	p1 := bytes.Repeat([]byte{0xB1}, 256)
	rows := []onfi.RowAddr{{Block: 2, Page: 1}, {Block: 3, Page: 1}} // planes 0 and 1
	if err := lun.SeedPage(rows[0], p0); err != nil {
		t.Fatal(err)
	}
	if err := lun.SeedPage(rows[1], p1); err != nil {
		t.Fatal(err)
	}
	err := r.run(t, core.OpRequest{Func: ops.MPReadPages(rows, 0, 256), Chip: 0})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := r.mem.Read(0, 512)
	if !bytes.Equal(got[:256], p0) || !bytes.Equal(got[256:], p1) {
		t.Error("multi-plane read data mismatch")
	}
	chk := wave.NewChecker(r.ch.Timing(), r.ch.Config())
	if vs := chk.Check(r.ch.Recorder().Segments()); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestMPReadSharesTR(t *testing.T) {
	// Two planes must take roughly one tR, not two: compare against two
	// dependent single-plane reads.
	measure := func(multi bool) sim.Duration {
		r := newRig(t, 1, twoPlaneParams())
		lun := r.ch.Chip(0)
		rows := []onfi.RowAddr{{Block: 0, Page: 0}, {Block: 1, Page: 0}}
		for _, row := range rows {
			if err := lun.SeedPage(row, []byte{1}); err != nil {
				t.Fatal(err)
			}
		}
		var end sim.Time
		if multi {
			r.ctrl.Start(core.OpRequest{
				Func: ops.MPReadPages(rows, 0, 256), Chip: 0,
				Done: func(err error) {
					if err != nil {
						t.Fatal(err)
					}
					end = r.k.Now()
				},
			})
			r.k.Run()
		} else {
			r.ctrl.Start(core.OpRequest{
				Func: ops.ReadPage(onfi.Addr{Row: rows[0]}, 0, 256), Chip: 0,
				Done: func(err error) {
					if err != nil {
						t.Fatal(err)
					}
					r.ctrl.Start(core.OpRequest{
						Func: ops.ReadPage(onfi.Addr{Row: rows[1]}, 256, 256), Chip: 0,
						Done: func(err error) {
							if err != nil {
								t.Fatal(err)
							}
							end = r.k.Now()
						},
					})
				},
			})
			r.k.Run()
		}
		return sim.Duration(end)
	}
	single, multi := measure(false), measure(true)
	// Two serial reads pay 2×tR (200 µs of array time); the multi-plane
	// read pays one. Require a clear win.
	if multi >= single-smallParams().TR/2 {
		t.Errorf("multi-plane read %v not meaningfully faster than serial %v", multi, single)
	}
}

func TestMPProgramAndReadBack(t *testing.T) {
	r := newRig(t, 1, twoPlaneParams())
	rows := []onfi.RowAddr{{Block: 4, Page: 0}, {Block: 5, Page: 0}}
	d0 := bytes.Repeat([]byte{0x17}, 256)
	d1 := bytes.Repeat([]byte{0x28}, 256)
	if err := r.mem.Write(0, append(append([]byte{}, d0...), d1...)); err != nil {
		t.Fatal(err)
	}
	err := r.run(t, core.OpRequest{Func: ops.MPProgramPages(rows, 0, 256), Chip: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		page, err := r.ch.Chip(0).PeekPage(row)
		if err != nil {
			t.Fatal(err)
		}
		want := d0
		if i == 1 {
			want = d1
		}
		if !bytes.Equal(page[:256], want) {
			t.Errorf("plane %d content mismatch", i)
		}
	}
}

func TestMPEraseBlocks(t *testing.T) {
	r := newRig(t, 1, twoPlaneParams())
	lun := r.ch.Chip(0)
	lun.SeedPage(onfi.RowAddr{Block: 2}, []byte{1})
	lun.SeedPage(onfi.RowAddr{Block: 3}, []byte{1})
	start := r.k.Now()
	err := r.run(t, core.OpRequest{Func: ops.MPEraseBlocks([]int{2, 3}), Chip: 0})
	if err != nil {
		t.Fatal(err)
	}
	if lun.EraseCount(2) != 1 || lun.EraseCount(3) != 1 {
		t.Error("both blocks should be erased")
	}
	// One shared tBERS, not two.
	elapsed := r.k.Now().Sub(start)
	if elapsed > smallParams().TBERS+smallParams().TBERS/2 {
		t.Errorf("multi-plane erase took %v, want ≈1×tBERS (%v)", elapsed, smallParams().TBERS)
	}
}

func TestMPPlaneValidation(t *testing.T) {
	r := newRig(t, 1, twoPlaneParams())
	// Same plane twice (both even blocks) must be rejected.
	rows := []onfi.RowAddr{{Block: 0}, {Block: 2}}
	if err := r.run(t, core.OpRequest{Func: ops.MPReadPages(rows, 0, 256), Chip: 0}); err == nil {
		t.Error("same-plane multi-plane read accepted")
	}
	if err := r.run(t, core.OpRequest{Func: ops.MPEraseBlocks([]int{1}), Chip: 0}); err == nil {
		t.Error("single-row multi-plane erase accepted")
	}
	if err := r.run(t, core.OpRequest{Func: ops.MPProgramPages(rows, 0, 256), Chip: 0}); err == nil {
		t.Error("same-plane multi-plane program accepted")
	}
}
