package dram

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestWindowBounds(t *testing.T) {
	b := New(100)
	if _, err := b.Window(0, 100); err != nil {
		t.Errorf("full window rejected: %v", err)
	}
	bad := [][2]int{{-1, 10}, {0, 101}, {95, 10}, {0, -1}}
	for _, c := range bad {
		if _, err := b.Window(c[0], c[1]); err == nil {
			t.Errorf("window [%d,%d) accepted", c[0], c[0]+c[1])
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	b := New(64)
	data := []byte("hello, flash")
	if err := b.Write(10, data); err != nil {
		t.Fatal(err)
	}
	got, err := b.Read(10, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("round trip: got %q", got)
	}
	// Read returns a copy, not an alias.
	got[0] = 'X'
	again, _ := b.Read(10, 1)
	if again[0] != 'h' {
		t.Error("Read returned an aliased slice")
	}
}

func TestWindowIsAliased(t *testing.T) {
	b := New(16)
	w, err := b.Window(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	w[0] = 0xAB
	got, _ := b.Read(4, 1)
	if got[0] != 0xAB {
		t.Error("Window is not a live view")
	}
}

func TestFill(t *testing.T) {
	b := New(8)
	if err := b.Fill(2, 4, 0x5A); err != nil {
		t.Fatal(err)
	}
	got, _ := b.Read(0, 8)
	want := []byte{0, 0, 0x5A, 0x5A, 0x5A, 0x5A, 0, 0}
	if !bytes.Equal(got, want) {
		t.Errorf("Fill: got %v", got)
	}
	if err := b.Fill(6, 4, 1); err == nil {
		t.Error("out-of-range Fill accepted")
	}
}

func TestAllocator(t *testing.T) {
	b := New(100)
	a := NewAllocator(b)
	a1, err := a.Alloc(40)
	if err != nil || a1 != 0 {
		t.Fatalf("first alloc: %d, %v", a1, err)
	}
	a2, err := a.Alloc(40)
	if err != nil || a2 != 40 {
		t.Fatalf("second alloc: %d, %v", a2, err)
	}
	if _, err := a.Alloc(40); err == nil {
		t.Error("over-allocation accepted")
	}
	if a.InUse() != 80 {
		t.Errorf("InUse = %d", a.InUse())
	}
	a.Reset()
	if a.InUse() != 0 {
		t.Error("Reset did not free")
	}
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero alloc accepted")
	}
}

// Property: writes to disjoint regions do not interfere.
func TestDisjointWritesProperty(t *testing.T) {
	f := func(x, y byte) bool {
		b := New(32)
		if err := b.Write(0, bytes.Repeat([]byte{x}, 16)); err != nil {
			return false
		}
		if err := b.Write(16, bytes.Repeat([]byte{y}, 16)); err != nil {
			return false
		}
		lo, _ := b.Read(0, 16)
		hi, _ := b.Read(16, 16)
		return bytes.Equal(lo, bytes.Repeat([]byte{x}, 16)) &&
			bytes.Equal(hi, bytes.Repeat([]byte{y}, 16))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
