package babol_test

import (
	"bytes"
	"fmt"
	"log"

	"repro/babol"
	"repro/internal/bus"
	"repro/internal/onfi"
)

// Example demonstrates the complete lifecycle: build a system, program a
// page, read it back, and inspect the controller statistics.
func Example() {
	sys, err := babol.NewSystem(babol.SystemConfig{Ways: 2, DisableCapture: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	payload := bytes.Repeat([]byte{0xAB}, 16384)
	if err := sys.DRAM().Write(0, payload); err != nil {
		log.Fatal(err)
	}
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 0}}
	sys.Start(babol.OpRequest{
		Func: babol.ProgramPage(addr, 0, 16384),
		Chip: 0,
		Done: func(err error) {
			if err != nil {
				log.Fatal(err)
			}
			sys.Start(babol.OpRequest{
				Func: babol.ReadPage(addr, 65536, 16384),
				Chip: 0,
				Done: func(err error) {
					if err != nil {
						log.Fatal(err)
					}
				},
			})
		},
	})
	sys.Run()

	back, _ := sys.DRAM().Read(65536, 16384)
	fmt.Println("round trip ok:", bytes.Equal(back, payload))
	fmt.Println("operations completed:", sys.Controller().Stats().OpsCompleted)
	// Output:
	// round trip ok: true
	// operations completed: 2
}

// Example_customOperation shows the paper's headline capability: a
// vendor-specific operation written as a few lines of sequential code.
// This one issues a pSLC read — the grey-shaded delta of the paper's
// Algorithm 3 — directly via the µFSM instruction API.
func Example_customOperation() {
	sys, err := babol.NewSystem(babol.SystemConfig{Ways: 1, DisableCapture: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	sys.Chip(0).SeedPage(onfi.RowAddr{Block: 2}, []byte("pSLC!"))

	myOp := func(ctx *babol.Ctx) error {
		g := ctx.Geometry()
		// pSLC preamble + standard READ command/address/confirm.
		ctx.Chip(bus.Mask(0))
		latches := []onfi.Latch{
			onfi.CmdLatch(onfi.CmdPSLCEnable),
			onfi.CmdLatch(onfi.CmdRead1),
		}
		latches = append(latches, g.AddrLatches(onfi.Addr{Row: onfi.RowAddr{Block: 2}})...)
		latches = append(latches, onfi.CmdLatch(onfi.CmdRead2))
		ctx.CmdAddr(latches...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		// Poll tR out using the nested READ STATUS helper.
		for {
			s, err := babol.ReadStatus(ctx, 0)
			if err != nil {
				return err
			}
			if s&onfi.StatusRDY != 0 {
				break
			}
		}
		// Column change + transfer.
		cb := onfi.EncodeColAddr(0)
		ctx.CmdAddr(
			onfi.CmdLatch(onfi.CmdChangeReadCol1),
			onfi.AddrLatch(cb[0]), onfi.AddrLatch(cb[1]),
			onfi.CmdLatch(onfi.CmdChangeReadCol2),
		)
		ctx.ReadData(0, 5)
		res := ctx.SubmitFinal()
		return res.Err
	}

	var opErr error
	sys.Start(babol.OpRequest{Func: myOp, Chip: 0, Done: func(err error) { opErr = err }})
	sys.Run()
	if opErr != nil {
		log.Fatal(opErr)
	}
	data, _ := sys.DRAM().Read(0, 5)
	fmt.Printf("%s\n", data)
	// Output: pSLC!
}
