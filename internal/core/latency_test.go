package core

import (
	"testing"

	"repro/internal/sim"
)

// TestPercentileNearestRank pins the nearest-rank definition: the
// p-th percentile of n sorted samples is the one at rank ⌈p/100·n⌉.
// The n=3/p=50 and n=10/p=99 rows fail under the old truncating
// implementation (which returned rank ⌊p/100·n⌋, i.e. the p90 when
// asked for the p99 of 10 samples).
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want sim.Duration // samples are 1..n, so want == rank
	}{
		{n: 1, p: 50, want: 1},
		{n: 1, p: 99, want: 1},
		{n: 1, p: 100, want: 1},
		{n: 3, p: 50, want: 2}, // old: 1
		{n: 3, p: 90, want: 3}, // old: 2
		{n: 3, p: 100, want: 3},
		{n: 10, p: 50, want: 5},
		{n: 10, p: 90, want: 9},
		{n: 10, p: 99, want: 10}, // old: 9 (the p90!)
		{n: 10, p: 100, want: 10},
		{n: 100, p: 50, want: 50},
		{n: 100, p: 99, want: 99},
		{n: 100, p: 99.5, want: 100}, // old: 99
		{n: 100, p: 100, want: 100},
	}
	for _, c := range cases {
		var l LatencyStats
		// Insert in reverse to exercise the sort.
		for i := c.n; i >= 1; i-- {
			l.record(sim.Duration(i))
		}
		if got := l.Percentile(c.p); got != c.want {
			t.Errorf("n=%d p=%v: got %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	var l LatencyStats
	if l.Percentile(99) != 0 {
		t.Error("empty stats must report 0")
	}
}
