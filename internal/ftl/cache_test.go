package ftl

import (
	"testing"

	"repro/internal/onfi"
)

// raceDetectorEnabled is flipped by ftl_race_test.go under -race so the
// alloc gates can skip themselves (the detector's instrumentation
// allocates, which would fail the 0-allocs assertions spuriously).
var raceDetectorEnabled = false

// cacheGeo gives one chip a 3-translation-page logical space so two
// cache slots are always under pressure: 38 exported blocks × 4 pages =
// 152 LPNs → groups of 64 entries at 512-byte pages → map pages
// {0,1,2}, first LPNs {0, 64, 128}.
func cacheGeo() onfi.Geometry {
	g := testGeo()
	g.BlocksPerLUN = 40
	return g
}

// cacheFTL builds a single-shard FTL with room for exactly two resident
// translation pages (budget 1024 B / 512 B per group).
func cacheFTL(t *testing.T) *FTL {
	t.Helper()
	f, err := NewWithConfig(Config{
		Geometry: cacheGeo(), Chips: 1, ReservedBlocks: 2,
		MapShards: 1, MapCacheBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.MapPages(); got != 3 {
		t.Fatalf("MapPages = %d, want 3 (test geometry drifted)", got)
	}
	if info := f.CacheInfo(); info.SlotsPerShard != 2 {
		t.Fatalf("SlotsPerShard = %d, want 2 (test geometry drifted)", info.SlotsPerShard)
	}
	return f
}

// TestCacheDisabledIsFree pins the legacy contract: with no budget the
// cache never engages — acquires always hit, installs are no-ops, and
// no counter moves. This is the byte-identity guarantee's FTL half.
func TestCacheDisabledIsFree(t *testing.T) {
	f, err := New(cacheGeo(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.CacheEnabled() {
		t.Fatal("cache enabled with zero budget")
	}
	for lpn := 0; lpn < 130; lpn += 13 {
		if _, err := f.AllocateWrite(lpn); err != nil {
			t.Fatal(err)
		}
		if _, hit := f.CacheAcquire(lpn); !hit {
			t.Fatalf("disabled cache missed lpn %d", lpn)
		}
	}
	if ev, fl := f.CacheInstall(1); ev || fl {
		t.Error("disabled CacheInstall evicted something")
	}
	if cs := f.CacheStats(); cs != (CacheStats{}) {
		t.Errorf("disabled cache moved counters: %+v", cs)
	}
	if info := f.CacheInfo(); info.Enabled || info.Resident != 0 {
		t.Errorf("disabled CacheInfo = %+v", info)
	}
}

// TestCacheMissInstallHit walks the demand-paging protocol: first touch
// of a translation page misses, install makes it resident, and every
// LPN in the same group then hits.
func TestCacheMissInstallHit(t *testing.T) {
	f := cacheFTL(t)
	mpn, hit := f.CacheAcquire(0)
	if hit || mpn != 0 {
		t.Fatalf("cold acquire = (%d, %v), want (0, false)", mpn, hit)
	}
	if ev, _ := f.CacheInstall(0); ev {
		t.Error("install into empty cache evicted")
	}
	// Same translation page (group 0 covers LPNs 0..63): hits.
	for _, lpn := range []int{0, 1, 63} {
		if _, hit := f.CacheAcquire(lpn); !hit {
			t.Errorf("lpn %d missed after group install", lpn)
		}
	}
	// Next group misses independently.
	if mpn, hit := f.CacheAcquire(64); hit || mpn != 1 {
		t.Errorf("lpn 64 acquire = (%d, %v), want (1, false)", mpn, hit)
	}
	// Double-install of a resident page must not evict.
	if ev, _ := f.CacheInstall(0); ev {
		t.Error("re-install of resident page evicted")
	}
	cs := f.CacheStats()
	if cs.Hits != 3 || cs.Misses != 2 || cs.Evictions != 0 {
		t.Errorf("stats = %+v, want 3 hits / 2 misses / 0 evictions", cs)
	}
	if cs.HitRate() != 0.6 {
		t.Errorf("HitRate = %v, want 0.6", cs.HitRate())
	}
}

// TestCacheClockEviction fills both slots and installs a third page:
// the clock must evict exactly one victim, keep the other resident,
// and a clean victim must not count as a flush.
func TestCacheClockEviction(t *testing.T) {
	f := cacheFTL(t)
	f.CacheAcquire(0)
	f.CacheInstall(0)
	f.CacheAcquire(64)
	f.CacheInstall(1)
	// Both slots referenced; the sweep clears both and takes the first —
	// group 0 is the deterministic victim.
	if ev, fl := f.CacheInstall(2); !ev || fl {
		t.Errorf("third install: evicted=%v flushed=%v, want true/false", ev, fl)
	}
	if _, hit := f.CacheAcquire(64); !hit {
		t.Error("group 1 should have survived the sweep")
	}
	if _, hit := f.CacheAcquire(0); hit {
		t.Error("group 0 should have been evicted")
	}
	cs := f.CacheStats()
	if cs.Evictions != 1 || cs.Flushes != 0 {
		t.Errorf("stats = %+v, want 1 clean eviction", cs)
	}
	if info := f.CacheInfo(); info.Resident != 2 {
		t.Errorf("Resident = %d, want 2", info.Resident)
	}
}

// TestCacheSecondChance pins the reference bit's effect: a recently hit
// page survives the sweep while an unreferenced one is taken.
func TestCacheSecondChance(t *testing.T) {
	f := cacheFTL(t)
	f.CacheInstall(0)
	f.CacheInstall(1)
	f.CacheInstall(2) // sweeps both refs clear, evicts group 0, installs group 2
	// Reference only group 2; group 1's bit stays clear.
	if _, hit := f.CacheAcquire(128); !hit {
		t.Fatal("group 2 not resident after install")
	}
	f.CacheInstall(0) // clock must pass over referenced group 2 and take group 1
	if _, hit := f.CacheAcquire(130); !hit {
		t.Error("referenced group 2 was evicted; second chance not honored")
	}
	if _, hit := f.CacheAcquire(64); hit {
		t.Error("unreferenced group 1 survived; wrong victim chosen")
	}
}

// TestCacheDirtyFlush pins write-back accounting: a mapping change on a
// resident page marks its slot dirty, and evicting that slot counts as
// a flush; the same change on a non-resident page is a bypass.
func TestCacheDirtyFlush(t *testing.T) {
	f := cacheFTL(t)
	f.CacheAcquire(0)
	f.CacheInstall(0)
	if _, err := f.AllocateWrite(0); err != nil { // dirties resident group 0
		t.Fatal(err)
	}
	f.CacheInstall(1)
	// Evict group 0: dirty victim → eviction AND flush.
	if ev, fl := f.CacheInstall(2); !ev || !fl {
		t.Errorf("evicting dirty page: evicted=%v flushed=%v, want both true", ev, fl)
	}
	// Mutating a non-resident group is a bypass, never a flush.
	if _, err := f.AllocateWrite(0); err != nil {
		t.Fatal(err)
	}
	cs := f.CacheStats()
	if cs.Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", cs.Flushes)
	}
	if cs.Bypasses == 0 {
		t.Error("mutation of non-resident page did not count as bypass")
	}
}

// TestCacheBudgetFloor pins the sizing floor: any positive budget gives
// every shard at least one slot, so no shard can deadlock waiting for
// DRAM it was never granted.
func TestCacheBudgetFloor(t *testing.T) {
	f, err := NewWithConfig(Config{
		Geometry: testGeo(), Chips: 4, ReservedBlocks: 2,
		MapShards: 2, MapCacheBytes: 1, // far below one group
	})
	if err != nil {
		t.Fatal(err)
	}
	if info := f.CacheInfo(); info.SlotsPerShard != 1 {
		t.Fatalf("SlotsPerShard = %d, want floor of 1", info.SlotsPerShard)
	}
	// The single slot still pages correctly in every shard.
	for _, lpn := range []int{0, 64} { // one LPN per shard at this layout
		if _, hit := f.CacheAcquire(lpn); hit {
			t.Errorf("lpn %d hit cold", lpn)
		}
		mpn := lpn / f.GroupEntries()
		f.CacheInstall(mpn)
		if _, hit := f.CacheAcquire(lpn); !hit {
			t.Errorf("lpn %d missed after install", lpn)
		}
	}
}

// TestConfigValidation pins NewWithConfig's rejection of nonsense
// budgets and shard counts.
func TestConfigValidation(t *testing.T) {
	base := Config{Geometry: testGeo(), Chips: 2, ReservedBlocks: 2}
	bad := base
	bad.MapShards = -1
	if _, err := NewWithConfig(bad); err == nil {
		t.Error("negative MapShards accepted")
	}
	bad = base
	bad.MapCacheBytes = -1
	if _, err := NewWithConfig(bad); err == nil {
		t.Error("negative MapCacheBytes accepted")
	}
}

// TestMapPageLocationDeterministic pins the address transform misses
// are charged against: stable across calls, inside the geometry, and
// striped chip-first so concurrent misses spread across the channel.
func TestMapPageLocationDeterministic(t *testing.T) {
	f, err := NewWithConfig(Config{
		Geometry: testGeo(), Chips: 4, ReservedBlocks: 2, MapCacheBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	geo := testGeo()
	for mpn := 0; mpn < f.MapPages(); mpn++ {
		loc := f.MapPageLocation(mpn)
		if loc != f.MapPageLocation(mpn) {
			t.Fatalf("mpn %d: location not stable", mpn)
		}
		if loc.Chip != mpn%4 {
			t.Errorf("mpn %d on chip %d, want chip-first striping (%d)", mpn, loc.Chip, mpn%4)
		}
		if loc.Row.Block < 0 || loc.Row.Block >= geo.BlocksPerLUN ||
			loc.Row.Page < 0 || loc.Row.Page >= geo.PagesPerBlk {
			t.Errorf("mpn %d maps outside geometry: %+v", mpn, loc)
		}
	}
}

// TestAllocGateFTLLookup is the ISSUE 9 alloc gate: the translation
// fast path — Lookup, and CacheAcquire when the page is resident — must
// not allocate. A regression here puts GC pressure on every host op.
func TestAllocGateFTLLookup(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("alloc counts are skewed under -race")
	}
	f := cacheFTL(t)
	for lpn := 0; lpn < 64; lpn++ {
		if _, err := f.AllocateWrite(lpn); err != nil {
			t.Fatal(err)
		}
	}
	f.CacheAcquire(0)
	f.CacheInstall(0) // group 0 resident → hits from here on

	lpn := 0
	if got := testing.AllocsPerRun(200, func() {
		loc, ok := f.Lookup(lpn)
		if !ok || loc.Chip < 0 {
			t.Fatal("lookup failed")
		}
		lpn = (lpn + 7) % 64
	}); got != 0 {
		t.Errorf("Lookup allocates %.1f times per call, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, hit := f.CacheAcquire(lpn); !hit {
			t.Fatal("unexpected miss on resident group")
		}
		lpn = (lpn + 7) % 64
	}); got != 0 {
		t.Errorf("hit-path CacheAcquire allocates %.1f times per call, want 0", got)
	}
}
