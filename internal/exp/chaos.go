package exp

import (
	"bytes"
	"fmt"

	"repro/internal/fault"
	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// ChaosPoint is one seeded chaos run: a mixed read/write workload with
// GC pressure driven through a BABOL-controlled SSD while a randomized
// (but seed-reproducible) fault plan torments the NAND — stuck-busy
// LUNs, program/erase fail storms, uncorrectable-ECC bursts, erratic
// tR. The run passes when the rig drains (no livelock), the FTL's
// invariants hold, and every logical page still mapped to a chip the
// plan never touched reads back byte-exact.
type ChaosPoint struct {
	Seed       int64
	Completed  int    // host commands that terminated (including failures)
	Failed     int    // host commands that terminated with an error
	FaultHits  uint64 // injected faults that actually fired
	Recoveries uint64 // controller RESET escalations (core.Stats.Recoveries)
	Reissues   uint64 // SSD-level retries after a RESET revived a chip
	Offlined   uint64 // chips removed from service
	ReadOnly   bool   // drive degraded to read-only mode
	Verified   int    // LPNs byte-verified intact on unfaulted chips
}

// chaosWays fixes the rig width: 4 LUNs on one channel gives the fault
// planner healthy chips to spare while keeping runs fast.
const chaosWays = 4

// chaosParams is the shrunk package every chaos run uses: small blocks
// so GC pressure arrives within a few hundred ops, jitter and raw bit
// errors off so every divergence in a run is the fault plan's doing.
func chaosParams() nand.Params {
	p := nand.Hynix()
	p.Geometry.Planes = 1
	p.Geometry.BlocksPerLUN = 16
	p.Geometry.PagesPerBlk = 4
	p.Geometry.PageBytes = 512
	p.Geometry.SpareBytes = 64
	p.TR = 20 * sim.Microsecond
	p.TPROG = 50 * sim.Microsecond
	p.TBERS = 200 * sim.Microsecond
	p.JitterPct = 0
	p.RawBitErrorPer512B = 0
	return p
}

// Chaos runs one soak per seed and reports what the drive survived.
// Each run derives its fault plan from its seed alone, so any chaos
// result reproduces exactly by rerunning with the same seed.
func Chaos(opt Options, seeds []int64) ([]ChaosPoint, error) {
	opt = opt.withDefaults()
	out := make([]ChaosPoint, len(seeds))
	err := sweep(opt, len(seeds), func(i int, tracer obs.Tracer) error {
		p, err := chaosRun(opt, seeds[i], tracer)
		if err != nil {
			return fmt.Errorf("chaos seed %d: %w", seeds[i], err)
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// chaosRun drives one seeded soak and checks the survival contract.
func chaosRun(opt Options, seed int64, tracer obs.Tracer) (ChaosPoint, error) {
	ops := opt.Ops
	params := chaosParams()
	geo := params.Geometry
	rows := uint32(geo.BlocksPerLUN * geo.PagesPerBlk)
	plan := fault.Randomized(seed, chaosWays, rows, params.TR)

	rig, err := ssd.Build(ssd.BuildConfig{
		Params: params, Ways: chaosWays, RateMT: 200,
		Controller: ssd.CtrlBabolCoro, CPUMHz: 1000,
		WithECC: true, Tracer: tracer, Faults: &plan,
		NoCoroPool: opt.NoCoroPool,
		Shards:     opt.Shards, HostHop: opt.HostHop,
		ShardTelemetry: opt.ShardTelemetry, TraceShardWindows: opt.TraceShardWindows,
		MapCacheBytes: opt.MapCacheBytes,
	})
	if err != nil {
		return ChaosPoint{}, err
	}
	defer rig.Close()

	// Working set small enough that overwrites create garbage quickly,
	// forcing GC (and its erases) into the fault window.
	working := 64
	if working > rig.FTL.LogicalPages() {
		working = rig.FTL.LogicalPages()
	}
	if err := rig.SSD.Preload(working); err != nil {
		return ChaosPoint{}, err
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindWrite, ReadPercent: 50,
		NumOps: ops, QueueDepth: 8, LogicalPages: working, Seed: seed,
	})
	if err != nil {
		return ChaosPoint{}, err
	}
	rig.Run()

	// Survival contract, part 1: the rig always drains. Individual
	// commands may fail (uncorrectable reads, offline chips, read-only
	// mode) but every one of them must terminate.
	if res.Done() != ops {
		return ChaosPoint{}, fmt.Errorf("livelock: only %d of %d ops terminated", res.Done(), ops)
	}
	if err := rig.FTL.CheckInvariants(); err != nil {
		return ChaosPoint{}, fmt.Errorf("FTL invariants violated: %w", err)
	}

	// Survival contract, part 2: no data loss on surviving chips. Every
	// LPN still mapped to a chip the plan never targeted must read back
	// the canonical pattern from the array.
	touched := map[int]bool{}
	for _, c := range plan.Touched() {
		touched[c] = true
	}
	verified := 0
	want := make([]byte, geo.PageBytes)
	for lpn := 0; lpn < working; lpn++ {
		loc, ok := rig.FTL.Lookup(lpn)
		if !ok || touched[loc.Chip] {
			continue
		}
		lun := rig.Channels[loc.Chip/chaosWays].Chip(loc.Chip % chaosWays)
		page, err := lun.PeekPage(loc.Row)
		if err != nil {
			return ChaosPoint{}, fmt.Errorf("peek LPN %d: %w", lpn, err)
		}
		ssd.FillPattern(want, lpn)
		if !bytes.Equal(page[:geo.PageBytes], want) {
			return ChaosPoint{}, fmt.Errorf("data loss: LPN %d at chip %d %+v does not match its pattern", lpn, loc.Chip, loc.Row)
		}
		verified++
	}

	var recoveries uint64
	for _, c := range rig.Babols {
		recoveries += c.Stats().Recoveries
	}
	st := rig.SSD.Stats()
	return ChaosPoint{
		// Completed counts terminations (successes + failures) — the
		// survival metric; Failed breaks out the failures.
		Seed: seed, Completed: res.Done(), Failed: res.Failed,
		FaultHits: plan.Hits(), Recoveries: recoveries, Reissues: st.RecoveredOps,
		Offlined: st.OfflinedChips, ReadOnly: st.ReadOnly, Verified: verified,
	}, nil
}

// ChaosCSV renders the soak results as machine-readable CSV.
func ChaosCSV(points []ChaosPoint) string {
	out := "seed,completed,failed,fault_hits,recoveries,reissues,offlined,read_only,verified\n"
	for _, p := range points {
		ro := 0
		if p.ReadOnly {
			ro = 1
		}
		out += fmt.Sprintf("%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			p.Seed, p.Completed, p.Failed, p.FaultHits, p.Recoveries, p.Reissues, p.Offlined, ro, p.Verified)
	}
	return out
}

// RenderChaos formats the soak results for humans.
func RenderChaos(points []ChaosPoint) string {
	header := fmt.Sprintf("%-10s %9s %7s %7s %10s %9s %9s %9s %9s",
		"seed", "completed", "failed", "faults", "recoveries", "reissues", "offlined", "readonly", "verified")
	var rows []string
	for _, p := range points {
		ro := "no"
		if p.ReadOnly {
			ro = "yes"
		}
		rows = append(rows, fmt.Sprintf("%-10d %9d %7d %7d %10d %9d %9d %9s %9d",
			p.Seed, p.Completed, p.Failed, p.FaultHits, p.Recoveries, p.Reissues, p.Offlined, ro, p.Verified))
	}
	return table("Chaos soak: seeded fault injection, all ops drained, unfaulted chips verified\n"+header, rows)
}
