// Package ftl implements a page-level Flash Translation Layer for one
// channel: logical-to-physical mapping, a striped write allocator that
// spreads load across the channel's chips, greedy garbage collection,
// and wear accounting.
//
// The FTL is a pure policy module: it decides *where* pages live and
// *what* to move, while the SSD assembly (internal/ssd) executes the
// resulting flash operations through a controller. That separation
// mirrors Figure 1, where the FTL requests page- and block-level
// operations that the Storage Controller implements.
//
// The package is split by concern:
//
//   - ftl.go: configuration, chip/block allocation state, write
//     allocator, wear accounting, recovery hooks (RetireBlock,
//     OfflineChip).
//   - shard.go: the L2P map, sharded by LPN range into independently
//     locked segments with lazily allocated storage.
//   - cache.go: the DRAM-budgeted translation-page cache (FMMU-style
//     demand paging of map groups with clock eviction).
//   - gc.go: garbage-collection policy (victim selection, relocation).
//
// Locking discipline (see shard.go for the map side): every chip's
// allocation state is guarded by its own mutex, and every map shard by
// its own RWMutex. Lock order is always shard → chip, and neither chip
// nor shard locks ever nest with their own kind, so the FTL is safe for
// the concurrent readers the monitoring path brings (Lookup, Stats,
// LivePages from another goroutine mid-run) as well as for parallel
// lookup storms in benchmarks.
package ftl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/onfi"
)

// Location is a physical page address on the channel.
type Location struct {
	Chip int
	Row  onfi.RowAddr
}

// invalidLPN marks a physical page holding no live logical page.
const invalidLPN = -1

// blockState tracks one physical block. The reverse map is allocated on
// first write (see allocateOn): a never-written block costs no O(pages)
// memory, which is what keeps TB-class geometries buildable.
type blockState struct {
	nextPage int   // write frontier within the block
	valid    int   // live pages
	lpns     []int // reverse map: page → LPN (or invalidLPN); nil until first write
	sealed   bool  // fully written
	bad      bool  // retired: never allocated or collected again
}

// chipState tracks allocation on one chip. Host and GC writes use
// separate active blocks ("streams"): GC must always be able to relocate
// a victim's live pages, so the host may never consume the space GC
// opened for itself. mu guards every field; chip locks are leaves (they
// never nest with each other or with map-shard locks taken after them).
type chipState struct {
	mu        sync.Mutex
	blocks    []blockState
	freeList  []int // erased blocks available for allocation
	active    int   // block accepting host writes (-1 none)
	activeGC  int   // block accepting GC relocations (-1 none)
	erases    int
	livePages int
	wear      []int // per-block erase counts (FTL's own view)
	// offline removes the chip from every allocation and GC decision
	// after the controller declared it dead (see OfflineChip).
	offline bool
}

// Config assembles an FTL. The zero value of the optional fields picks
// the defaults New uses.
type Config struct {
	Geometry onfi.Geometry
	Chips    int
	// ReservedBlocks per chip are withheld from the logical capacity as
	// GC headroom (over-provisioning); at least one is required.
	ReservedBlocks int
	// MapShards splits the L2P map into independently locked LPN-range
	// shards. Shard boundaries are rounded to whole translation-page
	// groups so a map page never straddles shards. 0 defaults to one
	// shard per chip; rigs built by internal/ssd size it to the kernel
	// shard layout instead. The shard count changes locking and memory
	// granularity only — never any allocation decision — so results are
	// identical at every count.
	MapShards int
	// MapCacheBytes bounds the DRAM the translation map may occupy:
	// map pages (groups of L2P entries, one NAND page each) are
	// demand-paged under this budget with clock eviction. 0 disables the
	// cache — the whole map is modeled as resident, the legacy behavior.
	// The effective budget is floored at one map page per shard so every
	// shard can make progress. See cache.go.
	MapCacheBytes int64
}

// FTL maps logical pages onto a channel of identical chips.
type FTL struct {
	geo      onfi.Geometry
	chips    int
	reserved int // blocks per chip kept free for GC (over-provisioning)
	logical  int

	// L2P map shards; see shard.go. shardSize is a multiple of
	// groupEntries so every translation page belongs to one shard.
	shards    []mapShard
	shardSize int

	// Translation-page cache configuration; see cache.go. groupEntries
	// is computed even when the cache is disabled (shard sizing rounds
	// to it).
	cacheEnabled  bool
	groupEntries  int // L2P entries per translation page
	groupBytes    int
	budgetBytes   int64
	slotsPerShard int

	chipRR   atomic.Int64 // round-robin write-striping cursor
	chipsArr []chipState

	n counters
}

// counters is the FTL's internal counter block. All fields are atomics
// so Stats and CacheStats snapshots are safe from any goroutine while
// the simulation mutates the FTL — the `-http` monitoring path.
type counters struct {
	hostWrites  atomic.Uint64
	flashWrites atomic.Uint64
	gcMoves     atomic.Uint64
	gcErases    atomic.Uint64
	badBlocks   atomic.Uint64

	mapHits      atomic.Uint64
	mapMisses    atomic.Uint64
	mapEvictions atomic.Uint64
	mapFlushes   atomic.Uint64
	mapBypasses  atomic.Uint64
}

// Stats counts FTL activity.
type Stats struct {
	HostWrites  uint64 // logical page writes accepted
	FlashWrites uint64 // physical page programs issued (host + GC)
	GCMoves     uint64 // live pages relocated by GC
	GCErases    uint64
	BadBlocks   uint64 // blocks retired after program/erase failures
}

// WriteAmplification reports flash writes per host write.
func (s Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 0
	}
	return float64(s.FlashWrites) / float64(s.HostWrites)
}

// New builds an FTL over `chips` identical chips with the given
// geometry and default map sharding (no map cache) — the signature
// every pre-existing caller and test uses.
func New(geo onfi.Geometry, chips, reservedBlocks int) (*FTL, error) {
	return NewWithConfig(Config{Geometry: geo, Chips: chips, ReservedBlocks: reservedBlocks})
}

// NewWithConfig builds an FTL per cfg.
func NewWithConfig(cfg Config) (*FTL, error) {
	geo := cfg.Geometry
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Chips <= 0 {
		return nil, fmt.Errorf("ftl: need at least one chip, got %d", cfg.Chips)
	}
	if cfg.ReservedBlocks < 1 || cfg.ReservedBlocks >= geo.BlocksPerLUN {
		return nil, fmt.Errorf("ftl: reserved blocks %d out of range [1,%d)", cfg.ReservedBlocks, geo.BlocksPerLUN)
	}
	if cfg.MapShards < 0 {
		return nil, fmt.Errorf("ftl: negative map shard count %d", cfg.MapShards)
	}
	if cfg.MapCacheBytes < 0 {
		return nil, fmt.Errorf("ftl: negative map cache budget %d", cfg.MapCacheBytes)
	}
	f := &FTL{geo: geo, chips: cfg.Chips, reserved: cfg.ReservedBlocks}
	f.logical = f.chips * (geo.BlocksPerLUN - f.reserved) * geo.PagesPerBlk
	f.groupEntries = geo.PageBytes / mapEntryBytes
	if f.groupEntries < 1 {
		f.groupEntries = 1
	}
	f.groupBytes = f.groupEntries * mapEntryBytes
	f.initShards(cfg.MapShards)
	f.initCache(cfg.MapCacheBytes)
	f.chipsArr = make([]chipState, cfg.Chips)
	for c := range f.chipsArr {
		cs := &f.chipsArr[c]
		cs.blocks = make([]blockState, geo.BlocksPerLUN)
		cs.wear = make([]int, geo.BlocksPerLUN)
		cs.active = -1
		cs.activeGC = -1
		cs.freeList = make([]int, 0, geo.BlocksPerLUN)
		for b := range cs.blocks {
			cs.freeList = append(cs.freeList, b)
		}
	}
	return f, nil
}

func newLPNSlice(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = invalidLPN
	}
	return s
}

// LogicalPages reports the exported logical capacity in pages.
func (f *FTL) LogicalPages() int { return f.logical }

// Geometry returns the per-chip geometry.
func (f *FTL) Geometry() onfi.Geometry { return f.geo }

// Chips reports the channel width the FTL manages.
func (f *FTL) Chips() int { return f.chips }

// Stats returns a snapshot of the counters. Safe to call from any
// goroutine while the simulation runs (the counters are atomics).
func (f *FTL) Stats() Stats {
	return Stats{
		HostWrites:  f.n.hostWrites.Load(),
		FlashWrites: f.n.flashWrites.Load(),
		GCMoves:     f.n.gcMoves.Load(),
		GCErases:    f.n.gcErases.Load(),
		BadBlocks:   f.n.badBlocks.Load(),
	}
}

// AllocateWrite assigns the next physical page for a host write of lpn,
// invalidating any previous mapping, and returns where to program. The
// caller must then actually program the page and, on success, keep the
// mapping (on program failure call Invalidate and retry).
func (f *FTL) AllocateWrite(lpn int) (Location, error) {
	loc, err := f.allocate(lpn, false)
	if err != nil {
		return loc, err
	}
	f.n.hostWrites.Add(1)
	f.n.flashWrites.Add(1)
	return loc, nil
}

// allocate places lpn on some chip. Host allocations (gc=false) must
// leave one free block per chip untouched as GC headroom: garbage
// collection needs somewhere to relocate live pages, and granting the
// host the last block would deadlock a full drive.
func (f *FTL) allocate(lpn int, gc bool) (Location, error) {
	if lpn < 0 || lpn >= f.logical {
		return Location{}, fmt.Errorf("ftl: LPN %d out of range [0,%d)", lpn, f.logical)
	}
	sh := f.shard(lpn)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Find a chip with space first: a failed write must leave any
	// existing mapping (and its data) intact.
	rr := int(f.chipRR.Load())
	chip := -1
	for try := 0; try < f.chips; try++ {
		c := (rr + try) % f.chips
		cs := &f.chipsArr[c]
		cs.mu.Lock()
		ok := f.hasSpace(cs, gc)
		cs.mu.Unlock()
		if ok {
			chip = c
			break
		}
	}
	if chip < 0 {
		return Location{}, fmt.Errorf("ftl: out of space (GC required on all chips)")
	}
	// Drop the stale copy, then place the new one (striping round-robin).
	f.clearMappingLocked(sh, lpn)
	loc, ok := f.allocateOn(chip, lpn, gc)
	if !ok {
		return Location{}, fmt.Errorf("ftl: chip %d lost its space mid-allocation", chip)
	}
	f.chipRR.Store(int64((chip + 1) % f.chips))
	f.setMappingLocked(sh, lpn, loc)
	return loc, nil
}

// hasSpace reports whether a chip can accept one more page write in the
// given stream under the GC-headroom rule: the host may never open the
// last free block. Caller holds cs.mu.
func (f *FTL) hasSpace(cs *chipState, gc bool) bool {
	if cs.offline {
		return false
	}
	if gc {
		return cs.activeGC >= 0 || len(cs.freeList) > 0
	}
	return cs.active >= 0 || len(cs.freeList) > 1
}

// allocateOn takes the chip's next page in the given stream and records
// the chip-side reverse mapping. The map-side entry is the caller's to
// set (under the LPN's shard lock, which the caller holds).
func (f *FTL) allocateOn(chip, lpn int, gc bool) (Location, bool) {
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	stream := &cs.active
	if gc {
		stream = &cs.activeGC
	}
	if *stream < 0 {
		if !f.hasSpace(cs, gc) {
			return Location{}, false
		}
		// Wear-aware allocation: open the least-worn free block, so
		// erase cycles spread evenly instead of hammering whichever
		// block happens to sit at the list head (dynamic wear leveling).
		pick := 0
		for i := 1; i < len(cs.freeList); i++ {
			if cs.wear[cs.freeList[i]] < cs.wear[cs.freeList[pick]] {
				pick = i
			}
		}
		*stream = cs.freeList[pick]
		cs.freeList = append(cs.freeList[:pick], cs.freeList[pick+1:]...)
	}
	blk := &cs.blocks[*stream]
	if blk.lpns == nil {
		blk.lpns = newLPNSlice(f.geo.PagesPerBlk)
	}
	row := onfi.RowAddr{Block: *stream, Page: blk.nextPage}
	blk.lpns[blk.nextPage] = lpn
	blk.valid++
	blk.nextPage++
	cs.livePages++
	if blk.nextPage == f.geo.PagesPerBlk {
		blk.sealed = true
		*stream = -1
	}
	return Location{Chip: chip, Row: row}, true
}

// invalidateLoc drops the chip-side reverse mapping at loc.
func (f *FTL) invalidateLoc(loc Location) {
	cs := &f.chipsArr[loc.Chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	blk := &cs.blocks[loc.Row.Block]
	if blk.lpns != nil && blk.lpns[loc.Row.Page] != invalidLPN {
		blk.lpns[loc.Row.Page] = invalidLPN
		blk.valid--
		cs.livePages--
	}
}

// FreeBlocks reports erased blocks available on a chip.
func (f *FTL) FreeBlocks(chip int) int {
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.freeList)
}

// RetireBlock permanently removes a block from service after the media
// reported a program or erase failure (grown bad block). Live pages the
// caller could not relocate must be invalidated separately; the block is
// dropped from the free list and from both write streams and will never
// be selected again. Only the owning chip's lock is taken — retirement
// on one chip never stalls lookups or GC scans elsewhere.
func (f *FTL) RetireBlock(chip, block int) {
	if chip < 0 || chip >= f.chips {
		return
	}
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if block < 0 || block >= len(cs.blocks) || cs.blocks[block].bad {
		return
	}
	blk := &cs.blocks[block]
	blk.bad = true
	blk.sealed = true
	f.n.badBlocks.Add(1)
	for i, b := range cs.freeList {
		if b == block {
			cs.freeList = append(cs.freeList[:i], cs.freeList[i+1:]...)
			break
		}
	}
	if cs.active == block {
		cs.active = -1
	}
	if cs.activeGC == block {
		cs.activeGC = -1
	}
}

// OfflineChip removes a chip from service after the controller
// declared it dead (unresponsive through RESET recovery): both write
// streams close, the chip stops being an allocation target, and GC
// never selects it again. Mappings that point at the chip are kept —
// the data may be partly recoverable offline — but reads against them
// are the caller's problem to fail fast.
func (f *FTL) OfflineChip(chip int) {
	if chip < 0 || chip >= f.chips {
		return
	}
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.offline = true
	cs.active = -1
	cs.activeGC = -1
}

// ChipOffline reports whether a chip was removed from service.
func (f *FTL) ChipOffline(chip int) bool {
	if chip < 0 || chip >= f.chips {
		return false
	}
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.offline
}

// ForceSealGC closes a chip's partially written GC-stream block so it
// becomes a collection candidate, wasting its unwritten pages. FTLs do
// this when the drive wedges with all garbage trapped in the open GC
// block: relocated pages that the host has since overwritten are dead,
// but an unsealed block can never be picked as a victim. Reports whether
// a block was sealed.
func (f *FTL) ForceSealGC(chip int) bool {
	if chip < 0 || chip >= f.chips {
		return false
	}
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.activeGC < 0 {
		return false
	}
	cs.blocks[cs.activeGC].sealed = true
	cs.activeGC = -1
	return true
}

// OnErased returns a block to a chip's free pool after the physical
// erase completed. Erasing a block that still holds live pages is a
// caller bug and panics.
func (f *FTL) OnErased(chip, block int) {
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	blk := &cs.blocks[block]
	if blk.valid != 0 {
		panic(fmt.Sprintf("ftl: erasing block %d on chip %d with %d live pages", block, chip, blk.valid))
	}
	for i := range blk.lpns {
		blk.lpns[i] = invalidLPN
	}
	blk.nextPage = 0
	blk.sealed = false
	cs.erases++
	cs.wear[block]++
	cs.freeList = append(cs.freeList, block)
	f.n.gcErases.Add(1)
}

// WearSpread reports max−min erase counts across a chip's healthy
// blocks — the metric dynamic wear leveling bounds.
func (f *FTL) WearSpread(chip int) int {
	if chip < 0 || chip >= f.chips {
		return 0
	}
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	min, max, seen := 0, 0, false
	for b := range cs.blocks {
		if cs.blocks[b].bad {
			continue
		}
		w := cs.wear[b]
		if !seen {
			min, max, seen = w, w, true
			continue
		}
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	return max - min
}

// BlockWear reports the FTL-tracked erase count of one block.
func (f *FTL) BlockWear(chip, block int) int {
	if chip < 0 || chip >= f.chips {
		return 0
	}
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if block < 0 || block >= len(cs.wear) {
		return 0
	}
	return cs.wear[block]
}

// LivePages reports mapped logical pages on a chip.
func (f *FTL) LivePages(chip int) int {
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.livePages
}
