package analyze

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// LatencySummary is the distribution of one span component across a set
// of operations.
type LatencySummary struct {
	Count               int
	Mean, P50, P90, P99 sim.Duration
	Min, Max            sim.Duration
}

// Summarize computes a nearest-rank percentile summary. The input need
// not be sorted; a copy is sorted internally.
func Summarize(samples []sim.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := make([]sim.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return LatencySummary{
		Count: len(sorted),
		Mean:  sim.Mean(sorted),
		P50:   sim.Percentile(sorted, 50),
		P90:   sim.Percentile(sorted, 90),
		P99:   sim.Percentile(sorted, 99),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
	}
}

// Components is the per-operation latency breakdown summarized across
// all complete spans: where each op's wall-clock went, as
// distributions. The four components sum to Latency per op (CellTime is
// the clamped residual absorbing the small queue-wait/firmware overlap,
// and FirmwareTime omits unattributable scheduling-pass charges).
type Components struct {
	Latency     LatencySummary
	QueueWait   LatencySummary
	ChannelTime LatencySummary
	CellTime    LatencySummary
	Firmware    LatencySummary
}

// SummarizeSpans computes the component distributions over the complete
// spans in the slice.
func SummarizeSpans(spans []Span) Components {
	var lat, qw, ch, cell, fw []sim.Duration
	for i := range spans {
		s := &spans[i]
		if !s.Complete {
			continue
		}
		lat = append(lat, s.Latency)
		qw = append(qw, s.QueueWait())
		ch = append(ch, s.ChannelTime)
		cell = append(cell, s.CellTime())
		fw = append(fw, s.FirmwareTime)
	}
	return Components{
		Latency:     Summarize(lat),
		QueueWait:   Summarize(qw),
		ChannelTime: Summarize(ch),
		CellTime:    Summarize(cell),
		Firmware:    Summarize(fw),
	}
}

// Run is the analysis of one rig's contiguous event stream.
type Run struct {
	// Index is the run's position in the trace (configuration order for
	// sweep traces).
	Index int
	Spans []Span
	// Incomplete counts spans without an observed completion.
	Incomplete int
	// Metrics is the stream replayed through the standard registry, so
	// every Table II aggregate (software/hardware time, poll counts,
	// queue depths) is available per run.
	Metrics obs.Snapshot
	// Timelines holds the per-channel reconstructions, keyed by channel
	// index.
	Timelines map[int]*Timeline
	// Violations is the protocol sanity pass over every timeline.
	Violations []Violation
	// Shards is the shard-window report for sharded traces (nil when
	// the run carries no shard-telemetry events).
	Shards *ShardReport
	// Tenants is the per-tenant QoS report for traces from the host
	// frontend's workload engine or trace replay (nil when the run
	// carries no host-cmd events).
	Tenants *TenantReport
}

// Channels returns the run's channel indices in order.
func (r *Run) Channels() []int {
	out := make([]int, 0, len(r.Timelines))
	for c := range r.Timelines {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Result is a full trace analysis: per-run detail plus cross-run
// roll-ups.
type Result struct {
	Runs []Run
	// Spans concatenates every run's spans.
	Spans []Span
	// Components summarizes the per-op breakdown across all runs.
	Components Components
	// Metrics is the whole trace replayed through one registry.
	Metrics obs.Snapshot
	// Violations concatenates every run's violations.
	Violations []Violation
}

// Analyze reconstructs spans, timelines, and violations from a raw
// event stream — the engine behind `babolbench analyze trace.jsonl`.
// Merged multi-rig traces are split into runs first (SplitRuns), so op
// IDs and virtual clocks that restart per rig never alias.
func Analyze(events []obs.Event) *Result {
	res := &Result{Metrics: replay(events)}
	for i, run := range SplitRuns(events) {
		r := Run{Index: i, Metrics: replay(run), Timelines: map[int]*Timeline{}}
		r.Spans = Correlate(run)
		r.Shards = ShardReportFromEvents(run)
		r.Tenants = TenantReportFromEvents(run)
		for _, s := range r.Spans {
			if !s.Complete {
				r.Incomplete++
			}
		}
		channels := make([]int, 0, len(r.Metrics.Channels))
		for ch := range r.Metrics.Channels {
			channels = append(channels, ch)
		}
		sort.Ints(channels)
		for _, ch := range channels {
			tl := timelineFromEvents(ch, run)
			r.Timelines[ch] = tl
			r.Violations = append(r.Violations, tl.Violations()...)
		}
		res.Spans = append(res.Spans, r.Spans...)
		res.Violations = append(res.Violations, r.Violations...)
		res.Runs = append(res.Runs, r)
	}
	res.Components = SummarizeSpans(res.Spans)
	return res
}

func replay(events []obs.Event) obs.Snapshot {
	m := obs.NewMetrics()
	m.Replay(events)
	return m.Snapshot()
}
