package loc

import (
	"os"
	"path/filepath"
	"testing"
)

const sample = `package sample

// Doc comment does not count.
func Small() int {
	// inner comment
	x := 1

	/* block
	   comment */
	return x
}

func WithSwitch(state int) int {
	switch state {
	case stReadOne:
		a := 1
		return a
	case stReadTwo, stOther:
		return 2
	case stProgOne:
		return 3
	}
	return 0
}

const (
	stReadOne = iota
	stReadTwo
	stProgOne
	stOther
)
`

func writeSample(t *testing.T) *File {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "sample.go")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(path)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFuncLines(t *testing.T) {
	f := writeSample(t)
	// Small: signature, x := 1, return x, closing brace = 4 code lines.
	n, err := f.FuncLines("Small")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("Small = %d lines, want 4", n)
	}
	if _, err := f.FuncLines("Missing"); err == nil {
		t.Error("missing function found")
	}
}

func TestFuncsLines(t *testing.T) {
	f := writeSample(t)
	a, _ := f.FuncLines("Small")
	b, _ := f.FuncLines("WithSwitch")
	sum, err := f.FuncsLines("Small", "WithSwitch")
	if err != nil {
		t.Fatal(err)
	}
	if sum != a+b {
		t.Errorf("sum = %d, want %d", sum, a+b)
	}
	if _, err := f.FuncsLines("Small", "Missing"); err == nil {
		t.Error("missing function in sum found")
	}
}

func TestCaseLines(t *testing.T) {
	f := writeSample(t)
	read, err := f.CaseLines("WithSwitch", "stRead")
	if err != nil {
		t.Fatal(err)
	}
	// case stReadOne (3 lines incl. case) + case stReadTwo (2 lines).
	if read != 5 {
		t.Errorf("stRead cases = %d lines, want 5", read)
	}
	prog, err := f.CaseLines("WithSwitch", "stProg")
	if err != nil {
		t.Fatal(err)
	}
	if prog != 2 {
		t.Errorf("stProg cases = %d lines, want 2", prog)
	}
	if _, err := f.CaseLines("Missing", "st"); err == nil {
		t.Error("missing function found")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("/nonexistent/file.go"); err == nil {
		t.Error("missing file parsed")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.go")
	os.WriteFile(bad, []byte("not go at all {"), 0o644)
	if _, err := Parse(bad); err == nil {
		t.Error("invalid Go parsed")
	}
}

func TestFindRepoRoot(t *testing.T) {
	root, err := FindRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("root %s has no go.mod", root)
	}
}

// TestRealSourcesCount sanity-checks the Table II inputs: BABOL's READ
// operation must be dramatically shorter than the hardware FSM's READ
// states plus shared machinery.
func TestRealSourcesCount(t *testing.T) {
	root, err := FindRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	opsFile, err := Parse(filepath.Join(root, "internal/ops/ops.go"))
	if err != nil {
		t.Fatal(err)
	}
	babolRead, err := opsFile.FuncsLines("ReadPage", "pollReady", "ReadStatus")
	if err != nil {
		t.Fatal(err)
	}
	fsmFile, err := Parse(filepath.Join(root, "internal/hwctrl/fsm.go"))
	if err != nil {
		t.Fatal(err)
	}
	hwRead, err := fsmFile.CaseLines("busStep", "stRead")
	if err != nil {
		t.Fatal(err)
	}
	hwShared, err := fsmFile.FuncsLines("loadNext", "fail", "complete", "waitRB")
	if err != nil {
		t.Fatal(err)
	}
	if babolRead <= 0 || hwRead <= 0 || hwShared <= 0 {
		t.Fatalf("counts: babol=%d hw=%d shared=%d", babolRead, hwRead, hwShared)
	}
	if babolRead >= hwRead+hwShared {
		t.Errorf("BABOL READ (%d) should be smaller than HW READ (%d+%d)", babolRead, hwRead, hwShared)
	}
}
