package hic

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// faultyDrive completes commands after a fixed latency, failing every
// failEvery-th submission (1-indexed).
type faultyDrive struct {
	k         *sim.Kernel
	latency   sim.Duration
	failEvery int
	submitted int
}

var errUncorrectable = errors.New("uncorrectable")

func (d *faultyDrive) Submit(cmd Command) {
	d.submitted++
	var err error
	if d.failEvery > 0 && d.submitted%d.failEvery == 0 {
		err = errUncorrectable
	}
	d.k.After(d.latency, func() { cmd.Done(err) })
}

// TestResultSplitsFailures is the accounting-bugfix regression: Result
// once counted failed commands in Completed and folded their latencies
// into the distribution, inflating bandwidth and latency of faulting
// runs. Completed must count successes only, Failed the rest, Done()
// the terminations, and the latency samples successes only.
func TestResultSplitsFailures(t *testing.T) {
	k := sim.NewKernel()
	d := &faultyDrive{k: k, latency: sim.Microsecond, failEvery: 3}
	res, err := Run(k, d, Workload{
		Pattern: Sequential, Kind: KindRead,
		NumOps: 9, QueueDepth: 1, LogicalPages: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Completed != 6 {
		t.Errorf("Completed = %d, want 6 (successes only)", res.Completed)
	}
	if res.Failed != 3 {
		t.Errorf("Failed = %d, want 3", res.Failed)
	}
	if res.Done() != 9 {
		t.Errorf("Done() = %d, want 9", res.Done())
	}
	if len(res.latencies) != 6 {
		t.Errorf("latency samples = %d, want 6 (failures excluded)", len(res.latencies))
	}
	// End advances on failures too: the run's extent covers every
	// termination, so a failure-ending run still has a span.
	if res.Elapsed() != 9*sim.Microsecond {
		t.Errorf("Elapsed = %v, want 9us", res.Elapsed())
	}
	// Bandwidth and IOPS rate successes over the full span.
	if got, want := res.IOPS(), 6/res.Elapsed().Seconds(); got != want {
		t.Errorf("IOPS = %v, want %v", got, want)
	}
}

// TestReplayTraceSplitsFailures covers the same regression on the
// text-trace path.
func TestReplayTraceSplitsFailures(t *testing.T) {
	k := sim.NewKernel()
	d := &faultyDrive{k: k, latency: sim.Microsecond, failEvery: 2}
	res, err := ReplayTrace(k, d, []TraceEntry{
		{At: 0, Kind: KindRead, LPN: 0},
		{At: 0, Kind: KindRead, LPN: 1},
		{At: 0, Kind: KindRead, LPN: 2},
		{At: 0, Kind: KindRead, LPN: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Completed != 2 || res.Failed != 2 || res.Done() != 4 {
		t.Errorf("completed=%d failed=%d done=%d, want 2/2/4", res.Completed, res.Failed, res.Done())
	}
	if len(res.latencies) != 2 {
		t.Errorf("latency samples = %d, want 2", len(res.latencies))
	}
}

// TestMixedRWZeroReadPercent is the MixedRW-bugfix regression:
// ReadPercent 0 once meant "pure workload Kind", so an all-write mixed
// workload was inexpressible. MixedRW marks the workload as mixed
// explicitly; with ReadPercent 0 it must issue only writes.
func TestMixedRWZeroReadPercent(t *testing.T) {
	k := sim.NewKernel()
	kinds := map[Kind]int{}
	d := &kindDrive{k: k, kinds: kinds}
	res, err := Run(k, d, Workload{
		Pattern: Sequential, Kind: KindRead, MixedRW: true, ReadPercent: 0,
		NumOps: 20, QueueDepth: 2, LogicalPages: 16, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Completed != 20 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if kinds[KindWrite] != 20 || kinds[KindRead] != 0 {
		t.Errorf("kinds = %v, want 20 writes and 0 reads", kinds)
	}
}

// TestLegacyReadPercentStillMixes pins fig12 compatibility: ReadPercent
// > 0 without MixedRW keeps mixing exactly as before.
func TestLegacyReadPercentStillMixes(t *testing.T) {
	k := sim.NewKernel()
	kinds := map[Kind]int{}
	d := &kindDrive{k: k, kinds: kinds}
	res, err := Run(k, d, Workload{
		Pattern: Sequential, Kind: KindWrite, ReadPercent: 50,
		NumOps: 40, QueueDepth: 2, LogicalPages: 16, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Completed != 40 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if kinds[KindRead] == 0 || kinds[KindWrite] == 0 {
		t.Errorf("kinds = %v, want both reads and writes", kinds)
	}
	if kinds[KindRead]+kinds[KindWrite] != 40 {
		t.Errorf("kinds = %v, want 40 total", kinds)
	}
}

// TestPureKindDrawsNoRNG pins the legacy path's RNG stream: an unmixed
// workload must not consume mix draws, so address sequences (and every
// figure built on them) stay byte-identical to pre-MixedRW builds.
func TestPureKindDrawsNoRNG(t *testing.T) {
	lpns := func(w Workload) []int {
		k := sim.NewKernel()
		d := &fakeDrive{k: k, latency: sim.Microsecond}
		if _, err := Run(k, d, w); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return d.seen
	}
	base := Workload{Pattern: Random, Kind: KindWrite, NumOps: 20, QueueDepth: 2, LogicalPages: 64, Seed: 9}
	mixed := base
	mixed.MixedRW = true
	mixed.ReadPercent = 0
	// The mixed run draws a kind per op from the same RNG, so its
	// address stream must diverge from the pure run's — proving the pure
	// path never touched those draws.
	a, b := lpns(base), lpns(mixed)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("mixed and pure runs drew identical address streams; pure path is consuming mix draws")
	}
}

// kindDrive counts submissions by command kind.
type kindDrive struct {
	k     *sim.Kernel
	kinds map[Kind]int
}

func (d *kindDrive) Submit(cmd Command) {
	d.kinds[cmd.Kind]++
	d.k.After(sim.Microsecond, func() { cmd.Done(nil) })
}

// neverDrive accepts commands and never completes them.
type neverDrive struct{}

func (neverDrive) Submit(Command) {}

// TestEmptyRunElapsed is the zero-completion-bugfix regression: a run
// in which nothing completed once reported End−Start < 0 when started
// at a nonzero virtual time, driving bandwidth/IOPS negative. Elapsed
// must be 0, and the rate helpers must return 0.
func TestEmptyRunElapsed(t *testing.T) {
	k := sim.NewKernel()
	var res *Result
	k.After(5*sim.Microsecond, func() {
		var err error
		res, err = Run(k, neverDrive{}, Workload{
			Pattern: Sequential, Kind: KindRead,
			NumOps: 4, QueueDepth: 2, LogicalPages: 8,
		})
		if err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if res == nil {
		t.Fatal("run never started")
	}
	if res.Completed != 0 || res.Failed != 0 {
		t.Fatalf("result: %+v", res)
	}
	if got := res.Elapsed(); got != 0 {
		t.Errorf("Elapsed = %v, want 0 for a run with no completions", got)
	}
	if res.BandwidthMBps(4096) != 0 || res.IOPS() != 0 {
		t.Errorf("rates nonzero on empty run: %v MB/s, %v IOPS", res.BandwidthMBps(4096), res.IOPS())
	}
}
