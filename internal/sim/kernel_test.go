package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{500 * Picosecond, "500ps"},
		{3 * Nanosecond, "3ns"},
		{53 * Microsecond, "53us"},
		{1500 * Microsecond, "1.5ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d ps).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationStd(t *testing.T) {
	if got := (53 * Microsecond).Std(); got != 53*time.Microsecond {
		t.Errorf("Std() = %v, want 53µs", got)
	}
	if got := (999 * Picosecond).Std(); got != 0 {
		t.Errorf("sub-ns Std() = %v, want 0", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: got %d", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d", d)
	}
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(30, func() { order = append(order, 3) })
	k.After(10, func() { order = append(order, 1) })
	k.After(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %v, want 30", k.Now())
	}
}

func TestKernelFIFOAtSameInstant(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var hits []Time
	k.After(10, func() {
		hits = append(hits, k.Now())
		k.After(5, func() { hits = append(hits, k.Now()) })
	})
	k.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested scheduling: %v", hits)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	id := k.After(10, func() { fired = true })
	k.Cancel(id)
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Executed() != 0 {
		t.Fatalf("executed = %d, want 0", k.Executed())
	}
}

func TestKernelCancelOneOfMany(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(10, func() { order = append(order, 1) })
	id := k.After(10, func() { order = append(order, 2) })
	k.After(10, func() { order = append(order, 3) })
	k.Cancel(id)
	k.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("cancel in middle: %v", order)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.After(10, func() { fired = append(fired, k.Now()) })
	k.After(20, func() { fired = append(fired, k.Now()) })
	k.After(30, func() { fired = append(fired, k.Now()) })
	k.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("RunUntil fired %d events, want 2", len(fired))
	}
	if k.Now() != 20 {
		t.Fatalf("clock = %v, want 20", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	// Clock advances to deadline even with no events.
	k.RunUntil(25)
	if k.Now() != 25 {
		t.Fatalf("clock = %v, want 25", k.Now())
	}
}

func TestKernelRunFor(t *testing.T) {
	k := NewKernel()
	n := 0
	k.After(10, func() { n++ })
	k.After(100, func() { n++ })
	k.RunFor(50)
	if n != 1 {
		t.Fatalf("RunFor(50) fired %d events, want 1", n)
	}
	if k.Now() != 50 {
		t.Fatalf("clock = %v", k.Now())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	n := 0
	k.After(10, func() { n++; k.Stop() })
	k.After(20, func() { n++ })
	k.Run()
	if n != 1 {
		t.Fatalf("Stop did not halt the run: n=%d", n)
	}
	// A subsequent Run resumes.
	k.Run()
	if n != 2 {
		t.Fatalf("resume after Stop: n=%d", n)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewKernel().After(-1, func() {})
}

// Property: for any batch of random (non-negative) delays, events fire in
// non-decreasing time order and the count matches.
func TestKernelMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var times []Time
		for _, d := range delays {
			k.After(Duration(d), func() { times = append(times, k.Now()) })
		}
		k.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: two kernels fed the same seeded workload produce identical
// firing sequences (determinism).
func TestKernelDeterminismProperty(t *testing.T) {
	run := func(seed int64) []int64 {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var trace []int64
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 3 {
				return
			}
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				d := Duration(rng.Intn(1000))
				k.After(d, func() {
					trace = append(trace, int64(k.Now()))
					spawn(depth + 1)
				})
			}
		}
		spawn(0)
		k.Run()
		return trace
	}
	for seed := int64(1); seed <= 5; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d", seed, i)
			}
		}
	}
}

// TestKernelCancelAfterFireIsNoOp is the regression test for the
// cancelled-map leak: the seed kernel recorded every Cancel of an
// already-fired event in a map that was only drained when a live event
// with the same ID was popped — so cancelling fired events grew memory
// forever. The slot/generation kernel must retain no state at all for
// such cancels.
func TestKernelCancelAfterFireIsNoOp(t *testing.T) {
	k := NewKernel()
	var ids []EventID
	for i := 0; i < 100; i++ {
		ids = append(ids, k.After(Duration(i), func() {}))
	}
	k.Run()
	for _, id := range ids {
		k.Cancel(id) // already fired: must be a no-op
		k.Cancel(id) // and double-cancel too
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d after cancelling fired events, want 0", k.Pending())
	}
	// White-box: every slot is back on the free list and nothing was
	// retained for the stale cancels.
	if len(k.free) != len(k.slots) {
		t.Fatalf("%d of %d slots free after quiescence", len(k.free), len(k.slots))
	}
	if len(k.heap) != 0 {
		t.Fatalf("heap holds %d entries after quiescence", len(k.heap))
	}
	// The kernel stays fully functional afterwards.
	fired := false
	k.After(5, func() { fired = true })
	k.Run()
	if !fired {
		t.Fatal("event scheduled after stale cancels did not fire")
	}
}

// TestKernelStaleCancelDoesNotKillSlotReuse: a stale EventID whose slot
// has been recycled by a new event must not cancel the new occupant —
// the generation stamp protects it.
func TestKernelStaleCancelDoesNotKillSlotReuse(t *testing.T) {
	k := NewKernel()
	stale := k.After(1, func() {})
	k.Run() // fires; slot goes back on the free list
	fired := false
	fresh := k.After(1, func() { fired = true }) // recycles the slot
	if fresh == stale {
		t.Fatal("recycled slot reissued the same EventID")
	}
	k.Cancel(stale) // must not touch the new occupant
	k.Run()
	if !fired {
		t.Fatal("stale cancel killed the slot's new occupant")
	}
}

// TestKernelPendingExcludesCancelled: Pending reports live events only.
// The seed kernel counted cancelled events still sitting in the queue.
func TestKernelPendingExcludesCancelled(t *testing.T) {
	k := NewKernel()
	k.After(10, func() {})
	id := k.After(20, func() {})
	k.After(30, func() {})
	if k.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", k.Pending())
	}
	k.Cancel(id)
	if k.Pending() != 2 {
		t.Fatalf("pending = %d after cancel, want 2", k.Pending())
	}
	k.Cancel(id) // double-cancel must not double-decrement
	if k.Pending() != 2 {
		t.Fatalf("pending = %d after double cancel, want 2", k.Pending())
	}
	k.Run()
	if k.Pending() != 0 || k.Executed() != 2 {
		t.Fatalf("pending = %d, executed = %d after run, want 0, 2", k.Pending(), k.Executed())
	}
}

// TestKernelZeroEventIDNeverIssued: the zero EventID is documented as
// invalid so callers can use it as a "no event" sentinel; cancelling it
// must be safe.
func TestKernelZeroEventIDNeverIssued(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 10; i++ {
		if id := k.After(Duration(i), func() {}); id == 0 {
			t.Fatal("kernel issued the zero EventID")
		}
	}
	k.Cancel(0) // must be a harmless no-op
	k.Run()
	if k.Executed() != 10 {
		t.Fatalf("executed = %d, want 10", k.Executed())
	}
}

// TestKernelSteadyStateDoesNotAllocate: once the slot and heap arrays
// reach the simulation's high-water mark, the schedule/fire cycle must
// be allocation-free (the closure below captures nothing, so it is
// statically allocated).
func TestKernelSteadyStateDoesNotAllocate(t *testing.T) {
	k := NewKernel()
	var churn func()
	n := 0
	churn = func() {
		if n++; n < 1000 {
			k.After(7, churn)
		}
	}
	k.After(7, churn)
	k.Run() // grow to high-water mark
	n = 0
	avg := testing.AllocsPerRun(10, func() {
		n = 0
		k.After(7, churn)
		k.Run()
	})
	if avg > 0 {
		t.Errorf("steady-state schedule/fire allocated %.1f objects per 1000 events", avg)
	}
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 100; j++ {
			k.After(Duration(j), func() {})
		}
		k.Run()
	}
}

// BenchmarkKernelSchedule measures the steady-state schedule/fire hot
// path on a warmed kernel — the per-event cost the whole simulator sits
// on. Run with -benchmem: the target is zero allocs/op.
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	// Warm the slot and heap arrays to their high-water mark.
	for j := 0; j < 64; j++ {
		k.After(Duration(j), fn)
	}
	k.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(1, fn)
		k.Step()
	}
}

// BenchmarkKernelScheduleCancel measures the schedule/cancel/reap cycle:
// half the scheduled events are cancelled before firing.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep := k.After(1, fn)
		drop := k.After(2, fn)
		k.Cancel(drop)
		_ = keep
		k.Run()
	}
}
