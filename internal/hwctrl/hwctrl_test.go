package hwctrl

import (
	"bytes"
	"testing"

	"repro/internal/bus"
	"repro/internal/dram"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/sim"
	"repro/internal/wave"
)

func smallParams() nand.Params {
	p := nand.Hynix()
	p.Geometry = onfi.Geometry{Planes: 1, BlocksPerLUN: 8, PagesPerBlk: 4, PageBytes: 256, SpareBytes: 16}
	p.JitterPct = 0
	return p
}

func newRig(t *testing.T, chips int) (*sim.Kernel, *Controller, *dram.Buffer) {
	t.Helper()
	k := sim.NewKernel()
	ch, err := bus.New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}, onfi.DefaultTiming(), wave.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chips; i++ {
		l, err := nand.NewLUN(smallParams())
		if err != nil {
			t.Fatal(err)
		}
		ch.Attach(l)
	}
	mem := dram.New(1 << 20)
	return k, New(k, ch, mem), mem
}

func TestHWRead(t *testing.T) {
	k, c, mem := newRig(t, 1)
	want := bytes.Repeat([]byte{0xBD}, 256)
	if err := c.Channel().Chip(0).SeedPage(onfi.RowAddr{Block: 1, Page: 2}, want); err != nil {
		t.Fatal(err)
	}
	var opErr error
	done := false
	err := c.Submit(0, Request{
		Kind:     KindRead,
		Addr:     onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 2}},
		DRAMAddr: 0, N: 256,
		Done: func(e error) { opErr = e; done = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !done || opErr != nil {
		t.Fatalf("done=%v err=%v", done, opErr)
	}
	got, _ := mem.Read(0, 256)
	if !bytes.Equal(got, want) {
		t.Error("read data mismatch")
	}
	// The waveform is legal ONFI.
	chk := wave.NewChecker(c.Channel().Timing(), c.Channel().Config())
	if vs := chk.Check(c.Channel().Recorder().Segments()); len(vs) != 0 {
		t.Errorf("waveform violations: %v", vs)
	}
}

func TestHWProgramAndErase(t *testing.T) {
	k, c, mem := newRig(t, 1)
	payload := bytes.Repeat([]byte{0x2F}, 128)
	if err := mem.Write(0, payload); err != nil {
		t.Fatal(err)
	}
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 2, Page: 0}}
	var sequence []string
	c.Submit(0, Request{
		Kind: KindProgram, Addr: addr, DRAMAddr: 0, N: 128,
		Done: func(e error) {
			if e != nil {
				t.Errorf("program: %v", e)
			}
			sequence = append(sequence, "program")
			c.Submit(0, Request{
				Kind: KindErase, Addr: addr,
				Done: func(e error) {
					if e != nil {
						t.Errorf("erase: %v", e)
					}
					sequence = append(sequence, "erase")
				},
			})
		},
	})
	k.Run()
	if len(sequence) != 2 {
		t.Fatalf("sequence: %v", sequence)
	}
	lun := c.Channel().Chip(0)
	if lun.EraseCount(2) != 1 {
		t.Error("erase missing")
	}
	page, _ := lun.PeekPage(addr.Row)
	if page[0] != 0xFF {
		t.Error("erase did not clear page")
	}
}

func TestHWFailSurfaces(t *testing.T) {
	k, c, _ := newRig(t, 1)
	c.Channel().Chip(0).MarkBad(3)
	var got error
	c.Submit(0, Request{
		Kind: KindProgram, Addr: onfi.Addr{Row: onfi.RowAddr{Block: 3}}, DRAMAddr: 0, N: 16,
		Done: func(e error) { got = e },
	})
	k.Run()
	if got == nil {
		t.Error("program to bad block did not fail")
	}
	if c.Stats().OpsFailed != 1 {
		t.Errorf("stats: %+v", c.Stats())
	}
}

func TestHWInterleavesLUNs(t *testing.T) {
	k, c, _ := newRig(t, 4)
	for i := 0; i < 4; i++ {
		if err := c.Channel().Chip(i).SeedPage(onfi.RowAddr{}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	completions := 0
	for i := 0; i < 4; i++ {
		c.Submit(i, Request{
			Kind: KindRead, Addr: onfi.Addr{}, DRAMAddr: i * 1024, N: 256,
			Done: func(e error) {
				if e != nil {
					t.Error(e)
				}
				completions++
			},
		})
	}
	k.Run()
	if completions != 4 {
		t.Fatalf("completions = %d", completions)
	}
	// tRs overlapped: total below serial time.
	serial := 4 * (smallParams().TR + 50*sim.Microsecond)
	if sim.Duration(k.Now()) >= serial {
		t.Errorf("no interleaving: %v", k.Now())
	}
}

func TestHWQueuesPerLUN(t *testing.T) {
	k, c, _ := newRig(t, 1)
	if err := c.Channel().Chip(0).SeedPage(onfi.RowAddr{}, []byte{9}); err != nil {
		t.Fatal(err)
	}
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.Submit(0, Request{
			Kind: KindRead, Addr: onfi.Addr{}, DRAMAddr: i * 512, N: 64,
			Done: func(e error) {
				if e != nil {
					t.Error(e)
				}
				order = append(order, i)
			},
		})
	}
	if c.Pending() != 3 {
		t.Errorf("pending = %d", c.Pending())
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order: %v", order)
		}
	}
	if c.Pending() != 0 {
		t.Error("pending after drain")
	}
}

func TestHWSubmitValidation(t *testing.T) {
	_, c, _ := newRig(t, 1)
	if err := c.Submit(5, Request{}); err == nil {
		t.Error("out-of-range LUN accepted")
	}
}

func TestHWFasterThanReactionBound(t *testing.T) {
	// A single read's end-to-end time should be close to the physical
	// minimum: latch + tR + status + column + transfer + small reaction
	// overheads. Verify we are within 5 µs of that bound.
	k, c, _ := newRig(t, 1)
	if err := c.Channel().Chip(0).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	var end sim.Time
	c.Submit(0, Request{
		Kind: KindRead, Addr: onfi.Addr{}, DRAMAddr: 0, N: 256,
		Done: func(e error) { end = k.Now() },
	})
	k.Run()
	tm := c.Channel().Timing()
	cfg := c.Channel().Config()
	physical := tm.LatchSegment(7) + smallParams().TR +
		tm.LatchSegment(1) + tm.TWHR + tm.DataSegment(cfg, 1) + // status
		tm.LatchSegment(4) + tm.TWHR + tm.DataSegment(cfg, 256)
	slack := sim.Duration(end) - physical
	if slack < 0 {
		t.Fatalf("completed faster than physics: %v < %v", end, physical)
	}
	if slack > 5*sim.Microsecond {
		t.Errorf("hardware overhead %v too large (end %v, physical %v)", slack, end, physical)
	}
}
