package nand

import (
	"testing"
	"testing/quick"

	"repro/internal/onfi"
	"repro/internal/sim"
)

func TestParamPageRoundTrip(t *testing.T) {
	for _, p := range Presets() {
		pg := buildParameterPage(p)
		if len(pg) != ParamPageSize {
			t.Fatalf("%s: page size %d", p.Name, len(pg))
		}
		parsed, ok := ParseParameterPage(pg)
		if !ok {
			t.Fatalf("%s: own page fails validation", p.Name)
		}
		if parsed.Geometry != p.Geometry {
			t.Errorf("%s: geometry %+v != %+v", p.Name, parsed.Geometry, p.Geometry)
		}
		if parsed.Manufacturer != p.Name {
			t.Errorf("%s: manufacturer %q", p.Name, parsed.Manufacturer)
		}
		if parsed.MaxPECycles != p.MaxPECycles {
			t.Errorf("%s: endurance %d", p.Name, parsed.MaxPECycles)
		}
	}
}

func TestParamPageCorruptionDetected(t *testing.T) {
	pg := buildParameterPage(Hynix())
	pg[ppPageBytes] ^= 1
	if _, ok := ParseParameterPage(pg); ok {
		t.Error("corrupted page validated")
	}
	pg2 := buildParameterPage(Hynix())
	pg2[0] = 'X'
	if _, ok := ParseParameterPage(pg2); ok {
		t.Error("bad signature validated")
	}
	if _, ok := ParseParameterPage(pg2[:10]); ok {
		t.Error("short page validated")
	}
}

// Property: any single-byte corruption of the covered region is caught.
func TestParamPageCRCProperty(t *testing.T) {
	base := buildParameterPage(Toshiba())
	f := func(pos uint8, flip uint8) bool {
		if flip == 0 {
			return true
		}
		pg := append([]byte(nil), base...)
		pg[int(pos)%ppCRC] ^= flip
		_, ok := ParseParameterPage(pg)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadParameterPageProtocol(t *testing.T) {
	l := newTestLUN(t)
	if err := l.Latch(0, []onfi.Latch{
		onfi.CmdLatch(onfi.CmdReadParameterPg), onfi.AddrLatch(0),
	}); err != nil {
		t.Fatal(err)
	}
	if l.Ready(0) {
		t.Fatal("ready immediately — parameter page fetch takes time")
	}
	done := sim.Time(0).Add(tParamPage)
	raw, err := l.DataOut(done, ParamPageSize)
	if err != nil {
		t.Fatal(err)
	}
	parsed, ok := ParseParameterPage(raw)
	if !ok {
		t.Fatal("page from protocol fails validation")
	}
	if parsed.Geometry != l.Params().Geometry {
		t.Error("geometry mismatch")
	}
	// The page repeats: reading again continues into the next copy.
	raw2, err := l.DataOut(done, ParamPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ParseParameterPage(raw2); !ok {
		t.Error("second copy invalid")
	}
}

func TestPhaseCorruption(t *testing.T) {
	p := smallParams()
	p.PhaseOptimal = 12 // far from the boot default of 8
	l, err := NewLUN(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SeedPage(onfi.RowAddr{}, []byte{0x11, 0x22, 0x33}); err != nil {
		t.Fatal(err)
	}
	// At the boot-default phase, reads corrupt.
	latchRead(t, l, 0, onfi.Addr{})
	now := sim.Time(0).Add(p.TR)
	got, err := l.DataOut(now, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 0x11 {
		t.Error("misphased read returned clean data")
	}
	// Trim the phase into the window: reads clean up.
	if err := l.Latch(now, []onfi.Latch{
		onfi.CmdLatch(onfi.CmdSetFeatures), onfi.AddrLatch(byte(onfi.FeatOutputPhase)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.DataIn(now, []byte{11, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	latchRead(t, l, now, onfi.Addr{})
	now = now.Add(2 * p.TR)
	got, err = l.DataOut(now, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x11 || got[1] != 0x22 {
		t.Errorf("in-window read corrupt: % X", got)
	}
}

func TestDefaultPhaseNeedsNoCalibration(t *testing.T) {
	l := newTestLUN(t) // PhaseOptimal zero → default 8 = boot register
	if err := l.SeedPage(onfi.RowAddr{}, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	latchRead(t, l, 0, onfi.Addr{})
	got, err := l.DataOut(sim.Time(0).Add(l.Params().TR), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA {
		t.Error("default-phase read corrupted")
	}
}
