package sched

// ring is a growable circular queue. The append/q[1:] idiom the queues
// previously used leaks capacity on every pop, so a steady push/pop
// stream reallocates forever; the ring recycles its backing array and
// allocates nothing once it reaches its high-water size.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ring[T]) pop() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero // drop the reference so popped items can be collected
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

func (r *ring[T]) grow() {
	size := 2 * len(r.buf)
	if size < 4 {
		size = 4
	}
	next := make([]T, size)
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = next
	r.head = 0
}
