package nand

import "repro/internal/onfi"

// The ONFI parameter page: a 256-byte self-description every compliant
// package returns after READ PARAMETER PAGE (0xEC). BABOL's boot and
// calibration flows read it to discover geometry and to verify data-path
// integrity (a corrupted page fails its CRC, which is how phase
// calibration scores a candidate setting).

// ParamPageSize is the size of one parameter-page copy.
const ParamPageSize = 256

// Parameter-page field offsets (ONFI 5.1 §5.7, subset).
const (
	ppSignature    = 0  // "ONFI"
	ppRevision     = 4  // supported revision bitfield
	ppManufacturer = 32 // 12-byte ASCII manufacturer
	ppModel        = 44 // 20-byte ASCII model
	ppJEDECID      = 64
	ppPageBytes    = 80 // uint32 data bytes per page
	ppSpareBytes   = 84 // uint16 spare bytes per page
	ppPagesPerBlk  = 92 // uint32
	ppBlocksPerLUN = 96 // uint32
	ppLUNCount     = 100
	ppPlaneAddr    = 180 // bits 0-3: plane address bits (planes = 1<<n)
	ppMaxPECycles  = 105 // nonstandard placement, documented: uint32 endurance
	ppCRC          = 254 // ONFI CRC-16 over bytes 0..253
)

// buildParameterPage renders the package's parameter page.
func buildParameterPage(p Params) []byte {
	pg := make([]byte, ParamPageSize)
	copy(pg[ppSignature:], "ONFI")
	pg[ppRevision] = 0x3E // revisions 2.x-5.x
	copy(pg[ppManufacturer:], padded(p.Name, 12))
	copy(pg[ppModel:], padded(p.Name+"-SIM", 20))
	if len(p.IDBytes) > 0 {
		pg[ppJEDECID] = p.IDBytes[0]
	}
	put32(pg[ppPageBytes:], uint32(p.Geometry.PageBytes))
	put16(pg[ppSpareBytes:], uint16(p.Geometry.SpareBytes))
	put32(pg[ppPagesPerBlk:], uint32(p.Geometry.PagesPerBlk))
	put32(pg[ppBlocksPerLUN:], uint32(p.Geometry.BlocksPerLUN))
	pg[ppLUNCount] = 1
	put32(pg[ppMaxPECycles:], uint32(p.MaxPECycles))
	planeBits := 0
	for 1<<planeBits < p.Geometry.Planes {
		planeBits++
	}
	pg[ppPlaneAddr] = byte(planeBits)
	put16(pg[ppCRC:], ParamPageCRC(pg[:ppCRC]))
	return pg
}

func padded(s string, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = ' '
	}
	copy(out, s)
	return out
}

func put16(b []byte, v uint16) { b[0], b[1] = byte(v), byte(v>>8) }
func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func get16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// ParamPageCRC computes the ONFI parameter-page CRC-16: polynomial
// 0x8005, initial value 0x4F4E ("NO" — the spec's nod to "ONFI"), MSB
// first, no reflection.
func ParamPageCRC(data []byte) uint16 {
	crc := uint16(0x4F4E)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x8005
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// ParsedParamPage is the decoded subset BABOL's boot flow consumes.
type ParsedParamPage struct {
	Manufacturer string
	Model        string
	Geometry     onfi.Geometry
	MaxPECycles  int
}

// ParseParameterPage validates the signature and CRC and decodes the
// geometry fields. It returns ok=false for a corrupted page (wrong
// signature or CRC) — the integrity signal calibration keys on.
func ParseParameterPage(pg []byte) (ParsedParamPage, bool) {
	if len(pg) < ParamPageSize {
		return ParsedParamPage{}, false
	}
	if string(pg[ppSignature:ppSignature+4]) != "ONFI" {
		return ParsedParamPage{}, false
	}
	if get16(pg[ppCRC:]) != ParamPageCRC(pg[:ppCRC]) {
		return ParsedParamPage{}, false
	}
	return ParsedParamPage{
		Manufacturer: trimmed(pg[ppManufacturer : ppManufacturer+12]),
		Model:        trimmed(pg[ppModel : ppModel+20]),
		Geometry: onfi.Geometry{
			Planes:       1 << pg[ppPlaneAddr],
			BlocksPerLUN: int(get32(pg[ppBlocksPerLUN:])),
			PagesPerBlk:  int(get32(pg[ppPagesPerBlk:])),
			PageBytes:    int(get32(pg[ppPageBytes:])),
			SpareBytes:   int(get16(pg[ppSpareBytes:])),
		},
		MaxPECycles: int(get32(pg[ppMaxPECycles:])),
	}, true
}

func trimmed(b []byte) string {
	end := len(b)
	for end > 0 && (b[end-1] == ' ' || b[end-1] == 0) {
		end--
	}
	return string(b[:end])
}
