// Quickstart: build a BABOL system, program a page, read it back, and
// print the channel waveform — the fastest tour of the public API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/babol"
	"repro/internal/onfi"
)

func main() {
	// A default system: Hynix packages (Table I), 8 LUNs, 200 MT/s,
	// RTOS software environment on a 1 GHz firmware core.
	sys, err := babol.NewSystem(babol.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Stage a page of data in DRAM at address 0.
	payload := bytes.Repeat([]byte("BABOL! "), 2400)[:16384]
	if err := sys.DRAM().Write(0, payload); err != nil {
		log.Fatal(err)
	}

	// PROGRAM it to chip 2, block 5, page 0, then READ it back to DRAM
	// address 65536. Operations run asynchronously in virtual time;
	// chaining happens in completion callbacks.
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 5, Page: 0}}
	sys.Start(babol.OpRequest{
		Func: babol.ProgramPage(addr, 0, 16384),
		Chip: 2,
		Done: func(err error) {
			if err != nil {
				log.Fatal("program failed: ", err)
			}
			fmt.Printf("programmed 16 KiB at t=%v\n", sys.Now())
			sys.Start(babol.OpRequest{
				Func: babol.ReadPage(addr, 65536, 16384),
				Chip: 2,
				Done: func(err error) {
					if err != nil {
						log.Fatal("read failed: ", err)
					}
					fmt.Printf("read back 16 KiB at t=%v\n", sys.Now())
				},
			})
		},
	})

	// Run the simulation to completion.
	sys.Run()

	// Verify the round trip.
	got, err := sys.DRAM().Read(65536, 16384)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("data mismatch!")
	}
	fmt.Println("round trip verified ✓")

	// Show the first few waveform segments the controller emitted.
	fmt.Println("\nchannel waveform (first segments):")
	segs := sys.Waveform().Segments()
	for i, s := range segs {
		if i >= 8 {
			fmt.Printf("  … %d more segments\n", len(segs)-i)
			break
		}
		fmt.Printf("  t=%-10v %-9v chip%d %s\n", s.Start, s.Kind, s.Chip, s.Label)
	}

	st := sys.Controller().Stats()
	fmt.Printf("\ncontroller: %d operations, %d transactions executed\n",
		st.OpsCompleted, st.TxnsExecuted)
}
