package exp

import (
	"fmt"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Map-cache ablation: random reads against a working set several times
// larger than the translation-cache budget, swept across budgets from
// "disabled" (whole map resident — the legacy model) to "covers the
// working set". Each miss charges a real NAND read of the map page
// through the ordinary ops path, so the sweep shows the bandwidth a
// DRAM-starved drive pays for demand-paged translations — FMMU's
// trade-off, measured end to end rather than asserted from counters.

// MapCachePoint is one budget's row: end-to-end random-read bandwidth
// plus the cache counters that explain it.
type MapCachePoint struct {
	BudgetBytes int64 // 0 = cache disabled
	MBps        float64
	HitRate     float64
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Flushes     uint64
}

// mapCacheWays is the channel width of the ablation rig.
const mapCacheWays = 4

// mapCacheParams shrinks the Hynix package the way the chaos soak does,
// for the same reason: the sweep needs eviction pressure, not capacity.
// 512-byte pages make a translation page 64 L2P entries, so a few-KB
// budget holds a few map pages and a 2048-page working set spans 32 —
// misses and clock evictions happen at figure-scale op counts instead
// of needing a TB-class preload.
func mapCacheParams() nand.Params {
	p := nand.Hynix()
	p.Geometry.Planes = 1
	p.Geometry.BlocksPerLUN = 64
	p.Geometry.PagesPerBlk = 16
	p.Geometry.PageBytes = 512
	p.Geometry.SpareBytes = 64
	p.TR = 20 * sim.Microsecond
	p.TPROG = 50 * sim.Microsecond
	p.TBERS = 200 * sim.Microsecond
	p.JitterPct = 0
	p.RawBitErrorPer512B = 0
	return p
}

// DefaultMapCacheBudgets is the swept budget ladder: disabled, then 4
// to 64 translation pages' worth of DRAM (at the ablation geometry's
// 512-byte map pages). The working set spans 32 map pages concentrated
// in half the map shards, and the budget splits evenly across shards,
// so the ladder runs from 8x-oversubscribed on the hot shards to fully
// resident at the top rung.
func DefaultMapCacheBudgets() []int64 {
	return []int64{0, 4 * 512, 8 * 512, 16 * 512, 32 * 512, 64 * 512}
}

// MapCache sweeps translation-cache budgets and reports bandwidth and
// cache behavior per budget. budgets nil picks
// DefaultMapCacheBudgets(). Runs are seed-reproducible: the workload
// seed, preload, and clock eviction are all deterministic, so a budget
// always produces the same counters and the same trace.
func MapCache(opt Options, budgets []int64) ([]MapCachePoint, error) {
	opt = opt.withDefaults()
	if budgets == nil {
		budgets = DefaultMapCacheBudgets()
	}
	out := make([]MapCachePoint, len(budgets))
	err := sweep(opt, len(budgets), func(i int, tracer obs.Tracer) error {
		p, err := mapCacheRun(opt, budgets[i], tracer)
		if err != nil {
			return fmt.Errorf("mapcache budget %dB: %w", budgets[i], err)
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func mapCacheRun(opt Options, budget int64, tracer obs.Tracer) (MapCachePoint, error) {
	rig, err := ssd.Build(ssd.BuildConfig{
		Params: mapCacheParams(), Ways: mapCacheWays, RateMT: 200,
		Controller: ssd.CtrlBabolCoro, CPUMHz: 1000, Tracer: tracer,
		NoCoroPool: opt.NoCoroPool,
		Shards:     opt.Shards, HostHop: opt.HostHop,
		ShardTelemetry: opt.ShardTelemetry, TraceShardWindows: opt.TraceShardWindows,
		MapCacheBytes: budget,
	})
	if err != nil {
		return MapCachePoint{}, err
	}
	defer rig.Close()
	// 2048 pages = 32 translation pages at this geometry: far past every
	// non-degenerate budget in the default ladder, so random reads keep
	// the clock under pressure. (Preload seeds the backing map directly —
	// cache bypasses, not misses — exactly like firmware rebuilding its
	// map from a journal at mount.)
	working := 2048
	if lp := rig.FTL.LogicalPages(); working > lp {
		working = lp
	}
	if err := rig.SSD.Preload(working); err != nil {
		return MapCachePoint{}, err
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindRead,
		NumOps: opt.Ops, QueueDepth: 8, LogicalPages: working, Seed: 7,
	})
	if err != nil {
		return MapCachePoint{}, err
	}
	rig.Run()
	if res.Completed != opt.Ops {
		return MapCachePoint{}, fmt.Errorf("exp: only %d of %d ops completed", res.Completed, opt.Ops)
	}
	if res.Failed != 0 {
		return MapCachePoint{}, fmt.Errorf("exp: %d ops failed", res.Failed)
	}
	cs := rig.FTL.CacheStats()
	return MapCachePoint{
		BudgetBytes: budget,
		MBps:        res.BandwidthMBps(mapCacheParams().Geometry.PageBytes),
		HitRate:     cs.HitRate(),
		Hits:        cs.Hits,
		Misses:      cs.Misses,
		Evictions:   cs.Evictions,
		Flushes:     cs.Flushes,
	}, nil
}

// MapCacheCSV renders the sweep as machine-readable CSV.
func MapCacheCSV(points []MapCachePoint) string {
	out := "budget_bytes,mbps,hit_rate,hits,misses,evictions,flushes\n"
	for _, p := range points {
		out += fmt.Sprintf("%d,%.2f,%.4f,%d,%d,%d,%d\n",
			p.BudgetBytes, p.MBps, p.HitRate, p.Hits, p.Misses, p.Evictions, p.Flushes)
	}
	return out
}

// RenderMapCache formats the sweep with deltas versus the disabled
// (whole-map-resident) baseline when the ladder includes one.
func RenderMapCache(points []MapCachePoint) string {
	baseline := 0.0
	for _, p := range points {
		if p.BudgetBytes == 0 {
			baseline = p.MBps
		}
	}
	header := fmt.Sprintf("%-12s %10s %8s %10s %10s %10s %8s", "budget", "MB/s", "Δ", "hit-rate", "misses", "evictions", "flushes")
	var rows []string
	for _, p := range points {
		budget := "resident"
		if p.BudgetBytes > 0 {
			budget = fmt.Sprintf("%dB", p.BudgetBytes)
		}
		delta := "—"
		if baseline > 0 && p.BudgetBytes > 0 {
			delta = pct(p.MBps, baseline)
		}
		hitRate := "—"
		if p.BudgetBytes > 0 {
			hitRate = fmt.Sprintf("%.1f%%", 100*p.HitRate)
		}
		rows = append(rows, fmt.Sprintf("%-12s %10.1f %8s %10s %10d %10d %8d",
			budget, p.MBps, delta, hitRate, p.Misses, p.Evictions, p.Flushes))
	}
	return table("Map cache: random READ bandwidth vs translation-DRAM budget, 4-way shrunk Hynix\n"+header, rows)
}
