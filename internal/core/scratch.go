package core

import (
	"fmt"

	"repro/internal/dram"
)

// scratchSize is the DRAM carved from the top of the buffer for small
// controller-owned DMA staging (SET FEATURES parameters and the like).
const scratchSize = 64 << 10

// Scratch is a small controller-owned DRAM staging window.
type Scratch struct {
	// Addr is the window's DRAM address, usable in WriteData/ReadData.
	Addr int
	// Bytes is the live view of the window.
	Bytes []byte
}

// scratchRing hands out small windows from a fixed region, recycling
// space in FIFO order. Windows are short-lived: they only need to stay
// valid until the transaction that references them executes, and the
// ring is far larger than the transaction queue's aggregate demand.
type scratchRing struct {
	mem  *dram.Buffer
	base int
	size int
	next int
}

func newScratchRing(mem *dram.Buffer) *scratchRing {
	size := scratchSize
	if size > mem.Size()/4 {
		size = mem.Size() / 4
	}
	return &scratchRing{mem: mem, base: mem.Size() - size, size: size}
}

func (r *scratchRing) alloc(n int) (Scratch, error) {
	if n <= 0 || n > r.size {
		return Scratch{}, fmt.Errorf("core: scratch alloc of %d bytes (ring %d)", n, r.size)
	}
	if r.next+n > r.size {
		r.next = 0 // wrap
	}
	addr := r.base + r.next
	r.next += n
	w, err := r.mem.Window(addr, n)
	if err != nil {
		return Scratch{}, err
	}
	return Scratch{Addr: addr, Bytes: w}, nil
}

// Controller returns the controller running this operation, giving
// operations access to channel timing and configuration.
func (x *Ctx) Controller() *Controller { return x.ctrl }

// Scratch allocates a short-lived DRAM staging window for outbound
// parameter bytes (e.g. SET FEATURES values). The window remains valid
// until well after the referencing transaction executes.
func (x *Ctx) Scratch(n int) (Scratch, error) {
	return x.ctrl.scratch.alloc(n)
}
