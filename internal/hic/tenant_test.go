package hic

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// tenantRig wires a fakeDrive behind a one-queue-per-tenant frontend.
func tenantRig(t *testing.T, queues int, rec *Recorder) (*sim.Kernel, *fakeDrive, *Frontend) {
	t.Helper()
	k := sim.NewKernel()
	d := &fakeDrive{k: k, latency: sim.Microsecond}
	qcs := make([]QueueConfig, queues)
	for i := range qcs {
		qcs[i] = QueueConfig{Depth: 8}
	}
	f, err := NewFrontend(k, d, FrontendConfig{Queues: qcs, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return k, d, f
}

func TestTenantSpecValidate(t *testing.T) {
	good := TenantSpec{Name: "t", QueueDepth: 1, NumOps: 1, SlicePages: 8}
	if err := good.Validate(1); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	bad := []TenantSpec{
		{QueueDepth: 1, NumOps: 1, SlicePages: 8},                                           // no name
		{Name: "t", QueueDepth: 1, NumOps: 1, SlicePages: 8, Queue: 2},                      // queue out of range
		{Name: "t", QueueDepth: 0, NumOps: 1, SlicePages: 8},                                // zero depth
		{Name: "t", QueueDepth: 1, NumOps: 0, SlicePages: 8},                                // zero ops
		{Name: "t", QueueDepth: 1, NumOps: 1, SlicePages: 0},                                // empty slice
		{Name: "t", QueueDepth: 1, NumOps: 1, SlicePages: 8, Mix: Mix{ReadPct: 50}},         // mix sum != 100
		{Name: "t", QueueDepth: 1, NumOps: 1, SlicePages: 8, Pattern: Zipfian, ZipfS: 0.5},  // s <= 1
		{Name: "t", QueueDepth: 1, NumOps: 1, SlicePages: 8, ZipfHot: 9},                    // hot > slice
		{Name: "t", QueueDepth: 1, NumOps: 1, SlicePages: 8, BurstOff: sim.Microsecond},     // off without on
		{Name: "t", QueueDepth: 1, NumOps: 1, SlicePages: 8, BurstOn: -1 * sim.Microsecond}, // negative burst
	}
	for i, spec := range bad {
		if err := spec.Validate(2); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

func TestTenantsCompleteAndStayInSlice(t *testing.T) {
	k, d, f := tenantRig(t, 2, nil)
	results, err := RunTenants(k, f, []TenantSpec{
		{Name: "a", Queue: 0, QueueDepth: 4, NumOps: 30, SliceStart: 0, SlicePages: 16, Seed: 1},
		{Name: "b", Queue: 1, QueueDepth: 4, NumOps: 30, Pattern: Sequential, SliceStart: 16, SlicePages: 16, Seed: 2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	for _, res := range results {
		if res.Done() != 30 || res.Failed != 0 {
			t.Fatalf("%s: %+v", res.Name, res.Result)
		}
		if res.Reads != 30 {
			t.Errorf("%s: reads = %d, want 30 (zero Mix is pure reads)", res.Name, res.Reads)
		}
	}
	if !f.Drained() {
		t.Error("frontend not drained")
	}
	// Every submitted LPN falls in one of the two disjoint slices.
	for _, lpn := range d.seen {
		if lpn < 0 || lpn >= 32 {
			t.Fatalf("LPN %d outside every slice", lpn)
		}
	}
}

// TestTenantZipfian pins the hot-set contract: every address lands in
// [SliceStart, SliceStart+ZipfHot), and rank 0 — the slice's first page
// — is drawn most often.
func TestTenantZipfian(t *testing.T) {
	k, d, f := tenantRig(t, 1, nil)
	if _, err := RunTenants(k, f, []TenantSpec{{
		Name: "zipf", QueueDepth: 4, NumOps: 400,
		Pattern: Zipfian, ZipfHot: 16,
		SliceStart: 100, SlicePages: 64, Seed: 7,
	}}, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	freq := map[int]int{}
	for _, lpn := range d.seen {
		if lpn < 100 || lpn >= 116 {
			t.Fatalf("LPN %d outside hot set [100,116)", lpn)
		}
		freq[lpn]++
	}
	for lpn, n := range freq {
		if lpn != 100 && n > freq[100] {
			t.Fatalf("rank-0 page drawn %d times but LPN %d drawn %d", freq[100], lpn, n)
		}
	}
	if freq[100] < 400/4 {
		t.Errorf("hot page drawn only %d of 400; zipf skew looks wrong", freq[100])
	}
}

// TestTenantMix pins the mix draw: shares roughly follow the spec and
// the issued counts always sum to NumOps.
func TestTenantMix(t *testing.T) {
	k, _, f := tenantRig(t, 1, nil)
	results, err := RunTenants(k, f, []TenantSpec{{
		Name: "mix", QueueDepth: 4, NumOps: 300,
		Mix:        Mix{ReadPct: 50, WritePct: 30, TrimPct: 20},
		SlicePages: 64, Seed: 5,
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	res := results[0]
	if res.Reads+res.Writes+res.Trims != 300 {
		t.Fatalf("mix counts %d+%d+%d != 300", res.Reads, res.Writes, res.Trims)
	}
	if res.Reads == 0 || res.Writes == 0 || res.Trims == 0 {
		t.Fatalf("mix counts r%d/w%d/t%d: every share must appear", res.Reads, res.Writes, res.Trims)
	}
	if res.Reads < res.Writes || res.Writes < res.Trims {
		t.Errorf("mix counts r%d/w%d/t%d out of proportion", res.Reads, res.Writes, res.Trims)
	}
}

// TestTenantBurst pins on/off modulation: every enqueue instant falls in
// an ON window of the tenant's phase clock.
func TestTenantBurst(t *testing.T) {
	rec := &Recorder{}
	k, _, f := tenantRig(t, 1, rec)
	on, off := 5*sim.Microsecond, 15*sim.Microsecond
	if _, err := RunTenants(k, f, []TenantSpec{{
		Name: "burst", QueueDepth: 2, NumOps: 60,
		BurstOn: on, BurstOff: off,
		SlicePages: 64, Seed: 9,
	}}, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if rec.Len() != 60 {
		t.Fatalf("recorded %d enqueues, want 60", rec.Len())
	}
	period := int64(on + off)
	offPhase := 0
	for _, e := range rec.Entries() {
		if e.AtPs%period >= int64(on) {
			offPhase++
		}
	}
	if offPhase > 0 {
		t.Errorf("%d of 60 enqueues landed in the OFF phase", offPhase)
	}
	// The run must actually span several periods — otherwise the phase
	// check is vacuous.
	last := rec.Entries()[rec.Len()-1].AtPs
	if last < 2*period {
		t.Errorf("run spanned %dps, want at least two %dps periods", last, period)
	}
}

// TestTenantSeedsReproduce pins the per-tenant RNG streams at the
// engine level: same seeds, same enqueue stream; different seed,
// different stream.
func TestTenantSeedsReproduce(t *testing.T) {
	record := func(seed int64) string {
		rec := &Recorder{}
		k, _, f := tenantRig(t, 1, rec)
		if _, err := RunTenants(k, f, []TenantSpec{{
			Name: "t", QueueDepth: 4, NumOps: 50,
			Pattern: Zipfian, ZipfHot: 16,
			Mix:        Mix{ReadPct: 60, WritePct: 40},
			SlicePages: 64, Seed: seed,
		}}, nil); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return fmt.Sprintf("%+v", rec.Entries())
	}
	if record(3) != record(3) {
		t.Error("same seed produced different streams")
	}
	if record(3) == record(4) {
		t.Error("different seeds produced identical streams")
	}
}

// TestTenantEmitsHostCmdEvents pins the obs contract: one KindHostCmd
// per completion carrying tenant, queue, kind, and latency.
func TestTenantEmitsHostCmdEvents(t *testing.T) {
	var events []obs.Event
	k, _, f := tenantRig(t, 2, nil)
	if _, err := RunTenants(k, f, []TenantSpec{{
		Name: "emitter", Queue: 1, QueueDepth: 2, NumOps: 10,
		SlicePages: 8, Seed: 1,
	}}, obs.Func(func(e obs.Event) { events = append(events, e) })); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(events) != 10 {
		t.Fatalf("emitted %d events, want 10", len(events))
	}
	for _, e := range events {
		if e.Kind != obs.KindHostCmd || e.Label != "emitter" || e.Depth != 1 {
			t.Fatalf("event = %+v", e)
		}
		if e.Chip != -1 || e.Err || e.Dur <= 0 {
			t.Fatalf("event = %+v", e)
		}
		if e.Cycles != int64(KindRead) {
			t.Fatalf("event kind tag = %d, want read", e.Cycles)
		}
	}
}
