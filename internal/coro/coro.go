// Package coro provides deterministic cooperative coroutines: the Go
// equivalent of the C++20 coroutines (and FreeRTOS tasks) BABOL writes
// its flash operations in.
//
// A coroutine is ordinary sequential code that suspends at explicit Yield
// points. Exactly one coroutine runs at a time: Resume hands control to
// the coroutine and blocks until it yields or finishes, so the simulation
// kernel always observes a single logical thread — mirroring the paper's
// single firmware core — and execution is fully deterministic.
//
// Coroutines are backed by goroutines with a strict two-channel handshake.
// The cost of a context switch in *virtual* time is charged separately by
// the controller through cpumodel; the host-level goroutine switch is an
// implementation detail.
package coro

import (
	"errors"
	"fmt"
)

// ErrAborted is the error a coroutine finishes with when Abort unwinds it
// at a yield point.
var ErrAborted = errors.New("coro: aborted")

// abortSignal is the panic sentinel used to unwind an aborted coroutine.
type abortSignal struct{}

// Coroutine is a suspended computation. Create with New; drive with
// Resume; dispose with Abort if abandoning it before completion.
type Coroutine struct {
	resume  chan struct{}
	yielded chan struct{}

	// The fields below are only touched by the side holding control, and
	// control transfer happens via channel operations, so they need no
	// locking.
	finished bool
	aborted  bool
	err      error
}

// Yielder is the coroutine-side handle used to suspend.
type Yielder struct {
	c *Coroutine
}

// New starts fn as a coroutine. fn does not run until the first Resume.
func New(fn func(*Yielder) error) *Coroutine {
	c := &Coroutine{
		resume:  make(chan struct{}),
		yielded: make(chan struct{}),
	}
	y := &Yielder{c: c}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); ok {
					c.err = ErrAborted
				} else {
					// Re-panicking here would kill the process on the
					// coroutine's goroutine; surface it as an error the
					// driver can report instead.
					c.err = fmt.Errorf("coro: panic: %v", r)
				}
			}
			c.finished = true
			c.yielded <- struct{}{}
		}()
		<-c.resume
		if c.aborted {
			panic(abortSignal{})
		}
		c.err = fn(y)
	}()
	return c
}

// Resume transfers control to the coroutine until its next Yield or its
// completion. It reports whether the coroutine has finished; once it has,
// Err returns its result and further Resumes are no-ops.
func (c *Coroutine) Resume() (finished bool) {
	if c.finished {
		return true
	}
	c.resume <- struct{}{}
	<-c.yielded
	return c.finished
}

// Finished reports whether the coroutine has run to completion.
func (c *Coroutine) Finished() bool { return c.finished }

// Err returns the coroutine's result. It is meaningful only after
// Finished reports true.
func (c *Coroutine) Err() error { return c.err }

// Abort unwinds a suspended coroutine: its next wake-up panics through
// all its deferred functions and the coroutine finishes with ErrAborted.
// Aborting a finished coroutine is a no-op.
func (c *Coroutine) Abort() {
	if c.finished {
		return
	}
	c.aborted = true
	c.Resume()
}

// Yield suspends the coroutine until the next Resume.
func (y *Yielder) Yield() {
	c := y.c
	c.yielded <- struct{}{}
	<-c.resume
	if c.aborted {
		panic(abortSignal{})
	}
}
