// Package obs is the controller observability layer: a typed event
// stream emitted from the hot paths of the BABOL controller stack
// (admission, task scheduling, transaction scheduling, the hardware
// execution unit) plus an aggregating metrics registry built on it.
//
// The paper's evaluation (§VI, Figures 10–12, Table II) rests entirely
// on visibility into the controller's internals — per-chip channel
// occupancy, polling-resubmission counts, the software/hardware time
// split. This package makes that stream a first-class product of the
// simulation instead of a set of ad-hoc counters: the controller emits
// Events into a Tracer, and consumers either aggregate them (Metrics),
// persist them (JSONL), or fan them out (Multi).
//
// Tracing is strictly pay-for-what-you-use: a nil Tracer is the
// default, every emission site is guarded by a nil check, and the Event
// struct is passed by value, so the disabled path costs one branch and
// the enabled path does not allocate.
package obs

import "repro/internal/sim"

// Kind discriminates event types.
type Kind uint8

const (
	// KindOpAdmitted fires when an operation enters a chip slot
	// (Label is "active", "staged", or "gang").
	KindOpAdmitted Kind = iota
	// KindAdmissionWait fires when an operation parks in the admission
	// queue because no compatible slot is free.
	KindAdmissionWait
	// KindOpResumed fires when the firmware context-switches into an
	// operation coroutine.
	KindOpResumed
	// KindOpFinished fires at operation termination; Err reports whether
	// it failed and Dur is the Start→Done latency.
	KindOpFinished
	// KindTxnEnqueued fires when a transaction reaches the
	// hardware-visible queue; Depth is the queue depth after the push.
	KindTxnEnqueued
	// KindTxnPopped fires when the hardware execution unit pops the
	// queue head; Depth is the queue depth after the pop.
	KindTxnPopped
	// KindTxnExecuted fires when the execution unit has played a
	// transaction; Start/End bracket its bus phase and Dur is the
	// channel occupancy it added.
	KindTxnExecuted
	// KindGateOpened fires when a Final transaction opens a chip's
	// hardware gate, releasing a staged successor's held transaction.
	KindGateOpened
	// KindPollResubmit fires when an operation re-issues the same status
	// transaction because the last answer was "busy" (§VI-C's polling
	// resubmissions).
	KindPollResubmit
	// KindCPUCharge fires for every block of firmware work charged to
	// the CPU model; Label names the action (admit, schedule, switch,
	// submit, poll-resubmit), Cycles the cost, Dur the virtual time.
	KindCPUCharge
	// KindHWInstr fires from the execution unit for each timed µFSM
	// instruction; Label names the µFSM and Dur is its bus segment time.
	KindHWInstr
	// KindFault fires when an injected fault perturbs a NAND array
	// operation (internal/fault); Label names the campaign
	// (stuck-busy, fail-storm, ecc-burst, tr-jitter) and Chip the LUN.
	KindFault
	// KindRecovery fires when the controller or SSD takes a recovery
	// action: Label is "reset" (poll budget exhausted, RESET issued),
	// "reset-recovered", "chip-dead", "chip-offline", or "read-only".
	KindRecovery
	// KindShardWindow is one shard's share of one cluster
	// synchronization window, replayed from the flight recorder of a
	// sharded run: Time is the window start, Dur the window span
	// (= cluster lookahead), TxnID the window sequence number, Chip the
	// shard index, and Depth the events that shard executed inside the
	// window. Only busy shards emit; OpID stays 0 so span correlation
	// ignores these. Every field is virtual-time-derived — wall-clock
	// telemetry never enters the trace, keeping traces deterministic.
	KindShardWindow
	// KindShardMailbox is one (src,dst) domain pair's cross-shard post
	// aggregate for a run: Channel is the source domain, Chip the
	// destination domain, Cycles the total posts collected, and Depth
	// the peak in-flight depth (collected but not yet delivered).
	KindShardMailbox
	// KindMapCache fires from the FTL translation-page cache when the
	// map cache is enabled (MapCacheBytes > 0): Label is "hit" (the
	// LPN's translation page was resident), "miss" (a NAND read of the
	// map page was charged through the ops path; Chip is the map
	// page's modeled LUN), "evict" (the clock displaced a resident
	// page), or "flush" (the displaced page was dirty — a modeled
	// map write-back). Disabled caches emit nothing, keeping traces
	// byte-identical to pre-cache builds.
	KindMapCache
	// KindHostCmd fires from the host frontend (internal/hic's tenant
	// engine and trace replay) at each command completion: Label is the
	// tenant name (empty for anonymous traffic), Depth the submission
	// queue index, Cycles the hic command kind (0 read, 1 write,
	// 2 trim), Dur the enqueue→completion latency, and Err whether the
	// command failed. Chip is -1 (no die is attributable host-side) and
	// OpID stays 0 so span correlation and run splitting ignore these.
	KindHostCmd
)

var kindNames = [...]string{
	KindOpAdmitted:    "op-admitted",
	KindAdmissionWait: "admission-wait",
	KindOpResumed:     "op-resumed",
	KindOpFinished:    "op-finished",
	KindTxnEnqueued:   "txn-enqueued",
	KindTxnPopped:     "txn-popped",
	KindTxnExecuted:   "txn-executed",
	KindGateOpened:    "gate-opened",
	KindPollResubmit:  "poll-resubmit",
	KindCPUCharge:     "cpu-charge",
	KindHWInstr:       "hw-instr",
	KindFault:         "fault",
	KindRecovery:      "recovery",
	KindShardWindow:   "shard-window",
	KindShardMailbox:  "shard-mailbox",
	KindMapCache:      "map-cache",
	KindHostCmd:       "host-cmd",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts Kind.String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one observation. Which fields are meaningful depends on
// Kind; unused fields are zero. Chip is -1 when no chip applies.
type Event struct {
	// Time is the virtual time of emission.
	Time sim.Time
	Kind Kind
	// Channel is the channel index in multi-channel assemblies, tagged
	// by OnChannel; 0 for single-channel rigs.
	Channel int
	OpID    uint64
	TxnID   uint64
	Chip    int
	// Dur is kind-dependent: CPU time for KindCPUCharge, channel
	// occupancy for KindTxnExecuted/KindHWInstr, operation latency for
	// KindOpFinished.
	Dur sim.Duration
	// Start/End bracket a transaction's bus phase (KindTxnExecuted).
	Start sim.Time
	End   sim.Time
	// Depth is the transaction queue depth after a push or pop.
	Depth int
	// Cycles is the CPU cycle cost behind Dur (KindCPUCharge).
	Cycles int64
	// Bytes is the DMA payload size (KindHWInstr data instructions).
	Bytes int
	// Err marks a failed operation (KindOpFinished) or transaction
	// (KindTxnExecuted).
	Err bool
	// Label is a kind-dependent tag: slot kind, charge site, µFSM name.
	Label string
}

// Tracer receives the event stream. Implementations must not retain
// the Event beyond the call unless they copy it (it is a value, so a
// plain store is a copy). The controller stack treats a nil Tracer as
// "tracing off" and skips emission entirely.
type Tracer interface {
	Event(Event)
}

// Multi fans each event out to every non-nil tracer in order.
type Multi []Tracer

// Event implements Tracer.
func (m Multi) Event(e Event) {
	for _, t := range m {
		if t != nil {
			t.Event(e)
		}
	}
}

// OnChannel wraps t so every forwarded event carries the given channel
// index — how multi-channel assemblies keep one shared sink while
// remaining able to attribute events per channel. A nil t yields nil,
// preserving the "nil means off" convention.
func OnChannel(t Tracer, channel int) Tracer {
	if t == nil {
		return nil
	}
	return &channelTagger{t: t, channel: channel}
}

type channelTagger struct {
	t       Tracer
	channel int
}

func (c *channelTagger) Event(e Event) {
	e.Channel = c.channel
	c.t.Event(e)
}

// Func adapts a plain function to the Tracer interface.
type Func func(Event)

// Event implements Tracer.
func (f Func) Event(e Event) { f(e) }
