package exp

import (
	"fmt"
	"path/filepath"

	"repro/internal/loc"
)

// Table2Row is one operation's line counts across implementations.
type Table2Row struct {
	Operation  string
	HWBased    int // our hardware baseline (FSM states + shared machinery share)
	Babol      int // our BABOL software operation
	PaperSync  int // paper's synchronous HW-based [50]
	PaperAsync int // paper's asynchronous HW-based [25]
	PaperBabol int // paper's BABOL
}

// Table2 reproduces Table II (lines of code per operation). Our numbers
// are counted mechanically from this repository with go/parser: the
// hardware column counts each operation's FSM case clauses in
// internal/hwctrl plus an equal share of the FSM's shared machinery; the
// BABOL column counts the operation functions in internal/ops including
// the helpers they are built from. The paper's Verilog/C++ counts are
// reported alongside — the claim under test is the *ratio*, an order of
// magnitude less code in BABOL.
func Table2() ([]Table2Row, error) {
	root, err := loc.FindRepoRoot()
	if err != nil {
		return nil, err
	}
	opsFile, err := loc.Parse(filepath.Join(root, "internal/ops/ops.go"))
	if err != nil {
		return nil, err
	}
	fsmFile, err := loc.Parse(filepath.Join(root, "internal/hwctrl/fsm.go"))
	if err != nil {
		return nil, err
	}

	// Shared FSM machinery every hardware operation needs a copy of the
	// control for: request loading, completion, R/B waiting.
	shared, err := fsmFile.FuncsLines("loadNext", "fail", "complete", "waitRB")
	if err != nil {
		return nil, err
	}
	share := shared / 3

	babolRead, err := opsFile.FuncsLines("ReadPage", "pollReady", "ReadStatus", "appendReadLatches", "appendChangeColumnLatches")
	if err != nil {
		return nil, err
	}
	babolProg, err := opsFile.FuncsLines("ProgramPage", "programPage")
	if err != nil {
		return nil, err
	}
	babolErase, err := opsFile.FuncsLines("EraseBlock")
	if err != nil {
		return nil, err
	}

	hwRead, err := fsmFile.CaseLines("busStep", "stRead")
	if err != nil {
		return nil, err
	}
	hwProg, err := fsmFile.CaseLines("busStep", "stProg")
	if err != nil {
		return nil, err
	}
	hwErase, err := fsmFile.CaseLines("busStep", "stErase")
	if err != nil {
		return nil, err
	}

	return []Table2Row{
		{Operation: "READ", HWBased: hwRead + share, Babol: babolRead,
			PaperSync: 420, PaperAsync: 454, PaperBabol: 58},
		{Operation: "PROGRAM", HWBased: hwProg + share, Babol: babolProg,
			PaperSync: 420, PaperAsync: 260, PaperBabol: 44},
		{Operation: "ERASE", HWBased: hwErase + share, Babol: babolErase,
			PaperSync: 327, PaperAsync: 203, PaperBabol: 27},
	}, nil
}

// RenderTable2 formats Table II with the paper's reference columns.
func RenderTable2() (string, error) {
	rows, err := Table2()
	if err != nil {
		return "", err
	}
	out := []string{fmt.Sprintf("%-9s %12s %12s | %10s %11s %11s",
		"", "HW (ours)", "BABOL(ours)", "Sync[50]", "Async[25]", "BABOL(ppr)")}
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%-9s %12d %12d | %10d %11d %11d",
			r.Operation, r.HWBased, r.Babol, r.PaperSync, r.PaperAsync, r.PaperBabol))
	}
	return table("Table II: Lines of code per operation (measured vs paper)", out), nil
}
