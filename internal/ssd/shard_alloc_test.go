package ssd

import (
	"runtime"
	"testing"

	"repro/internal/hic"
	"repro/internal/sim"
)

// raceDetectorEnabled is set by shard_race_test.go under -race.
var raceDetectorEnabled = false

// TestAllocGateShardFunnel pins the sharded datapath's steady-state
// allocation behavior at the rig level: the cross-domain machinery —
// windows, posts, crossCall recycling, trace-buffer merging — must add
// ~zero allocations per window over the legacy path. The gate runs the
// same warmed read workload on a legacy rig and a sharded rig and
// bounds the difference; with thousands of windows in the measured
// region, even one allocation per window would blow the budget tenfold.
func TestAllocGateShardFunnel(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	build := func(shards int) *Rig {
		cfg := smallBuild(CtrlBabolRTOS)
		cfg.Channels = 2
		cfg.Ways = 2
		cfg.Shards = shards
		if shards > 0 {
			cfg.HostHop = sim.Microsecond
		}
		rig := mustBuild(t, cfg)
		if err := rig.SSD.Preload(rig.FTL.LogicalPages()); err != nil {
			t.Fatal(err)
		}
		return rig
	}
	workload := func(rig *Rig) {
		res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
			Pattern: hic.Sequential, Kind: hic.KindRead,
			NumOps: 400, QueueDepth: 8, LogicalPages: rig.FTL.LogicalPages(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rig.Run()
		if res.Failed != 0 {
			t.Fatalf("%d reads failed", res.Failed)
		}
	}
	measure := func(rig *Rig) uint64 {
		workload(rig) // warm: outboxes, pools, and buffers reach high-water
		runtime.GC()
		var m1, m2 runtime.MemStats
		runtime.ReadMemStats(&m1)
		workload(rig)
		runtime.ReadMemStats(&m2)
		return m2.Mallocs - m1.Mallocs
	}

	legacy := measure(build(0))
	shardedRig := build(3)
	before := shardedRig.Cluster.Windows()
	sharded := measure(shardedRig)
	windows := shardedRig.Cluster.Windows() - before

	if windows < 1000 {
		t.Fatalf("measured region ran only %d windows; gate is vacuous", windows)
	}
	// The sharded run's fixed extras: one worker set per Run call plus
	// slack for runtime noise. Nothing may scale with the window count.
	const slack = 200
	if sharded > legacy+slack {
		t.Fatalf("sharded workload allocated %d objects vs legacy %d over %d windows — the funnel is allocating per event",
			sharded, legacy, windows)
	}
	t.Logf("allocs: legacy=%d sharded=%d over %d windows", legacy, sharded, windows)
}
