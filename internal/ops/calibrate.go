package ops

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/onfi"
)

// readParamPage performs one READ PARAMETER PAGE against the op's chip
// and returns the raw 256-byte page. Nestable.
func readParamPage(ctx *core.Ctx) ([]byte, error) {
	chip := ctx.ChipIndex()
	ctx.CmdAddr(onfi.CmdLatch(onfi.CmdReadParameterPg), onfi.AddrLatch(0))
	if res := ctx.Submit(); res.Err != nil {
		return nil, res.Err
	}
	if _, err := pollReady(ctx, chip); err != nil {
		return nil, err
	}
	// READ MODE (bare 00h): switch the LUN's output from status back to
	// the parameter page the poll interrupted.
	ctx.Cmd(onfi.CmdRead1)
	ctx.ReadCapture(nand.ParamPageSize)
	res := ctx.Submit()
	if res.Err != nil {
		return nil, res.Err
	}
	return res.Captured, nil
}

// ReadParameterPage returns the READ PARAMETER PAGE operation: it
// fetches and CRC-validates the package's ONFI self-description,
// delivering the parsed geometry through out. Boot flows use it to
// discover what is actually soldered to the channel.
func ReadParameterPage(out *nand.ParsedParamPage) core.OpFunc {
	return func(ctx *core.Ctx) error {
		raw, err := readParamPage(ctx)
		if err != nil {
			return err
		}
		parsed, ok := nand.ParseParameterPage(raw)
		if !ok {
			return fmt.Errorf("ops: parameter page failed signature/CRC validation")
		}
		*out = parsed
		return nil
	}
}

// CalibratePhase is the calibration tool of §IV-C: board traces differ
// per package instance, so the DQS sampling phase must be trimmed
// per chip at boot. The operation sweeps every phase setting through SET
// FEATURES, reads the CRC-protected parameter page at each, finds the
// window of clean settings, and programs the window's midpoint — "detect
// phase differences and suggest adjustments". The chosen phase is
// delivered through chosen.
func CalibratePhase(maxPhase int, chosen *int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		if maxPhase <= 0 {
			maxPhase = 16
		}
		valid := make([]bool, maxPhase)
		anyValid := false
		for phase := 0; phase < maxPhase; phase++ {
			if err := setFeature(ctx, onfi.FeatOutputPhase, [4]byte{byte(phase)}); err != nil {
				return err
			}
			raw, err := readParamPage(ctx)
			if err != nil {
				return err
			}
			if _, ok := nand.ParseParameterPage(raw); ok {
				valid[phase] = true
				anyValid = true
			}
		}
		if !anyValid {
			return fmt.Errorf("ops: phase calibration found no working setting in [0,%d)", maxPhase)
		}
		// Pick the midpoint of the widest contiguous valid window: the
		// most margin against voltage/temperature drift.
		bestStart, bestLen := -1, 0
		start := -1
		for p := 0; p <= maxPhase; p++ {
			if p < maxPhase && valid[p] {
				if start < 0 {
					start = p
				}
				continue
			}
			if start >= 0 {
				if l := p - start; l > bestLen {
					bestStart, bestLen = start, l
				}
				start = -1
			}
		}
		pick := bestStart + bestLen/2
		if err := setFeature(ctx, onfi.FeatOutputPhase, [4]byte{byte(pick)}); err != nil {
			return err
		}
		// Confirm the final setting actually reads clean.
		raw, err := readParamPage(ctx)
		if err != nil {
			return err
		}
		if _, ok := nand.ParseParameterPage(raw); !ok {
			return fmt.Errorf("ops: calibrated phase %d failed verification", pick)
		}
		if chosen != nil {
			*chosen = pick
		}
		return nil
	}
}
