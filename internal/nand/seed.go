package nand

import (
	"fmt"

	"repro/internal/onfi"
)

// SeedPage stores data directly into the array, bypassing the ONFI
// protocol. Experiments use it to pre-initialize an SSD with data (the
// paper initializes its devices before running fio) without simulating
// hours of PROGRAM traffic. data shorter than a full page is zero-padded;
// longer data is an error.
func (l *LUN) SeedPage(row onfi.RowAddr, data []byte) error {
	if err := l.geo.CheckAddr(onfi.Addr{Row: row}); err != nil {
		return err
	}
	if len(data) > l.geo.FullPageBytes() {
		return fmt.Errorf("nand: seed data of %d bytes exceeds page size %d", len(data), l.geo.FullPageBytes())
	}
	idx := l.rowIndex(row)
	buf := l.pool.Get()
	// Pooled buffers arrive dirty: pad the tail past the seed data.
	page := buf.Bytes()
	n := copy(page, data)
	for i := n; i < len(page); i++ {
		page[i] = 0
	}
	if old, ok := l.pages[idx]; ok {
		old.Release()
	}
	l.pages[idx] = buf
	l.programmed[idx] = true
	return nil
}

// PeekPage returns a copy of the array's stored content for row without
// timing, busy, or error-injection effects — the test-and-debug view.
// Erased pages read as all 0xFF.
func (l *LUN) PeekPage(row onfi.RowAddr) ([]byte, error) {
	if err := l.geo.CheckAddr(onfi.Addr{Row: row}); err != nil {
		return nil, err
	}
	out := make([]byte, l.geo.FullPageBytes())
	if stored, ok := l.pages[l.rowIndex(row)]; ok {
		copy(out, stored.Bytes())
	} else {
		for i := range out {
			out[i] = 0xFF
		}
	}
	return out, nil
}

// Programmed reports whether row has been programmed since its block was
// last erased.
func (l *LUN) Programmed(row onfi.RowAddr) bool {
	return l.programmed[l.rowIndex(row)]
}
