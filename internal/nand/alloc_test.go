package nand

import (
	"testing"

	"repro/internal/onfi"
	"repro/internal/sim"
)

// TestAllocGateLUNReadOut is the allocation-regression gate for the
// cell-array read-out path: once warmed, a full READ cycle — latch
// burst, tR wait, DataOutInto a caller buffer — must not allocate.
// The page-register arena and destination-passing read-out are what
// keep this at zero; a regression here silently reintroduces a
// per-page allocation on the hottest simulated path.
func TestAllocGateLUNReadOut(t *testing.T) {
	l := newTestLUN(t)
	g := l.Params().Geometry
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 2}}
	seed := make([]byte, g.PageBytes)
	fillSeed(seed)
	if err := l.SeedPage(addr.Row, seed); err != nil {
		t.Fatal(err)
	}

	var lbuf [8]onfi.Latch
	latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdRead1))
	latches = g.AppendAddrLatches(latches, addr)
	latches = append(latches, onfi.CmdLatch(onfi.CmdRead2))
	dst := make([]byte, g.PageBytes)
	now := sim.Time(0)

	cycle := func() {
		if err := l.Latch(now, latches); err != nil {
			t.Fatal(err)
		}
		now = now.Add(l.Params().TR)
		if err := l.DataOutInto(now, dst); err != nil {
			t.Fatal(err)
		}
		now = now.Add(sim.Microsecond)
	}
	cycle() // warm register/arena state
	if avg := testing.AllocsPerRun(50, cycle); avg > 0 {
		t.Errorf("warmed LUN read-out allocated %.1f objects per page, want 0", avg)
	}
	if dst[0] != seed[0] || dst[len(dst)-1] != seed[len(seed)-1] {
		t.Error("read-out data mismatch")
	}
}

// fillSeed writes a distinctive non-zero pattern for seeding pages in
// allocation-gate tests.
func fillSeed(dst []byte) {
	for i := range dst {
		dst[i] = byte(i*7 + 3)
	}
}
