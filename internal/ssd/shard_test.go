package ssd

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/hic"
	"repro/internal/obs"
	"repro/internal/sim"
)

// shardedRun drives one mixed workload — background overwrite churn
// (GC, erases, copyback) with foreground random reads (urgent-read
// relay) — on a 4-channel rig at the given shard count, and returns a
// fingerprint of everything observable: the merged trace, the host
// results, and the SSD counters. Byte-equal fingerprints across shard
// counts are the tentpole's acceptance invariant.
func shardedRun(t *testing.T, shards int) (string, Stats) {
	t.Helper()
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Channels = 4
	cfg.Ways = 1
	cfg.WithECC = true
	cfg.UseCopyback = true
	cfg.SuspendReads = true
	cfg.Params.TBERS = 3 * sim.Millisecond
	cfg.Shards = shards
	cfg.HostHop = sim.Microsecond
	cfg.Observe = true
	var trace obs.Buffer
	cfg.Tracer = &trace
	rig := mustBuild(t, cfg)
	if rig.Cluster == nil {
		t.Fatal("sharded build produced no cluster")
	}
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical); err != nil {
		t.Fatal(err)
	}

	writes := 0
	var writeNext func()
	writeNext = func() {
		if writes >= logical*3 {
			return
		}
		writes++
		rig.SSD.Submit(hic.Command{Kind: hic.KindWrite, LPN: writes % logical, Done: func(err error) {
			if err != nil {
				t.Errorf("bg write: %v", err)
			}
			writeNext()
		}})
	}
	writeNext()
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindRead,
		NumOps: 120, QueueDepth: 2, LogicalPages: logical, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Run()
	t.Logf("shards=%d windows=%d posts=%d end=%v", shards, rig.Cluster.Windows(), rig.Cluster.Posts(), rig.Kernel.Now())
	if res.Failed != 0 {
		t.Fatalf("shards=%d: %d reads failed", shards, res.Failed)
	}

	var fp strings.Builder
	fmt.Fprintf(&fp, "end=%v mean=%v p99=%v stats=%+v\n",
		res.End, res.MeanLatency(), res.LatencyPercentile(99), rig.SSD.Stats())
	for _, e := range trace.Events() {
		fmt.Fprintf(&fp, "%+v\n", e)
	}
	if rig.Metrics == nil || trace.Len() == 0 {
		t.Fatalf("shards=%d: merged observability stream missing (metrics=%v, %d events)",
			shards, rig.Metrics != nil, trace.Len())
	}
	return fp.String(), rig.SSD.Stats()
}

// TestShardedDeterminism pins byte-identical behavior across shard
// counts: the windowed single-kernel run (shards=1) is the reference,
// and every parallel sharding must reproduce it exactly — trace, host
// latencies, and counters. It also proves the cross-domain funnel
// carries every capability: the workload forces GC erases with urgent
// reads relayed into them.
func TestShardedDeterminism(t *testing.T) {
	ref, stats := shardedRun(t, 1)
	if stats.UrgentReads == 0 {
		t.Fatal("workload never exercised the urgent-read relay")
	}
	if stats.GCCycles == 0 || stats.GCCopybacks == 0 {
		t.Fatalf("workload never exercised GC/copyback: %+v", stats)
	}
	for _, shards := range []int{2, 3, 5} {
		got, _ := shardedRun(t, shards)
		if got != ref {
			t.Errorf("shards=%d diverged from shards=1:\n%s", shards, firstDiff(ref, got))
		}
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  ref: %s\n  got: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestShardedHWBaseline runs the hardware controller sharded: the plain
// shardBackend (no copyback, no relay) must carry a full write+read
// pass, with suspend silently ignored like the legacy path.
func TestShardedHWBaseline(t *testing.T) {
	cfg := smallBuild(CtrlHW)
	cfg.Channels = 2
	cfg.SuspendReads = true
	cfg.Shards = 3
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical * 2, QueueDepth: 4, LogicalPages: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Run()
	if res.Failed != 0 {
		t.Fatalf("%d writes failed", res.Failed)
	}
	if rig.SSD.Stats().UrgentReads != 0 {
		t.Error("HW backend claimed urgent reads")
	}
	reads, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindRead,
		NumOps: 40, QueueDepth: 4, LogicalPages: logical, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Run()
	if reads.Failed != 0 {
		t.Fatalf("%d reads failed", reads.Failed)
	}
}

// TestShardedBuildShape pins the build-time plumbing: shard capping,
// per-shard coroutine pools, and the HostHop defaults.
func TestShardedBuildShape(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Channels = 4
	cfg.Ways = 1
	cfg.Shards = 32 // capped at 1 + channels
	rig := mustBuild(t, cfg)
	if got := rig.Cluster.Shards(); got != 5 {
		t.Errorf("shards = %d, want 5 (1 host + 4 channels)", got)
	}
	if rig.Cluster.Lookahead() != sim.Microsecond {
		t.Errorf("default HostHop = %v, want 1us", rig.Cluster.Lookahead())
	}
	// One pool per channel shard (the host shard runs no controller).
	if len(rig.CoroPools) != 4 {
		t.Errorf("%d coro pools, want 4", len(rig.CoroPools))
	}
	if rig.CoroPool == nil {
		t.Error("CoroPool alias not set")
	}

	// HostHop alone shards fully.
	cfg2 := smallBuild(CtrlBabolRTOS)
	cfg2.Channels = 2
	cfg2.HostHop = 2 * sim.Microsecond
	rig2 := mustBuild(t, cfg2)
	if rig2.Cluster == nil || rig2.Cluster.Shards() != 3 {
		t.Fatalf("HostHop alone should shard fully, got %+v", rig2.Cluster)
	}

	// Unsharded stays legacy: no cluster, no per-shard pools.
	rig3 := mustBuild(t, smallBuild(CtrlBabolRTOS))
	if rig3.Cluster != nil || len(rig3.CoroPools) != 0 {
		t.Error("legacy build grew sharding state")
	}
}
