package ops_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/wave"
)

// TestEveryOperationEmitsLegalWaveforms runs each library operation on a
// fresh rig and validates the full captured channel trace against the
// ONFI timing checker. This is the repository-wide guarantee the µFSM
// abstraction promises: no matter how operations compose instructions,
// the emitted waveforms are legal.
func TestEveryOperationEmitsLegalWaveforms(t *testing.T) {
	params := twoPlaneParams()
	type tc struct {
		name  string
		prep  func(r *rig)
		req   func(r *rig) core.OpRequest
		allow bool // operation may legitimately fail (e.g. retry exhaustion)
	}
	seed := func(r *rig, rows ...onfi.RowAddr) {
		for _, row := range rows {
			if err := r.ch.Chip(0).SeedPage(row, []byte{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		}
	}
	var idBuf []byte
	var feat [4]byte
	var parsed nand.ParsedParamPage
	var phase int
	cases := []tc{
		{name: "ReadPage",
			prep: func(r *rig) { seed(r, onfi.RowAddr{}) },
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.ReadPage(onfi.Addr{}, 0, 256), Chip: 0}
			}},
		{name: "ReadPageSLC",
			prep: func(r *rig) { seed(r, onfi.RowAddr{}) },
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.ReadPageSLC(onfi.Addr{}, 0, 256), Chip: 0}
			}},
		{name: "ReadPageFixedWait",
			prep: func(r *rig) { seed(r, onfi.RowAddr{}) },
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.ReadPageFixedWait(onfi.Addr{}, 0, 256, params.TR*2), Chip: 0}
			}},
		{name: "ProgramPage",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.ProgramPage(onfi.Addr{Row: onfi.RowAddr{Block: 2}}, 0, 256), Chip: 0}
			}},
		{name: "ProgramPageSLC",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.ProgramPageSLC(onfi.Addr{Row: onfi.RowAddr{Block: 3}}, 0, 256), Chip: 0}
			}},
		{name: "EraseBlock",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.EraseBlock(1), Chip: 0}
			}},
		{name: "ReadID",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.ReadID(&idBuf, 4), Chip: 0}
			}},
		{name: "Reset",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.Reset(), Chip: 0}
			}},
		{name: "SetFeature",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.SetFeature(onfi.FeatDriveStrength, [4]byte{1}), Chip: 0}
			}},
		{name: "GetFeature",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.GetFeature(onfi.FeatDriveStrength, &feat), Chip: 0}
			}},
		{name: "CacheReadPages",
			prep: func(r *rig) {
				seed(r, onfi.RowAddr{Page: 0}, onfi.RowAddr{Page: 1}, onfi.RowAddr{Page: 2})
			},
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.CacheReadPages(onfi.RowAddr{}, 3, 0, 256), Chip: 0}
			}},
		{name: "ReadWithRetry",
			prep: func(r *rig) { seed(r, onfi.RowAddr{}) },
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{
					Func: ops.ReadWithRetry(onfi.Addr{}, 0, 256, func([]byte) bool { return true }),
					Chip: 0,
				}
			}},
		{name: "GangRead",
			prep: func(r *rig) {
				for c := 0; c < 2; c++ {
					if err := r.ch.Chip(c).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
						t.Fatal(err)
					}
				}
			},
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.GangRead([]int{0, 1}, onfi.Addr{}, 0, 256), Chip: 0, ExtraChips: []int{1}}
			}},
		{name: "GangProgram",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.GangProgram([]int{0, 1}, onfi.Addr{Row: onfi.RowAddr{Block: 4}}, 0, 256), Chip: 0, ExtraChips: []int{1}}
			}},
		{name: "EraseWithSuspend",
			prep: func(r *rig) { seed(r, onfi.RowAddr{Block: 2}) },
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{
					Func: ops.EraseWithSuspend(5, onfi.Addr{Row: onfi.RowAddr{Block: 2}}, 0, 256, params.TBERS/4),
					Chip: 0,
				}
			}},
		{name: "BootSequence",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.BootSequence(params.IDBytes[:2], 0x15), Chip: 0}
			}},
		{name: "ReadParameterPage",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.ReadParameterPage(&parsed), Chip: 0}
			}},
		{name: "CalibratePhase",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.CalibratePhase(16, &phase), Chip: 0}
			}},
		{name: "CopybackPage",
			prep: func(r *rig) { seed(r, onfi.RowAddr{Block: 2}) },
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.CopybackPage(onfi.RowAddr{Block: 2}, onfi.RowAddr{Block: 6}), Chip: 0}
			}},
		{name: "MPReadPages",
			prep: func(r *rig) { seed(r, onfi.RowAddr{Block: 0}, onfi.RowAddr{Block: 1}) },
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.MPReadPages([]onfi.RowAddr{{Block: 0}, {Block: 1}}, 0, 256), Chip: 0}
			}},
		{name: "MPProgramPages",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.MPProgramPages([]onfi.RowAddr{{Block: 4}, {Block: 5}}, 0, 256), Chip: 0}
			}},
		{name: "MPEraseBlocks",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{Func: ops.MPEraseBlocks([]int{2, 3}), Chip: 0}
			}},
		{name: "InterruptibleErase",
			req: func(r *rig) core.OpRequest {
				return core.OpRequest{
					Func: ops.InterruptibleErase(1, func() (ops.UrgentRead, bool) { return ops.UrgentRead{}, false }),
					Chip: 0,
				}
			}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := newRig(t, 2, params)
			if c.prep != nil {
				c.prep(r)
			}
			err := r.run(t, c.req(r))
			if err != nil && !c.allow {
				t.Fatalf("operation failed: %v", err)
			}
			chk := wave.NewChecker(r.ch.Timing(), r.ch.Config())
			if vs := chk.Check(r.ch.Recorder().Segments()); len(vs) != 0 {
				t.Errorf("%d ONFI violations:", len(vs))
				for _, v := range vs {
					t.Errorf("  %v", v)
				}
			}
			// Nothing may linger: the channel drains completely.
			if r.ctrl.Pending() != 0 {
				t.Error("operations still pending after drain")
			}
			_ = sim.Time(0)
		})
	}
}
