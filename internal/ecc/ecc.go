// Package ecc implements the SSD's error-correction substrate: a
// single-error-correct, double-error-detect (SEC-DED) extended Hamming
// code over 512-byte codewords, the granularity commercial BCH/LDPC
// engines also use. It stands in for the hardware ECC block of Figure 1:
// the datapath XORs are identical in structure, only the code strength
// differs (documented substitution — BCH would correct more bits but
// exercise the same controller paths).
package ecc

import (
	"errors"
	"fmt"
)

// CodewordBytes is the data bytes protected per codeword.
const CodewordBytes = 512

// ParityBytes is the parity overhead per codeword: a 13-bit position
// syndrome plus one overall-parity bit, packed into two bytes.
const ParityBytes = 2

// ErrUncorrectable reports a codeword with two or more bit errors.
var ErrUncorrectable = errors.New("ecc: uncorrectable codeword (≥2 bit errors)")

// Encode computes the parity for one codeword. data must be exactly
// CodewordBytes long.
func Encode(data []byte) ([ParityBytes]byte, error) {
	var out [ParityBytes]byte
	if len(data) != CodewordBytes {
		return out, fmt.Errorf("ecc: codeword must be %d bytes, got %d", CodewordBytes, len(data))
	}
	syn, overall := rawParity(data)
	out[0] = byte(syn)
	out[1] = byte(syn>>8) | overall<<7
	return out, nil
}

// Decode checks one codeword against its parity and corrects a single
// bit error in place. It returns the number of corrected bits (0 or 1);
// ErrUncorrectable means the data contains at least two flipped bits.
func Decode(data []byte, parity [ParityBytes]byte) (int, error) {
	if len(data) != CodewordBytes {
		return 0, fmt.Errorf("ecc: codeword must be %d bytes, got %d", CodewordBytes, len(data))
	}
	storedSyn := uint16(parity[0]) | uint16(parity[1]&0x1F)<<8
	storedOverall := parity[1] >> 7
	syn, overall := rawParity(data)
	synDiff := syn ^ storedSyn
	overallDiff := overall ^ storedOverall

	switch {
	case synDiff == 0 && overallDiff == 0:
		return 0, nil
	case overallDiff == 1:
		// Odd number of flips: assume exactly one and correct it. The
		// syndrome difference is enc(position) = position+1.
		if synDiff == 0 {
			// The overall parity bit itself flipped; data is intact.
			return 0, nil
		}
		pos := int(synDiff) - 1
		if pos >= CodewordBytes*8 {
			return 0, ErrUncorrectable
		}
		data[pos/8] ^= 1 << (pos % 8)
		return 1, nil
	default:
		// Even number of flips with a nonzero syndrome: ≥2 errors.
		return 0, ErrUncorrectable
	}
}

// rawParity computes the 13-bit position syndrome and the overall parity
// of a codeword: the syndrome is the XOR of enc(i)=i+1 over every set
// bit position i, and the overall parity is the XOR of all bits.
func rawParity(data []byte) (syn uint16, overall byte) {
	for byteIdx, b := range data {
		for ; b != 0; b &= b - 1 {
			bit := trailingZeros(b)
			pos := uint16(byteIdx*8 + bit)
			syn ^= pos + 1
			overall ^= 1
		}
	}
	return syn, overall
}

func trailingZeros(b byte) int {
	n := 0
	for b&1 == 0 {
		b >>= 1
		n++
	}
	return n
}

// PageParityBytes reports the parity bytes needed to protect n data
// bytes (rounded up to whole codewords).
func PageParityBytes(n int) int {
	cws := (n + CodewordBytes - 1) / CodewordBytes
	return cws * ParityBytes
}

// Codec is an ECC engine instance with reusable scratch: the padded
// trailing-codeword buffer lives on the codec instead of being
// re-materialized per call, so steady-state encode/decode of whole
// pages allocates nothing. A Codec is not safe for concurrent use;
// each datapath (one FTL, one test) owns its own.
type Codec struct {
	cw [CodewordBytes]byte
}

// EncodePageInto computes parity for every codeword of page directly
// into dst, which must be exactly PageParityBytes(len(page)) long —
// typically a borrowed window of the DRAM parity region, making the
// encode a single pass with no intermediate parity slice. The final
// partial codeword, if any, is padded with zeros.
func (c *Codec) EncodePageInto(dst, page []byte) error {
	cws := (len(page) + CodewordBytes - 1) / CodewordBytes
	if len(dst) != cws*ParityBytes {
		return fmt.Errorf("ecc: parity destination of %d bytes, need %d", len(dst), cws*ParityBytes)
	}
	for i := 0; i < cws; i++ {
		cw := codeword(page, i, c.cw[:])
		p, err := Encode(cw)
		if err != nil {
			return err
		}
		dst[i*ParityBytes] = p[0]
		dst[i*ParityBytes+1] = p[1]
	}
	return nil
}

// DecodePage verifies and corrects a page in place against parity
// produced by EncodePage. It returns the total corrected bits;
// ErrUncorrectable if any codeword has ≥2 errors.
func (c *Codec) DecodePage(page, parity []byte) (int, error) {
	cws := (len(page) + CodewordBytes - 1) / CodewordBytes
	if len(parity) < cws*ParityBytes {
		return 0, fmt.Errorf("ecc: parity too short: %d bytes for %d codewords", len(parity), cws)
	}
	corrected := 0
	for i := 0; i < cws; i++ {
		cw := codeword(page, i, c.cw[:])
		var p [ParityBytes]byte
		copy(p[:], parity[i*ParityBytes:])
		n, err := Decode(cw, p)
		if err != nil {
			return corrected, fmt.Errorf("ecc: codeword %d: %w", i, err)
		}
		if n > 0 {
			// Write the corrected bits back into the page (the last
			// codeword may be a padded copy).
			copy(page[i*CodewordBytes:min(len(page), (i+1)*CodewordBytes)], cw)
			corrected += n
		}
	}
	return corrected, nil
}

// EncodePage computes parity for every codeword of a page into a fresh
// slice of PageParityBytes(len(page)) bytes. Steady-state paths use
// Codec.EncodePageInto with a reused or borrowed destination.
func EncodePage(page []byte) []byte {
	var c Codec
	out := make([]byte, PageParityBytes(len(page)))
	if err := c.EncodePageInto(out, page); err != nil {
		// Unreachable: the destination is sized above.
		panic(err)
	}
	return out
}

// DecodePage verifies and corrects a page in place with a throwaway
// codec. See Codec.DecodePage.
func DecodePage(page, parity []byte) (int, error) {
	var c Codec
	return c.DecodePage(page, parity)
}

// codeword extracts codeword i of page, zero-padding a trailing partial
// codeword into buf. Full codewords alias the page directly so Decode
// can correct in place.
func codeword(page []byte, i int, buf []byte) []byte {
	lo := i * CodewordBytes
	hi := lo + CodewordBytes
	if hi <= len(page) {
		return page[lo:hi]
	}
	for j := range buf {
		buf[j] = 0
	}
	copy(buf, page[lo:])
	return buf
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
