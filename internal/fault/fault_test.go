package fault

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestRandomizedIsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := Randomized(seed, 8, 256, 50*sim.Microsecond)
		b := Randomized(seed, 8, 256, 50*sim.Microsecond)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two derivations differ:\n%+v\n%+v", seed, a, b)
		}
	}
}

func TestRandomizedVariesWithSeed(t *testing.T) {
	a := Randomized(1, 8, 256, 50*sim.Microsecond)
	b := Randomized(2, 8, 256, 50*sim.Microsecond)
	if reflect.DeepEqual(a, b) {
		t.Fatalf("seeds 1 and 2 produced identical plans: %+v", a)
	}
}

func TestRandomizedCoversEveryCampaignClass(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := Randomized(seed, 4, 64, 20*sim.Microsecond)
		if len(p.StuckBusy) != 1 || len(p.ECCBursts) != 1 || len(p.TRJitter) != 1 {
			t.Fatalf("seed %d: plan missing a campaign class: %+v", seed, p)
		}
		if len(p.FailStorms) == 0 {
			t.Fatalf("seed %d: plan has no fail storms", seed)
		}
		for _, b := range p.ECCBursts {
			if b.RowHigh >= 64 {
				t.Fatalf("seed %d: burst row %d beyond the %d-row LUN", seed, b.RowHigh, 64)
			}
		}
	}
}

func TestInjectorNilForUntouchedChip(t *testing.T) {
	p := Plan{StuckBusy: []StuckBusy{{Chip: 2, AfterOps: 1}}}
	if inj := p.Injector(0, nil, 0); inj != nil {
		t.Fatalf("chip 0 is untargeted but got injector %+v", inj)
	}
	if inj := p.Injector(2, nil, 2); inj == nil {
		t.Fatalf("chip 2 is targeted but got no injector")
	}
	if got := p.Touched(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Touched() = %v, want [2]", got)
	}
}

func TestStuckBusyFiresOnceAndResetClears(t *testing.T) {
	p := Plan{StuckBusy: []StuckBusy{{Chip: 0, AfterOps: 2, Recoverable: true}}}
	in := p.Injector(0, nil, 0)
	for i := 0; i < 2; i++ {
		if fo := in.OnRead(0, 0); fo.Stuck {
			t.Fatalf("op %d wedged before AfterOps", i)
		}
	}
	if fo := in.OnRead(0, 0); !fo.Stuck {
		t.Fatalf("op past AfterOps did not wedge")
	}
	if in.OnReset(0) {
		t.Fatalf("recoverable stuck chip reported dead after RESET")
	}
	if fo := in.OnRead(0, 0); fo.Stuck {
		t.Fatalf("stuck condition re-fired after recovery")
	}
	if p.Hits() != 1 {
		t.Fatalf("Hits() = %d, want 1", p.Hits())
	}
}

func TestUnrecoverableStuckStaysDead(t *testing.T) {
	p := Plan{StuckBusy: []StuckBusy{{Chip: 0, AfterOps: 0, Recoverable: false}}}
	in := p.Injector(0, nil, 0)
	if fo := in.OnProgram(0, 0); !fo.Stuck {
		t.Fatalf("program past AfterOps did not wedge")
	}
	for i := 0; i < 3; i++ {
		if !in.OnReset(0) {
			t.Fatalf("RESET %d revived an unrecoverable chip", i)
		}
	}
}

func TestFailStormWindow(t *testing.T) {
	p := Plan{FailStorms: []FailStorm{{Chip: 0, FirstOp: 2, Count: 2}}}
	in := p.Injector(0, nil, 0)
	var fails []bool
	for i := 0; i < 6; i++ {
		fails = append(fails, in.OnProgram(0, 0).Fail)
	}
	// pe ordinal is incremented before the check, so program i has pe=i+1:
	// the window [2,4) covers the second and third programs.
	want := []bool{false, true, true, false, false, false}
	if !reflect.DeepEqual(fails, want) {
		t.Fatalf("storm window = %v, want %v", fails, want)
	}
}

func TestPersistentFailStorm(t *testing.T) {
	p := Plan{FailStorms: []FailStorm{{Chip: 0, FirstOp: 1, Count: 0}}}
	in := p.Injector(0, nil, 0)
	for i := 0; i < 10; i++ {
		if !in.OnErase(0, i).Fail {
			t.Fatalf("persistent storm let erase %d through", i)
		}
	}
}

func TestECCBurstKeyedByRowAndBounded(t *testing.T) {
	p := Plan{ECCBursts: []ECCBurst{{Chip: 0, RowLow: 4, RowHigh: 7, Hits: 2}}}
	in := p.Injector(0, nil, 0)
	if in.OnRead(0, 3).Corrupt || in.OnRead(0, 8).Corrupt {
		t.Fatalf("burst corrupted a row outside [4,7]")
	}
	if !in.OnRead(0, 4).Corrupt || !in.OnRead(0, 7).Corrupt {
		t.Fatalf("burst missed a row inside [4,7]")
	}
	if in.OnRead(0, 5).Corrupt {
		t.Fatalf("burst kept corrupting past its Hits budget")
	}
}

func TestTRJitterCadence(t *testing.T) {
	const d = 100 * sim.Microsecond
	p := Plan{TRJitter: []TRJitter{{Chip: 0, EveryN: 3, Delay: d}}}
	in := p.Injector(0, nil, 0)
	var delays []sim.Duration
	for i := 0; i < 6; i++ {
		delays = append(delays, in.OnRead(0, 0).Delay)
	}
	want := []sim.Duration{0, 0, d, 0, 0, d}
	if !reflect.DeepEqual(delays, want) {
		t.Fatalf("jitter cadence = %v, want %v", delays, want)
	}
}
