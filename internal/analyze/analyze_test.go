package analyze

import (
	"strings"
	"testing"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// synthetic builds a two-op stream with known component times:
// op 1 reads (queue wait 0), op 2 parks first.
func synthetic() []obs.Event {
	return []obs.Event{
		{Time: 10, Kind: obs.KindCPUCharge, OpID: 1, Label: "admit", Dur: 10, Cycles: 5},
		{Time: 10, Kind: obs.KindOpAdmitted, OpID: 1, Chip: 0, Label: "active"},
		{Time: 12, Kind: obs.KindAdmissionWait, OpID: 2, Chip: 0},
		{Time: 20, Kind: obs.KindOpResumed, OpID: 1},
		{Time: 30, Kind: obs.KindTxnEnqueued, OpID: 1, TxnID: 1, Chip: 0, Depth: 1},
		{Time: 40, Kind: obs.KindHWInstr, OpID: 1, TxnID: 1, Chip: 0, Label: "cmd-addr", Dur: 8},
		{Time: 100, Kind: obs.KindHWInstr, OpID: 1, TxnID: 1, Chip: 0, Label: "data-read", Bytes: 64, Dur: 30},
		{Time: 100, Kind: obs.KindTxnExecuted, OpID: 1, TxnID: 1, Chip: 0, Start: 32, End: 100, Dur: 38},
		{Time: 101, Kind: obs.KindPollResubmit, OpID: 1, Chip: 0},
		{Time: 200, Kind: obs.KindOpFinished, OpID: 1, Chip: 0, Dur: 200},
		{Time: 210, Kind: obs.KindOpAdmitted, OpID: 2, Chip: 0, Label: "active"},
		{Time: 400, Kind: obs.KindOpFinished, OpID: 2, Chip: 0, Dur: 390},
	}
}

func TestCorrelateSpans(t *testing.T) {
	spans := Correlate(synthetic())
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	s := spans[0]
	if s.OpID != 1 || !s.Complete || s.Err {
		t.Fatalf("span 0 = %+v", s)
	}
	if s.Submitted != 0 || s.Admitted != 10 || s.Finished != 200 || s.Latency != 200 {
		t.Fatalf("span 0 times: sub=%d adm=%d fin=%d lat=%d", s.Submitted, s.Admitted, s.Finished, s.Latency)
	}
	if s.QueueWait() != 10 || s.ChannelTime != 38 || s.FirmwareTime != 10 {
		t.Fatalf("span 0 components: qw=%d ch=%d fw=%d", s.QueueWait(), s.ChannelTime, s.FirmwareTime)
	}
	// Residual: 200 − 10 − 38 − 10 = 142.
	if s.CellTime() != 142 {
		t.Fatalf("span 0 cell = %d, want 142", s.CellTime())
	}
	if len(s.Txns) != 1 || s.Txns[0].BusTime != 38 || s.Polls != 1 || s.Resumes != 1 || s.HWInstrs != 2 {
		t.Fatalf("span 0 detail: %+v", s)
	}
	s2 := spans[1]
	if s2.OpID != 2 || s2.Waits != 1 || s2.QueueWait() != 200 /* 210 − (400−390) */ {
		t.Fatalf("span 1 = %+v qw=%d", s2, s2.QueueWait())
	}
	// ChannelTime 0 for op 2 → cell absorbs the rest, clamped math holds.
	if got, want := s2.CellTime(), s2.Latency-s2.QueueWait(); got != want {
		t.Fatalf("span 1 cell = %d, want %d", got, want)
	}
}

func TestCorrelateIncomplete(t *testing.T) {
	ev := synthetic()
	spans := Correlate(ev[:len(ev)-1]) // drop op 2's completion
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[1].Complete || spans[1].OpID != 2 {
		t.Fatalf("truncated span = %+v", spans[1])
	}
	if c := SummarizeSpans(spans); c.Latency.Count != 1 {
		t.Fatalf("summary counted incomplete span: %+v", c.Latency)
	}
}

// A merged sweep trace restarts the virtual clock (and op IDs) per rig;
// SplitRuns must cut at the time reversal so spans never alias.
func TestSplitRunsAndAnalyze(t *testing.T) {
	merged := append(append([]obs.Event{}, synthetic()...), synthetic()...)
	runs := SplitRuns(merged)
	if len(runs) != 2 || len(runs[0]) != len(synthetic()) {
		t.Fatalf("runs = %d (%d events in first), want 2 runs", len(runs), len(runs[0]))
	}
	res := Analyze(merged)
	if len(res.Runs) != 2 || len(res.Spans) != 4 {
		t.Fatalf("analyze: %d runs, %d spans; want 2, 4", len(res.Runs), len(res.Spans))
	}
	if res.Components.Latency.Count != 4 {
		t.Fatalf("latency count = %d, want 4", res.Components.Latency.Count)
	}
	// p50 of {200,390,200,390} nearest-rank = 200; max 390.
	if res.Components.Latency.P50 != 200 || res.Components.Latency.Max != 390 {
		t.Fatalf("latency p50=%d max=%d", res.Components.Latency.P50, res.Components.Latency.Max)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	var samples []sim.Duration
	for i := 100; i >= 1; i-- { // unsorted input
		samples = append(samples, sim.Duration(i))
	}
	s := Summarize(samples)
	if s.P50 != 50 || s.P90 != 90 || s.P99 != 99 || s.Min != 1 || s.Max != 100 || s.Mean != 50 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestTimelineOccupancyAndViolations(t *testing.T) {
	tl := &Timeline{Channel: 0}
	add := func(start, end sim.Time, chip int, label string, bytes int, onChannel bool) {
		tl.add(Interval{Start: start, End: end, Chip: chip, Label: label, Bytes: bytes, OnChannel: onChannel})
	}
	add(0, 10, 0, "cmd-addr", 0, true)
	add(10, 110, 0, "tR", 0, false)
	add(20, 30, 1, "cmd-addr", 0, true)
	add(30, 130, 1, "tR", 0, false)
	add(50, 52, 0, "cmd-addr", 0, true) // status poll cmd during tR: fine
	add(60, 61, 0, "data-read", 1, true)
	add(120, 160, 0, "data-read", 4096, true)
	tl.sortIntervals()

	o := tl.Occupancy()
	if o.Span != 160 {
		t.Fatalf("span = %d", o.Span)
	}
	if o.Busy != 10+10+2+1+40 {
		t.Fatalf("busy = %d", o.Busy)
	}
	if o.Idle != o.Span-o.Busy {
		t.Fatalf("idle = %d", o.Idle)
	}
	// Dies 0 and 1 overlap on [30,110].
	if o.DieOverlap != 80 {
		t.Fatalf("die overlap = %d, want 80", o.DieOverlap)
	}
	// Channel busy under die busy: [20,30)+[50,52)+[60,61)+[120,130) = 23.
	if o.PipelineOverlap != 23 {
		t.Fatalf("pipeline overlap = %d, want 23", o.PipelineOverlap)
	}
	if o.IdleGaps != 4 || o.LongestIdle != 59 {
		t.Fatalf("gaps=%d longest=%d", o.IdleGaps, o.LongestIdle)
	}
	if v := tl.Violations(); len(v) != 0 {
		t.Fatalf("clean timeline reported violations: %v", v)
	}

	// Now inject each violation class.
	add(5, 15, 1, "cmd-addr", 0, true) // overlaps [0,10)
	add(70, 70, 0, "cmd-addr", 0, true)
	add(80, 100, 1, "data-read", 4096, true) // 4 KiB read inside chip 1's tR
	tl.sortIntervals()
	v := tl.Violations()
	rules := map[string]int{}
	for _, x := range v {
		rules[x.Rule]++
	}
	if rules["channel exclusivity"] == 0 || rules["zero-length burst"] != 1 || rules["data transfer during die busy"] != 1 {
		t.Fatalf("violation rules = %v (%v)", rules, v)
	}
}

func TestGanttAndCSVShape(t *testing.T) {
	res := Analyze(synthetic())
	if len(res.Runs) != 1 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	tl := res.Runs[0].Timelines[0]
	if tl == nil {
		t.Fatal("no timeline for channel 0")
	}
	g := tl.Gantt(40)
	if !strings.Contains(g, "bus |") {
		t.Fatalf("gantt missing bus lane:\n%s", g)
	}
	if !strings.Contains(g, "C") || !strings.Contains(g, "R") {
		t.Fatalf("gantt missing cmd/data glyphs:\n%s", g)
	}
	csv := res.CSV()
	for _, col := range []string{"component,count,mean_ps", "run,channel,span_ps", "run_op,channel,chip"} {
		if !strings.Contains(csv, col) {
			t.Fatalf("CSV missing section header %q:\n%s", col, csv)
		}
	}
	if !strings.Contains(res.Render(), "protocol violations: none") {
		t.Fatalf("report:\n%s", res.Render())
	}
}

// The integration acceptance check: run a real rig, analyze its event
// stream, and require the reconstruction to agree with the independent
// obs.Metrics aggregates — summed span channel time equals the
// registry's hardware time, per-op firmware sums stay below total
// software time (scheduling is unattributable), mean span latency
// matches the latency histogram, the timeline's merged occupancy equals
// hardware busy time, and the protocol pass comes back clean.
func TestAnalyzeRealRigMatchesMetrics(t *testing.T) {
	p := nand.Hynix()
	p.Geometry.BlocksPerLUN = 16
	var buf obs.Buffer
	rig, err := ssd.Build(ssd.BuildConfig{
		Params: p, Ways: 2, RateMT: 200,
		Controller: ssd.CtrlBabolCoro, CPUMHz: 150,
		Observe: true, Tracer: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	const reads = 24
	if err := rig.SSD.Preload(reads); err != nil {
		t.Fatal(err)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindRead,
		NumOps: reads, QueueDepth: 4, LogicalPages: reads,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Completed != reads || res.Failed != 0 {
		t.Fatalf("workload: %d/%d completed, %d failed", res.Completed, reads, res.Failed)
	}

	want := rig.Metrics.Snapshot()
	a := Analyze(buf.Events())
	if len(a.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(a.Runs))
	}
	if got := uint64(len(a.Spans)); got != want.OpsFinished {
		t.Fatalf("spans = %d, metrics ops = %d", got, want.OpsFinished)
	}
	var chanSum, fwSum, latSum sim.Duration
	polls := 0
	for i := range a.Spans {
		s := &a.Spans[i]
		if !s.Complete {
			t.Fatalf("incomplete span %+v in a full trace", s)
		}
		if s.Latency != s.QueueWait()+s.ChannelTime+s.CellTime()+s.FirmwareTime {
			t.Fatalf("op %d: components do not sum to latency", s.OpID)
		}
		chanSum += s.ChannelTime
		fwSum += s.FirmwareTime
		latSum += s.Latency
		polls += s.Polls
	}
	if chanSum != want.HardwareTime {
		t.Fatalf("span channel time %v != metrics hardware time %v", chanSum, want.HardwareTime)
	}
	if fwSum >= want.SoftwareTime {
		t.Fatalf("attributed firmware %v not below total software %v", fwSum, want.SoftwareTime)
	}
	if uint64(polls) != want.PollResubmits {
		t.Fatalf("span polls %d != metrics polls %d", polls, want.PollResubmits)
	}
	if int64(latSum) != want.OpLatency.Sum {
		t.Fatalf("span latency sum %d != histogram sum %d", latSum, want.OpLatency.Sum)
	}
	if a.Metrics.Events != want.Events {
		t.Fatalf("replayed %d events, metrics saw %d", a.Metrics.Events, want.Events)
	}

	tl := a.Runs[0].Timelines[0]
	o := tl.Occupancy()
	if o.Busy != want.HardwareTime {
		t.Fatalf("timeline busy %v != hardware time %v", o.Busy, want.HardwareTime)
	}
	if v := a.Violations; len(v) != 0 {
		t.Fatalf("protocol violations on a real trace: %v", v)
	}
}

// A fault-injection trace must surface its forensics in both report
// forms; a quiet trace must render without the section so the
// checked-in goldens stay stable.
func TestRenderFaultRecoverySection(t *testing.T) {
	quiet := Analyze(synthetic())
	if strings.Contains(quiet.Render(), "fault injection") || strings.Contains(quiet.CSV(), "kind,label,count") {
		t.Fatal("quiet trace rendered the fault section")
	}

	events := append(synthetic(),
		obs.Event{Time: 500, Kind: obs.KindFault, Chip: 1, Label: "stuck-busy"},
		obs.Event{Time: 510, Kind: obs.KindFault, Chip: 1, Label: "stuck-busy"},
		obs.Event{Time: 520, Kind: obs.KindFault, Chip: 0, Label: "ecc-burst"},
		obs.Event{Time: 600, Kind: obs.KindRecovery, Chip: 1, Label: "reset"},
		obs.Event{Time: 700, Kind: obs.KindRecovery, Chip: 1, Label: "chip-offline"},
	)
	res := Analyze(events)
	report := res.Render()
	for _, want := range []string{
		"fault injection & recovery (all runs):",
		"faults:     3 (ecc-burst=1 stuck-busy=2)",
		"recoveries: 2 (chip-offline=1 reset=1)",
		"run 0   ch0 chip1: faults=2 recoveries=2",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	csv := res.CSV()
	for _, want := range []string{
		"kind,label,count\n",
		"fault,stuck-busy,2\n",
		"recovery,reset,1\n",
	} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q", want)
		}
	}
}
