package onfi

import (
	"fmt"

	"repro/internal/sim"
)

// DataMode is an ONFI data-interface mode. The mode determines how many
// data transfers happen per cycle and the supported bus frequencies.
type DataMode uint8

const (
	// SDR is the asynchronous single-data-rate interface every package
	// boots in (max ~50 MT/s).
	SDR DataMode = iota
	// NVDDR is the first double-data-rate interface (max ~200 MT/s).
	NVDDR
	// NVDDR2 is the source-synchronous DDR interface used by the paper's
	// packages (max ~533 MT/s; the paper runs it at 100 and 200 MT/s).
	NVDDR2
)

func (m DataMode) String() string {
	switch m {
	case SDR:
		return "SDR"
	case NVDDR:
		return "NVDDR"
	case NVDDR2:
		return "NVDDR2"
	default:
		return fmt.Sprintf("DataMode(%d)", uint8(m))
	}
}

// MaxRateMT reports the maximum transfer rate of the mode in
// megatransfers per second.
func (m DataMode) MaxRateMT() int {
	switch m {
	case SDR:
		return 50
	case NVDDR:
		return 200
	default:
		return 533
	}
}

// BusConfig describes the electrical configuration of one channel: the
// data-interface mode and the transfer rate it is clocked at. One transfer
// moves one byte (8-bit DQ bus).
type BusConfig struct {
	Mode   DataMode
	RateMT int // megatransfers per second (e.g. 100, 200)
}

// Validate checks the rate against the mode's ceiling.
func (c BusConfig) Validate() error {
	if c.RateMT <= 0 {
		return fmt.Errorf("onfi: non-positive transfer rate %d MT/s", c.RateMT)
	}
	if max := c.Mode.MaxRateMT(); c.RateMT > max {
		return fmt.Errorf("onfi: %d MT/s exceeds %v ceiling of %d MT/s", c.RateMT, c.Mode, max)
	}
	return nil
}

// TransferPeriod is the virtual time to move one byte across the DQ bus.
func (c BusConfig) TransferPeriod() sim.Duration {
	// 1 / (RateMT * 1e6) seconds = 1e6/RateMT picoseconds.
	return sim.Duration(1_000_000 / int64(c.RateMT))
}

// DataTime is the bus time to move n bytes, excluding preambles.
func (c BusConfig) DataTime(n int) sim.Duration {
	return sim.Duration(n) * c.TransferPeriod()
}

// Timing holds the ONFI timing parameters a controller must observe when
// constructing waveforms. Naming follows the specification. All values are
// virtual durations. The three delay "categories" of the paper map to:
//
//   - intra-µFSM waits (tCS, tCH, tCALS, tCALH, tWP, tDQSS…): consumed by
//     the µFSM implementations in internal/ufsm;
//   - µFSM-adjacent mandatory waits (tWB): also owned by the µFSMs;
//   - inter-segment waits (tR, tPROG, tBERS, tADL, tRHW): owned by the
//     operation logic (Timer µFSM or status polling).
type Timing struct {
	TCS   sim.Duration // CE setup before first latch
	TCH   sim.Duration // CE hold after last latch
	TCALS sim.Duration // CLE/ALE setup to WE rising edge
	TCALH sim.Duration // CLE/ALE hold after WE rising edge
	TWP   sim.Duration // WE pulse width (one latch cycle low time)
	TWH   sim.Duration // WE high time between latch cycles
	TWB   sim.Duration // WE high to busy (command absorbed by LUN)
	TADL  sim.Duration // address-cycle-to-data-loading (SET FEATURES etc.)
	TRHW  sim.Duration // data output to next command
	TWHR  sim.Duration // command to data output (e.g. status after 0x70)
	TDQSS sim.Duration // DQS strobe preamble before a data burst
	TRPST sim.Duration // DQS postamble after a data burst
	TCCS  sim.Duration // change-column setup time
}

// DefaultTiming returns the timing set BABOL uses for NV-DDR2-class
// packages. Values are representative of ONFI timing mode 5 parts.
func DefaultTiming() Timing {
	return Timing{
		TCS:   20 * sim.Nanosecond,
		TCH:   5 * sim.Nanosecond,
		TCALS: 15 * sim.Nanosecond,
		TCALH: 5 * sim.Nanosecond,
		TWP:   11 * sim.Nanosecond,
		TWH:   9 * sim.Nanosecond,
		TWB:   100 * sim.Nanosecond,
		TADL:  150 * sim.Nanosecond,
		TRHW:  100 * sim.Nanosecond,
		TWHR:  80 * sim.Nanosecond,
		TDQSS: 30 * sim.Nanosecond,
		TRPST: 15 * sim.Nanosecond,
		TCCS:  300 * sim.Nanosecond,
	}
}

// LatchCycle is the bus time of one command/address latch cycle: the WE
// pulse plus the inter-cycle high time.
func (t Timing) LatchCycle() sim.Duration { return t.TWP + t.TWH }

// LatchSegment is the bus time of a C/A segment with n latch cycles,
// including CE setup/hold and the post-segment tWB absorption wait.
func (t Timing) LatchSegment(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return t.TCS + sim.Duration(n)*t.LatchCycle() + t.TCH + t.TWB
}

// DataSegment is the bus time of a data burst of n bytes under cfg,
// including the DQS preamble and postamble.
func (t Timing) DataSegment(cfg BusConfig, n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return t.TDQSS + cfg.DataTime(n) + t.TRPST
}

// pollBudgetSlack is the multiplier between "polls needed to span the
// worst-case busy time at full bus speed" and the budget handed out.
// Real poll loops run slower than back-to-back bus transactions (CPU
// charges, channel contention), so the count over a healthy busy wait
// always lands well under worst/per; the slack keeps a legitimately
// slow part from ever being mistaken for a stuck one.
const pollBudgetSlack = 4

// PollBudget derives the status-poll budget for one busy wait: how
// many READ STATUS transactions a controller may issue before it must
// conclude the target is stuck and escalate to RESET recovery. One
// poll costs a command latch segment, the tWHR turnaround, and a
// one-byte data burst under cfg; the budget spans `worst` (the
// package's worst-case busy time) with generous slack so a bounded
// loop is behaviourally identical to an unbounded one on healthy
// hardware.
func (t Timing) PollBudget(cfg BusConfig, worst sim.Duration) int {
	per := t.LatchSegment(1) + t.TWHR + t.DataSegment(cfg, 1)
	if per <= 0 {
		per = sim.Duration(1)
	}
	n := int64(worst) / int64(per)
	return int(n)*pollBudgetSlack + 64
}
