package nand

import (
	"repro/internal/sim"
)

// FaultOutcome describes how an injected fault perturbs one array
// operation. The zero value means "no fault". Faults manifest only
// through the surfaces a real controller can observe — status bits,
// busy timing, and data contents — never through side channels.
type FaultOutcome struct {
	// Fail makes the operation report StatusFail (PROGRAM/ERASE) and
	// leaves the array unchanged.
	Fail bool
	// Stuck parks the LUN busy forever: RDY/ARDY never assert until a
	// RESET clears the condition (or the chip is declared dead).
	Stuck bool
	// Delay stretches the operation's array busy time (erratic tR).
	Delay sim.Duration
	// Corrupt flips enough bits in the read data that every ECC
	// codeword is uncorrectable (reads only).
	Corrupt bool
}

// FaultInjector is the hook a fault plan installs on a LUN via
// SetFaults. The LUN consults it at the start of each array operation;
// the injector decides deterministically (no wall clock, no global
// RNG) whether and how to perturb it. OnReset is consulted when a
// RESET lands and reports whether the LUN stays stuck afterwards — a
// persistent hardware failure the controller can only offline.
type FaultInjector interface {
	OnRead(now sim.Time, row uint32) FaultOutcome
	OnProgram(now sim.Time, row uint32) FaultOutcome
	OnErase(now sim.Time, block int) FaultOutcome
	OnReset(now sim.Time) (stillStuck bool)
}

// SetFaults installs (or, with nil, removes) a fault injector. The
// no-injector path costs one nil check per array operation.
func (l *LUN) SetFaults(fi FaultInjector) { l.faults = fi }

// stuckUntil is the busy horizon of a stuck LUN: far enough in the
// future that no simulation reaches it, small enough that Time
// arithmetic cannot overflow.
const stuckUntil = sim.Time(1) << 62

// corruptBeyondECC deterministically flips four spread-out bits in
// every 512-byte codeword of dst, defeating SEC-DED correction (which
// handles one flip and detects two). Positions derive from the row so
// repeated reads of the same page corrupt identically.
func corruptBeyondECC(row uint32, dst []byte) {
	b := [5]byte{byte(row), byte(row >> 8), byte(row >> 16), byte(row >> 24), 0xEC}
	seed := fnv1a(b[:])
	const cw = 512
	for base := 0; base < len(dst); base += cw {
		n := len(dst) - base
		if n > cw {
			n = cw
		}
		for i := uint32(0); i < 4; i++ {
			// Splitmix-style spread keeps the four positions distinct in
			// practice; coincident picks just reduce the flip count, and
			// even two flips stay uncorrectable.
			x := seed ^ (uint32(base) * 0x9E3779B9) ^ (i * 0x85EBCA6B)
			x ^= x >> 16
			x *= 0x7FEB352D
			x ^= x >> 15
			bit := int(x % uint32(n*8))
			dst[base+bit/8] ^= 1 << (bit % 8)
		}
	}
}
