package ssd

import (
	"testing"

	"repro/internal/hic"
	"repro/internal/sim"
)

func TestMultiChannelBuild(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Channels = 4
	rig := mustBuild(t, cfg)
	if len(rig.Channels) != 4 || len(rig.Babols) != 4 {
		t.Fatalf("channels=%d controllers=%d", len(rig.Channels), len(rig.Babols))
	}
	if rig.Channel != rig.Channels[0] || rig.Babol != rig.Babols[0] {
		t.Error("singular aliases wrong")
	}
	if rig.FTL.Chips() != 4*cfg.Ways {
		t.Errorf("FTL spans %d chips", rig.FTL.Chips())
	}
}

func TestMultiChannelReadWrite(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Channels = 2
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical / 2); err != nil {
		t.Fatal(err)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindRead,
		NumOps: 100, QueueDepth: 16, LogicalPages: logical / 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Completed != 100 || res.Failed != 0 {
		t.Fatalf("result %+v", res)
	}
	// Work must have reached chips on both channels.
	for c, ch := range rig.Channels {
		if ch.Stats().LatchBursts == 0 {
			t.Errorf("channel %d idle", c)
		}
	}
}

func TestMultiChannelScalesBandwidth(t *testing.T) {
	measure := func(channels int) float64 {
		cfg := smallBuild(CtrlBabolRTOS)
		cfg.Channels = channels
		cfg.Ways = 2
		rig := mustBuild(t, cfg)
		working := 16 * channels
		if err := rig.SSD.Preload(working); err != nil {
			t.Fatal(err)
		}
		res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
			Pattern: hic.Sequential, Kind: hic.KindRead,
			NumOps: 60 * channels, QueueDepth: 8 * channels, LogicalPages: working,
		})
		if err != nil {
			t.Fatal(err)
		}
		rig.Kernel.Run()
		if res.Failed != 0 {
			t.Fatalf("%d failed", res.Failed)
		}
		return res.BandwidthMBps(512)
	}
	one, four := measure(1), measure(4)
	if four < 3*one {
		t.Errorf("4 channels (%f) should be ≥3× one channel (%f)", four, one)
	}
}

func TestMultiChannelGCWithCopyback(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Channels = 2
	cfg.Ways = 1
	cfg.UseCopyback = true
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical * 3, QueueDepth: 2, LogicalPages: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 {
		t.Fatalf("%d writes failed", res.Failed)
	}
	if rig.SSD.Stats().GCCopybacks == 0 {
		t.Error("no copybacks across channels")
	}
	verified := 0
	for lpn := 0; lpn < logical; lpn++ {
		rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			verified++
		}})
	}
	rig.Kernel.Run()
	if verified != logical {
		t.Fatalf("verified %d/%d", verified, logical)
	}
}

func TestMixedCopybackHiddenOnMulti(t *testing.T) {
	// Mixed backends: HW channels → multi backend must not claim
	// copyback support.
	be := NewMultiBackend(1, []Backend{
		&hwBackend{}, &hwBackend{},
	})
	if _, ok := be.(Copybacker); ok {
		t.Error("HW-only multi backend claims copyback")
	}
}

func TestTraceReplayThroughSSD(t *testing.T) {
	rig := mustBuild(t, smallBuild(CtrlBabolRTOS))
	if err := rig.SSD.Preload(8); err != nil {
		t.Fatal(err)
	}
	entries := []hic.TraceEntry{
		{At: 0, Kind: hic.KindRead, LPN: 0},
		{At: 10 * sim.Microsecond, Kind: hic.KindRead, LPN: 1},
		{At: 10 * sim.Microsecond, Kind: hic.KindWrite, LPN: 9},
		{At: 500 * sim.Microsecond, Kind: hic.KindRead, LPN: 9},
	}
	res, err := hic.ReplayTrace(rig.Kernel, rig.SSD, entries)
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Completed != 4 || res.Failed != 0 {
		t.Fatalf("result %+v", res)
	}
	if res.MeanLatency() <= 0 {
		t.Error("no latency recorded")
	}
}

func TestMultiChannelHWBaseline(t *testing.T) {
	cfg := smallBuild(CtrlHW)
	cfg.Channels = 2
	rig := mustBuild(t, cfg)
	if len(rig.HWs) != 2 {
		t.Fatalf("HW controllers: %d", len(rig.HWs))
	}
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical / 2); err != nil {
		t.Fatal(err)
	}
	// A write+read pass exercises the plain (no-copyback) multi backend:
	// reads, programs, and — with overwrites — erases on both channels.
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical, QueueDepth: 4, LogicalPages: logical / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 {
		t.Fatalf("%d failed", res.Failed)
	}
	reads, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindRead,
		NumOps: 40, QueueDepth: 4, LogicalPages: logical / 2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if reads.Failed != 0 {
		t.Fatalf("%d reads failed", reads.Failed)
	}
	for c, ch := range rig.Channels {
		if ch.Stats().LatchBursts == 0 {
			t.Errorf("channel %d idle", c)
		}
	}
	// The multi backend must expose chips by global index.
	if rig.SSD.backend.Chip(cfg.Ways) == nil {
		t.Error("global chip routing broken")
	}
}

func TestECCScrubDuringGC(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Ways = 1
	cfg.WithECC = true
	// Keep the raw rate within SEC-DED's single-bit budget: worst-case
	// expected flips per codeword = rate × wearFrac × maxRetryMismatch
	// = 0.3 × 0.5 × 6 ≤ 1.
	cfg.Params.RawBitErrorPer512B = 0.3
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()

	// Age the whole chip so reads carry correctable single-bit errors,
	// then churn writes until GC relocates pages. The scrub must keep
	// every host read correctable (no error accumulation across
	// relocation generations).
	for b := 0; b < cfg.Params.Geometry.BlocksPerLUN; b++ {
		rig.Channel.Chip(0).Wear(b, cfg.Params.MaxPECycles/2)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical * 4, QueueDepth: 1, LogicalPages: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 {
		t.Fatalf("%d writes failed", res.Failed)
	}
	if rig.SSD.Stats().GCCycles == 0 {
		t.Fatal("no GC ran")
	}
	failures := 0
	for lpn := 0; lpn < logical; lpn++ {
		rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) {
			if err != nil {
				failures++
			}
		}})
	}
	rig.Kernel.Run()
	if failures != 0 {
		t.Errorf("%d uncorrectable reads after scrubbed GC", failures)
	}
}
