// Railread: gang-scheduled replicated reads, the RAIL use case the paper
// cites for the Chip Control µFSM (§IV-A). Data is replicated across
// three chips with a single broadcast PROGRAM; a read can then be served
// from any replica. When one replica's chip is stalled behind a long
// block erase, the read sidesteps it — cutting tail latency exactly as
// RAIL proposes.
package main

import (
	"fmt"
	"log"

	"repro/babol"
	"repro/internal/onfi"
	"repro/internal/sim"
)

func main() {
	sys, err := babol.NewSystem(babol.SystemConfig{Ways: 4, DisableCapture: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const pageBytes = 16384
	replicas := []int{0, 1, 2}
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 9, Page: 0}}

	// Stage a payload and replicate it with ONE broadcast data burst:
	// the Chip Control µFSM selects all three chips, so the page travels
	// over the channel once and programs three arrays concurrently.
	payload := make([]byte, pageBytes)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := sys.DRAM().Write(0, payload); err != nil {
		log.Fatal(err)
	}
	sys.Start(babol.OpRequest{
		Func:       babol.GangProgram(replicas, addr, 0, pageBytes),
		Chip:       0,
		ExtraChips: []int{1, 2},
		Done: func(err error) {
			if err != nil {
				log.Fatal("gang program: ", err)
			}
		},
	})
	sys.Run()
	fmt.Printf("replicated one page to chips %v with a single broadcast burst (t=%v)\n",
		replicas, sys.Now())

	// measureRead times one read served from the given replica chips: a
	// single chip degenerates to a plain read; several chips gang-issue
	// the READ and transfer from whichever is ready first.
	measureRead := func(chips []int) sim.Duration {
		start := sys.Now()
		var done sim.Time
		req := babol.OpRequest{
			Chip: chips[0],
			Done: func(err error) {
				if err != nil {
					log.Fatal("read: ", err)
				}
				done = sys.Now()
			},
		}
		if len(chips) == 1 {
			req.Func = babol.ReadPage(addr, 65536, pageBytes)
		} else {
			req.Func = babol.GangRead(chips, addr, 65536, pageBytes)
			req.ExtraChips = chips[1:]
		}
		sys.Start(req)
		sys.Run()
		return done.Sub(start)
	}

	// Baseline: both read styles on an idle channel.
	fmt.Printf("idle channel: single-copy read %v, gang read %v\n",
		measureRead([]int{0}), measureRead(replicas))

	// Now stall chip 0 behind a block erase (~5 ms). A single-copy read
	// of chip 0's data must queue behind the erase; with replication the
	// read is served from chips 1 and 2 immediately — RAIL's scheduling
	// freedom in action.
	stallChip0 := func() {
		sys.Start(babol.OpRequest{
			Func: babol.EraseBlock(3),
			Chip: 0,
			Done: func(err error) {
				if err != nil {
					log.Fatal("erase: ", err)
				}
			},
		})
	}

	stallChip0()
	replicated := measureRead([]int{1, 2}) // served while chip 0 erases
	sys.Run()                              // drain the erase

	stallChip0()
	single := measureRead([]int{0}) // must wait for the erase
	sys.Run()

	fmt.Printf("chip 0 erasing: single-copy read %v, replicated read %v\n", single, replicated)
	fmt.Printf("tail-latency win: %.1f× faster\n", float64(single)/float64(replicated))
}
