package exp

import (
	"fmt"

	"repro/internal/nand"
	"repro/internal/onfi"
)

// Table1Row is one parameter line of Table I.
type Table1Row struct {
	Parameter string
	Value     string
}

// Table1 reproduces Table I (Flash Memory Parameters): the page read
// times of the three packages, the page size, and the page transfer
// times at the two channel rates. The read times come from the package
// presets; the transfer times are computed from the bus model, which is
// the measurement the paper's row actually reflects.
func Table1() []Table1Row {
	rows := []Table1Row{}
	for _, p := range nand.Presets() {
		rows = append(rows, Table1Row{
			Parameter: fmt.Sprintf("Page read time (%s)", p.Name),
			Value:     us(p.TR),
		})
	}
	geo := nand.Hynix().Geometry
	rows = append(rows, Table1Row{"Page read size", fmt.Sprintf("%d B", geo.PageBytes)})
	tm := onfi.DefaultTiming()
	for _, rate := range []int{100, 200} {
		cfg := onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: rate}
		// A full page transfer includes the column-change latch burst,
		// the command-to-data gap, and the DQS-framed burst.
		d := tm.LatchSegment(4) + tm.TWHR + tm.DataSegment(cfg, geo.PageBytes)
		rows = append(rows, Table1Row{
			Parameter: fmt.Sprintf("Page transfer time (%d MT/s)", rate),
			Value:     us(d),
		})
	}
	return rows
}

// RenderTable1 formats Table I.
func RenderTable1() string {
	var rows []string
	for _, r := range Table1() {
		rows = append(rows, fmt.Sprintf("%-32s %s", r.Parameter, r.Value))
	}
	return table("Table I: Flash Memory Parameters", rows)
}
