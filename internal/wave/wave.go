// Package wave records bus-level activity so it can be inspected,
// validated, and rendered — the simulation's stand-in for the Keysight
// logic analyzer the paper uses in Section VI-B.
//
// Every waveform segment driven onto a channel (a command/address latch
// burst, a data burst in either direction, an explicit pause) is recorded
// as a Segment with exact virtual start and end times. A Checker verifies
// the recorded trace against the ONFI timing rules.
package wave

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/onfi"
	"repro/internal/sim"
)

// Kind classifies a recorded waveform segment.
type Kind uint8

const (
	// KindCmdAddr is a burst of command/address latch cycles.
	KindCmdAddr Kind = iota
	// KindDataOut is a data burst from the LUN to the controller.
	KindDataOut
	// KindDataIn is a data burst from the controller to the LUN.
	KindDataIn
	// KindWait is an explicit pause emitted by the Timer µFSM.
	KindWait
	// KindBusy marks a LUN-internal busy interval (tR/tPROG/tBERS); it
	// does not occupy the channel but is recorded for analysis.
	KindBusy
)

func (k Kind) String() string {
	switch k {
	case KindCmdAddr:
		return "CMD/ADDR"
	case KindDataOut:
		return "DATA-OUT"
	case KindDataIn:
		return "DATA-IN"
	case KindWait:
		return "WAIT"
	case KindBusy:
		return "BUSY"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Segment is one recorded waveform segment.
type Segment struct {
	Start, End sim.Time
	Kind       Kind
	Chip       int          // target chip (LUN index on the channel); -1 = broadcast
	Label      string       // human-readable summary, e.g. "READ.1 ADDR×5 READ.2"
	Bytes      int          // payload length for data segments
	Latches    []onfi.Latch // latch cycles for KindCmdAddr
	OpID       uint64       // operation that produced the segment (0 = none)
}

// Duration of the segment.
func (s Segment) Duration() sim.Duration { return s.End.Sub(s.Start) }

// OnChannel reports whether the segment occupies the shared channel bus.
func (s Segment) OnChannel() bool { return s.Kind != KindBusy }

// Recorder captures segments. The zero value is a disabled recorder; use
// NewRecorder for an enabled one. A nil *Recorder is safe to record into
// (no-op), so datapath code never needs nil checks.
type Recorder struct {
	enabled  bool
	segments []Segment
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{enabled: true} }

// Enabled reports whether Record will capture anything. Hot paths check
// it before building a Segment whose construction is itself costly
// (e.g. rendering a latch-burst label), so a disabled recorder costs
// one branch rather than a string build per bus segment.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Record appends a segment if recording is enabled.
func (r *Recorder) Record(s Segment) {
	if r == nil || !r.enabled {
		return
	}
	r.segments = append(r.segments, s)
}

// Segments returns the captured trace in capture order.
func (r *Recorder) Segments() []Segment {
	if r == nil {
		return nil
	}
	return r.segments
}

// Reset clears the trace.
func (r *Recorder) Reset() {
	if r != nil {
		r.segments = r.segments[:0]
	}
}

// Len reports the number of captured segments.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.segments)
}

// ChannelSegments returns only the segments that occupied the channel,
// sorted by start time.
//
// Ownership: the returned slice is freshly allocated on every call and
// is the caller's to keep — a later Reset (which recycles the
// recorder's backing store for new segments) or further recording never
// mutates it. Segment values are copies; only the Latches field still
// aliases the latch slice captured at Record time, which the recorder
// itself never modifies. Contrast Segments, which returns the live
// backing store for zero-copy scans.
func (r *Recorder) ChannelSegments() []Segment {
	var out []Segment
	for _, s := range r.Segments() {
		if s.OnChannel() {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Busy reports the total channel-occupied time within [from, to].
func (r *Recorder) Busy(from, to sim.Time) sim.Duration {
	var busy sim.Duration
	for _, s := range r.ChannelSegments() {
		lo, hi := s.Start, s.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			busy += hi.Sub(lo)
		}
	}
	return busy
}

// Utilization reports channel busy fraction within [from, to].
func (r *Recorder) Utilization(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	return float64(r.Busy(from, to)) / float64(to.Sub(from))
}

// Render formats the trace as an analyzer-style listing:
//
//	t=0s        +290ns   CMD/ADDR chip0  READ.1 ADDR×5 READ.2
//	t=290ns     +100us   BUSY     chip0  tR
func (r *Recorder) Render() string {
	var b strings.Builder
	for _, s := range r.Segments() {
		fmt.Fprintf(&b, "t=%-12v +%-10v %-8v chip%-2d %s",
			s.Start, s.Duration(), s.Kind, s.Chip, s.Label)
		if s.Bytes > 0 {
			fmt.Fprintf(&b, " (%dB)", s.Bytes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SummarizeLatches builds a compact label for a latch burst, e.g.
// "READ.1 ADDR×5 READ.2".
func SummarizeLatches(latches []onfi.Latch) string {
	var parts []string
	run := 0
	flush := func() {
		if run == 1 {
			parts = append(parts, "ADDR")
		} else if run > 1 {
			parts = append(parts, fmt.Sprintf("ADDR×%d", run))
		}
		run = 0
	}
	for _, l := range latches {
		if l.Kind == onfi.LatchAddr {
			run++
			continue
		}
		flush()
		parts = append(parts, onfi.Cmd(l.Value).String())
	}
	flush()
	return strings.Join(parts, " ")
}
