package ops

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/onfi"
	"repro/internal/sim"
)

// CacheReadPages streams `count` consecutive pages starting at startRow
// using READ CACHE SEQUENTIAL: while page k transfers out of the cache
// register, the array already fetches page k+1, hiding tR behind the bus
// transfer. Pages land contiguously in DRAM at dramAddr.
func CacheReadPages(startRow onfi.RowAddr, count, dramAddr, pageBytes int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		if count <= 0 {
			return fmt.Errorf("ops: cache read of %d pages", count)
		}
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		if err := g.CheckAddr(onfi.Addr{Row: startRow}); err != nil {
			return err
		}
		// Initial READ starts the first array fetch.
		var lbuf [8]onfi.Latch
		ctx.CmdAddr(appendReadLatches(lbuf[:0], g, onfi.Addr{Row: startRow}, onfi.CmdRead2)...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		for i := 0; i < count; i++ {
			// Wait for the array to finish the in-flight fetch (ARDY —
			// the LUN stays RDY for cache transfers while fetching).
			s, err := pollArrayReady(ctx, chip)
			if err != nil {
				return err
			}
			if s&onfi.StatusFail != 0 {
				return fmt.Errorf("ops: cache read FAIL at page %d", i)
			}
			if i < count-1 {
				// 0x31: current page → cache register, array starts the
				// next page; the transfer below overlaps that fetch.
				ctx.Cmd(onfi.CmdCacheRead)
			} else {
				// 0x3F: last page → cache register, no further fetch.
				ctx.Cmd(onfi.CmdCacheReadEnd)
			}
			ctx.ReadData(dramAddr+i*pageBytes, pageBytes)
			if res := ctx.Submit(); res.Err != nil {
				return res.Err
			}
		}
		return nil
	}
}

// ReadWithRetry reads a page and, when verify rejects the data (e.g. the
// ECC decoder reports uncorrectable errors), walks the vendor's
// read-retry voltage levels via SET FEATURES until the data verifies or
// the levels are exhausted — the READ RETRY flow from the literature
// [34], [48] that motivates software-defined operations.
//
// verify receives the DRAM window content after each attempt.
func ReadWithRetry(addr onfi.Addr, dramAddr, n int, verify func([]byte) bool) core.OpFunc {
	return func(ctx *core.Ctx) error {
		levels := ctx.Params().ReadRetryLevels
		if levels == 0 {
			return fmt.Errorf("ops: package %s has no read-retry support", ctx.Params().Name)
		}
		read := func() error {
			g := ctx.Geometry()
			var lbuf [8]onfi.Latch
			ctx.CmdAddr(appendReadLatches(lbuf[:0], g, onfi.Addr{Row: addr.Row}, onfi.CmdRead2)...)
			if res := ctx.Submit(); res.Err != nil {
				return res.Err
			}
			s, err := pollReady(ctx, ctx.ChipIndex())
			if err != nil {
				return err
			}
			if s&onfi.StatusFail != 0 {
				return fmt.Errorf("ops: retry read FAIL")
			}
			ctx.CmdAddr(appendChangeColumnLatches(lbuf[:0], addr.Col)...)
			ctx.ReadData(dramAddr, n)
			res := ctx.Submit()
			return res.Err
		}
		check := func() (bool, error) {
			w, err := ctx.Controller().DRAM().Window(dramAddr, n)
			if err != nil {
				return false, err
			}
			return verify(w), nil
		}

		// Attempt 0: the power-on default level — the level every other
		// read in the system assumes, so nothing to restore on success.
		if err := read(); err != nil {
			return err
		}
		if ok, err := check(); err != nil {
			return err
		} else if ok {
			return nil
		}
		// Walk the retry table. Whatever happens from here on, the
		// package must leave at the default level: a parked retry level
		// skews the error injection of every subsequent read on this
		// LUN (nand's retryMismatch), silently degrading healthy pages.
		restore := func() error {
			return setFeature(ctx, onfi.FeatReadRetry, [4]byte{})
		}
		for lvl := 0; lvl < levels; lvl++ {
			if err := setFeature(ctx, onfi.FeatReadRetry, [4]byte{byte(lvl)}); err != nil {
				return err
			}
			if err := read(); err != nil {
				return err
			}
			if ok, err := check(); err != nil {
				return err
			} else if ok {
				return restore()
			}
		}
		if err := restore(); err != nil {
			return err
		}
		return fmt.Errorf("ops: read retry exhausted %d levels at %+v", levels, addr.Row)
	}
}

// GangRead is the RAIL-style replicated read [32]: the page is stored at
// the same address on every chip in replicas, the READ command is
// gang-issued through the Chip Enable control in a single latch burst,
// and the data transfers from whichever replica becomes ready first —
// cutting tail latency when one chip is slow or busy.
//
// The operation must be started with ExtraChips covering all replicas.
func GangRead(replicas []int, addr onfi.Addr, dramAddr, n int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		if len(replicas) == 0 {
			return fmt.Errorf("ops: gang read with no replicas")
		}
		g := ctx.Geometry()
		if err := g.CheckAddr(addr); err != nil {
			return err
		}
		var mask bus.ChipMask
		for _, c := range replicas {
			mask |= bus.Mask(c)
		}
		// One broadcast latch burst starts tR on every replica at once
		// (paper §IV-A: "the Chip Control can be used to gang schedule a
		// particular operation").
		ctx.Chip(mask)
		var lbuf [8]onfi.Latch
		ctx.CmdAddr(appendReadLatches(lbuf[:0], g, onfi.Addr{Row: addr.Row}, onfi.CmdRead2)...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		// Poll the replicas round-robin; first ready wins. The loop is
		// bounded like every poll loop: all replicas stuck past the
		// budget means no winner will ever emerge.
		winner := -1
		budget := pollBudget(ctx)
		for round := 0; winner < 0; round++ {
			if round >= budget {
				return fmt.Errorf("ops: gang read %v: %w", replicas, ErrStuckBusy)
			}
			for _, c := range replicas {
				s, err := ReadStatus(ctx, c)
				if err != nil {
					return err
				}
				if s&onfi.StatusRDY != 0 && s&onfi.StatusFail == 0 {
					winner = c
					break
				}
			}
		}
		ctx.Chip(bus.Mask(winner))
		ctx.CmdAddr(appendChangeColumnLatches(lbuf[:0], addr.Col)...)
		ctx.ReadData(dramAddr, n)
		res := ctx.Submit()
		return res.Err
	}
}

// GangProgram replicates one DRAM buffer onto the same address of every
// chip in replicas with a single broadcast data burst — the write side of
// RAIL-style replication. All replicas program concurrently.
func GangProgram(replicas []int, addr onfi.Addr, dramAddr, n int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		if len(replicas) == 0 {
			return fmt.Errorf("ops: gang program with no replicas")
		}
		g := ctx.Geometry()
		if err := g.CheckAddr(addr); err != nil {
			return err
		}
		var mask bus.ChipMask
		for _, c := range replicas {
			mask |= bus.Mask(c)
		}
		ctx.Chip(mask)
		var lbuf [8]onfi.Latch
		latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdProgram1))
		latches = g.AppendAddrLatches(latches, addr)
		ctx.CmdAddr(latches...)
		ctx.WriteData(dramAddr, n)
		ctx.CmdAddr(onfi.CmdLatch(onfi.CmdProgram2))
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		// All replicas must finish cleanly; each wait is bounded with
		// RESET escalation like any single-chip poll.
		for _, c := range replicas {
			s, err := pollReady(ctx, c)
			if err != nil {
				return err
			}
			if s&onfi.StatusFail != 0 {
				return fmt.Errorf("ops: gang program FAIL on chip %d", c)
			}
		}
		return nil
	}
}

// EraseWithSuspend erases a block but suspends the erase partway to
// service a latency-critical page read, then resumes — the erase-suspend
// optimization from the literature [23], [54]. readAddr names the page to
// read during the suspension window; its data lands at dramAddr.
func EraseWithSuspend(block int, readAddr onfi.Addr, dramAddr, n int, suspendAfter sim.Duration) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		row := onfi.RowAddr{Block: block}
		if err := g.CheckAddr(onfi.Addr{Row: row}); err != nil {
			return err
		}
		if readAddr.Row.Block == block {
			return fmt.Errorf("ops: cannot read block %d while it is being erased", block)
		}
		// Start the erase.
		var lbuf [8]onfi.Latch
		latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdErase1))
		latches = g.AppendRowLatches(latches, row)
		latches = append(latches, onfi.CmdLatch(onfi.CmdErase2))
		ctx.CmdAddr(latches...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		// Let it run, then suspend.
		ctx.Sleep(suspendAfter)
		ctx.Cmd(onfi.CmdSuspend)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		if _, err := pollReady(ctx, chip); err != nil {
			return err
		}
		// Service the urgent read inside the suspension window.
		ctx.CmdAddr(appendReadLatches(lbuf[:0], g, onfi.Addr{Row: readAddr.Row}, onfi.CmdRead2)...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		if _, err := pollReady(ctx, chip); err != nil {
			return err
		}
		ctx.CmdAddr(appendChangeColumnLatches(lbuf[:0], readAddr.Col)...)
		ctx.ReadData(dramAddr, n)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		// Resume and finish the erase.
		ctx.Cmd(onfi.CmdResume)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		s, err := pollReady(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusFail != 0 {
			return fmt.Errorf("ops: suspended erase of block %d reported FAIL", block)
		}
		return nil
	}
}

// BootSequence initializes a freshly attached package the way BABOL's
// software environment expresses vendor boot flows (paper §IV-C): RESET,
// READ ID verification, then SET FEATURES to switch the data interface
// out of the boot-time SDR mode.
func BootSequence(wantID []byte, timingMode byte) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		// RESET and wait for the package to come back.
		ctx.Cmd(onfi.CmdReset)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		if _, err := pollReady(ctx, chip); err != nil {
			return err
		}
		// READ ID: confirm we are talking to the package we think.
		ctx.CmdAddr(onfi.CmdLatch(onfi.CmdReadID), onfi.AddrLatch(0))
		ctx.ReadCapture(len(wantID))
		res := ctx.Submit()
		if res.Err != nil {
			return res.Err
		}
		for i := range wantID {
			if res.Captured[i] != wantID[i] {
				return fmt.Errorf("ops: boot ID mismatch at byte %d: got %02X want %02X",
					i, res.Captured[i], wantID[i])
			}
		}
		// Switch the data interface (packages boot in SDR; cf. §IV-C).
		return setFeature(ctx, onfi.FeatTimingMode, [4]byte{timingMode})
	}
}
