// Package analyze is the software logic analyzer: it reconstructs what
// the controller actually did from the observability streams the
// simulation already emits — the obs event stream (babolbench -trace
// JSONL, or an in-memory obs.Buffer) and, when available, wave.Recorder
// bus segments.
//
// Three views come out of one pass over the events:
//
//   - Spans: every host operation correlated into a begin-to-end span
//     (admitted → queued → each transaction's bus occupancy → die busy →
//     completed) with a per-op latency breakdown — queue wait, channel
//     time, cell time, firmware CPU time — and percentile summaries
//     across ops.
//
//   - Timelines: a per-channel, per-chip Gantt reconstruction of bus and
//     die activity with occupancy, idle-gap, and overlap statistics,
//     rendered as ASCII art or CSV (render.go).
//
//   - Violations: a protocol sanity pass over the reconstruction —
//     overlapping channel activity, zero-length bursts, data transfers
//     into a busy die — complementing wave.Checker's ONFI timing rules.
//
// This is the paper's §VI-B Keysight logic-analyzer methodology turned
// into software: instead of probing DQ/RE/WE pins, the analyzer probes
// the controller's own event stream, so every figure derived from a
// trace (Table II time splits, Figure 9 waveforms, Figure 11 polling
// cadence) can be recomputed offline from one JSONL file.
package analyze

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TxnSpan is one transaction's contribution to an operation: the bus
// phase the execution unit played for it.
type TxnSpan struct {
	TxnID uint64
	Chip  int
	// Start/End bracket the bus phase; BusTime is the channel occupancy
	// it added (≤ End−Start when the phase includes pure waiting).
	Start, End sim.Time
	BusTime    sim.Duration
	Err        bool
}

// Span is one host operation reconstructed from the event stream.
type Span struct {
	OpID    uint64
	Channel int
	// Chip is the die the operation was admitted to (-1 if unknown).
	Chip int
	// Slot is the admission slot kind ("active", "staged", "gang").
	Slot string

	// Submitted is when the controller first saw the operation
	// (Finished − Latency, i.e. core's op Start time); Admitted is when
	// it won a chip slot; Finished is its completion time.
	Submitted, Admitted, Finished sim.Time
	// Latency is the controller's own Start→Done measurement
	// (KindOpFinished.Dur).
	Latency sim.Duration

	// Waits counts admission-queue parks; Resumes counts firmware
	// context switches into the op; Polls counts re-issued status
	// transactions; HWInstrs counts timed µFSM instructions.
	Waits, Resumes, Polls, HWInstrs int

	Txns []TxnSpan

	// ChannelTime is the summed bus occupancy of the op's transactions.
	ChannelTime sim.Duration
	// FirmwareTime is the CPU-model time charged to this specific op
	// (admit, switch, submit, poll-resubmit). Scheduling-pass charges
	// are not attributable to a single op and are excluded, so summing
	// FirmwareTime across spans undercounts total software time by the
	// scheduling share.
	FirmwareTime   sim.Duration
	FirmwareCycles int64

	Err bool
	// Complete reports that both admission and completion were observed;
	// a truncated trace leaves trailing ops incomplete.
	Complete bool
}

// QueueWait is the admission delay: time from submission until the op
// held a chip slot. It includes the admission firmware charge, so the
// breakdown components overlap by that sliver; CellTime absorbs the
// difference as a clamped residual.
func (s *Span) QueueWait() sim.Duration {
	w := s.Admitted.Sub(s.Submitted)
	if w < 0 {
		return 0
	}
	return w
}

// CellTime is the in-die time (tR/tPROG/tBERS plus polling-interval
// slack) the op spent neither occupying the channel nor the CPU: the
// residual Latency − QueueWait − ChannelTime − FirmwareTime, clamped at
// zero.
func (s *Span) CellTime() sim.Duration {
	c := s.Latency - s.QueueWait() - s.ChannelTime - s.FirmwareTime
	if c < 0 {
		return 0
	}
	return c
}

// SplitRuns cuts a merged multi-rig trace into per-rig streams. The
// parallel sweep runner replays each rig's private buffer into the
// shared sink back-to-back in configuration order, and every rig
// restarts its virtual clock and its op-ID counter from scratch — so a
// boundary shows up structurally: an admission (the op-admitted event,
// or the admit CPU charge that precedes it) for a (channel, op) that
// the current run already admitted. Event times alone cannot mark
// boundaries: within one rig the hardware's events carry end-of-phase
// times that legitimately run ahead of the firmware's charge times, so
// the stream is not time-monotone. A single-rig trace comes back as one
// run.
func SplitRuns(events []obs.Event) [][]obs.Event {
	type key struct {
		channel int
		op      uint64
	}
	seen := make(map[key]bool)
	var runs [][]obs.Event
	start := 0
	for i, e := range events {
		if e.OpID == 0 {
			continue
		}
		admission := e.Kind == obs.KindOpAdmitted ||
			(e.Kind == obs.KindCPUCharge && e.Label == "admit")
		if !admission {
			continue
		}
		k := key{e.Channel, e.OpID}
		if e.Kind == obs.KindCPUCharge && !seen[k] {
			// Admit charges also fire when a parked op is re-admitted,
			// so only a charge for an op this run has *already* admitted
			// marks a boundary.
			continue
		}
		if seen[k] {
			runs = append(runs, events[start:i])
			start = i
			seen = make(map[key]bool)
		}
		if e.Kind == obs.KindOpAdmitted {
			seen[k] = true
		}
	}
	if start < len(events) {
		runs = append(runs, events[start:])
	}
	return runs
}

// Correlate folds one rig's event stream into operation spans. Spans
// are returned in completion order, then any incomplete spans (admitted
// but never finished — a truncated trace) ordered by channel and op ID.
// Events must come from a single rig (SplitRuns first for merged
// traces): op IDs restart per rig, and Correlate reuses an ID once its
// span completes.
func Correlate(events []obs.Event) []Span {
	type key struct {
		channel int
		op      uint64
	}
	open := make(map[key]*Span)
	var done []Span
	get := func(e obs.Event) *Span {
		k := key{e.Channel, e.OpID}
		s := open[k]
		if s == nil {
			s = &Span{OpID: e.OpID, Channel: e.Channel, Chip: -1, Submitted: e.Time}
			open[k] = s
		}
		return s
	}
	for _, e := range events {
		if e.OpID == 0 {
			// Not op-attributable: scheduling charges, gate opens.
			continue
		}
		switch e.Kind {
		case obs.KindOpAdmitted:
			s := get(e)
			s.Admitted = e.Time
			s.Chip = e.Chip
			s.Slot = e.Label
		case obs.KindAdmissionWait:
			get(e).Waits++
		case obs.KindOpResumed:
			get(e).Resumes++
		case obs.KindPollResubmit:
			get(e).Polls++
		case obs.KindCPUCharge:
			s := get(e)
			s.FirmwareTime += e.Dur
			s.FirmwareCycles += e.Cycles
		case obs.KindHWInstr:
			get(e).HWInstrs++
		case obs.KindTxnExecuted:
			s := get(e)
			s.Txns = append(s.Txns, TxnSpan{
				TxnID: e.TxnID, Chip: e.Chip,
				Start: e.Start, End: e.End, BusTime: e.Dur, Err: e.Err,
			})
			s.ChannelTime += e.Dur
		case obs.KindOpFinished:
			s := get(e)
			s.Finished = e.Time
			s.Latency = e.Dur
			s.Submitted = e.Time.Add(-e.Dur)
			s.Err = e.Err
			s.Complete = true
			done = append(done, *s)
			delete(open, key{e.Channel, e.OpID})
		}
	}
	rest := make([]Span, 0, len(open))
	for _, s := range open {
		rest = append(rest, *s)
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].Channel != rest[j].Channel {
			return rest[i].Channel < rest[j].Channel
		}
		return rest[i].OpID < rest[j].OpID
	})
	return append(done, rest...)
}
