// Package onfi models the parts of the Open NAND Flash Interface (ONFI)
// specification that a channel controller needs: operation codes, status
// register semantics, latch kinds, data-interface modes with their transfer
// rates, and the timing parameters that govern waveform construction.
//
// The package is pure data and codecs; waveform emission lives in
// internal/ufsm and package behaviour in internal/nand.
package onfi

import "fmt"

// Cmd is an ONFI operation code (one command-latch byte).
type Cmd byte

// Standard and common vendor command codes. The two-byte commands (e.g.
// READ is 0x00…0x30) are listed as their constituent latches.
const (
	CmdRead1            Cmd = 0x00 // READ: first command latch
	CmdRead2            Cmd = 0x30 // READ: confirm latch (starts tR)
	CmdCacheRead        Cmd = 0x31 // READ CACHE SEQUENTIAL confirm
	CmdCacheReadEnd     Cmd = 0x3F // READ CACHE END
	CmdChangeReadCol1   Cmd = 0x05 // CHANGE READ COLUMN: first latch
	CmdChangeReadCol2   Cmd = 0xE0 // CHANGE READ COLUMN: confirm
	CmdCopybackRead     Cmd = 0x35 // READ FOR COPYBACK: confirm latch
	CmdCopybackProgram  Cmd = 0x85 // COPYBACK PROGRAM: first latch (ctx-dependent)
	CmdMPReadQueue      Cmd = 0x32 // MULTI-PLANE READ: queue this plane, more follow
	CmdMPProgramQueue   Cmd = 0x11 // MULTI-PLANE PROGRAM: queue this plane, more follow
	CmdChangeReadColE1  Cmd = 0x06 // CHANGE READ COLUMN ENHANCED: first latch (selects plane)
	CmdProgram1         Cmd = 0x80 // PAGE PROGRAM: first latch
	CmdProgram2         Cmd = 0x10 // PAGE PROGRAM: confirm (starts tPROG)
	CmdCacheProgram2    Cmd = 0x15 // CACHE PROGRAM confirm
	CmdChangeWriteCol   Cmd = 0x85 // CHANGE WRITE COLUMN
	CmdErase1           Cmd = 0x60 // BLOCK ERASE: first latch
	CmdErase2           Cmd = 0xD0 // BLOCK ERASE: confirm (starts tBERS)
	CmdReadStatus       Cmd = 0x70 // READ STATUS
	CmdReadStatusEnh    Cmd = 0x78 // READ STATUS ENHANCED (per-LUN)
	CmdReadID           Cmd = 0x90 // READ ID
	CmdReadParameterPg  Cmd = 0xEC // READ PARAMETER PAGE
	CmdSetFeatures      Cmd = 0xEF // SET FEATURES
	CmdGetFeatures      Cmd = 0xEE // GET FEATURES
	CmdReset            Cmd = 0xFF // RESET
	CmdSynchronousReset Cmd = 0xFC // SYNCHRONOUS RESET
	// Vendor-specific codes used by advanced operations in the literature.
	CmdPSLCEnable   Cmd = 0xA2 // enter pseudo-SLC mode for the next op
	CmdSuspend      Cmd = 0x61 // suspend ongoing PROGRAM/ERASE
	CmdResume       Cmd = 0xD2 // resume a suspended PROGRAM/ERASE
	CmdReadRetryPre Cmd = 0x26 // vendor read-retry preamble
)

// String names the command for traces and error messages.
func (c Cmd) String() string {
	if s, ok := cmdNames[c]; ok {
		return s
	}
	return fmt.Sprintf("CMD(0x%02X)", byte(c))
}

var cmdNames = map[Cmd]string{
	CmdRead1:            "READ.1",
	CmdRead2:            "READ.2",
	CmdCacheRead:        "CACHE-READ",
	CmdCacheReadEnd:     "CACHE-READ-END",
	CmdChangeReadCol1:   "CHG-RD-COL.1",
	CmdChangeReadCol2:   "CHG-RD-COL.2",
	CmdCopybackRead:     "COPYBACK-READ",
	CmdMPReadQueue:      "MP-READ-QUEUE",
	CmdMPProgramQueue:   "MP-PGM-QUEUE",
	CmdChangeReadColE1:  "CHG-RD-COL-E.1",
	CmdProgram1:         "PROGRAM.1",
	CmdProgram2:         "PROGRAM.2",
	CmdCacheProgram2:    "CACHE-PROGRAM.2",
	CmdChangeWriteCol:   "CHG-WR-COL",
	CmdErase1:           "ERASE.1",
	CmdErase2:           "ERASE.2",
	CmdReadStatus:       "READ-STATUS",
	CmdReadStatusEnh:    "READ-STATUS-ENH",
	CmdReadID:           "READ-ID",
	CmdReadParameterPg:  "READ-PARAM-PAGE",
	CmdSetFeatures:      "SET-FEATURES",
	CmdGetFeatures:      "GET-FEATURES",
	CmdReset:            "RESET",
	CmdSynchronousReset: "SYNC-RESET",
	CmdPSLCEnable:       "PSLC-ENABLE",
	CmdSuspend:          "SUSPEND",
	CmdResume:           "RESUME",
	CmdReadRetryPre:     "READ-RETRY-PRE",
}

// Status register bits as returned by READ STATUS (ONFI 5.1 §5.5).
const (
	StatusFail  byte = 1 << 0 // FAIL: last operation failed
	StatusFailC byte = 1 << 1 // FAILC: previous (cached) operation failed
	StatusCSP   byte = 1 << 2 // command-specific
	StatusVSP   byte = 1 << 3 // vendor-specific
	StatusARDY  byte = 1 << 5 // array ready (cache ops)
	StatusRDY   byte = 1 << 6 // ready: LUN can accept a new command
	StatusWP    byte = 1 << 7 // write protect (1 = not protected)
)

// StatusReady is the value an idle, healthy LUN reports: RDY|ARDY|WP.
// The paper's Algorithm 2 polls for 0x40 (RDY); comparisons should mask.
const StatusReady = StatusRDY | StatusARDY | StatusWP

// LatchKind distinguishes what a latch cycle on the command/address bus
// carries.
type LatchKind uint8

const (
	LatchCmd  LatchKind = iota // command latch (CLE high)
	LatchAddr                  // address latch (ALE high)
)

func (k LatchKind) String() string {
	if k == LatchCmd {
		return "CMD"
	}
	return "ADDR"
}

// Latch is one command or address cycle: the kind plus the byte driven on
// DQ[7:0].
type Latch struct {
	Kind  LatchKind
	Value byte
}

// CmdLatch builds a command latch.
func CmdLatch(c Cmd) Latch { return Latch{Kind: LatchCmd, Value: byte(c)} }

// AddrLatch builds an address latch.
func AddrLatch(b byte) Latch { return Latch{Kind: LatchAddr, Value: b} }

// FeatureAddr identifies a SET/GET FEATURES target register.
type FeatureAddr byte

// Feature addresses used by BABOL's operation library.
const (
	FeatTimingMode    FeatureAddr = 0x01 // ONFI timing mode / data interface
	FeatDriveStrength FeatureAddr = 0x10
	FeatReadRetry     FeatureAddr = 0x89 // vendor: read-retry voltage level
	FeatPSLC          FeatureAddr = 0x91 // vendor: pseudo-SLC mode latch
	FeatOutputPhase   FeatureAddr = 0x92 // vendor: DQS output phase trim
)
