// Command babolbench regenerates every table and figure of the paper's
// evaluation (Section VI):
//
//	babolbench table1   Flash memory parameters (Table I)
//	babolbench table2   Lines of code per operation (Table II)
//	babolbench table3   FPGA resources per controller (Table III)
//	babolbench fig9     Algorithm-2 READ waveform (Figure 9)
//	babolbench fig10    Read throughput sweep (Figure 10)
//	babolbench fig11    Polling cadence analysis (Figure 11)
//	babolbench fig12    End-to-end SSD bandwidth (Figure 12)
//	babolbench split    software/hardware time split from the event stream
//	babolbench all      everything above, in paper order
//
// beyond the paper, a robustness soak:
//
//	babolbench chaos
//
// which drives mixed read/write workloads with GC pressure through the
// full SSD while a seeded fault plan injects stuck-busy LUNs, program/
// erase fail storms, uncorrectable-ECC bursts, and erratic tR at the
// NAND boundary, then verifies the drive drained without livelock or
// data loss on unfaulted chips. -seeds picks the number of runs; each
// run's plan derives from its seed alone, so any result reproduces
// exactly (chaos is excluded from `all` so the paper outputs stay
// fault-free).
//
// plus the software logic analyzer over recorded traces:
//
//	babolbench analyze trace.jsonl
//
// which reconstructs per-op spans (latency breakdown percentiles),
// per-channel Gantt timelines with occupancy statistics, and a protocol
// violation report from a -trace JSONL file; -csv switches the report
// to machine-readable CSV.
//
// Flags scale the runs; the defaults reproduce the full sweeps. The
// sweeps fan independent rigs out across the CPUs (-parallel bounds the
// worker count; -parallel 1 pins the serial order for debugging) and
// reassemble results in configuration order, so output is byte-identical
// at any parallelism. With -trace, every rig's controller event stream
// is appended to one JSONL file (one JSON object per line; see
// internal/obs) for offline analysis or replay through obs.ReadJSONL +
// obs.Metrics; traces are buffered per rig and merged in configuration
// order, so they too are stable under parallelism.
//
// With -http ADDR, babolbench serves live introspection while the
// experiments run: /metrics is a JSON snapshot of the aggregated event
// stream (updated concurrently as rigs execute, safely — the endpoint
// aggregates through a mutex-guarded registry that does not perturb the
// deterministic trace path), and the Go pprof handlers are mounted
// under /debug/pprof/ for profiling the simulator itself.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/analyze"
	"repro/internal/exp"
	"repro/internal/obs"
)

// analyzeTrace is the `babolbench analyze` subcommand: decode a JSONL
// trace and run the software logic analyzer over it.
func analyzeTrace(path string, csv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	res := analyze.Analyze(events)
	if csv {
		fmt.Print(res.CSV())
	} else {
		fmt.Print(res.Render())
	}
	return nil
}

// serveIntrospection mounts /metrics and /debug/pprof/ on addr and
// returns the live tracer the experiments should feed. The server stays
// up for the process lifetime; errors binding the socket are fatal
// (asking for introspection and silently not getting it is worse than
// failing).
func serveIntrospection(addr string) (obs.Tracer, error) {
	live := obs.NewSyncMetrics()
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(live.Snapshot))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-http %s: %w", addr, err)
	}
	fmt.Fprintf(os.Stderr, "babolbench: live introspection on http://%s/metrics\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "babolbench: introspection server:", err)
		}
	}()
	return live, nil
}

func main() {
	csv := flag.Bool("csv", false, "emit fig10/fig12/split as CSV instead of tables")
	ops := flag.Int("ops", 240, "host operations per measured configuration")
	blocks := flag.Int("blocks", 64, "blocks per LUN (throughput runs do not need full arrays)")
	trace := flag.String("trace", "", "append controller events to this JSONL file")
	parallel := flag.Int("parallel", 0, "rigs simulated concurrently (0 = one per CPU, 1 = serial; results are identical at any setting)")
	seeds := flag.Int("seeds", 8, "number of seeded fault plans for the chaos soak")
	httpAddr := flag.String("http", "", "serve live metrics (/metrics) and pprof (/debug/pprof/) on this address during the run, e.g. :6060")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: babolbench [-ops N] [-blocks N] [-parallel N] [-trace out.jsonl] [-http :PORT] table1|table2|table3|fig9|fig10|fig11|fig12|split|all\n")
		fmt.Fprintf(os.Stderr, "       babolbench [-ops N] [-seeds N] [-parallel N] [-trace out.jsonl] chaos\n")
		fmt.Fprintf(os.Stderr, "       babolbench [-csv] analyze trace.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.Arg(0) == "analyze" {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		if err := analyzeTrace(flag.Arg(1), *csv); err != nil {
			fmt.Fprintln(os.Stderr, "babolbench:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opt := exp.Options{Ops: *ops, Blocks: *blocks, WaysList: []int{2, 4, 8}, Parallel: *parallel}
	if *httpAddr != "" {
		live, err := serveIntrospection(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "babolbench:", err)
			os.Exit(1)
		}
		opt.Live = live
	}

	var sink *obs.JSONLWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "babolbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = obs.NewJSONLWriter(f)
		opt.Tracer = sink
	}

	var run func(name string) error
	run = func(name string) error {
		switch name {
		case "table1":
			fmt.Println(exp.RenderTable1())
		case "table2":
			out, err := exp.RenderTable2()
			if err != nil {
				return err
			}
			fmt.Println(out)
		case "table3":
			fmt.Println(exp.RenderTable3())
		case "fig9":
			out, err := exp.Fig9()
			if err != nil {
				return err
			}
			fmt.Println(out)
		case "fig10":
			pts, err := exp.Fig10(opt)
			if err != nil {
				return err
			}
			if *csv {
				fmt.Print(exp.Fig10CSV(pts))
			} else {
				fmt.Println(exp.RenderFig10(pts))
			}
		case "fig11":
			res, err := exp.Fig11(opt)
			if err != nil {
				return err
			}
			fmt.Println(exp.RenderFig11(res))
		case "fig12":
			f12 := opt
			f12.WaysList = []int{1, 2, 4, 8}
			pts, err := exp.Fig12(f12)
			if err != nil {
				return err
			}
			if *csv {
				fmt.Print(exp.Fig12CSV(pts))
			} else {
				fmt.Println(exp.RenderFig12(pts))
			}
		case "chaos":
			list := make([]int64, *seeds)
			for i := range list {
				list[i] = int64(i + 1)
			}
			pts, err := exp.Chaos(opt, list)
			if err != nil {
				return err
			}
			if *csv {
				fmt.Print(exp.ChaosCSV(pts))
			} else {
				fmt.Println(exp.RenderChaos(pts))
			}
		case "split":
			rows, err := exp.TimeSplit(opt)
			if err != nil {
				return err
			}
			if *csv {
				fmt.Print(exp.TimeSplitCSV(rows))
			} else {
				fmt.Println(exp.RenderTimeSplit(rows))
			}
		case "all":
			for _, n := range []string{"table1", "table2", "table3", "fig9", "fig10", "fig11", "fig12", "split"} {
				if err := run(n); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	err := run(flag.Arg(0))
	if sink != nil {
		if ferr := sink.Flush(); err == nil && ferr != nil {
			err = fmt.Errorf("writing trace: %w", ferr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "babolbench:", err)
		os.Exit(1)
	}
}
