package ssd

import (
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
)

// multiBackend fans the SSD's global chip index out over several
// channel controllers: chip = channel*ways + way. Each channel has its
// own bus and controller (hardware or BABOL), exactly like a real
// multi-channel SSD where the channels operate fully in parallel.
type multiBackend struct {
	ways     int
	channels []Backend
}

// NewMultiBackend stripes a fixed number of ways per channel across the
// given per-channel backends. The returned backend advertises copyback
// only when every channel supports it, so the SSD's capability check
// stays truthful for mixed configurations.
func NewMultiBackend(ways int, channels []Backend) Backend {
	mb := &multiBackend{ways: ways, channels: channels}
	for _, c := range channels {
		if _, ok := c.(Copybacker); !ok {
			return &plainMultiBackend{mb: mb}
		}
	}
	return mb
}

// plainMultiBackend forwards the Backend interface without exposing
// CopybackPage, hiding the capability when any channel lacks it.
type plainMultiBackend struct {
	mb *multiBackend
}

func (p *plainMultiBackend) Chip(i int) *nand.LUN { return p.mb.Chip(i) }
func (p *plainMultiBackend) ReadPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error)) {
	p.mb.ReadPage(chip, row, dramAddr, n, done)
}
func (p *plainMultiBackend) ProgramPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error)) {
	p.mb.ProgramPage(chip, row, dramAddr, n, done)
}
func (p *plainMultiBackend) EraseBlock(chip, block int, done func(error)) {
	p.mb.EraseBlock(chip, block, done)
}

func (m *multiBackend) route(chip int) (Backend, int) {
	return m.channels[chip/m.ways], chip % m.ways
}

func (m *multiBackend) Chip(i int) *nand.LUN {
	be, way := m.route(i)
	return be.Chip(way)
}

func (m *multiBackend) ReadPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error)) {
	be, way := m.route(chip)
	be.ReadPage(way, row, dramAddr, n, done)
}

func (m *multiBackend) ProgramPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error)) {
	be, way := m.route(chip)
	be.ProgramPage(way, row, dramAddr, n, done)
}

func (m *multiBackend) EraseBlock(chip, block int, done func(error)) {
	be, way := m.route(chip)
	be.EraseBlock(way, block, done)
}

// EraseBlockInterruptible implements InterruptibleEraser by forwarding
// to the chip's channel backend.
func (m *multiBackend) EraseBlockInterruptible(chip, block int, next func() (ops.UrgentRead, bool), done func(error)) {
	be, way := m.route(chip)
	if ie, ok := be.(InterruptibleEraser); ok {
		ie.EraseBlockInterruptible(way, block, next, done)
		return
	}
	be.EraseBlock(way, block, done)
}

// eraseBlockRelay implements relayEraser by forwarding to the chip's
// channel backend; armed=false (with nothing issued) when that channel
// cannot relay, so the caller can fall back.
func (m *multiBackend) eraseBlockRelay(chip, block int, done func(error)) (urgentSink, bool) {
	be, way := m.route(chip)
	if re, ok := be.(relayEraser); ok {
		return re.eraseBlockRelay(way, block, done)
	}
	return nil, false
}

func (p *plainMultiBackend) eraseBlockRelay(chip, block int, done func(error)) (urgentSink, bool) {
	return p.mb.eraseBlockRelay(chip, block, done)
}

// CopybackPage implements Copybacker when every channel backend does.
func (m *multiBackend) CopybackPage(chip int, src, dst onfi.RowAddr, done func(error)) {
	be, way := m.route(chip)
	if cb, ok := be.(Copybacker); ok {
		cb.CopybackPage(way, src, dst, done)
		return
	}
	// Fallback for mixed configurations: read + program through the
	// channel. The SSD assembly only takes the copyback path after a
	// type assertion on the whole backend, so this is defensive.
	done(errNoCopyback)
}

// errNoCopyback reports a copyback request against a channel that lacks
// the capability.
var errNoCopyback = errNoCopybackT{}

type errNoCopybackT struct{}

func (errNoCopybackT) Error() string { return "ssd: channel backend lacks copyback" }
