package wave

import (
	"fmt"

	"repro/internal/onfi"
	"repro/internal/sim"
)

// Violation is one timing-rule breach found in a trace.
type Violation struct {
	Index int // segment index in the trace
	Rule  string
	Want  sim.Duration
	Got   sim.Duration
}

func (v Violation) String() string {
	return fmt.Sprintf("segment %d: %s: need ≥%v, got %v", v.Index, v.Rule, v.Want, v.Got)
}

// Checker validates a recorded trace against ONFI timing rules. It is the
// programmatic equivalent of eyeballing the logic analyzer: it confirms
// that the µFSMs construct legal waveforms regardless of how the software
// layer composed them.
type Checker struct {
	Timing onfi.Timing
	Bus    onfi.BusConfig
}

// NewChecker builds a checker for the given electrical configuration.
func NewChecker(t onfi.Timing, bus onfi.BusConfig) *Checker {
	return &Checker{Timing: t, Bus: bus}
}

// Check validates the trace and returns all violations found.
//
// Rules enforced:
//  1. channel exclusivity — channel segments never overlap in time;
//  2. latch-burst length — a CMD/ADDR segment must last at least
//     tCS + n·(tWP+tWH) + tCH for its n latch cycles;
//  3. data-burst length — a data segment must last at least
//     tDQSS + n·transferPeriod + tRPST for its n bytes;
//  4. command-to-data gap — a DATA-OUT segment must start at least tWHR
//     after the preceding CMD/ADDR segment to the same chip ends;
//  5. write-busy gap — after a latch burst ending in a confirm command
//     (READ.2, PROGRAM.2, ERASE.2), nothing may address the same chip for
//     tWB.
func (c *Checker) Check(segments []Segment) []Violation {
	var out []Violation
	chanSegs := make([]Segment, 0, len(segments))
	idx := make([]int, 0, len(segments))
	for i, s := range segments {
		if s.OnChannel() {
			chanSegs = append(chanSegs, s)
			idx = append(idx, i)
		}
	}

	for i := 1; i < len(chanSegs); i++ {
		if chanSegs[i].Start < chanSegs[i-1].End {
			out = append(out, Violation{
				Index: idx[i], Rule: "channel exclusivity (overlap with previous segment)",
				Want: 0, Got: chanSegs[i].Start.Sub(chanSegs[i-1].End),
			})
		}
	}

	for k, s := range chanSegs {
		i := idx[k]
		switch s.Kind {
		case KindCmdAddr:
			min := c.Timing.TCS + sim.Duration(len(s.Latches))*c.Timing.LatchCycle() + c.Timing.TCH
			if s.Duration() < min {
				out = append(out, Violation{Index: i, Rule: "latch burst too short", Want: min, Got: s.Duration()})
			}
		case KindDataOut, KindDataIn:
			min := c.Timing.TDQSS + c.Bus.DataTime(s.Bytes) + c.Timing.TRPST
			if s.Duration() < min {
				out = append(out, Violation{Index: i, Rule: "data burst too short", Want: min, Got: s.Duration()})
			}
		}
	}

	// Inter-segment gaps, per chip.
	lastCmd := map[int]Segment{}      // last CMD/ADDR per chip
	lastConfirm := map[int]sim.Time{} // end of last confirm-latch burst per chip
	for k, s := range chanSegs {
		i := idx[k]
		switch s.Kind {
		case KindDataOut:
			if prev, ok := lastCmd[s.Chip]; ok && prev.End == maxPrevEnd(lastCmd, s.Chip) {
				if gap := s.Start.Sub(prev.End); gap < c.Timing.TWHR {
					out = append(out, Violation{Index: i, Rule: "tWHR (command to data output)", Want: c.Timing.TWHR, Got: gap})
				}
			}
		case KindCmdAddr:
			if t, ok := lastConfirm[s.Chip]; ok {
				if gap := s.Start.Sub(t); gap < 0 {
					out = append(out, Violation{Index: i, Rule: "tWB (confirm to next address)", Want: c.Timing.TWB, Got: gap + c.Timing.TWB})
				}
			}
			lastCmd[s.Chip] = s
			if endsInConfirm(s.Latches) {
				lastConfirm[s.Chip] = s.End // End already includes tWB (µFSM responsibility)
			}
		}
	}
	return out
}

func maxPrevEnd(m map[int]Segment, chip int) sim.Time {
	return m[chip].End
}

func endsInConfirm(latches []onfi.Latch) bool {
	if len(latches) == 0 {
		return false
	}
	last := latches[len(latches)-1]
	if last.Kind != onfi.LatchCmd {
		return false
	}
	switch onfi.Cmd(last.Value) {
	case onfi.CmdRead2, onfi.CmdProgram2, onfi.CmdErase2, onfi.CmdCacheRead, onfi.CmdCacheProgram2:
		return true
	}
	return false
}
