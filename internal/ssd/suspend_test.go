package ssd

import (
	"testing"

	"repro/internal/hic"
	"repro/internal/sim"
)

// mixedLoad runs random reads against a drive under steady write+GC
// pressure and reports the read p99 latency.
func mixedLoad(t *testing.T, suspend bool) (sim.Duration, Stats) {
	t.Helper()
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Ways = 1
	cfg.SuspendReads = suspend
	// A long erase makes the contrast visible.
	cfg.Params.TBERS = 3 * sim.Millisecond
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical); err != nil {
		t.Fatal(err)
	}

	// Background writer: continuous overwrites keep GC (and its erases)
	// running.
	writes := 0
	var writeNext func()
	writeNext = func() {
		if writes >= logical*3 {
			return
		}
		writes++
		rig.SSD.Submit(hic.Command{Kind: hic.KindWrite, LPN: writes % logical, Done: func(err error) {
			if err != nil {
				t.Errorf("bg write: %v", err)
			}
			writeNext()
		}})
	}
	writeNext()

	// Foreground reader at QD1, paced so reads land at random phases of
	// the erase cycle.
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindRead,
		NumOps: 80, QueueDepth: 1, LogicalPages: logical, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 {
		t.Fatalf("%d reads failed", res.Failed)
	}
	return res.LatencyPercentile(99), rig.SSD.Stats()
}

func TestSuspendReadsCutTailLatency(t *testing.T) {
	p99Off, _ := mixedLoad(t, false)
	p99On, st := mixedLoad(t, true)
	if st.UrgentReads == 0 {
		t.Fatal("suspension path never used")
	}
	// With 3 ms erases in the way, suspension should cut read p99
	// decisively (paper-cited erase-suspend works show ~an order of
	// magnitude).
	if p99On >= p99Off/2 {
		t.Errorf("suspend p99 %v not well below baseline %v", p99On, p99Off)
	}
}

func TestSuspendReadsDataIntegrity(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Ways = 1
	cfg.SuspendReads = true
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical); err != nil {
		t.Fatal(err)
	}
	// Overwrite churn with interleaved reads, then verify everything.
	n := 0
	var issue func()
	issue = func() {
		if n >= logical*4 {
			return
		}
		lpn := n % logical
		kind := hic.KindWrite
		if n%3 == 0 {
			kind = hic.KindRead
		}
		n++
		rig.SSD.Submit(hic.Command{Kind: kind, LPN: lpn, Done: func(err error) {
			if err != nil {
				t.Errorf("%v LPN %d: %v", kind, lpn, err)
			}
			issue()
		}})
	}
	for i := 0; i < 2; i++ {
		issue()
	}
	rig.Kernel.Run()
	if err := rig.FTL.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	verified := 0
	for lpn := 0; lpn < logical; lpn++ {
		rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) {
			if err != nil {
				t.Errorf("final read: %v", err)
			}
			verified++
		}})
	}
	rig.Kernel.Run()
	if verified != logical {
		t.Fatalf("verified %d/%d", verified, logical)
	}
}

func TestSuspendIgnoredOnHW(t *testing.T) {
	cfg := smallBuild(CtrlHW)
	cfg.Ways = 1
	cfg.SuspendReads = true
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical * 3, QueueDepth: 1, LogicalPages: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 {
		t.Fatalf("%d failed", res.Failed)
	}
	if rig.SSD.Stats().UrgentReads != 0 {
		t.Error("HW backend claimed urgent reads")
	}
}
