// Package hwctrl is the baseline the paper compares BABOL against: a
// hand-built, hardware-only channel controller in the style of the
// synchronous design of Figure 4 and the Cosmos+ OpenSSD's asynchronous
// controller. Every operation is a dedicated finite-state machine with
// one instance per LUN; a hardware arbiter grants the channel among the
// FSMs that want it.
//
// Being hardware, the controller has no software costs: its only latency
// is a fixed arbiter reaction time, and it waits on each LUN's dedicated
// R/B# ready/busy pin instead of polling READ STATUS over the channel.
// That is exactly the advantage (and the inflexibility) BABOL trades
// against.
//
// The operation FSMs are written as explicit state tables on purpose:
// they mirror the structure of the Verilog implementations they stand in
// for, and internal/loc counts their lines for Table II.
package hwctrl

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/dram"
	"repro/internal/onfi"
	"repro/internal/sim"
)

// reactionTime is the hardware arbiter's grant latency: the clock cycles
// a synthesized arbiter needs to detect channel vacancy and select the
// next FSM (a few cycles at FPGA fabric speed).
const reactionTime = 100 * sim.Nanosecond

// Kind selects one of the controller's hard-wired operations.
type Kind uint8

const (
	// KindRead is a full page READ (command, R/B wait, column change,
	// transfer to DRAM).
	KindRead Kind = iota
	// KindProgram is a PAGE PROGRAM from DRAM.
	KindProgram
	// KindErase is a BLOCK ERASE.
	KindErase
)

func (k Kind) String() string {
	switch k {
	case KindRead:
		return "READ"
	case KindProgram:
		return "PROGRAM"
	default:
		return "ERASE"
	}
}

// Request asks the controller to run one operation against one LUN.
type Request struct {
	Kind     Kind
	Addr     onfi.Addr
	DRAMAddr int
	N        int
	Done     func(error)
}

// Stats counts controller activity.
type Stats struct {
	OpsCompleted uint64
	OpsFailed    uint64
	Grants       uint64
}

// Controller is the hardware-only channel controller.
type Controller struct {
	k   *sim.Kernel
	ch  *bus.Channel
	mem *dram.Buffer

	fsms    []*opFSM
	rrNext  int
	armed   bool
	granted bool

	stats Stats
}

// New builds a controller with one operation-FSM slot per attached chip,
// exactly as Figure 4 draws it.
func New(k *sim.Kernel, ch *bus.Channel, mem *dram.Buffer) *Controller {
	c := &Controller{k: k, ch: ch, mem: mem}
	for i := 0; i < ch.Chips(); i++ {
		c.fsms = append(c.fsms, &opFSM{ctrl: c, lun: i})
	}
	return c
}

// Channel returns the controller's channel.
func (c *Controller) Channel() *bus.Channel { return c.ch }

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Submit queues a request on the target LUN's operation FSM. Each FSM
// holds a small request FIFO, as the hardware would in a BRAM.
func (c *Controller) Submit(lun int, req Request) error {
	if lun < 0 || lun >= len(c.fsms) {
		return fmt.Errorf("hwctrl: LUN %d out of range [0,%d)", lun, len(c.fsms))
	}
	f := c.fsms[lun]
	f.queue = append(f.queue, req)
	if f.state == stIdle {
		f.loadNext()
	}
	c.arm()
	return nil
}

// Pending reports queued plus in-flight requests.
func (c *Controller) Pending() int {
	n := 0
	for _, f := range c.fsms {
		n += len(f.queue)
		if f.state != stIdle {
			n++
		}
	}
	return n
}

// arm schedules an arbiter grant once the channel frees, if any FSM
// wants the bus.
func (c *Controller) arm() {
	if c.armed || c.granted {
		return
	}
	want := false
	for _, f := range c.fsms {
		if f.wantsBus {
			want = true
			break
		}
	}
	if !want {
		return
	}
	c.armed = true
	at := c.k.Now()
	if c.ch.FreeAt() > at {
		at = c.ch.FreeAt()
	}
	c.k.At(at.Add(reactionTime), func() {
		c.armed = false
		c.grant()
	})
}

// grant picks the next FSM and runs its bus step. Command-issue states
// win over data transfers: an issue latch lasts well under a
// microsecond and starts a long LUN-internal wait, so letting it jump
// ahead of 80-µs transfers keeps every LUN busy (the same reason the
// Ozone-style controllers issue new operations eagerly). Ties are
// broken round-robin. The granted FSM issues however many back-to-back
// segments its current transaction needs (a transaction monopolizes the
// channel), then releases.
func (c *Controller) grant() {
	if c.granted {
		return
	}
	n := len(c.fsms)
	for i := 0; i < n; i++ {
		f := c.fsms[(c.rrNext+i)%n]
		if f.wantsBus && f.state.isIssue() {
			c.runGranted(f, (c.rrNext+i+1)%n)
			return
		}
	}
	for i := 0; i < n; i++ {
		f := c.fsms[(c.rrNext+i)%n]
		if f.wantsBus {
			c.runGranted(f, (c.rrNext+i+1)%n)
			return
		}
	}
}

// runGranted executes one FSM's bus step with the channel granted.
func (c *Controller) runGranted(f *opFSM, nextRR int) {
	c.rrNext = nextRR
	c.granted = true
	c.stats.Grants++
	f.wantsBus = false
	end, err := f.busStep()
	c.granted = false
	if err != nil {
		f.fail(err)
	} else if end > c.k.Now() {
		// Re-arbitrate when this FSM's segments drain.
		c.k.At(end, func() { c.arm() })
	}
	c.arm()
}
