package exp

import (
	"bytes"
	"fmt"
	"testing"
)

// shardCounts are the cluster sizes the experiment-level determinism
// tests sweep: the windowed single-kernel baseline (1), the smallest
// real split (2), and more shards than most rigs have channels (8,
// which the builder caps at 1+channels).
var shardCounts = []int{1, 2, 8}

// shardQuick is the reduced option set for the sharded sweeps: the
// windowed protocol runs one barrier per microsecond of virtual time,
// so these tests trade op count for shard-count coverage.
func shardQuick() Options {
	o := Options{Ops: 24, WaysList: []int{2}, Blocks: 16}
	o.Parallel = 8
	return o
}

// TestShardedExperimentDeterminism is the experiment-level half of the
// sharding invariant: whole figure sweeps — many rigs, run through the
// parallel worker pool — produce byte-identical CSVs and byte-identical
// merged JSONL traces at every shard count. The per-rig invariant lives
// in ssd.TestShardedDeterminism; this test proves it survives the
// harness: sweep merging, tracer plumbing, and parallel workers.
func TestShardedExperimentDeterminism(t *testing.T) {
	t.Run("fig10", func(t *testing.T) {
		var refCSV string
		var refTrace []byte
		for i, shards := range shardCounts {
			opt := shardQuick()
			opt.Shards = shards
			var csv string
			trace := traceRun(t, opt, func(o Options) error {
				pts, err := Fig10(o)
				if err == nil {
					csv = Fig10CSV(pts)
				}
				return err
			})
			if i == 0 {
				refCSV, refTrace = csv, trace
				if len(trace) == 0 {
					t.Fatal("fig10 trace is empty; determinism check is vacuous")
				}
				continue
			}
			if csv != refCSV {
				t.Errorf("fig10 CSV at shards=%d diverged from shards=%d", shards, shardCounts[0])
			}
			if !bytes.Equal(trace, refTrace) {
				t.Errorf("fig10 merged trace at shards=%d diverged from shards=%d", shards, shardCounts[0])
			}
		}
	})

	// Fig11 renders poll cadences and analyzer views from the channel
	// waveform — the most timing-sensitive output; compare the full
	// result struct.
	t.Run("fig11", func(t *testing.T) {
		var refRendered string
		var refTrace []byte
		for i, shards := range shardCounts {
			opt := shardQuick()
			opt.Shards = shards
			var rendered string
			trace := traceRun(t, opt, func(o Options) error {
				res, err := Fig11(o)
				if err == nil {
					rendered = fmt.Sprintf("%+v", res)
				}
				return err
			})
			if i == 0 {
				refRendered, refTrace = rendered, trace
				continue
			}
			if rendered != refRendered {
				t.Errorf("fig11 results at shards=%d diverged from shards=%d", shards, shardCounts[0])
			}
			if !bytes.Equal(trace, refTrace) {
				t.Errorf("fig11 merged trace at shards=%d diverged from shards=%d", shards, shardCounts[0])
			}
		}
	})

	t.Run("fig12", func(t *testing.T) {
		var refCSV string
		var refTrace []byte
		for i, shards := range shardCounts {
			opt := shardQuick()
			opt.Shards = shards
			var csv string
			trace := traceRun(t, opt, func(o Options) error {
				pts, err := Fig12(o)
				if err == nil {
					csv = Fig12CSV(pts)
				}
				return err
			})
			if i == 0 {
				refCSV, refTrace = csv, trace
				continue
			}
			if csv != refCSV {
				t.Errorf("fig12 CSV at shards=%d diverged from shards=%d", shards, shardCounts[0])
			}
			if !bytes.Equal(trace, refTrace) {
				t.Errorf("fig12 merged trace at shards=%d diverged from shards=%d", shards, shardCounts[0])
			}
		}
	})

	// Chaos is the adversarial case: fault injection, RESET recovery,
	// and offlining all crossing the shard funnel, per seed.
	t.Run("chaos", func(t *testing.T) {
		seeds := []int64{1, 2, 3}
		var refCSV string
		var refTrace []byte
		for i, shards := range shardCounts {
			opt := shardQuick()
			opt.Shards = shards
			var csv string
			trace := traceRun(t, opt, func(o Options) error {
				pts, err := Chaos(o, seeds)
				if err == nil {
					csv = ChaosCSV(pts)
				}
				return err
			})
			if i == 0 {
				refCSV, refTrace = csv, trace
				if len(trace) == 0 {
					t.Fatal("chaos trace is empty; determinism check is vacuous")
				}
				continue
			}
			if csv != refCSV {
				t.Errorf("chaos CSV at shards=%d diverged from shards=%d", shards, shardCounts[0])
			}
			if !bytes.Equal(trace, refTrace) {
				t.Errorf("chaos merged trace at shards=%d diverged from shards=%d", shards, shardCounts[0])
			}
		}
	})
}
