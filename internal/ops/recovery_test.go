package ops_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
)

// stuckRig builds a one-chip rig whose LUN wedges on its first array
// operation, recoverable (or not) by ONFI RESET.
func stuckRig(t *testing.T, recoverable bool) (*rig, *nand.LUN) {
	t.Helper()
	r := newRig(t, 1, smallParams())
	lun := r.ch.Chip(0)
	plan := fault.Plan{StuckBusy: []fault.StuckBusy{{Chip: 0, AfterOps: 0, Recoverable: recoverable}}}
	lun.SetFaults(plan.Injector(0, nil, 0))
	return r, lun
}

func TestPollBudgetEscalatesToResetRecovery(t *testing.T) {
	r, lun := stuckRig(t, true)
	want := bytes.Repeat([]byte{0x5A}, 256)
	row := onfi.RowAddr{Block: 1, Page: 0}
	if err := lun.SeedPage(row, want); err != nil {
		t.Fatal(err)
	}

	// The first read wedges; the poll budget must trip and the RESET
	// must revive the chip, surfacing as an aborted-but-recovered op.
	err := r.run(t, core.OpRequest{Func: ops.ReadPage(onfi.Addr{Row: row}, 0, 256), Chip: 0})
	if !errors.Is(err, ops.ErrResetRecovered) {
		t.Fatalf("wedged read returned %v, want ErrResetRecovered", err)
	}
	if got := r.ctrl.Stats().Recoveries; got < 2 {
		t.Fatalf("Stats.Recoveries = %d, want >= 2 (reset + reset-recovered)", got)
	}

	// The chip is usable again: reissuing the read succeeds.
	if err := r.run(t, core.OpRequest{Func: ops.ReadPage(onfi.Addr{Row: row}, 0, 256), Chip: 0}); err != nil {
		t.Fatalf("reissued read after recovery: %v", err)
	}
	got, _ := r.mem.Read(0, 256)
	if !bytes.Equal(got, want) {
		t.Error("reissued read data mismatch")
	}
}

func TestPollBudgetDeclaresDeadChip(t *testing.T) {
	r, _ := stuckRig(t, false)
	err := r.run(t, core.OpRequest{Func: ops.ReadPage(onfi.Addr{}, 0, 256), Chip: 0})
	if !errors.Is(err, ops.ErrChipDead) {
		t.Fatalf("unrecoverable chip returned %v, want ErrChipDead", err)
	}
}

func TestStuckProgramRecovers(t *testing.T) {
	r, _ := stuckRig(t, true)
	if err := r.mem.Write(0, bytes.Repeat([]byte{0x11}, 256)); err != nil {
		t.Fatal(err)
	}
	err := r.run(t, core.OpRequest{
		Func: ops.ProgramPage(onfi.Addr{Row: onfi.RowAddr{Block: 1}}, 0, 256),
		Chip: 0,
	})
	if !errors.Is(err, ops.ErrResetRecovered) {
		t.Fatalf("wedged program returned %v, want ErrResetRecovered", err)
	}
	// The aborted program left the chip healthy: a program of a fresh
	// page lands. (The wedged program may already have committed its
	// page to the array, so the retry targets the next one — the SSD
	// layer likewise re-allocates rather than reusing the page.)
	err = r.run(t, core.OpRequest{
		Func: ops.ProgramPage(onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 1}}, 0, 256),
		Chip: 0,
	})
	if err != nil {
		t.Fatalf("program after recovery: %v", err)
	}
}

// TestReadWithRetryRestoresDefaultLevel is the regression for the
// read-retry parking bug: ReadWithRetry used to leave FeatReadRetry at
// the last level it tried, so every later read of a page whose optimal
// level is the power-on default saw a level-skew mismatch and spurious
// bit flips.
func TestReadWithRetryRestoresDefaultLevel(t *testing.T) {
	p := smallParams()
	p.RawBitErrorPer512B = 16
	r := newRig(t, 1, p)
	lun := r.ch.Chip(0)

	// rowA needs a non-zero optimal level so the retry walk succeeds
	// away from the default; rowB needs optimal level zero so a parked
	// level would skew it.
	pickRow := func(wantZero bool) onfi.RowAddr {
		for block := 1; block < p.Geometry.BlocksPerLUN; block++ {
			for page := 0; page < p.Geometry.PagesPerBlk; page++ {
				row := uint32(block*p.Geometry.PagesPerBlk + page)
				if (lun.OptimalRetryLevel(row) == 0) == wantZero {
					return onfi.RowAddr{Block: block, Page: page}
				}
			}
		}
		t.Fatalf("no row with optimal-level-zero=%v in the test geometry", wantZero)
		return onfi.RowAddr{}
	}
	rowA, rowB := pickRow(false), pickRow(true)
	if rowA.Block == rowB.Block {
		t.Fatalf("test rows share block %d; pick a bigger geometry", rowA.Block)
	}
	wantA := bytes.Repeat([]byte{0x55}, 256)
	wantB := bytes.Repeat([]byte{0xC3}, 256)
	if err := lun.SeedPage(rowA, wantA); err != nil {
		t.Fatal(err)
	}
	if err := lun.SeedPage(rowB, wantB); err != nil {
		t.Fatal(err)
	}
	lun.Wear(rowA.Block, p.MaxPECycles)
	lun.Wear(rowB.Block, p.MaxPECycles)

	verify := func(data []byte) bool { return bytes.Equal(data, wantA) }
	err := r.run(t, core.OpRequest{
		Func: ops.ReadWithRetry(onfi.Addr{Row: rowA}, 0, 256, verify),
		Chip: 0,
	})
	if err != nil {
		t.Fatalf("read retry failed: %v", err)
	}

	// The package must be back at the power-on default level.
	var level [4]byte
	if err := r.run(t, core.OpRequest{Func: ops.GetFeature(onfi.FeatReadRetry, &level), Chip: 0}); err != nil {
		t.Fatal(err)
	}
	if level != ([4]byte{}) {
		t.Fatalf("FeatReadRetry parked at %v after ReadWithRetry, want default", level)
	}

	// And a plain read of the worn default-level page is clean — with
	// the level parked it would come back with level-skew bit flips.
	if err := r.run(t, core.OpRequest{Func: ops.ReadPage(onfi.Addr{Row: rowB}, 4096, 256), Chip: 0}); err != nil {
		t.Fatal(err)
	}
	got, _ := r.mem.Read(4096, 256)
	if !bytes.Equal(got, wantB) {
		t.Error("read after ReadWithRetry saw level-skewed data")
	}
}
