package sim

import (
	"runtime"
	"testing"
)

// pingPong builds the 2-shard ping-pong used by the alloc gates: a and
// b exchange one post per half-round for `rounds` rounds.
func pingPong(rounds int) (*Cluster, *int) {
	c := NewCluster(2, Microsecond)
	a, b := c.AddDomain(0), c.AddDomain(1)
	n := new(int)
	var bounceA, bounceB func()
	bounceA = func() {
		*n++
		if *n < rounds {
			a.Post(b, bounceB)
		}
	}
	bounceB = func() { b.Post(a, bounceA) }
	b.Post(a, bounceA)
	return c, n
}

// TestClusterTelemetryCounters pins the armed counters against the
// cluster's own accounting on a deterministic ping-pong: totals, per
// window occupancy, and mailbox posts/depth/peak all have exact
// expected values.
func TestClusterTelemetryCounters(t *testing.T) {
	const rounds = 40
	c, _ := pingPong(rounds)
	tel := c.ArmTelemetry(0)
	c.Run()
	snap := tel.Snapshot()

	if snap.Windows != c.Windows() {
		t.Fatalf("snapshot windows %d != cluster windows %d", snap.Windows, c.Windows())
	}
	if snap.Lookahead != Microsecond {
		t.Fatalf("lookahead %v, want 1us", snap.Lookahead)
	}
	var events uint64
	for i, s := range snap.Shards {
		events += s.Events
		if want := c.Kernel(i).Executed(); s.Events != want {
			t.Fatalf("shard %d events %d, want kernel executed %d", i, s.Events, want)
		}
		if s.BusyWindows+s.SkippedWindows != snap.Windows {
			t.Fatalf("shard %d busy %d + skipped %d != windows %d",
				i, s.BusyWindows, s.SkippedWindows, snap.Windows)
		}
	}
	if events == 0 {
		t.Fatal("no events recorded")
	}
	// Ping-pong alternates: exactly one shard busy per window.
	for _, rec := range snap.Recent {
		if rec.Busy != 1 {
			t.Fatalf("window %d: busy %d, want 1 (%v)", rec.Seq, rec.Busy, rec.Events)
		}
		if rec.Span != Microsecond {
			t.Fatalf("window %d: span %v, want 1us", rec.Seq, rec.Span)
		}
		var sum uint64
		for _, e := range rec.Events {
			sum += e
		}
		if sum == 0 {
			t.Fatalf("window %d: no events in record", rec.Seq)
		}
	}
	var posts uint64
	for _, mb := range snap.Mailboxes {
		posts += mb.Posts
		if mb.Depth != 0 {
			t.Fatalf("mailbox %d->%d: depth %d after quiescence", mb.Src, mb.Dst, mb.Depth)
		}
		if mb.Peak != 1 {
			t.Fatalf("mailbox %d->%d: peak %d, want 1 (one post in flight at a time)",
				mb.Src, mb.Dst, mb.Peak)
		}
	}
	if posts != c.Posts() {
		t.Fatalf("mailbox posts %d != cluster posts %d", posts, c.Posts())
	}
	if len(snap.Mailboxes) != 2 {
		t.Fatalf("%d mailbox pairs, want 2 (a->b, b->a)", len(snap.Mailboxes))
	}
}

// TestClusterTelemetryFlightRecorder pins the ring semantics: the
// recorder keeps exactly the last N windows, oldest first, with
// contiguous sequence numbers ending at the window total.
func TestClusterTelemetryFlightRecorder(t *testing.T) {
	c, _ := pingPong(40)
	tel := c.ArmTelemetry(4)
	c.Run()
	snap := tel.Snapshot()
	if snap.Windows <= 4 {
		t.Fatalf("only %d windows; test needs the ring to wrap", snap.Windows)
	}
	if len(snap.Recent) != 4 {
		t.Fatalf("%d records, want 4", len(snap.Recent))
	}
	for j, rec := range snap.Recent {
		if want := snap.Windows - 3 + uint64(j); rec.Seq != want {
			t.Fatalf("record %d: seq %d, want %d", j, rec.Seq, want)
		}
	}
	if last := snap.Recent[3]; last.Seq != snap.Windows {
		t.Fatalf("newest record seq %d != windows %d", last.Seq, snap.Windows)
	}
}

// TestClusterTelemetryInvariance pins the Flashmon-style contract: the
// armed instrument must not perturb the simulation it observes. The
// event history with telemetry armed is identical to the unarmed run.
func TestClusterTelemetryInvariance(t *testing.T) {
	const leaves, rounds = 5, 40
	look := 2 * Microsecond
	plain := buildLoggedNet(3, leaves, rounds, look)
	plain.c.Run()
	ref := plain.flatLog()

	armed := buildLoggedNet(3, leaves, rounds, look)
	armed.c.ArmTelemetry(16)
	armed.c.Run()
	got := armed.flatLog()
	if len(got) != len(ref) {
		t.Fatalf("armed log length %d != %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("armed log[%d] = %q, want %q", i, got[i], ref[i])
		}
	}
}

// TestClusterTelemetryConcurrentReads is the -race pin for the
// satellite fix: Windows, Posts, and Snapshot are documented safe from
// any goroutine while Run is in flight. Under -race this fails loudly
// if any of those reads race the coordinator or a shard worker.
func TestClusterTelemetryConcurrentReads(t *testing.T) {
	net := buildLoggedNet(3, 6, 300, 2*Microsecond)
	tel := net.c.ArmTelemetry(64)
	done := make(chan struct{})
	go func() {
		net.c.Run()
		close(done)
	}()
	reads := 0
	for {
		_ = net.c.Windows()
		_ = net.c.Posts()
		snap := tel.Snapshot()
		if snap.Windows > 0 && len(snap.Recent) == 0 {
			t.Error("windows counted but flight recorder empty")
		}
		reads++
		select {
		case <-done:
			if net.c.Windows() == 0 || reads == 0 {
				t.Fatalf("vacuous run: windows=%d reads=%d", net.c.Windows(), reads)
			}
			snap := tel.Snapshot()
			if snap.Windows != net.c.Windows() {
				t.Fatalf("final snapshot windows %d != %d", snap.Windows, net.c.Windows())
			}
			return
		default:
			runtime.Gosched()
		}
	}
}

// TestClusterTelemetryArmAfterDomains pins the arming contract.
func TestClusterTelemetryArmAfterDomains(t *testing.T) {
	c := NewCluster(2, Microsecond)
	c.AddDomain(0)
	c.ArmTelemetry(8)
	defer func() {
		if recover() == nil {
			t.Fatal("AddDomain after ArmTelemetry did not panic")
		}
	}()
	c.AddDomain(1)
}

// TestAllocGateShardTelemetry is the armed twin of
// TestAllocGateClusterSteadyState: with the flight recorder, mailbox
// accounting, and wall-clock attribution all live, a steady-state
// window cycle still allocates nothing — same ceiling as unarmed.
func TestAllocGateShardTelemetry(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	c := NewCluster(2, Microsecond)
	a, b := c.AddDomain(0), c.AddDomain(1)
	const warmup, measured = 200, 1000
	n := 0
	var m1, m2 runtime.MemStats
	var bounceA, bounceB func()
	bounceA = func() {
		n++
		if n == warmup {
			runtime.ReadMemStats(&m1)
		}
		if n == warmup+measured {
			runtime.ReadMemStats(&m2)
			return
		}
		a.Post(b, bounceB)
	}
	bounceB = func() { b.Post(a, bounceA) }
	b.Post(a, bounceA)
	c.ArmTelemetry(128)
	c.Run()
	allocs := m2.Mallocs - m1.Mallocs
	if allocs > 16 {
		t.Fatalf("armed steady state allocated %d objects over %d rounds, want ~0",
			allocs, measured)
	}
}
