package txn

import (
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/onfi"
	"repro/internal/sim"
)

func validTxn() *Transaction {
	return &Transaction{
		ID: 1, OpID: 2, Chip: 0,
		Instrs: []Instr{
			ChipControl{Mask: bus.Mask(0)},
			CmdAddr{Latches: []onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}},
			DataRead{Addr: -1, N: 1, Capture: true},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validTxn().Validate(); err != nil {
		t.Errorf("valid transaction rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		instrs []Instr
	}{
		{"empty", nil},
		{"empty mask", []Instr{ChipControl{}}},
		{"latch before select", []Instr{CmdAddr{Latches: []onfi.Latch{onfi.CmdLatch(0x70)}}}},
		{"empty burst", []Instr{ChipControl{Mask: 1}, CmdAddr{}}},
		{"zero write", []Instr{ChipControl{Mask: 1}, DataWrite{N: 0}}},
		{"write before select", []Instr{DataWrite{N: 4}}},
		{"zero read", []Instr{ChipControl{Mask: 1}, DataRead{N: 0}}},
		{"read before select", []Instr{DataRead{N: 4}}},
		{"negative wait", []Instr{TimerWait{D: -1}}},
	}
	for _, c := range cases {
		tx := &Transaction{Instrs: c.instrs}
		if err := tx.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestEstimateDuration(t *testing.T) {
	tm := onfi.DefaultTiming()
	cfg := onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}
	tx := &Transaction{Instrs: []Instr{
		ChipControl{Mask: 1},
		CmdAddr{Latches: make([]onfi.Latch, 7)},
		TimerWait{D: 10 * sim.Microsecond},
		DataRead{N: 100},
	}}
	want := tm.LatchSegment(7) + 10*sim.Microsecond + tm.TWHR + tm.DataSegment(cfg, 100)
	if got := tx.EstimateDuration(tm, cfg); got != want {
		t.Errorf("EstimateDuration = %v, want %v", got, want)
	}
	// Chip control costs nothing.
	empty := &Transaction{Instrs: []Instr{ChipControl{Mask: 1}}}
	if got := empty.EstimateDuration(tm, cfg); got != 0 {
		t.Errorf("chip-control-only duration = %v", got)
	}
}

func TestStrings(t *testing.T) {
	tx := validTxn()
	s := tx.String()
	for _, want := range []string{"txn#1", "op2", "chip0", "cmdaddr", "read("} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if !strings.Contains((TimerWait{D: sim.Microsecond}).String(), "1us") {
		t.Error("TimerWait.String missing duration")
	}
	if !strings.Contains((DataWrite{Addr: 5, N: 9}).String(), "n=9") {
		t.Error("DataWrite.String missing size")
	}
	if !strings.Contains((ChipControl{Mask: 3}).String(), "11") {
		t.Error("ChipControl.String missing mask")
	}
}
