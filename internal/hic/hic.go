// Package hic models the host side of the SSD: an NVMe-like command
// interface and a fio-style workload generator that keeps a fixed queue
// depth of logical page reads/writes outstanding, measuring bandwidth
// and latency — the instrument behind the paper's Figure 12.
package hic

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Kind is a host command type.
type Kind uint8

const (
	// KindRead reads one logical page.
	KindRead Kind = iota
	// KindWrite writes one logical page.
	KindWrite
)

func (k Kind) String() string {
	if k == KindRead {
		return "read"
	}
	return "write"
}

// Command is one host request for a logical page.
type Command struct {
	Kind Kind
	LPN  int
	// Done is invoked at completion.
	Done func(error)
}

// Submitter accepts host commands; the SSD assembly implements it.
type Submitter interface {
	Submit(Command)
}

// Pattern selects the generator's address sequence.
type Pattern uint8

const (
	// Sequential issues LPNs 0,1,2,… (wrapping at the logical size).
	Sequential Pattern = iota
	// Random issues uniformly random LPNs.
	Random
)

func (p Pattern) String() string {
	if p == Sequential {
		return "sequential"
	}
	return "random"
}

// Workload describes one fio-like run.
type Workload struct {
	Pattern    Pattern
	Kind       Kind
	NumOps     int // total commands to issue
	QueueDepth int // outstanding commands
	// ReadPercent mixes the command stream: that percentage of commands
	// are reads, the rest writes (fio's rwmixread). Zero keeps the pure
	// Kind workload.
	ReadPercent  int
	LogicalPages int   // address-space size in pages
	Seed         int64 // RNG seed for Random
}

// Validate checks the workload description.
func (w Workload) Validate() error {
	if w.NumOps <= 0 {
		return fmt.Errorf("hic: NumOps must be positive, got %d", w.NumOps)
	}
	if w.QueueDepth <= 0 {
		return fmt.Errorf("hic: QueueDepth must be positive, got %d", w.QueueDepth)
	}
	if w.LogicalPages <= 0 {
		return fmt.Errorf("hic: LogicalPages must be positive, got %d", w.LogicalPages)
	}
	if w.ReadPercent < 0 || w.ReadPercent > 100 {
		return fmt.Errorf("hic: ReadPercent %d out of [0,100]", w.ReadPercent)
	}
	return nil
}

// Result aggregates a finished run.
type Result struct {
	Completed int
	Failed    int
	Start     sim.Time
	End       sim.Time
	latencies []sim.Duration
}

// Elapsed is the wall (virtual) time of the run.
func (r *Result) Elapsed() sim.Duration { return r.End.Sub(r.Start) }

// BandwidthMBps reports throughput in MB/s for the given page size.
func (r *Result) BandwidthMBps(pageBytes int) float64 {
	secs := r.Elapsed().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Completed) * float64(pageBytes) / 1e6 / secs
}

// IOPS reports completed commands per second.
func (r *Result) IOPS() float64 {
	secs := r.Elapsed().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Completed) / secs
}

// LatencyPercentile returns the p-th percentile completion latency
// (0 < p ≤ 100), nearest-rank: rank ⌈p/100·n⌉.
func (r *Result) LatencyPercentile(p float64) sim.Duration {
	sorted := append([]sim.Duration(nil), r.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sim.Percentile(sorted, p)
}

// MeanLatency reports the average completion latency.
func (r *Result) MeanLatency() sim.Duration {
	return sim.Mean(r.latencies)
}

// Run drives the workload against sub on kernel k and returns the result
// once the caller runs the kernel to completion. The returned Result is
// only fully populated after every command finished (check Completed).
func Run(k *sim.Kernel, sub Submitter, w Workload) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	// The latency log's final size is known up front; growing it by
	// appends would reallocate log(NumOps) times mid-run.
	res := &Result{Start: k.Now(), latencies: make([]sim.Duration, 0, w.NumOps)}
	rng := rand.New(rand.NewSource(w.Seed))
	next := 0
	issued := 0

	nextLPN := func() int {
		if w.Pattern == Sequential {
			lpn := next % w.LogicalPages
			next++
			return lpn
		}
		return rng.Intn(w.LogicalPages)
	}

	nextKind := func() Kind {
		if w.ReadPercent == 0 {
			return w.Kind
		}
		if rng.Intn(100) < w.ReadPercent {
			return KindRead
		}
		return KindWrite
	}

	depth := w.QueueDepth
	if depth > w.NumOps {
		depth = w.NumOps
	}
	// Each queue-depth slot owns at most one in-flight command; its issue
	// and completion callbacks are created once here and reused for every
	// command the slot carries, so steady-state issuance allocates
	// nothing per command.
	slots := make([]runSlot, depth)
	for i := range slots {
		sl := &slots[i]
		sl.issue = func() {
			if issued >= w.NumOps {
				return
			}
			issued++
			sl.submitted = k.Now()
			sub.Submit(Command{
				Kind: nextKind(),
				LPN:  nextLPN(),
				Done: sl.done,
			})
		}
		sl.done = func(err error) {
			res.Completed++
			if err != nil {
				res.Failed++
			}
			res.latencies = append(res.latencies, k.Now().Sub(sl.submitted))
			res.End = k.Now()
			sl.issue() // keep the queue full
		}
	}
	for i := range slots {
		slots[i].issue()
	}
	return res, nil
}

// runSlot is one queue-depth slot of a Run: the submission timestamp of
// its in-flight command plus its reusable issue/completion callbacks.
type runSlot struct {
	submitted sim.Time
	issue     func()
	done      func(error)
}
