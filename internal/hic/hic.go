// Package hic models the host side of the SSD: an NVMe-like command
// interface and a fio-style workload generator that keeps a fixed queue
// depth of logical page reads/writes outstanding, measuring bandwidth
// and latency — the instrument behind the paper's Figure 12.
package hic

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Kind is a host command type.
type Kind uint8

const (
	// KindRead reads one logical page.
	KindRead Kind = iota
	// KindWrite writes one logical page.
	KindWrite
	// KindTrim invalidates one logical page (NVMe Dataset Management
	// deallocate): the FTL drops the mapping, a later read returns
	// zeroes, and GC no longer relocates the page.
	KindTrim
)

func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindTrim:
		return "trim"
	}
	return "unknown"
}

// KindFromString inverts Kind.String (accepting the one-letter trace
// abbreviations); ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	switch s {
	case "read", "r":
		return KindRead, true
	case "write", "w":
		return KindWrite, true
	case "trim", "t":
		return KindTrim, true
	}
	return 0, false
}

// Command is one host request for a logical page.
type Command struct {
	Kind Kind
	LPN  int
	// Tenant attributes the command to a workload-engine tenant for
	// per-tenant accounting and trace recording; empty for anonymous
	// traffic. The device ignores it.
	Tenant string
	// Done is invoked at completion.
	Done func(error)
}

// Submitter accepts host commands; the SSD assembly implements it.
type Submitter interface {
	Submit(Command)
}

// Pattern selects the generator's address sequence.
type Pattern uint8

const (
	// Sequential issues LPNs 0,1,2,… (wrapping at the logical size).
	Sequential Pattern = iota
	// Random issues uniformly random LPNs.
	Random
	// Zipfian issues skewed random LPNs concentrated on a hot set —
	// supported by the tenant workload engine (TenantSpec), which
	// carries the skew parameters; plain Run rejects it.
	Zipfian
)

func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	case Zipfian:
		return "zipfian"
	}
	return "unknown"
}

// Workload describes one fio-like run.
type Workload struct {
	Pattern    Pattern
	Kind       Kind
	NumOps     int // total commands to issue
	QueueDepth int // outstanding commands
	// ReadPercent mixes the command stream: that percentage of commands
	// are reads, the rest writes (fio's rwmixread). The mix engages when
	// ReadPercent > 0 or MixedRW is set; otherwise the pure Kind
	// workload runs.
	ReadPercent int
	// MixedRW forces the read/write mix on even at ReadPercent == 0, so
	// a genuine 0%-read (pure-write) mix is expressible. Without it a
	// zero ReadPercent is indistinguishable from "unset, use Kind".
	MixedRW      bool
	LogicalPages int   // address-space size in pages
	Seed         int64 // RNG seed for Random
}

// Validate checks the workload description.
func (w Workload) Validate() error {
	if w.NumOps <= 0 {
		return fmt.Errorf("hic: NumOps must be positive, got %d", w.NumOps)
	}
	if w.QueueDepth <= 0 {
		return fmt.Errorf("hic: QueueDepth must be positive, got %d", w.QueueDepth)
	}
	if w.LogicalPages <= 0 {
		return fmt.Errorf("hic: LogicalPages must be positive, got %d", w.LogicalPages)
	}
	if w.ReadPercent < 0 || w.ReadPercent > 100 {
		return fmt.Errorf("hic: ReadPercent %d out of [0,100]", w.ReadPercent)
	}
	if w.Pattern == Zipfian {
		return fmt.Errorf("hic: Zipfian needs skew parameters; use the tenant engine (TenantSpec)")
	}
	return nil
}

// Result aggregates a finished run.
type Result struct {
	// Completed counts commands that finished successfully; Failed
	// counts commands whose Done reported an error. They are disjoint:
	// bandwidth, IOPS, and the latency distribution are computed from
	// successes only (a failed command transferred no data), while
	// Done() gives the total terminations for drain checks.
	Completed int
	Failed    int
	Start     sim.Time
	End       sim.Time
	latencies []sim.Duration
}

// Done reports total terminated commands, successful or not — the
// number to compare against the issue count when checking a run
// drained.
func (r *Result) Done() int { return r.Completed + r.Failed }

// Elapsed is the wall (virtual) time of the run: first issue to last
// completion. A run in which nothing completed has no extent, so
// Elapsed is 0 rather than the negative End−Start of the zero End.
func (r *Result) Elapsed() sim.Duration {
	if r.End.Sub(r.Start) < 0 {
		return 0
	}
	return r.End.Sub(r.Start)
}

// BandwidthMBps reports throughput in MB/s for the given page size.
func (r *Result) BandwidthMBps(pageBytes int) float64 {
	secs := r.Elapsed().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Completed) * float64(pageBytes) / 1e6 / secs
}

// IOPS reports completed commands per second.
func (r *Result) IOPS() float64 {
	secs := r.Elapsed().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Completed) / secs
}

// LatencyPercentile returns the p-th percentile completion latency
// (0 < p ≤ 100), nearest-rank: rank ⌈p/100·n⌉.
func (r *Result) LatencyPercentile(p float64) sim.Duration {
	sorted := append([]sim.Duration(nil), r.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sim.Percentile(sorted, p)
}

// MeanLatency reports the average completion latency.
func (r *Result) MeanLatency() sim.Duration {
	return sim.Mean(r.latencies)
}

// Run drives the workload against sub on kernel k and returns the result
// once the caller runs the kernel to completion. The returned Result is
// only fully populated after every command finished (check Completed).
func Run(k *sim.Kernel, sub Submitter, w Workload) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	// The latency log's final size is known up front; growing it by
	// appends would reallocate log(NumOps) times mid-run.
	res := &Result{Start: k.Now(), latencies: make([]sim.Duration, 0, w.NumOps)}
	rng := rand.New(rand.NewSource(w.Seed))
	next := 0
	issued := 0

	nextLPN := func() int {
		if w.Pattern == Sequential {
			lpn := next % w.LogicalPages
			next++
			return lpn
		}
		return rng.Intn(w.LogicalPages)
	}

	// The mix engages on ReadPercent > 0 OR MixedRW, so legacy pure-Kind
	// callers (ReadPercent unset) draw nothing from the RNG and keep
	// their historical address streams byte-identical.
	mixed := w.MixedRW || w.ReadPercent > 0
	nextKind := func() Kind {
		if !mixed {
			return w.Kind
		}
		if rng.Intn(100) < w.ReadPercent {
			return KindRead
		}
		return KindWrite
	}

	depth := w.QueueDepth
	if depth > w.NumOps {
		depth = w.NumOps
	}
	// Each queue-depth slot owns at most one in-flight command; its issue
	// and completion callbacks are created once here and reused for every
	// command the slot carries, so steady-state issuance allocates
	// nothing per command.
	slots := make([]runSlot, depth)
	for i := range slots {
		sl := &slots[i]
		sl.issue = func() {
			if issued >= w.NumOps {
				return
			}
			issued++
			sl.submitted = k.Now()
			sub.Submit(Command{
				Kind: nextKind(),
				LPN:  nextLPN(),
				Done: sl.done,
			})
		}
		sl.done = func(err error) {
			// Failures still advance End (the run ran until then) but stay
			// out of the latency log and the Completed count: a failed op
			// moved no data, so it must not inflate bandwidth or shift
			// the percentiles.
			if err != nil {
				res.Failed++
			} else {
				res.Completed++
				res.latencies = append(res.latencies, k.Now().Sub(sl.submitted))
			}
			res.End = k.Now()
			sl.issue() // keep the queue full
		}
	}
	for i := range slots {
		slots[i].issue()
	}
	return res, nil
}

// runSlot is one queue-depth slot of a Run: the submission timestamp of
// its in-flight command plus its reusable issue/completion callbacks.
type runSlot struct {
	submitted sim.Time
	issue     func()
	done      func(error)
}
