package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Histogram is a log2-bucketed distribution of non-negative int64
// observations (durations in picoseconds, queue depths). Bucket i
// counts values v with 2^(i-1) ≤ v < 2^i; bucket 0 counts zeros.
type Histogram struct {
	Buckets [64]uint64
	Count   uint64
	Sum     int64
	Max     int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bucketOf(v)]++
}

// bucketOf maps a non-negative observation to its log2 bucket. Zero maps
// to bucket 0 — it must not reach the bit-length path, where a naive
// "63 - leading zeros" log2 underflows to -1 and indexes out of bounds.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Mean reports the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// ChargeStats aggregates the firmware cost of one charge site (admit,
// schedule, switch, submit, poll-resubmit) — the per-action breakdown
// behind the paper's software-environment comparison.
type ChargeStats struct {
	Count  uint64
	Cycles int64
	Time   sim.Duration
}

// ChipKey addresses per-chip metrics across channels.
type ChipKey struct {
	Channel int
	Chip    int
}

// ChipMetrics aggregates one chip's activity.
type ChipMetrics struct {
	OpsAdmitted    uint64
	OpsFinished    uint64
	OpsFailed      uint64
	AdmissionWaits uint64
	PollResubmits  uint64
	TxnsExecuted   uint64
	// BusyTime is the channel occupancy attributed to this chip's
	// transactions.
	BusyTime sim.Duration
	// Faults counts injected fault hits on this chip (KindFault);
	// Recoveries counts recovery actions taken against it (KindRecovery).
	Faults     uint64
	Recoveries uint64
}

// ShardMetrics aggregates one shard's window activity from
// KindShardWindow events (per-domain labels come from the shard→domain
// mapping recorded at build time; the shard index is the stable key).
type ShardMetrics struct {
	// BusyWindows counts windows in which the shard executed events.
	BusyWindows uint64
	// Events is the total events the shard executed across its windows.
	Events uint64
}

// MailboxKey addresses per-(src,dst) domain pair mailbox metrics.
type MailboxKey struct {
	Src int
	Dst int
}

// MailboxMetrics aggregates one domain pair's cross-shard posts from
// KindShardMailbox events.
type MailboxMetrics struct {
	Posts uint64
	Peak  int64
}

// TenantMetrics aggregates one tenant's host-command stream from
// KindHostCmd events — the live per-tenant counters behind the
// /tenants endpoint. Failed completions stay out of Latency, matching
// the hic.Result contract.
type TenantMetrics struct {
	Queue     int
	Completed uint64
	Failed    uint64
	Reads     uint64
	Writes    uint64
	Trims     uint64
	// Latency is the enqueue→completion latency distribution of the
	// tenant's successful commands (picoseconds).
	Latency Histogram
}

// ChannelMetrics aggregates one channel's activity.
type ChannelMetrics struct {
	TxnsEnqueued uint64
	TxnsExecuted uint64
	GateOpens    uint64
	// BusyTime is the channel's total bus occupancy.
	BusyTime sim.Duration
	// QueueDepth is the transaction queue depth sampled at every
	// enqueue and pop.
	QueueDepth Histogram
}

// Snapshot is a point-in-time copy of a Metrics registry, safe to
// retain and compare. Maps are deep-copied.
type Snapshot struct {
	Events     uint64
	FirstEvent sim.Time
	LastEvent  sim.Time

	// SoftwareTime is the firmware (CPU-model) time charged across all
	// observed controllers; SoftwareCycles is the same in cycles. It is
	// the sum of every KindCPUCharge duration, which by construction
	// equals cpumodel.Stats.BusyTime.
	SoftwareTime   sim.Duration
	SoftwareCycles int64
	// HardwareTime is the channel occupancy across all observed
	// channels: the sum of every KindTxnExecuted duration, which by
	// construction equals bus.Stats.BusyTime.
	HardwareTime sim.Duration

	OpsAdmitted    uint64
	OpsResumed     uint64
	OpsFinished    uint64
	OpsFailed      uint64
	AdmissionWaits uint64
	GateOpens      uint64
	PollResubmits  uint64
	TxnsEnqueued   uint64
	TxnsPopped     uint64
	TxnsExecuted   uint64

	// Charges breaks SoftwareTime down by charge site.
	Charges map[string]ChargeStats
	// TxnBusTime is the distribution of per-transaction channel
	// occupancy (picoseconds).
	TxnBusTime Histogram
	// QueueDepth is the global transaction queue depth distribution,
	// sampled at every enqueue and pop.
	QueueDepth Histogram
	// OpLatency is the distribution of operation Start→Done latency
	// (picoseconds).
	OpLatency Histogram

	// Faults counts injected fault hits; FaultsByLabel breaks them down
	// by campaign (stuck-busy, fail-storm, ecc-burst, tr-jitter).
	Faults        uint64
	FaultsByLabel map[string]uint64
	// Recoveries counts recovery actions; RecoveriesByLabel breaks them
	// down by action (reset, reset-recovered, chip-dead, chip-offline,
	// read-only).
	Recoveries        uint64
	RecoveriesByLabel map[string]uint64

	// ShardWindows is the highest window sequence number observed —
	// the number of cluster synchronization windows covered by the
	// flight-recorder events in the stream. Shards, WindowEvents, and
	// Mailboxes aggregate the KindShardWindow/KindShardMailbox events
	// of sharded runs; all are empty for single-kernel traces.
	ShardWindows uint64
	Shards       map[int]ShardMetrics
	// WindowEvents is the distribution of events per (window, busy
	// shard) — the occupancy histogram behind window-dispatch tuning.
	WindowEvents Histogram
	Mailboxes    map[MailboxKey]MailboxMetrics

	// MapHits..MapFlushes aggregate the FTL translation-page cache's
	// KindMapCache events: hits served from resident map pages, misses
	// that charged a NAND map-page read, clock evictions, and dirty
	// evictions (modeled write-backs). All zero when the map cache is
	// disabled — no KindMapCache events enter the stream.
	MapHits      uint64
	MapMisses    uint64
	MapEvictions uint64
	MapFlushes   uint64

	// Tenants aggregates the host frontend's KindHostCmd events by
	// tenant name; empty when no tenant traffic was observed.
	Tenants map[string]TenantMetrics

	Channels map[int]ChannelMetrics
	Chips    map[ChipKey]ChipMetrics
}

// Span is the virtual time covered by the observed events.
func (s Snapshot) Span() sim.Duration { return s.LastEvent.Sub(s.FirstEvent) }

// MapCacheActive reports whether the stream carried any FTL map-cache
// activity — the gate for conditional report sections, so traces from
// cache-disabled runs render byte-identically to pre-cache builds.
func (s Snapshot) MapCacheActive() bool {
	return s.MapHits+s.MapMisses+s.MapEvictions+s.MapFlushes > 0
}

// MapHitRate reports map-cache hits / (hits + misses), or 0 before any
// translation traffic.
func (s Snapshot) MapHitRate() float64 {
	total := s.MapHits + s.MapMisses
	if total == 0 {
		return 0
	}
	return float64(s.MapHits) / float64(total)
}

// SoftwareShare is SoftwareTime / (SoftwareTime + HardwareTime) — the
// Table II-style decomposition of where a configuration's time goes.
// It is 0 when nothing was observed.
func (s Snapshot) SoftwareShare() float64 {
	total := s.SoftwareTime + s.HardwareTime
	if total <= 0 {
		return 0
	}
	return float64(s.SoftwareTime) / float64(total)
}

// ChannelIdle reports how long a channel sat idle within the observed
// span.
func (s Snapshot) ChannelIdle(channel int) sim.Duration {
	idle := s.Span() - s.Channels[channel].BusyTime
	if idle < 0 {
		idle = 0
	}
	return idle
}

// String summarizes the snapshot.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d span=%v sw=%v hw=%v sw%%=%.1f ops=%d/%d-failed txns=%d polls=%d waits=%d",
		s.Events, s.Span(), s.SoftwareTime, s.HardwareTime, 100*s.SoftwareShare(),
		s.OpsFinished, s.OpsFailed, s.TxnsExecuted, s.PollResubmits, s.AdmissionWaits)
	if s.Faults > 0 || s.Recoveries > 0 {
		fmt.Fprintf(&b, " faults=%d recoveries=%d", s.Faults, s.Recoveries)
	}
	if len(s.Charges) > 0 {
		labels := make([]string, 0, len(s.Charges))
		for l := range s.Charges {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			c := s.Charges[l]
			fmt.Fprintf(&b, "\n  %-14s n=%-7d cycles=%-10d time=%v", l, c.Count, c.Cycles, c.Time)
		}
	}
	return b.String()
}

// Metrics aggregates the event stream into counters and histograms. It
// implements Tracer, so it plugs directly into core.Config.Tracer (or
// an ssd.BuildConfig), and it can also replay a recorded JSONL stream
// offline. Like the rest of the simulation it is single-goroutine:
// feed and snapshot it from the kernel's goroutine.
type Metrics struct {
	events     uint64
	firstEvent sim.Time
	lastEvent  sim.Time

	softwareTime   sim.Duration
	softwareCycles int64
	hardwareTime   sim.Duration

	opsAdmitted    uint64
	opsResumed     uint64
	opsFinished    uint64
	opsFailed      uint64
	admissionWaits uint64
	gateOpens      uint64
	pollResubmits  uint64
	txnsEnqueued   uint64
	txnsPopped     uint64
	txnsExecuted   uint64

	charges    map[string]ChargeStats
	txnBusTime Histogram
	queueDepth Histogram
	opLatency  Histogram

	faults     uint64
	faultsBy   map[string]uint64
	recoveries uint64
	recovsBy   map[string]uint64

	shardWindows uint64
	shards       map[int]*ShardMetrics
	windowEvents Histogram
	mailboxes    map[MailboxKey]MailboxMetrics

	mapHits      uint64
	mapMisses    uint64
	mapEvictions uint64
	mapFlushes   uint64

	tenants  map[string]*TenantMetrics
	channels map[int]*ChannelMetrics
	chips    map[ChipKey]*ChipMetrics
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		charges:   make(map[string]ChargeStats),
		faultsBy:  make(map[string]uint64),
		recovsBy:  make(map[string]uint64),
		shards:    make(map[int]*ShardMetrics),
		mailboxes: make(map[MailboxKey]MailboxMetrics),
		tenants:   make(map[string]*TenantMetrics),
		channels:  make(map[int]*ChannelMetrics),
		chips:     make(map[ChipKey]*ChipMetrics),
	}
}

// Event implements Tracer.
func (m *Metrics) Event(e Event) {
	if m.events == 0 || e.Time < m.firstEvent {
		m.firstEvent = e.Time
	}
	if e.Time > m.lastEvent {
		m.lastEvent = e.Time
	}
	m.events++

	switch e.Kind {
	case KindOpAdmitted:
		m.opsAdmitted++
		m.chip(e).OpsAdmitted++
	case KindAdmissionWait:
		m.admissionWaits++
		m.chip(e).AdmissionWaits++
	case KindOpResumed:
		m.opsResumed++
	case KindOpFinished:
		m.opsFinished++
		cp := m.chip(e)
		cp.OpsFinished++
		if e.Err {
			m.opsFailed++
			cp.OpsFailed++
		}
		m.opLatency.Observe(int64(e.Dur))
	case KindTxnEnqueued:
		m.txnsEnqueued++
		m.queueDepth.Observe(int64(e.Depth))
		ch := m.channel(e)
		ch.TxnsEnqueued++
		ch.QueueDepth.Observe(int64(e.Depth))
	case KindTxnPopped:
		m.txnsPopped++
		m.queueDepth.Observe(int64(e.Depth))
		m.channel(e).QueueDepth.Observe(int64(e.Depth))
	case KindTxnExecuted:
		m.txnsExecuted++
		m.hardwareTime += e.Dur
		m.txnBusTime.Observe(int64(e.Dur))
		ch := m.channel(e)
		ch.TxnsExecuted++
		ch.BusyTime += e.Dur
		cp := m.chip(e)
		cp.TxnsExecuted++
		cp.BusyTime += e.Dur
	case KindGateOpened:
		m.gateOpens++
		m.channel(e).GateOpens++
	case KindPollResubmit:
		m.pollResubmits++
		m.chip(e).PollResubmits++
	case KindCPUCharge:
		m.softwareTime += e.Dur
		m.softwareCycles += e.Cycles
		c := m.charges[e.Label]
		c.Count++
		c.Cycles += e.Cycles
		c.Time += e.Dur
		m.charges[e.Label] = c
	case KindHWInstr:
		// Instruction-level detail stays in the raw stream; the
		// transaction events already carry the aggregate occupancy.
	case KindFault:
		m.faults++
		m.faultsBy[e.Label]++
		m.chip(e).Faults++
	case KindRecovery:
		m.recoveries++
		m.recovsBy[e.Label]++
		m.chip(e).Recoveries++
	case KindShardWindow:
		if e.TxnID > m.shardWindows {
			m.shardWindows = e.TxnID
		}
		s := m.shards[e.Chip]
		if s == nil {
			s = &ShardMetrics{}
			m.shards[e.Chip] = s
		}
		s.BusyWindows++
		s.Events += uint64(e.Depth)
		m.windowEvents.Observe(int64(e.Depth))
	case KindShardMailbox:
		k := MailboxKey{Src: e.Channel, Dst: e.Chip}
		mb := m.mailboxes[k]
		mb.Posts += uint64(e.Cycles)
		if int64(e.Depth) > mb.Peak {
			mb.Peak = int64(e.Depth)
		}
		m.mailboxes[k] = mb
	case KindMapCache:
		switch e.Label {
		case "hit":
			m.mapHits++
		case "miss":
			m.mapMisses++
		case "evict":
			m.mapEvictions++
		case "flush":
			m.mapFlushes++
		}
	case KindHostCmd:
		t := m.tenants[e.Label]
		if t == nil {
			t = &TenantMetrics{}
			m.tenants[e.Label] = t
		}
		t.Queue = e.Depth
		if e.Err {
			t.Failed++
		} else {
			t.Completed++
			t.Latency.Observe(int64(e.Dur))
		}
		switch e.Cycles {
		case 0:
			t.Reads++
		case 1:
			t.Writes++
		case 2:
			t.Trims++
		}
	}
}

func (m *Metrics) chip(e Event) *ChipMetrics {
	k := ChipKey{Channel: e.Channel, Chip: e.Chip}
	c := m.chips[k]
	if c == nil {
		c = &ChipMetrics{}
		m.chips[k] = c
	}
	return c
}

func (m *Metrics) channel(e Event) *ChannelMetrics {
	c := m.channels[e.Channel]
	if c == nil {
		c = &ChannelMetrics{}
		m.channels[e.Channel] = c
	}
	return c
}

// Snapshot returns a deep copy of the aggregated state for
// programmatic reads.
func (m *Metrics) Snapshot() Snapshot {
	out := Snapshot{
		Events:            m.events,
		FirstEvent:        m.firstEvent,
		LastEvent:         m.lastEvent,
		SoftwareTime:      m.softwareTime,
		SoftwareCycles:    m.softwareCycles,
		HardwareTime:      m.hardwareTime,
		OpsAdmitted:       m.opsAdmitted,
		OpsResumed:        m.opsResumed,
		OpsFinished:       m.opsFinished,
		OpsFailed:         m.opsFailed,
		AdmissionWaits:    m.admissionWaits,
		GateOpens:         m.gateOpens,
		PollResubmits:     m.pollResubmits,
		TxnsEnqueued:      m.txnsEnqueued,
		TxnsPopped:        m.txnsPopped,
		TxnsExecuted:      m.txnsExecuted,
		TxnBusTime:        m.txnBusTime,
		QueueDepth:        m.queueDepth,
		OpLatency:         m.opLatency,
		Faults:            m.faults,
		Recoveries:        m.recoveries,
		ShardWindows:      m.shardWindows,
		WindowEvents:      m.windowEvents,
		MapHits:           m.mapHits,
		MapMisses:         m.mapMisses,
		MapEvictions:      m.mapEvictions,
		MapFlushes:        m.mapFlushes,
		Charges:           make(map[string]ChargeStats, len(m.charges)),
		FaultsByLabel:     make(map[string]uint64, len(m.faultsBy)),
		RecoveriesByLabel: make(map[string]uint64, len(m.recovsBy)),
		Shards:            make(map[int]ShardMetrics, len(m.shards)),
		Mailboxes:         make(map[MailboxKey]MailboxMetrics, len(m.mailboxes)),
		Tenants:           make(map[string]TenantMetrics, len(m.tenants)),
		Channels:          make(map[int]ChannelMetrics, len(m.channels)),
		Chips:             make(map[ChipKey]ChipMetrics, len(m.chips)),
	}
	for k, v := range m.charges {
		out.Charges[k] = v
	}
	for k, v := range m.faultsBy {
		out.FaultsByLabel[k] = v
	}
	for k, v := range m.recovsBy {
		out.RecoveriesByLabel[k] = v
	}
	for k, v := range m.shards {
		out.Shards[k] = *v
	}
	for k, v := range m.mailboxes {
		out.Mailboxes[k] = v
	}
	for k, v := range m.tenants {
		out.Tenants[k] = *v
	}
	for k, v := range m.channels {
		out.Channels[k] = *v
	}
	for k, v := range m.chips {
		out.Chips[k] = *v
	}
	return out
}

// Replay feeds a recorded event slice through the registry.
func (m *Metrics) Replay(events []Event) {
	for _, e := range events {
		m.Event(e)
	}
}
