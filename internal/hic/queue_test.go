package hic

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// manualDrive holds every submitted command until the test completes it
// explicitly, so dispatch order and in-flight windows are observable.
type manualDrive struct {
	lpns    []int
	pending []func(error)
}

func (d *manualDrive) Submit(cmd Command) {
	d.lpns = append(d.lpns, cmd.LPN)
	d.pending = append(d.pending, cmd.Done)
}

// completeNext completes the oldest uncompleted command.
func (d *manualDrive) completeNext(err error) {
	done := d.pending[0]
	d.pending = d.pending[1:]
	done(err)
}

func newTestFrontend(t *testing.T, d Submitter, cfg FrontendConfig) *Frontend {
	t.Helper()
	f, err := NewFrontend(sim.NewKernel(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFrontendValidation(t *testing.T) {
	k := sim.NewKernel()
	d := &manualDrive{}
	if _, err := NewFrontend(nil, d, FrontendConfig{Queues: []QueueConfig{{Depth: 1}}}); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := NewFrontend(k, nil, FrontendConfig{Queues: []QueueConfig{{Depth: 1}}}); err == nil {
		t.Error("nil submitter accepted")
	}
	if _, err := NewFrontend(k, d, FrontendConfig{}); err == nil {
		t.Error("zero queues accepted")
	}
	if _, err := NewFrontend(k, d, FrontendConfig{Queues: []QueueConfig{{Depth: 0}}}); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestFrontendEnqueuePanicsOnBadQueue(t *testing.T) {
	f := newTestFrontend(t, &manualDrive{}, FrontendConfig{Queues: []QueueConfig{{Depth: 1}}})
	defer func() {
		if recover() == nil {
			t.Error("enqueue to queue 7 of 1 did not panic")
		}
	}()
	f.Enqueue(7, Command{Kind: KindRead})
}

// TestFrontendRoundRobin pins RR order: one grant per eligible queue per
// turn, starting at queue 0, rotating past empty queues.
func TestFrontendRoundRobin(t *testing.T) {
	d := &manualDrive{}
	f := newTestFrontend(t, d, FrontendConfig{
		Queues:      []QueueConfig{{Depth: 4}, {Depth: 4}, {Depth: 4}},
		MaxInFlight: 1,
	})
	// LPN encodes queue*100+seq so dispatch order is legible.
	f.Enqueue(0, Command{Kind: KindRead, LPN: 0})   // dispatches (cap 1)
	f.Enqueue(0, Command{Kind: KindRead, LPN: 1})   // pends
	f.Enqueue(1, Command{Kind: KindRead, LPN: 100}) // pends
	f.Enqueue(2, Command{Kind: KindRead, LPN: 200}) // pends
	for len(d.pending) > 0 {
		d.completeNext(nil)
	}
	want := []int{0, 100, 200, 1}
	if len(d.lpns) != len(want) {
		t.Fatalf("dispatched %v", d.lpns)
	}
	for i, lpn := range want {
		if d.lpns[i] != lpn {
			t.Fatalf("RR dispatch order %v, want %v", d.lpns, want)
		}
	}
	if !f.Drained() {
		t.Error("frontend not drained")
	}
}

// TestFrontendWeightedRoundRobin pins WRR bursts: the turn-holder keeps
// dispatching up to Weight consecutive commands before rotating.
func TestFrontendWeightedRoundRobin(t *testing.T) {
	d := &manualDrive{}
	f := newTestFrontend(t, d, FrontendConfig{
		Queues:      []QueueConfig{{Depth: 4, Weight: 2}, {Depth: 4, Weight: 1}},
		Arbitration: WeightedRoundRobin,
		MaxInFlight: 1,
	})
	f.Enqueue(0, Command{Kind: KindRead, LPN: 0})
	f.Enqueue(0, Command{Kind: KindRead, LPN: 1})
	f.Enqueue(0, Command{Kind: KindRead, LPN: 2})
	f.Enqueue(1, Command{Kind: KindRead, LPN: 100})
	f.Enqueue(1, Command{Kind: KindRead, LPN: 101})
	for len(d.pending) > 0 {
		d.completeNext(nil)
	}
	want := []int{0, 1, 100, 2, 101}
	for i, lpn := range want {
		if d.lpns[i] != lpn {
			t.Fatalf("WRR dispatch order %v, want %v", d.lpns, want)
		}
	}
}

// TestFrontendQueueDepth pins the per-queue in-flight window.
func TestFrontendQueueDepth(t *testing.T) {
	d := &manualDrive{}
	f := newTestFrontend(t, d, FrontendConfig{Queues: []QueueConfig{{Depth: 2}}})
	for i := 0; i < 5; i++ {
		f.Enqueue(0, Command{Kind: KindRead, LPN: i})
	}
	if f.InFlight() != 2 || f.Pending() != 3 {
		t.Fatalf("in-flight=%d pending=%d, want 2/3", f.InFlight(), f.Pending())
	}
	d.completeNext(nil)
	if f.InFlight() != 2 || f.Pending() != 2 {
		t.Fatalf("after one completion: in-flight=%d pending=%d, want 2/2", f.InFlight(), f.Pending())
	}
}

// TestFrontendMaxInFlight pins the device-wide cap across queues.
func TestFrontendMaxInFlight(t *testing.T) {
	d := &manualDrive{}
	f := newTestFrontend(t, d, FrontendConfig{
		Queues:      []QueueConfig{{Depth: 4}, {Depth: 4}},
		MaxInFlight: 3,
	})
	for i := 0; i < 4; i++ {
		f.Enqueue(0, Command{Kind: KindRead, LPN: i})
		f.Enqueue(1, Command{Kind: KindRead, LPN: 100 + i})
	}
	if f.InFlight() != 3 {
		t.Fatalf("in-flight=%d, want cap 3", f.InFlight())
	}
	for len(d.pending) > 0 {
		if f.InFlight() > 3 {
			t.Fatalf("cap exceeded: %d", f.InFlight())
		}
		d.completeNext(nil)
	}
	if !f.Drained() {
		t.Error("frontend not drained")
	}
}

// TestFrontendStats pins per-queue success/failure accounting.
func TestFrontendStats(t *testing.T) {
	d := &manualDrive{}
	f := newTestFrontend(t, d, FrontendConfig{Queues: []QueueConfig{{Depth: 4}}})
	var errs [3]error
	errs[1] = errors.New("uncorrectable")
	for i := range errs {
		f.Enqueue(0, Command{Kind: KindRead, LPN: i})
	}
	for i := range errs {
		d.completeNext(errs[i])
	}
	st := f.Stats(0)
	if st.Enqueued != 3 || st.Dispatched != 3 || st.Completed != 3 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFrontendRecorder pins enqueue capture: queue, tenant, op, LPN, in
// order, at the enqueue instant.
func TestFrontendRecorder(t *testing.T) {
	rec := &Recorder{}
	d := &manualDrive{}
	f := newTestFrontend(t, d, FrontendConfig{
		Queues:   []QueueConfig{{Depth: 1}, {Depth: 1}},
		Recorder: rec,
	})
	f.Enqueue(0, Command{Kind: KindRead, LPN: 7, Tenant: "a"})
	f.Enqueue(1, Command{Kind: KindTrim, LPN: 9, Tenant: "b"})
	got := rec.Entries()
	if len(got) != 2 {
		t.Fatalf("recorded %d entries", len(got))
	}
	if got[0] != (RecordEntry{AtPs: 0, Queue: 0, Tenant: "a", Op: "read", LPN: 7}) {
		t.Errorf("entry 0 = %+v", got[0])
	}
	if got[1] != (RecordEntry{AtPs: 0, Queue: 1, Tenant: "b", Op: "trim", LPN: 9}) {
		t.Errorf("entry 1 = %+v", got[1])
	}
}
