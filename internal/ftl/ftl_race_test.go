//go:build race

package ftl

// Under -race the alloc gates skip themselves: the detector's
// instrumentation allocates and would fail the 0-allocs assertions for
// reasons unrelated to the translation fast path.
func init() { raceDetectorEnabled = true }
