package txn

import (
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/onfi"
	"repro/internal/sim"
)

func validTxn() *Transaction {
	return &Transaction{
		ID: 1, OpID: 2, Chip: 0,
		Instrs: []Instr{
			ChipControl(bus.Mask(0)),
			CmdAddr([]onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}),
			DataRead(-1, 1, true),
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validTxn().Validate(); err != nil {
		t.Errorf("valid transaction rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		instrs []Instr
	}{
		{"empty", nil},
		{"empty mask", []Instr{ChipControl(0)}},
		{"latch before select", []Instr{CmdAddr([]onfi.Latch{onfi.CmdLatch(0x70)})}},
		{"empty burst", []Instr{ChipControl(1), CmdAddr(nil)}},
		{"zero write", []Instr{ChipControl(1), DataWrite(0, 0)}},
		{"write before select", []Instr{DataWrite(0, 4)}},
		{"zero read", []Instr{ChipControl(1), DataRead(0, 0, false)}},
		{"read before select", []Instr{DataRead(0, 4, false)}},
		{"negative wait", []Instr{TimerWait(-1)}},
		{"unknown kind", []Instr{{}}},
	}
	for _, c := range cases {
		tx := &Transaction{Instrs: c.instrs}
		if err := tx.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestEstimateDuration(t *testing.T) {
	tm := onfi.DefaultTiming()
	cfg := onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}
	tx := &Transaction{Instrs: []Instr{
		ChipControl(1),
		CmdAddr(make([]onfi.Latch, 7)),
		TimerWait(10 * sim.Microsecond),
		DataRead(0, 100, false),
	}}
	want := tm.LatchSegment(7) + 10*sim.Microsecond + tm.TWHR + tm.DataSegment(cfg, 100)
	if got := tx.EstimateDuration(tm, cfg); got != want {
		t.Errorf("EstimateDuration = %v, want %v", got, want)
	}
	// Chip control costs nothing.
	empty := &Transaction{Instrs: []Instr{ChipControl(1)}}
	if got := empty.EstimateDuration(tm, cfg); got != 0 {
		t.Errorf("chip-control-only duration = %v", got)
	}
}

func TestStrings(t *testing.T) {
	tx := validTxn()
	s := tx.String()
	for _, want := range []string{"txn#1", "op2", "chip0", "cmdaddr", "read("} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if !strings.Contains(TimerWait(sim.Microsecond).String(), "1us") {
		t.Error("TimerWait.String missing duration")
	}
	if !strings.Contains(DataWrite(5, 9).String(), "n=9") {
		t.Error("DataWrite.String missing size")
	}
	if !strings.Contains(ChipControl(3).String(), "11") {
		t.Error("ChipControl.String missing mask")
	}
}
