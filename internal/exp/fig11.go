package exp

import (
	"fmt"
	"strings"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/wave"
)

// Fig11Result is the poll-period analysis for one software environment:
// the logic-analyzer measurement of Section VI-B.
type Fig11Result struct {
	Controller   ssd.ControllerKind
	Reads        int
	PollsPerRead float64
	// MeanPollPeriod is the time between consecutive READ STATUS
	// latches while waiting out tR — the paper reports ≈30 µs for the
	// coroutine environment at 1 GHz.
	MeanPollPeriod sim.Duration
	// MeanReadLatency is the full operation latency.
	MeanReadLatency sim.Duration
	// Trace is an analyzer-style rendering of one operation.
	Trace string
}

// Fig11 reproduces Figure 11: a single LUN, a 1 GHz core, and a stream
// of READ operations, with the channel waveform captured so the polling
// cadence of the RTOS and coroutine environments can be measured
// precisely — our stand-in for the Keysight analyzer screenshots.
func Fig11(opt Options) ([]Fig11Result, error) {
	opt = opt.withDefaults()
	reads := opt.Ops / 10
	if reads < 4 {
		reads = 4
	}
	kinds := []ssd.ControllerKind{ssd.CtrlBabolRTOS, ssd.CtrlBabolCoro}
	out := make([]Fig11Result, len(kinds))
	err := sweep(opt, len(kinds), func(i int, tracer obs.Tracer) error {
		kind := kinds[i]
		params := shrink(nand.Hynix(), opt.Blocks)
		rig, err := ssd.Build(ssd.BuildConfig{
			Params: params, Ways: 1, RateMT: 200,
			Controller: kind, CPUMHz: 1000, Record: true, Tracer: tracer,
			NoCoroPool: opt.NoCoroPool,
			Shards:     opt.Shards, HostHop: opt.HostHop,
			ShardTelemetry: opt.ShardTelemetry, TraceShardWindows: opt.TraceShardWindows,
			MapCacheBytes: opt.MapCacheBytes,
		})
		if err != nil {
			return err
		}
		defer rig.Close()
		if err := rig.SSD.Preload(reads); err != nil {
			return err
		}
		res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
			Pattern: hic.Sequential, Kind: hic.KindRead,
			NumOps: reads, QueueDepth: 1, LogicalPages: reads,
		})
		if err != nil {
			return err
		}
		rig.Run()
		if res.Completed != reads || res.Failed != 0 {
			return fmt.Errorf("fig11 %v: %d/%d completed, %d failed", kind, res.Completed, reads, res.Failed)
		}
		polls, period := pollCadence(rig.Channel.Recorder().Segments())
		out[i] = Fig11Result{
			Controller:      kind,
			Reads:           reads,
			PollsPerRead:    float64(polls) / float64(reads),
			MeanPollPeriod:  period,
			MeanReadLatency: res.MeanLatency(),
			Trace:           firstOpTrace(rig.Channel.Recorder().Segments()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pollCadence counts READ STATUS latch bursts and the mean gap between
// consecutive polls belonging to the same operation.
func pollCadence(segs []wave.Segment) (polls int, meanPeriod sim.Duration) {
	var gaps []sim.Duration
	lastByOp := map[uint64]sim.Time{}
	for _, s := range segs {
		if s.Kind != wave.KindCmdAddr || !strings.Contains(s.Label, "READ-STATUS") {
			continue
		}
		polls++
		if prev, ok := lastByOp[s.OpID]; ok {
			gaps = append(gaps, s.Start.Sub(prev))
		}
		lastByOp[s.OpID] = s.Start
	}
	if len(gaps) == 0 {
		return polls, 0
	}
	var sum sim.Duration
	for _, g := range gaps {
		sum += g
	}
	return polls, sum / sim.Duration(len(gaps))
}

// firstOpTrace renders the segments of the first operation in the trace.
func firstOpTrace(segs []wave.Segment) string {
	var first uint64
	for _, s := range segs {
		if s.OpID != 0 {
			first = s.OpID
			break
		}
	}
	r := wave.NewRecorder()
	count := 0
	for _, s := range segs {
		if s.OpID == first && count < 12 {
			r.Record(s)
			count++
		}
	}
	return r.Render()
}

// Fig9 renders the waveform of one full ONFI READ produced by
// Algorithm 2 (ReadPage) on an idle channel — the paper's Figure 9: the
// command/address enqueue, the polling instead of a fixed tR, and the
// column-change + transfer segment.
func Fig9() (string, error) {
	rig, err := ssd.Build(ssd.BuildConfig{
		Params: shrink(nand.Hynix(), 16), Ways: 1, RateMT: 200,
		Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000, Record: true,
	})
	if err != nil {
		return "", err
	}
	defer rig.Close()
	if err := rig.SSD.Preload(1); err != nil {
		return "", err
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindRead,
		NumOps: 1, QueueDepth: 1, LogicalPages: 1,
	})
	if err != nil {
		return "", err
	}
	rig.Run()
	if res.Completed != 1 || res.Failed != 0 {
		return "", fmt.Errorf("fig9: read did not complete cleanly")
	}
	out := "Fig 9: waveform of an ONFI READ produced by Algorithm 2 (RTOS @ 1 GHz)\n"
	out += "------------------------------------------------------------------------\n"
	out += rig.Channel.Recorder().Render()
	return out, nil
}

// RenderFig11 formats the poll-cadence comparison.
func RenderFig11(results []Fig11Result) string {
	var rows []string
	for _, r := range results {
		rows = append(rows, fmt.Sprintf("%-6s reads=%-4d polls/read=%-7.1f poll-period=%-10s read-latency=%s",
			r.Controller, r.Reads, r.PollsPerRead, us(r.MeanPollPeriod), us(r.MeanReadLatency)))
	}
	out := table("Fig 11: READ STATUS polling cadence, 1 LUN @ 1 GHz (paper: Coro ≈30us/poll)", rows)
	for _, r := range results {
		out += fmt.Sprintf("\n%s — first READ, analyzer view:\n%s", r.Controller, r.Trace)
	}
	return out
}
