// Package bus models one flash channel: the shared command/address/data
// bus that connects a channel controller to the LUNs ("chips") attached
// to it. The bus enforces exclusivity, charges transfer time according to
// the configured ONFI data-interface mode, demultiplexes chip-enable
// selection, and records every segment into a wave.Recorder.
package bus

import (
	"fmt"

	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/sim"
	"repro/internal/wave"
)

// ChipMask selects a set of chips on the channel, one bit per chip. The
// Chip Control µFSM drives this; most operations select exactly one chip,
// but gang-scheduled operations (e.g. RAIL-style replicated writes)
// select several.
type ChipMask uint16

// Mask builds a mask selecting exactly chip i.
func Mask(i int) ChipMask { return 1 << i }

// Has reports whether chip i is selected.
func (m ChipMask) Has(i int) bool { return m&(1<<i) != 0 }

// Count reports how many chips are selected.
func (m ChipMask) Count() int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Channel is one shared flash channel.
type Channel struct {
	kernel *sim.Kernel
	cfg    onfi.BusConfig
	timing onfi.Timing
	chips  []*nand.LUN
	rec    *wave.Recorder

	busyUntil sim.Time
	stats     Stats
}

// Stats counts channel activity.
type Stats struct {
	LatchBursts   uint64
	DataOutBursts uint64
	DataInBursts  uint64
	Pauses        uint64
	BytesOut      uint64
	BytesIn       uint64
	BusyTime      sim.Duration
}

// New creates a channel. rec may be nil to disable waveform capture.
func New(k *sim.Kernel, cfg onfi.BusConfig, timing onfi.Timing, rec *wave.Recorder) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Channel{kernel: k, cfg: cfg, timing: timing, rec: rec}, nil
}

// Attach wires a LUN onto the channel and returns its chip index.
func (c *Channel) Attach(l *nand.LUN) int {
	c.chips = append(c.chips, l)
	return len(c.chips) - 1
}

// Chips reports how many chips are attached.
func (c *Channel) Chips() int { return len(c.chips) }

// Chip returns the LUN at index i.
func (c *Channel) Chip(i int) *nand.LUN { return c.chips[i] }

// Config returns the electrical configuration.
func (c *Channel) Config() onfi.BusConfig { return c.cfg }

// Timing returns the ONFI timing parameter set in force.
func (c *Channel) Timing() onfi.Timing { return c.timing }

// Recorder returns the attached waveform recorder (may be nil).
func (c *Channel) Recorder() *wave.Recorder { return c.rec }

// Stats returns a snapshot of the activity counters.
func (c *Channel) Stats() Stats { return c.stats }

// SetRate reclocks the channel at runtime — the boot flow runs slowly in
// SDR-compatible speed, switches the packages' timing mode via SET
// FEATURES, and then raises the channel clock. The new rate applies to
// segments issued afterwards.
func (c *Channel) SetRate(rateMT int) error {
	next := c.cfg
	next.RateMT = rateMT
	if err := next.Validate(); err != nil {
		return err
	}
	c.cfg = next
	return nil
}

// Free reports whether the channel is idle at the current virtual time.
func (c *Channel) Free() bool { return c.kernel.Now() >= c.busyUntil }

// FreeAt reports when the channel becomes idle.
func (c *Channel) FreeAt() sim.Time { return c.busyUntil }

func (c *Channel) checkMask(m ChipMask) error {
	if m == 0 {
		return fmt.Errorf("bus: empty chip mask")
	}
	for i := 0; i < 16; i++ {
		if m.Has(i) && i >= len(c.chips) {
			return fmt.Errorf("bus: chip %d selected but only %d attached", i, len(c.chips))
		}
	}
	return nil
}

// claim appends a segment of length d to the channel schedule: it starts
// at the later of now and the current busy horizon, so segments chained
// within one transaction queue back-to-back. Transaction *starts* are
// gated by the schedulers, which only grant a free channel; within a
// granted transaction, chained segments append without re-arbitration
// (a transaction "monopolizes the channel", paper §V).
func (c *Channel) claim(d sim.Duration) (start, end sim.Time) {
	start = c.kernel.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	end = start.Add(d)
	c.busyUntil = end
	c.stats.BusyTime += d
	return start, end
}

// firstChip returns the lowest selected chip index for trace labelling.
func firstChip(m ChipMask) int {
	for i := 0; i < 16; i++ {
		if m.Has(i) {
			return i
		}
	}
	return -1
}

// Latch drives a command/address burst to every selected chip. The burst
// occupies the channel for the full segment time (CE setup, n latch
// cycles, CE hold, and the trailing tWB absorption wait). It returns the
// time at which the channel frees.
func (c *Channel) Latch(sel ChipMask, latches []onfi.Latch, opID uint64) (sim.Time, error) {
	if err := c.checkMask(sel); err != nil {
		return 0, err
	}
	if len(latches) == 0 {
		return 0, fmt.Errorf("bus: empty latch burst")
	}
	start, end := c.claim(c.timing.LatchSegment(len(latches)))
	// Capture each selected chip's busy horizon before the latch so a
	// busy interval the command *starts* (tR, tPROG, tBERS) can be
	// recorded below; a status poll while busy leaves the horizon alone
	// and records nothing.
	var prevReady []sim.Time
	if c.rec.Enabled() {
		prevReady = make([]sim.Time, len(c.chips))
		for i := range c.chips {
			if sel.Has(i) {
				prevReady[i] = c.chips[i].ReadyAt()
			}
		}
	}
	// The LUN absorbs the command at the end of the burst.
	for i := range c.chips {
		if sel.Has(i) {
			if err := c.chips[i].Latch(end, latches); err != nil {
				return 0, err
			}
		}
	}
	c.stats.LatchBursts++
	// Building the segment (label string included) is itself a cost, so
	// skip it entirely unless the recorder is live — with recording off,
	// a latch burst charges pure timing.
	if c.rec.Enabled() {
		// Copy the burst for the segment: callers reuse latch storage
		// across transactions (stack arrays, the controller's latch
		// arena), so aliasing the parameter would let later bursts
		// rewrite recorded history. The copy also keeps the parameter
		// non-escaping, so untraced runs build bursts on the stack.
		c.rec.Record(wave.Segment{
			Start: start, End: end, Kind: wave.KindCmdAddr,
			Chip: firstChip(sel), Label: wave.SummarizeLatches(latches),
			Latches: append([]onfi.Latch(nil), latches...), OpID: opID,
		})
		// Record the die-busy window this burst announced — the R/B#
		// line of the paper's logic-analyzer captures. The segment
		// reflects the busy time declared at command acceptance; a later
		// suspend can end the real busy interval early.
		for i := range c.chips {
			if !sel.Has(i) {
				continue
			}
			if ready := c.chips[i].ReadyAt(); ready > end && ready > prevReady[i] {
				c.rec.Record(wave.Segment{
					Start: end, End: ready, Kind: wave.KindBusy,
					Chip: i, Label: busyLabel(latches), OpID: opID,
				})
			}
		}
	}
	return end, nil
}

// busyLabel names the busy interval a latch burst starts, after the
// timing parameter that governs it.
func busyLabel(latches []onfi.Latch) string {
	last := latches[len(latches)-1]
	if last.Kind != onfi.LatchCmd {
		return "busy"
	}
	switch onfi.Cmd(last.Value) {
	case onfi.CmdRead2, onfi.CmdCacheRead, onfi.CmdCacheReadEnd, onfi.CmdCopybackRead:
		return "tR"
	case onfi.CmdProgram2, onfi.CmdCacheProgram2:
		return "tPROG"
	case onfi.CmdErase2:
		return "tBERS"
	case onfi.CmdReset, onfi.CmdSynchronousReset:
		return "tRST"
	default:
		return "busy"
	}
}

// DataOut streams n bytes from one chip to the controller into a fresh
// slice. Hot paths use DataOutInto with a caller-owned destination.
func (c *Channel) DataOut(sel ChipMask, n int, opID uint64) ([]byte, sim.Time, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("bus: data out of %d bytes", n)
	}
	data := make([]byte, n)
	end, err := c.DataOutInto(sel, data, opID)
	if err != nil {
		return nil, 0, err
	}
	return data, end, nil
}

// DataOutInto streams len(dst) bytes from one chip to the controller
// directly into dst — the Data Reader µFSM + Packetizer writing the
// host-side buffer with no intermediate copy. The channel is occupied
// for the tWHR command-to-data gap, the DQS preamble, the data transfer,
// and the postamble. Exactly one chip must be selected: ONFI cannot gang
// data output.
func (c *Channel) DataOutInto(sel ChipMask, dst []byte, opID uint64) (sim.Time, error) {
	if err := c.checkMask(sel); err != nil {
		return 0, err
	}
	if sel.Count() != 1 {
		return 0, fmt.Errorf("bus: data out needs exactly one chip, mask has %d", sel.Count())
	}
	n := len(dst)
	if n <= 0 {
		return 0, fmt.Errorf("bus: data out of %d bytes", n)
	}
	chip := firstChip(sel)
	if max := c.chips[chip].MaxRateMT(); c.cfg.RateMT > max {
		return 0, fmt.Errorf("bus: data out at %d MT/s but chip %d's timing mode tops out at %d MT/s (boot flow must switch it via SET FEATURES)", c.cfg.RateMT, chip, max)
	}
	start, end := c.claim(c.timing.TWHR + c.timing.DataSegment(c.cfg, n))
	xferStart := start.Add(c.timing.TWHR)
	if err := c.chips[chip].DataOutInto(xferStart, dst); err != nil {
		return 0, err
	}
	c.stats.DataOutBursts++
	c.stats.BytesOut += uint64(n)
	if c.rec.Enabled() {
		c.rec.Record(wave.Segment{
			Start: xferStart, End: end, Kind: wave.KindDataOut,
			Chip: chip, Bytes: n, Label: "data out", OpID: opID,
		})
	}
	return end, nil
}

// DataIn streams data from the controller to every selected chip
// (broadcast writes are how gang-replication works). The channel is
// occupied for the DQS preamble, the transfer, and the postamble.
func (c *Channel) DataIn(sel ChipMask, data []byte, opID uint64) (sim.Time, error) {
	if err := c.checkMask(sel); err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("bus: empty data in")
	}
	for i := range c.chips {
		if sel.Has(i) {
			if max := c.chips[i].MaxRateMT(); c.cfg.RateMT > max {
				return 0, fmt.Errorf("bus: data in at %d MT/s but chip %d's timing mode tops out at %d MT/s", c.cfg.RateMT, i, max)
			}
		}
	}
	start, end := c.claim(c.timing.DataSegment(c.cfg, len(data)))
	for i := range c.chips {
		if sel.Has(i) {
			if err := c.chips[i].DataIn(start, data); err != nil {
				return 0, err
			}
		}
	}
	c.stats.DataInBursts++
	c.stats.BytesIn += uint64(len(data))
	if c.rec.Enabled() {
		c.rec.Record(wave.Segment{
			Start: start, End: end, Kind: wave.KindDataIn,
			Chip: firstChip(sel), Bytes: len(data), Label: "data in", OpID: opID,
		})
	}
	return end, nil
}

// Pause occupies the channel for d without driving any pins — the Timer
// µFSM's emission. Used for inter-segment delays such as tADL that must
// hold the bus.
func (c *Channel) Pause(d sim.Duration, opID uint64) (sim.Time, error) {
	if d < 0 {
		return 0, fmt.Errorf("bus: negative pause %v", d)
	}
	start, end := c.claim(d)
	c.stats.Pauses++
	if c.rec.Enabled() {
		c.rec.Record(wave.Segment{
			Start: start, End: end, Kind: wave.KindWait, Chip: -1,
			Label: "timer", OpID: opID,
		})
	}
	return end, nil
}

// Status is a convenience for the READ STATUS idiom: it latches 0x70 to
// one chip and reads the status byte back, occupying the channel for both
// segments. It returns the status byte and the channel-free time.
func (c *Channel) Status(chip int, opID uint64) (byte, sim.Time, error) {
	lbuf := [1]onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}
	if _, err := c.Latch(Mask(chip), lbuf[:], opID); err != nil {
		return 0, 0, err
	}
	var data [1]byte
	end, err := c.DataOutInto(Mask(chip), data[:], opID)
	if err != nil {
		return 0, 0, err
	}
	return data[0], end, nil
}
