package core_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/dram"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/wave"
)

type rig struct {
	k    *sim.Kernel
	ch   *bus.Channel
	mem  *dram.Buffer
	ctrl *core.Controller
}

func smallParams() nand.Params {
	p := nand.Hynix()
	p.Geometry = onfi.Geometry{Planes: 1, BlocksPerLUN: 8, PagesPerBlk: 4, PageBytes: 256, SpareBytes: 16}
	p.JitterPct = 0
	return p
}

func newRig(t *testing.T, chips int, profile cpumodel.Profile, freqMHz int) *rig {
	t.Helper()
	k := sim.NewKernel()
	ch, err := bus.New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}, onfi.DefaultTiming(), wave.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chips; i++ {
		l, err := nand.NewLUN(smallParams())
		if err != nil {
			t.Fatal(err)
		}
		ch.Attach(l)
	}
	mem := dram.New(1 << 20)
	cpu, err := cpumodel.New(k, freqMHz, profile)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.New(core.Config{Kernel: k, Channel: ch, DRAM: mem, CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctrl.Close)
	return &rig{k: k, ch: ch, mem: mem, ctrl: ctrl}
}

func TestNewRequiresAllParts(t *testing.T) {
	if _, err := core.New(core.Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestReadPageEndToEnd(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	want := bytes.Repeat([]byte{0x6D}, 256)
	if err := r.ch.Chip(0).SeedPage(onfi.RowAddr{Block: 2, Page: 3}, want); err != nil {
		t.Fatal(err)
	}

	var opErr error
	done := false
	r.ctrl.Start(core.OpRequest{
		Func: ops.ReadPage(onfi.Addr{Row: onfi.RowAddr{Block: 2, Page: 3}}, 0, 256),
		Chip: 0,
		Done: func(err error) { opErr = err; done = true },
	})
	r.k.Run()

	if !done {
		t.Fatal("operation never completed")
	}
	if opErr != nil {
		t.Fatal(opErr)
	}
	got, err := r.mem.Read(0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read data mismatch")
	}
	// The read must take at least tR plus the transfer time.
	if r.k.Now() < sim.Time(smallParams().TR) {
		t.Errorf("completed at %v, before tR elapsed", r.k.Now())
	}
	// Captured waveform must be ONFI-legal.
	chk := wave.NewChecker(r.ch.Timing(), r.ch.Config())
	if vs := chk.Check(r.ch.Recorder().Segments()); len(vs) != 0 {
		t.Errorf("waveform violations: %v", vs)
	}
	st := r.ctrl.Stats()
	if st.OpsCompleted != 1 || st.OpsFailed != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.TxnsExecuted < 3 {
		t.Errorf("expected ≥3 transactions (cmd, ≥1 poll, transfer), got %d", st.TxnsExecuted)
	}
}

func TestProgramThenReadRoundTrip(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	payload := bytes.Repeat([]byte{0xE7}, 128)
	if err := r.mem.Write(0, payload); err != nil {
		t.Fatal(err)
	}
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 0}}

	var steps []string
	r.ctrl.Start(core.OpRequest{
		Func: ops.ProgramPage(addr, 0, 128),
		Chip: 0,
		Done: func(err error) {
			if err != nil {
				t.Errorf("program: %v", err)
			}
			steps = append(steps, "program")
			r.ctrl.Start(core.OpRequest{
				Func: ops.ReadPage(addr, 4096, 128),
				Chip: 0,
				Done: func(err error) {
					if err != nil {
						t.Errorf("read: %v", err)
					}
					steps = append(steps, "read")
				},
			})
		},
	})
	r.k.Run()
	if len(steps) != 2 {
		t.Fatalf("steps: %v", steps)
	}
	got, _ := r.mem.Read(4096, 128)
	if !bytes.Equal(got, payload) {
		t.Error("program/read round trip mismatch")
	}
}

func TestEraseBlockOp(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	lun := r.ch.Chip(0)
	if err := lun.SeedPage(onfi.RowAddr{Block: 3, Page: 0}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	var opErr error
	r.ctrl.Start(core.OpRequest{
		Func: ops.EraseBlock(3), Chip: 0,
		Done: func(err error) { opErr = err },
	})
	r.k.Run()
	if opErr != nil {
		t.Fatal(opErr)
	}
	if lun.EraseCount(3) != 1 {
		t.Error("erase did not reach the LUN")
	}
	page, _ := lun.PeekPage(onfi.RowAddr{Block: 3, Page: 0})
	if page[0] != 0xFF {
		t.Error("page not erased")
	}
}

func TestPerChipAdmission(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	if err := r.ch.Chip(0).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		r.ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(onfi.Addr{}, i*1024, 64),
			Chip: 0,
			Done: func(err error) {
				if err != nil {
					t.Errorf("op %d: %v", i, err)
				}
				order = append(order, i)
			},
		})
	}
	r.k.Run()
	if len(order) != 3 {
		t.Fatalf("completions: %v", order)
	}
	// Same chip → serialized in submission order.
	for i, v := range order {
		if v != i {
			t.Fatalf("order: %v", order)
		}
	}
	if r.ctrl.Stats().AdmissionWaits == 0 {
		t.Error("expected admission waits for same-chip ops")
	}
}

func TestMultiChipInterleaving(t *testing.T) {
	r := newRig(t, 4, cpumodel.RTOS(), 1000)
	for i := 0; i < 4; i++ {
		if err := r.ch.Chip(i).SeedPage(onfi.RowAddr{}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	start := r.k.Now()
	completions := 0
	for i := 0; i < 4; i++ {
		r.ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(onfi.Addr{}, i*1024, 256),
			Chip: i,
			Done: func(err error) {
				if err != nil {
					t.Error(err)
				}
				completions++
			},
		})
	}
	r.k.Run()
	if completions != 4 {
		t.Fatalf("completions = %d", completions)
	}
	elapsed := r.k.Now().Sub(start)
	// Four interleaved reads must take far less than 4 serial reads:
	// their tRs overlap.
	serial := 4 * (smallParams().TR + 50*sim.Microsecond)
	if elapsed >= serial {
		t.Errorf("no interleaving: %v elapsed vs %v serial bound", elapsed, serial)
	}
}

func TestOperationFailureSurfaces(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	// Program the same page twice: second must FAIL.
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 0, Page: 0}}
	var errs []error
	run := func(next func()) func(error) {
		return func(err error) {
			errs = append(errs, err)
			if next != nil {
				next()
			}
		}
	}
	r.ctrl.Start(core.OpRequest{
		Func: ops.ProgramPage(addr, 0, 16), Chip: 0,
		Done: run(func() {
			r.ctrl.Start(core.OpRequest{
				Func: ops.ProgramPage(addr, 0, 16), Chip: 0,
				Done: run(nil),
			})
		}),
	})
	r.k.Run()
	if len(errs) != 2 {
		t.Fatalf("errs: %v", errs)
	}
	if errs[0] != nil {
		t.Errorf("first program: %v", errs[0])
	}
	if errs[1] == nil {
		t.Error("overwrite did not surface FAIL")
	}
	if r.ctrl.Stats().OpsFailed != 1 {
		t.Errorf("OpsFailed = %d", r.ctrl.Stats().OpsFailed)
	}
}

func TestBadAddressFailsFast(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	var opErr error
	r.ctrl.Start(core.OpRequest{
		Func: ops.ReadPage(onfi.Addr{Row: onfi.RowAddr{Block: 999}}, 0, 16),
		Chip: 0,
		Done: func(err error) { opErr = err },
	})
	r.k.Run()
	if opErr == nil {
		t.Error("out-of-range read did not fail")
	}
}

func TestReadIDOp(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	var id []byte
	r.ctrl.Start(core.OpRequest{
		Func: ops.ReadID(&id, 2), Chip: 0,
		Done: func(err error) {
			if err != nil {
				t.Error(err)
			}
		},
	})
	r.k.Run()
	if len(id) != 2 || id[0] != 0xAD {
		t.Errorf("READ ID = % X", id)
	}
}

func TestSetGetFeatureOps(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	var out [4]byte
	r.ctrl.Start(core.OpRequest{
		Func: ops.SetFeature(onfi.FeatReadRetry, [4]byte{5, 0, 0, 0}), Chip: 0,
		Done: func(err error) {
			if err != nil {
				t.Errorf("set feature: %v", err)
			}
			r.ctrl.Start(core.OpRequest{
				Func: ops.GetFeature(onfi.FeatReadRetry, &out), Chip: 0,
				Done: func(err error) {
					if err != nil {
						t.Errorf("get feature: %v", err)
					}
				},
			})
		},
	})
	r.k.Run()
	if out[0] != 5 {
		t.Errorf("feature round trip = %v", out)
	}
}

func TestResetOp(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	var opErr error
	r.ctrl.Start(core.OpRequest{
		Func: ops.Reset(), Chip: 0,
		Done: func(err error) { opErr = err },
	})
	r.k.Run()
	if opErr != nil {
		t.Fatal(opErr)
	}
}

func TestSLCReadFasterThanTLC(t *testing.T) {
	measure := func(slc bool) sim.Duration {
		r := newRig(t, 1, cpumodel.RTOS(), 1000)
		if err := r.ch.Chip(0).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
			t.Fatal(err)
		}
		fn := ops.ReadPage(onfi.Addr{}, 0, 64)
		if slc {
			fn = ops.ReadPageSLC(onfi.Addr{}, 0, 64)
		}
		var end sim.Time
		r.ctrl.Start(core.OpRequest{Func: fn, Chip: 0, Done: func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			end = r.k.Now()
		}})
		r.k.Run()
		return sim.Duration(end)
	}
	tlc, slc := measure(false), measure(true)
	if slc >= tlc {
		t.Errorf("pSLC read (%v) not faster than TLC read (%v)", slc, tlc)
	}
}

func TestCoroSlowerThanRTOS(t *testing.T) {
	measure := func(p cpumodel.Profile, freq int) sim.Duration {
		r := newRig(t, 1, p, freq)
		if err := r.ch.Chip(0).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
			t.Fatal(err)
		}
		var end sim.Time
		r.ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(onfi.Addr{}, 0, 256), Chip: 0,
			Done: func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				end = r.k.Now()
			},
		})
		r.k.Run()
		return sim.Duration(end)
	}
	rtos := measure(cpumodel.RTOS(), 1000)
	coroSlow := measure(cpumodel.Coro(), 1000)
	if coroSlow <= rtos {
		t.Errorf("Coro (%v) should be slower than RTOS (%v) on an idle channel", coroSlow, rtos)
	}
	slow150 := measure(cpumodel.RTOS(), 150)
	if slow150 <= rtos {
		t.Errorf("150MHz RTOS (%v) should be slower than 1GHz RTOS (%v)", slow150, rtos)
	}
}

func TestPriorityScheduling(t *testing.T) {
	// With a priority txn queue and two chips flooded, the high-priority
	// op's transactions jump the queue.
	k := sim.NewKernel()
	ch, err := bus.New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}, onfi.DefaultTiming(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		l, _ := nand.NewLUN(smallParams())
		l.SeedPage(onfi.RowAddr{}, []byte{1})
		ch.Attach(l)
	}
	cpu, _ := cpumodel.New(k, 1000, cpumodel.RTOS())
	ctrl, err := core.New(core.Config{
		Kernel: k, Channel: ch, DRAM: dram.New(1 << 20), CPU: cpu,
		TaskQueue: sched.NewTaskPriority(), TxnQueue: sched.NewTxnPriority(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	var first int
	got := false
	for i := 0; i < 2; i++ {
		i := i
		ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(onfi.Addr{}, i*1024, 256), Chip: i,
			Priority: i, // chip 1 has higher priority
			Done: func(err error) {
				if err != nil {
					t.Error(err)
				}
				if !got {
					first, got = i, true
				}
			},
		})
	}
	k.Run()
	if first != 1 {
		t.Errorf("high-priority op finished second")
	}
}

func TestCloseAbortsInFlight(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	finished := errors.New("unset")
	r.ctrl.Start(core.OpRequest{
		Func: ops.ReadPage(onfi.Addr{}, 0, 64), Chip: 0,
		Done: func(err error) { finished = err },
	})
	// Run only a little, then close mid-operation.
	r.k.RunFor(sim.Microsecond)
	r.ctrl.Close()
	if r.ctrl.Pending() != 0 {
		t.Error("pending ops after Close")
	}
	_ = finished // Done may or may not have fired; Close only guarantees cleanup.
}

func TestLatencyStats(t *testing.T) {
	r := newRig(t, 2, cpumodel.RTOS(), 1000)
	for i := 0; i < 2; i++ {
		if err := r.ch.Chip(i).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		r.ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(onfi.Addr{}, i*1024, 64),
			Chip: i % 2,
			Done: func(err error) {
				if err != nil {
					t.Error(err)
				}
			},
		})
	}
	r.k.Run()
	lat := r.ctrl.Latency()
	if lat.Count() != 6 {
		t.Fatalf("latency samples = %d", lat.Count())
	}
	if lat.Mean() <= 0 || lat.Percentile(50) <= 0 || lat.Max() < lat.Percentile(50) {
		t.Errorf("latency stats inconsistent: %v", lat)
	}
	if lat.Percentile(99) < lat.Percentile(50) {
		t.Error("percentiles not monotone")
	}
	if lat.String() == "" {
		t.Error("empty summary")
	}
	var empty core.LatencyStats
	if empty.Mean() != 0 || empty.Percentile(99) != 0 || empty.Max() != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestScratchRingWraps(t *testing.T) {
	// SET FEATURES uses small scratch windows; thousands of them must
	// recycle the ring without corruption.
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	var chain func(i int)
	completed := 0
	chain = func(i int) {
		if i >= 40 {
			return
		}
		r.ctrl.Start(core.OpRequest{
			Func: ops.SetFeature(onfi.FeatDriveStrength, [4]byte{byte(i)}), Chip: 0,
			Done: func(err error) {
				if err != nil {
					t.Errorf("set feature %d: %v", i, err)
				}
				completed++
				chain(i + 1)
			},
		})
	}
	chain(0)
	r.k.Run()
	if completed != 40 {
		t.Fatalf("completed %d", completed)
	}
	// Verify the final value stuck.
	var out [4]byte
	r.ctrl.Start(core.OpRequest{
		Func: ops.GetFeature(onfi.FeatDriveStrength, &out), Chip: 0,
		Done: func(err error) {
			if err != nil {
				t.Error(err)
			}
		},
	})
	r.k.Run()
	if out[0] != 39 {
		t.Errorf("final feature value %d", out[0])
	}
}

func TestYieldHintCooperates(t *testing.T) {
	r := newRig(t, 2, cpumodel.RTOS(), 1000)
	var order []string
	spinner := func(name string, yields int) core.OpFunc {
		return func(ctx *core.Ctx) error {
			for i := 0; i < yields; i++ {
				order = append(order, name)
				ctx.YieldHint()
			}
			return nil
		}
	}
	r.ctrl.Start(core.OpRequest{Func: spinner("a", 3), Chip: 0})
	r.ctrl.Start(core.OpRequest{Func: spinner("b", 3), Chip: 1})
	r.k.Run()
	if len(order) != 6 {
		t.Fatalf("order: %v", order)
	}
	// Cooperative yielding interleaves the two ops.
	interleaved := false
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			interleaved = true
		}
	}
	if !interleaved {
		t.Errorf("no interleaving: %v", order)
	}
}

func TestGangAdmissionBlocksOverlap(t *testing.T) {
	r := newRig(t, 3, cpumodel.RTOS(), 1000)
	for i := 0; i < 3; i++ {
		if err := r.ch.Chip(i).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	// A gang op over chips 0+1, then a single op on chip 1: the single
	// op must wait for the gang op.
	r.ctrl.Start(core.OpRequest{
		Func: ops.GangRead([]int{0, 1}, onfi.Addr{}, 0, 64), Chip: 0, ExtraChips: []int{1},
		Done: func(err error) {
			if err != nil {
				t.Error(err)
			}
			order = append(order, "gang")
		},
	})
	r.ctrl.Start(core.OpRequest{
		Func: ops.ReadPage(onfi.Addr{}, 4096, 64), Chip: 1,
		Done: func(err error) {
			if err != nil {
				t.Error(err)
			}
			order = append(order, "single")
		},
	})
	r.k.Run()
	if len(order) != 2 || order[0] != "gang" {
		t.Fatalf("order: %v", order)
	}
}

func TestCtxIntrospection(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	var opID uint64
	var sawTime sim.Time
	id := r.ctrl.Start(core.OpRequest{
		Func: func(ctx *core.Ctx) error {
			opID = ctx.OpID()
			ctx.Sleep(5 * sim.Microsecond)
			sawTime = ctx.Now()
			if ctx.ChipIndex() != 0 {
				t.Error("chip index")
			}
			if ctx.Params().Name != "Hynix" {
				t.Error("params")
			}
			return nil
		},
		Chip: 0,
	})
	r.k.Run()
	if opID != id {
		t.Errorf("OpID %d != Start id %d", opID, id)
	}
	if sawTime < sim.Time(5*sim.Microsecond) {
		t.Errorf("Sleep did not advance time: %v", sawTime)
	}
	if r.ctrl.CPU() == nil || r.ctrl.DRAM() == nil || r.ctrl.Channel() == nil {
		t.Error("accessors")
	}
}
