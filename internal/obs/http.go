package obs

import (
	"encoding/json"
	"net/http"
	"sort"

	"repro/internal/sim"
)

// MetricsHandler serves point-in-time JSON snapshots of a metrics
// registry — the expvar-style live-introspection endpoint behind
// `babolbench -http`. snap is called once per request; hand it
// (*SyncMetrics).Snapshot when the registry is fed concurrently.
//
// The wire form flattens the registry for curl/jq consumption: the
// ChipKey-keyed map becomes a sorted array (struct keys do not marshal),
// histograms carry their summary statistics plus non-zero log2 buckets,
// and durations are reported in picoseconds exactly as recorded.
func MetricsHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding errors mean the client went away; nothing to do.
		_ = enc.Encode(snapshotWire(snap()))
	})
}

// ShardsHandler serves the shard view of a metrics registry: per-shard
// window occupancy, the events-per-window distribution, and cross-shard
// mailbox traffic — the live instrument panel behind `babolbench -http`
// at /shards. Like MetricsHandler, snap is called once per request;
// hand it (*SyncMetrics).Snapshot when rigs feed it concurrently. The
// view is empty (windows=0, no shards) until a sharded rig with
// window-trace emission enabled reports in.
func ShardsHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(shardsWire(snap()))
	})
}

// FTLHandler serves the FTL map-cache view of a metrics registry:
// translation hit/miss/eviction/flush totals and the derived hit rate —
// the live panel behind `babolbench -http` at /ftl. snap is called once
// per request; hand it (*SyncMetrics).Snapshot when rigs feed it
// concurrently. All counters stay zero until a rig with the map cache
// enabled (-mapcache) reports in.
func FTLHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ftlWire(snap()))
	})
}

// TenantsHandler serves the per-tenant host-command view of a metrics
// registry: completion/failure counts, command mix, and the latency
// distribution per tenant — the live panel behind `babolbench -http`
// at /tenants. snap is called once per request; hand it
// (*SyncMetrics).Snapshot when rigs feed it concurrently. The view is
// empty until a workload-engine (or trace-replay) run reports in.
func TenantsHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tenantsWire(snap()))
	})
}

type tenantRowWire struct {
	Tenant    string   `json:"tenant"`
	Queue     int      `json:"queue"`
	Completed uint64   `json:"completed"`
	Failed    uint64   `json:"failed"`
	Reads     uint64   `json:"reads"`
	Writes    uint64   `json:"writes"`
	Trims     uint64   `json:"trims"`
	Latency   histWire `json:"latency"`
}

type tenantsViewWire struct {
	Tenants []tenantRowWire `json:"tenants,omitempty"`
}

func tenantsWire(s Snapshot) tenantsViewWire {
	var out tenantsViewWire
	for name, t := range s.Tenants {
		out.Tenants = append(out.Tenants, tenantRowWire{
			Tenant: name, Queue: t.Queue,
			Completed: t.Completed, Failed: t.Failed,
			Reads: t.Reads, Writes: t.Writes, Trims: t.Trims,
			Latency: histogramWire(t.Latency),
		})
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Tenant < out.Tenants[j].Tenant })
	return out
}

type ftlViewWire struct {
	MapCacheActive bool    `json:"map_cache_active"`
	MapHits        uint64  `json:"map_hits"`
	MapMisses      uint64  `json:"map_misses"`
	MapHitRate     float64 `json:"map_hit_rate"`
	MapEvictions   uint64  `json:"map_evictions"`
	MapFlushes     uint64  `json:"map_flushes"`
}

func ftlWire(s Snapshot) ftlViewWire {
	return ftlViewWire{
		MapCacheActive: s.MapCacheActive(),
		MapHits:        s.MapHits,
		MapMisses:      s.MapMisses,
		MapHitRate:     s.MapHitRate(),
		MapEvictions:   s.MapEvictions,
		MapFlushes:     s.MapFlushes,
	}
}

type shardRowWire struct {
	Shard       int     `json:"shard"`
	BusyWindows uint64  `json:"busy_windows"`
	Events      uint64  `json:"events"`
	Utilization float64 `json:"utilization"` // busy windows / total windows
}

type mailboxWire struct {
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Posts uint64 `json:"posts"`
	Peak  int64  `json:"peak_depth"`
}

type shardsViewWire struct {
	Windows      uint64         `json:"windows"`
	Shards       []shardRowWire `json:"shards,omitempty"`
	WindowEvents histWire       `json:"window_events"`
	Mailboxes    []mailboxWire  `json:"mailboxes,omitempty"`
}

func shardsWire(s Snapshot) shardsViewWire {
	out := shardsViewWire{
		Windows:      s.ShardWindows,
		WindowEvents: histogramWire(s.WindowEvents),
	}
	for shard, m := range s.Shards {
		row := shardRowWire{Shard: shard, BusyWindows: m.BusyWindows, Events: m.Events}
		if s.ShardWindows > 0 {
			row.Utilization = float64(m.BusyWindows) / float64(s.ShardWindows)
		}
		out.Shards = append(out.Shards, row)
	}
	sort.Slice(out.Shards, func(i, j int) bool { return out.Shards[i].Shard < out.Shards[j].Shard })
	for k, m := range s.Mailboxes {
		out.Mailboxes = append(out.Mailboxes, mailboxWire{Src: k.Src, Dst: k.Dst, Posts: m.Posts, Peak: m.Peak})
	}
	sort.Slice(out.Mailboxes, func(i, j int) bool {
		if out.Mailboxes[i].Src != out.Mailboxes[j].Src {
			return out.Mailboxes[i].Src < out.Mailboxes[j].Src
		}
		return out.Mailboxes[i].Dst < out.Mailboxes[j].Dst
	})
	return out
}

// histWire is the wire form of a Histogram: summary statistics plus the
// non-zero buckets, keyed by bucket index.
type histWire struct {
	Count   uint64         `json:"count"`
	Sum     int64          `json:"sum"`
	Max     int64          `json:"max"`
	Mean    float64        `json:"mean"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

func histogramWire(h Histogram) histWire {
	out := histWire{Count: h.Count, Sum: h.Sum, Max: h.Max, Mean: h.Mean()}
	for i, n := range h.Buckets {
		if n != 0 {
			if out.Buckets == nil {
				out.Buckets = make(map[int]uint64)
			}
			out.Buckets[i] = n
		}
	}
	return out
}

type chipWire struct {
	Channel int `json:"channel"`
	Chip    int `json:"chip"`
	ChipMetrics
}

type channelWire struct {
	TxnsEnqueued uint64       `json:"TxnsEnqueued"`
	TxnsExecuted uint64       `json:"TxnsExecuted"`
	GateOpens    uint64       `json:"GateOpens"`
	BusyTime     sim.Duration `json:"BusyTime"`
	QueueDepth   histWire     `json:"QueueDepth"`
}

type snapWire struct {
	Events         uint64                 `json:"events"`
	FirstEvent     sim.Time               `json:"first_event_ps"`
	LastEvent      sim.Time               `json:"last_event_ps"`
	SpanPs         sim.Duration           `json:"span_ps"`
	SoftwareTimePs sim.Duration           `json:"software_time_ps"`
	SoftwareCycles int64                  `json:"software_cycles"`
	HardwareTimePs sim.Duration           `json:"hardware_time_ps"`
	SoftwareShare  float64                `json:"software_share"`
	OpsAdmitted    uint64                 `json:"ops_admitted"`
	OpsResumed     uint64                 `json:"ops_resumed"`
	OpsFinished    uint64                 `json:"ops_finished"`
	OpsFailed      uint64                 `json:"ops_failed"`
	AdmissionWaits uint64                 `json:"admission_waits"`
	GateOpens      uint64                 `json:"gate_opens"`
	PollResubmits  uint64                 `json:"poll_resubmits"`
	TxnsEnqueued   uint64                 `json:"txns_enqueued"`
	TxnsPopped     uint64                 `json:"txns_popped"`
	TxnsExecuted   uint64                 `json:"txns_executed"`
	Charges        map[string]ChargeStats `json:"charges,omitempty"`
	TxnBusTime     histWire               `json:"txn_bus_time"`
	QueueDepth     histWire               `json:"queue_depth"`
	OpLatency      histWire               `json:"op_latency"`
	Channels       map[int]channelWire    `json:"channels,omitempty"`
	Chips          []chipWire             `json:"chips,omitempty"`
}

func snapshotWire(s Snapshot) snapWire {
	out := snapWire{
		Events:         s.Events,
		FirstEvent:     s.FirstEvent,
		LastEvent:      s.LastEvent,
		SpanPs:         s.Span(),
		SoftwareTimePs: s.SoftwareTime,
		SoftwareCycles: s.SoftwareCycles,
		HardwareTimePs: s.HardwareTime,
		SoftwareShare:  s.SoftwareShare(),
		OpsAdmitted:    s.OpsAdmitted,
		OpsResumed:     s.OpsResumed,
		OpsFinished:    s.OpsFinished,
		OpsFailed:      s.OpsFailed,
		AdmissionWaits: s.AdmissionWaits,
		GateOpens:      s.GateOpens,
		PollResubmits:  s.PollResubmits,
		TxnsEnqueued:   s.TxnsEnqueued,
		TxnsPopped:     s.TxnsPopped,
		TxnsExecuted:   s.TxnsExecuted,
		Charges:        s.Charges,
		TxnBusTime:     histogramWire(s.TxnBusTime),
		QueueDepth:     histogramWire(s.QueueDepth),
		OpLatency:      histogramWire(s.OpLatency),
	}
	if len(s.Channels) > 0 {
		out.Channels = make(map[int]channelWire, len(s.Channels))
		for ch, m := range s.Channels {
			out.Channels[ch] = channelWire{
				TxnsEnqueued: m.TxnsEnqueued, TxnsExecuted: m.TxnsExecuted,
				GateOpens: m.GateOpens, BusyTime: m.BusyTime,
				QueueDepth: histogramWire(m.QueueDepth),
			}
		}
	}
	if len(s.Chips) > 0 {
		for k, m := range s.Chips {
			out.Chips = append(out.Chips, chipWire{Channel: k.Channel, Chip: k.Chip, ChipMetrics: m})
		}
		sort.Slice(out.Chips, func(i, j int) bool {
			if out.Chips[i].Channel != out.Chips[j].Channel {
				return out.Chips[i].Channel < out.Chips[j].Channel
			}
			return out.Chips[i].Chip < out.Chips[j].Chip
		})
	}
	return out
}
