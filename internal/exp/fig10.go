package exp

import (
	"fmt"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/ssd"
)

// Fig10Point is one bar of Figure 10: read throughput for a package ×
// channel rate × controller × CPU frequency × LUN count.
type Fig10Point struct {
	Package    string
	RateMT     int
	Controller ssd.ControllerKind
	CPUMHz     int // 0 for the hardware baseline
	LUNs       int
	MBps       float64
}

// fig10CPUs are the firmware clocks swept for the software controllers:
// the 150 MHz soft-core case and the scaled ARM cases up to 1 GHz.
var fig10CPUs = []int{150, 200, 400, 1000}

// Fig10 reproduces Figure 10: a read-only workload injected at the FTL
// boundary against every package preset, at 100 and 200 MT/s, for the
// hardware baseline and both BABOL software environments across CPU
// frequencies, varying the number of LUNs per channel. The expected
// shape: throughput rises with LUNs until the channel saturates; the
// hardware controller is frequency-independent; RTOS matches it from
// ≈200 MHz up; the coroutine environment needs a fast CPU, and on slow
// clocks it starves the channel.
func Fig10(opt Options) ([]Fig10Point, error) {
	opt = opt.withDefaults()
	// Enumerate the full configuration grid first, then fan the
	// independent rigs out across the worker pool; out is indexed by
	// job, so results land in enumeration order at any worker count.
	type cfg struct {
		params nand.Params
		rate   int
		luns   int
		ctrl   ssd.ControllerKind
		mhz    int
	}
	var cfgs []cfg
	for _, preset := range nand.Presets() {
		params := shrink(preset, opt.Blocks)
		for _, rate := range []int{100, 200} {
			for _, luns := range opt.WaysList {
				if luns > preset.LUNsPerChannel {
					continue // the Micron module is wired for 2 LUNs only
				}
				cfgs = append(cfgs, cfg{params, rate, luns, ssd.CtrlHW, 1000})
				for _, mhz := range fig10CPUs {
					cfgs = append(cfgs, cfg{params, rate, luns, ssd.CtrlBabolRTOS, mhz})
					cfgs = append(cfgs, cfg{params, rate, luns, ssd.CtrlBabolCoro, mhz})
				}
			}
		}
	}
	out := make([]Fig10Point, len(cfgs))
	err := sweep(opt, len(cfgs), func(i int, tracer obs.Tracer) error {
		c := cfgs[i]
		mbps, err := readThroughput(ssd.BuildConfig{
			Params: c.params, Ways: c.luns, RateMT: c.rate,
			Controller: c.ctrl, CPUMHz: c.mhz, Tracer: tracer,
			NoCoroPool: opt.NoCoroPool,
			Shards:     opt.Shards, HostHop: opt.HostHop,
			ShardTelemetry: opt.ShardTelemetry, TraceShardWindows: opt.TraceShardWindows,
			MapCacheBytes: opt.MapCacheBytes,
		}, hic.Sequential, opt.Ops, 2*c.luns)
		if err != nil {
			return fmt.Errorf("fig10 %s %dMT %v %dMHz %dLUN: %w",
				c.params.Name, c.rate, c.ctrl, c.mhz, c.luns, err)
		}
		out[i] = Fig10Point{
			Package: c.params.Name, RateMT: c.rate, Controller: c.ctrl,
			CPUMHz: c.mhz, LUNs: c.luns, MBps: mbps,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig10CSV renders the sweep as machine-readable CSV for plotting.
func Fig10CSV(points []Fig10Point) string {
	out := "package,rate_mt,controller,cpu_mhz,luns,mbps\n"
	for _, p := range points {
		mhz := p.CPUMHz
		if p.Controller == ssd.CtrlHW {
			mhz = 0
		}
		out += fmt.Sprintf("%s,%d,%s,%d,%d,%.2f\n",
			p.Package, p.RateMT, p.Controller, mhz, p.LUNs, p.MBps)
	}
	return out
}

// RenderFig10 formats the Figure 10 sweep grouped like the paper's
// panels: one block per (package, rate), columns per controller/CPU,
// rows per LUN count.
func RenderFig10(points []Fig10Point) string {
	type key struct {
		pkg  string
		rate int
	}
	type cell struct {
		ctrl ssd.ControllerKind
		mhz  int
	}
	idx := map[key]map[int]map[cell]float64{}
	lunsSeen := map[key]map[int]bool{}
	for _, p := range points {
		k := key{p.Package, p.RateMT}
		if idx[k] == nil {
			idx[k] = map[int]map[cell]float64{}
			lunsSeen[k] = map[int]bool{}
		}
		if idx[k][p.LUNs] == nil {
			idx[k][p.LUNs] = map[cell]float64{}
		}
		mhz := p.CPUMHz
		if p.Controller == ssd.CtrlHW {
			mhz = 0
		}
		idx[k][p.LUNs][cell{p.Controller, mhz}] = p.MBps
		lunsSeen[k][p.LUNs] = true
	}

	var cols []cell
	cols = append(cols, cell{ssd.CtrlHW, 0})
	for _, mhz := range fig10CPUs {
		cols = append(cols, cell{ssd.CtrlBabolRTOS, mhz})
		cols = append(cols, cell{ssd.CtrlBabolCoro, mhz})
	}

	out := ""
	for _, preset := range nand.Presets() {
		for _, rate := range []int{100, 200} {
			k := key{preset.Name, rate}
			if idx[k] == nil {
				continue
			}
			header := fmt.Sprintf("%-5s", "LUNs")
			for _, c := range cols {
				name := "HW"
				if c.ctrl != ssd.CtrlHW {
					name = fmt.Sprintf("%s@%d", c.ctrl, c.mhz)
				}
				header += fmt.Sprintf(" %10s", name)
			}
			var rows []string
			for luns := 1; luns <= 16; luns++ {
				if !lunsSeen[k][luns] {
					continue
				}
				row := fmt.Sprintf("%-5d", luns)
				for _, c := range cols {
					if v, ok := idx[k][luns][c]; ok {
						row += fmt.Sprintf(" %10.1f", v)
					} else {
						row += fmt.Sprintf(" %10s", "-")
					}
				}
				rows = append(rows, row)
			}
			out += table(fmt.Sprintf("Fig 10: %s @ %d MT/s — read throughput (MB/s, channel ceiling %.0f MB/s)\n%s",
				preset.Name, rate, channelCeilingMBps(rate), header), rows)
			out += "\n"
		}
	}
	return out
}
