// Package coro provides deterministic cooperative coroutines: the Go
// equivalent of the C++20 coroutines (and FreeRTOS tasks) BABOL writes
// its flash operations in.
//
// A coroutine is ordinary sequential code that suspends at explicit Yield
// points. Exactly one coroutine runs at a time: Resume hands control to
// the coroutine and blocks until it yields or finishes, so the simulation
// kernel always observes a single logical thread — mirroring the paper's
// single firmware core — and execution is fully deterministic.
//
// Coroutines are backed by goroutines with a strict two-channel handshake.
// The cost of a context switch in *virtual* time is charged separately by
// the controller through cpumodel; the host-level goroutine switch is an
// implementation detail. Creating a goroutine per operation is not free,
// though (~5 allocations and a few µs per New), which is why Pool exists:
// a finished coroutine parks its goroutine on a free list and the next
// Get reuses it with a fresh handshake, at resume-level cost.
package coro

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrAborted is the error a coroutine finishes with when Abort unwinds it
// at a yield point.
var ErrAborted = errors.New("coro: aborted")

// abortSignal is the panic sentinel used to unwind an aborted coroutine.
type abortSignal struct{}

// Coroutine is a suspended computation. Create with New (one goroutine
// per coroutine) or Pool.Get (recycled goroutines); drive with Resume;
// dispose with Abort if abandoning it before completion.
//
// A pooled Coroutine handle is invalidated the moment it finishes (the
// goroutine parks itself for reuse, and a later Pool.Get may hand the
// same handle to a new owner). Resume and Abort on a finished handle
// remain safe no-ops, but callers must drop the handle after observing
// completion rather than stashing it.
type Coroutine struct {
	resume  chan struct{}
	yielded chan struct{}
	// y is the coroutine-side handle, embedded so reuse allocates
	// nothing.
	y Yielder

	// fn is the body of the current run; Pool.Get installs a fresh one
	// on reuse.
	fn func(*Yielder) error

	// The fields below are only touched by the side holding control, and
	// control transfer happens via channel operations, so they need no
	// locking.
	finished bool
	aborted  bool
	// unwinding marks that the abortSignal panic is in flight: deferred
	// cleanup that yields during the unwind runs synchronously (Yield
	// becomes a no-op) instead of suspending a coroutine the driver is
	// tearing down.
	unwinding bool
	stop      bool // tells a parked pooled worker to exit (Pool.Close)
	err       error
}

// Yielder is the coroutine-side handle used to suspend.
type Yielder struct {
	c *Coroutine
}

func newCoroutine(fn func(*Yielder) error) *Coroutine {
	c := &Coroutine{
		resume:  make(chan struct{}),
		yielded: make(chan struct{}),
		fn:      fn,
	}
	c.y.c = c
	return c
}

// New starts fn as a one-shot coroutine: its goroutine exits when fn
// completes. fn does not run until the first Resume. Hot paths that
// create coroutines per operation should use a Pool instead.
func New(fn func(*Yielder) error) *Coroutine {
	c := newCoroutine(fn)
	go func() {
		<-c.resume
		c.err = c.runBody()
		c.finished = true
		c.yielded <- struct{}{}
	}()
	return c
}

// runBody executes the coroutine's function, converting an abort unwind
// into ErrAborted and any other panic into an error that preserves the
// goroutine's stack trace — a firmware panic inside an operation must
// stay debuggable (the originating frame is in the error), not collapse
// to a bare value.
func (c *Coroutine) runBody() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				err = ErrAborted
			} else {
				// Re-panicking here would kill the process on the
				// coroutine's goroutine; surface it as an error the
				// driver can report instead.
				err = fmt.Errorf("coro: panic: %v\n%s", r, debug.Stack())
			}
		}
	}()
	if c.aborted {
		// Aborted before the body ever ran: finish without running fn.
		return ErrAborted
	}
	return c.fn(&c.y)
}

// Resume transfers control to the coroutine until its next Yield or its
// completion. It reports whether the coroutine has finished; once it has,
// Err returns its result and further Resumes are no-ops.
func (c *Coroutine) Resume() (finished bool) {
	if c.finished {
		return true
	}
	c.resume <- struct{}{}
	<-c.yielded
	return c.finished
}

// Finished reports whether the coroutine has run to completion.
func (c *Coroutine) Finished() bool { return c.finished }

// Err returns the coroutine's result. It is meaningful only after
// Finished reports true.
func (c *Coroutine) Err() error { return c.err }

// Abort unwinds a suspended coroutine: its next wake-up panics through
// all its deferred functions and the coroutine finishes with ErrAborted.
// Abort resumes the coroutine until it actually finishes — a deferred
// function that yields during the unwind (cleanup that suspends) is
// driven through its suspensions instead of being abandoned mid-unwind
// with its goroutine parked forever. Aborting a finished coroutine is a
// no-op.
func (c *Coroutine) Abort() {
	if c.finished {
		return
	}
	c.aborted = true
	for !c.finished {
		c.Resume()
	}
}

// Yield suspends the coroutine until the next Resume.
//
// During an abort unwind — after Abort's panic is already in flight —
// Yield returns immediately instead of suspending: a deferred function
// that suspends mid-cleanup runs to completion synchronously rather
// than parking the goroutine against resumes that will never come.
// Coroutine bodies must not recover the abort's panic; swallowing it
// leaves the coroutine in this non-suspending mode.
func (y *Yielder) Yield() {
	c := y.c
	if c.unwinding {
		return
	}
	c.yielded <- struct{}{}
	<-c.resume
	if c.aborted {
		c.unwinding = true
		panic(abortSignal{})
	}
}
