package sim

import "math"

// Percentile reports the p-th percentile (0 < p ≤ 100) of sorted by the
// nearest-rank method: the smallest sample with at least p % of the
// distribution at or below it, rank ⌈p/100·n⌉. The input must already be
// sorted ascending; callers that aggregate incrementally (core's
// LatencyStats) sort once and query many times without re-sorting per
// call. An empty slice reports 0.
func Percentile(sorted []Duration, p float64) Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean reports the average of samples (0 when empty).
func Mean(samples []Duration) Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum Duration
	for _, s := range samples {
		sum += s
	}
	return sum / Duration(len(samples))
}
