// Command ssdsim runs a fio-like workload against a complete simulated
// SSD (host interface → FTL → channel controller → NAND) and reports
// bandwidth, IOPS, latency percentiles, and controller statistics.
//
//	ssdsim -ctrl rtos -ways 8 -pattern random -kind read -ops 2000
//	ssdsim -ctrl hw -kind write -ops 5000     # exercises GC
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/ssd"
)

func main() {
	ctrl := flag.String("ctrl", "rtos", "controller: hw|rtos|coro")
	channels := flag.Int("channels", 1, "independent flash channels")
	pkg := flag.String("package", "Hynix", "NAND preset: Hynix|Toshiba|Micron")
	ways := flag.Int("ways", 8, "LUNs on the channel")
	rate := flag.Int("mt", 200, "channel rate in MT/s")
	mhz := flag.Int("mhz", 1000, "firmware CPU clock in MHz")
	pattern := flag.String("pattern", "sequential", "sequential|random")
	kind := flag.String("kind", "read", "read|write")
	numOps := flag.Int("ops", 1000, "host commands to issue")
	qd := flag.Int("qd", 32, "queue depth")
	blocks := flag.Int("blocks", 64, "blocks per LUN")
	withECC := flag.Bool("ecc", false, "protect pages with SEC-DED ECC")
	copyback := flag.Bool("copyback", false, "GC relocations use NAND copyback (BABOL only)")
	suspend := flag.Bool("suspend-reads", false, "reads preempt GC erases (BABOL only)")
	traceFile := flag.String("trace", "", "replay a host trace file instead of a synthetic pattern")
	flag.Parse()

	params, err := nand.PresetByName(*pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(2)
	}
	params.Geometry.BlocksPerLUN = *blocks

	var kindSel ssd.ControllerKind
	switch *ctrl {
	case "hw":
		kindSel = ssd.CtrlHW
	case "rtos":
		kindSel = ssd.CtrlBabolRTOS
	case "coro":
		kindSel = ssd.CtrlBabolCoro
	default:
		fmt.Fprintf(os.Stderr, "ssdsim: unknown controller %q\n", *ctrl)
		os.Exit(2)
	}

	rig, err := ssd.Build(ssd.BuildConfig{
		Params: params, Channels: *channels, Ways: *ways, RateMT: *rate,
		Controller: kindSel, CPUMHz: *mhz, WithECC: *withECC,
		UseCopyback: *copyback, SuspendReads: *suspend,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(1)
	}
	defer rig.Close()

	pat := hic.Sequential
	if *pattern == "random" {
		pat = hic.Random
	}
	k := hic.KindRead
	if *kind == "write" {
		k = hic.KindWrite
	}

	working := 64 * *ways * *channels
	if working > rig.FTL.LogicalPages() {
		working = rig.FTL.LogicalPages()
	}
	if k == hic.KindRead {
		if err := rig.SSD.Preload(working); err != nil {
			fmt.Fprintln(os.Stderr, "ssdsim:", err)
			os.Exit(1)
		}
	}

	var res *hic.Result
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssdsim:", err)
			os.Exit(1)
		}
		entries, err := hic.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssdsim:", err)
			os.Exit(1)
		}
		res, err = hic.ReplayTrace(rig.Kernel, rig.SSD, entries)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssdsim:", err)
			os.Exit(1)
		}
		*numOps = len(entries)
	} else {
		var err error
		res, err = hic.Run(rig.Kernel, rig.SSD, hic.Workload{
			Pattern: pat, Kind: k,
			NumOps: *numOps, QueueDepth: *qd, LogicalPages: working, Seed: 1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssdsim:", err)
			os.Exit(1)
		}
	}
	rig.Kernel.Run()

	pageBytes := params.Geometry.PageBytes
	fmt.Printf("ssdsim: %s %s on %s, %d ch × %d ways @ %d MT/s, %s controller",
		*pattern, *kind, params.Name, *channels, *ways, *rate, kindSel)
	if kindSel != ssd.CtrlHW {
		fmt.Printf(" (%d MHz)", *mhz)
	}
	fmt.Println()
	fmt.Printf("  completed: %d/%d (%d failed)\n", res.Completed, *numOps, res.Failed)
	fmt.Printf("  elapsed:   %v (virtual)\n", res.Elapsed())
	fmt.Printf("  bandwidth: %.1f MB/s   IOPS: %.0f\n", res.BandwidthMBps(pageBytes), res.IOPS())
	fmt.Printf("  latency:   mean %v, p50 %v, p99 %v\n",
		res.MeanLatency(), res.LatencyPercentile(50), res.LatencyPercentile(99))
	st := rig.SSD.Stats()
	fst := rig.FTL.Stats()
	fmt.Printf("  ssd:       GC cycles %d, ECC corrections %d/%d failures\n",
		st.GCCycles, st.ECCCorrections, st.ECCFailures)
	if k == hic.KindWrite {
		fmt.Printf("  ftl:       write amplification %.2f\n", fst.WriteAmplification())
	}
	_ = fst
}
