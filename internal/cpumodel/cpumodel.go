// Package cpumodel charges virtual time for the controller firmware's
// computation. The paper's central performance question is a race: can
// the software schedule the next transaction before the channel or a LUN
// goes idle? That race depends on the processor frequency (150 MHz
// soft-core … 1 GHz ARM) and on the software environment's per-action
// costs (C++ coroutines are convenient but heavy; the RTOS stack is lean
// but demanding). The model expresses each firmware action as a cycle
// count and converts cycles to virtual time at the modelled frequency.
//
// The CPU is single-core, like the paper's controller processor: firmware
// actions serialize. Exec queues work behind whatever the firmware is
// already doing, which is what makes slow processors fall behind fast
// channels.
package cpumodel

import (
	"fmt"

	"repro/internal/sim"
)

// Profile is the per-action cycle-cost table of one software environment.
type Profile struct {
	Name string

	// SubmitCycles is charged when an operation wraps µFSM instructions
	// into a transaction and enqueues it (the add_transaction of
	// Algorithm 1).
	SubmitCycles int64

	// SwitchCycles is charged for every coroutine/task context switch —
	// suspending one operation and resuming another.
	SwitchCycles int64

	// ScheduleCycles is charged for one scheduler decision (task or
	// transaction scheduler pass).
	ScheduleCycles int64

	// PollCycles is the additional per-iteration overhead of a status
	// polling loop (loop body, result decode, branch back).
	PollCycles int64

	// AdmitCycles is charged when the task scheduler admits a new
	// operation request from the FTL.
	AdmitCycles int64
}

// PollIteration is the total cycle cost of one READ STATUS polling cycle:
// a schedule pass, a switch into the operation, building and submitting
// the status transaction, and the loop overhead. At 1 GHz the paper
// measures ≈30 µs for the coroutine stack (Fig. 11); the Coro profile's
// costs sum to that.
func (p Profile) PollIteration() int64 {
	return p.ScheduleCycles + p.SwitchCycles + p.SubmitCycles + p.PollCycles
}

// Coro returns the cost profile of the C++20-coroutine-style environment:
// programmer-friendly, but every await goes through a heavyweight runtime.
func Coro() Profile {
	return Profile{
		Name:           "Coro",
		SubmitCycles:   4000,
		SwitchCycles:   7000,
		ScheduleCycles: 4000,
		PollCycles:     15000,
		AdmitCycles:    4000,
	}
}

// RTOS returns the cost profile of the FreeRTOS-style environment:
// hand-tuned context switches and static task tables.
func RTOS() Profile {
	return Profile{
		Name:           "RTOS",
		SubmitCycles:   600,
		SwitchCycles:   800,
		ScheduleCycles: 400,
		PollCycles:     1200,
		AdmitCycles:    900,
	}
}

// CPU models the single firmware core. All firmware work must go through
// Exec, which serializes it and charges virtual time.
type CPU struct {
	kernel  *sim.Kernel
	freqMHz int
	profile Profile

	freeAt sim.Time
	stats  Stats
}

// Stats reports accumulated CPU activity.
type Stats struct {
	CyclesCharged int64
	BusyTime      sim.Duration
	Executions    uint64
}

// New builds a CPU at freqMHz running software with the given profile.
func New(k *sim.Kernel, freqMHz int, profile Profile) (*CPU, error) {
	if freqMHz <= 0 {
		return nil, fmt.Errorf("cpumodel: non-positive frequency %d MHz", freqMHz)
	}
	return &CPU{kernel: k, freqMHz: freqMHz, profile: profile}, nil
}

// FreqMHz reports the modelled clock frequency.
func (c *CPU) FreqMHz() int { return c.freqMHz }

// Profile returns the software cost profile.
func (c *CPU) Profile() Profile { return c.profile }

// Stats returns a snapshot of the counters.
func (c *CPU) Stats() Stats { return c.stats }

// CycleTime converts a cycle count to virtual time at this CPU's clock.
func (c *CPU) CycleTime(cycles int64) sim.Duration {
	// cycles / (freqMHz * 1e6) seconds = cycles * 1e6 / freqMHz picoseconds.
	return sim.Duration(cycles * 1_000_000 / int64(c.freqMHz))
}

// Exec schedules fn to run after the firmware has spent the given cycles,
// queued behind any firmware work already in flight. It returns the
// completion time.
func (c *CPU) Exec(cycles int64, fn func()) sim.Time {
	start := c.kernel.Now()
	if c.freeAt > start {
		start = c.freeAt
	}
	d := c.CycleTime(cycles)
	end := start.Add(d)
	c.freeAt = end
	c.stats.CyclesCharged += cycles
	c.stats.BusyTime += d
	c.stats.Executions++
	c.kernel.At(end, fn)
	return end
}

// FreeAt reports when the core finishes its queued work.
func (c *CPU) FreeAt() sim.Time { return c.freeAt }
