package nand

import (
	"repro/internal/onfi"
	"repro/internal/sim"
)

// Multi-plane operation support (ONFI 5.1 §5.9). A multi-plane package
// can run the same array operation on every plane concurrently: the
// controller queues one address per plane (32h for reads, 11h for
// programs, a second 60h for erases) and confirms once; the planes then
// share a single tR/tPROG/tBERS. The payoff is per-LUN parallelism — two
// planes read two pages in one array time.
//
// The model stages queued rows and per-plane data here; the main decoder
// in lun.go dispatches into these helpers.

// tDBSY is the short busy window after queueing one plane of a
// multi-plane operation (the "dummy busy" of the spec).
const tDBSY = 1 * sim.Microsecond

// mpState holds in-flight multi-plane compositions.
type mpState struct {
	// readRows are rows queued with 32h awaiting the final 30h.
	readRows []uint32
	// planeData holds each plane's fetched page after a multi-plane
	// read completes; CHANGE READ COLUMN ENHANCED selects from it.
	planeData map[int][]byte
	// progRows/progData are pages staged with 11h awaiting the final 10h.
	progRows []uint32
	progData [][]byte
	// eraseRows are blocks queued by repeated 60h bursts.
	eraseRows []onfi.RowAddr
}

// queueMPRead handles the 32h confirm: remember the row, go briefly busy.
func (l *LUN) queueMPRead(now sim.Time) error {
	var a5 [5]byte
	copy(a5[:], l.addrBytes)
	addr := l.geo.DecodeAddr(a5)
	if err := l.geo.CheckAddr(addr); err != nil {
		return l.protoErr("multi-plane read address: %v", err)
	}
	row := l.rowIndex(addr.Row)
	plane := l.geo.PlaneOf(addr.Row.Block)
	for _, r := range l.mp.readRows {
		if l.geo.PlaneOf(l.rowOf(r).Block) == plane {
			return l.protoErr("multi-plane read queued two rows on plane %d", plane)
		}
	}
	l.mp.readRows = append(l.mp.readRows, row)
	l.busyUntil = now.Add(tDBSY)
	l.arrayBusyUntil = l.busyUntil
	l.dec = decIdle
	return nil
}

// finishMPRead handles the final 30h of a multi-plane read: every queued
// plane and the final row load concurrently, sharing one tR.
func (l *LUN) finishMPRead(now sim.Time, finalRow uint32) error {
	plane := l.geo.PlaneOf(l.rowOf(finalRow).Block)
	for _, r := range l.mp.readRows {
		if l.geo.PlaneOf(l.rowOf(r).Block) == plane {
			return l.protoErr("multi-plane read confirm reuses plane %d", plane)
		}
	}
	rows := append(append([]uint32{}, l.mp.readRows...), finalRow)
	l.mp.readRows = nil
	l.mp.planeData = make(map[int][]byte)
	var worst sim.Duration
	for _, r := range rows {
		data := make([]byte, l.geo.FullPageBytes())
		l.readArrayInto(r, data)
		l.mp.planeData[l.geo.PlaneOf(l.rowOf(r).Block)] = data
		if d := l.jitterFor(r, l.params.TR); d > worst {
			worst = d
		}
		l.stats.Reads++
	}
	// The final row's data also lands in the ordinary page register, so
	// plain CHANGE READ COLUMN keeps working. Plane buffers are private
	// allocations, so the register view may alias them without the
	// pooled-release bookkeeping.
	l.loadPending = true
	l.loadAliased = false
	l.loadData = l.mp.planeData[plane]
	l.curOp = arrRead
	l.curRow = finalRow
	l.cacheRow = finalRow
	l.arrayBusyUntil = now.Add(worst)
	l.busyUntil = l.arrayBusyUntil
	l.setDataOut(outPage)
	l.dec = decIdle
	l.failPrev = l.failLast
	l.failLast = false
	return nil
}

// selectPlane handles CHANGE READ COLUMN ENHANCED's confirm: route the
// chosen plane's data into the page register and set the column.
func (l *LUN) selectPlane(now sim.Time) error {
	if !l.Ready(now) {
		return l.protoErr("plane select while busy")
	}
	if len(l.addrBytes) != 5 {
		return l.protoErr("CHANGE READ COLUMN ENHANCED with %d address cycles", len(l.addrBytes))
	}
	var a5 [5]byte
	copy(a5[:], l.addrBytes)
	addr := l.geo.DecodeAddr(a5)
	if err := l.geo.CheckAddr(addr); err != nil {
		return l.protoErr("plane select address: %v", err)
	}
	plane := l.geo.PlaneOf(addr.Row.Block)
	data, ok := l.mp.planeData[plane]
	if !ok {
		return l.protoErr("plane %d has no loaded data", plane)
	}
	l.reg = data
	l.regAliased = false
	l.column = int(addr.Col)
	l.setDataOut(outPage)
	l.dec = decIdle
	return nil
}

// queueMPProgram handles the 11h confirm: stage the page register for
// the addressed row and go briefly busy awaiting the next plane.
func (l *LUN) queueMPProgram(now sim.Time) error {
	plane := l.geo.PlaneOf(l.rowOf(l.curRow).Block)
	for _, r := range l.mp.progRows {
		if l.geo.PlaneOf(l.rowOf(r).Block) == plane {
			return l.protoErr("multi-plane program queued two rows on plane %d", plane)
		}
	}
	data := make([]byte, len(l.pageReg))
	copy(data, l.reg)
	l.mp.progRows = append(l.mp.progRows, l.curRow)
	l.mp.progData = append(l.mp.progData, data)
	l.busyUntil = now.Add(tDBSY)
	l.arrayBusyUntil = l.busyUntil
	l.dec = decIdle
	return nil
}

// finishMPProgram commits every staged plane plus the current register
// in one shared tPROG. Any plane's failure raises FAIL.
func (l *LUN) finishMPProgram(now sim.Time, slc bool) error {
	plane := l.geo.PlaneOf(l.rowOf(l.curRow).Block)
	for _, r := range l.mp.progRows {
		if l.geo.PlaneOf(l.rowOf(r).Block) == plane {
			return l.protoErr("multi-plane program confirm reuses plane %d", plane)
		}
	}
	rows := append(append([]uint32{}, l.mp.progRows...), l.curRow)
	datas := append(append([][]byte{}, l.mp.progData...), l.reg)
	l.mp.progRows = nil
	l.mp.progData = nil

	tp := l.params.TPROG
	if slc {
		tp = l.params.TPROGSLC
	}
	var worst sim.Duration
	l.failPrev = l.failLast
	l.failLast = false
	for i, row := range rows {
		block := int(row) / l.geo.PagesPerBlk
		switch {
		case l.bad[block], l.programmed[row]:
			l.failLast = true
		default:
			l.storePage(row, datas[i])
		}
		if d := l.jitterFor(row, tp); d > worst {
			worst = d
		}
		l.stats.Programs++
	}
	l.curOp = arrProgram
	l.arrayBusyUntil = now.Add(worst)
	l.busyUntil = l.arrayBusyUntil
	l.dec = decIdle
	return nil
}
