package nand

import (
	"bytes"
	"testing"

	"repro/internal/onfi"
	"repro/internal/sim"
)

// twoPlane returns a two-plane small geometry.
func twoPlane() Params {
	p := smallParams()
	p.Geometry.Planes = 2
	return p
}

// mpLatchRead queues/confirms a read row with the given confirm command.
func mpLatchRead(t *testing.T, l *LUN, now sim.Time, row onfi.RowAddr, confirm onfi.Cmd) error {
	t.Helper()
	var ls []onfi.Latch
	ls = append(ls, onfi.CmdLatch(onfi.CmdRead1))
	ls = append(ls, l.Params().Geometry.AddrLatches(onfi.Addr{Row: row})...)
	ls = append(ls, onfi.CmdLatch(confirm))
	return l.Latch(now, ls)
}

func TestMPReadProtocol(t *testing.T) {
	l, err := NewLUN(twoPlane())
	if err != nil {
		t.Fatal(err)
	}
	p0 := bytes.Repeat([]byte{0xE0}, 32)
	p1 := bytes.Repeat([]byte{0xE1}, 32)
	if err := l.SeedPage(onfi.RowAddr{Block: 0, Page: 2}, p0); err != nil {
		t.Fatal(err)
	}
	if err := l.SeedPage(onfi.RowAddr{Block: 1, Page: 2}, p1); err != nil {
		t.Fatal(err)
	}

	// Queue plane 0 with 32h: short tDBSY busy.
	if err := mpLatchRead(t, l, 0, onfi.RowAddr{Block: 0, Page: 2}, onfi.CmdMPReadQueue); err != nil {
		t.Fatal(err)
	}
	if l.Ready(0) {
		t.Fatal("ready during tDBSY")
	}
	t1 := sim.Time(tDBSY)
	if !l.Ready(t1) {
		t.Fatal("not ready after tDBSY")
	}
	// Confirm plane 1 with 30h: shared tR.
	if err := mpLatchRead(t, l, t1, onfi.RowAddr{Block: 1, Page: 2}, onfi.CmdRead2); err != nil {
		t.Fatal(err)
	}
	t2 := t1.Add(2 * l.Params().TR)

	// Plane select with 06h…E0h and stream each plane.
	selectPlane := func(now sim.Time, row onfi.RowAddr) {
		t.Helper()
		var ls []onfi.Latch
		ls = append(ls, onfi.CmdLatch(onfi.CmdChangeReadColE1))
		ls = append(ls, l.Params().Geometry.AddrLatches(onfi.Addr{Row: row})...)
		ls = append(ls, onfi.CmdLatch(onfi.CmdChangeReadCol2))
		if err := l.Latch(now, ls); err != nil {
			t.Fatal(err)
		}
	}
	selectPlane(t2, onfi.RowAddr{Block: 1, Page: 2})
	got, err := l.DataOut(t2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p1) {
		t.Errorf("plane 1 data % X", got[:4])
	}
	selectPlane(t2, onfi.RowAddr{Block: 0, Page: 2})
	got, err = l.DataOut(t2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p0) {
		t.Errorf("plane 0 data % X", got[:4])
	}
}

func TestMPReadPlaneReuseRejected(t *testing.T) {
	l, _ := NewLUN(twoPlane())
	if err := mpLatchRead(t, l, 0, onfi.RowAddr{Block: 0}, onfi.CmdMPReadQueue); err != nil {
		t.Fatal(err)
	}
	now := sim.Time(tDBSY)
	// Block 2 is also plane 0: queueing it again must error.
	if err := mpLatchRead(t, l, now, onfi.RowAddr{Block: 2}, onfi.CmdMPReadQueue); err == nil {
		t.Error("plane reuse in queue accepted")
	}
	// Fresh LUN: confirm on the queued plane also errors.
	l2, _ := NewLUN(twoPlane())
	if err := mpLatchRead(t, l2, 0, onfi.RowAddr{Block: 0}, onfi.CmdMPReadQueue); err != nil {
		t.Fatal(err)
	}
	if err := mpLatchRead(t, l2, sim.Time(tDBSY), onfi.RowAddr{Block: 2}, onfi.CmdRead2); err == nil {
		t.Error("plane reuse at confirm accepted")
	}
}

func TestSelectPlaneErrors(t *testing.T) {
	l, _ := NewLUN(twoPlane())
	g := l.Params().Geometry
	sel := func(now sim.Time, row onfi.RowAddr) error {
		var ls []onfi.Latch
		ls = append(ls, onfi.CmdLatch(onfi.CmdChangeReadColE1))
		ls = append(ls, g.AddrLatches(onfi.Addr{Row: row})...)
		ls = append(ls, onfi.CmdLatch(onfi.CmdChangeReadCol2))
		return l.Latch(now, ls)
	}
	// No multi-plane data loaded at all.
	if err := sel(0, onfi.RowAddr{Block: 0}); err == nil {
		t.Error("plane select with no loaded data accepted")
	}
	// Load planes, then select a plane that wasn't part of the read:
	// both planes WERE loaded here, so use a single-plane setup instead.
	l2, _ := NewLUN(twoPlane())
	if err := mpLatchRead(t, l2, 0, onfi.RowAddr{Block: 0}, onfi.CmdMPReadQueue); err != nil {
		t.Fatal(err)
	}
	if err := mpLatchRead(t, l2, sim.Time(tDBSY), onfi.RowAddr{Block: 1}, onfi.CmdRead2); err != nil {
		t.Fatal(err)
	}
	// Wrong confirm command after 06h.
	done := sim.Time(tDBSY).Add(2 * l2.Params().TR)
	var ls []onfi.Latch
	ls = append(ls, onfi.CmdLatch(onfi.CmdChangeReadColE1))
	ls = append(ls, g.AddrLatches(onfi.Addr{Row: onfi.RowAddr{Block: 0}})...)
	ls = append(ls, onfi.CmdLatch(onfi.CmdReadStatus))
	// READ STATUS is always legal and interrupts the sequence; the stale
	// decPlaneSelAddr state must then reject a confirm with a fresh error
	// rather than wedge.
	if err := l2.Latch(done, ls); err != nil {
		t.Logf("interrupting sequence: %v (acceptable)", err)
	}
}

func TestMPProgramProtocol(t *testing.T) {
	l, _ := NewLUN(twoPlane())
	g := l.Params().Geometry
	stage := func(now sim.Time, row onfi.RowAddr, fill byte, confirm onfi.Cmd) {
		t.Helper()
		var ls []onfi.Latch
		ls = append(ls, onfi.CmdLatch(onfi.CmdProgram1))
		ls = append(ls, g.AddrLatches(onfi.Addr{Row: row})...)
		if err := l.Latch(now, ls); err != nil {
			t.Fatal(err)
		}
		if err := l.DataIn(now, bytes.Repeat([]byte{fill}, 16)); err != nil {
			t.Fatal(err)
		}
		if err := l.Latch(now, []onfi.Latch{onfi.CmdLatch(confirm)}); err != nil {
			t.Fatal(err)
		}
	}
	stage(0, onfi.RowAddr{Block: 0, Page: 1}, 0x71, onfi.CmdMPProgramQueue)
	t1 := sim.Time(tDBSY)
	stage(t1, onfi.RowAddr{Block: 1, Page: 1}, 0x72, onfi.CmdProgram2)
	done := t1.Add(2 * l.Params().TPROG)
	if s := l.Status(done); s&onfi.StatusRDY == 0 || s&onfi.StatusFail != 0 {
		t.Fatalf("status %08b", s)
	}
	pg0, _ := l.PeekPage(onfi.RowAddr{Block: 0, Page: 1})
	pg1, _ := l.PeekPage(onfi.RowAddr{Block: 1, Page: 1})
	if pg0[0] != 0x71 || pg1[0] != 0x72 {
		t.Errorf("plane contents %02x %02x", pg0[0], pg1[0])
	}
	// Shared tPROG: not ready halfway through one tPROG? It IS one
	// tPROG total; halfway must still be busy.
	if l.Ready(t1.Add(l.Params().TPROG / 2)) {
		t.Error("multi-plane program finished in half a tPROG")
	}
}

func TestMPEraseProtocol(t *testing.T) {
	l, _ := NewLUN(twoPlane())
	g := l.Params().Geometry
	l.SeedPage(onfi.RowAddr{Block: 2}, []byte{1})
	l.SeedPage(onfi.RowAddr{Block: 3}, []byte{1})
	var ls []onfi.Latch
	ls = append(ls, onfi.CmdLatch(onfi.CmdErase1))
	ls = append(ls, g.RowLatches(onfi.RowAddr{Block: 2})...)
	ls = append(ls, onfi.CmdLatch(onfi.CmdErase1))
	ls = append(ls, g.RowLatches(onfi.RowAddr{Block: 3})...)
	ls = append(ls, onfi.CmdLatch(onfi.CmdErase2))
	if err := l.Latch(0, ls); err != nil {
		t.Fatal(err)
	}
	done := sim.Time(0).Add(2 * l.Params().TBERS)
	if s := l.Status(done); s&onfi.StatusFail != 0 {
		t.Fatalf("status %08b", s)
	}
	if l.EraseCount(2) != 1 || l.EraseCount(3) != 1 {
		t.Error("both planes should be erased once")
	}
	p2, _ := l.PeekPage(onfi.RowAddr{Block: 2})
	if p2[0] != 0xFF {
		t.Error("block 2 not erased")
	}
}
