package repro

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/hic"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// rtfMeasure runs the BenchmarkSimulationSpeed workload shape once and
// returns virtual-seconds per wall-second. Kept in lockstep with
// simulationSpeed in bench_test.go: same rig, same workload scaling,
// same armed shard telemetry on windowed runs — sharded measurements
// also log windows/s and mean events-per-window so a floor failure
// comes with the protocol-cost picture attached.
// shards 0 is the legacy single-kernel path; shards >= 1 runs the
// conservative time-window cluster.
func rtfMeasure(t *testing.T, channels, ways, shards int) float64 {
	t.Helper()
	rig, err := ssd.Build(ssd.BuildConfig{
		Params: benchParams(), Channels: channels, Ways: ways, RateMT: 200,
		Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000, Shards: shards,
		ShardTelemetry: shards >= 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	working := 64 * channels
	if err := rig.SSD.Preload(working); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindRead,
		NumOps: 200 * channels, QueueDepth: 16 * channels, LogicalPages: working,
	}); err != nil {
		t.Fatal(err)
	}
	rig.Run()
	wall := time.Since(start).Seconds()
	if rig.Telemetry != nil {
		snap := rig.Telemetry.Snapshot()
		var events uint64
		for _, s := range snap.Shards {
			events += s.Events
		}
		if snap.Windows > 0 {
			t.Logf("shards=%d: %.0f windows/s, %.1f ev/window (%d windows)",
				shards, float64(snap.Windows)/wall, float64(events)/float64(snap.Windows), snap.Windows)
		}
	}
	return sim.Duration(rig.Now()).Seconds() / wall
}

// TestRealTimeFactorFloor is the CI gate for simulation speed: the
// measured real-time factor must stay above the floors recorded in
// BENCH_9.json. The floors are deliberately far below the numbers a
// development machine measures (see BENCH_9.json's headline) — shared
// CI runners are slow and noisy — so a failure here means a multi-x
// regression in the event engine or the operation hot path, not
// scheduling jitter. The windowed floor additionally guards the
// conservative-window cluster protocol: at shards=1 the window barrier
// and mailbox machinery run with zero parallelism, so a cost blow-up in
// that path (per-window allocation, barrier churn) fails this gate even
// on a single-core runner. Gated behind RTF_FLOOR_CHECK=1 because any
// wall-clock assertion is machine-dependent by nature.
func TestRealTimeFactorFloor(t *testing.T) {
	if os.Getenv("RTF_FLOOR_CHECK") == "" {
		t.Skip("wall-clock floor check; enable with RTF_FLOOR_CHECK=1")
	}
	raw, err := os.ReadFile("BENCH_9.json")
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		CI struct {
			RTFFloor1ch8way          float64 `json:"rtf_floor_1ch_8way"`
			RTFFloorFullDrive8ch8way float64 `json:"rtf_floor_full_drive_8ch_8way"`
			RTFFloorFullDriveWindow  float64 `json:"rtf_floor_full_drive_windowed"`
		} `json:"ci"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.CI.RTFFloor1ch8way <= 0 || bench.CI.RTFFloorFullDrive8ch8way <= 0 ||
		bench.CI.RTFFloorFullDriveWindow <= 0 {
		t.Fatal("BENCH_9.json ci floors missing or zero; the gate is vacuous")
	}
	for _, c := range []struct {
		name           string
		channels, ways int
		shards         int
		floor          float64
	}{
		{"1ch-8way", 1, 8, 0, bench.CI.RTFFloor1ch8way},
		{"full-drive-8ch-8way", 8, 8, 0, bench.CI.RTFFloorFullDrive8ch8way},
		{"full-drive-8ch-8way-windowed", 8, 8, 1, bench.CI.RTFFloorFullDriveWindow},
	} {
		// Best of three: the floor guards against code regressions, so
		// one clean run is evidence enough and transient machine noise
		// should not fail the gate.
		best := 0.0
		for i := 0; i < 3; i++ {
			if rtf := rtfMeasure(t, c.channels, c.ways, c.shards); rtf > best {
				best = rtf
			}
		}
		if best < c.floor {
			t.Errorf("%s: real-time factor %.2f virtual-s/wall-s below floor %.2f (BENCH_9.json)",
				c.name, best, c.floor)
		} else {
			t.Logf("%s: %.2f virtual-s/wall-s (floor %.2f)", c.name, best, c.floor)
		}
	}
}
