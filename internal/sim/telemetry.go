package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Telemetry is the cluster's shard-profiling instrument: per-shard
// event/occupancy counters, per-(src,dst) mailbox accounting, and a
// bounded flight recorder of recent windows. It follows the
// nand.FaultInjector idiom — a nil-check-disarmed hook — so an unarmed
// cluster pays one nil check per window and nothing else, and an armed
// cluster stays allocation-free in steady state: every counter is a
// preallocated atomic and every flight-recorder record reuses its ring
// slot.
//
// Concurrency: the coordinator goroutine owns all writes except
// lastExecNs, which each worker stores for its own shard inside a
// window (the run/done channel pair orders those stores before the
// coordinator's read). Everything exported — Snapshot, and the
// cluster's Windows/Posts — is safe to call from any goroutine while
// Run is in flight, which is what feeds the live /shards endpoint.
type Telemetry struct {
	lookahead Duration
	domains   int
	slots     []telemetrySlot
	// Mailbox matrices, indexed src*domains+dst. Written only by the
	// coordinator (collect/deliver run between windows), atomics so
	// concurrent snapshot reads are well-defined.
	mboxPosts []atomic.Uint64
	mboxDepth []atomic.Int64
	mboxPeak  []atomic.Int64

	// Flight recorder: a ring of the last len(ring) windows. mu guards
	// the ring and total; record() holds it briefly between windows.
	mu    sync.Mutex
	ring  []WindowRecord
	total uint64 // windows recorded since arming

	// winStart is coordinator-local scratch: wall clock at window
	// dispatch, read back by record() after the barrier.
	winStart time.Time
}

// telemetrySlot is one shard's counters. All fields except prevExec are
// atomics readable mid-run; prevExec is coordinator-owned scratch (the
// kernel's Executed high-water mark at the last window boundary).
type telemetrySlot struct {
	events     atomic.Uint64 // events executed while armed
	busy       atomic.Uint64 // windows in which this shard executed events
	execNs     atomic.Int64  // wall nanoseconds inside RunUntil, busy windows only
	barrierNs  atomic.Int64  // wall nanoseconds waiting on the window barrier
	lastExecNs atomic.Int64  // this window's RunUntil wall time (worker-written)
	prevExec   uint64
}

// WindowRecord is one flight-recorder entry: where a window sat in
// virtual time and how much each shard did inside it. Only virtual-time
// quantities are recorded — wall-clock never enters a record, so records
// are deterministic and safe to emit into traces.
type WindowRecord struct {
	Seq    uint64   // 1-based window sequence since arming
	Start  Time     // window start (virtual)
	Span   Duration // window span = cluster lookahead
	Busy   int      // number of shards that executed events
	Events []uint64 // per-shard events executed this window
}

// ShardStats is one shard's aggregate in a TelemetrySnapshot. Windows
// where the shard had no due events are skipped by the dispatcher
// entirely; SkippedWindows counts those (total windows − busy windows).
type ShardStats struct {
	Events         uint64
	BusyWindows    uint64
	SkippedWindows uint64
	Exec           time.Duration // wall time executing events
	Barrier        time.Duration // wall time the window outlived this shard's execution
}

// MailboxStats is one (src,dst) domain pair's post accounting. Depth is
// the current in-flight count (collected, not yet delivered); Peak is
// its high-water mark.
type MailboxStats struct {
	Src   int
	Dst   int
	Posts uint64
	Depth int64
	Peak  int64
}

// TelemetrySnapshot is a self-contained copy of the telemetry state,
// safe to read and serialize while the cluster keeps running.
type TelemetrySnapshot struct {
	Lookahead Duration
	Windows   uint64
	Shards    []ShardStats
	Mailboxes []MailboxStats // pairs with traffic, ordered by (src, dst)
	Recent    []WindowRecord // flight recorder, oldest first
}

// DefaultFlightRecorder is the flight-recorder depth ArmTelemetry uses
// when given a non-positive size.
const DefaultFlightRecorder = 512

// ArmTelemetry attaches a telemetry instrument to the cluster and
// returns it. Call after every AddDomain and before Run — the mailbox
// matrix is sized to the domain count at arming time, and AddDomain
// panics afterwards to keep the two in sync. recorder sets the flight
// recorder depth (windows retained); non-positive means
// DefaultFlightRecorder. Arming twice replaces the instrument.
func (c *Cluster) ArmTelemetry(recorder int) *Telemetry {
	if recorder <= 0 {
		recorder = DefaultFlightRecorder
	}
	nd, ns := len(c.domains), len(c.kernels)
	t := &Telemetry{
		lookahead: c.lookahead,
		domains:   nd,
		slots:     make([]telemetrySlot, ns),
		mboxPosts: make([]atomic.Uint64, nd*nd),
		mboxDepth: make([]atomic.Int64, nd*nd),
		mboxPeak:  make([]atomic.Int64, nd*nd),
		ring:      make([]WindowRecord, recorder),
	}
	for i := range t.ring {
		t.ring[i].Events = make([]uint64, ns)
	}
	for i, k := range c.kernels {
		t.slots[i].prevExec = k.Executed()
	}
	c.telem = t
	return t
}

// Telemetry returns the instrument armed on this cluster, or nil.
func (c *Cluster) Telemetry() *Telemetry { return c.telem }

// noteCollected accounts posts moving from a domain outbox into the
// pending list: one post and one unit of in-flight depth per (src,dst).
func (t *Telemetry) noteCollected(ps []post) {
	for i := range ps {
		idx := ps[i].src*t.domains + ps[i].dst.idx
		t.mboxPosts[idx].Add(1)
		if d := t.mboxDepth[idx].Add(1); d > t.mboxPeak[idx].Load() {
			t.mboxPeak[idx].Store(d)
		}
	}
}

// noteDelivered accounts posts leaving the pending list for their
// target kernels.
func (t *Telemetry) noteDelivered(ps []post) {
	for i := range ps {
		t.mboxDepth[ps[i].src*t.domains+ps[i].dst.idx].Add(-1)
	}
}

// record closes out one window: per-shard event deltas, busy/skip
// outcomes, exec vs. barrier wall attribution, and a flight-recorder
// entry. Called by the coordinator after the window barrier, so every
// kernel and every lastExecNs store is ordered before it.
func (t *Telemetry) record(c *Cluster, start Time) {
	windowWall := int64(time.Since(t.winStart))
	t.mu.Lock()
	rec := &t.ring[t.total%uint64(len(t.ring))]
	t.total++
	rec.Seq = t.total
	rec.Start = start
	rec.Span = t.lookahead
	busy := 0
	for i, k := range c.kernels {
		executed := k.Executed()
		s := &t.slots[i]
		delta := executed - s.prevExec
		s.prevExec = executed
		rec.Events[i] = delta
		if delta == 0 {
			continue
		}
		busy++
		s.events.Add(delta)
		s.busy.Add(1)
		exec := s.lastExecNs.Load()
		s.execNs.Add(exec)
		if wait := windowWall - exec; wait > 0 {
			s.barrierNs.Add(wait)
		}
	}
	rec.Busy = busy
	t.mu.Unlock()
}

// Snapshot deep-copies the telemetry state. Safe concurrently with Run.
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	snap := TelemetrySnapshot{
		Lookahead: t.lookahead,
		Shards:    make([]ShardStats, len(t.slots)),
	}
	t.mu.Lock()
	snap.Windows = t.total
	n := len(t.ring)
	if t.total < uint64(n) {
		n = int(t.total)
	}
	snap.Recent = make([]WindowRecord, n)
	for j := 0; j < n; j++ {
		src := &t.ring[(t.total-uint64(n)+uint64(j))%uint64(len(t.ring))]
		rec := *src
		rec.Events = append([]uint64(nil), src.Events...)
		snap.Recent[j] = rec
	}
	t.mu.Unlock()
	for i := range t.slots {
		s := &t.slots[i]
		busy := s.busy.Load()
		snap.Shards[i] = ShardStats{
			Events:         s.events.Load(),
			BusyWindows:    busy,
			SkippedWindows: snap.Windows - busy,
			Exec:           time.Duration(s.execNs.Load()),
			Barrier:        time.Duration(s.barrierNs.Load()),
		}
	}
	for src := 0; src < t.domains; src++ {
		for dst := 0; dst < t.domains; dst++ {
			idx := src*t.domains + dst
			posts := t.mboxPosts[idx].Load()
			if posts == 0 {
				continue
			}
			snap.Mailboxes = append(snap.Mailboxes, MailboxStats{
				Src: src, Dst: dst, Posts: posts,
				Depth: t.mboxDepth[idx].Load(),
				Peak:  t.mboxPeak[idx].Load(),
			})
		}
	}
	return snap
}
