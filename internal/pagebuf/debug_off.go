//go:build !bufdebug

package pagebuf

// debugState is empty in the normal build; the ownership checks compile
// to nothing.
type debugState struct{}

func (b *Buf) checkLive(string) {}
func (b *Buf) onGet()           {}
func (b *Buf) onRelease()       {}

// DebugEnabled reports whether the bufdebug build tag is active.
const DebugEnabled = false
