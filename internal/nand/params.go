// Package nand models ONFI NAND flash packages with timing- and
// state-accurate LUN behaviour: command decoding, page/cache registers,
// busy intervals (tR/tPROG/tBERS) with deterministic per-page variation,
// pseudo-SLC mode, SET FEATURES (including read-retry voltage levels),
// program/erase suspension, wear accounting, and bit-error injection.
//
// The model replaces the commercial SO-DIMM packages the paper attaches to
// the Cosmos+ platform. A controller observes a package only through ONFI
// waveforms and delays, and the model reproduces exactly those observable
// semantics.
package nand

import (
	"fmt"

	"repro/internal/onfi"
	"repro/internal/sim"
)

// Params describes one package type: geometry, array timings, and
// reliability characteristics.
type Params struct {
	Name     string
	Geometry onfi.Geometry

	TR    sim.Duration // page read: array → page register
	TPROG sim.Duration // page program: page register → array
	TBERS sim.Duration // block erase

	// TRSLC is the pSLC-mode page read time (vendor-specific, faster than
	// TR). Zero disables pSLC support.
	TRSLC sim.Duration
	// TPROGSLC is the pSLC-mode program time.
	TPROGSLC sim.Duration

	// JitterPct bounds the deterministic per-page variation of TR/TPROG
	// (±JitterPct %). Real tR is "highly variable" (paper §V); the model
	// varies it deterministically from the page address.
	JitterPct int

	// LUNsPerChannel is how many LUNs the vendor's SO-DIMM wires onto one
	// channel (8 for the Hynix and Toshiba modules, 2 for the Micron).
	LUNsPerChannel int

	// MaxPECycles is the nominal program/erase endurance of a block.
	MaxPECycles int

	// RawBitErrorPer512B is the expected raw bit errors injected per 512-B
	// codeword at end-of-life wear with the default read voltage.
	RawBitErrorPer512B float64

	// ReadRetryLevels is how many vendor read-retry voltage steps the
	// package exposes via SET FEATURES.
	ReadRetryLevels int

	// IDBytes is what READ ID returns.
	IDBytes []byte

	// BootInSDR makes the instance power up in the ONFI-mandated SDR
	// data interface (§IV-C: "some packages boot in SDR data mode and
	// can only be reconfigured to faster data modes through that
	// interface"): data bursts above 50 MT/s fail until the controller
	// switches the timing mode via SET FEATURES. Off by default so
	// performance experiments skip the boot dance.
	BootInSDR bool

	// PhaseOptimal is the DQS output-phase trim (0–15) at which this
	// package instance's data reads are clean; settings more than one
	// step away return corrupted data. Boards differ per instance
	// (§IV-C: "the controller may need to individually adjust the
	// waveform phase for each package"), so boot-time calibration sweeps
	// the phase feature. Zero means "use the default" (8), which matches
	// the boot register value — i.e. no calibration needed.
	PhaseOptimal int
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("nand: params need a name")
	}
	if err := p.Geometry.Validate(); err != nil {
		return fmt.Errorf("nand: %s: %w", p.Name, err)
	}
	if p.TR <= 0 || p.TPROG <= 0 || p.TBERS <= 0 {
		return fmt.Errorf("nand: %s: array timings must be positive", p.Name)
	}
	if p.JitterPct < 0 || p.JitterPct >= 100 {
		return fmt.Errorf("nand: %s: jitter %d%% out of range", p.Name, p.JitterPct)
	}
	if p.LUNsPerChannel <= 0 {
		return fmt.Errorf("nand: %s: needs at least one LUN per channel", p.Name)
	}
	return nil
}

// WorstCaseBusy reports the longest interval this package may legally
// hold R/B# busy after accepting a command: the slowest array
// operation (normally tBERS) stretched by the jitter bound, but never
// less than the RESET-abort time — the poll-budget derivation in
// internal/onfi sizes status-poll loops from it, so a healthy package
// must always come ready well inside this bound.
func (p Params) WorstCaseBusy() sim.Duration {
	worst := p.TR
	if p.TPROG > worst {
		worst = p.TPROG
	}
	if p.TBERS > worst {
		worst = p.TBERS
	}
	worst += sim.Duration(int64(worst) * int64(p.JitterPct) / 100)
	if worst < TResetAbort {
		worst = TResetAbort
	}
	return worst
}

// defaultGeometry is the 16-KiB-page TLC geometry shared by the paper's
// three modules (Table I lists a 16384-B page read size for all of them).
func defaultGeometry() onfi.Geometry {
	return onfi.Geometry{
		Planes:       2,
		BlocksPerLUN: 1024,
		PagesPerBlk:  256,
		PageBytes:    16384,
		SpareBytes:   1872,
	}
}

// Hynix returns the parameter preset for the Hynix module of Table I
// (page read time 100 µs, 8 LUNs per channel).
func Hynix() Params {
	return Params{
		Name:               "Hynix",
		Geometry:           defaultGeometry(),
		TR:                 100 * sim.Microsecond,
		TPROG:              700 * sim.Microsecond,
		TBERS:              5 * sim.Millisecond,
		TRSLC:              35 * sim.Microsecond,
		TPROGSLC:           200 * sim.Microsecond,
		JitterPct:          5,
		LUNsPerChannel:     8,
		MaxPECycles:        3000,
		RawBitErrorPer512B: 2.0,
		ReadRetryLevels:    7,
		IDBytes:            []byte{0xAD, 0xDE, 0x14, 0xA7, 0x42, 0x4A},
	}
}

// Toshiba returns the preset for the Toshiba module of Table I
// (page read time 78 µs, 8 LUNs per channel).
func Toshiba() Params {
	return Params{
		Name:               "Toshiba",
		Geometry:           defaultGeometry(),
		TR:                 78 * sim.Microsecond,
		TPROG:              600 * sim.Microsecond,
		TBERS:              4 * sim.Millisecond,
		TRSLC:              30 * sim.Microsecond,
		TPROGSLC:           180 * sim.Microsecond,
		JitterPct:          5,
		LUNsPerChannel:     8,
		MaxPECycles:        3000,
		RawBitErrorPer512B: 1.8,
		ReadRetryLevels:    7,
		IDBytes:            []byte{0x98, 0xDE, 0x14, 0xA7, 0x42, 0x4A},
	}
}

// Micron returns the preset for the Micron module of Table I
// (page read time 53 µs, only 2 LUNs per channel).
func Micron() Params {
	return Params{
		Name:               "Micron",
		Geometry:           defaultGeometry(),
		TR:                 53 * sim.Microsecond,
		TPROG:              500 * sim.Microsecond,
		TBERS:              3500 * sim.Microsecond,
		TRSLC:              25 * sim.Microsecond,
		TPROGSLC:           150 * sim.Microsecond,
		JitterPct:          5,
		LUNsPerChannel:     2,
		MaxPECycles:        3000,
		RawBitErrorPer512B: 1.5,
		ReadRetryLevels:    8,
		IDBytes:            []byte{0x2C, 0xDE, 0x14, 0xA7, 0x42, 0x4A},
	}
}

// Presets returns the three Table I packages in paper order.
func Presets() []Params { return []Params{Hynix(), Toshiba(), Micron()} }

// PresetByName looks a preset up case-sensitively.
func PresetByName(name string) (Params, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("nand: unknown package preset %q", name)
}
