package exp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// The experiment harness's parallel sweep runner. Every figure of the
// paper's evaluation is an embarrassingly-parallel sweep of independent
// single-channel rigs — package × rate × controller × CPU frequency ×
// LUN count — and each rig owns its whole world (kernel, channel, LUNs,
// FTL), so rigs can run concurrently without sharing anything. The
// runner fans rig jobs out across a bounded worker pool while keeping
// every simulation kernel single-threaded, and reassembles results in
// input order so sweeps stay deterministic: same configurations in,
// byte-identical tables, CSVs, and traces out, at any worker count.

// workers resolves the sweep's worker-pool size: Options.Parallel if
// set, else one worker per available CPU.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runJobs executes run(0..n-1) on at most workers goroutines. Results
// are whatever run stores at its own index; runJobs only schedules.
// The returned error is the lowest-indexed failure (deterministic no
// matter which worker hit it first), along with its job index; idx is n
// when err is nil. After a failure, workers stop pulling new jobs, but
// jobs already in flight run to completion.
func runJobs(workers, n int, run func(i int) error) (idx int, err error) {
	if n == 0 {
		return n, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return i, err
			}
		}
		return n, nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		errs   = make([]error, n)
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if errs[i] = run(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return i, e
		}
	}
	return n, nil
}

// sweep runs n rig jobs under the worker pool and keeps the shared
// Options.Tracer concurrency-safe: each job traces into a private
// obs.Buffer, and once the sweep settles the buffers are replayed into
// the real tracer in input order. The merged stream is byte-identical
// to a serial run regardless of worker count. On failure, buffers
// before the failing job are still replayed (matching how far a serial
// run would have traced) and the lowest-indexed error is returned.
//
// Options.Live is the opposite trade: it is fed directly from the
// workers as events happen, concurrently and in nondeterministic
// interleaving, so a monitoring endpoint can watch a long sweep in
// flight. The two compose — Live sees events immediately, Tracer sees
// the same events deterministically ordered afterwards.
func sweep(opt Options, n int, body func(i int, tracer obs.Tracer) error) error {
	if opt.Tracer == nil {
		_, err := runJobs(opt.workers(), n, func(i int) error {
			return body(i, opt.Live)
		})
		return err
	}
	bufs := make([]obs.Buffer, n)
	idx, err := runJobs(opt.workers(), n, func(i int) error {
		var tr obs.Tracer = &bufs[i]
		if opt.Live != nil {
			tr = obs.Multi{&bufs[i], opt.Live}
		}
		return body(i, tr)
	})
	for i := 0; i < idx && i < n; i++ {
		bufs[i].ReplayInto(opt.Tracer)
	}
	return err
}
