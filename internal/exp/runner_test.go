package exp

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestRunJobsPreservesOrderAndRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 37
		out := make([]int, n)
		idx, err := runJobs(workers, n, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil || idx != n {
			t.Fatalf("workers=%d: idx=%d err=%v", workers, idx, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestRunJobsZeroJobs(t *testing.T) {
	if idx, err := runJobs(4, 0, func(int) error { t.Fatal("ran"); return nil }); err != nil || idx != 0 {
		t.Fatalf("idx=%d err=%v", idx, err)
	}
}

// The reported error must be the lowest-indexed failure regardless of
// which worker hits an error first, so parallel sweeps fail the same
// way serial ones do.
func TestRunJobsReportsLowestError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		idx, err := runJobs(workers, 20, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("job %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7" || idx != 7 {
			t.Fatalf("workers=%d: idx=%d err=%v, want job 7", workers, idx, err)
		}
	}
}

// After a failure, workers stop pulling new jobs (no point finishing a
// doomed sweep), though jobs in flight complete.
func TestRunJobsStopsAfterFailure(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := runJobs(2, 10000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 10000 {
		t.Error("all jobs ran despite early failure")
	}
}

// sweep must hand each job a private tracer and merge the buffers in
// job order, so the merged stream is independent of worker count.
func TestSweepMergesTracesInJobOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var got []uint64
		opt := Options{Parallel: workers, Tracer: obs.Func(func(e obs.Event) {
			got = append(got, e.OpID)
		})}
		err := sweep(opt, 16, func(i int, tracer obs.Tracer) error {
			for j := 0; j < 3; j++ {
				tracer.Event(obs.Event{OpID: uint64(i*3 + j)})
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 48 {
			t.Fatalf("workers=%d: %d events merged", workers, len(got))
		}
		for i, id := range got {
			if id != uint64(i) {
				t.Fatalf("workers=%d: merged stream out of order at %d: %v", workers, i, got[:i+1])
			}
		}
	}
}

// sweep replays only the buffers before the failing job — exactly as
// far as a serial run would have traced.
func TestSweepReplaysPrefixOnFailure(t *testing.T) {
	var got []uint64
	opt := Options{Parallel: 1, Tracer: obs.Func(func(e obs.Event) {
		got = append(got, e.OpID)
	})}
	err := sweep(opt, 8, func(i int, tracer obs.Tracer) error {
		tracer.Event(obs.Event{OpID: uint64(i)})
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d buffers, want 3 (jobs before the failure)", len(got))
	}
}

// traceRun captures the merged JSONL trace of an experiment run.
func traceRun(t *testing.T, opt Options, run func(Options) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLWriter(&buf)
	opt.Tracer = sink
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelSweepDeterminism is the harness-level guarantee: the same
// sweep at parallel=1 and parallel=8 produces byte-identical structured
// results AND byte-identical merged JSONL traces. Every figure's result
// rows and the -trace output must not depend on worker count.
func TestParallelSweepDeterminism(t *testing.T) {
	base := quick()

	t.Run("fig10", func(t *testing.T) {
		var csv [2]string
		var trace [2][]byte
		for i, par := range []int{1, 8} {
			opt := base
			opt.Parallel = par
			trace[i] = traceRun(t, opt, func(o Options) error {
				pts, err := Fig10(o)
				if err == nil {
					csv[i] = Fig10CSV(pts)
				}
				return err
			})
		}
		if csv[0] != csv[1] {
			t.Error("fig10 results differ between parallel=1 and parallel=8")
		}
		if !bytes.Equal(trace[0], trace[1]) {
			t.Error("fig10 merged traces differ between parallel=1 and parallel=8")
		}
		if len(trace[0]) == 0 {
			t.Error("fig10 trace is empty; determinism check is vacuous")
		}
	})

	t.Run("fig12", func(t *testing.T) {
		var csv [2]string
		var trace [2][]byte
		for i, par := range []int{1, 8} {
			opt := base
			opt.Parallel = par
			opt.Ops = 120
			opt.WaysList = []int{8}
			trace[i] = traceRun(t, opt, func(o Options) error {
				pts, err := Fig12(o)
				if err == nil {
					csv[i] = Fig12CSV(pts)
				}
				return err
			})
		}
		if csv[0] != csv[1] {
			t.Error("fig12 results differ between parallel=1 and parallel=8")
		}
		if !bytes.Equal(trace[0], trace[1]) {
			t.Error("fig12 merged traces differ between parallel=1 and parallel=8")
		}
		if len(trace[0]) == 0 {
			t.Error("fig12 trace is empty; determinism check is vacuous")
		}
	})

	// Chaos adds fault injection to the guarantee: the same fault-plan
	// seeds must produce byte-identical results and traces — fault
	// hits, RESET recoveries, and offlining decisions included — at any
	// worker count.
	t.Run("chaos", func(t *testing.T) {
		seeds := []int64{1, 2, 3, 4, 5, 6}
		var csv [2]string
		var trace [2][]byte
		for i, par := range []int{1, 8} {
			opt := base
			opt.Parallel = par
			trace[i] = traceRun(t, opt, func(o Options) error {
				pts, err := Chaos(o, seeds)
				if err == nil {
					csv[i] = ChaosCSV(pts)
				}
				return err
			})
		}
		if csv[0] != csv[1] {
			t.Error("chaos results differ between parallel=1 and parallel=8")
		}
		if !bytes.Equal(trace[0], trace[1]) {
			t.Error("chaos merged traces differ between parallel=1 and parallel=8")
		}
		if len(trace[0]) == 0 {
			t.Error("chaos trace is empty; determinism check is vacuous")
		}
	})
}
