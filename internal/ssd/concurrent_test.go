package ssd

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hic"
)

// TestConcurrentRigSweepsShareArena is the pooled-buffer ownership
// property test: several complete rigs run storms concurrently
// (`go test -parallel 8`), all drawing page buffers from the shared
// process-wide pagebuf arena (identical geometry → one pool). If any
// layer held a buffer past its Release — or released one it still
// DMA-ed into — pages would leak between rigs and the per-rig
// FillPattern verification below would see another rig's payload (or,
// under `-tags bufdebug`, poison bytes). Each subtest uses a distinct
// seed and workload mix so the rigs are out of phase with each other.
func TestConcurrentRigSweepsShareArena(t *testing.T) {
	for i := 0; i < 8; i++ {
		i := i
		t.Run(fmt.Sprintf("rig%d", i), func(t *testing.T) {
			t.Parallel()
			cfg := smallBuild(CtrlBabolRTOS)
			cfg.Ways = 1 + i%3
			cfg.UseCopyback = i%2 == 1
			rig := mustBuild(t, cfg)
			logical := rig.FTL.LogicalPages()
			rng := rand.New(rand.NewSource(int64(1000 + i)))

			written := make([]bool, logical)
			const storm = 400
			issued := 0
			var issue func()
			issue = func() {
				if issued >= storm {
					return
				}
				issued++
				lpn := rng.Intn(logical)
				kind := hic.KindRead
				// Rigs differ in read/write mix so their pool traffic
				// interleaves differently.
				if rng.Intn(100) < 30+10*(i%4) {
					kind = hic.KindWrite
				}
				if kind == hic.KindWrite {
					rig.SSD.Submit(hic.Command{Kind: hic.KindWrite, LPN: lpn, Done: func(err error) {
						if err != nil {
							t.Errorf("write LPN %d: %v", lpn, err)
						} else {
							written[lpn] = true
						}
						issue()
					}})
					return
				}
				rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) {
					if err != nil {
						t.Errorf("read LPN %d: %v", lpn, err)
					}
					issue()
				}})
			}
			for q := 0; q < 4; q++ {
				issue()
			}
			rig.Kernel.Run()
			if issued != storm {
				t.Fatalf("issued %d of %d", issued, storm)
			}
			if err := rig.FTL.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Quiescent sweep: every page this rig wrote still holds this
			// rig's LPN-derived pattern, byte for byte.
			verify := make([]byte, 512)
			for lpn := 0; lpn < logical; lpn++ {
				if !written[lpn] {
					continue
				}
				loc, ok := rig.FTL.Lookup(lpn)
				if !ok {
					t.Fatalf("written LPN %d unmapped", lpn)
				}
				data, err := rig.SSD.backend.Chip(loc.Chip).PeekPage(loc.Row)
				if err != nil {
					t.Fatal(err)
				}
				FillPattern(verify, lpn)
				for b := range verify {
					if data[b] != verify[b] {
						t.Fatalf("LPN %d corrupt at byte %d: got %#x want %#x (cross-rig aliasing?)", lpn, b, data[b], verify[b])
					}
				}
			}
		})
	}
}
