package onfi

import "fmt"

// Geometry describes the address space of one LUN. All counts are powers
// of two except PageBytes/SpareBytes which are byte sizes.
type Geometry struct {
	Planes       int // planes per LUN
	BlocksPerLUN int // total blocks in the LUN (across planes)
	PagesPerBlk  int
	PageBytes    int // main area bytes per page
	SpareBytes   int // out-of-band bytes per page
}

// Validate checks the geometry for usability.
func (g Geometry) Validate() error {
	switch {
	case g.Planes <= 0:
		return fmt.Errorf("onfi: geometry needs at least one plane, got %d", g.Planes)
	case g.BlocksPerLUN <= 0:
		return fmt.Errorf("onfi: geometry needs blocks, got %d", g.BlocksPerLUN)
	case g.BlocksPerLUN%g.Planes != 0:
		return fmt.Errorf("onfi: %d blocks not divisible by %d planes", g.BlocksPerLUN, g.Planes)
	case g.PagesPerBlk <= 0:
		return fmt.Errorf("onfi: geometry needs pages per block, got %d", g.PagesPerBlk)
	case g.PageBytes <= 0:
		return fmt.Errorf("onfi: geometry needs a page size, got %d", g.PageBytes)
	case g.SpareBytes < 0:
		return fmt.Errorf("onfi: negative spare area %d", g.SpareBytes)
	}
	return nil
}

// Pages reports the total number of pages in the LUN.
func (g Geometry) Pages() int { return g.BlocksPerLUN * g.PagesPerBlk }

// FullPageBytes is main + spare bytes per page.
func (g Geometry) FullPageBytes() int { return g.PageBytes + g.SpareBytes }

// Capacity reports the LUN's main-area capacity in bytes.
func (g Geometry) Capacity() int64 {
	return int64(g.BlocksPerLUN) * int64(g.PagesPerBlk) * int64(g.PageBytes)
}

// RowAddr identifies a page within a LUN: the row address of ONFI.
type RowAddr struct {
	Block int
	Page  int
}

// ColAddr is a byte offset within a page (including spare).
type ColAddr int

// Addr is a full flash address within one LUN.
type Addr struct {
	Row RowAddr
	Col ColAddr
}

// Validate checks the address against the geometry.
func (g Geometry) CheckAddr(a Addr) error {
	if a.Row.Block < 0 || a.Row.Block >= g.BlocksPerLUN {
		return fmt.Errorf("onfi: block %d out of range [0,%d)", a.Row.Block, g.BlocksPerLUN)
	}
	if a.Row.Page < 0 || a.Row.Page >= g.PagesPerBlk {
		return fmt.Errorf("onfi: page %d out of range [0,%d)", a.Row.Page, g.PagesPerBlk)
	}
	if int(a.Col) < 0 || int(a.Col) >= g.FullPageBytes() {
		return fmt.Errorf("onfi: column %d out of range [0,%d)", a.Col, g.FullPageBytes())
	}
	return nil
}

// The standard five-cycle ONFI address: two column cycles then three row
// cycles. Row cycles carry page bits in the low bits and block bits above.

// EncodeAddr produces the five address-latch bytes for a.
func (g Geometry) EncodeAddr(a Addr) [5]byte {
	row := uint32(a.Row.Block)*uint32(g.PagesPerBlk) + uint32(a.Row.Page)
	col := uint16(a.Col)
	return [5]byte{
		byte(col), byte(col >> 8),
		byte(row), byte(row >> 8), byte(row >> 16),
	}
}

// EncodeRowAddr produces the three row-address bytes (used by ERASE, which
// has no column cycles).
func (g Geometry) EncodeRowAddr(r RowAddr) [3]byte {
	row := uint32(r.Block)*uint32(g.PagesPerBlk) + uint32(r.Page)
	return [3]byte{byte(row), byte(row >> 8), byte(row >> 16)}
}

// EncodeColAddr produces the two column-address bytes (used by CHANGE READ
// COLUMN).
func EncodeColAddr(c ColAddr) [2]byte {
	return [2]byte{byte(c), byte(c >> 8)}
}

// DecodeAddr inverts EncodeAddr.
func (g Geometry) DecodeAddr(b [5]byte) Addr {
	col := ColAddr(uint16(b[0]) | uint16(b[1])<<8)
	row := uint32(b[2]) | uint32(b[3])<<8 | uint32(b[4])<<16
	return Addr{
		Row: RowAddr{Block: int(row) / g.PagesPerBlk, Page: int(row) % g.PagesPerBlk},
		Col: col,
	}
}

// DecodeRowAddr inverts EncodeRowAddr.
func (g Geometry) DecodeRowAddr(b [3]byte) RowAddr {
	row := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
	return RowAddr{Block: int(row) / g.PagesPerBlk, Page: int(row) % g.PagesPerBlk}
}

// DecodeColAddr inverts EncodeColAddr.
func DecodeColAddr(b [2]byte) ColAddr {
	return ColAddr(uint16(b[0]) | uint16(b[1])<<8)
}

// AddrLatches builds the five address latches for a full read/program
// address.
func (g Geometry) AddrLatches(a Addr) []Latch {
	bs := g.EncodeAddr(a)
	out := make([]Latch, len(bs))
	for i, b := range bs {
		out[i] = AddrLatch(b)
	}
	return out
}

// RowLatches builds the three row-address latches used by ERASE.
func (g Geometry) RowLatches(r RowAddr) []Latch {
	bs := g.EncodeRowAddr(r)
	out := make([]Latch, len(bs))
	for i, b := range bs {
		out[i] = AddrLatch(b)
	}
	return out
}

// AppendAddrLatches appends the five address latches for a full
// read/program address to dst. Passing a stack-backed dst[:0] builds the
// burst without heap allocation.
func (g Geometry) AppendAddrLatches(dst []Latch, a Addr) []Latch {
	bs := g.EncodeAddr(a)
	for _, b := range bs {
		dst = append(dst, AddrLatch(b))
	}
	return dst
}

// AppendRowLatches appends the three row-address latches used by ERASE
// to dst.
func (g Geometry) AppendRowLatches(dst []Latch, r RowAddr) []Latch {
	bs := g.EncodeRowAddr(r)
	for _, b := range bs {
		dst = append(dst, AddrLatch(b))
	}
	return dst
}

// PlaneOf reports which plane a block belongs to (blocks are interleaved
// round-robin across planes, the common NAND arrangement).
func (g Geometry) PlaneOf(block int) int { return block % g.Planes }
