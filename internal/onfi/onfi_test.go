package onfi

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCmdString(t *testing.T) {
	if got := CmdRead1.String(); got != "READ.1" {
		t.Errorf("CmdRead1 = %q", got)
	}
	if got := Cmd(0xAB).String(); got != "CMD(0xAB)" {
		t.Errorf("unknown cmd = %q", got)
	}
}

func TestStatusReady(t *testing.T) {
	if StatusReady&StatusRDY == 0 {
		t.Error("StatusReady must include RDY")
	}
	if StatusReady&StatusFail != 0 {
		t.Error("StatusReady must not include FAIL")
	}
}

func TestLatchConstructors(t *testing.T) {
	l := CmdLatch(CmdReadStatus)
	if l.Kind != LatchCmd || l.Value != 0x70 {
		t.Errorf("CmdLatch = %+v", l)
	}
	a := AddrLatch(0x5A)
	if a.Kind != LatchAddr || a.Value != 0x5A {
		t.Errorf("AddrLatch = %+v", a)
	}
	if LatchCmd.String() != "CMD" || LatchAddr.String() != "ADDR" {
		t.Error("LatchKind strings wrong")
	}
}

func TestDataModeRates(t *testing.T) {
	if SDR.MaxRateMT() != 50 || NVDDR.MaxRateMT() != 200 || NVDDR2.MaxRateMT() != 533 {
		t.Error("mode ceilings wrong")
	}
	for _, m := range []DataMode{SDR, NVDDR, NVDDR2} {
		if m.String() == "" {
			t.Errorf("empty name for mode %d", m)
		}
	}
}

func TestBusConfigValidate(t *testing.T) {
	ok := BusConfig{Mode: NVDDR2, RateMT: 200}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := BusConfig{Mode: SDR, RateMT: 200}
	if err := bad.Validate(); err == nil {
		t.Error("SDR at 200 MT/s accepted")
	}
	if err := (BusConfig{Mode: NVDDR2, RateMT: 0}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestTransferTiming(t *testing.T) {
	c := BusConfig{Mode: NVDDR2, RateMT: 200}
	if p := c.TransferPeriod(); p != 5*sim.Nanosecond {
		t.Errorf("200 MT/s period = %v, want 5ns", p)
	}
	// A 16 KiB page at 200 MT/s is 81.92 µs of pure data time.
	if d := c.DataTime(16384); d != 81920*sim.Nanosecond {
		t.Errorf("page data time = %v, want 81.92us", d)
	}
	c100 := BusConfig{Mode: NVDDR2, RateMT: 100}
	if d := c100.DataTime(16384); d != 163840*sim.Nanosecond {
		t.Errorf("page data time at 100MT = %v", d)
	}
}

func TestLatchSegmentTiming(t *testing.T) {
	tm := DefaultTiming()
	// READ command+address: 2 command latches + 5 address latches = 7 cycles.
	d := tm.LatchSegment(7)
	want := tm.TCS + 7*(tm.TWP+tm.TWH) + tm.TCH + tm.TWB
	if d != want {
		t.Errorf("LatchSegment(7) = %v, want %v", d, want)
	}
	if tm.LatchSegment(0) != 0 {
		t.Error("empty segment should take no time")
	}
}

func TestDataSegmentTiming(t *testing.T) {
	tm := DefaultTiming()
	cfg := BusConfig{Mode: NVDDR2, RateMT: 200}
	d := tm.DataSegment(cfg, 100)
	want := tm.TDQSS + cfg.DataTime(100) + tm.TRPST
	if d != want {
		t.Errorf("DataSegment = %v, want %v", d, want)
	}
	if tm.DataSegment(cfg, 0) != 0 {
		t.Error("empty data segment should take no time")
	}
}

func testGeometry() Geometry {
	return Geometry{Planes: 2, BlocksPerLUN: 1024, PagesPerBlk: 256, PageBytes: 16384, SpareBytes: 1872}
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeometry().Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []Geometry{
		{Planes: 0, BlocksPerLUN: 8, PagesPerBlk: 8, PageBytes: 512},
		{Planes: 2, BlocksPerLUN: 0, PagesPerBlk: 8, PageBytes: 512},
		{Planes: 3, BlocksPerLUN: 8, PagesPerBlk: 8, PageBytes: 512},
		{Planes: 2, BlocksPerLUN: 8, PagesPerBlk: 0, PageBytes: 512},
		{Planes: 2, BlocksPerLUN: 8, PagesPerBlk: 8, PageBytes: 0},
		{Planes: 2, BlocksPerLUN: 8, PagesPerBlk: 8, PageBytes: 512, SpareBytes: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d accepted", i)
		}
	}
}

func TestGeometryDerived(t *testing.T) {
	g := testGeometry()
	if g.Pages() != 1024*256 {
		t.Errorf("Pages = %d", g.Pages())
	}
	if g.FullPageBytes() != 16384+1872 {
		t.Errorf("FullPageBytes = %d", g.FullPageBytes())
	}
	if g.Capacity() != int64(1024)*256*16384 {
		t.Errorf("Capacity = %d", g.Capacity())
	}
	if g.PlaneOf(0) != 0 || g.PlaneOf(1) != 1 || g.PlaneOf(2) != 0 {
		t.Error("PlaneOf interleave wrong")
	}
}

func TestCheckAddr(t *testing.T) {
	g := testGeometry()
	good := Addr{Row: RowAddr{Block: 1023, Page: 255}, Col: ColAddr(g.FullPageBytes() - 1)}
	if err := g.CheckAddr(good); err != nil {
		t.Errorf("good addr rejected: %v", err)
	}
	bad := []Addr{
		{Row: RowAddr{Block: 1024}},
		{Row: RowAddr{Block: -1}},
		{Row: RowAddr{Page: 256}},
		{Row: RowAddr{Page: -1}},
		{Col: ColAddr(g.FullPageBytes())},
		{Col: -1},
	}
	for i, a := range bad {
		if err := g.CheckAddr(a); err == nil {
			t.Errorf("bad addr %d accepted", i)
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	g := testGeometry()
	f := func(block uint16, page, colLo, colHi uint8) bool {
		a := Addr{
			Row: RowAddr{Block: int(block) % g.BlocksPerLUN, Page: int(page) % g.PagesPerBlk},
			Col: ColAddr(int(uint16(colLo)|uint16(colHi)<<8) % g.FullPageBytes()),
		}
		return g.DecodeAddr(g.EncodeAddr(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowAddrRoundTrip(t *testing.T) {
	g := testGeometry()
	f := func(block uint16, page uint8) bool {
		r := RowAddr{Block: int(block) % g.BlocksPerLUN, Page: int(page) % g.PagesPerBlk}
		return g.DecodeRowAddr(g.EncodeRowAddr(r)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColAddrRoundTrip(t *testing.T) {
	f := func(c uint16) bool {
		return DecodeColAddr(EncodeColAddr(ColAddr(c))) == ColAddr(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrLatches(t *testing.T) {
	g := testGeometry()
	a := Addr{Row: RowAddr{Block: 3, Page: 7}, Col: 0x1234}
	ls := g.AddrLatches(a)
	if len(ls) != 5 {
		t.Fatalf("AddrLatches len = %d", len(ls))
	}
	for _, l := range ls {
		if l.Kind != LatchAddr {
			t.Fatal("AddrLatches produced a non-address latch")
		}
	}
	if ls[0].Value != 0x34 || ls[1].Value != 0x12 {
		t.Errorf("column bytes = %02x %02x", ls[0].Value, ls[1].Value)
	}
	rl := g.RowLatches(RowAddr{Block: 1, Page: 0})
	if len(rl) != 3 {
		t.Fatalf("RowLatches len = %d", len(rl))
	}
	if rl[0].Value != byte(g.PagesPerBlk&0xFF) {
		t.Errorf("row byte 0 = %02x", rl[0].Value)
	}
}
