package ssd

import (
	"math/rand"
	"testing"

	"repro/internal/hic"
)

// TestRandomStormAgainstModel drives the full SSD stack (host interface,
// FTL with GC, BABOL controller, NAND with protocol enforcement) with a
// random mix of reads, writes, and overwrites, checking every read's
// content against an in-memory reference model. It is the integration
// analogue of the per-module property tests: if any layer loses, merges,
// or corrupts a page — including through copyback GC relocations — the
// model disagrees.
func TestRandomStormAgainstModel(t *testing.T) {
	for _, copyback := range []bool{false, true} {
		copyback := copyback
		name := "read-program-gc"
		if copyback {
			name = "copyback-gc"
		}
		t.Run(name, func(t *testing.T) {
			cfg := smallBuild(CtrlBabolRTOS)
			cfg.Channels = 2
			cfg.Ways = 2
			cfg.UseCopyback = copyback
			rig := mustBuild(t, cfg)
			logical := rig.FTL.LogicalPages()

			// The reference model: LPN → whether it has been written.
			// Page content is deterministic from the LPN (FillPattern),
			// so the model only needs the written set.
			written := make([]bool, logical)
			writesInFlight := make([]int, logical)
			rng := rand.New(rand.NewSource(99))

			const storm = 1200
			issued := 0
			verifyBuf := make([]byte, 512)
			var issue func()
			issue = func() {
				if issued >= storm {
					return
				}
				issued++
				lpn := rng.Intn(logical)
				if rng.Intn(2) == 0 {
					writesInFlight[lpn]++
					rig.SSD.Submit(hic.Command{Kind: hic.KindWrite, LPN: lpn, Done: func(err error) {
						writesInFlight[lpn]--
						if err != nil {
							t.Errorf("write LPN %d: %v", lpn, err)
						} else {
							written[lpn] = true
						}
						issue()
					}})
					return
				}
				wasWritten := written[lpn]
				rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) {
					if err != nil {
						t.Errorf("read LPN %d: %v", lpn, err)
					}
					// A written LPN must stay mapped; content checks
					// happen in the quiescent final sweep (mid-storm the
					// mapping legitimately points at in-flight GC
					// relocations whose program has not landed yet).
					if wasWritten && writesInFlight[lpn] == 0 {
						if _, ok := rig.FTL.Lookup(lpn); !ok {
							t.Errorf("written LPN %d unmapped", lpn)
						}
					}
					issue()
				}})
			}
			// Keep four commands in flight.
			for i := 0; i < 4; i++ {
				issue()
			}
			rig.Kernel.Run()
			if issued != storm {
				t.Fatalf("issued %d of %d", issued, storm)
			}
			if err := rig.FTL.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Final sweep: every written LPN reads back clean.
			for lpn := 0; lpn < logical; lpn++ {
				if !written[lpn] {
					continue
				}
				loc, ok := rig.FTL.Lookup(lpn)
				if !ok {
					t.Fatalf("final: LPN %d unmapped", lpn)
				}
				data, err := rig.SSD.backend.Chip(loc.Chip).PeekPage(loc.Row)
				if err != nil {
					t.Fatal(err)
				}
				FillPattern(verifyBuf, lpn)
				for i := range verifyBuf {
					if data[i] != verifyBuf[i] {
						t.Fatalf("final: LPN %d corrupt at byte %d", lpn, i)
					}
				}
			}
		})
	}
}

// TestFullSSDDeterminism runs the identical seeded storm twice and
// requires identical completion timelines — the whole-stack determinism
// property the simulation promises.
func TestFullSSDDeterminism(t *testing.T) {
	run := func() (uint64, int64) {
		cfg := smallBuild(CtrlBabolRTOS)
		cfg.Channels = 2
		rig := mustBuild(t, cfg)
		logical := rig.FTL.LogicalPages()
		if err := rig.SSD.Preload(logical / 2); err != nil {
			t.Fatal(err)
		}
		if _, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
			Pattern: hic.Random, Kind: hic.KindRead,
			NumOps: 200, QueueDepth: 8, LogicalPages: logical / 2, Seed: 1234,
		}); err != nil {
			t.Fatal(err)
		}
		rig.Kernel.Run()
		return rig.Kernel.Executed(), int64(rig.Kernel.Now())
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("non-deterministic: run1=(%d events, %d ps) run2=(%d, %d)", e1, t1, e2, t2)
	}
}

// TestKitchenSinkStorm enables every optional feature at once —
// multi-channel, ECC with GC scrubbing, copyback GC, read-priority erase
// suspension — and verifies the random storm still completes with full
// data integrity. Feature interactions (e.g. copyback skipping the ECC
// scrub, urgent reads riding suspendable erases) are exactly where bugs
// hide.
func TestKitchenSinkStorm(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Channels = 2
	cfg.Ways = 2
	cfg.WithECC = true
	cfg.UseCopyback = true
	cfg.SuspendReads = true
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()

	written := make([]bool, logical)
	rng := rand.New(rand.NewSource(7))
	n := 0
	var issue func()
	issue = func() {
		if n >= 1500 {
			return
		}
		n++
		lpn := rng.Intn(logical)
		kind := hic.KindWrite
		if rng.Intn(3) == 0 {
			kind = hic.KindRead
		}
		rig.SSD.Submit(hic.Command{Kind: kind, LPN: lpn, Done: func(err error) {
			if err != nil {
				t.Errorf("%v LPN %d: %v", kind, lpn, err)
			} else if kind == hic.KindWrite {
				written[lpn] = true
			}
			issue()
		}})
	}
	for i := 0; i < 3; i++ {
		issue()
	}
	rig.Kernel.Run()
	if err := rig.FTL.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := rig.SSD.Stats()
	if st.GCCycles == 0 {
		t.Error("storm never triggered GC")
	}
	// Every written page reads back through the full (ECC-checked) path.
	verified := 0
	for lpn := 0; lpn < logical; lpn++ {
		if !written[lpn] {
			continue
		}
		rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) {
			if err != nil {
				t.Errorf("final read: %v", err)
			}
			verified++
		}})
	}
	rig.Kernel.Run()
	if verified == 0 {
		t.Fatal("nothing verified")
	}
}

// TestWearOutLongevity drives a tiny drive until blocks exceed their
// endurance: the FTL must retire grown-bad blocks transparently and keep
// serving until over-provisioning is truly exhausted.
func TestWearOutLongevity(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Ways = 1
	cfg.Params.MaxPECycles = 6 // wear out fast
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()

	n, failed := 0, 0
	var issue func()
	issue = func() {
		if n >= logical*24 || failed > 0 {
			return
		}
		lpn := n % logical
		n++
		rig.SSD.Submit(hic.Command{Kind: hic.KindWrite, LPN: lpn, Done: func(err error) {
			if err != nil {
				failed++
			}
			issue()
		}})
	}
	issue()
	rig.Kernel.Run()
	retired := rig.FTL.Stats().BadBlocks
	if retired == 0 {
		t.Error("no blocks wore out despite 24× overwrite at 6 P/E cycles")
	}
	if err := rig.FTL.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d pages before first failure; %d blocks retired", n, retired)
}
