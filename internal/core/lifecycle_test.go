package core_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/cpumodel"
	"repro/internal/dram"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/wave"
)

func sampleRow() onfi.RowAddr { return onfi.RowAddr{Block: 1, Page: 0} }
func sampleAddr() onfi.Addr   { return onfi.Addr{Row: sampleRow()} }

// pooledRig is a controller rig built around an explicit shared
// coroutine pool, as ssd.Build wires one per drive.
type pooledRig struct {
	*rig
	pool *coro.Pool
}

func newRigPooled(t *testing.T, chips int) *pooledRig {
	t.Helper()
	k := sim.NewKernel()
	ch, err := bus.New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}, onfi.DefaultTiming(), wave.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chips; i++ {
		l, err := nand.NewLUN(smallParams())
		if err != nil {
			t.Fatal(err)
		}
		ch.Attach(l)
	}
	mem := dram.New(1 << 20)
	cpu, err := cpumodel.New(k, 1000, cpumodel.RTOS())
	if err != nil {
		t.Fatal(err)
	}
	pool := coro.NewPool()
	ctrl, err := core.New(core.Config{Kernel: k, Channel: ch, DRAM: mem, CPU: cpu, CoroPool: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close(); pool.Close() })
	return &pooledRig{rig: &rig{k: k, ch: ch, mem: mem, ctrl: ctrl}, pool: pool}
}

// waitGoroutines polls until the process goroutine count drops to at
// most want — goroutine exit is asynchronous after the final coroutine
// handshake, so an immediate count is racy by construction.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine count stuck at %d, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

// faultyFirmwareStep stands in for a buggy operation routine; its name
// must survive into the reported error.
func faultyFirmwareStep() { panic("LUN index out of range") }

// A panic inside an operation must reach Done as an error carrying the
// firmware stack — the originating function name, not just the panic
// value — or a firmware bug inside an op is undebuggable.
func TestOpPanicReportsFirmwareStack(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	var opErr error
	r.ctrl.Start(core.OpRequest{
		Func: func(ctx *core.Ctx) error {
			ctx.Sleep(1 * sim.Microsecond)
			faultyFirmwareStep()
			return nil
		},
		Chip: 0,
		Done: func(err error) { opErr = err },
	})
	r.k.Run()
	if opErr == nil {
		t.Fatal("panic swallowed: Done saw no error")
	}
	if !strings.Contains(opErr.Error(), "LUN index out of range") {
		t.Errorf("panic value missing from error: %v", opErr)
	}
	if !strings.Contains(opErr.Error(), "faultyFirmwareStep") {
		t.Errorf("originating function missing from error: %v", opErr)
	}
	if st := r.ctrl.Stats(); st.OpsFailed != 1 {
		t.Errorf("stats: %+v", st)
	}
}

// Close must release every operation goroutine — including operations
// suspended mid-flight (in a Sleep, or parked on a transaction) — and
// the controller-owned coroutine pool's parked workers, so a torn-down
// controller leaves no goroutine behind.
func TestCloseWithInFlightOpsReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	r := newRig(t, 2, cpumodel.RTOS(), 1000)
	completed := 0
	neverDone := 0
	// Two well-behaved reads that will finish, plus two "stuck firmware"
	// ops that sleep forever and two parked behind them; the stuck ops
	// are still suspended when Close runs.
	for chip := 0; chip < 2; chip++ {
		if err := r.ch.Chip(chip).SeedPage(sampleRow(), []byte{1}); err != nil {
			t.Fatal(err)
		}
		r.ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(sampleAddr(), 0, 64), Chip: chip,
			Done: func(err error) {
				if err != nil {
					t.Errorf("read: %v", err)
				}
				completed++
			},
		})
		r.ctrl.Start(core.OpRequest{
			Func: func(ctx *core.Ctx) error {
				for {
					ctx.Sleep(1 * sim.Millisecond)
				}
			},
			Chip:  chip,
			Label: "stuck",
			Done:  func(error) { neverDone++ },
		})
		r.ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(sampleAddr(), 0, 64), Chip: chip,
			Done: func(error) { neverDone++ },
		})
	}
	// Run long enough for the first reads to finish and the stuck ops to
	// be admitted and suspended; the sleepers never drain the kernel.
	r.k.RunFor(5 * sim.Millisecond)
	if completed != 2 {
		t.Fatalf("completed %d of 2 well-behaved reads", completed)
	}
	if r.ctrl.Pending() == 0 {
		t.Fatal("nothing in flight; the teardown case is vacuous")
	}
	r.ctrl.Close()
	// A drain after Close must be inert, not resume aborted coroutines.
	r.k.Run()
	if neverDone != 0 {
		t.Errorf("%d aborted ops reported completion", neverDone)
	}
	waitGoroutines(t, base)
}

// A controller handed a shared pool must not close it: the pool belongs
// to the rig, which closes it after all controllers are down.
func TestCloseLeavesSharedPoolOpen(t *testing.T) {
	base := runtime.NumGoroutine()
	r := newRigPooled(t, 1)
	if err := r.ch.Chip(0).SeedPage(sampleRow(), []byte{1}); err != nil {
		t.Fatal(err)
	}
	done := false
	r.ctrl.Start(core.OpRequest{
		Func: ops.ReadPage(sampleAddr(), 0, 64), Chip: 0,
		Done: func(err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			done = true
		},
	})
	r.k.Run()
	if !done {
		t.Fatal("op never completed")
	}
	if r.pool.Parked() == 0 {
		t.Fatal("finished op did not park its coroutine in the shared pool")
	}
	r.ctrl.Close()
	if r.pool.Parked() == 0 {
		t.Error("controller Close tore down the shared pool's workers")
	}
	r.pool.Close()
	waitGoroutines(t, base)
}

// Steady-state operation turnover with the pool keeps the worker count
// flat: a long train of sequential reads reuses one coroutine goroutine
// instead of spawning one each.
func TestPoolHoldsWorkerCountFlat(t *testing.T) {
	r := newRigPooled(t, 1)
	defer r.pool.Close()
	if err := r.ch.Chip(0).SeedPage(sampleRow(), []byte{1}); err != nil {
		t.Fatal(err)
	}
	const reads = 50
	completed := 0
	var next func()
	next = func() {
		r.ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(sampleAddr(), 0, 64), Chip: 0,
			Done: func(err error) {
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				completed++
				if completed < reads {
					next()
				}
			},
		})
	}
	next()
	r.k.Run()
	if completed != reads {
		t.Fatalf("completed %d of %d", completed, reads)
	}
	if n := r.pool.Spawned(); n > 2 {
		t.Errorf("%d coroutine workers spawned for %d sequential reads, want <=2", n, reads)
	}
}
