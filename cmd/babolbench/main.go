// Command babolbench regenerates every table and figure of the paper's
// evaluation (Section VI):
//
//	babolbench table1   Flash memory parameters (Table I)
//	babolbench table2   Lines of code per operation (Table II)
//	babolbench table3   FPGA resources per controller (Table III)
//	babolbench fig9     Algorithm-2 READ waveform (Figure 9)
//	babolbench fig10    Read throughput sweep (Figure 10)
//	babolbench fig11    Polling cadence analysis (Figure 11)
//	babolbench fig12    End-to-end SSD bandwidth (Figure 12)
//	babolbench split    software/hardware time split from the event stream
//	babolbench all      everything above, in paper order
//
// beyond the paper, a robustness soak:
//
//	babolbench chaos
//
// which drives mixed read/write workloads with GC pressure through the
// full SSD while a seeded fault plan injects stuck-busy LUNs, program/
// erase fail storms, uncorrectable-ECC bursts, and erratic tR at the
// NAND boundary, then verifies the drive drained without livelock or
// data loss on unfaulted chips. -seeds picks the number of runs; each
// run's plan derives from its seed alone, so any result reproduces
// exactly (chaos is excluded from `all` so the paper outputs stay
// fault-free).
//
// and a map-cache ablation:
//
//	babolbench mapcache
//
// which sweeps the FTL's translation-DRAM budget over random reads on a
// shrunk-geometry rig, reporting bandwidth and hit/miss/eviction
// counters per budget — the cost curve of demand-paged translations
// (also excluded from `all`). The -mapcache flag instead applies one
// budget to every figure rig, shifting the paper figures by the
// modeled map-read traffic.
//
// and a many-tenant QoS experiment over the multi-queue host frontend:
//
//	babolbench workload
//
// which runs a fixed cast of tenants — a sequential streamer, a zipfian
// hot-set reader, a bursty writer, and a mixed read/write/trim tenant —
// through NVMe-style submission queues sharing one drive, each tenant
// solo and then all contended, and reports per-tenant latency, slowdown,
// and Jain's fairness (also excluded from `all`). -queues sets the
// submission-queue count, -arb picks rr or wrr arbitration, -record
// captures the contended run's host command stream as a hic JSONL trace,
// and -replay plays such a trace back open loop on a fresh rig,
// reproducing the recorded command stream exactly.
//
// plus the software logic analyzer over recorded traces:
//
//	babolbench analyze trace.jsonl
//
// which reconstructs per-op spans (latency breakdown percentiles),
// per-channel Gantt timelines with occupancy statistics, and a protocol
// violation report from a -trace JSONL file; -csv switches the report
// to machine-readable CSV.
//
// Flags scale the runs; the defaults reproduce the full sweeps. The
// sweeps fan independent rigs out across the CPUs (-parallel bounds the
// worker count; -parallel 1 pins the serial order for debugging) and
// reassemble results in configuration order, so output is byte-identical
// at any parallelism. With -trace, every rig's controller event stream
// is appended to one JSONL file (one JSON object per line; see
// internal/obs) for offline analysis or replay through obs.ReadJSONL +
// obs.Metrics; traces are buffered per rig and merged in configuration
// order, so they too are stable under parallelism.
//
// With -http ADDR, babolbench serves live introspection while the
// experiments run: /metrics is a JSON snapshot of the aggregated event
// stream (updated concurrently as rigs execute, safely — the endpoint
// aggregates through a mutex-guarded registry that does not perturb the
// deterministic trace path), /shards is the shard-occupancy view of the
// same registry (per-shard busy windows and utilization, mailbox
// traffic — populated when -shardtrace streams shard-window records
// from sharded rigs), /ftl is the FTL map-cache view (translation
// hit/miss/eviction/flush totals and hit rate — populated when
// -mapcache enables the cache), and the Go pprof handlers are mounted under
// /debug/pprof/ for profiling the simulator itself. Sharded cluster
// workers run under pprof labels (shard=N, domain=...), so /debug/pprof
// profiles break down by shard.
//
// With -shards N -shardtrace, each rig also appends its shard
// flight-recorder windows to the -trace file, and `babolbench analyze`
// renders the shard report (per-shard utilization, barrier-cost
// attribution, critical-path buckets, lookahead sensitivity) from them.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"

	"repro/internal/analyze"
	"repro/internal/exp"
	"repro/internal/hic"
	"repro/internal/obs"
	"repro/internal/sim"
)

// arbitration resolves the -arb flag.
func arbitration(name string) (hic.Arbitration, error) {
	switch name {
	case "rr", "":
		return hic.RoundRobin, nil
	case "wrr":
		return hic.WeightedRoundRobin, nil
	}
	return 0, fmt.Errorf("-arb %q: want rr or wrr", name)
}

// runWorkload is the `babolbench workload` subcommand: with -replay,
// play a recorded hic trace back on a fresh rig; otherwise run the
// many-tenant solo-versus-contended sweep, optionally capturing the
// contended run's command stream with -record.
func runWorkload(c *cli, opt exp.Options) error {
	arb, err := arbitration(c.arb)
	if err != nil {
		return err
	}
	cfg := exp.WorkloadConfig{Queues: c.queues, Arbitration: arb}
	if c.replay != "" {
		f, err := os.Open(c.replay)
		if err != nil {
			return err
		}
		entries, err := hic.ReadJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", c.replay, err)
		}
		res, err := exp.ReplayWorkload(opt, cfg, entries)
		if err != nil {
			return err
		}
		fmt.Printf("replayed %d host commands (%d failed) over %s: mean %s, p99 %s, %.0f IOPS\n",
			res.Done(), res.Failed, res.Elapsed(), res.MeanLatency(),
			res.LatencyPercentile(99), res.IOPS())
		return nil
	}
	if c.record != "" {
		cfg.Recorder = &hic.Recorder{}
	}
	r, err := exp.Workloads(opt, cfg)
	if err != nil {
		return err
	}
	if c.csv {
		fmt.Print(exp.WorkloadCSV(r))
	} else {
		fmt.Println(exp.RenderWorkload(r, arb))
	}
	if c.record != "" {
		f, err := os.Create(c.record)
		if err != nil {
			return err
		}
		if err := cfg.Recorder.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "babolbench: recorded %d host commands to %s\n",
			cfg.Recorder.Len(), c.record)
	}
	return nil
}

// analyzeTrace is the `babolbench analyze` subcommand: decode a JSONL
// trace and run the software logic analyzer over it.
func analyzeTrace(path string, csv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	res := analyze.Analyze(events)
	if csv {
		fmt.Print(res.CSV())
	} else {
		fmt.Print(res.Render())
	}
	return nil
}

// serveIntrospection mounts /metrics and /debug/pprof/ on addr and
// returns the live tracer the experiments should feed. The server stays
// up for the process lifetime; errors binding the socket are fatal
// (asking for introspection and silently not getting it is worse than
// failing).
func serveIntrospection(addr string) (obs.Tracer, error) {
	live := obs.NewSyncMetrics()
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(live.Snapshot))
	mux.Handle("/shards", obs.ShardsHandler(live.Snapshot))
	mux.Handle("/ftl", obs.FTLHandler(live.Snapshot))
	mux.Handle("/tenants", obs.TenantsHandler(live.Snapshot))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-http %s: %w", addr, err)
	}
	fmt.Fprintf(os.Stderr, "babolbench: live introspection on http://%s/metrics\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "babolbench: introspection server:", err)
		}
	}()
	return live, nil
}

// cli holds babolbench's parsed flags. The flag set is built on an
// injectable FlagSet so the parsing and resolution rules are testable:
// -parallel and -shards share one convention — 0 means "size to the
// CPUs" (runtime.GOMAXPROCS(0)); -shards -1 keeps the legacy unsharded
// kernel (the default), since sharding changes the modeled timing by
// the -hosthop latency.
type cli struct {
	fs        *flag.FlagSet
	csv       bool
	ops       int
	blocks    int
	trace     string
	shardTr   bool
	parallel  int
	shards    int
	hosthopUS float64
	seeds     int
	httpAddr  string
	mapCache  int64
	queues    int
	arb       string
	record    string
	replay    string
}

func newCLI(errOut io.Writer) *cli {
	c := &cli{fs: flag.NewFlagSet("babolbench", flag.ContinueOnError)}
	c.fs.SetOutput(errOut)
	c.fs.BoolVar(&c.csv, "csv", false, "emit fig10/fig12/split as CSV instead of tables")
	c.fs.IntVar(&c.ops, "ops", 240, "host operations per measured configuration")
	c.fs.IntVar(&c.blocks, "blocks", 64, "blocks per LUN (throughput runs do not need full arrays)")
	c.fs.StringVar(&c.trace, "trace", "", "append controller events to this JSONL file")
	c.fs.BoolVar(&c.shardTr, "shardtrace", false, "flush each sharded rig's shard-window flight recorder into the trace (feeds the analyze shard report and /shards; implies per-rig telemetry, needs -shards >= 1)")
	c.fs.IntVar(&c.parallel, "parallel", 0, "rigs simulated concurrently (0 = one per CPU, 1 = serial; results are identical at any setting)")
	c.fs.IntVar(&c.shards, "shards", -1, "event-kernel shards per rig (0 = one per CPU, 1 = windowed single kernel, -1 = legacy unsharded; results are identical at any setting >= 1)")
	c.fs.Float64Var(&c.hosthopUS, "hosthop", 0, "modeled host<->channel hop latency in microseconds for sharded rigs (0 = the 1us default)")
	c.fs.IntVar(&c.seeds, "seeds", 8, "number of seeded fault plans for the chaos soak")
	c.fs.StringVar(&c.httpAddr, "http", "", "serve live metrics (/metrics) and pprof (/debug/pprof/) on this address during the run, e.g. :6060")
	c.fs.Int64Var(&c.mapCache, "mapcache", 0, "FTL translation-map DRAM budget in bytes (map pages demand-paged, misses charged as NAND reads; 0 = whole map resident)")
	c.fs.IntVar(&c.queues, "queues", 0, "workload: frontend submission-queue count (0 = one per tenant; tenants share queues when fewer)")
	c.fs.StringVar(&c.arb, "arb", "rr", "workload: submission-queue arbitration, rr or wrr (wrr gives queue 0 a 4-command burst)")
	c.fs.StringVar(&c.record, "record", "", "workload: write the contended run's host command stream to this hic JSONL trace")
	c.fs.StringVar(&c.replay, "replay", "", "workload: replay this hic JSONL trace on a fresh rig instead of the synthetic tenants")
	c.fs.Usage = func() {
		fmt.Fprintf(errOut, "usage: babolbench [-ops N] [-blocks N] [-parallel N] [-shards N] [-shardtrace] [-mapcache BYTES] [-trace out.jsonl] [-http :PORT] table1|table2|table3|fig9|fig10|fig11|fig12|split|all\n")
		fmt.Fprintf(errOut, "       babolbench [-ops N] [-parallel N] [-shards N] [-trace out.jsonl] mapcache\n")
		fmt.Fprintf(errOut, "       babolbench [-ops N] [-seeds N] [-parallel N] [-shards N] [-mapcache BYTES] [-trace out.jsonl] chaos\n")
		fmt.Fprintf(errOut, "       babolbench [-ops N] [-queues N] [-arb rr|wrr] [-parallel N] [-shards N] [-record cmds.jsonl | -replay cmds.jsonl] [-trace out.jsonl] workload\n")
		fmt.Fprintf(errOut, "       babolbench [-csv] analyze trace.jsonl\n")
		c.fs.PrintDefaults()
	}
	return c
}

// options resolves the parsed flags into experiment options. Both pool
// sizes resolve 0 to the CPU count; -parallel does so inside the exp
// runner (Options.workers), -shards here, because ssd.BuildConfig
// reserves Shards == 0 for the legacy path.
func (c *cli) options() exp.Options {
	opt := exp.Options{Ops: c.ops, Blocks: c.blocks, WaysList: []int{2, 4, 8}, Parallel: c.parallel}
	switch {
	case c.shards == 0:
		opt.Shards = runtime.GOMAXPROCS(0)
	case c.shards > 0:
		opt.Shards = c.shards
	}
	if c.hosthopUS > 0 {
		opt.HostHop = sim.Duration(c.hosthopUS * float64(sim.Microsecond))
	}
	if c.shardTr {
		opt.ShardTelemetry = true
		opt.TraceShardWindows = true
	}
	opt.MapCacheBytes = c.mapCache
	return opt
}

func main() {
	c := newCLI(os.Stderr)
	if err := c.fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	csv, trace, seeds, httpAddr := &c.csv, &c.trace, &c.seeds, &c.httpAddr
	if c.fs.Arg(0) == "analyze" {
		if c.fs.NArg() != 2 {
			c.fs.Usage()
			os.Exit(2)
		}
		if err := analyzeTrace(c.fs.Arg(1), *csv); err != nil {
			fmt.Fprintln(os.Stderr, "babolbench:", err)
			os.Exit(1)
		}
		return
	}
	if c.fs.NArg() != 1 {
		c.fs.Usage()
		os.Exit(2)
	}
	opt := c.options()
	if *httpAddr != "" {
		live, err := serveIntrospection(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "babolbench:", err)
			os.Exit(1)
		}
		opt.Live = live
	}

	var sink *obs.JSONLWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "babolbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = obs.NewJSONLWriter(f)
		opt.Tracer = sink
	}

	var run func(name string) error
	run = func(name string) error {
		switch name {
		case "table1":
			fmt.Println(exp.RenderTable1())
		case "table2":
			out, err := exp.RenderTable2()
			if err != nil {
				return err
			}
			fmt.Println(out)
		case "table3":
			fmt.Println(exp.RenderTable3())
		case "fig9":
			out, err := exp.Fig9()
			if err != nil {
				return err
			}
			fmt.Println(out)
		case "fig10":
			pts, err := exp.Fig10(opt)
			if err != nil {
				return err
			}
			if *csv {
				fmt.Print(exp.Fig10CSV(pts))
			} else {
				fmt.Println(exp.RenderFig10(pts))
			}
		case "fig11":
			res, err := exp.Fig11(opt)
			if err != nil {
				return err
			}
			fmt.Println(exp.RenderFig11(res))
		case "fig12":
			f12 := opt
			f12.WaysList = []int{1, 2, 4, 8}
			pts, err := exp.Fig12(f12)
			if err != nil {
				return err
			}
			if *csv {
				fmt.Print(exp.Fig12CSV(pts))
			} else {
				fmt.Println(exp.RenderFig12(pts))
			}
		case "chaos":
			list := make([]int64, *seeds)
			for i := range list {
				list[i] = int64(i + 1)
			}
			pts, err := exp.Chaos(opt, list)
			if err != nil {
				return err
			}
			if *csv {
				fmt.Print(exp.ChaosCSV(pts))
			} else {
				fmt.Println(exp.RenderChaos(pts))
			}
		case "mapcache":
			pts, err := exp.MapCache(opt, nil)
			if err != nil {
				return err
			}
			if *csv {
				fmt.Print(exp.MapCacheCSV(pts))
			} else {
				fmt.Println(exp.RenderMapCache(pts))
			}
		case "workload":
			return runWorkload(c, opt)
		case "split":
			rows, err := exp.TimeSplit(opt)
			if err != nil {
				return err
			}
			if *csv {
				fmt.Print(exp.TimeSplitCSV(rows))
			} else {
				fmt.Println(exp.RenderTimeSplit(rows))
			}
		case "all":
			for _, n := range []string{"table1", "table2", "table3", "fig9", "fig10", "fig11", "fig12", "split"} {
				if err := run(n); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	err := run(c.fs.Arg(0))
	if sink != nil {
		if ferr := sink.Flush(); err == nil && ferr != nil {
			err = fmt.Errorf("writing trace: %w", ferr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "babolbench:", err)
		os.Exit(1)
	}
}
