package ssd

import (
	"testing"

	"repro/internal/hic"
)

// mapCacheBuild widens smallBuild's logical space to 8 translation
// pages (64 blocks × 2 ways) so a 512-byte budget — one resident page
// per map shard — keeps the clock evicting at test-scale op counts.
func mapCacheBuild(budget int64) BuildConfig {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Params.Geometry.BlocksPerLUN = 64
	cfg.MapCacheBytes = budget
	return cfg
}

// runRandomReads preloads a working set and drives the same seeded
// random-read workload on any rig, so cached and uncached runs are
// comparable op for op.
func runRandomReads(t *testing.T, rig *Rig, ops int) *hic.Result {
	t.Helper()
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical); err != nil {
		t.Fatal(err)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindRead,
		NumOps: ops, QueueDepth: 4, LogicalPages: logical, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Completed != ops || res.Failed != 0 {
		t.Fatalf("workload: %d completed, %d failed (want %d / 0)", res.Completed, res.Failed, ops)
	}
	return res
}

// TestMapCacheMissesCostRealTime is the integration pin for the
// tentpole's miss model: the same random-read workload must finish
// strictly later in virtual time on a DRAM-starved rig than on one
// with the whole map resident, because every miss charges a NAND read
// of the translation page through the ordinary ops path.
func TestMapCacheMissesCostRealTime(t *testing.T) {
	const ops = 200
	baseline := mustBuild(t, mapCacheBuild(0))
	resBase := runRandomReads(t, baseline, ops)
	if cs := baseline.FTL.CacheStats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("disabled cache moved counters: %+v", cs)
	}

	starved := mustBuild(t, mapCacheBuild(512))
	resStarved := runRandomReads(t, starved, ops)
	cs := starved.FTL.CacheStats()
	if cs.Misses == 0 || cs.Hits == 0 {
		t.Fatalf("starved rig should both hit and miss, got %+v", cs)
	}
	if cs.Evictions == 0 {
		t.Errorf("one slot per shard over 4 groups should evict, got %+v", cs)
	}
	if resStarved.Elapsed() <= resBase.Elapsed() {
		t.Errorf("map misses cost nothing: starved %v <= resident %v",
			resStarved.Elapsed(), resBase.Elapsed())
	}

	// Correctness must not depend on residency: spot-check data after
	// the cache has churned.
	loc, ok := starved.FTL.Lookup(3)
	if !ok {
		t.Fatal("LPN 3 unmapped after preload")
	}
	page, err := starved.Channel.Chip(loc.Chip).PeekPage(loc.Row)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 512)
	FillPattern(want, 3)
	for i := range want {
		if page[i] != want[i] {
			t.Fatalf("stored byte %d = %02x, want %02x", i, page[i], want[i])
		}
	}
}

// TestMapCacheWritePath pins the write-side gate: host writes acquire
// the translation page before taking a DRAM slot (the comment in
// write() explains the one-slot deadlock this ordering avoids), and
// write-dirtied pages flush on eviction.
func TestMapCacheWritePath(t *testing.T) {
	rig := mustBuild(t, mapCacheBuild(512))
	logical := rig.FTL.LogicalPages()
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindWrite,
		NumOps: 200, QueueDepth: 4, LogicalPages: logical, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Completed != 200 || res.Failed != 0 {
		t.Fatalf("workload: %d completed, %d failed", res.Completed, res.Failed)
	}
	cs := rig.FTL.CacheStats()
	if cs.Misses == 0 {
		t.Fatalf("random writes over 8 map pages never missed: %+v", cs)
	}
	if cs.Flushes == 0 {
		t.Errorf("evicting write-dirtied pages should flush: %+v", cs)
	}
	if err := rig.FTL.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMapCacheMetricsRollup pins the observability chain: KindMapCache
// events emitted by the SSD layer must land in the metrics snapshot
// and flip MapCacheActive, while an uncached rig's snapshot keeps the
// FTL section dormant (that gate is what keeps legacy analyze goldens
// byte-identical).
func TestMapCacheMetricsRollup(t *testing.T) {
	cfg := mapCacheBuild(512)
	cfg.Observe = true
	rig := mustBuild(t, cfg)
	runRandomReads(t, rig, 200)
	s := rig.Metrics.Snapshot()
	if !s.MapCacheActive() {
		t.Fatal("MapCacheActive false after cached run")
	}
	cs := rig.FTL.CacheStats()
	if s.MapHits != cs.Hits || s.MapMisses != cs.Misses ||
		s.MapEvictions != cs.Evictions || s.MapFlushes != cs.Flushes {
		t.Errorf("snapshot {%d %d %d %d} != FTL counters %+v",
			s.MapHits, s.MapMisses, s.MapEvictions, s.MapFlushes, cs)
	}
	if s.MapHitRate() <= 0 || s.MapHitRate() >= 1 {
		t.Errorf("MapHitRate = %v, want in (0,1)", s.MapHitRate())
	}

	plain := mapCacheBuild(0)
	plain.Observe = true
	rig2 := mustBuild(t, plain)
	runRandomReads(t, rig2, 50)
	if s2 := rig2.Metrics.Snapshot(); s2.MapCacheActive() {
		t.Error("uncached rig reports MapCacheActive")
	}
}
