package ecc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCodeword(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	cw := make([]byte, CodewordBytes)
	rng.Read(cw)
	return cw
}

func TestEncodeRejectsBadLength(t *testing.T) {
	if _, err := Encode(make([]byte, 10)); err == nil {
		t.Error("short codeword accepted")
	}
	if _, err := Decode(make([]byte, 10), [ParityBytes]byte{}); err == nil {
		t.Error("short decode accepted")
	}
}

func TestCleanRoundTrip(t *testing.T) {
	cw := randomCodeword(1)
	p, err := Encode(cw)
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]byte(nil), cw...)
	n, err := Decode(cw, p)
	if err != nil || n != 0 {
		t.Fatalf("clean decode: n=%d err=%v", n, err)
	}
	if !bytes.Equal(cw, orig) {
		t.Error("clean decode modified data")
	}
}

func TestSingleBitCorrection(t *testing.T) {
	for _, bit := range []int{0, 1, 7, 8, 100, 2048, CodewordBytes*8 - 1} {
		cw := randomCodeword(2)
		p, _ := Encode(cw)
		orig := append([]byte(nil), cw...)
		cw[bit/8] ^= 1 << (bit % 8)
		n, err := Decode(cw, p)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		if n != 1 {
			t.Fatalf("bit %d: corrected %d", bit, n)
		}
		if !bytes.Equal(cw, orig) {
			t.Fatalf("bit %d: wrong correction", bit)
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	cw := randomCodeword(3)
	p, _ := Encode(cw)
	cw[0] ^= 1
	cw[100] ^= 0x10
	_, err := Decode(cw, p)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("double error not detected: %v", err)
	}
}

// Property: decode(encode(x)) == x, and any single flip is repaired.
func TestSECProperty(t *testing.T) {
	f := func(seed int64, bitRaw uint16) bool {
		bit := int(bitRaw) % (CodewordBytes * 8)
		cw := randomCodeword(seed)
		p, err := Encode(cw)
		if err != nil {
			return false
		}
		orig := append([]byte(nil), cw...)
		cw[bit/8] ^= 1 << (bit % 8)
		n, err := Decode(cw, p)
		return err == nil && n == 1 && bytes.Equal(cw, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: any double flip is flagged, never silently miscorrected.
func TestDEDProperty(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint16) bool {
		a := int(aRaw) % (CodewordBytes * 8)
		b := int(bRaw) % (CodewordBytes * 8)
		if a == b {
			return true // same bit twice is no error
		}
		cw := randomCodeword(seed)
		p, _ := Encode(cw)
		cw[a/8] ^= 1 << (a % 8)
		cw[b/8] ^= 1 << (b % 8)
		_, err := Decode(cw, p)
		return errors.Is(err, ErrUncorrectable)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPageParityBytes(t *testing.T) {
	if got := PageParityBytes(16384); got != 32*ParityBytes {
		t.Errorf("16KiB page parity = %d", got)
	}
	if got := PageParityBytes(1); got != ParityBytes {
		t.Errorf("1-byte page parity = %d", got)
	}
	if got := PageParityBytes(0); got != 0 {
		t.Errorf("empty page parity = %d", got)
	}
}

func TestPageRoundTrip(t *testing.T) {
	page := make([]byte, 16384)
	rand.New(rand.NewSource(7)).Read(page)
	parity := EncodePage(page)
	if len(parity) != PageParityBytes(len(page)) {
		t.Fatalf("parity length %d", len(parity))
	}
	orig := append([]byte(nil), page...)

	// Flip one bit in three different codewords.
	for _, bit := range []int{5, 512*8 + 9, 16*512*8 + 100} {
		page[bit/8] ^= 1 << (bit % 8)
	}
	n, err := DecodePage(page, parity)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("corrected %d bits, want 3", n)
	}
	if !bytes.Equal(page, orig) {
		t.Error("page not fully repaired")
	}
}

func TestPagePartialTailCodeword(t *testing.T) {
	page := make([]byte, 700) // 1 full + 1 partial codeword
	rand.New(rand.NewSource(8)).Read(page)
	parity := EncodePage(page)
	orig := append([]byte(nil), page...)
	page[650] ^= 0x40 // flip in the tail
	n, err := DecodePage(page, parity)
	if err != nil || n != 1 {
		t.Fatalf("tail correction: n=%d err=%v", n, err)
	}
	if !bytes.Equal(page, orig) {
		t.Error("tail not repaired")
	}
}

func TestPageUncorrectable(t *testing.T) {
	page := make([]byte, 1024)
	parity := EncodePage(page)
	page[0] ^= 3 // two flips in codeword 0
	if _, err := DecodePage(page, parity); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("err = %v", err)
	}
	if _, err := DecodePage(page, parity[:1]); err == nil {
		t.Error("short parity accepted")
	}
}

func BenchmarkEncodeCodeword(b *testing.B) {
	cw := randomCodeword(1)
	b.SetBytes(CodewordBytes)
	for i := 0; i < b.N; i++ {
		if _, err := Encode(cw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePage16K(b *testing.B) {
	page := make([]byte, 16384)
	rand.New(rand.NewSource(9)).Read(page)
	parity := EncodePage(page)
	b.SetBytes(16384)
	for i := 0; i < b.N; i++ {
		if _, err := DecodePage(page, parity); err != nil {
			b.Fatal(err)
		}
	}
}
