package main

import (
	"io"
	"runtime"
	"testing"

	"repro/internal/hic"
	"repro/internal/sim"
)

// TestFlagParsing pins the CLI resolution rules: -parallel and -shards
// share the "0 sizes to the CPUs" convention, -shards defaults to the
// legacy unsharded kernel, and -hosthop converts microseconds into the
// cluster lookahead.
func TestFlagParsing(t *testing.T) {
	parse := func(t *testing.T, args ...string) *cli {
		t.Helper()
		c := newCLI(io.Discard)
		if err := c.fs.Parse(args); err != nil {
			t.Fatalf("parse %v: %v", args, err)
		}
		return c
	}

	t.Run("defaults", func(t *testing.T) {
		c := parse(t, "fig10")
		opt := c.options()
		// -parallel 0 resolves inside the exp runner; the option must
		// pass through unmodified so that resolution stays in one place.
		if c.parallel != 0 || opt.Parallel != 0 {
			t.Errorf("default parallel = %d (opt %d), want 0", c.parallel, opt.Parallel)
		}
		// -shards defaults to legacy: Shards 0 keeps the single kernel.
		if opt.Shards != 0 {
			t.Errorf("default Shards = %d, want 0 (legacy)", opt.Shards)
		}
		if opt.HostHop != 0 {
			t.Errorf("default HostHop = %v, want 0 (builder default)", opt.HostHop)
		}
		if opt.ShardTelemetry || opt.TraceShardWindows {
			t.Error("shard telemetry armed without -shardtrace")
		}
		if c.fs.Arg(0) != "fig10" {
			t.Errorf("positional arg = %q, want fig10", c.fs.Arg(0))
		}
	})

	t.Run("shards-zero-is-one-per-cpu", func(t *testing.T) {
		opt := parse(t, "-shards", "0", "fig12").options()
		if want := runtime.GOMAXPROCS(0); opt.Shards != want {
			t.Errorf("-shards 0 resolved to %d, want GOMAXPROCS %d", opt.Shards, want)
		}
	})

	t.Run("shards-explicit", func(t *testing.T) {
		opt := parse(t, "-shards", "4", "-hosthop", "2.5", "chaos").options()
		if opt.Shards != 4 {
			t.Errorf("Shards = %d, want 4", opt.Shards)
		}
		if want := sim.Duration(2.5 * float64(sim.Microsecond)); opt.HostHop != want {
			t.Errorf("HostHop = %v, want %v", opt.HostHop, want)
		}
	})

	t.Run("shardtrace", func(t *testing.T) {
		opt := parse(t, "-shards", "2", "-shardtrace", "fig12").options()
		if !opt.ShardTelemetry || !opt.TraceShardWindows {
			t.Errorf("-shardtrace: ShardTelemetry=%v TraceShardWindows=%v, want both true",
				opt.ShardTelemetry, opt.TraceShardWindows)
		}
	})

	t.Run("mapcache", func(t *testing.T) {
		// Default keeps the whole map resident (legacy, byte-identical
		// figures); an explicit budget threads through to every rig.
		if opt := parse(t, "fig10").options(); opt.MapCacheBytes != 0 {
			t.Errorf("default MapCacheBytes = %d, want 0 (cache disabled)", opt.MapCacheBytes)
		}
		opt := parse(t, "-mapcache", "65536", "fig10").options()
		if opt.MapCacheBytes != 65536 {
			t.Errorf("MapCacheBytes = %d, want 65536", opt.MapCacheBytes)
		}
	})

	t.Run("parallel-explicit", func(t *testing.T) {
		c := parse(t, "-parallel", "3", "-ops", "12", "all")
		opt := c.options()
		if opt.Parallel != 3 || opt.Ops != 12 {
			t.Errorf("Parallel=%d Ops=%d, want 3 and 12", opt.Parallel, opt.Ops)
		}
	})

	t.Run("workload-defaults", func(t *testing.T) {
		c := parse(t, "workload")
		if c.queues != 0 || c.arb != "rr" || c.record != "" || c.replay != "" {
			t.Errorf("workload defaults = queues %d arb %q record %q replay %q",
				c.queues, c.arb, c.record, c.replay)
		}
		if arb, err := arbitration(c.arb); err != nil || arb != hic.RoundRobin {
			t.Errorf("arbitration(%q) = %v, %v; want RoundRobin", c.arb, arb, err)
		}
	})

	t.Run("workload-flags", func(t *testing.T) {
		c := parse(t, "-queues", "2", "-arb", "wrr", "-record", "cmds.jsonl", "workload")
		if c.queues != 2 || c.record != "cmds.jsonl" {
			t.Errorf("queues=%d record=%q, want 2 and cmds.jsonl", c.queues, c.record)
		}
		if arb, err := arbitration(c.arb); err != nil || arb != hic.WeightedRoundRobin {
			t.Errorf("arbitration(%q) = %v, %v; want WeightedRoundRobin", c.arb, arb, err)
		}
		if _, err := arbitration("drr"); err == nil {
			t.Error("unknown arbitration accepted")
		}
	})

	t.Run("bad-flag", func(t *testing.T) {
		c := newCLI(io.Discard)
		if err := c.fs.Parse([]string{"-no-such-flag"}); err == nil {
			t.Error("unknown flag parsed without error")
		}
	})
}
