// Bounded polling and RESET recovery. The paper's Algorithm 1 polls
// READ STATUS in an open loop; against healthy hardware that is fine,
// but one stuck-busy LUN would livelock the whole rig. Every poll
// loop in this package therefore runs under a budget derived from the
// package's worst-case busy time (onfi.Timing.PollBudget): a chip
// still busy past the budget is escalated to an ONFI RESET, and a chip
// that stays busy through the RESET is declared dead so the SSD layer
// can offline it. Callers distinguish the outcomes with errors.Is.

package ops

import (
	"errors"
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/onfi"
)

// ErrStuckBusy reports a poll loop that exhausted its budget where
// RESET escalation is not applicable (gang polls spanning chips).
var ErrStuckBusy = errors.New("chip stuck busy past poll budget")

// ErrResetRecovered reports that a stuck chip came back after an ONFI
// RESET: the in-flight operation was aborted by the reset and must be
// reissued, but the chip is usable again.
var ErrResetRecovered = errors.New("chip recovered by RESET; operation aborted")

// ErrChipDead reports a chip that stayed busy through a RESET — the
// controller has no further recovery and the chip must be offlined.
var ErrChipDead = errors.New("chip unresponsive after RESET recovery")

// pollBudget derives the status-poll budget for the running
// operation's package and channel configuration.
func pollBudget(ctx *core.Ctx) int {
	ch := ctx.Controller().Channel()
	return ch.Timing().PollBudget(ch.Config(), ctx.Params().WorstCaseBusy())
}

// pollStatus polls READ STATUS until the given status bit asserts,
// escalating to RESET recovery when the budget runs out. On success it
// returns the final status byte; every error return means the
// operation must abort.
func pollStatus(ctx *core.Ctx, chip int, bit byte) (byte, error) {
	for i, budget := 0, pollBudget(ctx); i < budget; i++ {
		s, err := ReadStatus(ctx, chip)
		if err != nil {
			return 0, err
		}
		if s&bit != 0 {
			return s, nil
		}
	}
	return 0, recoverStuck(ctx, chip)
}

// recoverStuck is the escalation path for a chip that blew its poll
// budget: issue RESET (legal while busy), wait out the abort time
// under a fresh budget, and classify the result. The return is always
// non-nil — even a successful RESET aborted the in-flight operation.
func recoverStuck(ctx *core.Ctx, chip int) error {
	ctx.Recovery("reset")
	ctx.Chip(bus.Mask(chip))
	ctx.Cmd(onfi.CmdReset)
	if res := ctx.Submit(); res.Err != nil {
		return res.Err
	}
	for i, budget := 0, pollBudget(ctx); i < budget; i++ {
		s, err := ReadStatus(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusRDY != 0 {
			ctx.Recovery("reset-recovered")
			return fmt.Errorf("ops: chip %d: %w", chip, ErrResetRecovered)
		}
	}
	ctx.Recovery("chip-dead")
	return fmt.Errorf("ops: chip %d: %w", chip, ErrChipDead)
}
