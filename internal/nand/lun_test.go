package nand

import (
	"bytes"
	"testing"

	"repro/internal/onfi"
	"repro/internal/sim"
)

// smallParams returns a small, fast LUN for protocol tests.
func smallParams() Params {
	p := Hynix()
	p.Geometry = onfi.Geometry{Planes: 1, BlocksPerLUN: 8, PagesPerBlk: 4, PageBytes: 256, SpareBytes: 16}
	p.JitterPct = 0
	return p
}

func newTestLUN(t *testing.T) *LUN {
	t.Helper()
	l, err := NewLUN(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// latchRead drives the full READ command+address+confirm burst.
func latchRead(t *testing.T, l *LUN, now sim.Time, a onfi.Addr) {
	t.Helper()
	var ls []onfi.Latch
	ls = append(ls, onfi.CmdLatch(onfi.CmdRead1))
	ls = append(ls, l.Params().Geometry.AddrLatches(a)...)
	ls = append(ls, onfi.CmdLatch(onfi.CmdRead2))
	if err := l.Latch(now, ls); err != nil {
		t.Fatalf("read latch: %v", err)
	}
}

// latchProgram drives PROGRAM.1+addr, data, PROGRAM.2.
func latchProgram(t *testing.T, l *LUN, now sim.Time, a onfi.Addr, data []byte) {
	t.Helper()
	var ls []onfi.Latch
	ls = append(ls, onfi.CmdLatch(onfi.CmdProgram1))
	ls = append(ls, l.Params().Geometry.AddrLatches(a)...)
	if err := l.Latch(now, ls); err != nil {
		t.Fatalf("program latch: %v", err)
	}
	if err := l.DataIn(now, data); err != nil {
		t.Fatalf("program data: %v", err)
	}
	if err := l.Latch(now, []onfi.Latch{onfi.CmdLatch(onfi.CmdProgram2)}); err != nil {
		t.Fatalf("program confirm: %v", err)
	}
}

// latchErase drives ERASE.1+row+ERASE.2.
func latchErase(t *testing.T, l *LUN, now sim.Time, r onfi.RowAddr) {
	t.Helper()
	var ls []onfi.Latch
	ls = append(ls, onfi.CmdLatch(onfi.CmdErase1))
	ls = append(ls, l.Params().Geometry.RowLatches(r)...)
	ls = append(ls, onfi.CmdLatch(onfi.CmdErase2))
	if err := l.Latch(now, ls); err != nil {
		t.Fatalf("erase latch: %v", err)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, p := range Presets() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", p.Name, err)
		}
	}
	if Hynix().TR != 100*sim.Microsecond {
		t.Error("Hynix tR should be 100us (Table I)")
	}
	if Toshiba().TR != 78*sim.Microsecond {
		t.Error("Toshiba tR should be 78us (Table I)")
	}
	if Micron().TR != 53*sim.Microsecond {
		t.Error("Micron tR should be 53us (Table I)")
	}
	if Micron().LUNsPerChannel != 2 {
		t.Error("Micron is wired for 2 LUNs per channel")
	}
	if Hynix().Geometry.PageBytes != 16384 {
		t.Error("page read size should be 16384 B (Table I)")
	}
}

func TestPresetByName(t *testing.T) {
	if _, err := PresetByName("Hynix"); err != nil {
		t.Error(err)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := smallParams()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = smallParams()
	bad.TR = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero tR accepted")
	}
	bad = smallParams()
	bad.JitterPct = 100
	if err := bad.Validate(); err == nil {
		t.Error("100% jitter accepted")
	}
	bad = smallParams()
	bad.LUNsPerChannel = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero LUNs accepted")
	}
}

func TestReadBusyAndData(t *testing.T) {
	l := newTestLUN(t)
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 2, Page: 1}}
	want := bytes.Repeat([]byte{0xAB}, 64)
	if err := l.SeedPage(addr.Row, want); err != nil {
		t.Fatal(err)
	}

	latchRead(t, l, 0, addr)
	if l.Ready(0) {
		t.Fatal("LUN ready immediately after READ confirm")
	}
	if s := l.Status(0); s&onfi.StatusRDY != 0 {
		t.Fatalf("status %08b shows RDY during tR", s)
	}
	// Data out during busy must fail.
	if _, err := l.DataOut(0, 4); err == nil {
		t.Fatal("data out during tR accepted")
	}

	done := sim.Time(0).Add(l.Params().TR)
	if s := l.Status(done); s&onfi.StatusRDY == 0 {
		t.Fatalf("status %08b not RDY after tR", s)
	}
	got, err := l.DataOut(done, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read data mismatch")
	}
	// Sequential data out continues from the column.
	got2, err := l.DataOut(done, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got2 {
		if b != 0 {
			t.Fatal("expected zero padding past seeded data")
		}
	}
}

func TestReadErasedPageIsFF(t *testing.T) {
	l := newTestLUN(t)
	latchRead(t, l, 0, onfi.Addr{})
	done := sim.Time(0).Add(l.Params().TR)
	got, err := l.DataOut(done, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatalf("erased page read %02x, want FF", b)
		}
	}
}

func TestChangeReadColumn(t *testing.T) {
	l := newTestLUN(t)
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	if err := l.SeedPage(onfi.RowAddr{}, data); err != nil {
		t.Fatal(err)
	}
	latchRead(t, l, 0, onfi.Addr{})
	done := sim.Time(0).Add(l.Params().TR)

	// CHANGE READ COLUMN to offset 100.
	ls := []onfi.Latch{onfi.CmdLatch(onfi.CmdChangeReadCol1)}
	cb := onfi.EncodeColAddr(100)
	ls = append(ls, onfi.AddrLatch(cb[0]), onfi.AddrLatch(cb[1]), onfi.CmdLatch(onfi.CmdChangeReadCol2))
	if err := l.Latch(done, ls); err != nil {
		t.Fatal(err)
	}
	got, err := l.DataOut(done, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 || got[3] != 103 {
		t.Errorf("column change read %v", got[:4])
	}
}

func TestProgramReadBack(t *testing.T) {
	l := newTestLUN(t)
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 0}}
	data := bytes.Repeat([]byte{0x3C}, 256)
	latchProgram(t, l, 0, addr, data)
	if l.Ready(0) {
		t.Fatal("ready during tPROG")
	}
	done := sim.Time(0).Add(l.Params().TPROG)
	if s := l.Status(done); s&onfi.StatusRDY == 0 || s&onfi.StatusFail != 0 {
		t.Fatalf("program status %08b", s)
	}
	latchRead(t, l, done, addr)
	rdone := done.Add(l.Params().TR)
	got, err := l.DataOut(rdone, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("program/read round trip mismatch")
	}
}

func TestProgramOverwriteFails(t *testing.T) {
	l := newTestLUN(t)
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 2}}
	latchProgram(t, l, 0, addr, []byte{1})
	t1 := sim.Time(0).Add(l.Params().TPROG)
	latchProgram(t, l, t1, addr, []byte{2})
	t2 := t1.Add(l.Params().TPROG)
	if s := l.Status(t2); s&onfi.StatusFail == 0 {
		t.Fatalf("overwrite did not FAIL: status %08b", s)
	}
}

func TestEraseClearsAndAllowsReprogram(t *testing.T) {
	l := newTestLUN(t)
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 3, Page: 1}}
	latchProgram(t, l, 0, addr, []byte{0x11})
	t1 := sim.Time(0).Add(l.Params().TPROG)

	latchErase(t, l, t1, onfi.RowAddr{Block: 3})
	t2 := t1.Add(l.Params().TBERS)
	if s := l.Status(t2); s&onfi.StatusRDY == 0 || s&onfi.StatusFail != 0 {
		t.Fatalf("erase status %08b", s)
	}
	if l.EraseCount(3) != 1 {
		t.Errorf("erase count = %d", l.EraseCount(3))
	}
	page, _ := l.PeekPage(addr.Row)
	if page[0] != 0xFF {
		t.Error("erase did not clear the page")
	}
	// Reprogramming after erase succeeds.
	latchProgram(t, l, t2, addr, []byte{0x22})
	t3 := t2.Add(l.Params().TPROG)
	if s := l.Status(t3); s&onfi.StatusFail != 0 {
		t.Fatalf("reprogram after erase failed: %08b", s)
	}
}

func TestEraseWearOut(t *testing.T) {
	p := smallParams()
	p.MaxPECycles = 2
	l, err := NewLUN(p)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	for i := 0; i < 3; i++ {
		latchErase(t, l, now, onfi.RowAddr{Block: 0})
		now = now.Add(p.TBERS)
	}
	if !l.Bad(0) {
		t.Error("block not retired after exceeding endurance")
	}
	if s := l.Status(now); s&onfi.StatusFail == 0 {
		t.Errorf("wear-out erase did not FAIL: %08b", s)
	}
}

func TestReadStatusWhileBusy(t *testing.T) {
	l := newTestLUN(t)
	latchRead(t, l, 0, onfi.Addr{})
	// READ STATUS is legal while busy.
	if err := l.Latch(10, []onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}); err != nil {
		t.Fatalf("status latch while busy: %v", err)
	}
	got, err := l.DataOut(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0]&onfi.StatusRDY != 0 {
		t.Error("status shows ready during tR")
	}
	// But a new READ is not.
	if err := l.Latch(10, []onfi.Latch{onfi.CmdLatch(onfi.CmdRead1)}); err == nil {
		t.Error("READ.1 accepted while busy")
	}
}

func TestPSLCReadFaster(t *testing.T) {
	l := newTestLUN(t)
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 0, Page: 0}}
	var ls []onfi.Latch
	ls = append(ls, onfi.CmdLatch(onfi.CmdPSLCEnable), onfi.CmdLatch(onfi.CmdRead1))
	ls = append(ls, l.Params().Geometry.AddrLatches(addr)...)
	ls = append(ls, onfi.CmdLatch(onfi.CmdRead2))
	if err := l.Latch(0, ls); err != nil {
		t.Fatal(err)
	}
	slcDone := sim.Time(0).Add(l.Params().TRSLC)
	if !l.Ready(slcDone) {
		t.Error("pSLC read not done after TRSLC")
	}
	if l.Ready(slcDone - 1) {
		t.Error("pSLC read done too early")
	}
}

func TestPSLCUnsupported(t *testing.T) {
	p := smallParams()
	p.TRSLC = 0
	l, _ := NewLUN(p)
	if err := l.Latch(0, []onfi.Latch{onfi.CmdLatch(onfi.CmdPSLCEnable)}); err == nil {
		t.Error("pSLC accepted on a package without support")
	}
}

func TestReadID(t *testing.T) {
	l := newTestLUN(t)
	ls := []onfi.Latch{onfi.CmdLatch(onfi.CmdReadID), onfi.AddrLatch(0)}
	if err := l.Latch(0, ls); err != nil {
		t.Fatal(err)
	}
	got, err := l.DataOut(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAD || got[1] != 0xDE {
		t.Errorf("READ ID = % 02X", got)
	}
}

func TestSetGetFeatures(t *testing.T) {
	l := newTestLUN(t)
	// SET FEATURES on the read-retry register.
	ls := []onfi.Latch{onfi.CmdLatch(onfi.CmdSetFeatures), onfi.AddrLatch(byte(onfi.FeatReadRetry))}
	if err := l.Latch(0, ls); err != nil {
		t.Fatal(err)
	}
	if err := l.DataIn(0, []byte{3, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	// GET FEATURES reads it back.
	ls = []onfi.Latch{onfi.CmdLatch(onfi.CmdGetFeatures), onfi.AddrLatch(byte(onfi.FeatReadRetry))}
	if err := l.Latch(0, ls); err != nil {
		t.Fatal(err)
	}
	got, err := l.DataOut(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Errorf("feature readback = %v", got)
	}
	// Wrong data length rejected.
	ls = []onfi.Latch{onfi.CmdLatch(onfi.CmdSetFeatures), onfi.AddrLatch(1)}
	if err := l.Latch(0, ls); err != nil {
		t.Fatal(err)
	}
	if err := l.DataIn(0, []byte{1, 2}); err == nil {
		t.Error("short SET FEATURES data accepted")
	}
}

func TestReset(t *testing.T) {
	l := newTestLUN(t)
	latchRead(t, l, 0, onfi.Addr{})
	if err := l.Latch(10, []onfi.Latch{onfi.CmdLatch(onfi.CmdReset)}); err != nil {
		t.Fatalf("reset while busy: %v", err)
	}
	// Reset from busy takes 500us.
	if l.Ready(sim.Time(400 * sim.Microsecond)) {
		t.Error("ready too early after busy reset")
	}
	if !l.Ready(sim.Time(10).Add(500 * sim.Microsecond)) {
		t.Error("not ready after reset completes")
	}
}

func TestEraseSuspendResume(t *testing.T) {
	l := newTestLUN(t)
	latchErase(t, l, 0, onfi.RowAddr{Block: 0})
	// Suspend mid-erase.
	mid := sim.Time(l.Params().TBERS / 2)
	if err := l.Latch(mid, []onfi.Latch{onfi.CmdLatch(onfi.CmdSuspend)}); err != nil {
		t.Fatalf("suspend: %v", err)
	}
	avail := mid.Add(tSuspend)
	if !l.Ready(avail) {
		t.Fatal("not ready after suspend latency")
	}
	// A read can now run.
	latchRead(t, l, avail, onfi.Addr{Row: onfi.RowAddr{Block: 1}})
	rdone := avail.Add(l.Params().TR)
	if _, err := l.DataOut(rdone, 4); err != nil {
		t.Fatalf("read during suspended erase: %v", err)
	}
	// Resume; remaining half of tBERS must elapse.
	if err := l.Latch(rdone, []onfi.Latch{onfi.CmdLatch(onfi.CmdResume)}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if l.Ready(rdone.Add(l.Params().TBERS/2 - 1)) {
		t.Error("erase finished early after resume")
	}
	if !l.Ready(rdone.Add(l.Params().TBERS / 2)) {
		t.Error("erase not finished after resume + remainder")
	}
	st := l.Stats()
	if st.SuspendCount != 1 || st.ResumeCnt != 1 {
		t.Errorf("suspend/resume stats: %+v", st)
	}
}

func TestSuspendErrors(t *testing.T) {
	l := newTestLUN(t)
	if err := l.Latch(0, []onfi.Latch{onfi.CmdLatch(onfi.CmdSuspend)}); err == nil {
		t.Error("suspend with nothing in flight accepted")
	}
	if err := l.Latch(0, []onfi.Latch{onfi.CmdLatch(onfi.CmdResume)}); err == nil {
		t.Error("resume with nothing suspended accepted")
	}
	// Reads are not suspendable.
	latchRead(t, l, 0, onfi.Addr{})
	if err := l.Latch(1, []onfi.Latch{onfi.CmdLatch(onfi.CmdSuspend)}); err == nil {
		t.Error("suspend of a READ accepted")
	}
}

func TestCacheRead(t *testing.T) {
	l := newTestLUN(t)
	g := l.Params().Geometry
	p0 := bytes.Repeat([]byte{0xA0}, 16)
	p1 := bytes.Repeat([]byte{0xA1}, 16)
	if err := l.SeedPage(onfi.RowAddr{Block: 0, Page: 0}, p0); err != nil {
		t.Fatal(err)
	}
	if err := l.SeedPage(onfi.RowAddr{Block: 0, Page: 1}, p1); err != nil {
		t.Fatal(err)
	}

	// Initial READ of page 0.
	latchRead(t, l, 0, onfi.Addr{})
	t1 := sim.Time(0).Add(l.Params().TR)

	// 0x31: page 0 → cache, start loading page 1.
	if err := l.Latch(t1, []onfi.Latch{onfi.CmdLatch(onfi.CmdCacheRead)}); err != nil {
		t.Fatal(err)
	}
	// Cache data (page 0) is transferable while the array loads page 1.
	if s := l.Status(t1); s&onfi.StatusARDY != 0 {
		t.Errorf("array should be busy: %08b", s)
	}
	got, err := l.DataOut(t1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p0) {
		t.Errorf("cache output = % X, want page0", got[:4])
	}

	// After the array finishes, 0x3F moves page 1 to cache.
	t2 := t1.Add(l.Params().TR)
	if err := l.Latch(t2, []onfi.Latch{onfi.CmdLatch(onfi.CmdCacheReadEnd)}); err != nil {
		t.Fatal(err)
	}
	got, err = l.DataOut(t2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p1) {
		t.Errorf("cache-end output = % X, want page1", got[:4])
	}
	_ = g
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	p := smallParams()
	p.JitterPct = 5
	l, _ := NewLUN(p)
	d1 := l.jitterFor(7, p.TR)
	d2 := l.jitterFor(7, p.TR)
	if d1 != d2 {
		t.Error("jitter not deterministic")
	}
	lo := p.TR - p.TR*5/100
	hi := p.TR + p.TR*5/100
	for row := uint32(0); row < 100; row++ {
		d := l.jitterFor(row, p.TR)
		if d < lo || d > hi {
			t.Fatalf("jitter out of bounds: %v not in [%v,%v]", d, lo, hi)
		}
	}
}

func TestSeedPeekProgrammed(t *testing.T) {
	l := newTestLUN(t)
	row := onfi.RowAddr{Block: 5, Page: 3}
	if l.Programmed(row) {
		t.Error("fresh page reports programmed")
	}
	if err := l.SeedPage(row, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if !l.Programmed(row) {
		t.Error("seeded page not programmed")
	}
	got, err := l.PeekPage(row)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Error("peek mismatch")
	}
	if err := l.SeedPage(onfi.RowAddr{Block: 99}, nil); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := l.PeekPage(onfi.RowAddr{Block: 99}); err == nil {
		t.Error("out-of-range peek accepted")
	}
	big := make([]byte, l.Params().Geometry.FullPageBytes()+1)
	if err := l.SeedPage(row, big); err == nil {
		t.Error("oversized seed accepted")
	}
}

func TestStatsCounters(t *testing.T) {
	l := newTestLUN(t)
	latchRead(t, l, 0, onfi.Addr{})
	now := sim.Time(0).Add(l.Params().TR)
	latchProgram(t, l, now, onfi.Addr{Row: onfi.RowAddr{Block: 1}}, []byte{1})
	now = now.Add(l.Params().TPROG)
	latchErase(t, l, now, onfi.RowAddr{Block: 1})
	st := l.Stats()
	if st.Reads != 1 || st.Programs != 1 || st.Erases != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProtocolErrors(t *testing.T) {
	l := newTestLUN(t)
	// Confirm with no command.
	if err := l.Latch(0, []onfi.Latch{onfi.CmdLatch(onfi.CmdRead2)}); err == nil {
		t.Error("bare READ.2 accepted")
	}
	// Data out with no source.
	l2 := newTestLUN(t)
	if _, err := l2.DataOut(0, 1); err == nil {
		t.Error("data out with no source accepted")
	}
	// Data in outside program.
	if err := l2.DataIn(0, []byte{1}); err == nil {
		t.Error("stray data in accepted")
	}
	if l2.Stats().ProtocolErrors == 0 {
		t.Error("protocol errors not counted")
	}
}

func TestMarkBad(t *testing.T) {
	l := newTestLUN(t)
	l.MarkBad(2)
	if !l.Bad(2) {
		t.Error("MarkBad did not stick")
	}
	latchProgram(t, l, 0, onfi.Addr{Row: onfi.RowAddr{Block: 2}}, []byte{1})
	done := sim.Time(0).Add(l.Params().TPROG)
	if s := l.Status(done); s&onfi.StatusFail == 0 {
		t.Errorf("program to bad block did not FAIL: %08b", s)
	}
	if l.Bad(-1) || l.Bad(100) {
		t.Error("out-of-range Bad() should be false")
	}
}
