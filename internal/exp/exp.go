// Package exp contains the experiment harness: one entry point per table
// and figure of the paper's evaluation (Section VI). Each experiment
// builds the necessary rigs, runs the workload in virtual time, and
// returns both structured results and a rendered text table whose rows
// match what the paper reports.
package exp

import (
	"fmt"
	"strings"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Options tune experiment scale. Zero values select the full-fidelity
// defaults; tests use reduced op counts to stay fast.
type Options struct {
	// Ops is the number of host operations per measured configuration.
	Ops int
	// WaysList overrides the LUN counts swept (capped per package).
	WaysList []int
	// Blocks shrinks the per-LUN block count (throughput experiments do
	// not need full-capacity arrays).
	Blocks int
	// Tracer receives the event stream of every rig an experiment
	// builds (e.g. a JSONL sink for babolbench -trace). nil disables.
	// The tracer itself need not be concurrency-safe even when sweeps
	// run in parallel: rigs trace into private buffers that are merged
	// into it, in configuration order, after the sweep settles.
	Tracer obs.Tracer
	// Live receives every rig's events directly from the sweep workers,
	// as they happen — the feed behind `babolbench -http` live
	// introspection. Unlike Tracer it sees a nondeterministic
	// interleaving of concurrent rigs and MUST be safe for concurrent
	// use (obs.SyncMetrics is); use it only for order-insensitive
	// aggregation. nil disables.
	Live obs.Tracer
	// Parallel bounds the sweep worker pool: how many rigs run
	// concurrently (each on its own single-threaded kernel). 0 means
	// one worker per available CPU; 1 forces the serial order, useful
	// when debugging a single configuration. Results are deterministic
	// and byte-identical at every setting.
	Parallel int
	// NoCoroPool builds every rig without its per-rig coroutine pool
	// (fresh goroutine per operation). Results and traces are identical
	// either way — TestCoroPoolDeterminism holds the two paths byte-for-
	// byte equal — so this exists for that comparison and for isolating
	// pool bugs, not for normal use.
	NoCoroPool bool
	// Shards runs every rig under the conservative time-window cluster
	// (ssd.BuildConfig.Shards): 0 keeps the legacy single-kernel path,
	// 1 is the windowed single-kernel baseline, ≥2 spreads channels
	// across shard kernels. Results are byte-identical at every count
	// ≥ 1 — TestShardedExperimentDeterminism pins CSVs and traces.
	Shards int
	// HostHop is the modeled host↔channel hop latency, which doubles as
	// the cluster lookahead (default 1 µs when Shards > 0).
	HostHop sim.Duration
	// ShardTelemetry arms the cluster's shard instrument on every rig
	// (ssd.BuildConfig.ShardTelemetry). Results and traces are
	// byte-identical armed or not — TestShardedTelemetryDeterminism pins
	// it — so this is safe to leave on for live monitoring via Live.
	ShardTelemetry bool
	// TraceShardWindows additionally flushes each rig's shard
	// flight recorder into its trace (ssd.BuildConfig.TraceShardWindows)
	// so `babolbench analyze` can render the shard report. The extra
	// events depend on the shard layout, so traces are comparable only
	// across runs with equal Shards.
	TraceShardWindows bool
	// MapCacheBytes bounds the DRAM budget of every rig's FTL
	// translation map (ssd.BuildConfig.MapCacheBytes): map pages are
	// demand-paged under the budget and misses charge NAND reads
	// through the ops path, so figures shift accordingly. 0 keeps the
	// whole map resident — the legacy model, byte-identical results.
	// Runs are seed-reproducible at any budget.
	MapCacheBytes int64
}

func (o Options) withDefaults() Options {
	if o.Ops == 0 {
		o.Ops = 240
	}
	if len(o.WaysList) == 0 {
		o.WaysList = []int{2, 4, 8}
	}
	if o.Blocks == 0 {
		o.Blocks = 64
	}
	return o
}

// shrink reduces a preset's block count for throughput experiments.
func shrink(p nand.Params, blocks int) nand.Params {
	p.Geometry.BlocksPerLUN = blocks
	return p
}

// readThroughput builds an SSD per cfg, preloads a working set, runs a
// read workload, and reports bandwidth in MB/s.
func readThroughput(cfg ssd.BuildConfig, pattern hic.Pattern, ops, queueDepth int) (float64, error) {
	rig, err := ssd.Build(cfg)
	if err != nil {
		return 0, err
	}
	defer rig.Close()

	// Working set: enough pages that sequential reads touch every LUN
	// continuously, small enough to preload instantly.
	working := 32 * cfg.Ways
	if working > rig.FTL.LogicalPages() {
		working = rig.FTL.LogicalPages()
	}
	if err := rig.SSD.Preload(working); err != nil {
		return 0, err
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: pattern, Kind: hic.KindRead,
		NumOps: ops, QueueDepth: queueDepth, LogicalPages: working, Seed: 7,
	})
	if err != nil {
		return 0, err
	}
	rig.Run()
	if res.Completed != ops {
		return 0, fmt.Errorf("exp: only %d of %d ops completed", res.Completed, ops)
	}
	if res.Failed != 0 {
		return 0, fmt.Errorf("exp: %d ops failed", res.Failed)
	}
	return res.BandwidthMBps(cfg.Params.Geometry.PageBytes), nil
}

// channelCeilingMBps is the ideal data-only channel bandwidth at a given
// rate, used for context lines in reports.
func channelCeilingMBps(rateMT int) float64 {
	return float64(rateMT) // 1 byte per transfer: N MT/s = N MB/s
}

// table renders rows with a header, aligning columns on tabs.
func table(header string, rows []string) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(header)))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}

// pct formats a relative difference versus a baseline.
func pct(v, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (v-base)/base*100)
}

// us formats a duration in microseconds.
func us(d sim.Duration) string {
	return fmt.Sprintf("%.1fus", d.Micros())
}
