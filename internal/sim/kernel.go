package sim

import "fmt"

// EventID identifies a scheduled event so it can be cancelled. An
// EventID encodes the slot that holds the event plus a generation stamp,
// so IDs of events that have already fired (or been cancelled) become
// harmlessly stale the moment their slot is recycled: cancelling one is
// an O(1) no-op, never a leak. The zero EventID is never issued.
type EventID uint64

// slot holds one scheduled event. Slots are recycled through a free
// list so the steady-state hot path — schedule, fire, schedule — does
// not allocate; gen distinguishes successive occupants of the same slot.
type slot struct {
	at        Time
	seq       uint64 // insertion order; breaks ties deterministically
	fn        func()
	gen       uint32
	cancelled bool
}

const slotIndexBits = 32

func makeEventID(idx int32, gen uint32) EventID {
	return EventID(uint64(gen)<<slotIndexBits | uint64(uint32(idx)))
}

func splitEventID(id EventID) (idx int32, gen uint32) {
	return int32(uint32(id)), uint32(id >> slotIndexBits)
}

// Kernel is a deterministic discrete-event simulator. Events scheduled
// for the same instant fire in the order they were scheduled. Kernel is
// not safe for concurrent use; the entire simulation runs on one
// goroutine (operation coroutines hand control back and forth
// synchronously). Concurrency in the experiment harness therefore means
// many kernels, one per rig, never one kernel shared.
//
// Accounting semantics: Executed counts events that actually fired
// (cancelled events never count); Pending counts events that are
// scheduled and not cancelled, i.e. the number of fn calls still owed if
// the kernel runs to quiescence with no further scheduling or
// cancelling.
//
// The event queue is an index-based binary min-heap over value slots —
// no per-event box, no container/heap interface traffic — so the
// schedule/fire hot path is allocation-free once the slot and heap
// arrays have grown to the simulation's high-water mark.
type Kernel struct {
	now      Time
	slots    []slot
	free     []int32 // recycled slot indices
	heap     []int32 // slot indices ordered by (at, seq)
	seq      uint64
	running  bool
	executed uint64
	live     int // scheduled and not cancelled
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have fired so far. Cancelled events
// never fire, so they are never counted.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many live events are scheduled. Cancelled events
// are excluded even if their slots have not been reaped from the heap
// yet.
func (k *Kernel) Pending() int { return k.live }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (k *Kernel) At(t Time, fn func()) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", t, k.now))
	}
	k.seq++
	var idx int32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.slots = append(k.slots, slot{gen: 1})
		idx = int32(len(k.slots) - 1)
	}
	s := &k.slots[idx]
	s.at, s.seq, s.fn, s.cancelled = t, k.seq, fn, false
	k.heapPush(idx)
	k.live++
	return makeEventID(idx, s.gen)
}

// After schedules fn to run d after the current time. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event
// that already fired, or cancelling twice, is an O(1) no-op: the
// generation stamp in the EventID no longer matches the slot (or the
// slot is already marked), so no state is touched and nothing leaks.
func (k *Kernel) Cancel(id EventID) {
	idx, gen := splitEventID(id)
	if int(idx) >= len(k.slots) {
		return
	}
	s := &k.slots[idx]
	if s.gen != gen || s.fn == nil || s.cancelled {
		return
	}
	s.cancelled = true
	k.live--
}

// release returns a fired or reaped slot to the free list, bumping its
// generation so outstanding EventIDs for the old occupant go stale.
func (k *Kernel) release(idx int32) {
	s := &k.slots[idx]
	s.fn = nil // drop the closure so the GC can collect captured state
	s.gen++
	if s.gen == 0 { // generation wrapped; 0 is reserved for "never issued"
		s.gen = 1
	}
	k.free = append(k.free, idx)
}

// Step fires the single earliest pending event. It reports false if no
// events remain.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		idx := k.heapPop()
		s := &k.slots[idx]
		if s.cancelled {
			k.release(idx)
			continue
		}
		k.now = s.at
		k.executed++
		k.live--
		fn := s.fn
		k.release(idx)
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (k *Kernel) Run() {
	k.running = true
	for k.running && k.Step() {
	}
	k.running = false
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain pending.
func (k *Kernel) RunUntil(deadline Time) {
	k.running = true
	for k.running {
		at, ok := k.peek()
		if !ok || at > deadline {
			break
		}
		k.Step()
	}
	k.running = false
	if k.now < deadline {
		k.now = deadline
	}
}

// RunFor runs the simulation for d of virtual time from now.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

// Stop makes a Run/RunUntil in progress return after the current event.
// It may be called from inside an event function.
func (k *Kernel) Stop() { k.running = false }

// peek reports the firing time of the earliest live event, reaping any
// cancelled slots that have bubbled to the top of the heap.
func (k *Kernel) peek() (Time, bool) {
	for len(k.heap) > 0 {
		idx := k.heap[0]
		s := &k.slots[idx]
		if !s.cancelled {
			return s.at, true
		}
		k.heapPop()
		k.release(idx)
	}
	return 0, false
}

// ------------------------------------------------------------- heap --
//
// A hand-rolled binary min-heap over slot indices. Equivalent to
// container/heap on a []int32 but without the interface boxing and
// indirect calls on every sift comparison.

func (k *Kernel) heapLess(a, b int32) bool {
	sa, sb := &k.slots[a], &k.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (k *Kernel) heapPush(idx int32) {
	k.heap = append(k.heap, idx)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.heapLess(k.heap[i], k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

func (k *Kernel) heapPop() int32 {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	k.heap = h[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && k.heapLess(h[right], h[left]) {
			least = right
		}
		if !k.heapLess(h[least], h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}
