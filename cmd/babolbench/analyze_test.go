package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analyze"
	"repro/internal/obs"
)

// The checked-in mini trace is 4 rigs of `babolbench -ops 16 split`
// merged in configuration order (regenerate with
// `go run ./cmd/babolbench -ops 16 -parallel 1 -trace cmd/babolbench/testdata/mini.jsonl split`,
// then refresh the goldens from `babolbench analyze` / `-csv analyze`).
// CI runs the same comparison against the built binary; this test keeps
// `go test` self-sufficient.
func readMini(t *testing.T) []obs.Event {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "mini.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestAnalyzeMiniTraceGolden(t *testing.T) {
	res := analyze.Analyze(readMini(t))
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d, want 4 (2 controllers x 2 clocks)", len(res.Runs))
	}
	if len(res.Violations) != 0 {
		t.Fatalf("protocol violations in the golden trace: %v", res.Violations)
	}
	if got, want := res.Render(), golden(t, "mini.report.golden"); got != want {
		t.Errorf("report drifted from golden\n got:\n%s\nwant:\n%s", got, want)
	}
	if got, want := res.CSV(), golden(t, "mini.csv.golden"); got != want {
		t.Errorf("CSV drifted from golden\n got:\n%s\nwant:\n%s", got, want)
	}
}
