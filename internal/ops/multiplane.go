package ops

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/onfi"
)

// Multi-plane operations: one LUN runs the same array operation on every
// plane concurrently, so N planes deliver N pages in a single tR (or
// tPROG/tBERS). These are exactly the package-specific "advanced
// commands" the paper argues software-defined controllers should absorb:
// each is a short composition over the same five µFSMs.

// checkPlanes validates that rows hit pairwise distinct planes.
func checkPlanes(g onfi.Geometry, rows []onfi.RowAddr) error {
	if len(rows) < 2 {
		return fmt.Errorf("ops: multi-plane operation needs ≥2 rows, got %d", len(rows))
	}
	seen := map[int]bool{}
	for _, r := range rows {
		if err := g.CheckAddr(onfi.Addr{Row: r}); err != nil {
			return err
		}
		p := g.PlaneOf(r.Block)
		if seen[p] {
			return fmt.Errorf("ops: rows %v reuse plane %d", rows, p)
		}
		seen[p] = true
	}
	return nil
}

// MPReadPages reads one page per plane concurrently: queue each row with
// 32h, confirm the last with 30h (one shared tR), then select each plane
// with CHANGE READ COLUMN ENHANCED and stream it out. Pages land
// contiguously in DRAM at dramAddr.
func MPReadPages(rows []onfi.RowAddr, dramAddr, pageBytes int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		if err := checkPlanes(g, rows); err != nil {
			return err
		}
		// Queue every plane but the last; each 32h costs one tDBSY.
		var lbuf [8]onfi.Latch
		for _, r := range rows[:len(rows)-1] {
			ctx.CmdAddr(appendReadLatches(lbuf[:0], g, onfi.Addr{Row: r}, onfi.CmdMPReadQueue)...)
			if res := ctx.Submit(); res.Err != nil {
				return res.Err
			}
			if _, err := pollReady(ctx, chip); err != nil {
				return err
			}
		}
		// Final plane confirms with 30h: all planes fetch together.
		ctx.CmdAddr(appendReadLatches(lbuf[:0], g, onfi.Addr{Row: rows[len(rows)-1]}, onfi.CmdRead2)...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		s, err := pollReady(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusFail != 0 {
			return fmt.Errorf("ops: multi-plane read reported FAIL")
		}
		// Stream each plane out: 06h + full address + E0h selects the
		// plane, then the data burst.
		for i, r := range rows {
			latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdChangeReadColE1))
			latches = g.AppendAddrLatches(latches, onfi.Addr{Row: r})
			latches = append(latches, onfi.CmdLatch(onfi.CmdChangeReadCol2))
			ctx.CmdAddr(latches...)
			ctx.ReadData(dramAddr+i*pageBytes, pageBytes)
			if i == len(rows)-1 {
				if res := ctx.SubmitFinal(); res.Err != nil {
					return res.Err
				}
			} else if res := ctx.Submit(); res.Err != nil {
				return res.Err
			}
		}
		return nil
	}
}

// MPProgramPages programs one page per plane concurrently: stage each
// plane's data with 80h…11h, confirm the last with 10h, and pay tPROG
// once. Source pages sit contiguously in DRAM at dramAddr.
func MPProgramPages(rows []onfi.RowAddr, dramAddr, pageBytes int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		if err := checkPlanes(g, rows); err != nil {
			return err
		}
		var lbuf [8]onfi.Latch
		for i, r := range rows {
			latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdProgram1))
			latches = g.AppendAddrLatches(latches, onfi.Addr{Row: r})
			ctx.CmdAddr(latches...)
			ctx.WriteData(dramAddr+i*pageBytes, pageBytes)
			if i < len(rows)-1 {
				ctx.CmdAddr(onfi.CmdLatch(onfi.CmdMPProgramQueue))
				if res := ctx.Submit(); res.Err != nil {
					return res.Err
				}
				if _, err := pollReady(ctx, chip); err != nil {
					return err
				}
			} else {
				ctx.CmdAddr(onfi.CmdLatch(onfi.CmdProgram2))
				if res := ctx.Submit(); res.Err != nil {
					return res.Err
				}
			}
		}
		s, err := pollReady(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusFail != 0 {
			return fmt.Errorf("ops: multi-plane program reported FAIL")
		}
		return nil
	}
}

// MPEraseBlocks erases one block per plane concurrently: repeated
// 60h+row bursts, one D0h confirm, one shared tBERS.
func MPEraseBlocks(blocks []int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		rows := make([]onfi.RowAddr, len(blocks))
		for i, b := range blocks {
			rows[i] = onfi.RowAddr{Block: b}
		}
		if err := checkPlanes(g, rows); err != nil {
			return err
		}
		var lbuf [32]onfi.Latch
		latches := lbuf[:0]
		for _, r := range rows {
			latches = append(latches, onfi.CmdLatch(onfi.CmdErase1))
			latches = g.AppendRowLatches(latches, r)
		}
		latches = append(latches, onfi.CmdLatch(onfi.CmdErase2))
		ctx.CmdAddr(latches...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		s, err := pollReady(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusFail != 0 {
			return fmt.Errorf("ops: multi-plane erase of %v reported FAIL", blocks)
		}
		return nil
	}
}
