package coro

import (
	"errors"
	"strings"
	"testing"
)

func TestRunToCompletion(t *testing.T) {
	var steps []int
	c := New(func(y *Yielder) error {
		steps = append(steps, 1)
		y.Yield()
		steps = append(steps, 2)
		y.Yield()
		steps = append(steps, 3)
		return nil
	})
	if c.Finished() {
		t.Fatal("finished before first resume")
	}
	if len(steps) != 0 {
		t.Fatal("body ran before first resume")
	}
	if c.Resume() {
		t.Fatal("finished after first yield")
	}
	if len(steps) != 1 {
		t.Fatalf("steps after first resume: %v", steps)
	}
	c.Resume()
	if done := c.Resume(); !done {
		t.Fatal("not finished after final resume")
	}
	if len(steps) != 3 {
		t.Fatalf("steps: %v", steps)
	}
	if c.Err() != nil {
		t.Fatalf("err: %v", c.Err())
	}
	// Resume after completion is a safe no-op.
	if !c.Resume() {
		t.Fatal("resume after completion should report finished")
	}
}

func TestErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	c := New(func(y *Yielder) error {
		y.Yield()
		return sentinel
	})
	c.Resume()
	if !c.Resume() {
		t.Fatal("not finished")
	}
	if c.Err() != sentinel {
		t.Fatalf("err = %v", c.Err())
	}
}

func TestAbortAtYield(t *testing.T) {
	cleaned := false
	c := New(func(y *Yielder) error {
		defer func() { cleaned = true }()
		for {
			y.Yield()
		}
	})
	c.Resume()
	c.Abort()
	if !c.Finished() {
		t.Fatal("abort did not finish coroutine")
	}
	if c.Err() != ErrAborted {
		t.Fatalf("err = %v", c.Err())
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run on abort")
	}
	c.Abort() // no-op
}

func TestAbortBeforeFirstResume(t *testing.T) {
	ran := false
	c := New(func(y *Yielder) error {
		ran = true
		return nil
	})
	c.Abort()
	if !c.Finished() || c.Err() != ErrAborted {
		t.Fatalf("finished=%v err=%v", c.Finished(), c.Err())
	}
	if ran {
		t.Fatal("aborted coroutine body ran")
	}
}

func TestPanicBecomesError(t *testing.T) {
	c := New(func(y *Yielder) error {
		panic("kaboom")
	})
	if !c.Resume() {
		t.Fatal("panicking coroutine not finished")
	}
	if c.Err() == nil || c.Err() == ErrAborted {
		t.Fatalf("err = %v", c.Err())
	}
}

// firmwarePanicHelper stands in for the faulty firmware routine: its
// name must survive into the coroutine's error.
func firmwarePanicHelper() { panic("bad row address") }

// A panic inside an operation must keep the goroutine's stack trace —
// the originating function is the whole debugging story, and the
// recover() that converts the panic to an error runs on the coroutine
// goroutine, where the stack is still live.
func TestPanicErrorCapturesStack(t *testing.T) {
	c := New(func(y *Yielder) error {
		y.Yield()
		firmwarePanicHelper()
		return nil
	})
	c.Resume()
	if !c.Resume() {
		t.Fatal("panicking coroutine not finished")
	}
	err := c.Err()
	if err == nil {
		t.Fatal("panic swallowed")
	}
	if !strings.Contains(err.Error(), "bad row address") {
		t.Errorf("panic value missing from error: %v", err)
	}
	if !strings.Contains(err.Error(), "firmwarePanicHelper") {
		t.Errorf("originating function missing from error: %v", err)
	}
}

// A deferred function that yields during an abort unwind must be driven
// through its suspensions: Abort keeps resuming until the coroutine
// actually finishes, instead of returning after one resume with the
// goroutine parked forever inside the defer (a goroutine leak, and
// under pooling a leaked pool slot).
func TestAbortDrivesDeferredYields(t *testing.T) {
	cleanupSteps := 0
	c := New(func(y *Yielder) error {
		defer func() {
			cleanupSteps++
			y.Yield() // suspending cleanup, e.g. a final SET FEATURES submit
			cleanupSteps++
			y.Yield()
			cleanupSteps++
		}()
		for {
			y.Yield()
		}
	})
	c.Resume()
	c.Abort()
	if !c.Finished() {
		t.Fatal("abort left the coroutine suspended inside its defer")
	}
	if !errors.Is(c.Err(), ErrAborted) {
		t.Fatalf("err = %v", c.Err())
	}
	if cleanupSteps != 3 {
		t.Errorf("cleanup ran %d of 3 steps before finishing", cleanupSteps)
	}
}

func TestInterleavingIsDeterministic(t *testing.T) {
	var trace []string
	mk := func(name string) *Coroutine {
		return New(func(y *Yielder) error {
			for i := 0; i < 3; i++ {
				trace = append(trace, name)
				y.Yield()
			}
			return nil
		})
	}
	a, b := mk("a"), mk("b")
	for !a.Finished() || !b.Finished() {
		a.Resume()
		b.Resume()
	}
	want := "ababababab" // 3 yields each + final resumes, alternating
	got := ""
	for _, s := range trace {
		got += s
	}
	if got != "ababab" {
		t.Fatalf("trace = %q, want ababab (got-want compare: %q)", got, want)
	}
}

func TestNestedCalls(t *testing.T) {
	// Operations nest (READ calls READ STATUS); yields from nested
	// helpers must suspend the whole coroutine.
	inner := func(y *Yielder, log *[]string) {
		*log = append(*log, "inner-before")
		y.Yield()
		*log = append(*log, "inner-after")
	}
	var log []string
	c := New(func(y *Yielder) error {
		log = append(log, "outer-before")
		inner(y, &log)
		log = append(log, "outer-after")
		return nil
	})
	c.Resume()
	if len(log) != 2 || log[1] != "inner-before" {
		t.Fatalf("log after first resume: %v", log)
	}
	c.Resume()
	if len(log) != 4 || log[3] != "outer-after" {
		t.Fatalf("log: %v", log)
	}
}

// BenchmarkCoroResume quantifies the goroutine-handshake cost of one
// Resume/Yield round trip — the per-suspension overhead every simulated
// operation pays (two channel operations and two goroutine switches).
// Run with -benchmem: the round trip itself allocates nothing; what
// remains on the per-operation budget is New (BenchmarkCoroNew below),
// the follow-up perf target recorded in EXPERIMENTS.md.
func BenchmarkCoroResume(b *testing.B) {
	c := New(func(y *Yielder) error {
		for {
			y.Yield()
		}
	})
	c.Resume() // run to the first yield outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Resume()
	}
	b.StopTimer()
	c.Abort()
}

// BenchmarkCoroNew measures creating and completing one coroutine —
// the per-operation coroutine cost the controller pays. "unpooled" is
// the historical baseline (goroutine spawn per operation: ~5 allocs /
// ~2.8 µs); "pooled" recycles parked goroutines through a coro.Pool and
// must stay at 0 allocs steady-state (TestAllocGateCoroPool is the CI
// gate), at resume-level latency.
func BenchmarkCoroNew(b *testing.B) {
	fn := func(y *Yielder) error { return nil }
	b.Run("unpooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := New(fn)
			c.Resume()
		}
	})
	b.Run("pooled", func(b *testing.B) {
		p := NewPool()
		defer p.Close()
		c := p.Get(fn) // spawn the worker outside the timed region
		c.Resume()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := p.Get(fn)
			c.Resume()
		}
	})
}

func BenchmarkResumeYield(b *testing.B) {
	c := New(func(y *Yielder) error {
		for {
			y.Yield()
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Resume()
	}
	b.StopTimer()
	c.Abort()
}
