package exp

import (
	"strings"
	"testing"

	"repro/internal/hic"
	"repro/internal/ssd"
)

// quick returns reduced-scale options that keep the shapes intact.
func quick() Options { return Options{Ops: 60, WaysList: []int{2, 8}, Blocks: 16} }

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	byParam := map[string]string{}
	for _, r := range rows {
		byParam[r.Parameter] = r.Value
	}
	want := map[string]string{
		"Page read time (Hynix)":   "100.0us",
		"Page read time (Toshiba)": "78.0us",
		"Page read time (Micron)":  "53.0us",
		"Page read size":           "16384 B",
	}
	for k, v := range want {
		if byParam[k] != v {
			t.Errorf("%s = %q, want %q", k, byParam[k], v)
		}
	}
	// Transfer times: the paper reports 185 µs and 100 µs; our bus model
	// computes 164 µs and 82 µs of pure protocol time (the paper's
	// figures include platform DMA overheads). Require the right
	// ballpark and the 2:1 ratio.
	if !strings.Contains(byParam["Page transfer time (100 MT/s)"], "16") {
		t.Errorf("100MT transfer = %q", byParam["Page transfer time (100 MT/s)"])
	}
	if RenderTable1() == "" {
		t.Error("empty render")
	}
}

func TestTable2RatioHolds(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The claim: BABOL needs dramatically less code than paper's
		// hardware implementations, and our measured counts must agree
		// in direction with our own hardware baseline.
		if r.Babol <= 0 || r.HWBased <= 0 {
			t.Errorf("%s: degenerate counts %+v", r.Operation, r)
		}
		if float64(r.PaperSync)/float64(r.PaperBabol) < 5 {
			t.Errorf("%s: paper ratio lost", r.Operation)
		}
	}
	if _, err := RenderTable2(); err != nil {
		t.Fatal(err)
	}
}

func TestTable3OrderingHolds(t *testing.T) {
	rows := Table3()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Sync > Async > BABOL in every resource, mirrors the paper.
	if !(rows[0].Model.LUT > rows[1].Model.LUT && rows[1].Model.LUT > rows[2].Model.LUT) {
		t.Errorf("LUT ordering: %+v", rows)
	}
	if RenderTable3() == "" {
		t.Error("empty render")
	}
}

func TestFig10Shapes(t *testing.T) {
	pts, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	get := func(pkg string, rate int, ctrl ssd.ControllerKind, mhz, luns int) float64 {
		for _, p := range pts {
			if p.Package == pkg && p.RateMT == rate && p.Controller == ctrl && p.LUNs == luns &&
				(ctrl == ssd.CtrlHW || p.CPUMHz == mhz) {
				return p.MBps
			}
		}
		t.Fatalf("missing point %s %d %v %d %d", pkg, rate, ctrl, mhz, luns)
		return 0
	}

	hw8 := get("Hynix", 200, ssd.CtrlHW, 0, 8)
	rtos1000 := get("Hynix", 200, ssd.CtrlBabolRTOS, 1000, 8)
	rtos150 := get("Hynix", 200, ssd.CtrlBabolRTOS, 150, 8)
	coro1000 := get("Hynix", 200, ssd.CtrlBabolCoro, 1000, 8)
	coro150 := get("Hynix", 200, ssd.CtrlBabolCoro, 150, 8)

	// RTOS at 1 GHz performs very similarly to the hardware (paper VI-A).
	if rtos1000 < hw8*0.95 {
		t.Errorf("RTOS@1GHz %f too far below HW %f", rtos1000, hw8)
	}
	// RTOS underperforms on the 150 MHz soft-core.
	if rtos150 >= rtos1000 {
		t.Errorf("RTOS@150 (%f) should trail RTOS@1GHz (%f)", rtos150, rtos1000)
	}
	// Coroutine needs the fast CPU and still trails RTOS.
	if coro1000 >= rtos1000 {
		t.Errorf("Coro@1GHz (%f) should trail RTOS@1GHz (%f)", coro1000, rtos1000)
	}
	if coro150 >= coro1000*0.8 {
		t.Errorf("Coro@150 (%f) should collapse vs Coro@1GHz (%f)", coro150, coro1000)
	}
	// More LUNs help until saturation.
	if hw2 := get("Hynix", 200, ssd.CtrlHW, 0, 2); hw2 > hw8 {
		t.Errorf("throughput fell with more LUNs: %f → %f", hw2, hw8)
	}
	// Slow channels cap everything near the 100 MB/s ceiling.
	if hw100 := get("Hynix", 100, ssd.CtrlHW, 0, 8); hw100 > 100 {
		t.Errorf("100 MT/s exceeded its ceiling: %f", hw100)
	}
	// The Micron module only has 2 LUNs per channel.
	for _, p := range pts {
		if p.Package == "Micron" && p.LUNs > 2 {
			t.Errorf("Micron measured at %d LUNs", p.LUNs)
		}
	}
	if RenderFig10(pts) == "" {
		t.Error("empty render")
	}
}

func TestFig11PollCadence(t *testing.T) {
	res, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	var rtos, coro Fig11Result
	for _, r := range res {
		switch r.Controller {
		case ssd.CtrlBabolRTOS:
			rtos = r
		case ssd.CtrlBabolCoro:
			coro = r
		}
	}
	// Paper: Coro ≈30 µs per polling cycle at 1 GHz; RTOS far faster.
	if coro.MeanPollPeriod.Micros() < 25 || coro.MeanPollPeriod.Micros() > 35 {
		t.Errorf("Coro poll period %v, want ≈30us", coro.MeanPollPeriod)
	}
	if rtos.MeanPollPeriod >= coro.MeanPollPeriod/5 {
		t.Errorf("RTOS poll period %v not ≪ Coro %v", rtos.MeanPollPeriod, coro.MeanPollPeriod)
	}
	// RTOS detects tR completion sooner, so its reads finish faster.
	if rtos.MeanReadLatency >= coro.MeanReadLatency {
		t.Errorf("RTOS latency %v not below Coro %v", rtos.MeanReadLatency, coro.MeanReadLatency)
	}
	if !strings.Contains(RenderFig11(res), "READ-STATUS") {
		t.Error("render lacks analyzer trace")
	}
}

func TestFig12EightWayDeltas(t *testing.T) {
	opt := quick()
	opt.Ops = 120
	opt.WaysList = []int{8}
	pts, err := Fig12(opt)
	if err != nil {
		t.Fatal(err)
	}
	get := func(p hic.Pattern, c ssd.ControllerKind) float64 {
		for _, pt := range pts {
			if pt.Pattern == p && pt.Controller == c && pt.Ways == 8 {
				return pt.MBps
			}
		}
		t.Fatalf("missing %v %v", p, c)
		return 0
	}
	for _, pattern := range []hic.Pattern{hic.Sequential, hic.Random} {
		hw := get(pattern, ssd.CtrlHW)
		rtos := get(pattern, ssd.CtrlBabolRTOS)
		coro := get(pattern, ssd.CtrlBabolCoro)
		// Paper: at 8 ways, RTOS within a few percent, Coro within ≈10%.
		if rtos < hw*0.94 {
			t.Errorf("%v: RTOS %f more than 6%% below HW %f", pattern, rtos, hw)
		}
		if coro < hw*0.80 {
			t.Errorf("%v: Coro %f more than 20%% below HW %f", pattern, coro, hw)
		}
		if coro > rtos {
			t.Errorf("%v: Coro %f beat RTOS %f", pattern, coro, rtos)
		}
	}
	if RenderFig12(pts) == "" {
		t.Error("empty render")
	}
}

func TestFig9Renders(t *testing.T) {
	out, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"READ.1", "READ-STATUS", "CHG-RD-COL", "16384B"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig9 missing %q", want)
		}
	}
}

func TestCSVOutputs(t *testing.T) {
	pts := []Fig10Point{{Package: "Hynix", RateMT: 200, Controller: ssd.CtrlHW, LUNs: 8, MBps: 196.4}}
	csv := Fig10CSV(pts)
	if !strings.Contains(csv, "package,rate_mt") || !strings.Contains(csv, "Hynix,200,HW,0,8,196.40") {
		t.Errorf("fig10 csv: %q", csv)
	}
	p12 := []Fig12Point{{Pattern: hic.Random, Controller: ssd.CtrlBabolRTOS, Ways: 4, MBps: 184.0}}
	csv = Fig12CSV(p12)
	if !strings.Contains(csv, "random,RTOS,4,184.00") {
		t.Errorf("fig12 csv: %q", csv)
	}
}
