// Package txn defines BABOL's "waveform instruction set": the queueable
// descriptions of waveform segments that the software layer produces and
// the programmable hardware later executes (paper §III). Each instruction
// parameterizes one µFSM:
//
//	ChipControl → the C/E Control µFSM (chip-enable bitmap)
//	CmdAddr     → the Command/Address Writer µFSM
//	DataWrite   → the Data Writer µFSM + Packetizer (DRAM → LUN)
//	DataRead    → the Data Reader µFSM + Packetizer (LUN → DRAM)
//	TimerWait   → the Timer µFSM
//
// A Transaction bundles consecutive instructions into the atomic unit the
// channel scheduler works with: once started, a transaction monopolizes
// the channel until its last segment finishes.
package txn

import (
	"fmt"
	"strings"

	"repro/internal/bus"
	"repro/internal/onfi"
	"repro/internal/sim"
)

// Instr is one µFSM instruction.
type Instr interface {
	isInstr()
	String() string
}

// ChipControl selects the chips subsequent instructions drive.
type ChipControl struct {
	Mask bus.ChipMask
}

// CmdAddr emits a command/address latch burst.
type CmdAddr struct {
	Latches []onfi.Latch
}

// DataWrite moves N bytes from DRAM address Addr into the selected LUNs'
// page registers.
type DataWrite struct {
	Addr int
	N    int
}

// DataRead moves N bytes from the selected LUN's register into DRAM at
// Addr. If Capture is set, the bytes are additionally returned in the
// transaction's Result (used for status and feature reads).
type DataRead struct {
	Addr    int
	N       int
	Capture bool
}

// TimerWait holds the channel idle for at least D.
type TimerWait struct {
	D sim.Duration
}

func (ChipControl) isInstr() {}
func (CmdAddr) isInstr()     {}
func (DataWrite) isInstr()   {}
func (DataRead) isInstr()    {}
func (TimerWait) isInstr()   {}

func (i ChipControl) String() string { return fmt.Sprintf("chip(%016b)", uint16(i.Mask)) }
func (i CmdAddr) String() string {
	parts := make([]string, len(i.Latches))
	for j, l := range i.Latches {
		parts[j] = fmt.Sprintf("%v:%02X", l.Kind, l.Value)
	}
	return "cmdaddr(" + strings.Join(parts, " ") + ")"
}
func (i DataWrite) String() string { return fmt.Sprintf("write(dram=%d n=%d)", i.Addr, i.N) }
func (i DataRead) String() string  { return fmt.Sprintf("read(dram=%d n=%d)", i.Addr, i.N) }
func (i TimerWait) String() string { return fmt.Sprintf("wait(%v)", i.D) }

// Result reports a transaction's outcome to the operation that built it.
type Result struct {
	// Captured holds the bytes of every DataRead with Capture set,
	// concatenated.
	Captured []byte
	// End is when the transaction's last segment left the channel.
	End sim.Time
	// Err is a protocol error surfaced by the LUN or bus, if any.
	Err error
}

// Transaction is the atomic scheduling unit.
type Transaction struct {
	// ID is assigned by the controller at enqueue time.
	ID uint64
	// OpID identifies the operation that built the transaction.
	OpID uint64
	// Chip is the primary target (scheduling key); -1 if none.
	Chip int
	// Priority is interpreted by priority-based transaction schedulers;
	// larger is more urgent.
	Priority int
	// Final marks an operation's statically known last transaction. The
	// execution unit uses it to open the chip's admission gate the
	// instant the transaction completes, letting a pre-staged next
	// operation's first latch take the channel with no software on the
	// path.
	Final bool
	// Instrs are executed in order.
	Instrs []Instr
	// Done is invoked by the execution unit when the transaction
	// completes (may be nil).
	Done func(Result)
}

// Validate rejects structurally broken transactions.
func (t *Transaction) Validate() error {
	if len(t.Instrs) == 0 {
		return fmt.Errorf("txn: empty transaction")
	}
	sel := false
	for _, in := range t.Instrs {
		switch v := in.(type) {
		case ChipControl:
			if v.Mask == 0 {
				return fmt.Errorf("txn: chip control with empty mask")
			}
			sel = true
		case CmdAddr:
			if len(v.Latches) == 0 {
				return fmt.Errorf("txn: empty latch burst")
			}
			if !sel {
				return fmt.Errorf("txn: latch burst before any chip selection")
			}
		case DataWrite:
			if v.N <= 0 {
				return fmt.Errorf("txn: data write of %d bytes", v.N)
			}
			if !sel {
				return fmt.Errorf("txn: data write before any chip selection")
			}
		case DataRead:
			if v.N <= 0 {
				return fmt.Errorf("txn: data read of %d bytes", v.N)
			}
			if !sel {
				return fmt.Errorf("txn: data read before any chip selection")
			}
		case TimerWait:
			if v.D < 0 {
				return fmt.Errorf("txn: negative timer wait")
			}
		}
	}
	return nil
}

// EstimateDuration predicts the channel time the transaction will occupy
// under the given timing and bus configuration. Shortest-first schedulers
// sort by this.
func (t *Transaction) EstimateDuration(tm onfi.Timing, cfg onfi.BusConfig) sim.Duration {
	var d sim.Duration
	for _, in := range t.Instrs {
		switch v := in.(type) {
		case CmdAddr:
			d += tm.LatchSegment(len(v.Latches))
		case DataWrite:
			d += tm.DataSegment(cfg, v.N)
		case DataRead:
			d += tm.TWHR + tm.DataSegment(cfg, v.N)
		case TimerWait:
			d += v.D
		}
	}
	return d
}

// String summarizes the transaction for traces.
func (t *Transaction) String() string {
	parts := make([]string, len(t.Instrs))
	for i, in := range t.Instrs {
		parts[i] = in.String()
	}
	return fmt.Sprintf("txn#%d(op%d chip%d: %s)", t.ID, t.OpID, t.Chip, strings.Join(parts, "; "))
}
