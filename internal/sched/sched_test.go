package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/onfi"
	"repro/internal/sim"
	"repro/internal/txn"
)

type fakeTask struct {
	id   uint64
	chip int
	prio int
}

func (f fakeTask) TaskID() uint64    { return f.id }
func (f fakeTask) TaskChip() int     { return f.chip }
func (f fakeTask) TaskPriority() int { return f.prio }

func drainTasks(q TaskQueue) []uint64 {
	var out []uint64
	for {
		t := q.Pop()
		if t == nil {
			return out
		}
		out = append(out, t.TaskID())
	}
}

func drainTxns(q TxnQueue) []uint64 {
	var out []uint64
	for {
		t := q.Pop()
		if t == nil {
			return out
		}
		out = append(out, t.ID)
	}
}

func TestTaskFIFO(t *testing.T) {
	q := NewTaskFIFO()
	if q.Name() != "fifo" {
		t.Error("name")
	}
	for i := uint64(1); i <= 3; i++ {
		q.Push(fakeTask{id: i})
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	got := drainTasks(q)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("order: %v", got)
	}
	if q.Pop() != nil {
		t.Error("pop from empty should be nil")
	}
}

func TestTaskRoundRobinFairness(t *testing.T) {
	q := NewTaskRoundRobin()
	// Chip 0 floods; chip 1 has one task.
	for i := uint64(1); i <= 4; i++ {
		q.Push(fakeTask{id: i, chip: 0})
	}
	q.Push(fakeTask{id: 100, chip: 1})
	got := drainTasks(q)
	// Chip 1's task must appear second, not last.
	if got[1] != 100 {
		t.Errorf("round robin starved chip 1: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("lost tasks: %v", got)
	}
}

func TestTaskPriorityOrder(t *testing.T) {
	q := NewTaskPriority()
	q.Push(fakeTask{id: 1, prio: 0})
	q.Push(fakeTask{id: 2, prio: 5})
	q.Push(fakeTask{id: 3, prio: 5})
	q.Push(fakeTask{id: 4, prio: 1})
	got := drainTasks(q)
	want := []uint64{2, 3, 4, 1} // prio desc, FIFO within level
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTxnFIFO(t *testing.T) {
	q := NewTxnFIFO()
	for i := uint64(1); i <= 3; i++ {
		q.Push(&txn.Transaction{ID: i})
	}
	got := drainTxns(q)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order: %v", got)
	}
}

func TestTxnRoundRobinInterleavesChips(t *testing.T) {
	q := NewTxnRoundRobin()
	q.Push(&txn.Transaction{ID: 1, Chip: 0})
	q.Push(&txn.Transaction{ID: 2, Chip: 0})
	q.Push(&txn.Transaction{ID: 3, Chip: 1})
	q.Push(&txn.Transaction{ID: 4, Chip: 1})
	got := drainTxns(q)
	want := []uint64{1, 3, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTxnPriority(t *testing.T) {
	q := NewTxnPriority()
	q.Push(&txn.Transaction{ID: 1, Priority: 0})
	q.Push(&txn.Transaction{ID: 2, Priority: 9})
	q.Push(&txn.Transaction{ID: 3, Priority: 9})
	got := drainTxns(q)
	want := []uint64{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTxnShortestFirst(t *testing.T) {
	tm := onfi.DefaultTiming()
	cfg := onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}
	q := NewTxnShortestFirst(tm, cfg)
	long := &txn.Transaction{ID: 1, Instrs: []txn.Instr{txn.TimerWait(sim.Millisecond)}}
	short := &txn.Transaction{ID: 2, Instrs: []txn.Instr{txn.TimerWait(sim.Microsecond)}}
	q.Push(long)
	q.Push(short)
	got := drainTxns(q)
	if got[0] != 2 {
		t.Errorf("shortest-first order: %v", got)
	}
}

// Property: every queue conserves tasks — n pushes yield exactly n pops
// with the same ID multiset.
func TestConservationProperty(t *testing.T) {
	mkQueues := func() []TaskQueue {
		return []TaskQueue{NewTaskFIFO(), NewTaskRoundRobin(), NewTaskPriority()}
	}
	f := func(ids []uint8) bool {
		for _, q := range mkQueues() {
			want := make(map[uint64]int)
			for i, id := range ids {
				q.Push(fakeTask{id: uint64(id), chip: i % 4, prio: i % 3})
				want[uint64(id)]++
			}
			got := make(map[uint64]int)
			for _, id := range drainTasks(q) {
				got[id]++
			}
			if len(got) != len(want) {
				return false
			}
			for k, v := range want {
				if got[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: round-robin bounds per-chip waiting — with k chips each
// holding work, no chip waits more than k pops for its next service.
func TestRoundRobinBoundProperty(t *testing.T) {
	const chips = 4
	q := NewTaskRoundRobin()
	id := uint64(0)
	for c := 0; c < chips; c++ {
		for i := 0; i < 10; i++ {
			id++
			q.Push(fakeTask{id: id, chip: c})
		}
	}
	lastSeen := make(map[int]int)
	for pos := 0; ; pos++ {
		task := q.Pop()
		if task == nil {
			break
		}
		chip := task.TaskChip()
		if prev, ok := lastSeen[chip]; ok {
			if pos-prev > chips {
				t.Fatalf("chip %d waited %d pops", chip, pos-prev)
			}
		}
		lastSeen[chip] = pos
	}
}

func TestTxnIssueFirst(t *testing.T) {
	q := NewTxnIssueFirst()
	if q.Name() != "issue-first" {
		t.Error("name")
	}
	transfer := &txn.Transaction{ID: 1, Chip: 0, Instrs: []txn.Instr{
		txn.ChipControl(1),
		txn.DataRead(0, 16384, false),
	}}
	issue := &txn.Transaction{ID: 2, Chip: 1, Instrs: []txn.Instr{
		txn.ChipControl(2),
		txn.CmdAddr([]onfi.Latch{onfi.CmdLatch(onfi.CmdRead1)}),
	}}
	poll := &txn.Transaction{ID: 3, Chip: 0, Instrs: []txn.Instr{
		txn.ChipControl(1),
		txn.CmdAddr([]onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}),
		txn.DataRead(-1, 1, true),
	}}
	writeTx := &txn.Transaction{ID: 4, Chip: 1, Instrs: []txn.Instr{
		txn.ChipControl(2),
		txn.DataWrite(0, 512),
	}}
	q.Push(transfer)
	q.Push(poll)
	q.Push(issue)
	q.Push(writeTx)
	if q.Len() != 4 {
		t.Fatalf("len %d", q.Len())
	}
	got := drainTxns(q)
	// The pure latch burst jumps ahead; polls and transfers keep arrival
	// order within the chip-RR class.
	if got[0] != 2 {
		t.Fatalf("issue txn not first: %v", got)
	}
	if len(got) != 4 {
		t.Fatalf("lost transactions: %v", got)
	}
	if q.Pop() != nil {
		t.Error("pop from empty")
	}
}

func TestTxnIssueFirstTimerIsIssueClass(t *testing.T) {
	q := NewTxnIssueFirst()
	timer := &txn.Transaction{ID: 1, Instrs: []txn.Instr{txn.TimerWait(sim.Microsecond)}}
	data := &txn.Transaction{ID: 2, Instrs: []txn.Instr{txn.ChipControl(1), txn.DataRead(0, 8, false)}}
	q.Push(data)
	q.Push(timer)
	if got := drainTxns(q); got[0] != 1 {
		t.Errorf("timer-only txn should be issue class: %v", got)
	}
}
