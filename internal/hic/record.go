package hic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Recorded-trace replay, Flashmon-style: a run's host command stream is
// captured at the Frontend enqueue boundary as JSONL — one object per
// line:
//
//	{"at_ps":0,"queue":0,"tenant":"hot-reader","op":"read","lpn":512}
//
// at_ps is the absolute virtual enqueue instant in picoseconds (runs
// start at 0 on a fresh rig), and lines are in enqueue order, so
// arrivals are non-decreasing. Replaying a recording on a fresh,
// identically configured rig enqueues every command at its recorded
// instant in its recorded order — the same host command stream, open
// loop — and re-recording the replay reproduces the file byte for byte.

// RecordEntry is one recorded host command.
type RecordEntry struct {
	AtPs   int64  `json:"at_ps"`
	Queue  int    `json:"queue"`
	Tenant string `json:"tenant,omitempty"`
	Op     string `json:"op"`
	LPN    int    `json:"lpn"`
}

// Recorder captures a Frontend's enqueue stream (FrontendConfig.Recorder).
type Recorder struct {
	entries []RecordEntry
}

// record appends one enqueue; the Frontend calls it.
func (r *Recorder) record(at sim.Time, queue int, cmd Command) {
	r.entries = append(r.entries, RecordEntry{
		AtPs: int64(at), Queue: queue, Tenant: cmd.Tenant,
		Op: cmd.Kind.String(), LPN: cmd.LPN,
	})
}

// Len reports the captured command count.
func (r *Recorder) Len() int { return len(r.entries) }

// Entries returns the captured stream in enqueue order. The slice is
// the recorder's own; treat it as read-only.
func (r *Recorder) Entries() []RecordEntry { return r.entries }

// WriteJSONL streams the recording, one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a recorded trace, validating what replay relies on:
// known ops, in-range fields, non-decreasing arrivals.
func ReadJSONL(rd io.Reader) ([]RecordEntry, error) {
	var out []RecordEntry
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	var last int64
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e RecordEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("hic: trace line %d: %w", lineNo, err)
		}
		if _, ok := KindFromString(e.Op); !ok {
			return nil, fmt.Errorf("hic: trace line %d: bad op %q", lineNo, e.Op)
		}
		if e.AtPs < 0 || e.LPN < 0 || e.Queue < 0 {
			return nil, fmt.Errorf("hic: trace line %d: negative field in %+v", lineNo, e)
		}
		if e.AtPs < last {
			return nil, fmt.Errorf("hic: trace line %d: arrivals must be non-decreasing", lineNo)
		}
		last = e.AtPs
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hic: trace has no commands")
	}
	return out, nil
}

// Replay schedules every recorded command's enqueue at its recorded
// instant (open loop) and returns the aggregate result, populated once
// the caller runs the kernel to completion. Completions emit
// obs.KindHostCmd events carrying each entry's recorded tenant, so the
// per-tenant analyze pipeline works on replays too; nil tracer disables
// emission. Replay on a rig whose clock is already past an entry's
// instant enqueues it immediately.
func Replay(k *sim.Kernel, f *Frontend, entries []RecordEntry, tracer obs.Tracer) (*Result, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("hic: empty trace")
	}
	for i, e := range entries {
		if e.Queue >= f.Queues() {
			return nil, fmt.Errorf("hic: trace entry %d: queue %d but frontend has %d", i, e.Queue, f.Queues())
		}
	}
	res := &Result{Start: k.Now(), latencies: make([]sim.Duration, 0, len(entries))}
	for _, e := range entries {
		e := e
		kind, _ := KindFromString(e.Op)
		d := sim.Time(e.AtPs).Sub(k.Now())
		if d < 0 {
			d = 0
		}
		k.After(d, func() {
			submitted := k.Now()
			f.Enqueue(e.Queue, Command{
				Kind: kind, LPN: e.LPN, Tenant: e.Tenant,
				Done: func(err error) {
					now := k.Now()
					if err != nil {
						res.Failed++
					} else {
						res.Completed++
						res.latencies = append(res.latencies, now.Sub(submitted))
					}
					res.End = now
					if tracer != nil {
						tracer.Event(obs.Event{
							Time: now, Kind: obs.KindHostCmd, Chip: -1,
							Label: e.Tenant, Depth: e.Queue,
							Cycles: int64(kind), Dur: now.Sub(submitted),
							Err: err != nil,
						})
					}
				},
			})
		})
	}
	return res, nil
}
