package exp

import (
	"bytes"
	"fmt"
	"testing"
)

// TestCoroPoolDeterminism holds the pooled and unpooled coroutine paths
// byte-for-byte equal: recycling goroutines through coro.Pool must not
// change a single figure row or trace event, at any worker count. This
// is the simulation-semantics half of the pooling contract (the perf
// half is BenchmarkCoroNew / TestAllocGateCoroPool).
func TestCoroPoolDeterminism(t *testing.T) {
	base := quick()
	base.Parallel = 8

	t.Run("fig10", func(t *testing.T) {
		var csv [2]string
		var trace [2][]byte
		for i, noPool := range []bool{false, true} {
			opt := base
			opt.NoCoroPool = noPool
			trace[i] = traceRun(t, opt, func(o Options) error {
				pts, err := Fig10(o)
				if err == nil {
					csv[i] = Fig10CSV(pts)
				}
				return err
			})
		}
		if csv[0] != csv[1] {
			t.Error("fig10 results differ between pooled and unpooled coroutines")
		}
		if !bytes.Equal(trace[0], trace[1]) {
			t.Error("fig10 merged traces differ between pooled and unpooled coroutines")
		}
		if len(trace[0]) == 0 {
			t.Error("fig10 trace is empty; determinism check is vacuous")
		}
	})

	// Fig11 captures channel waveforms and polling cadence — the most
	// timing-sensitive rendering we have; compare the full result struct
	// including the analyzer trace text.
	t.Run("fig11", func(t *testing.T) {
		var rendered [2]string
		var trace [2][]byte
		for i, noPool := range []bool{false, true} {
			opt := base
			opt.NoCoroPool = noPool
			trace[i] = traceRun(t, opt, func(o Options) error {
				res, err := Fig11(o)
				if err == nil {
					rendered[i] = fmt.Sprintf("%+v", res)
				}
				return err
			})
		}
		if rendered[0] != rendered[1] {
			t.Error("fig11 results differ between pooled and unpooled coroutines")
		}
		if !bytes.Equal(trace[0], trace[1]) {
			t.Error("fig11 merged traces differ between pooled and unpooled coroutines")
		}
	})

	t.Run("fig12", func(t *testing.T) {
		var csv [2]string
		var trace [2][]byte
		for i, noPool := range []bool{false, true} {
			opt := base
			opt.NoCoroPool = noPool
			opt.Ops = 120
			opt.WaysList = []int{8}
			trace[i] = traceRun(t, opt, func(o Options) error {
				pts, err := Fig12(o)
				if err == nil {
					csv[i] = Fig12CSV(pts)
				}
				return err
			})
		}
		if csv[0] != csv[1] {
			t.Error("fig12 results differ between pooled and unpooled coroutines")
		}
		if !bytes.Equal(trace[0], trace[1]) {
			t.Error("fig12 merged traces differ between pooled and unpooled coroutines")
		}
	})

	// Chaos exercises the reuse-heavy paths pooling could plausibly
	// disturb: aborted operations, RESET-driven reissues, and offlining
	// — all recycling coroutines through the same pool.
	t.Run("chaos", func(t *testing.T) {
		seeds := []int64{1, 2, 3, 4, 5, 6}
		var csv [2]string
		var trace [2][]byte
		for i, noPool := range []bool{false, true} {
			opt := base
			opt.NoCoroPool = noPool
			trace[i] = traceRun(t, opt, func(o Options) error {
				pts, err := Chaos(o, seeds)
				if err == nil {
					csv[i] = ChaosCSV(pts)
				}
				return err
			})
		}
		if csv[0] != csv[1] {
			t.Error("chaos results differ between pooled and unpooled coroutines")
		}
		if !bytes.Equal(trace[0], trace[1]) {
			t.Error("chaos merged traces differ between pooled and unpooled coroutines")
		}
		if len(trace[0]) == 0 {
			t.Error("chaos trace is empty; determinism check is vacuous")
		}
	})
}
