package ssd

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/hic"
)

// waitGoroutines polls until the process goroutine count drops to at
// most want — coroutine goroutine exit is asynchronous after the final
// handshake, so an immediate count is racy by construction.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine count stuck at %d, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

// A full rig lifecycle — build, preload, mixed read/write workload with
// GC pressure, Close — must return the process goroutine count to
// baseline: no operation coroutines left suspended, no parked pool
// workers surviving teardown. This is the end-to-end teardown contract
// the per-package tests (coro, core) check in isolation.
func TestRigLifecycleLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Channels = 2
	rig, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rig.CoroPool == nil {
		t.Fatal("BABOL rig built without a coroutine pool")
	}
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical); err != nil {
		t.Fatal(err)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Random, Kind: hic.KindWrite, ReadPercent: 50,
		NumOps: 400, QueueDepth: 8, LogicalPages: logical, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Completed != 400 || res.Failed != 0 {
		t.Fatalf("workload: %+v", res)
	}
	// Pooling is the reason the goroutine count stays flat mid-run too:
	// 400 host ops (plus GC traffic) must not have spawned anywhere near
	// one worker each — only as many as were ever concurrently live.
	if n := rig.CoroPool.Spawned(); n >= 100 {
		t.Errorf("pool spawned %d workers for a 400-op workload; reuse is broken", n)
	}
	rig.Close()
	waitGoroutines(t, base)
}

// Closing a rig mid-workload — operations still suspended on the kernel
// — must abort the in-flight coroutines and stop the pool, returning to
// the goroutine baseline without requiring the workload to drain.
func TestRigCloseMidWorkloadLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	rig, err := Build(smallBuild(CtrlBabolRTOS))
	if err != nil {
		t.Fatal(err)
	}
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical); err != nil {
		t.Fatal(err)
	}
	if _, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindRead,
		NumOps: 100, QueueDepth: 8, LogicalPages: logical,
	}); err != nil {
		t.Fatal(err)
	}
	// Advance partway: some operations complete, others are suspended
	// mid-transaction when we tear down.
	for i := 0; i < 200 && rig.Kernel.Step(); i++ {
	}
	rig.Close()
	waitGoroutines(t, base)
}
