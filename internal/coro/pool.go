package coro

// Pool recycles coroutine goroutines across operations. A coroutine
// obtained from Get parks its goroutine on the pool's free list when it
// finishes (normally or via Abort) instead of exiting; the next Get pops
// a parked worker and re-arms it with a fresh function. Steady-state
// coroutine turnover therefore costs one resume-style channel handshake
// and zero allocations, where New costs a goroutine spawn (~5 allocs,
// ~2.8 µs) per operation.
//
// Concurrency contract: a Pool belongs to one simulation rig and is
// driven from that rig's single kernel goroutine, exactly like the
// coroutines themselves. The free list needs no lock because a worker
// only touches it while the driver is blocked inside Resume waiting for
// that worker's yield — every access is ordered by the handshake
// channels. Rigs running concurrently (parallel sweeps) must each own a
// private Pool; they share nothing.
type Pool struct {
	free   []*Coroutine
	closed bool

	// spawned counts worker goroutines ever created; reuse keeps it
	// flat. Exposed for tests via Spawned.
	spawned int
}

// NewPool returns an empty pool. Workers are spawned on demand by Get
// and live until Close (or until they finish while the pool is closed).
func NewPool() *Pool { return &Pool{} }

// Get returns a coroutine that will run fn, reusing a parked goroutine
// when one is available. Like New, fn does not run until the first
// Resume. The returned handle is owned by the caller until the
// coroutine finishes; at that instant the goroutine re-parks itself and
// the handle must be dropped (a later Get may re-issue it).
//
// Get on a closed pool degrades to an unpooled New: correct, just not
// recycled.
func (p *Pool) Get(fn func(*Yielder) error) *Coroutine {
	if p.closed {
		return New(fn)
	}
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		c.fn = fn
		c.finished = false
		c.aborted = false
		c.unwinding = false
		c.err = nil
		return c
	}
	c := newCoroutine(fn)
	p.spawned++
	go p.work(c)
	return c
}

// work is the pooled worker loop: run one coroutine body per wake-up,
// park between bodies. The abort unwind (and any body panic) is
// contained by runBody, so an Abort cannot corrupt the worker's loop
// state — the goroutine parks and is reusable afterwards.
func (p *Pool) work(c *Coroutine) {
	for {
		<-c.resume
		if c.stop {
			return
		}
		c.err = c.runBody()
		c.finished = true
		// Park strictly before the final yield signal: the driver is
		// still blocked in Resume, so it cannot observe (or Get) a
		// half-parked coroutine, and the channel handshake orders this
		// append against the driver's later free-list accesses.
		parked := p.park(c)
		c.yielded <- struct{}{}
		if !parked {
			return
		}
	}
}

// park returns c to the free list, reporting whether the worker should
// keep living. Called only from c's own goroutine while the driver is
// blocked in Resume.
func (p *Pool) park(c *Coroutine) bool {
	if p.closed {
		return false
	}
	c.fn = nil // drop the body's closure; the next Get installs a fresh one
	p.free = append(p.free, c)
	return true
}

// Parked reports how many workers are idle on the free list.
func (p *Pool) Parked() int { return len(p.free) }

// Spawned reports how many worker goroutines the pool ever created; a
// steady-state workload holds it flat at its peak concurrency.
func (p *Pool) Spawned() int { return p.spawned }

// Close stops every parked worker goroutine and marks the pool closed:
// coroutines still in flight finish normally and their workers exit
// instead of re-parking, and later Gets fall back to unpooled New.
// Close is idempotent. Callers must Abort in-flight coroutines first
// (e.g. core.Controller.Close does) if they want the goroutine count
// back to baseline.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	free := p.free
	p.free = nil
	for _, c := range free {
		// The parked worker is blocked at the top of its loop waiting
		// on resume; stop is set strictly before the wake-up send, so
		// the worker observes it and exits without signalling.
		c.stop = true
		c.resume <- struct{}{}
	}
}
