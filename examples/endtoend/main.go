// Endtoend: a complete SSD — host interface, FTL, channel controller,
// NAND packages — with the controller swapped between the hardware
// baseline and the two BABOL software environments, reproducing the
// paper's end-to-end experiment (Fig. 12) in miniature. The write phase
// also drives the FTL hard enough to trigger garbage collection.
package main

import (
	"fmt"
	"log"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/ssd"
)

func main() {
	fmt.Println("end-to-end SSD comparison: Hynix, 8 ways, 200 MT/s, 1 GHz firmware core")
	fmt.Printf("%-6s %-12s %12s %10s %12s\n", "ctrl", "workload", "MB/s", "IOPS", "p99 latency")

	for _, kind := range []ssd.ControllerKind{ssd.CtrlHW, ssd.CtrlBabolRTOS, ssd.CtrlBabolCoro} {
		for _, pattern := range []hic.Pattern{hic.Sequential, hic.Random} {
			params := nand.Hynix()
			params.Geometry.BlocksPerLUN = 64
			rig, err := ssd.Build(ssd.BuildConfig{
				Params: params, Ways: 8, RateMT: 200,
				Controller: kind, CPUMHz: 1000,
			})
			if err != nil {
				log.Fatal(err)
			}
			working := 256
			if err := rig.SSD.Preload(working); err != nil {
				log.Fatal(err)
			}
			res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
				Pattern: pattern, Kind: hic.KindRead,
				NumOps: 400, QueueDepth: 32, LogicalPages: working, Seed: 3,
			})
			if err != nil {
				log.Fatal(err)
			}
			rig.Kernel.Run()
			if res.Failed > 0 {
				log.Fatalf("%d reads failed", res.Failed)
			}
			fmt.Printf("%-6s %-12s %12.1f %10.0f %12v\n",
				kind, pattern, res.BandwidthMBps(16384), res.IOPS(), res.LatencyPercentile(99))
			rig.Close()
		}
	}

	// A write-heavy pass on a small drive to exercise garbage collection.
	fmt.Println("\nwrite pressure (small drive, 4× logical overwrite → steady-state GC):")
	params := nand.Hynix()
	params.Geometry.BlocksPerLUN = 12
	rig, err := ssd.Build(ssd.BuildConfig{
		Params: params, Ways: 2, RateMT: 200,
		Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rig.Close()
	logical := rig.FTL.LogicalPages()
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical * 4, QueueDepth: 4, LogicalPages: logical,
	})
	if err != nil {
		log.Fatal(err)
	}
	rig.Kernel.Run()
	st := rig.SSD.Stats()
	fst := rig.FTL.Stats()
	fmt.Printf("  %d writes (%d failed), %.1f MB/s\n", res.Completed, res.Failed, res.BandwidthMBps(16384))
	fmt.Printf("  GC cycles: %d, relocated pages: %d, write amplification: %.2f\n",
		st.GCCycles, fst.GCMoves, fst.WriteAmplification())

	// Verify every logical page still reads back intact after GC churn.
	verified := 0
	for lpn := 0; lpn < logical; lpn++ {
		rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) {
			if err != nil {
				log.Fatalf("post-GC read failed: %v", err)
			}
			verified++
		}})
	}
	rig.Kernel.Run()
	fmt.Printf("  post-GC integrity: %d/%d pages verified ✓\n", verified, logical)
}
