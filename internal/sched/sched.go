// Package sched provides the pluggable scheduling policies of BABOL's
// Operation Scheduling module: Task schedulers decide which admitted
// operation the firmware resumes next, and Transaction schedulers decide
// the order in which queued transactions take the channel.
//
// BABOL deliberately does not mandate an objective for either scheduler
// (paper §V); the controller accepts any implementation of the two queue
// interfaces. This package ships the policies used in the evaluation —
// FIFO, chip-fair round-robin, priority — plus a shortest-segment-first
// transaction policy for the ablation benches.
package sched

import (
	"container/heap"

	"repro/internal/onfi"
	"repro/internal/sim"
	"repro/internal/txn"
)

// Task is what a task scheduler orders: a runnable operation.
type Task interface {
	// TaskID is a unique, monotonically assigned operation ID.
	TaskID() uint64
	// TaskChip is the operation's primary chip, used by fairness policies.
	TaskChip() int
	// TaskPriority is interpreted by priority policies; larger runs first.
	TaskPriority() int
}

// TaskQueue orders runnable operations.
type TaskQueue interface {
	Name() string
	Push(Task)
	Pop() Task // nil when empty
	Len() int
}

// TxnQueue orders executable transactions.
type TxnQueue interface {
	Name() string
	Push(*txn.Transaction)
	Pop() *txn.Transaction // nil when empty
	Len() int
}

// ---------------------------------------------------------------- FIFO --

type taskFIFO struct{ q ring[Task] }

// NewTaskFIFO returns a first-come-first-served task scheduler.
func NewTaskFIFO() TaskQueue { return &taskFIFO{} }

func (f *taskFIFO) Name() string { return "fifo" }
func (f *taskFIFO) Push(t Task)  { f.q.push(t) }
func (f *taskFIFO) Len() int     { return f.q.len() }
func (f *taskFIFO) Pop() Task {
	t, ok := f.q.pop()
	if !ok {
		return nil
	}
	return t
}

type txnFIFO struct{ q ring[*txn.Transaction] }

// NewTxnFIFO returns a first-come-first-served transaction scheduler.
func NewTxnFIFO() TxnQueue { return &txnFIFO{} }

func (f *txnFIFO) Name() string            { return "fifo" }
func (f *txnFIFO) Push(t *txn.Transaction) { f.q.push(t) }
func (f *txnFIFO) Len() int                { return f.q.len() }
func (f *txnFIFO) Pop() *txn.Transaction {
	t, ok := f.q.pop()
	if !ok {
		return nil
	}
	return t
}

// --------------------------------------------------------- round robin --

// roundRobin services per-chip FIFOs in rotating order, so no chip's
// operations can starve the others even under asymmetric load.
type taskRR struct {
	perChip map[int]*ring[Task]
	order   []int
	next    int
	n       int
}

// NewTaskRoundRobin returns a chip-fair round-robin task scheduler.
func NewTaskRoundRobin() TaskQueue { return &taskRR{perChip: make(map[int]*ring[Task])} }

func (r *taskRR) Name() string { return "round-robin" }
func (r *taskRR) Len() int     { return r.n }

func (r *taskRR) Push(t Task) {
	chip := t.TaskChip()
	q, ok := r.perChip[chip]
	if !ok {
		q = &ring[Task]{}
		r.perChip[chip] = q
		r.order = append(r.order, chip)
	}
	q.push(t)
	r.n++
}

func (r *taskRR) Pop() Task {
	if r.n == 0 {
		return nil
	}
	for i := 0; i < len(r.order); i++ {
		chip := r.order[(r.next+i)%len(r.order)]
		if t, ok := r.perChip[chip].pop(); ok {
			r.next = (r.next + i + 1) % len(r.order)
			r.n--
			return t
		}
	}
	return nil
}

type txnRR struct {
	perChip map[int]*ring[*txn.Transaction]
	order   []int
	next    int
	n       int
}

// NewTxnRoundRobin returns a chip-fair round-robin transaction scheduler
// — the "simple version" the paper describes.
func NewTxnRoundRobin() TxnQueue {
	return &txnRR{perChip: make(map[int]*ring[*txn.Transaction])}
}

func (r *txnRR) Name() string { return "round-robin" }
func (r *txnRR) Len() int     { return r.n }

func (r *txnRR) Push(t *txn.Transaction) {
	q, ok := r.perChip[t.Chip]
	if !ok {
		q = &ring[*txn.Transaction]{}
		r.perChip[t.Chip] = q
		r.order = append(r.order, t.Chip)
	}
	q.push(t)
	r.n++
}

func (r *txnRR) Pop() *txn.Transaction {
	if r.n == 0 {
		return nil
	}
	for i := 0; i < len(r.order); i++ {
		chip := r.order[(r.next+i)%len(r.order)]
		if t, ok := r.perChip[chip].pop(); ok {
			r.next = (r.next + i + 1) % len(r.order)
			r.n--
			return t
		}
	}
	return nil
}

// ------------------------------------------------------------ priority --

type taskPrioItem struct {
	t   Task
	seq uint64
}

type taskPrio struct {
	h   []taskPrioItem
	seq uint64
}

// NewTaskPriority returns a priority task scheduler: higher TaskPriority
// first, FIFO within a priority level. The paper's example use is giving
// latency-sensitive workloads (database logging) more attention.
func NewTaskPriority() TaskQueue { return &taskPrio{} }

func (p *taskPrio) Name() string { return "priority" }
func (p *taskPrio) Len() int     { return len(p.h) }

func (p *taskPrio) less(i, j int) bool {
	a, b := p.h[i], p.h[j]
	if a.t.TaskPriority() != b.t.TaskPriority() {
		return a.t.TaskPriority() > b.t.TaskPriority()
	}
	return a.seq < b.seq
}

func (p *taskPrio) Push(t Task) {
	p.seq++
	p.h = append(p.h, taskPrioItem{t: t, seq: p.seq})
	p.up(len(p.h) - 1)
}

func (p *taskPrio) Pop() Task {
	if len(p.h) == 0 {
		return nil
	}
	top := p.h[0]
	last := len(p.h) - 1
	p.h[0] = p.h[last]
	p.h[last] = taskPrioItem{}
	p.h = p.h[:last]
	if len(p.h) > 0 {
		p.down(0)
	}
	return top.t
}

func (p *taskPrio) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !p.less(i, parent) {
			return
		}
		p.h[i], p.h[parent] = p.h[parent], p.h[i]
		i = parent
	}
}

func (p *taskPrio) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(p.h) && p.less(l, small) {
			small = l
		}
		if r < len(p.h) && p.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		p.h[i], p.h[small] = p.h[small], p.h[i]
		i = small
	}
}

// txnPrio orders transactions by Priority (desc), then enqueue order.
type txnPrioHeap struct {
	items []*txn.Transaction
	seqs  []uint64
	seq   uint64
}

func (h *txnPrioHeap) Len() int { return len(h.items) }
func (h *txnPrioHeap) Less(i, j int) bool {
	if h.items[i].Priority != h.items[j].Priority {
		return h.items[i].Priority > h.items[j].Priority
	}
	return h.seqs[i] < h.seqs[j]
}
func (h *txnPrioHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
}
func (h *txnPrioHeap) Push(x interface{}) {
	h.seq++
	h.items = append(h.items, x.(*txn.Transaction))
	h.seqs = append(h.seqs, h.seq)
}
func (h *txnPrioHeap) Pop() interface{} {
	n := len(h.items)
	t := h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	h.seqs = h.seqs[:n-1]
	return t
}

type txnPrio struct{ h txnPrioHeap }

// NewTxnPriority returns a priority transaction scheduler: transactions
// with larger Priority take the channel first.
func NewTxnPriority() TxnQueue { return &txnPrio{} }

func (p *txnPrio) Name() string            { return "priority" }
func (p *txnPrio) Len() int                { return p.h.Len() }
func (p *txnPrio) Push(t *txn.Transaction) { heap.Push(&p.h, t) }
func (p *txnPrio) Pop() *txn.Transaction {
	if p.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&p.h).(*txn.Transaction)
}

// --------------------------------------------------------- issue first --

// txnClass classifies a transaction for the issue-first policy.
func isIssueTxn(t *txn.Transaction) bool {
	for _, in := range t.Instrs {
		switch in.Kind {
		case txn.KindDataRead, txn.KindDataWrite:
			return false
		}
	}
	return true
}

type txnIssueFirst struct {
	issues ring[*txn.Transaction]
	rest   TxnQueue
}

// NewTxnIssueFirst returns the transaction scheduler BABOL uses by
// default: command-issue transactions (latch bursts with no data phase)
// jump ahead of everything else, because they last well under a
// microsecond and start long LUN-internal work — the "prioritize
// commands" policy the paper sketches in §V. Data transfers and status
// polls share the channel round-robin per chip; in particular, polls do
// NOT jump the queue, which is what makes them cheap on a busy channel
// (§VI-C: a queued poll usually executes after tR already expired).
func NewTxnIssueFirst() TxnQueue {
	return &txnIssueFirst{rest: NewTxnRoundRobin()}
}

func (q *txnIssueFirst) Name() string { return "issue-first" }
func (q *txnIssueFirst) Len() int     { return q.issues.len() + q.rest.Len() }

func (q *txnIssueFirst) Push(t *txn.Transaction) {
	if isIssueTxn(t) {
		q.issues.push(t)
		return
	}
	q.rest.Push(t)
}

func (q *txnIssueFirst) Pop() *txn.Transaction {
	if t, ok := q.issues.pop(); ok {
		return t
	}
	return q.rest.Pop()
}

// ------------------------------------------------------ shortest first --

type txnShortItem struct {
	t   *txn.Transaction
	d   sim.Duration
	seq uint64
}

type txnShortHeap []txnShortItem

func (h txnShortHeap) Len() int { return len(h) }
func (h txnShortHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].seq < h[j].seq
}
func (h txnShortHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *txnShortHeap) Push(x interface{}) { *h = append(*h, x.(txnShortItem)) }
func (h *txnShortHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = txnShortItem{}
	*h = old[:n-1]
	return it
}

type txnShortest struct {
	h   txnShortHeap
	tm  onfi.Timing
	cfg onfi.BusConfig
	seq uint64
}

// NewTxnShortestFirst returns a transaction scheduler that runs the
// shortest estimated segment first — it keeps short status polls flowing
// between long data transfers. Used by the ablation benches.
func NewTxnShortestFirst(tm onfi.Timing, cfg onfi.BusConfig) TxnQueue {
	return &txnShortest{tm: tm, cfg: cfg}
}

func (s *txnShortest) Name() string { return "shortest-first" }
func (s *txnShortest) Len() int     { return s.h.Len() }
func (s *txnShortest) Push(t *txn.Transaction) {
	s.seq++
	heap.Push(&s.h, txnShortItem{t: t, d: t.EstimateDuration(s.tm, s.cfg), seq: s.seq})
}
func (s *txnShortest) Pop() *txn.Transaction {
	if s.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&s.h).(txnShortItem).t
}
