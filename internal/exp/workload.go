package exp

import (
	"fmt"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Many-tenant workload experiment: a fixed cast of tenants — a
// sequential streamer, a zipfian hot-set reader, a bursty writer, and a
// mixed read/write/trim tenant — share one drive through the multi-queue
// host frontend, each on its own submission queue and address-space
// slice. Every tenant also runs solo on an identical rig, so the report
// shows what contention costs each of them (solo→contended latency
// slowdown) and how evenly the drive served them (Jain's fairness
// index). The contended run's command stream can be recorded for replay.

// WorkloadConfig shapes the tenant scenario.
type WorkloadConfig struct {
	// Queues is the frontend submission-queue count; 0 defaults to one
	// queue per tenant. Tenants map to queue (index mod Queues), so
	// fewer queues than tenants forces queue sharing.
	Queues int
	// Arbitration picks the dispatch policy (RoundRobin default).
	Arbitration hic.Arbitration
	// Recorder, when non-nil, captures the contended run's command
	// stream at the frontend enqueue boundary (hic JSONL trace).
	Recorder *hic.Recorder
	// Tenants overrides the default cast; nil picks DefaultTenants.
	Tenants []hic.TenantSpec
}

// WorkloadPoint is one tenant's row: solo versus contended latency,
// throughput, and issued mix.
type WorkloadPoint struct {
	Name      string
	Queue     int
	Mix       string
	SoloMean  sim.Duration
	SoloP99   sim.Duration
	ContMean  sim.Duration
	ContP99   sim.Duration
	Slowdown  float64 // contended mean / solo mean
	ContIOPS  float64
	Completed int
	Failed    int
	Reads     int
	Writes    int
	Trims     int
}

// WorkloadResult is the full experiment: per-tenant rows plus the
// contended run's roll-ups.
type WorkloadResult struct {
	Points []WorkloadPoint
	// Fairness is Jain's index over the tenants' contended completion
	// counts.
	Fairness float64
	// Span is the contended run's extent (first issue to last
	// completion).
	Span sim.Duration
}

// workloadWays is the channel width of the workload rig.
const workloadWays = 4

// workloadParams shrinks the Hynix package the way the map-cache
// ablation does: tenant interference needs queue contention, not
// capacity, and small pages keep preload and figure-scale op counts
// fast.
func workloadParams() nand.Params {
	p := nand.Hynix()
	p.Geometry.Planes = 1
	p.Geometry.BlocksPerLUN = 64
	p.Geometry.PagesPerBlk = 16
	p.Geometry.PageBytes = 512
	p.Geometry.SpareBytes = 64
	p.TR = 20 * sim.Microsecond
	p.TPROG = 50 * sim.Microsecond
	p.TBERS = 200 * sim.Microsecond
	p.JitterPct = 0
	p.RawBitErrorPer512B = 0
	return p
}

// workloadSlicePages is each default tenant's address-space slice size.
const workloadSlicePages = 256

// DefaultTenants is the standard cast, ops operations each: a
// sequential reader (the bandwidth hog), a zipfian hot-set reader (the
// latency-sensitive tenant), an on/off bursty writer (the interference
// source), and a mixed read/write/trim tenant (the realist). Slices are
// disjoint, seeds fixed, so the scenario is fully reproducible.
func DefaultTenants(ops int) []hic.TenantSpec {
	return []hic.TenantSpec{
		{
			Name: "seq-reader", Queue: 0, QueueDepth: 8, NumOps: ops,
			Pattern:    hic.Sequential,
			SliceStart: 0 * workloadSlicePages, SlicePages: workloadSlicePages,
			Seed: 11,
		},
		{
			Name: "hot-reader", Queue: 1, QueueDepth: 8, NumOps: ops,
			Pattern: hic.Zipfian, ZipfHot: 64,
			SliceStart: 1 * workloadSlicePages, SlicePages: workloadSlicePages,
			Seed: 13,
		},
		{
			Name: "bursty-writer", Queue: 2, QueueDepth: 4, NumOps: ops,
			Pattern: hic.Random, Mix: hic.Mix{WritePct: 100},
			BurstOn: 200 * sim.Microsecond, BurstOff: 200 * sim.Microsecond,
			SliceStart: 2 * workloadSlicePages, SlicePages: workloadSlicePages,
			Seed: 17,
		},
		{
			Name: "mixed", Queue: 3, QueueDepth: 4, NumOps: ops,
			Pattern: hic.Random, Mix: hic.Mix{ReadPct: 70, WritePct: 20, TrimPct: 10},
			SliceStart: 3 * workloadSlicePages, SlicePages: workloadSlicePages,
			Seed: 19,
		},
	}
}

// Workloads runs the many-tenant contention experiment: each tenant
// solo, then all together, on identically configured rigs. The jobs run
// under the standard sweep runner, so results and merged traces are
// byte-identical at any Options.Parallel and any Options.Shards.
func Workloads(opt Options, cfg WorkloadConfig) (*WorkloadResult, error) {
	opt = opt.withDefaults()
	tenants := cfg.Tenants
	if tenants == nil {
		tenants = DefaultTenants(opt.Ops)
	}
	queues := cfg.Queues
	if queues <= 0 {
		queues = len(tenants)
	}
	// Remap tenants onto the available queues (identity when one queue
	// per tenant).
	specs := make([]hic.TenantSpec, len(tenants))
	for i, t := range tenants {
		t.Queue = i % queues
		specs[i] = t
	}

	// Jobs 0..n-1: each tenant solo. Job n: everyone together. The
	// contended job runs last so a merged trace reads solo runs first —
	// the same order a serial comparison would.
	n := len(specs)
	soloResults := make([][]*hic.TenantResult, n)
	var contended []*hic.TenantResult
	var contendedSpan sim.Duration
	err := sweep(opt, n+1, func(i int, tracer obs.Tracer) error {
		if i < n {
			res, _, err := workloadRun(opt, cfg, queues, specs[i:i+1], nil, tracer)
			if err != nil {
				return fmt.Errorf("workload solo %s: %w", specs[i].Name, err)
			}
			soloResults[i] = res
			return nil
		}
		res, span, err := workloadRun(opt, cfg, queues, specs, cfg.Recorder, tracer)
		if err != nil {
			return fmt.Errorf("workload contended: %w", err)
		}
		contended, contendedSpan = res, span
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &WorkloadResult{Span: contendedSpan}
	var sum, sumSq float64
	for i, spec := range specs {
		solo, cont := soloResults[i][0], contended[i]
		p := WorkloadPoint{
			Name: spec.Name, Queue: spec.Queue, Mix: spec.Mix.String(),
			SoloMean: solo.MeanLatency(), SoloP99: solo.LatencyPercentile(99),
			ContMean: cont.MeanLatency(), ContP99: cont.LatencyPercentile(99),
			ContIOPS:  cont.IOPS(),
			Completed: cont.Completed, Failed: cont.Failed,
			Reads: cont.Reads, Writes: cont.Writes, Trims: cont.Trims,
		}
		if p.SoloMean > 0 {
			p.Slowdown = float64(p.ContMean) / float64(p.SoloMean)
		}
		sum += float64(cont.Completed)
		sumSq += float64(cont.Completed) * float64(cont.Completed)
		out.Points = append(out.Points, p)
	}
	if sumSq > 0 {
		out.Fairness = sum * sum / (float64(len(specs)) * sumSq)
	}
	return out, nil
}

// workloadFrontend shapes the rig's frontend: per-queue windows of 8,
// and a controller command-slot pool of 2 slots per channel way — small
// enough that queues back up and arbitration actually chooses (an
// uncapped frontend dispatches everything on arrival and RR ≡ WRR).
// Under WRR the first queue is the privileged class with a 4-command
// burst per turn.
func workloadFrontend(queues int, arb hic.Arbitration, rec *hic.Recorder) hic.FrontendConfig {
	qcs := make([]hic.QueueConfig, queues)
	for i := range qcs {
		qcs[i] = hic.QueueConfig{Depth: 8, Weight: 1}
	}
	if arb == hic.WeightedRoundRobin {
		qcs[0].Weight = 4
	}
	return hic.FrontendConfig{
		Queues: qcs, Arbitration: arb,
		MaxInFlight: 2 * workloadWays,
		Recorder:    rec,
	}
}

// workloadRun builds one rig, wires the multi-queue frontend over it,
// and drives the given tenants to completion.
func workloadRun(opt Options, cfg WorkloadConfig, queues int, tenants []hic.TenantSpec, rec *hic.Recorder, tracer obs.Tracer) ([]*hic.TenantResult, sim.Duration, error) {
	rig, err := ssd.Build(ssd.BuildConfig{
		Params: workloadParams(), Ways: workloadWays, RateMT: 200,
		Controller: ssd.CtrlBabolCoro, CPUMHz: 1000, Tracer: tracer,
		NoCoroPool: opt.NoCoroPool,
		Shards:     opt.Shards, HostHop: opt.HostHop,
		ShardTelemetry: opt.ShardTelemetry, TraceShardWindows: opt.TraceShardWindows,
		MapCacheBytes: opt.MapCacheBytes,
	})
	if err != nil {
		return nil, 0, err
	}
	defer rig.Close()

	// Preload the union of the tenants' slices so reads hit mapped
	// pages (bounded by the drive's logical capacity).
	working := 0
	for _, t := range tenants {
		if end := t.SliceStart + t.SlicePages; end > working {
			working = end
		}
	}
	if lp := rig.FTL.LogicalPages(); working > lp {
		return nil, 0, fmt.Errorf("tenant slices span %d pages but drive has %d", working, lp)
	}
	if err := rig.SSD.Preload(working); err != nil {
		return nil, 0, err
	}

	f, err := hic.NewFrontend(rig.Kernel, rig.SSD, workloadFrontend(queues, cfg.Arbitration, rec))
	if err != nil {
		return nil, 0, err
	}
	results, err := hic.RunTenants(rig.Kernel, f, tenants, rig.HostTracer())
	if err != nil {
		return nil, 0, err
	}
	rig.Run()

	var start, end sim.Time
	for i, res := range results {
		if res.Done() != tenants[i].NumOps {
			return nil, 0, fmt.Errorf("tenant %s: only %d of %d ops terminated",
				res.Name, res.Done(), tenants[i].NumOps)
		}
		if res.Failed != 0 {
			return nil, 0, fmt.Errorf("tenant %s: %d ops failed", res.Name, res.Failed)
		}
		if i == 0 || res.Start < start {
			start = res.Start
		}
		if res.End > end {
			end = res.End
		}
	}
	if !f.Drained() {
		return nil, 0, fmt.Errorf("frontend not drained: %d in flight, %d pending", f.InFlight(), f.Pending())
	}
	return results, end.Sub(start), nil
}

// ReplayWorkload replays a recorded tenant trace on a fresh rig with
// the same build shape as the recording runs and returns the replay's
// aggregate result. The host command stream is reproduced exactly:
// re-recording the replay yields the original JSONL byte for byte.
func ReplayWorkload(opt Options, cfg WorkloadConfig, entries []hic.RecordEntry) (*hic.Result, error) {
	opt = opt.withDefaults()
	queues := cfg.Queues
	if queues <= 0 {
		queues = len(DefaultTenants(opt.Ops))
	}
	var res *hic.Result
	err := sweep(opt, 1, func(_ int, tracer obs.Tracer) error {
		rig, err := ssd.Build(ssd.BuildConfig{
			Params: workloadParams(), Ways: workloadWays, RateMT: 200,
			Controller: ssd.CtrlBabolCoro, CPUMHz: 1000, Tracer: tracer,
			NoCoroPool: opt.NoCoroPool,
			Shards:     opt.Shards, HostHop: opt.HostHop,
			ShardTelemetry: opt.ShardTelemetry, TraceShardWindows: opt.TraceShardWindows,
			MapCacheBytes: opt.MapCacheBytes,
		})
		if err != nil {
			return err
		}
		defer rig.Close()
		// Replays carry reads against the recording's slices; preload the
		// span the trace touches.
		working := 0
		for _, e := range entries {
			if e.LPN >= working {
				working = e.LPN + 1
			}
		}
		if lp := rig.FTL.LogicalPages(); working > lp {
			return fmt.Errorf("trace touches LPN %d but drive has %d pages", working-1, lp)
		}
		if err := rig.SSD.Preload(working); err != nil {
			return err
		}
		f, err := hic.NewFrontend(rig.Kernel, rig.SSD, workloadFrontend(queues, cfg.Arbitration, cfg.Recorder))
		if err != nil {
			return err
		}
		res, err = hic.Replay(rig.Kernel, f, entries, rig.HostTracer())
		if err != nil {
			return err
		}
		rig.Run()
		if res.Done() != len(entries) {
			return fmt.Errorf("only %d of %d replayed commands terminated", res.Done(), len(entries))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// WorkloadCSV renders the experiment as machine-readable CSV.
func WorkloadCSV(r *WorkloadResult) string {
	out := "tenant,queue,mix,completed,failed,reads,writes,trims," +
		"solo_mean_ps,solo_p99_ps,cont_mean_ps,cont_p99_ps,slowdown,cont_iops,fairness\n"
	for _, p := range r.Points {
		out += fmt.Sprintf("%s,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.1f,%.4f\n",
			p.Name, p.Queue, p.Mix, p.Completed, p.Failed, p.Reads, p.Writes, p.Trims,
			p.SoloMean, p.SoloP99, p.ContMean, p.ContP99, p.Slowdown, p.ContIOPS, r.Fairness)
	}
	return out
}

// RenderWorkload formats the experiment as the tenant-contention table.
func RenderWorkload(r *WorkloadResult, arb hic.Arbitration) string {
	header := fmt.Sprintf("%-14s %-3s %-11s %10s %10s %10s %10s %9s %9s",
		"tenant", "q", "mix", "solo-mean", "cont-mean", "solo-p99", "cont-p99", "slowdown", "iops")
	var rows []string
	for _, p := range r.Points {
		rows = append(rows, fmt.Sprintf("%-14s %-3d %-11s %10s %10s %10s %10s %8.2fx %9.0f",
			p.Name, p.Queue, p.Mix, us(p.SoloMean), us(p.ContMean),
			us(p.SoloP99), us(p.ContP99), p.Slowdown, p.ContIOPS))
	}
	rows = append(rows, fmt.Sprintf("fairness (Jain, completions) = %.3f over %s contended span", r.Fairness, us(r.Span)))
	title := fmt.Sprintf("Tenant QoS under contention (%s arbitration, %d-way shrunk Hynix)\n", arb, workloadWays)
	return table(title+header, rows)
}
