package exp

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/ssd"
)

func TestTimeSplitShapes(t *testing.T) {
	rows, err := TimeSplit(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 2 controllers x 2 clocks", len(rows))
	}
	byKey := map[string]SplitRow{}
	for _, r := range rows {
		if r.Software <= 0 || r.Hardware <= 0 {
			t.Errorf("%v@%d: empty split sw=%v hw=%v", r.Controller, r.CPUMHz, r.Software, r.Hardware)
		}
		if share := r.SoftwareShare(); share <= 0 || share >= 1 {
			t.Errorf("%v@%d: SoftwareShare = %v", r.Controller, r.CPUMHz, share)
		}
		if len(r.Charges) == 0 {
			t.Errorf("%v@%d: no charge breakdown", r.Controller, r.CPUMHz)
		}
		// The analyzer's span correlation must cover every op and its
		// timeline occupancy must agree with the hardware-time sum —
		// the offline `babolbench analyze` path and the in-process
		// numbers are the same computation.
		if r.Components.Latency.Count != r.Reads {
			t.Errorf("%v@%d: %d spans for %d reads", r.Controller, r.CPUMHz, r.Components.Latency.Count, r.Reads)
		}
		if r.Occupancy.Busy != r.Hardware {
			t.Errorf("%v@%d: occupancy busy %v != hardware %v", r.Controller, r.CPUMHz, r.Occupancy.Busy, r.Hardware)
		}
		if r.Components.Latency.P50 <= 0 || r.Components.Latency.P99 < r.Components.Latency.P50 {
			t.Errorf("%v@%d: bad latency percentiles %+v", r.Controller, r.CPUMHz, r.Components.Latency)
		}
		byKey[r.Controller.String()+string(rune('0'+r.CPUMHz/1000))] = r
	}
	// The paper's qualitative shape: the coroutine environment spends a
	// larger software share than the RTOS at the same slow clock.
	var rtos150, coro150 SplitRow
	for _, r := range rows {
		if r.CPUMHz == 150 {
			if r.Controller == ssd.CtrlBabolRTOS {
				rtos150 = r
			} else {
				coro150 = r
			}
		}
	}
	if coro150.SoftwareShare() <= rtos150.SoftwareShare() {
		t.Errorf("Coro@150 share %.2f not above RTOS@150 share %.2f",
			coro150.SoftwareShare(), rtos150.SoftwareShare())
	}

	out := RenderTimeSplit(rows)
	if !strings.Contains(out, "Time split") || !strings.Contains(out, "charge breakdown") {
		t.Errorf("render missing sections:\n%s", out)
	}
	csv := TimeSplitCSV(rows)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 5 {
		t.Errorf("csv rows:\n%s", csv)
	}
}

// TestTimeSplitFeedsExternalTracer verifies Options.Tracer reaches the
// rigs TimeSplit builds (the babolbench -trace path).
func TestTimeSplitFeedsExternalTracer(t *testing.T) {
	var n int
	opt := quick()
	opt.Tracer = obs.Func(func(obs.Event) { n++ })
	if _, err := TimeSplit(opt); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("external tracer saw no events")
	}
}
