package exp

import (
	"fmt"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/ssd"
)

// Fig12Point is one bar of Figure 12: end-to-end bandwidth through the
// full SSD (HIC + FTL + controller) for one controller and way count.
type Fig12Point struct {
	Pattern    hic.Pattern
	Controller ssd.ControllerKind
	Ways       int
	MBps       float64
}

// Fig12 reproduces Figure 12: the Cosmos+ OpenSSD with its controller
// swapped. A fio-like generator issues sequential and random READ
// workloads through the whole SSD stack against Hynix packages at 1 GHz,
// varying the ways (LUNs) from 1 to 8. The baseline is the hardware
// controller; the paper's headline numbers at 8 ways are RTOS −2 %
// (seq) / −3 % (rand) and Coro −8 % / −9 %.
func Fig12(opt Options) ([]Fig12Point, error) {
	opt = opt.withDefaults()
	ways := opt.WaysList
	if len(ways) == 0 || ways[0] != 1 {
		ways = append([]int{1}, ways...)
	}
	type cfg struct {
		pattern hic.Pattern
		ways    int
		ctrl    ssd.ControllerKind
	}
	var cfgs []cfg
	for _, pattern := range []hic.Pattern{hic.Sequential, hic.Random} {
		for _, w := range ways {
			for _, kind := range []ssd.ControllerKind{ssd.CtrlHW, ssd.CtrlBabolRTOS, ssd.CtrlBabolCoro} {
				cfgs = append(cfgs, cfg{pattern, w, kind})
			}
		}
	}
	params := shrink(nand.Hynix(), opt.Blocks)
	out := make([]Fig12Point, len(cfgs))
	err := sweep(opt, len(cfgs), func(i int, tracer obs.Tracer) error {
		c := cfgs[i]
		mbps, err := readThroughput(ssd.BuildConfig{
			Params: params, Ways: c.ways, RateMT: 200,
			Controller: c.ctrl, CPUMHz: 1000, Tracer: tracer,
			NoCoroPool: opt.NoCoroPool,
			Shards:     opt.Shards, HostHop: opt.HostHop,
			ShardTelemetry: opt.ShardTelemetry, TraceShardWindows: opt.TraceShardWindows,
			MapCacheBytes: opt.MapCacheBytes,
		}, c.pattern, opt.Ops, 4*c.ways)
		if err != nil {
			return fmt.Errorf("fig12 %v %v %dway: %w", c.pattern, c.ctrl, c.ways, err)
		}
		out[i] = Fig12Point{Pattern: c.pattern, Controller: c.ctrl, Ways: c.ways, MBps: mbps}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig12CSV renders the end-to-end sweep as machine-readable CSV.
func Fig12CSV(points []Fig12Point) string {
	out := "pattern,controller,ways,mbps\n"
	for _, p := range points {
		out += fmt.Sprintf("%s,%s,%d,%.2f\n", p.Pattern, p.Controller, p.Ways, p.MBps)
	}
	return out
}

// RenderFig12 formats the end-to-end comparison with deltas versus the
// hardware baseline (the paper's headline metric).
func RenderFig12(points []Fig12Point) string {
	type key struct {
		pattern hic.Pattern
		ways    int
	}
	byKey := map[key]map[ssd.ControllerKind]float64{}
	waysSeen := map[hic.Pattern][]int{}
	for _, p := range points {
		k := key{p.Pattern, p.Ways}
		if byKey[k] == nil {
			byKey[k] = map[ssd.ControllerKind]float64{}
			waysSeen[p.Pattern] = append(waysSeen[p.Pattern], p.Ways)
		}
		byKey[k][p.Controller] = p.MBps
	}
	out := ""
	for _, pattern := range []hic.Pattern{hic.Sequential, hic.Random} {
		header := fmt.Sprintf("%-5s %10s %10s %8s %10s %8s", "ways", "HW", "RTOS", "ΔRTOS", "Coro", "ΔCoro")
		var rows []string
		for _, w := range waysSeen[pattern] {
			v := byKey[key{pattern, w}]
			hw, rtos, coro := v[ssd.CtrlHW], v[ssd.CtrlBabolRTOS], v[ssd.CtrlBabolCoro]
			rows = append(rows, fmt.Sprintf("%-5d %10.1f %10.1f %8s %10.1f %8s",
				w, hw, rtos, pct(rtos, hw), coro, pct(coro, hw)))
		}
		out += table(fmt.Sprintf("Fig 12: end-to-end %s READ bandwidth (MB/s), Hynix @ 200 MT/s, 1 GHz\n%s",
			pattern, header), rows)
		out += "\n"
	}
	return out
}
