package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analyze"
	"repro/internal/obs"
)

// The checked-in mini trace is 4 rigs of `babolbench -ops 16 split`
// merged in configuration order (regenerate with
// `go run ./cmd/babolbench -ops 16 -parallel 1 -trace cmd/babolbench/testdata/mini.jsonl split`,
// then refresh the goldens from `babolbench analyze` / `-csv analyze`).
// CI runs the same comparison against the built binary; this test keeps
// `go test` self-sufficient.
func readMini(t *testing.T) []obs.Event {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "mini.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The sharded mini trace is the same 4-rig split sweep run under the
// 2-shard cluster with the shard flight recorder flushed into the trace
// (regenerate with
// `go run ./cmd/babolbench -ops 16 -blocks 16 -parallel 1 -shards 2 -shardtrace -trace cmd/babolbench/testdata/mini_shard.jsonl split`,
// then refresh the goldens from `babolbench analyze` / `-csv analyze`).
// CI golden-diffs the analyze output of the built binary against the
// same files and uploads the report as an artifact.
func TestAnalyzeMiniShardTraceGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "mini_shard.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	res := analyze.Analyze(events)
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(res.Runs))
	}
	for i, run := range res.Runs {
		if run.Shards == nil {
			t.Fatalf("run %d has no shard report", i)
		}
	}
	if len(res.Violations) != 0 {
		t.Fatalf("protocol violations in the golden trace: %v", res.Violations)
	}
	if got, want := res.Render(), golden(t, "mini_shard.report.golden"); got != want {
		t.Errorf("report drifted from golden\n got:\n%s\nwant:\n%s", got, want)
	}
	if got, want := res.CSV(), golden(t, "mini_shard.csv.golden"); got != want {
		t.Errorf("CSV drifted from golden\n got:\n%s\nwant:\n%s", got, want)
	}
}

// The tenant mini trace is the workload sweep — four solo runs plus the
// contended run — with host-command events merged in (regenerate with
// `go run ./cmd/babolbench -ops 8 -parallel 1 -trace cmd/babolbench/testdata/mini_tenants.jsonl workload`,
// then refresh the goldens from `babolbench analyze` / `-csv analyze`).
// CI golden-diffs the analyze output of the built binary against the
// same files.
func TestAnalyzeMiniTenantTraceGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "mini_tenants.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	res := analyze.Analyze(events)
	if len(res.Runs) != 5 {
		t.Fatalf("runs = %d, want 5 (4 solo + contended)", len(res.Runs))
	}
	for i, run := range res.Runs {
		if run.Tenants == nil {
			t.Fatalf("run %d has no tenant report", i)
		}
	}
	if got := len(res.Runs[4].Tenants.Rows); got != 4 {
		t.Fatalf("contended run has %d tenant rows, want 4", got)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("protocol violations in the golden trace: %v", res.Violations)
	}
	if got, want := res.Render(), golden(t, "mini_tenants.report.golden"); got != want {
		t.Errorf("report drifted from golden\n got:\n%s\nwant:\n%s", got, want)
	}
	if got, want := res.CSV(), golden(t, "mini_tenants.csv.golden"); got != want {
		t.Errorf("CSV drifted from golden\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestAnalyzeMiniTraceGolden(t *testing.T) {
	res := analyze.Analyze(readMini(t))
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d, want 4 (2 controllers x 2 clocks)", len(res.Runs))
	}
	if len(res.Violations) != 0 {
		t.Fatalf("protocol violations in the golden trace: %v", res.Violations)
	}
	if got, want := res.Render(), golden(t, "mini.report.golden"); got != want {
		t.Errorf("report drifted from golden\n got:\n%s\nwant:\n%s", got, want)
	}
	if got, want := res.CSV(), golden(t, "mini.csv.golden"); got != want {
		t.Errorf("CSV drifted from golden\n got:\n%s\nwant:\n%s", got, want)
	}
}
