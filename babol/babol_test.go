package babol_test

import (
	"bytes"
	"testing"

	"repro/babol"
	"repro/internal/onfi"
	"repro/internal/sim"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := babol.NewSystem(babol.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Chips() != babol.Hynix().LUNsPerChannel {
		t.Errorf("default ways = %d", sys.Chips())
	}
	if sys.Waveform() == nil {
		t.Error("capture should default on")
	}
	if sys.Now() != 0 {
		t.Error("clock should start at zero")
	}
}

func TestSystemReadRoundTrip(t *testing.T) {
	sys, err := babol.NewSystem(babol.SystemConfig{Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	want := bytes.Repeat([]byte{0x5C}, 4096)
	if err := sys.Chip(1).SeedPage(onfi.RowAddr{Block: 3, Page: 2}, want); err != nil {
		t.Fatal(err)
	}
	var opErr error
	sys.Start(babol.OpRequest{
		Func: babol.ReadPage(onfi.Addr{Row: onfi.RowAddr{Block: 3, Page: 2}}, 0, 4096),
		Chip: 1,
		Done: func(err error) { opErr = err },
	})
	sys.Run()
	if opErr != nil {
		t.Fatal(opErr)
	}
	got, err := sys.DRAM().Read(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("data mismatch through public API")
	}
	if sys.Waveform().Len() == 0 {
		t.Error("no waveform captured")
	}
	if sys.Controller().Stats().OpsCompleted != 1 {
		t.Error("stats not visible")
	}
}

func TestSystemEnvSelection(t *testing.T) {
	measure := func(env babol.Env) sim.Duration {
		sys, err := babol.NewSystem(babol.SystemConfig{Ways: 1, Env: env, DisableCapture: true})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		sys.Chip(0).SeedPage(onfi.RowAddr{}, []byte{1})
		var end sim.Time
		sys.Start(babol.OpRequest{
			Func: babol.ReadPage(onfi.Addr{}, 0, 512), Chip: 0,
			Done: func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				end = sys.Now()
			},
		})
		sys.Run()
		return sim.Duration(end)
	}
	if rtos, coro := measure(babol.EnvRTOS), measure(babol.EnvCoro); coro <= rtos {
		t.Errorf("Coro (%v) should be slower than RTOS (%v)", coro, rtos)
	}
	if babol.EnvRTOS.String() != "RTOS" || babol.EnvCoro.String() != "Coro" {
		t.Error("env names")
	}
}

func TestSystemRejectsBadConfig(t *testing.T) {
	if _, err := babol.NewSystem(babol.SystemConfig{RateMT: 9999}); err == nil {
		t.Error("absurd rate accepted")
	}
	if _, err := babol.NewSystem(babol.SystemConfig{CPUMHz: -1}); err == nil {
		t.Error("negative CPU clock accepted")
	}
}

func TestRunFor(t *testing.T) {
	sys, err := babol.NewSystem(babol.SystemConfig{Ways: 1, DisableCapture: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.RunFor(5 * sim.Microsecond)
	if sys.Now() != sim.Time(5*sim.Microsecond) {
		t.Errorf("clock = %v", sys.Now())
	}
}
