// Command wavedump runs one flash operation on a BABOL system and prints
// the captured channel waveform in logic-analyzer style, followed by the
// ONFI timing-rule verdict — the programmatic version of the paper's
// Figure 9 and Figure 11 screenshots.
//
//	wavedump -op read            # READ with column change (Algorithm 2)
//	wavedump -op read-slc        # pseudo-SLC READ (Algorithm 3)
//	wavedump -op program
//	wavedump -op erase
//	wavedump -op cache-read -env coro
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/babol"
	"repro/internal/onfi"
	"repro/internal/wave"
)

func main() {
	opName := flag.String("op", "read", "operation: read|read-slc|read-fixed|program|erase|cache-read|readid|boot")
	env := flag.String("env", "rtos", "software environment: rtos|coro")
	mhz := flag.Int("mhz", 1000, "firmware CPU clock in MHz")
	rate := flag.Int("mt", 200, "channel rate in MT/s")
	vcd := flag.String("vcd", "", "also write the waveform as a VCD file (view in GTKWave)")
	flag.Parse()

	e := babol.EnvRTOS
	if *env == "coro" {
		e = babol.EnvCoro
	}
	sys, err := babol.NewSystem(babol.SystemConfig{
		Ways: 2, Env: e, CPUMHz: *mhz, RateMT: *rate,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wavedump:", err)
		os.Exit(1)
	}
	defer sys.Close()

	// Seed some data so reads return something real.
	page := make([]byte, 16384)
	for i := range page {
		page[i] = byte(i)
	}
	for p := 0; p < 4; p++ {
		if err := sys.Chip(0).SeedPage(onfi.RowAddr{Block: 1, Page: p}, page); err != nil {
			fmt.Fprintln(os.Stderr, "wavedump:", err)
			os.Exit(1)
		}
	}

	addr := onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 0}}
	var op babol.OpFunc
	var id []byte
	switch *opName {
	case "read":
		op = babol.ReadPage(addr, 0, 16384)
	case "read-slc":
		op = babol.ReadPageSLC(addr, 0, 16384)
	case "read-fixed":
		op = babol.ReadPageFixedWait(addr, 0, 16384, babol.Hynix().TR)
	case "program":
		op = babol.ProgramPage(onfi.Addr{Row: onfi.RowAddr{Block: 2}}, 0, 16384)
	case "erase":
		op = babol.EraseBlock(3)
	case "cache-read":
		op = babol.CacheReadPages(onfi.RowAddr{Block: 1}, 3, 0, 16384)
	case "readid":
		op = babol.ReadID(&id, 6)
	case "boot":
		op = babol.BootSequence(babol.Hynix().IDBytes, 0x15)
	default:
		fmt.Fprintf(os.Stderr, "wavedump: unknown op %q\n", *opName)
		os.Exit(2)
	}

	var opErr error
	sys.Start(babol.OpRequest{Func: op, Chip: 0, Done: func(err error) { opErr = err }})
	sys.Run()
	if opErr != nil {
		fmt.Fprintln(os.Stderr, "wavedump: operation failed:", opErr)
		os.Exit(1)
	}

	fmt.Printf("=== %s on %s (%s @ %d MHz, %d MT/s) ===\n\n",
		*opName, babol.Hynix().Name, e, *mhz, *rate)
	fmt.Print(sys.Waveform().Render())
	if len(id) > 0 {
		fmt.Printf("\nREAD ID bytes: % 02X\n", id)
	}

	if *vcd != "" {
		f, err := os.Create(*vcd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wavedump:", err)
			os.Exit(1)
		}
		if err := wave.WriteVCD(f, sys.Waveform().Segments(), sys.Chips()); err != nil {
			fmt.Fprintln(os.Stderr, "wavedump:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "wavedump:", err)
			os.Exit(1)
		}
		fmt.Printf("\nVCD written to %s\n", *vcd)
	}

	chk := wave.NewChecker(onfi.DefaultTiming(), onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: *rate})
	if vs := chk.Check(sys.Waveform().Segments()); len(vs) == 0 {
		fmt.Println("\nONFI timing check: PASS (no violations)")
	} else {
		fmt.Printf("\nONFI timing check: %d violations\n", len(vs))
		for _, v := range vs {
			fmt.Println("  ", v)
		}
		os.Exit(1)
	}
}
