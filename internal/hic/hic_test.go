package hic

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// fakeDrive completes every command after a fixed virtual latency.
type fakeDrive struct {
	k           *sim.Kernel
	latency     sim.Duration
	seen        []int
	inFlight    int
	maxInFlight int
}

func (d *fakeDrive) Submit(cmd Command) {
	d.seen = append(d.seen, cmd.LPN)
	d.inFlight++
	if d.inFlight > d.maxInFlight {
		d.maxInFlight = d.inFlight
	}
	d.k.After(d.latency, func() {
		d.inFlight--
		cmd.Done(nil)
	})
}

func TestWorkloadValidate(t *testing.T) {
	good := Workload{NumOps: 1, QueueDepth: 1, LogicalPages: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good workload rejected: %v", err)
	}
	bad := []Workload{
		{NumOps: 0, QueueDepth: 1, LogicalPages: 1},
		{NumOps: 1, QueueDepth: 0, LogicalPages: 1},
		{NumOps: 1, QueueDepth: 1, LogicalPages: 0},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad workload %d accepted", i)
		}
	}
	if _, err := Run(sim.NewKernel(), &fakeDrive{}, bad[0]); err == nil {
		t.Error("Run accepted invalid workload")
	}
}

func TestSequentialPattern(t *testing.T) {
	k := sim.NewKernel()
	d := &fakeDrive{k: k, latency: sim.Microsecond}
	res, err := Run(k, d, Workload{
		Pattern: Sequential, Kind: KindRead,
		NumOps: 10, QueueDepth: 2, LogicalPages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Completed != 10 || res.Failed != 0 {
		t.Fatalf("result: %+v", res)
	}
	// Sequential wraps at LogicalPages.
	want := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}
	for i, lpn := range d.seen {
		if lpn != want[i] {
			t.Fatalf("sequence: %v", d.seen)
		}
	}
}

func TestRandomPatternInRangeAndSeeded(t *testing.T) {
	run := func() []int {
		k := sim.NewKernel()
		d := &fakeDrive{k: k, latency: sim.Microsecond}
		if _, err := Run(k, d, Workload{
			Pattern: Random, Kind: KindRead,
			NumOps: 50, QueueDepth: 4, LogicalPages: 16, Seed: 42,
		}); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return d.seen
	}
	a, b := run(), run()
	for i := range a {
		if a[i] < 0 || a[i] >= 16 {
			t.Fatalf("LPN %d out of range", a[i])
		}
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestQueueDepthRespected(t *testing.T) {
	k := sim.NewKernel()
	d := &fakeDrive{k: k, latency: 10 * sim.Microsecond}
	if _, err := Run(k, d, Workload{
		Pattern: Sequential, Kind: KindWrite,
		NumOps: 20, QueueDepth: 3, LogicalPages: 100,
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if d.maxInFlight != 3 {
		t.Errorf("max in flight = %d, want 3", d.maxInFlight)
	}
}

func TestQueueDepthLargerThanOps(t *testing.T) {
	k := sim.NewKernel()
	d := &fakeDrive{k: k, latency: sim.Microsecond}
	res, err := Run(k, d, Workload{
		Pattern: Sequential, Kind: KindRead,
		NumOps: 2, QueueDepth: 8, LogicalPages: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Completed != 2 {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestMetrics(t *testing.T) {
	k := sim.NewKernel()
	d := &fakeDrive{k: k, latency: 100 * sim.Microsecond}
	res, err := Run(k, d, Workload{
		Pattern: Sequential, Kind: KindRead,
		NumOps: 10, QueueDepth: 1, LogicalPages: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Elapsed() != 1000*sim.Microsecond {
		t.Errorf("elapsed = %v", res.Elapsed())
	}
	// 10 pages of 16384B in 1ms = 163.84 MB/s.
	bw := res.BandwidthMBps(16384)
	if bw < 163 || bw > 165 {
		t.Errorf("bandwidth = %v MB/s", bw)
	}
	if iops := res.IOPS(); iops < 9999 || iops > 10001 {
		t.Errorf("IOPS = %v", iops)
	}
	if res.MeanLatency() != 100*sim.Microsecond {
		t.Errorf("mean latency = %v", res.MeanLatency())
	}
	if res.LatencyPercentile(50) != 100*sim.Microsecond || res.LatencyPercentile(100) != 100*sim.Microsecond {
		t.Error("percentiles wrong")
	}
}

func TestLatencyPercentileNearestRank(t *testing.T) {
	var r Result
	for i := 10; i >= 1; i-- {
		r.latencies = append(r.latencies, sim.Duration(i))
	}
	// Nearest rank ⌈p/100·n⌉: the p99 of 10 samples is the maximum, not
	// the p90 the old truncating rank computed.
	if got := r.LatencyPercentile(99); got != 10 {
		t.Errorf("p99 of 10 samples = %d, want 10", got)
	}
	if got := r.LatencyPercentile(50); got != 5 {
		t.Errorf("p50 of 10 samples = %d, want 5", got)
	}
}

func TestEmptyResultMetrics(t *testing.T) {
	var r Result
	if r.BandwidthMBps(16384) != 0 || r.IOPS() != 0 || r.MeanLatency() != 0 || r.LatencyPercentile(99) != 0 {
		t.Error("empty result should report zeros")
	}
}

func TestKindAndPatternStrings(t *testing.T) {
	if KindRead.String() != "read" || KindWrite.String() != "write" {
		t.Error("kind strings")
	}
	if Sequential.String() != "sequential" || Random.String() != "random" {
		t.Error("pattern strings")
	}
}

func TestMixedWorkload(t *testing.T) {
	k := sim.NewKernel()
	d := &fakeDrive{k: k, latency: sim.Microsecond}
	kinds := map[Kind]int{}
	countDrive := submitterFunc(func(cmd Command) {
		kinds[cmd.Kind]++
		d.Submit(cmd)
	})
	res, err := Run(k, countDrive, Workload{
		Pattern: Random, Kind: KindWrite,
		NumOps: 400, QueueDepth: 4, LogicalPages: 64,
		ReadPercent: 70, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Completed != 400 {
		t.Fatalf("completed %d", res.Completed)
	}
	reads := kinds[KindRead]
	if reads < 230 || reads > 330 {
		t.Errorf("70%% mix produced %d reads of 400", reads)
	}
	if kinds[KindWrite] == 0 {
		t.Error("no writes in a 70/30 mix")
	}
}

func TestMixedWorkloadValidation(t *testing.T) {
	w := Workload{NumOps: 1, QueueDepth: 1, LogicalPages: 1, ReadPercent: 101}
	if err := w.Validate(); err == nil {
		t.Error("ReadPercent 101 accepted")
	}
}

// submitterFunc adapts a function to the Submitter interface.
type submitterFunc func(Command)

func (f submitterFunc) Submit(c Command) { f(c) }

func TestParseTrace(t *testing.T) {
	trace := `
# host trace
0 read 5
12.5 write 3
12.5 r 1
100 w 0
`
	entries, err := ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("%d entries", len(entries))
	}
	if entries[0].Kind != KindRead || entries[0].LPN != 5 || entries[0].At != 0 {
		t.Errorf("entry 0: %+v", entries[0])
	}
	if entries[1].At != sim.Duration(12.5*float64(sim.Microsecond)) {
		t.Errorf("entry 1 at %v", entries[1].At)
	}
	bad := []string{
		"1 fly 3",            // bad op
		"1 read x",           // bad lpn
		"5 read 1\n1 read 2", // decreasing time
		"nope",               // malformed
		"",                   // empty
		"1 read -2",          // negative lpn
		"-1 read 2",          // negative time
	}
	for _, b := range bad {
		if _, err := ParseTrace(strings.NewReader(b)); err == nil {
			t.Errorf("trace %q accepted", b)
		}
	}
}

func TestReplayTrace(t *testing.T) {
	k := sim.NewKernel()
	d := &fakeDrive{k: k, latency: 10 * sim.Microsecond}
	entries := []TraceEntry{
		{At: 0, Kind: KindRead, LPN: 1},
		{At: 5 * sim.Microsecond, Kind: KindRead, LPN: 2},
		{At: 100 * sim.Microsecond, Kind: KindWrite, LPN: 3},
	}
	res, err := ReplayTrace(k, d, entries)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Completed != 3 || res.Failed != 0 {
		t.Fatalf("result %+v", res)
	}
	// Open-loop: the second command was submitted at t=5us even though
	// the first was still in flight (two overlapped).
	if d.maxInFlight != 2 {
		t.Errorf("maxInFlight = %d, want 2", d.maxInFlight)
	}
	// Last completion at 110us.
	if res.End != sim.Time(110*sim.Microsecond) {
		t.Errorf("end = %v", res.End)
	}
	if _, err := ReplayTrace(k, d, nil); err == nil {
		t.Error("empty trace accepted")
	}
}
