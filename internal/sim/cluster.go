package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"
)

// Cluster coordinates several Kernels — shards — under a conservative
// time-window protocol, so a multi-channel simulation can run its
// channels on separate event loops (and separate goroutines) while
// producing results that are byte-identical at every shard count.
//
// The model: the simulation is split into *domains* (the host complex,
// each flash channel). Every domain lives on exactly one shard; domains
// interact ONLY by posting closures at each other with Post, which
// delivers lookahead L after the sender's current time — the modeled
// host↔channel hop latency. Because no cross-domain effect can land
// sooner than L after its cause, a window of span L can run on every
// shard concurrently with no causality violation: nothing posted inside
// a window is due inside it.
//
// Run alternates between barriers and windows:
//
//	collect outboxes → pick window start = min(next event, next post)
//	→ deliver due posts → run every shard to start+L-1 → repeat
//
// Determinism: window boundaries derive only from global event/post
// times, and deliveries are sorted by (time, source domain, source
// sequence) before insertion into the target kernel — so execution
// order is a pure function of the domain graph and L, independent of
// the domain→shard mapping, the number of shards, and whether shards
// run on worker goroutines or inline. That is the invariant the sharded
// SSD rig's determinism tests pin.
//
// The coordinator and the per-shard workers synchronize exclusively
// through the run/done channels, so every window is bracketed by
// happens-before edges: a shard owns its kernel and its domains'
// outboxes during a window, the coordinator owns everything between
// windows. No other locking exists and none is needed.
type Cluster struct {
	lookahead Duration
	kernels   []*Kernel
	domains   []*Domain
	// pending holds undelivered posts sorted by (at, src, seq).
	pending []post
	workers []clusterWorker
	// dispatched is runWindow's scratch list of busy worker indices.
	dispatched []int
	// windows and posts are atomics so monitoring goroutines (the live
	// /shards endpoint, tests polling progress) can read them while Run
	// is in flight; the coordinator is the only writer.
	windows atomic.Uint64
	posts   atomic.Uint64
	// telem is the nil-check-disarmed telemetry hook: nil costs one
	// branch per window, armed costs a handful of atomic adds. See
	// ArmTelemetry in telemetry.go.
	telem *Telemetry
}

// Windows reports how many synchronization windows Run has executed —
// the cluster's overhead metric (each window is one barrier round).
// Safe to call from any goroutine, including while Run is in flight.
func (c *Cluster) Windows() uint64 { return c.windows.Load() }

// Posts reports how many cross-domain posts have been collected. Safe
// to call from any goroutine, including while Run is in flight.
func (c *Cluster) Posts() uint64 { return c.posts.Load() }

// Domain is one single-threaded region of the simulation: its events
// run on its shard's kernel, and everything it shares with other
// domains crosses via Post. Domains are created once at build time, in
// a fixed order; the creation index is the tie-break rank for posts
// delivered at equal times.
type Domain struct {
	c      *Cluster
	idx    int
	shard  int
	k      *Kernel
	seq    uint64
	outbox []post
}

// post is one cross-domain delivery: fn runs on dst's kernel at time at.
type post struct {
	at  Time
	src int
	seq uint64
	dst *Domain
	fn  func()
}

// NewCluster returns a cluster of the given number of shards, each with
// a fresh Kernel. The lookahead is the cross-domain delivery latency —
// it must be positive, since a zero-lookahead conservative protocol
// degenerates to lockstep with no window to run.
func NewCluster(shards int, lookahead Duration) *Cluster {
	if shards < 1 {
		panic(fmt.Sprintf("sim: cluster needs at least one shard, got %d", shards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: cluster lookahead must be positive, got %v", lookahead))
	}
	c := &Cluster{lookahead: lookahead, kernels: make([]*Kernel, shards)}
	for i := range c.kernels {
		c.kernels[i] = NewKernel()
	}
	return c
}

// Lookahead reports the cluster's cross-domain delivery latency.
func (c *Cluster) Lookahead() Duration { return c.lookahead }

// Shards reports the number of shards.
func (c *Cluster) Shards() int { return len(c.kernels) }

// Kernel returns the given shard's kernel.
func (c *Cluster) Kernel(shard int) *Kernel { return c.kernels[shard] }

// AddDomain registers a new domain on the given shard. Call during
// build, before Run; the registration order fixes the domain's delivery
// tie-break rank.
func (c *Cluster) AddDomain(shard int) *Domain {
	if shard < 0 || shard >= len(c.kernels) {
		panic(fmt.Sprintf("sim: domain on shard %d of %d", shard, len(c.kernels)))
	}
	if c.telem != nil {
		panic("sim: AddDomain after ArmTelemetry; arm after the domain graph is built")
	}
	d := &Domain{c: c, idx: len(c.domains), shard: shard, k: c.kernels[shard]}
	c.domains = append(c.domains, d)
	return d
}

// Kernel returns the kernel of the shard this domain lives on. All of
// the domain's own events schedule here.
func (d *Domain) Kernel() *Kernel { return d.k }

// Now reports the domain's current virtual time.
func (d *Domain) Now() Time { return d.k.Now() }

// Post schedules fn to run in domain `to` at Now()+lookahead — the only
// legal way for one domain to affect another. It must be called from
// d's own shard (inside one of d's events, or before Run starts).
// Steady-state posting is allocation-free once the outbox has grown to
// its high-water mark.
func (d *Domain) Post(to *Domain, fn func()) {
	d.seq++
	d.outbox = append(d.outbox, post{
		at: d.k.Now().Add(d.c.lookahead), src: d.idx, seq: d.seq, dst: to, fn: fn,
	})
}

// Run drives every shard to global quiescence: no events pending on any
// kernel and no posts in flight. Multi-shard clusters run each window
// on per-shard worker goroutines (shard 0 rides the caller's); a
// single-shard cluster runs inline with no goroutines at all.
func (c *Cluster) Run() {
	if len(c.kernels) > 1 && c.workers == nil {
		c.startWorkers()
		defer c.stopWorkers()
	}
	for {
		c.collect()
		start, ok := c.nextTime()
		if !ok {
			return
		}
		// Window [start, start+L): RunUntil's bound is inclusive, and
		// lookahead ≥ 1 tick, so the last covered instant is start+L-1.
		deadline := start.Add(c.lookahead - 1)
		c.deliver(deadline)
		c.windows.Add(1)
		if t := c.telem; t != nil {
			t.winStart = time.Now()
		}
		c.runWindow(deadline)
		if t := c.telem; t != nil {
			t.record(c, start)
		}
	}
}

// collect gathers every domain's outbox into the pending list and
// restores the (at, src, seq) order. Outboxes are visited in domain
// order, so the merge input is deterministic.
func (c *Cluster) collect() {
	grew := false
	for _, d := range c.domains {
		if len(d.outbox) > 0 {
			c.pending = append(c.pending, d.outbox...)
			c.posts.Add(uint64(len(d.outbox)))
			if t := c.telem; t != nil {
				t.noteCollected(d.outbox)
			}
			clearPosts(d.outbox)
			d.outbox = d.outbox[:0]
			grew = true
		}
	}
	if grew {
		sortPosts(c.pending)
	}
}

// nextTime finds the earliest pending instant across every shard's
// event heap and the undelivered posts.
func (c *Cluster) nextTime() (Time, bool) {
	var best Time
	ok := false
	if len(c.pending) > 0 {
		best, ok = c.pending[0].at, true
	}
	for _, k := range c.kernels {
		if at, has := k.peek(); has && (!ok || at < best) {
			best, ok = at, true
		}
	}
	return best, ok
}

// deliver inserts every post due by deadline into its target kernel, in
// (at, src, seq) order — the kernel's own FIFO tie-break then preserves
// that order for equal-time deliveries.
func (c *Cluster) deliver(deadline Time) {
	n := 0
	for n < len(c.pending) && c.pending[n].at <= deadline {
		p := &c.pending[n]
		p.dst.k.At(p.at, p.fn)
		n++
	}
	if n > 0 {
		if t := c.telem; t != nil {
			t.noteDelivered(c.pending[:n])
		}
		rem := copy(c.pending, c.pending[n:])
		clearPosts(c.pending[rem:])
		c.pending = c.pending[:rem]
	}
}

// runWindow runs every shard that has work before the inclusive
// deadline. Shard 0 runs on the coordinator's goroutine; the rest on
// their workers. Idle shards are skipped entirely — their clocks lag
// behind, which is safe: a lagging kernel has no events by definition,
// and every future delivery lands at or after a window start, which is
// strictly after any deadline the kernel last ran to. Skipping turns
// the per-window barrier cost from O(shards) into O(busy shards).
func (c *Cluster) runWindow(deadline Time) {
	if len(c.workers) == 0 {
		c.runShard0(deadline)
		return
	}
	busy := c.dispatched[:0]
	for i, w := range c.workers {
		if at, ok := c.kernels[i+1].peek(); ok && at <= deadline {
			// The run channel is buffered: every busy worker is signaled
			// before the coordinator blocks on anything, so the workers
			// overlap each other (and shard 0) even mid-window.
			w.run <- deadline
			busy = append(busy, i)
		}
	}
	if at, ok := c.kernels[0].peek(); ok && at <= deadline {
		c.runShard0(deadline)
	}
	for _, i := range busy {
		<-c.workers[i].done
	}
	c.dispatched = busy[:0]
}

// runShard0 runs shard 0 on the coordinator's goroutine, timing the
// execution when telemetry is armed so record() can split window wall
// time into exec vs. barrier wait.
func (c *Cluster) runShard0(deadline Time) {
	if t := c.telem; t != nil {
		start := time.Now()
		c.kernels[0].RunUntil(deadline)
		t.slots[0].lastExecNs.Store(int64(time.Since(start)))
		return
	}
	c.kernels[0].RunUntil(deadline)
}

// clusterWorker owns one shard's kernel for the duration of each
// window; the channels are the only synchronization. Both are buffered
// so a window's dispatch and completion don't force extra goroutine
// round-trips on a loaded machine.
type clusterWorker struct {
	run  chan Time
	done chan struct{}
}

func (c *Cluster) startWorkers() {
	for i, k := range c.kernels[1:] {
		shard := i + 1
		w := clusterWorker{run: make(chan Time, 1), done: make(chan struct{}, 1)}
		c.workers = append(c.workers, w)
		// Each worker carries pprof labels so CPU profiles attribute
		// samples by shard and by the domains it hosts. Telemetry is
		// captured here: workers are created at the top of each Run, after
		// any ArmTelemetry call.
		var slot *telemetrySlot
		if c.telem != nil {
			slot = &c.telem.slots[shard]
		}
		labels := pprof.Labels("shard", strconv.Itoa(shard), "domain", c.domainLabel(shard))
		go func(k *Kernel, w clusterWorker, slot *telemetrySlot) {
			pprof.Do(context.Background(), labels, func(context.Context) {
				for deadline := range w.run {
					if slot != nil {
						start := time.Now()
						k.RunUntil(deadline)
						slot.lastExecNs.Store(int64(time.Since(start)))
					} else {
						k.RunUntil(deadline)
					}
					w.done <- struct{}{}
				}
			})
		}(k, w, slot)
	}
}

// domainLabel names the domains hosted on a shard for pprof labels:
// "2" for a single domain, "2-4" for a contiguous run, "1,3,5" worst
// case. Runs once per worker at startup, so the allocations don't touch
// the steady-state path.
func (c *Cluster) domainLabel(shard int) string {
	var idx []int
	for _, d := range c.domains {
		if d.shard == shard {
			idx = append(idx, d.idx)
		}
	}
	if len(idx) == 0 {
		return "none"
	}
	contiguous := true
	for i := 1; i < len(idx); i++ {
		if idx[i] != idx[i-1]+1 {
			contiguous = false
			break
		}
	}
	if len(idx) == 1 {
		return strconv.Itoa(idx[0])
	}
	if contiguous {
		return strconv.Itoa(idx[0]) + "-" + strconv.Itoa(idx[len(idx)-1])
	}
	s := strconv.Itoa(idx[0])
	for _, d := range idx[1:] {
		s += "," + strconv.Itoa(d)
	}
	return s
}

func (c *Cluster) stopWorkers() {
	for _, w := range c.workers {
		close(w.run)
	}
	c.workers = nil
}

// clearPosts zeroes a retired span so the closures it held can be
// collected while the backing array is reused.
func clearPosts(ps []post) {
	for i := range ps {
		ps[i] = post{}
	}
}

// sortPosts restores (at, src, seq) order. Insertion sort: the pending
// list is near-sorted (each domain appends an already-ordered run) and
// small, and unlike sort.Slice this allocates nothing.
func sortPosts(ps []post) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && postAfter(&ps[j], &p) {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

func postAfter(a, b *post) bool {
	if a.at != b.at {
		return a.at > b.at
	}
	if a.src != b.src {
		return a.src > b.src
	}
	return a.seq > b.seq
}
