package wave

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/onfi"
	"repro/internal/sim"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindCmdAddr: "CMD/ADDR", KindDataOut: "DATA-OUT", KindDataIn: "DATA-IN",
		KindWait: "WAIT", KindBusy: "BUSY",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d) = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Segment{}) // must not panic
	if r.Len() != 0 || r.Segments() != nil {
		t.Error("nil recorder should be empty")
	}
	r.Reset() // must not panic
}

func TestDisabledRecorder(t *testing.T) {
	var r Recorder // zero value: disabled
	r.Record(Segment{Kind: KindWait})
	if r.Len() != 0 {
		t.Error("zero-value recorder captured a segment")
	}
}

func TestRecorderCapture(t *testing.T) {
	r := NewRecorder()
	r.Record(Segment{Start: 0, End: 10, Kind: KindCmdAddr, Chip: 0})
	r.Record(Segment{Start: 10, End: 20, Kind: KindBusy, Chip: 0})
	r.Record(Segment{Start: 20, End: 30, Kind: KindDataOut, Chip: 0, Bytes: 4})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	cs := r.ChannelSegments()
	if len(cs) != 2 {
		t.Fatalf("ChannelSegments = %d, want 2 (BUSY excluded)", len(cs))
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestBusyAndUtilization(t *testing.T) {
	r := NewRecorder()
	r.Record(Segment{Start: 0, End: 10, Kind: KindCmdAddr})
	r.Record(Segment{Start: 20, End: 30, Kind: KindDataOut})
	if got := r.Busy(0, 30); got != 20 {
		t.Errorf("Busy = %v, want 20", got)
	}
	// Clipped window.
	if got := r.Busy(5, 25); got != 10 {
		t.Errorf("clipped Busy = %v, want 10", got)
	}
	if u := r.Utilization(0, 30); u < 0.66 || u > 0.67 {
		t.Errorf("Utilization = %v", u)
	}
	if u := r.Utilization(10, 10); u != 0 {
		t.Errorf("degenerate window utilization = %v", u)
	}
}

func TestRender(t *testing.T) {
	r := NewRecorder()
	r.Record(Segment{Start: 0, End: sim.Time(290 * sim.Nanosecond), Kind: KindCmdAddr, Chip: 0, Label: "READ.1 ADDR×5 READ.2"})
	r.Record(Segment{Start: sim.Time(290 * sim.Nanosecond), End: sim.Time(100290 * sim.Nanosecond), Kind: KindBusy, Chip: 0, Label: "tR"})
	out := r.Render()
	if !strings.Contains(out, "READ.1 ADDR×5 READ.2") || !strings.Contains(out, "BUSY") {
		t.Errorf("Render output missing content:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("Render lines = %d, want 2", lines)
	}
}

func TestSummarizeLatches(t *testing.T) {
	g := onfi.Geometry{Planes: 1, BlocksPerLUN: 16, PagesPerBlk: 16, PageBytes: 512}
	latches := []onfi.Latch{onfi.CmdLatch(onfi.CmdRead1)}
	latches = append(latches, g.AddrLatches(onfi.Addr{})...)
	latches = append(latches, onfi.CmdLatch(onfi.CmdRead2))
	if got := SummarizeLatches(latches); got != "READ.1 ADDR×5 READ.2" {
		t.Errorf("SummarizeLatches = %q", got)
	}
	if got := SummarizeLatches([]onfi.Latch{onfi.AddrLatch(1)}); got != "ADDR" {
		t.Errorf("single addr = %q", got)
	}
	if got := SummarizeLatches(nil); got != "" {
		t.Errorf("empty = %q", got)
	}
}

func checkerForTest() *Checker {
	return NewChecker(onfi.DefaultTiming(), onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200})
}

// legalCmdAddr builds a CMD/ADDR segment of exactly legal length starting
// at t.
func legalCmdAddr(c *Checker, t sim.Time, chip int, latches []onfi.Latch) Segment {
	d := c.Timing.TCS + sim.Duration(len(latches))*c.Timing.LatchCycle() + c.Timing.TCH
	if endsInConfirm(latches) {
		d += c.Timing.TWB
	}
	return Segment{Start: t, End: t.Add(d), Kind: KindCmdAddr, Chip: chip, Latches: latches}
}

func TestCheckerCleanTrace(t *testing.T) {
	c := checkerForTest()
	g := onfi.Geometry{Planes: 1, BlocksPerLUN: 16, PagesPerBlk: 16, PageBytes: 512}
	var latches []onfi.Latch
	latches = append(latches, onfi.CmdLatch(onfi.CmdRead1))
	latches = append(latches, g.AddrLatches(onfi.Addr{})...)
	latches = append(latches, onfi.CmdLatch(onfi.CmdRead2))

	s1 := legalCmdAddr(c, 0, 0, latches)
	busyEnd := s1.End.Add(53 * sim.Microsecond)
	s2 := Segment{Start: s1.End, End: busyEnd, Kind: KindBusy, Chip: 0, Label: "tR"}
	dataStart := busyEnd.Add(c.Timing.TWHR)
	s3 := Segment{
		Start: dataStart,
		End:   dataStart.Add(c.Timing.DataSegment(c.Bus, 512)),
		Kind:  KindDataOut, Chip: 0, Bytes: 512,
	}
	if vs := c.Check([]Segment{s1, s2, s3}); len(vs) != 0 {
		t.Errorf("clean trace has violations: %v", vs)
	}
}

func TestCheckerOverlap(t *testing.T) {
	c := checkerForTest()
	s1 := Segment{Start: 0, End: 100, Kind: KindWait}
	s2 := Segment{Start: 50, End: 150, Kind: KindWait}
	vs := c.Check([]Segment{s1, s2})
	if len(vs) != 1 || !strings.Contains(vs[0].Rule, "exclusivity") {
		t.Errorf("overlap not caught: %v", vs)
	}
}

func TestCheckerShortLatchBurst(t *testing.T) {
	c := checkerForTest()
	s := Segment{Start: 0, End: 1, Kind: KindCmdAddr, Latches: []onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}}
	vs := c.Check([]Segment{s})
	if len(vs) != 1 || !strings.Contains(vs[0].Rule, "latch burst") {
		t.Errorf("short latch burst not caught: %v", vs)
	}
}

func TestCheckerShortDataBurst(t *testing.T) {
	c := checkerForTest()
	s := Segment{Start: 0, End: 1, Kind: KindDataOut, Bytes: 512}
	vs := c.Check([]Segment{s})
	if len(vs) != 1 || !strings.Contains(vs[0].Rule, "data burst") {
		t.Errorf("short data burst not caught: %v", vs)
	}
}

func TestCheckerTWHRGap(t *testing.T) {
	c := checkerForTest()
	cmd := legalCmdAddr(c, 0, 0, []onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)})
	// Data starts immediately — violates tWHR.
	data := Segment{
		Start: cmd.End,
		End:   cmd.End.Add(c.Timing.DataSegment(c.Bus, 1)),
		Kind:  KindDataOut, Chip: 0, Bytes: 1,
	}
	vs := c.Check([]Segment{cmd, data})
	if len(vs) != 1 || !strings.Contains(vs[0].Rule, "tWHR") {
		t.Errorf("tWHR violation not caught: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Index: 3, Rule: "tWHR", Want: 80 * sim.Nanosecond, Got: 10 * sim.Nanosecond}
	s := v.String()
	if !strings.Contains(s, "segment 3") || !strings.Contains(s, "tWHR") {
		t.Errorf("Violation.String = %q", s)
	}
}

// Property: any sequence of back-to-back, legally sized WAIT segments
// passes the checker.
func TestCheckerBackToBackWaitsProperty(t *testing.T) {
	c := checkerForTest()
	f := func(durs []uint16) bool {
		var segs []Segment
		var at sim.Time
		for _, d := range durs {
			dd := sim.Duration(d) + 1
			segs = append(segs, Segment{Start: at, End: at.Add(dd), Kind: KindWait})
			at = at.Add(dd)
		}
		return len(c.Check(segs)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriteVCD(t *testing.T) {
	r := NewRecorder()
	r.Record(Segment{Start: 0, End: sim.Time(100 * sim.Nanosecond), Kind: KindCmdAddr, Chip: 0})
	r.Record(Segment{Start: sim.Time(100 * sim.Nanosecond), End: sim.Time(50100 * sim.Nanosecond), Kind: KindBusy, Chip: 0})
	r.Record(Segment{Start: sim.Time(200 * sim.Nanosecond), End: sim.Time(300 * sim.Nanosecond), Kind: KindDataIn, Chip: 1})
	r.Record(Segment{Start: sim.Time(400 * sim.Nanosecond), End: sim.Time(500 * sim.Nanosecond), Kind: KindDataOut, Chip: 1})
	r.Record(Segment{Start: sim.Time(600 * sim.Nanosecond), End: sim.Time(700 * sim.Nanosecond), Kind: KindWait, Chip: -1})

	var buf strings.Builder
	if err := WriteVCD(&buf, r.Segments(), 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"chip0_cmdaddr", "chip1_dataout", "chip1_datain",
		"timer_wait", "lun_busy",
		"$enddefinitions $end",
		"#0\n", "#100\n", "#200\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// Edges must balance: every signal raised is lowered.
	ones := strings.Count(out, "\n1")
	zeros := strings.Count(out, "\n0")
	if ones == 0 || zeros < ones {
		t.Errorf("unbalanced edges: %d rising, %d falling", ones, zeros)
	}
	// Chip count auto-detection path.
	var buf2 strings.Builder
	if err := WriteVCD(&buf2, r.Segments(), 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "chip1_cmdaddr") {
		t.Error("auto chip detection failed")
	}
}
