package core

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// LatencyStats aggregates operation latencies (Start → Done) in virtual
// time. The controller records every completed operation; experiments
// and the SSD assembly read percentiles from here instead of
// re-instrumenting the host layer.
type LatencyStats struct {
	samples []sim.Duration
	sorted  bool
}

func (l *LatencyStats) record(d sim.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count reports recorded completions.
func (l *LatencyStats) Count() int { return len(l.samples) }

// Mean reports the average latency.
func (l *LatencyStats) Mean() sim.Duration {
	return sim.Mean(l.samples)
}

// Percentile reports the p-th percentile latency (0 < p ≤ 100) by the
// nearest-rank method: the smallest sample with at least p % of the
// distribution at or below it, rank ⌈p/100·n⌉.
func (l *LatencyStats) Percentile(p float64) sim.Duration {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	return sim.Percentile(l.samples, p)
}

// Max reports the worst observed latency.
func (l *LatencyStats) Max() sim.Duration {
	var max sim.Duration
	for _, s := range l.samples {
		if s > max {
			max = s
		}
	}
	return max
}

// String summarizes the distribution.
func (l *LatencyStats) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		l.Count(), l.Mean(), l.Percentile(50), l.Percentile(99), l.Max())
}

// Latency returns the controller's operation-latency distribution.
func (c *Controller) Latency() *LatencyStats { return &c.latency }
