package nand

import (
	"repro/internal/onfi"
)

// fnv1a is an inline FNV-1a-32 over b, byte-for-byte identical to
// hash/fnv's New32a sum but without the interface allocation — these
// hashes run on every array operation (timing jitter, error injection).
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// Bit-error injection.
//
// Real NAND develops raw bit errors as blocks wear and cells drift from
// their programmed voltage. The model injects a deterministic number of
// bit flips per 512-B codeword that grows linearly with block wear and
// with the distance between the package's current read-retry voltage
// level and the page's (deterministic, address-derived) optimal level.
// Fresh blocks read back clean, so performance experiments see no error
// noise; reliability experiments pre-age blocks with Wear.

const codewordBytes = 512

// injectErrors flips bits in buf in place according to the wear of row's
// block and the current read voltage.
func (l *LUN) injectErrors(row uint32, buf []byte) {
	block := int(row) / l.geo.PagesPerBlk
	wear := l.eraseCount[block]
	if wear == 0 || l.params.RawBitErrorPer512B == 0 {
		return
	}
	mismatch := l.retryMismatch(row)
	if mismatch == 0 && l.params.ReadRetryLevels > 0 {
		// At the page's optimal read voltage the drifted cells resolve
		// cleanly; errors come from reading worn cells at the wrong
		// threshold. (Packages without retry support always read at
		// mismatch 1: there is no per-page optimum to hit.)
		return
	}
	if l.params.ReadRetryLevels == 0 {
		mismatch = 1
	}
	// Expected errors per codeword grow with block wear and with the
	// distance from the optimal voltage level.
	frac := float64(wear) / float64(l.params.MaxPECycles)
	perCW := l.params.RawBitErrorPer512B * frac * float64(mismatch)
	cws := (len(buf) + codewordBytes - 1) / codewordBytes
	for cw := 0; cw < cws; cw++ {
		n := deterministicCount(row, uint32(cw), uint32(wear), perCW)
		for e := 0; e < n; e++ {
			bit := deterministicBit(row, uint32(cw), uint32(e))
			byteIdx := cw*codewordBytes + int(bit/8)
			if byteIdx >= len(buf) {
				continue
			}
			buf[byteIdx] ^= 1 << (bit % 8)
			l.stats.InjectedBitErrors++
		}
	}
}

// retryMismatch reports how far the current read-retry level is from the
// page's optimal one.
func (l *LUN) retryMismatch(row uint32) int {
	if l.params.ReadRetryLevels == 0 {
		return 0
	}
	cur := int(l.features[onfi.FeatReadRetry][0])
	opt := l.OptimalRetryLevel(row)
	d := cur - opt
	if d < 0 {
		d = -d
	}
	return d
}

// OptimalRetryLevel reports the read-retry voltage level at which row
// reads back with the fewest errors. It is derived deterministically from
// the address, standing in for the physical cell-drift a vendor's retry
// table compensates.
func (l *LUN) OptimalRetryLevel(row uint32) int {
	if l.params.ReadRetryLevels == 0 {
		return 0
	}
	b := [4]byte{byte(row), byte(row >> 8), byte(row >> 16), 0x9E}
	return int(fnv1a(b[:])) % l.params.ReadRetryLevels
}

// deterministicCount converts an expected value into an integer count that
// varies by (row, codeword, wear) but averages near expect.
func deterministicCount(row, cw, wear uint32, expect float64) int {
	if expect <= 0 {
		return 0
	}
	b := [6]byte{
		byte(row), byte(row >> 8), byte(row >> 16),
		byte(cw), byte(wear), byte(wear >> 8),
	}
	// frac in [0, 1): decides whether to round up.
	frac := float64(fnv1a(b[:])%1000) / 1000.0
	n := int(expect)
	if frac < expect-float64(n) {
		n++
	}
	return n
}

// deterministicBit picks the e-th flipped bit position within a codeword.
func deterministicBit(row, cw, e uint32) uint32 {
	b := [7]byte{
		byte(row), byte(row >> 8), byte(row >> 16), byte(row >> 24),
		byte(cw), byte(e), 0x5F,
	}
	return fnv1a(b[:]) % (codewordBytes * 8)
}

// Wear artificially ages a block to the given erase count. It is intended
// for reliability experiments and tests.
func (l *LUN) Wear(block, cycles int) {
	if block >= 0 && block < len(l.eraseCount) {
		l.eraseCount[block] = cycles
	}
}

// EraseCount reports a block's wear.
func (l *LUN) EraseCount(block int) int {
	if block < 0 || block >= len(l.eraseCount) {
		return 0
	}
	return l.eraseCount[block]
}

// Bad reports whether a block has been retired.
func (l *LUN) Bad(block int) bool {
	return block >= 0 && block < len(l.bad) && l.bad[block]
}

// MarkBad retires a block (factory bad-block emulation).
func (l *LUN) MarkBad(block int) {
	if block >= 0 && block < len(l.bad) {
		l.bad[block] = true
	}
}
