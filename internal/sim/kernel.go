package sim

import (
	"container/heap"
	"fmt"
)

// Event is a unit of scheduled work. The function runs at the event's
// virtual time; it may schedule further events.
type event struct {
	at  Time
	seq uint64 // insertion order; breaks ties deterministically
	fn  func()
	id  EventID
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a deterministic discrete-event simulator. Events scheduled for
// the same instant fire in the order they were scheduled. Kernel is not
// safe for concurrent use; the entire simulation runs on one goroutine
// (operation coroutines hand control back and forth synchronously).
type Kernel struct {
	now       Time
	pq        eventHeap
	seq       uint64
	cancelled map[EventID]bool
	running   bool
	executed  uint64
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{cancelled: make(map[EventID]bool)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have fired so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are scheduled (including cancelled ones
// not yet reaped).
func (k *Kernel) Pending() int { return len(k.pq) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (k *Kernel) At(t Time, fn func()) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", t, k.now))
	}
	k.seq++
	id := EventID(k.seq)
	heap.Push(&k.pq, &event{at: t, seq: k.seq, fn: fn, id: id})
	return id
}

// After schedules fn to run d after the current time. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (k *Kernel) Cancel(id EventID) { k.cancelled[id] = true }

// Step fires the single earliest pending event. It reports false if no
// events remain.
func (k *Kernel) Step() bool {
	for len(k.pq) > 0 {
		e := heap.Pop(&k.pq).(*event)
		if k.cancelled[e.id] {
			delete(k.cancelled, e.id)
			continue
		}
		k.now = e.at
		k.executed++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (k *Kernel) Run() {
	k.running = true
	for k.running && k.Step() {
	}
	k.running = false
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain pending.
func (k *Kernel) RunUntil(deadline Time) {
	k.running = true
	for k.running {
		e := k.peek()
		if e == nil || e.at > deadline {
			break
		}
		k.Step()
	}
	k.running = false
	if k.now < deadline {
		k.now = deadline
	}
}

// RunFor runs the simulation for d of virtual time from now.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

// Stop makes a Run/RunUntil in progress return after the current event.
// It may be called from inside an event function.
func (k *Kernel) Stop() { k.running = false }

func (k *Kernel) peek() *event {
	for len(k.pq) > 0 {
		e := k.pq[0]
		if !k.cancelled[e.id] {
			return e
		}
		heap.Pop(&k.pq)
		delete(k.cancelled, e.id)
	}
	return nil
}
