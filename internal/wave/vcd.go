package wave

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// WriteVCD renders a captured trace as a Value Change Dump, the standard
// waveform interchange format — open the output in GTKWave (or any VCD
// viewer) to see the channel activity per chip exactly like the paper's
// logic-analyzer screenshots. Each chip gets three one-bit signals
// (cmd/addr, data-out, data-in) plus channel-level wait and busy lines.
func WriteVCD(w io.Writer, segs []Segment, chips int) error {
	if chips <= 0 {
		chips = 1
		for _, s := range segs {
			if s.Chip+1 > chips {
				chips = s.Chip + 1
			}
		}
	}

	// Identifier codes: printable ASCII starting at '!'.
	nextID := byte('!')
	id := func() string {
		c := nextID
		nextID++
		if nextID == '"' { // skip the quote for readability
			nextID++
		}
		return string(c)
	}

	type signal struct {
		name string
		code string
	}
	perChip := make([][3]signal, chips)
	kinds := [3]string{"cmdaddr", "dataout", "datain"}
	for c := 0; c < chips; c++ {
		for k, kn := range kinds {
			perChip[c][k] = signal{name: fmt.Sprintf("chip%d_%s", c, kn), code: id()}
		}
	}
	wait := signal{name: "timer_wait", code: id()}
	busy := signal{name: "lun_busy", code: id()}

	// Header.
	fmt.Fprintln(w, "$timescale 1ns $end")
	fmt.Fprintln(w, "$scope module babol_channel $end")
	for c := 0; c < chips; c++ {
		for k := range kinds {
			s := perChip[c][k]
			fmt.Fprintf(w, "$var wire 1 %s %s $end\n", s.code, s.name)
		}
	}
	fmt.Fprintf(w, "$var wire 1 %s %s $end\n", wait.code, wait.name)
	fmt.Fprintf(w, "$var wire 1 %s %s $end\n", busy.code, busy.name)
	fmt.Fprintln(w, "$upscope $end")
	fmt.Fprintln(w, "$enddefinitions $end")

	// Initial values.
	fmt.Fprintln(w, "$dumpvars")
	for c := 0; c < chips; c++ {
		for k := range kinds {
			fmt.Fprintf(w, "0%s\n", perChip[c][k].code)
		}
	}
	fmt.Fprintf(w, "0%s\n0%s\n", wait.code, busy.code)
	fmt.Fprintln(w, "$end")

	// Edge list.
	type edge struct {
		at   sim.Time
		code string
		v    byte
	}
	var edges []edge
	add := func(s Segment, code string) {
		edges = append(edges, edge{at: s.Start, code: code, v: '1'})
		edges = append(edges, edge{at: s.End, code: code, v: '0'})
	}
	for _, s := range segs {
		chip := s.Chip
		if chip < 0 || chip >= chips {
			chip = 0
		}
		switch s.Kind {
		case KindCmdAddr:
			add(s, perChip[chip][0].code)
		case KindDataOut:
			add(s, perChip[chip][1].code)
		case KindDataIn:
			add(s, perChip[chip][2].code)
		case KindWait:
			add(s, wait.code)
		case KindBusy:
			add(s, busy.code)
		}
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].at < edges[j].at })

	lastTime := sim.Time(-1)
	for _, e := range edges {
		if e.at != lastTime {
			fmt.Fprintf(w, "#%d\n", int64(e.at)/int64(sim.Nanosecond))
			lastTime = e.at
		}
		fmt.Fprintf(w, "%c%s\n", e.v, e.code)
	}
	return nil
}
