package ops_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
)

func TestReadParameterPageOp(t *testing.T) {
	r := newRig(t, 1, smallParams())
	var parsed nand.ParsedParamPage
	err := r.run(t, core.OpRequest{Func: ops.ReadParameterPage(&parsed), Chip: 0})
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Geometry != smallParams().Geometry {
		t.Errorf("discovered geometry %+v", parsed.Geometry)
	}
	if parsed.Manufacturer != "Hynix" {
		t.Errorf("manufacturer %q", parsed.Manufacturer)
	}
}

func TestReadParameterPageFailsWhenMisphased(t *testing.T) {
	p := smallParams()
	p.PhaseOptimal = 13 // boot default 8 is outside the clean window
	r := newRig(t, 1, p)
	var parsed nand.ParsedParamPage
	err := r.run(t, core.OpRequest{Func: ops.ReadParameterPage(&parsed), Chip: 0})
	if err == nil {
		t.Fatal("CRC passed on a misphased read")
	}
}

func TestCalibratePhaseFindsWindow(t *testing.T) {
	for _, optimal := range []int{2, 8, 13} {
		p := smallParams()
		p.PhaseOptimal = optimal
		r := newRig(t, 1, p)
		var chosen int
		err := r.run(t, core.OpRequest{Func: ops.CalibratePhase(16, &chosen), Chip: 0})
		if err != nil {
			t.Fatalf("optimal %d: %v", optimal, err)
		}
		if chosen < optimal-1 || chosen > optimal+1 {
			t.Errorf("optimal %d: calibrated to %d, outside clean window", optimal, chosen)
		}
		// After calibration, ordinary reads are clean.
		want := []byte{0xC7, 0x3B}
		if err := r.ch.Chip(0).SeedPage(onfi.RowAddr{Block: 1}, want); err != nil {
			t.Fatal(err)
		}
		err = r.run(t, core.OpRequest{
			Func: ops.ReadPage(onfi.Addr{Row: onfi.RowAddr{Block: 1}}, 0, 2), Chip: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := r.mem.Read(0, 2)
		if got[0] != want[0] || got[1] != want[1] {
			t.Errorf("optimal %d: post-calibration read corrupt: % X", optimal, got)
		}
	}
}

func TestCalibrateThenBoot(t *testing.T) {
	// The full §IV-C bring-up flow: reset, identify, discover geometry,
	// trim the phase — all as one composed operation.
	p := smallParams()
	p.PhaseOptimal = 4
	r := newRig(t, 1, p)
	var parsed nand.ParsedParamPage
	var chosen int
	bringup := func(ctx *core.Ctx) error {
		if err := ops.BootSequence(p.IDBytes[:2], 0x15)(ctx); err != nil {
			return err
		}
		if err := ops.CalibratePhase(16, &chosen)(ctx); err != nil {
			return err
		}
		return ops.ReadParameterPage(&parsed)(ctx)
	}
	if err := r.run(t, core.OpRequest{Func: bringup, Chip: 0}); err != nil {
		t.Fatal(err)
	}
	if chosen < 3 || chosen > 5 {
		t.Errorf("chosen phase %d", chosen)
	}
	if parsed.Geometry != p.Geometry {
		t.Error("geometry not discovered after calibration")
	}
}
