package exp

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/hic"
)

// workloadQuick shrinks the tenant scenario for tests: a few ops per
// tenant is enough to exercise arbitration, bursts, and the zipfian
// draw.
func workloadQuick() Options {
	return Options{Ops: 12, Parallel: 8}
}

func TestWorkloads(t *testing.T) {
	res, err := Workloads(workloadQuick(), WorkloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Errorf("fairness = %v, want (0,1]", res.Fairness)
	}
	if res.Span <= 0 {
		t.Errorf("span = %v, want > 0", res.Span)
	}
	byName := map[string]WorkloadPoint{}
	for _, p := range res.Points {
		if p.Completed != 12 || p.Failed != 0 {
			t.Errorf("%s: completed=%d failed=%d, want 12/0", p.Name, p.Completed, p.Failed)
		}
		if p.SoloMean <= 0 || p.ContMean <= 0 {
			t.Errorf("%s: non-positive latency solo=%v cont=%v", p.Name, p.SoloMean, p.ContMean)
		}
		if p.Slowdown <= 0 {
			t.Errorf("%s: slowdown = %v", p.Name, p.Slowdown)
		}
		byName[p.Name] = p
	}
	if p := byName["seq-reader"]; p.Reads != 12 || p.Writes != 0 || p.Trims != 0 {
		t.Errorf("seq-reader mix = r%d/w%d/t%d, want pure reads", p.Reads, p.Writes, p.Trims)
	}
	if p := byName["bursty-writer"]; p.Writes != 12 || p.Reads != 0 {
		t.Errorf("bursty-writer mix = r%d/w%d/t%d, want pure writes", p.Reads, p.Writes, p.Trims)
	}
	if p := byName["mixed"]; p.Reads+p.Writes+p.Trims != 12 {
		t.Errorf("mixed issued %d+%d+%d ops, want 12", p.Reads, p.Writes, p.Trims)
	}

	// Renderings carry every tenant.
	text := RenderWorkload(res, hic.RoundRobin)
	csv := WorkloadCSV(res)
	for _, name := range []string{"seq-reader", "hot-reader", "bursty-writer", "mixed"} {
		if !bytes.Contains([]byte(text), []byte(name)) {
			t.Errorf("render missing %s", name)
		}
		if !bytes.Contains([]byte(csv), []byte(name)) {
			t.Errorf("CSV missing %s", name)
		}
	}
}

func TestWorkloadsWRR(t *testing.T) {
	res, err := Workloads(workloadQuick(), WorkloadConfig{Arbitration: hic.WeightedRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Completed != 12 || p.Failed != 0 {
			t.Errorf("%s: completed=%d failed=%d, want 12/0", p.Name, p.Completed, p.Failed)
		}
	}
}

// TestWorkloadDeterminism pins the tentpole's contract: the workload
// report and the merged trace are byte-identical across shard counts
// {1,2,8} and worker counts {1,8}, at each frontend queue count. Queue
// count changes arbitration (so results differ across queue counts);
// shard and worker counts must not.
func TestWorkloadDeterminism(t *testing.T) {
	for _, queues := range []int{1, 4} {
		t.Run(fmt.Sprintf("queues=%d", queues), func(t *testing.T) {
			var refCSV string
			var refTrace []byte
			first := true
			for _, shards := range shardCounts {
				for _, par := range []int{1, 8} {
					opt := workloadQuick()
					opt.Shards = shards
					opt.Parallel = par
					var csv string
					trace := traceRun(t, opt, func(o Options) error {
						res, err := Workloads(o, WorkloadConfig{Queues: queues})
						if err == nil {
							csv = WorkloadCSV(res)
						}
						return err
					})
					if first {
						refCSV, refTrace = csv, trace
						if len(trace) == 0 {
							t.Fatal("workload trace is empty; determinism check is vacuous")
						}
						first = false
						continue
					}
					if csv != refCSV {
						t.Errorf("workload CSV at shards=%d parallel=%d diverged", shards, par)
					}
					if !bytes.Equal(trace, refTrace) {
						t.Errorf("workload merged trace at shards=%d parallel=%d diverged", shards, par)
					}
				}
			}
		})
	}
}

// TestWorkloadSeedReproducibility pins the tenant engine's RNG streams:
// the recorded command stream (zipfian addresses, mix draws, burst
// phases included) is a pure function of the specs' seeds.
func TestWorkloadSeedReproducibility(t *testing.T) {
	record := func(mutate func([]hic.TenantSpec)) []hic.RecordEntry {
		t.Helper()
		rec := &hic.Recorder{}
		tenants := DefaultTenants(12)
		if mutate != nil {
			mutate(tenants)
		}
		_, err := Workloads(workloadQuick(), WorkloadConfig{Recorder: rec, Tenants: tenants})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Len() != 4*12 {
			t.Fatalf("recorded %d commands, want %d", rec.Len(), 4*12)
		}
		return rec.Entries()
	}
	a := record(nil)
	b := record(nil)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Error("same seeds produced different command streams")
	}
	c := record(func(ts []hic.TenantSpec) {
		for i := range ts {
			ts[i].Seed += 1000
		}
	})
	if fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", c) {
		t.Error("different seeds produced identical command streams")
	}
}

// TestReplayWorkload pins the Flashmon-style replay contract end to
// end: record the contended run, replay it on a fresh rig, and the
// replay's re-recorded enqueue stream reproduces the original JSONL
// byte for byte.
func TestReplayWorkload(t *testing.T) {
	rec := &hic.Recorder{}
	opt := workloadQuick()
	if _, err := Workloads(opt, WorkloadConfig{Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	var original bytes.Buffer
	if err := rec.WriteJSONL(&original); err != nil {
		t.Fatal(err)
	}

	entries, err := hic.ReadJSONL(bytes.NewReader(original.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rerec := &hic.Recorder{}
	res, err := ReplayWorkload(opt, WorkloadConfig{Recorder: rerec}, entries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done() != len(entries) || res.Failed != 0 {
		t.Fatalf("replay terminated %d/%d with %d failures", res.Done(), len(entries), res.Failed)
	}
	var replayed bytes.Buffer
	if err := rerec.WriteJSONL(&replayed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(original.Bytes(), replayed.Bytes()) {
		t.Error("replay did not reproduce the recorded command stream byte for byte")
	}
}
