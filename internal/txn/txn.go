// Package txn defines BABOL's "waveform instruction set": the queueable
// descriptions of waveform segments that the software layer produces and
// the programmable hardware later executes (paper §III). Each instruction
// parameterizes one µFSM:
//
//	ChipControl → the C/E Control µFSM (chip-enable bitmap)
//	CmdAddr     → the Command/Address Writer µFSM
//	DataWrite   → the Data Writer µFSM + Packetizer (DRAM → LUN)
//	DataRead    → the Data Reader µFSM + Packetizer (LUN → DRAM)
//	TimerWait   → the Timer µFSM
//
// A Transaction bundles consecutive instructions into the atomic unit the
// channel scheduler works with: once started, a transaction monopolizes
// the channel until its last segment finishes.
package txn

import (
	"fmt"
	"strings"

	"repro/internal/bus"
	"repro/internal/onfi"
	"repro/internal/sim"
)

// Kind discriminates the µFSM an instruction programs.
type Kind uint8

const (
	KindChipControl Kind = iota + 1
	KindCmdAddr
	KindDataWrite
	KindDataRead
	KindTimerWait
)

// Instr is one µFSM instruction. It is a flat tagged union rather than an
// interface so that instruction slices hold values directly: appending an
// Instr to a reused transaction buffer moves no data to the heap, where
// the old per-kind structs boxed one allocation per instruction per
// enqueue.
type Instr struct {
	Kind Kind
	// Mask is the chip-enable bitmap (ChipControl).
	Mask bus.ChipMask
	// Latches is the command/address burst (CmdAddr). The slice is owned
	// by the transaction builder; it stays valid until the transaction
	// completes.
	Latches []onfi.Latch
	// Addr/N address the DRAM window of a data movement (DataWrite,
	// DataRead).
	Addr int
	N    int
	// Capture marks a DataRead whose bytes are additionally returned in
	// the transaction's Result (status and feature reads).
	Capture bool
	// D is the hold time of a TimerWait.
	D sim.Duration
}

// ChipControl selects the chips subsequent instructions drive.
func ChipControl(m bus.ChipMask) Instr { return Instr{Kind: KindChipControl, Mask: m} }

// CmdAddr emits a command/address latch burst.
func CmdAddr(latches []onfi.Latch) Instr { return Instr{Kind: KindCmdAddr, Latches: latches} }

// DataWrite moves n bytes from DRAM address addr into the selected LUNs'
// page registers.
func DataWrite(addr, n int) Instr { return Instr{Kind: KindDataWrite, Addr: addr, N: n} }

// DataRead moves n bytes from the selected LUN's register into DRAM at
// addr. If capture is set, the bytes are additionally returned in the
// transaction's Result (used for status and feature reads); addr may be
// -1 for capture-only reads that bypass DRAM.
func DataRead(addr, n int, capture bool) Instr {
	return Instr{Kind: KindDataRead, Addr: addr, N: n, Capture: capture}
}

// TimerWait holds the channel idle for at least d.
func TimerWait(d sim.Duration) Instr { return Instr{Kind: KindTimerWait, D: d} }

func (i Instr) String() string {
	switch i.Kind {
	case KindChipControl:
		return fmt.Sprintf("chip(%016b)", uint16(i.Mask))
	case KindCmdAddr:
		parts := make([]string, len(i.Latches))
		for j, l := range i.Latches {
			parts[j] = fmt.Sprintf("%v:%02X", l.Kind, l.Value)
		}
		return "cmdaddr(" + strings.Join(parts, " ") + ")"
	case KindDataWrite:
		return fmt.Sprintf("write(dram=%d n=%d)", i.Addr, i.N)
	case KindDataRead:
		return fmt.Sprintf("read(dram=%d n=%d)", i.Addr, i.N)
	case KindTimerWait:
		return fmt.Sprintf("wait(%v)", i.D)
	}
	return fmt.Sprintf("instr(kind=%d)", i.Kind)
}

// Result reports a transaction's outcome to the operation that built it.
type Result struct {
	// Captured holds the bytes of every DataRead with Capture set,
	// concatenated. The slice aliases the transaction's CapBuf: it is
	// owned by the operation that built the transaction and stays valid
	// only until that operation submits its next transaction.
	Captured []byte
	// End is when the transaction's last segment left the channel.
	End sim.Time
	// Err is a protocol error surfaced by the LUN or bus, if any.
	Err error
}

// Transaction is the atomic scheduling unit.
type Transaction struct {
	// ID is assigned by the controller at enqueue time.
	ID uint64
	// OpID identifies the operation that built the transaction.
	OpID uint64
	// Chip is the primary target (scheduling key); -1 if none.
	Chip int
	// Priority is interpreted by priority-based transaction schedulers;
	// larger is more urgent.
	Priority int
	// Final marks an operation's statically known last transaction. The
	// execution unit uses it to open the chip's admission gate the
	// instant the transaction completes, letting a pre-staged next
	// operation's first latch take the channel with no software on the
	// path.
	Final bool
	// Instrs are executed in order.
	Instrs []Instr
	// CapBuf, when non-nil, receives the captured bytes of DataRead
	// instructions with Capture set (appended, so pass a [:0] slice to
	// reuse storage). The execution unit hands the filled slice back via
	// Result.Captured; ownership stays with the transaction builder.
	CapBuf []byte
	// Done is invoked by the execution unit when the transaction
	// completes (may be nil).
	Done func(Result)
}

// Validate rejects structurally broken transactions.
func (t *Transaction) Validate() error {
	if len(t.Instrs) == 0 {
		return fmt.Errorf("txn: empty transaction")
	}
	sel := false
	for _, in := range t.Instrs {
		switch in.Kind {
		case KindChipControl:
			if in.Mask == 0 {
				return fmt.Errorf("txn: chip control with empty mask")
			}
			sel = true
		case KindCmdAddr:
			if len(in.Latches) == 0 {
				return fmt.Errorf("txn: empty latch burst")
			}
			if !sel {
				return fmt.Errorf("txn: latch burst before any chip selection")
			}
		case KindDataWrite:
			if in.N <= 0 {
				return fmt.Errorf("txn: data write of %d bytes", in.N)
			}
			if !sel {
				return fmt.Errorf("txn: data write before any chip selection")
			}
		case KindDataRead:
			if in.N <= 0 {
				return fmt.Errorf("txn: data read of %d bytes", in.N)
			}
			if !sel {
				return fmt.Errorf("txn: data read before any chip selection")
			}
		case KindTimerWait:
			if in.D < 0 {
				return fmt.Errorf("txn: negative timer wait")
			}
		default:
			return fmt.Errorf("txn: instruction with unknown kind %d", in.Kind)
		}
	}
	return nil
}

// EstimateDuration predicts the channel time the transaction will occupy
// under the given timing and bus configuration. Shortest-first schedulers
// sort by this.
func (t *Transaction) EstimateDuration(tm onfi.Timing, cfg onfi.BusConfig) sim.Duration {
	var d sim.Duration
	for _, in := range t.Instrs {
		switch in.Kind {
		case KindCmdAddr:
			d += tm.LatchSegment(len(in.Latches))
		case KindDataWrite:
			d += tm.DataSegment(cfg, in.N)
		case KindDataRead:
			d += tm.TWHR + tm.DataSegment(cfg, in.N)
		case KindTimerWait:
			d += in.D
		}
	}
	return d
}

// String summarizes the transaction for traces.
func (t *Transaction) String() string {
	parts := make([]string, len(t.Instrs))
	for i, in := range t.Instrs {
		parts[i] = in.String()
	}
	return fmt.Sprintf("txn#%d(op%d chip%d: %s)", t.ID, t.OpID, t.Chip, strings.Join(parts, "; "))
}
