package ssd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hwctrl"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
)

// Copybacker is the optional backend capability of relocating a page
// inside one LUN with NAND copyback. The BABOL controller supports it
// (it is just another software operation); the hardware baseline would
// need a new FSM, so it does not — exactly the flexibility argument the
// paper makes.
type Copybacker interface {
	CopybackPage(chip int, src, dst onfi.RowAddr, done func(error))
}

// InterruptibleEraser is the optional backend capability of erasing a
// block while serving urgent reads mid-erase (suspend/resume). Like
// copyback, it is a pure software operation on BABOL and absent from the
// hardware baseline.
type InterruptibleEraser interface {
	EraseBlockInterruptible(chip, block int, next func() (ops.UrgentRead, bool), done func(error))
}

// babolBackend adapts the BABOL software-defined controller to the
// SSD's page-level interface.
type babolBackend struct {
	ctrl *core.Controller
}

// NewBabolBackend wraps a BABOL controller.
func NewBabolBackend(c *core.Controller) Backend { return &babolBackend{ctrl: c} }

func (b *babolBackend) Chip(i int) *nand.LUN { return b.ctrl.Channel().Chip(i) }

func (b *babolBackend) ReadPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error)) {
	b.ctrl.Start(core.OpRequest{
		Func: ops.ReadPage(onfi.Addr{Row: row}, dramAddr, n),
		Chip: chip,
		Done: done,
	})
}

func (b *babolBackend) ProgramPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error)) {
	b.ctrl.Start(core.OpRequest{
		Func: ops.ProgramPage(onfi.Addr{Row: row}, dramAddr, n),
		Chip: chip,
		Done: done,
	})
}

func (b *babolBackend) EraseBlock(chip, block int, done func(error)) {
	b.ctrl.Start(core.OpRequest{
		Func: ops.EraseBlock(block),
		Chip: chip,
		Done: done,
	})
}

// CopybackPage implements Copybacker via the operation library.
func (b *babolBackend) CopybackPage(chip int, src, dst onfi.RowAddr, done func(error)) {
	b.ctrl.Start(core.OpRequest{
		Func: ops.CopybackPage(src, dst),
		Chip: chip,
		Done: done,
	})
}

// EraseBlockInterruptible implements InterruptibleEraser.
func (b *babolBackend) EraseBlockInterruptible(chip, block int, next func() (ops.UrgentRead, bool), done func(error)) {
	b.ctrl.Start(core.OpRequest{
		Func: ops.InterruptibleErase(block, next),
		Chip: chip,
		Done: done,
	})
}

// hwBackend adapts the hardware baseline controller.
type hwBackend struct {
	ctrl *hwctrl.Controller
}

// NewHWBackend wraps a hardware baseline controller.
func NewHWBackend(c *hwctrl.Controller) Backend { return &hwBackend{ctrl: c} }

func (b *hwBackend) Chip(i int) *nand.LUN { return b.ctrl.Channel().Chip(i) }

func (b *hwBackend) ReadPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error)) {
	if err := b.ctrl.Submit(chip, hwctrl.Request{
		Kind: hwctrl.KindRead, Addr: onfi.Addr{Row: row}, DRAMAddr: dramAddr, N: n, Done: done,
	}); err != nil {
		done(err)
	}
}

func (b *hwBackend) ProgramPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error)) {
	if err := b.ctrl.Submit(chip, hwctrl.Request{
		Kind: hwctrl.KindProgram, Addr: onfi.Addr{Row: row}, DRAMAddr: dramAddr, N: n, Done: done,
	}); err != nil {
		done(err)
	}
}

func (b *hwBackend) EraseBlock(chip, block int, done func(error)) {
	if err := b.ctrl.Submit(chip, hwctrl.Request{
		Kind: hwctrl.KindErase, Addr: onfi.Addr{Row: onfi.RowAddr{Block: block}}, Done: done,
	}); err != nil {
		done(err)
	}
}

// Preload initializes the first `lpns` logical pages with the canonical
// pattern, installing FTL mappings and seeding the flash arrays directly
// (no simulated PROGRAM traffic) — how the paper "initializes the
// devices with data" before its fio runs.
func (s *SSD) Preload(lpns int) error {
	if lpns > s.ftl.LogicalPages() {
		return fmt.Errorf("ssd: preload of %d pages exceeds logical capacity %d", lpns, s.ftl.LogicalPages())
	}
	buf := make([]byte, s.pageBytes+s.parityBytes)
	for lpn := 0; lpn < lpns; lpn++ {
		loc, err := s.ftl.AllocateWrite(lpn)
		if err != nil {
			return fmt.Errorf("ssd: preload LPN %d: %w", lpn, err)
		}
		FillPattern(buf[:s.pageBytes], lpn)
		if s.withECC {
			// Encode parity in place in the staging buffer — the
			// EncodePage-then-copy detour allocated a parity slice per
			// preloaded page.
			if err := s.codec.EncodePageInto(buf[s.pageBytes:], buf[:s.pageBytes]); err != nil {
				return fmt.Errorf("ssd: preload LPN %d: %w", lpn, err)
			}
		}
		if err := s.backend.Chip(loc.Chip).SeedPage(loc.Row, buf); err != nil {
			return fmt.Errorf("ssd: preload LPN %d: %w", lpn, err)
		}
	}
	return nil
}
