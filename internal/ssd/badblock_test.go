package ssd

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/hic"
	"repro/internal/ops"
)

// TestGrownBadBlocksAreTransparent marks several factory-bad blocks and
// verifies the host never sees a program failure: the FTL retires them
// and retries on healthy blocks.
func TestGrownBadBlocksAreTransparent(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Ways = 2
	rig := mustBuild(t, cfg)
	// Grow a realistic number of bad blocks at the media level: programs
	// to them will FAIL. (Retiring more than the over-provisioning can
	// absorb would legitimately shrink the drive below its logical
	// capacity.)
	rig.Channel.Chip(0).MarkBad(0)
	rig.Channel.Chip(0).MarkBad(7)
	rig.Channel.Chip(1).MarkBad(3)
	logical := rig.FTL.LogicalPages() * 3 / 4
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical, QueueDepth: 2, LogicalPages: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 {
		t.Fatalf("%d host writes failed despite retirement", res.Failed)
	}
	if res.Completed != logical {
		t.Fatalf("completed %d/%d", res.Completed, logical)
	}
	if rig.FTL.Stats().BadBlocks == 0 {
		t.Error("no blocks retired")
	}
	if err := rig.FTL.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Everything written is readable and correct.
	buf := make([]byte, 512)
	for lpn := 0; lpn < logical; lpn++ {
		loc, ok := rig.FTL.Lookup(lpn)
		if !ok {
			t.Fatalf("LPN %d unmapped", lpn)
		}
		data, err := rig.SSD.backend.Chip(loc.Chip).PeekPage(loc.Row)
		if err != nil {
			t.Fatal(err)
		}
		FillPattern(buf, lpn)
		for i := range buf {
			if data[i] != buf[i] {
				t.Fatalf("LPN %d corrupt at byte %d", lpn, i)
			}
		}
	}
}

// TestRetireBlockBookkeeping exercises the FTL-level retirement paths.
func TestRetireBlockBookkeeping(t *testing.T) {
	cfg := smallBuild(CtrlHW)
	rig := mustBuild(t, cfg)
	f := rig.FTL
	free := f.FreeBlocks(0)
	f.RetireBlock(0, 5)
	if f.FreeBlocks(0) != free-1 {
		t.Errorf("free blocks %d, want %d", f.FreeBlocks(0), free-1)
	}
	f.RetireBlock(0, 5) // idempotent
	if f.Stats().BadBlocks != 1 {
		t.Errorf("BadBlocks = %d", f.Stats().BadBlocks)
	}
	f.RetireBlock(-1, 0)  // no-ops
	f.RetireBlock(0, 999) // no-ops
	f.RetireBlock(99, 0)  // no-ops
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSpareExhaustionDegradesToReadOnly grinds a one-chip drive's
// spares down with a persistent program/erase fail storm: every program
// FAILs, every failure retires a block, and once nothing is left the
// drive must degrade to read-only — writes fail with ErrReadOnly, reads
// keep being served — instead of wedging with writes parked forever.
func TestSpareExhaustionDegradesToReadOnly(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Ways = 1
	cfg.Faults = &fault.Plan{FailStorms: []fault.FailStorm{{Chip: 0, FirstOp: 0, Count: 0}}}
	rig := mustBuild(t, cfg)
	const preloaded = 8
	if err := rig.SSD.Preload(preloaded); err != nil {
		t.Fatal(err)
	}

	const writes = 20
	var terminated, failed, readOnly int
	for i := 0; i < writes; i++ {
		rig.SSD.Submit(hic.Command{Kind: hic.KindWrite, LPN: preloaded + i, Done: func(err error) {
			terminated++
			if err != nil {
				failed++
			}
			if errors.Is(err, ErrReadOnly) {
				readOnly++
			}
		}})
	}
	rig.Kernel.Run()

	if terminated != writes {
		t.Fatalf("only %d/%d writes terminated: the drive wedged", terminated, writes)
	}
	if failed != writes {
		t.Fatalf("%d writes succeeded against a persistent fail storm", writes-failed)
	}
	if !rig.SSD.Stats().ReadOnly {
		t.Fatal("spares exhausted but the drive never entered read-only mode")
	}
	if readOnly == 0 {
		t.Error("no write failed with ErrReadOnly")
	}

	// A write submitted after degradation fails fast with ErrReadOnly.
	var lateErr error
	rig.SSD.Submit(hic.Command{Kind: hic.KindWrite, LPN: preloaded, Done: func(err error) { lateErr = err }})
	rig.Kernel.Run()
	if !errors.Is(lateErr, ErrReadOnly) {
		t.Fatalf("write after degradation returned %v, want ErrReadOnly", lateErr)
	}

	// Reads still drain in read-only mode.
	for lpn := 0; lpn < preloaded; lpn++ {
		done, rerr := false, error(nil)
		rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) { done, rerr = true, err }})
		rig.Kernel.Run()
		if !done {
			t.Fatalf("read of LPN %d never terminated in read-only mode", lpn)
		}
		if rerr != nil {
			t.Fatalf("read of LPN %d in read-only mode: %v", lpn, rerr)
		}
	}
	if err := rig.FTL.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUrgentQueueSteadyStateDoesNotGrow is the regression for the
// reslicing pop: q.items = q.items[1:] discarded the popped slot's
// capacity, so a long-lived queue reallocated its backing array on
// nearly every push. The head-index pop must reuse the array instead.
func TestUrgentQueueSteadyStateDoesNotGrow(t *testing.T) {
	q := &urgentQueue{}
	for i := 0; i < 1000; i++ {
		q.push(ops.UrgentRead{DramAddr: i})
		ur, ok := q.next()
		if !ok || ur.DramAddr != i {
			t.Fatalf("cycle %d popped %+v %v", i, ur, ok)
		}
	}
	if c := cap(q.items); c > 8 {
		t.Fatalf("backing array grew to %d entries over steady-state churn", c)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		q.push(ops.UrgentRead{})
		q.next()
	}); avg > 0.01 {
		t.Fatalf("steady-state push/pop allocates %.2f times per cycle", avg)
	}

	// FIFO order holds across a batch and the queue resets on drain.
	for i := 0; i < 5; i++ {
		q.push(ops.UrgentRead{DramAddr: i})
	}
	for i := 0; i < 5; i++ {
		ur, ok := q.next()
		if !ok || ur.DramAddr != i {
			t.Fatalf("FIFO broken at %d: %+v %v", i, ur, ok)
		}
	}
	if _, ok := q.next(); ok {
		t.Fatal("empty queue popped an element")
	}
	if q.head != 0 || len(q.items) != 0 {
		t.Fatalf("queue did not reset on drain: head=%d len=%d", q.head, len(q.items))
	}
}
