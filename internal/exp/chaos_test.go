package exp

import (
	"testing"

	"repro/internal/obs"
)

// TestChaosSoakSurvivesFaults is the bounded soak: several seeded fault
// plans — stuck-busy chips, fail storms, ECC bursts, erratic tR — run
// against the full SSD under mixed read/write load with GC pressure.
// Chaos itself enforces the survival contract per seed (every op
// terminates, FTL invariants hold, data on unfaulted chips verifies);
// the test additionally demands the harness actually exercised the
// machinery: faults fired, RESET recoveries ran, and both are visible
// in the aggregated obs metrics.
func TestChaosSoakSurvivesFaults(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	m := obs.NewMetrics()
	pts, err := Chaos(Options{Ops: 240, Tracer: m}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var hits, recoveries, offlined uint64
	for _, p := range pts {
		if p.Completed != 240 {
			t.Errorf("seed %d: %d/240 ops terminated", p.Seed, p.Completed)
		}
		hits += p.FaultHits
		recoveries += p.Recoveries
		offlined += p.Offlined
	}
	if hits == 0 {
		t.Error("no faults fired across the soak; the harness is disarmed")
	}
	if recoveries == 0 {
		t.Error("no RESET recoveries ran; the poll budget never escalated")
	}
	if offlined == 0 {
		t.Error("no chip was ever offlined; unrecoverable faults went missing")
	}

	// The whole campaign is visible through the observability layer.
	snap := m.Snapshot()
	if snap.Faults == 0 || snap.Recoveries == 0 {
		t.Errorf("metrics missed the campaign: faults=%d recoveries=%d", snap.Faults, snap.Recoveries)
	}
	if snap.FaultsByLabel["stuck-busy"] == 0 {
		t.Errorf("no stuck-busy hits in metrics: %v", snap.FaultsByLabel)
	}
	if snap.RecoveriesByLabel["reset"] == 0 {
		t.Errorf("no reset recoveries in metrics: %v", snap.RecoveriesByLabel)
	}
}

// TestChaosReproducesFromSeed is the reproducibility contract a chaos
// report rests on: rerunning one seed in isolation yields the identical
// point.
func TestChaosReproducesFromSeed(t *testing.T) {
	opt := Options{Ops: 120}
	all, err := Chaos(opt, []int64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Chaos(opt, []int64{7})
	if err != nil {
		t.Fatal(err)
	}
	if all[1] != again[0] {
		t.Fatalf("seed 7 did not reproduce:\nfirst  %+v\nsecond %+v", all[1], again[0])
	}
}
