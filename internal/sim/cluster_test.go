package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// loggedNet is a star network: one hub domain and n leaf domains. The
// hub sends each leaf `rounds` jobs; a leaf holds each job for its own
// service time before answering. Each domain logs into its own slice —
// appended only by the owning shard — so runs at different shard counts
// can be compared event-for-event without data races.
type loggedNet struct {
	c    *Cluster
	hub  *Domain
	logs [][]string // per-domain, owned by that domain's shard
}

func buildLoggedNet(shards, leaves, rounds int, lookahead Duration) *loggedNet {
	c := NewCluster(shards, lookahead)
	net := &loggedNet{c: c, hub: c.AddDomain(0), logs: make([][]string, leaves+1)}
	for i := 0; i < leaves; i++ {
		i := i
		// Hub alone on shard 0, leaves spread round-robin over the rest;
		// the mapping must not affect results.
		shard := 0
		if shards > 1 {
			shard = 1 + i%(shards-1)
		}
		leaf := c.AddDomain(shard)
		left := rounds
		service := Duration(i%3+1) * 3 * Microsecond
		var serve func()
		serve = func() {
			net.logs[1+i] = append(net.logs[1+i], fmt.Sprintf("leaf%d rx @%v", i, leaf.Now()))
			leaf.Kernel().After(service, func() {
				leaf.Post(net.hub, func() {
					net.logs[0] = append(net.logs[0], fmt.Sprintf("done leaf%d @%v", i, net.hub.Now()))
					left--
					if left > 0 {
						net.hub.Post(leaf, serve)
					}
				})
			})
		}
		net.hub.Post(leaf, serve)
	}
	return net
}

func (n *loggedNet) flatLog() []string {
	var out []string
	for _, l := range n.logs {
		out = append(out, l...)
	}
	return out
}

// TestClusterShardInvariance pins the tentpole invariant: the event
// history of a domain network is a pure function of the network and the
// lookahead, independent of how domains map onto shards and how many
// shards (goroutines) run it.
func TestClusterShardInvariance(t *testing.T) {
	const leaves, rounds = 5, 40
	look := 2 * Microsecond
	var ref []string
	for _, shards := range []int{1, 2, 3, 6} {
		net := buildLoggedNet(shards, leaves, rounds, look)
		net.c.Run()
		got := net.flatLog()
		if len(got) != leaves*rounds*2 {
			t.Fatalf("shards=%d: %d log entries, want %d", shards, len(got), leaves*rounds*2)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("shards=%d: log length %d != %d", shards, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("shards=%d: log[%d] = %q, want %q", shards, i, got[i], ref[i])
			}
		}
	}
}

// TestClusterPostLatency checks that a post lands exactly lookahead
// after its send time, and that same-instant deliveries keep (src, seq)
// order regardless of posting order across domains.
func TestClusterPostLatency(t *testing.T) {
	c := NewCluster(1, 5*Microsecond)
	a := c.AddDomain(0)
	b := c.AddDomain(0)
	h := c.AddDomain(0)
	var order []string
	// b posts first in wall order, but a is the lower domain index, so at
	// the shared delivery instant a's posts must run first.
	b.Post(h, func() { order = append(order, "b1") })
	a.Post(h, func() { order = append(order, "a1") })
	a.Post(h, func() { order = append(order, "a2") })
	var at Time
	a.Post(h, func() { at = h.Now() })
	c.Run()
	want := []string{"a1", "a2", "b1"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
	}
	if at != Time(5*Microsecond) {
		t.Fatalf("post delivered at %v, want 5us", at)
	}
}

// TestClusterChainedLatency checks accumulated hops: each reply is sent
// lookahead after the previous delivery.
func TestClusterChainedLatency(t *testing.T) {
	const look = 3 * Microsecond
	c := NewCluster(2, look)
	a, b := c.AddDomain(0), c.AddDomain(1)
	// Hop n lands on b (even n) or a (odd n); each closure reads only
	// its own domain's clock — reading the other shard's mid-window is a
	// data race by design.
	timesA := []Time{}
	timesB := []Time{}
	const hops = 6
	n := 0
	var bounceA, bounceB func()
	bounceA = func() {
		timesA = append(timesA, a.Now())
		if n++; n < hops {
			a.Post(b, bounceB)
		}
	}
	bounceB = func() {
		timesB = append(timesB, b.Now())
		if n++; n < hops {
			b.Post(a, bounceA)
		}
	}
	a.Post(b, bounceB)
	c.Run()
	// n is written alternately by both shards but every write is
	// separated by a full post round-trip, so reading it here (after the
	// barriers in Run) is ordered.
	if n != hops {
		t.Fatalf("%d hops, want %d", n, hops)
	}
	for i, at := range timesB {
		if want := Time(2*i+1) * Time(look); at != want {
			t.Fatalf("b hop %d at %v, want %v", i, at, want)
		}
	}
	for i, at := range timesA {
		if want := Time(2*i+2) * Time(look); at != want {
			t.Fatalf("a hop %d at %v, want %v", i, at, want)
		}
	}
}

// TestClusterValidation pins the constructor contracts.
func TestClusterValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero shards", func() { NewCluster(0, Microsecond) })
	mustPanic("zero lookahead", func() { NewCluster(1, 0) })
	mustPanic("bad shard", func() { NewCluster(2, Microsecond).AddDomain(2) })
}

// TestClusterInterleavedLocalWork checks that dense local events across
// several windows interleave with deliveries without ever scheduling in
// the past (Kernel.At panics if they would).
func TestClusterInterleavedLocalWork(t *testing.T) {
	c := NewCluster(3, Microsecond)
	h := c.AddDomain(0)
	var leafs []*Domain
	for i := 0; i < 4; i++ {
		leafs = append(leafs, c.AddDomain(1+i%2))
	}
	total := 0
	for i, leaf := range leafs {
		leaf := leaf
		// Local ticker: odd-period events that straddle window edges.
		period := Duration(700+100*i) * Nanosecond
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 50 {
				leaf.Kernel().After(period, tick)
			} else {
				leaf.Post(h, func() { total++ })
			}
		}
		leaf.Kernel().At(0, tick)
	}
	c.Run()
	if total != len(leafs) {
		t.Fatalf("total = %d, want %d", total, len(leafs))
	}
}

// raceDetectorEnabled is set by cluster_race_test.go under -race.
var raceDetectorEnabled = false

// TestAllocGateClusterSteadyState pins the cluster machinery's alloc
// behavior: once outboxes and heaps reach their high-water mark, a
// window cycle allocates nothing — posts, delivery, sorting, and the
// barrier itself are all reuse. (The worker goroutines' channel ops
// don't allocate either.)
func TestAllocGateClusterSteadyState(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	c := NewCluster(2, Microsecond)
	a, b := c.AddDomain(0), c.AddDomain(1)
	const warmup, measured = 200, 1000
	n := 0
	var m1, m2 runtime.MemStats
	var bounceA, bounceB func()
	bounceA = func() {
		n++
		if n == warmup {
			runtime.ReadMemStats(&m1)
		}
		if n == warmup+measured {
			runtime.ReadMemStats(&m2)
			return
		}
		a.Post(b, bounceB)
	}
	bounceB = func() { b.Post(a, bounceA) }
	b.Post(a, bounceA)
	c.Run()
	allocs := m2.Mallocs - m1.Mallocs
	// Each round is two posts, two deliveries, and two windows. Allow a
	// tiny fixed slop for runtime background noise, nothing per-event.
	if allocs > 16 {
		t.Fatalf("steady state allocated %d objects over %d rounds, want ~0", allocs, measured)
	}
}
