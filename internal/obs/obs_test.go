package obs

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); int(k) < len(kindNames); k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("KindFromString(%q) = %v, %v; want %v, true", name, back, ok, k)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Fatal("KindFromString accepted an unknown name")
	}
	if got := Kind(200).String(); got != "unknown" {
		t.Fatalf("out-of-range Kind.String() = %q", got)
	}
}

func TestOnChannelTagsAndPreservesNil(t *testing.T) {
	if OnChannel(nil, 3) != nil {
		t.Fatal("OnChannel(nil) must stay nil so emission sites skip entirely")
	}
	var got []Event
	tr := OnChannel(Func(func(e Event) { got = append(got, e) }), 7)
	tr.Event(Event{Kind: KindGateOpened, Chip: 2})
	if len(got) != 1 || got[0].Channel != 7 || got[0].Chip != 2 {
		t.Fatalf("tagged event = %+v", got)
	}
}

func TestMultiSkipsNil(t *testing.T) {
	var n int
	m := Multi{nil, Func(func(Event) { n++ }), nil, Func(func(Event) { n++ })}
	m.Event(Event{})
	if n != 2 {
		t.Fatalf("Multi delivered to %d tracers, want 2", n)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1024, -5} {
		h.Observe(v)
	}
	if h.Count != 7 {
		t.Fatalf("Count = %d", h.Count)
	}
	if h.Max != 1024 {
		t.Fatalf("Max = %d", h.Max)
	}
	// 0 and -5 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3;
	// 1024 → bucket 11.
	want := map[int]uint64{0: 2, 1: 1, 2: 2, 3: 1, 11: 1}
	for b, n := range want {
		if h.Buckets[b] != n {
			t.Fatalf("bucket %d = %d, want %d", b, h.Buckets[b], n)
		}
	}
	if got := h.Mean(); got != float64(1034)/7 {
		t.Fatalf("Mean = %v", got)
	}
}

// sampleStream is a hand-built event sequence exercising every kind.
func sampleStream() []Event {
	return []Event{
		{Time: 10, Kind: KindCPUCharge, Label: "admit", Cycles: 100, Dur: 500},
		{Time: 10, Kind: KindOpAdmitted, OpID: 1, Chip: 0, Label: "active"},
		{Time: 12, Kind: KindAdmissionWait, OpID: 2, Chip: 0},
		{Time: 15, Kind: KindCPUCharge, Label: "submit", Cycles: 50, Dur: 250},
		{Time: 15, Kind: KindTxnEnqueued, OpID: 1, TxnID: 1, Chip: 0, Depth: 1},
		{Time: 16, Kind: KindTxnPopped, TxnID: 1, Depth: 0},
		{Time: 30, Kind: KindTxnExecuted, OpID: 1, TxnID: 1, Chip: 0, Start: 16, End: 30, Dur: 14},
		{Time: 30, Kind: KindGateOpened, Chip: 0},
		{Time: 31, Kind: KindPollResubmit, OpID: 1, Chip: 0},
		{Time: 32, Kind: KindOpResumed, OpID: 1},
		{Time: 40, Kind: KindOpFinished, OpID: 1, Chip: 0, Dur: 30},
		{Time: 41, Kind: KindOpFinished, OpID: 3, Chip: 1, Dur: 5, Err: true},
		{Time: 42, Kind: KindHWInstr, TxnID: 1, Chip: 0, Label: "data-read", Bytes: 4096, Dur: 7},
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	m.Replay(sampleStream())
	s := m.Snapshot()

	if s.Events != 13 {
		t.Fatalf("Events = %d", s.Events)
	}
	if s.FirstEvent != 10 || s.LastEvent != 42 {
		t.Fatalf("span [%v, %v]", s.FirstEvent, s.LastEvent)
	}
	if s.Span() != 32 {
		t.Fatalf("Span = %v", s.Span())
	}
	if s.SoftwareTime != 750 || s.SoftwareCycles != 150 {
		t.Fatalf("software %v / %d cycles", s.SoftwareTime, s.SoftwareCycles)
	}
	if s.HardwareTime != 14 {
		t.Fatalf("HardwareTime = %v", s.HardwareTime)
	}
	if got := s.SoftwareShare(); got != 750.0/764.0 {
		t.Fatalf("SoftwareShare = %v", got)
	}
	if s.OpsAdmitted != 1 || s.OpsResumed != 1 || s.OpsFinished != 2 || s.OpsFailed != 1 {
		t.Fatalf("op counters %+v", s)
	}
	if s.AdmissionWaits != 1 || s.GateOpens != 1 || s.PollResubmits != 1 {
		t.Fatalf("wait/gate/poll counters %+v", s)
	}
	if s.TxnsEnqueued != 1 || s.TxnsPopped != 1 || s.TxnsExecuted != 1 {
		t.Fatalf("txn counters %+v", s)
	}
	if s.Charges["admit"].Count != 1 || s.Charges["admit"].Cycles != 100 || s.Charges["admit"].Time != 500 {
		t.Fatalf("admit charge %+v", s.Charges["admit"])
	}
	if s.Charges["submit"].Time != 250 {
		t.Fatalf("submit charge %+v", s.Charges["submit"])
	}
	if s.QueueDepth.Count != 2 {
		t.Fatalf("QueueDepth.Count = %d", s.QueueDepth.Count)
	}
	if s.OpLatency.Count != 2 || s.OpLatency.Sum != 35 {
		t.Fatalf("OpLatency %+v", s.OpLatency)
	}

	ch := s.Channels[0]
	if ch.TxnsEnqueued != 1 || ch.TxnsExecuted != 1 || ch.GateOpens != 1 || ch.BusyTime != 14 {
		t.Fatalf("channel 0 %+v", ch)
	}
	if got := s.ChannelIdle(0); got != 32-14 {
		t.Fatalf("ChannelIdle = %v", got)
	}

	c0 := s.Chips[ChipKey{Channel: 0, Chip: 0}]
	if c0.OpsAdmitted != 1 || c0.OpsFinished != 1 || c0.AdmissionWaits != 1 ||
		c0.PollResubmits != 1 || c0.TxnsExecuted != 1 || c0.BusyTime != 14 {
		t.Fatalf("chip (0,0) %+v", c0)
	}
	c1 := s.Chips[ChipKey{Channel: 0, Chip: 1}]
	if c1.OpsFinished != 1 || c1.OpsFailed != 1 {
		t.Fatalf("chip (0,1) %+v", c1)
	}

	if s.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	m := NewMetrics()
	m.Replay(sampleStream())
	s1 := m.Snapshot()
	m.Event(Event{Time: 100, Kind: KindGateOpened, Chip: 0})
	s2 := m.Snapshot()
	if s1.GateOpens != 1 || s2.GateOpens != 2 {
		t.Fatalf("global: s1=%d s2=%d", s1.GateOpens, s2.GateOpens)
	}
	if s1.Channels[0].GateOpens != 1 || s2.Channels[0].GateOpens != 2 {
		t.Fatalf("per-channel: s1=%d s2=%d", s1.Channels[0].GateOpens, s2.Channels[0].GateOpens)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleStream()
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, e := range events {
		w.Event(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if bytes.Count(buf.Bytes(), []byte("\n")) != len(events) {
		t.Fatalf("want %d lines, got %d", len(events), bytes.Count(buf.Bytes(), []byte("\n")))
	}

	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", events, back)
	}

	// Replaying the decoded stream must reproduce the live aggregation.
	live, replayed := NewMetrics(), NewMetrics()
	live.Replay(events)
	replayed.Replay(back)
	if !reflect.DeepEqual(live.Snapshot(), replayed.Snapshot()) {
		t.Fatal("replayed snapshot differs from live snapshot")
	}
}

func TestReadJSONLRejectsUnknownKind(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString(`{"t":1,"kind":"martian"}` + "\n")); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

var benchSink sim.Duration

// BenchmarkNilTracerGuard documents the disabled-path cost: one nil
// compare per site.
func BenchmarkNilTracerGuard(b *testing.B) {
	var tr Tracer
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.Event(Event{})
		}
		benchSink++
	}
}
