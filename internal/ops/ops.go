// Package ops is BABOL's operation library: ONFI standard and
// vendor-advanced flash operations written against the core.Ctx software
// environment. Each operation is plain sequential code that composes
// µFSM instructions into transactions and yields at Submit — the Go
// rendering of the paper's Figure 8 algorithms.
//
// Operations nest naturally: ReadPage calls the same pollReady helper an
// SSD Architect would reuse, exactly as Algorithm 2 invokes Algorithm 1.
package ops

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/onfi"
	"repro/internal/sim"
)

// ReadStatus issues one READ STATUS against chip from within a running
// operation and returns the status byte. It is the building block of
// Algorithm 1: a command latch for 0x70 followed by a one-byte data read.
func ReadStatus(ctx *core.Ctx, chip int) (byte, error) {
	ctx.Chip(bus.Mask(chip))
	ctx.Cmd(onfi.CmdReadStatus)
	ctx.ReadCapture(1)
	res := ctx.Submit()
	if res.Err != nil {
		return 0, res.Err
	}
	if len(res.Captured) != 1 {
		return 0, fmt.Errorf("ops: read status captured %d bytes", len(res.Captured))
	}
	return res.Captured[0], nil
}

// pollReady polls READ STATUS until the chip reports ready (Algorithm 2
// lines 7..9: SSD Architects poll for the end of tR rather than use a
// fixed wait, because tR is highly variable). It returns the final
// status byte so callers can inspect FAIL bits. The loop is bounded:
// a chip busy past the package's worst-case time escalates to RESET
// recovery (see recovery.go).
func pollReady(ctx *core.Ctx, chip int) (byte, error) {
	return pollStatus(ctx, chip, onfi.StatusRDY)
}

// pollArrayReady polls READ STATUS until the flash array itself is idle
// (ARDY). Cache operations key off ARDY rather than RDY: the LUN stays
// RDY for cache-register transfers while the array fetches the next
// page. Bounded like pollReady.
func pollArrayReady(ctx *core.Ctx, chip int) (byte, error) {
	return pollStatus(ctx, chip, onfi.StatusARDY)
}

// appendReadLatches appends the READ.1 + 5-address + confirm burst to
// dst. Callers pass a stack-backed dst so the burst never touches the
// heap — Ctx.CmdAddr copies it into the context's latch arena.
func appendReadLatches(dst []onfi.Latch, g onfi.Geometry, a onfi.Addr, confirm onfi.Cmd) []onfi.Latch {
	dst = append(dst, onfi.CmdLatch(onfi.CmdRead1))
	dst = g.AppendAddrLatches(dst, a)
	dst = append(dst, onfi.CmdLatch(confirm))
	return dst
}

// appendChangeColumnLatches appends the 0x05 + column + 0xE0 burst to dst.
func appendChangeColumnLatches(dst []onfi.Latch, col onfi.ColAddr) []onfi.Latch {
	cb := onfi.EncodeColAddr(col)
	return append(dst,
		onfi.CmdLatch(onfi.CmdChangeReadCol1),
		onfi.AddrLatch(cb[0]), onfi.AddrLatch(cb[1]),
		onfi.CmdLatch(onfi.CmdChangeReadCol2),
	)
}

// ReadPage returns the READ operation with a Column Address Change
// (Algorithm 2): latch command+address, poll status through tR, then
// change the read column to addr.Col and transfer n bytes into DRAM at
// dramAddr.
func ReadPage(addr onfi.Addr, dramAddr, n int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		if err := g.CheckAddr(addr); err != nil {
			return err
		}
		// Transaction 1: command + page address + confirm (starts tR).
		var lbuf [8]onfi.Latch
		ctx.CmdAddr(appendReadLatches(lbuf[:0], g, onfi.Addr{Row: addr.Row}, onfi.CmdRead2)...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		// Poll for tR completion.
		s, err := pollReady(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusFail != 0 {
			return fmt.Errorf("ops: read at %+v reported FAIL", addr.Row)
		}
		// Transaction 2 (final): select the column and stream the data
		// out. The Final tag lets a staged successor start the instant
		// the transfer leaves the channel.
		ctx.CmdAddr(appendChangeColumnLatches(lbuf[:0], addr.Col)...)
		ctx.ReadData(dramAddr, n)
		if res := ctx.SubmitFinal(); res.Err != nil {
			return res.Err
		}
		return nil
	}
}

// ReadPageSLC is the pseudo-SLC READ variation (Algorithm 3): identical
// to ReadPage except the vendor pSLC preamble precedes the command latch,
// trading capacity for speed and endurance.
func ReadPageSLC(addr onfi.Addr, dramAddr, n int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		if err := g.CheckAddr(addr); err != nil {
			return err
		}
		// The only difference from ReadPage (the paper greys exactly
		// this): a pSLC enable latch ahead of READ.1.
		var lbuf [9]onfi.Latch
		latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdPSLCEnable))
		latches = appendReadLatches(latches, g, onfi.Addr{Row: addr.Row}, onfi.CmdRead2)
		ctx.CmdAddr(latches...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		s, err := pollReady(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusFail != 0 {
			return fmt.Errorf("ops: pSLC read at %+v reported FAIL", addr.Row)
		}
		ctx.CmdAddr(appendChangeColumnLatches(lbuf[:0], addr.Col)...)
		ctx.ReadData(dramAddr, n)
		if res := ctx.SubmitFinal(); res.Err != nil {
			return res.Err
		}
		return nil
	}
}

// ReadPageFixedWait is the naive READ variant that spends a fixed tR-long
// sleep instead of polling. It demonstrates Timer-style inter-segment
// waits and serves as the ablation baseline for the polling design.
func ReadPageFixedWait(addr onfi.Addr, dramAddr, n int, wait sim.Duration) core.OpFunc {
	return func(ctx *core.Ctx) error {
		g := ctx.Geometry()
		if err := g.CheckAddr(addr); err != nil {
			return err
		}
		var lbuf [8]onfi.Latch
		ctx.CmdAddr(appendReadLatches(lbuf[:0], g, onfi.Addr{Row: addr.Row}, onfi.CmdRead2)...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		ctx.Sleep(wait)
		ctx.CmdAddr(appendChangeColumnLatches(lbuf[:0], addr.Col)...)
		ctx.ReadData(dramAddr, n)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		return nil
	}
}

// ProgramPage returns the PAGE PROGRAM operation: latch command+address,
// stream n bytes from DRAM at dramAddr, confirm, and poll through tPROG.
func ProgramPage(addr onfi.Addr, dramAddr, n int) core.OpFunc {
	return programPage(addr, dramAddr, n, false)
}

// ProgramPageSLC is the pSLC PROGRAM variation.
func ProgramPageSLC(addr onfi.Addr, dramAddr, n int) core.OpFunc {
	return programPage(addr, dramAddr, n, true)
}

func programPage(addr onfi.Addr, dramAddr, n int, slc bool) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		if err := g.CheckAddr(addr); err != nil {
			return err
		}
		var lbuf [8]onfi.Latch
		latches := lbuf[:0]
		if slc {
			latches = append(latches, onfi.CmdLatch(onfi.CmdPSLCEnable))
		}
		latches = append(latches, onfi.CmdLatch(onfi.CmdProgram1))
		latches = g.AppendAddrLatches(latches, addr)
		ctx.CmdAddr(latches...)
		ctx.WriteData(dramAddr, n)
		ctx.CmdAddr(onfi.CmdLatch(onfi.CmdProgram2))
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		s, err := pollReady(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusFail != 0 {
			return fmt.Errorf("ops: program at %+v reported FAIL", addr.Row)
		}
		return nil
	}
}

// EraseBlock returns the BLOCK ERASE operation: command + 3-cycle row
// address + confirm, then poll through tBERS.
func EraseBlock(block int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		row := onfi.RowAddr{Block: block}
		if err := g.CheckAddr(onfi.Addr{Row: row}); err != nil {
			return err
		}
		var lbuf [5]onfi.Latch
		latches := append(lbuf[:0], onfi.CmdLatch(onfi.CmdErase1))
		latches = g.AppendRowLatches(latches, row)
		latches = append(latches, onfi.CmdLatch(onfi.CmdErase2))
		ctx.CmdAddr(latches...)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		s, err := pollReady(ctx, chip)
		if err != nil {
			return err
		}
		if s&onfi.StatusFail != 0 {
			return fmt.Errorf("ops: erase of block %d reported FAIL", block)
		}
		return nil
	}
}

// ReadID returns the READ ID operation, capturing n identifier bytes.
// The captured bytes are delivered through out.
func ReadID(out *[]byte, n int) core.OpFunc {
	return func(ctx *core.Ctx) error {
		ctx.CmdAddr(onfi.CmdLatch(onfi.CmdReadID), onfi.AddrLatch(0))
		ctx.ReadCapture(n)
		res := ctx.Submit()
		if res.Err != nil {
			return res.Err
		}
		*out = append((*out)[:0], res.Captured...)
		return nil
	}
}

// Reset returns the RESET operation: issue 0xFF and poll until the LUN
// comes back.
func Reset() core.OpFunc {
	return func(ctx *core.Ctx) error {
		ctx.Cmd(onfi.CmdReset)
		if res := ctx.Submit(); res.Err != nil {
			return res.Err
		}
		_, err := pollReady(ctx, ctx.ChipIndex())
		return err
	}
}

// SetFeature returns the SET FEATURES operation. The waveform needs a
// tADL pause between the address cycle and the four parameter bytes —
// the Timer µFSM's canonical use (paper §IV-A).
func SetFeature(feat onfi.FeatureAddr, value [4]byte) core.OpFunc {
	return func(ctx *core.Ctx) error {
		return setFeature(ctx, feat, value)
	}
}

// setFeature is the nestable body of SetFeature.
func setFeature(ctx *core.Ctx, feat onfi.FeatureAddr, value [4]byte) error {
	tm := ctx.Controller().Channel().Timing()
	ctx.CmdAddr(onfi.CmdLatch(onfi.CmdSetFeatures), onfi.AddrLatch(byte(feat)))
	ctx.Wait(tm.TADL)
	// The four parameter bytes travel over a dedicated DRAM scratch
	// window staged by the controller.
	scratch, err := ctx.Scratch(4)
	if err != nil {
		return err
	}
	copy(scratch.Bytes, value[:])
	ctx.WriteData(scratch.Addr, 4)
	if res := ctx.Submit(); res.Err != nil {
		return res.Err
	}
	_, err = pollReady(ctx, ctx.ChipIndex())
	return err
}

// GetFeature returns the GET FEATURES operation, delivering the four
// parameter bytes through out.
func GetFeature(feat onfi.FeatureAddr, out *[4]byte) core.OpFunc {
	return func(ctx *core.Ctx) error {
		tm := ctx.Controller().Channel().Timing()
		ctx.CmdAddr(onfi.CmdLatch(onfi.CmdGetFeatures), onfi.AddrLatch(byte(feat)))
		ctx.Wait(tm.TADL)
		ctx.ReadCapture(4)
		res := ctx.Submit()
		if res.Err != nil {
			return res.Err
		}
		copy(out[:], res.Captured)
		return nil
	}
}
