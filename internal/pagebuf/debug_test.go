//go:build bufdebug

package pagebuf

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one mentioning %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one mentioning %q", r, want)
		}
	}()
	fn()
}

func TestUseAfterReleasePanics(t *testing.T) {
	p := NewPool(32)
	b := p.Get()
	b.Release()
	mustPanic(t, "use-after-release", func() { b.Bytes() })
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool(32)
	b := p.Get()
	b.Release()
	mustPanic(t, "release", func() { b.Release() })
}

// TestReleasePoisonsPayload checks the diagnostic side of the contract:
// a stale alias held across Release reads PoisonByte, not plausible
// data. (Holding the alias is exactly the bug the poison makes loud;
// the test commits it deliberately.)
func TestReleasePoisonsPayload(t *testing.T) {
	p := NewPool(32)
	b := p.Get()
	alias := b.Bytes()
	for i := range alias {
		alias[i] = 0xAA
	}
	b.Release()
	for i, v := range alias {
		if v != PoisonByte {
			t.Fatalf("byte %d = %#x after release, want poison %#x", i, v, PoisonByte)
		}
	}
}
