package ssd

import (
	"errors"

	"repro/internal/ops"
)

// Garbage collection: when a chip dips below its free-block watermark,
// the SSD picks the emptiest sealed block (greedy, via the FTL), copies
// its live pages to fresh locations through the controller, and erases
// the victim. GC runs one block at a time per chip and shares the normal
// datapath, so it naturally competes with host traffic for the channel.

func (s *SSD) maybeGC(chip int) {
	if s.gcRunning[chip] || !s.ftl.NeedsGC(chip) {
		return
	}
	block, live, ok := s.ftl.GCCandidate(chip)
	if !ok {
		return
	}
	if len(live) == s.ftl.Geometry().PagesPerBlk {
		// Even the emptiest sealed block is fully live: collecting it
		// would burn one block to free one block. Wait for host
		// overwrites to create garbage instead of livelocking.
		return
	}
	s.gcRunning[chip] = true
	s.stats.GCCycles++
	s.gcMove(chip, block, live, 0)
}

// gcMove relocates live[idx:] one page at a time, then erases the victim.
func (s *SSD) gcMove(chip, victim int, live []int, idx int) {
	if idx >= len(live) {
		outcome := func(err error) {
			switch {
			case err == nil:
				s.ftl.OnErased(chip, victim)
			case errors.Is(err, ops.ErrChipDead):
				// The chip wedged mid-erase and RESET could not revive
				// it: take the whole chip out of service (retiring one
				// block on a dead chip would be moot).
				s.offlineChip(chip)
			case errors.Is(err, ops.ErrResetRecovered):
				// The erase was aborted by RESET but the chip is healthy
				// again; leave the victim sealed so a later pass re-picks
				// and re-erases it.
				s.stats.RecoveredOps++
			default:
				// The block failed to erase: retire it, or GC would
				// re-pick the same victim forever.
				s.ftl.RetireBlock(chip, victim)
			}
		}
		tail := func() {
			s.gcRunning[chip] = false
			// Retry writes parked on out-of-space, then keep collecting
			// if still under the watermark.
			s.drainStalled()
			s.maybeGC(chip)
		}
		if s.suspendReads {
			// Sharded rig: the channel's domain owns the urgent queue and
			// restarts any leftovers itself before completing.
			if re, ok := s.backend.(relayEraser); ok {
				if sink, armed := re.eraseBlockRelay(chip, victim, func(err error) {
					outcome(err)
					delete(s.eraseQueues, chip)
					tail()
				}); armed {
					s.eraseQueues[chip] = sink
					return
				}
			}
			// Same-domain backend: the erase pulls from our queue directly,
			// and we hand leftovers (reads that arrived after the erase's
			// last check) to the normal path on completion.
			if ie, ok := s.backend.(InterruptibleEraser); ok {
				q := &urgentQueue{}
				s.eraseQueues[chip] = q
				ie.EraseBlockInterruptible(chip, victim, q.next, func(err error) {
					outcome(err)
					delete(s.eraseQueues, chip)
					for {
						ur, ok := q.next()
						if !ok {
							break
						}
						s.backend.ReadPage(chip, ur.Addr.Row, ur.DramAddr, ur.N, ur.Done)
					}
					tail()
				})
				return
			}
		}
		s.backend.EraseBlock(chip, victim, func(err error) {
			outcome(err)
			tail()
		})
		return
	}
	lpn := live[idx]
	if s.inflightPrograms[lpn] > 0 {
		// The page's program has not landed in the array yet (the FTL
		// maps at allocation time, and the transaction scheduler may run
		// our relocation's read issue ahead of the program's data
		// transfer). Relocating now would copy erased cells; park this
		// step until the program lands.
		s.awaitProgram(lpn, func() { s.gcMove(chip, victim, live, idx) })
		return
	}
	src, ok := s.ftl.Lookup(lpn)
	if !ok || src.Row.Block != victim || src.Chip != chip {
		// The host overwrote this page since the candidate snapshot;
		// nothing to move.
		s.gcMove(chip, victim, live, idx+1)
		return
	}
	// Copyback path: relocate inside the LUN with no channel data
	// transfer when the controller supports it.
	if s.useCopyback {
		if cb, ok := s.backend.(Copybacker); ok {
			if dst, err := s.ftl.RelocateForGCOn(chip, lpn); err == nil {
				s.stats.GCCopybacks++
				s.programStarted(lpn)
				cb.CopybackPage(chip, src.Row, dst.Row, func(err error) {
					if err != nil {
						s.ftl.Invalidate(lpn)
						if errors.Is(err, ops.ErrChipDead) {
							s.offlineChip(chip)
						}
					}
					s.programLanded(lpn)
					s.gcMove(chip, victim, live, idx+1)
				})
				return
			}
			// No room for an intra-chip move (the chip's GC stream is out
			// of space): fall through to the cross-chip slot path instead
			// of silently abandoning the collection cycle mid-block.
		}
	}
	s.acquireSlot(func(addr int) {
		n := s.pageBytes + s.parityBytes
		s.backend.ReadPage(src.Chip, src.Row, addr, n, func(err error) {
			if err == nil && s.withECC {
				// Scrub in transit: correct accumulated bit errors and
				// regenerate parity, so relocations do not compound raw
				// errors generation over generation.
				err = s.scrubECC(addr)
			}
			if err != nil {
				// Unreadable victim page: drop it rather than wedge GC.
				s.ftl.Invalidate(lpn)
				s.releaseSlot(addr)
				s.gcMove(chip, victim, live, idx+1)
				return
			}
			var program func(attempt int)
			program = func(attempt int) {
				dst, err := s.ftl.RelocateForGC(lpn)
				if err != nil {
					// No chip anywhere has room for GC writes: spares are
					// exhausted drive-wide. Degrade to read-only instead of
					// abandoning the cycle and leaving stalled writes
					// parked forever.
					s.releaseSlot(addr)
					s.gcRunning[chip] = false
					s.enterDegraded()
					return
				}
				s.programStarted(lpn)
				s.backend.ProgramPage(dst.Chip, dst.Row, addr, n, func(err error) {
					if err == nil {
						s.programLanded(lpn)
						s.releaseSlot(addr)
						s.gcMove(chip, victim, live, idx+1)
						return
					}
					s.ftl.Invalidate(lpn)
					switch {
					case errors.Is(err, ops.ErrChipDead):
						s.offlineChip(dst.Chip)
					case errors.Is(err, ops.ErrResetRecovered):
						s.stats.RecoveredOps++
					default:
						s.ftl.RetireBlock(dst.Chip, dst.Row.Block)
					}
					if attempt+1 < maxProgramRetries {
						// The data is still staged in the slot: retry the
						// relocation elsewhere before landing this attempt,
						// so the in-flight count never dips to zero
						// mid-retry.
						program(attempt + 1)
						s.programLanded(lpn)
						return
					}
					// Out of attempts: the page is dropped from the map
					// rather than wedging the collection cycle.
					s.programLanded(lpn)
					s.releaseSlot(addr)
					s.gcMove(chip, victim, live, idx+1)
				})
			}
			program(0)
		})
	})
}
