package analyze

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// The shard report decodes the flight-recorder events a sharded rig
// appends to its trace (obs.KindShardWindow / obs.KindShardMailbox)
// into the view the multi-core tuning work reads: which shards carry
// the load, what the conservative-window barrier costs in imbalance,
// which shard is the critical path when, and how much a larger
// lookahead would shrink the window count. Everything here derives from
// virtual-time quantities — wall-clock never enters a trace — so the
// report is as deterministic as the trace itself. The live wall-clock
// split (exec vs. barrier per shard) is served by the rig's telemetry
// snapshot instead (ssd.Rig.Telemetry).

// ShardUtilization is one shard's aggregate across the recorded
// windows.
type ShardUtilization struct {
	Shard int
	// BusyWindows counts recorded windows in which the shard executed
	// events; the dispatcher skips it entirely in the rest.
	BusyWindows int
	Events      uint64
	// BarrierCost is the load-imbalance attribution: for every window
	// the shard was busy in, span × (criticalEvents − events) /
	// criticalEvents — the virtual time the shard plausibly spent
	// waiting on the window's critical shard, assuming cost tracks
	// event count. A shard with zero barrier cost IS the critical path.
	BarrierCost sim.Duration
}

// ShardMailbox is one (src,dst) domain pair's post traffic.
type ShardMailbox struct {
	Src, Dst int
	Posts    uint64
	Peak     int64
}

// CriticalBucket summarizes one stretch of recorded windows: which
// shard was most often the critical path (most events in the window)
// and how dominant it was.
type CriticalBucket struct {
	FirstSeq, LastSeq uint64 // window sequence range (inclusive)
	Shard             int    // most-often-critical shard
	Share             float64
}

// LookaheadPoint estimates the window count at a lookahead multiple:
// recorded windows greedily coalesced into spans of multiple×lookahead.
// More events per window means less barrier overhead per event — the
// knob this table exists to guide.
type LookaheadPoint struct {
	Multiple   int
	Windows    int
	MeanEvents float64
}

// ShardReport is the per-run shard view. Nil on runs without shard
// events (unsharded rigs, or shard tracing off).
type ShardReport struct {
	Lookahead sim.Duration
	// Windows is the run's total window count (highest sequence seen);
	// Recorded is how many the bounded flight recorder kept. Truncated
	// marks a recorder that wrapped: aggregates below cover only the
	// recorded tail.
	Windows   uint64
	Recorded  int
	Truncated bool
	Shards    []ShardUtilization
	Mailboxes []ShardMailbox
	// SingleBusyShare is the fraction of recorded windows with exactly
	// one busy shard — windows that bought no parallelism at all.
	SingleBusyShare float64
	CriticalPath    []CriticalBucket
	Lookaheads      []LookaheadPoint
}

// shardWindow is one decoded flight-recorder window.
type shardWindow struct {
	seq    uint64
	start  sim.Time
	events map[int]uint64
}

// ShardReportFromEvents builds the report from one run's event stream,
// or nil if the stream carries no shard-window events.
func ShardReportFromEvents(events []obs.Event) *ShardReport {
	var wins []shardWindow
	byseq := map[uint64]int{}
	mbox := map[[2]int]*ShardMailbox{}
	var look sim.Duration
	for _, e := range events {
		switch e.Kind {
		case obs.KindShardWindow:
			i, ok := byseq[e.TxnID]
			if !ok {
				i = len(wins)
				byseq[e.TxnID] = i
				wins = append(wins, shardWindow{seq: e.TxnID, start: e.Time, events: map[int]uint64{}})
			}
			wins[i].events[e.Chip] += uint64(e.Depth)
			if e.Dur > look {
				look = e.Dur
			}
		case obs.KindShardMailbox:
			key := [2]int{e.Channel, e.Chip}
			mb := mbox[key]
			if mb == nil {
				mb = &ShardMailbox{Src: e.Channel, Dst: e.Chip}
				mbox[key] = mb
			}
			mb.Posts += uint64(e.Cycles)
			if int64(e.Depth) > mb.Peak {
				mb.Peak = int64(e.Depth)
			}
		}
	}
	if len(wins) == 0 {
		return nil
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].seq < wins[j].seq })

	rep := &ShardReport{Lookahead: look, Recorded: len(wins)}
	rep.Windows = wins[len(wins)-1].seq
	rep.Truncated = wins[0].seq > 1

	// Per-shard aggregates and the imbalance attribution.
	util := map[int]*ShardUtilization{}
	single := 0
	for _, w := range wins {
		var critical uint64
		for _, n := range w.events {
			if n > critical {
				critical = n
			}
		}
		if len(w.events) == 1 {
			single++
		}
		for shard, n := range w.events {
			u := util[shard]
			if u == nil {
				u = &ShardUtilization{Shard: shard}
				util[shard] = u
			}
			u.BusyWindows++
			u.Events += n
			if critical > 0 {
				u.BarrierCost += sim.Duration(int64(look) * int64(critical-n) / int64(critical))
			}
		}
	}
	for _, u := range util {
		rep.Shards = append(rep.Shards, *u)
	}
	sort.Slice(rep.Shards, func(i, j int) bool { return rep.Shards[i].Shard < rep.Shards[j].Shard })
	rep.SingleBusyShare = float64(single) / float64(len(wins))

	for _, mb := range mbox {
		rep.Mailboxes = append(rep.Mailboxes, *mb)
	}
	sort.Slice(rep.Mailboxes, func(i, j int) bool {
		if rep.Mailboxes[i].Src != rep.Mailboxes[j].Src {
			return rep.Mailboxes[i].Src < rep.Mailboxes[j].Src
		}
		return rep.Mailboxes[i].Dst < rep.Mailboxes[j].Dst
	})

	rep.CriticalPath = criticalBuckets(wins, 8)
	rep.Lookaheads = lookaheadSweep(wins, look)
	return rep
}

// criticalBuckets splits the recorded windows into up to n contiguous
// buckets and names each bucket's dominant critical-path shard. Ties on
// a window go to the lower shard index, keeping the result
// deterministic.
func criticalBuckets(wins []shardWindow, n int) []CriticalBucket {
	if len(wins) < n {
		n = len(wins)
	}
	var out []CriticalBucket
	for b := 0; b < n; b++ {
		lo, hi := b*len(wins)/n, (b+1)*len(wins)/n
		if lo >= hi {
			continue
		}
		wonBy := map[int]int{}
		for _, w := range wins[lo:hi] {
			crit, critN := -1, uint64(0)
			for shard, ev := range w.events {
				if ev > critN || (ev == critN && (crit < 0 || shard < crit)) {
					crit, critN = shard, ev
				}
			}
			wonBy[crit]++
		}
		best, bestN := -1, 0
		for shard, c := range wonBy {
			if c > bestN || (c == bestN && shard < best) {
				best, bestN = shard, c
			}
		}
		out = append(out, CriticalBucket{
			FirstSeq: wins[lo].seq, LastSeq: wins[hi-1].seq,
			Shard: best, Share: float64(bestN) / float64(hi-lo),
		})
	}
	return out
}

// lookaheadSweep estimates how the window count would shrink at 2×, 4×,
// and 8× the lookahead: consecutive recorded windows whose starts fall
// within one widened span coalesce into one. It is an estimate from the
// recorded schedule (a real lookahead change also shifts delivery
// times), but the window-count trend is what tuning needs.
func lookaheadSweep(wins []shardWindow, look sim.Duration) []LookaheadPoint {
	var totalEvents uint64
	for _, w := range wins {
		for _, n := range w.events {
			totalEvents += n
		}
	}
	out := []LookaheadPoint{{
		Multiple: 1, Windows: len(wins),
		MeanEvents: float64(totalEvents) / float64(len(wins)),
	}}
	if look <= 0 {
		return out
	}
	for _, m := range []int{2, 4, 8} {
		span := sim.Duration(int64(look) * int64(m))
		groups := 0
		var groupStart sim.Time
		for i, w := range wins {
			if i == 0 || w.start.Sub(groupStart) >= span {
				groups++
				groupStart = w.start
			}
		}
		out = append(out, LookaheadPoint{
			Multiple: m, Windows: groups,
			MeanEvents: float64(totalEvents) / float64(groups),
		})
	}
	return out
}
