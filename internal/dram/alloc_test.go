package dram

import "testing"

// TestAllocGateDRAMRoundTrip is the allocation-regression gate for the
// staging buffer: Write, ReadInto a caller buffer, and a borrowed View
// must all be allocation-free. The zero-copy data path depends on it —
// every simulated page crosses this buffer twice.
func TestAllocGateDRAMRoundTrip(t *testing.T) {
	b := New(1 << 16)
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i)
	}
	dst := make([]byte, 4096)
	cycle := func() {
		if err := b.Write(128, page); err != nil {
			t.Fatal(err)
		}
		if err := b.ReadInto(dst, 128); err != nil {
			t.Fatal(err)
		}
		w, err := b.View(128, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if w[0] != page[0] {
			t.Fatal("view mismatch")
		}
	}
	cycle()
	if avg := testing.AllocsPerRun(100, cycle); avg > 0 {
		t.Errorf("DRAM round-trip allocated %.1f objects, want 0", avg)
	}
	if dst[4095] != page[4095] {
		t.Error("round-trip data mismatch")
	}
}
