package analyze

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ganttSymbol maps an interval to its one-column glyph.
func ganttSymbol(iv Interval) byte {
	if !iv.OnChannel {
		return '='
	}
	switch iv.Label {
	case "cmd-addr":
		return 'C'
	case "data-read":
		return 'R'
	case "data-write":
		return 'W'
	case "timer-wait":
		return 't'
	case "txn":
		return 'x'
	default:
		return '#'
	}
}

// Gantt renders the timeline as ASCII art, one bus lane and one die
// lane per chip, width columns wide:
//
//	ch0 chip0 bus |CC=RRRR......CC|
//	ch0 chip0 die |..======.......|
//
// C=cmd/addr R=data-read W=data-write t=timer-wait x=txn ==die-busy;
// '*' marks a column where two intervals of the same lane collide —
// legitimate when the scale crushes adjacent bursts together, but on an
// uncrushed scale a '*' in a bus lane is an exclusivity violation made
// visible.
func (t *Timeline) Gantt(width int) string {
	if width < 8 {
		width = 8
	}
	span := t.Last.Sub(t.First)
	if span <= 0 || len(t.Intervals) == 0 {
		return "(empty timeline)\n"
	}
	col := func(at sim.Time) int {
		c := int(int64(at.Sub(t.First)) * int64(width) / int64(span))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	type laneKey struct {
		chip int
		die  bool
	}
	lanes := map[laneKey][]byte{}
	blank := func() []byte { return []byte(strings.Repeat(".", width)) }
	for _, iv := range t.Intervals {
		k := laneKey{iv.Chip, !iv.OnChannel}
		lane := lanes[k]
		if lane == nil {
			lane = blank()
		}
		sym := ganttSymbol(iv)
		lo, hi := col(iv.Start), col(iv.End)
		if hi < lo {
			hi = lo
		}
		for c := lo; c <= hi; c++ {
			switch lane[c] {
			case '.':
				lane[c] = sym
			case sym:
			default:
				lane[c] = '*'
			}
		}
		lanes[k] = lane
	}
	keys := make([]laneKey, 0, len(lanes))
	for k := range lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].chip != keys[j].chip {
			return keys[i].chip < keys[j].chip
		}
		return !keys[i].die && keys[j].die
	})
	var b strings.Builder
	fmt.Fprintf(&b, "span %v..%v (%v), 1 col = %v\n", t.First, t.Last, span, span/sim.Duration(width))
	for _, k := range keys {
		lane := "bus"
		if k.die {
			lane = "die"
		}
		fmt.Fprintf(&b, "ch%d chip%-2d %s |%s|\n", t.Channel, k.chip, lane, lanes[k])
	}
	return b.String()
}

// TimelineCSV renders the raw interval list as CSV.
func (t *Timeline) CSV() string {
	var b strings.Builder
	b.WriteString("start_ps,end_ps,channel,chip,lane,label,op,txn,bytes\n")
	for _, iv := range t.Intervals {
		lane := "bus"
		if !iv.OnChannel {
			lane = "die"
		}
		fmt.Fprintf(&b, "%d,%d,%d,%d,%s,%s,%d,%d,%d\n",
			iv.Start, iv.End, t.Channel, iv.Chip, lane, iv.Label, iv.OpID, iv.TxnID, iv.Bytes)
	}
	return b.String()
}

// SpansCSV renders the per-operation breakdown as CSV, one row per
// span, in the order Analyze produced them.
func SpansCSV(spans []Span) string {
	var b strings.Builder
	b.WriteString("run_op,channel,chip,slot,submitted_ps,admitted_ps,finished_ps," +
		"latency_ps,queue_wait_ps,channel_ps,cell_ps,firmware_ps," +
		"txns,polls,resumes,waits,complete,err\n")
	for i := range spans {
		s := &spans[i]
		fmt.Fprintf(&b, "%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%t,%t\n",
			s.OpID, s.Channel, s.Chip, s.Slot,
			s.Submitted, s.Admitted, s.Finished,
			s.Latency, s.QueueWait(), s.ChannelTime, s.CellTime(), s.FirmwareTime,
			len(s.Txns), s.Polls, s.Resumes, s.Waits, s.Complete, s.Err)
	}
	return b.String()
}

// ComponentsCSV renders the component distributions as CSV, one row per
// breakdown component.
func ComponentsCSV(c Components) string {
	var b strings.Builder
	b.WriteString("component,count,mean_ps,p50_ps,p90_ps,p99_ps,min_ps,max_ps\n")
	row := func(name string, s LatencySummary) {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%d\n",
			name, s.Count, s.Mean, s.P50, s.P90, s.P99, s.Min, s.Max)
	}
	row("latency", c.Latency)
	row("queue_wait", c.QueueWait)
	row("channel_time", c.ChannelTime)
	row("cell_time", c.CellTime)
	row("firmware_time", c.Firmware)
	return b.String()
}

// CSV renders the full analysis in CSV form: the component summary,
// then per-run channel occupancy, then every span. Sections are
// separated by blank lines so the output stays one file but each block
// parses independently.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(ComponentsCSV(r.Components))
	b.WriteString("\nrun,channel,span_ps,busy_ps,idle_ps,utilization,idle_gaps,longest_idle_ps,die_overlap_ps,pipeline_overlap_ps,violations\n")
	for i := range r.Runs {
		run := &r.Runs[i]
		for _, ch := range run.Channels() {
			o := run.Timelines[ch].Occupancy()
			fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%d\n",
				run.Index, ch, o.Span, o.Busy, o.Idle, o.Utilization(),
				o.IdleGaps, o.LongestIdle, o.DieOverlap, o.PipelineOverlap,
				len(run.Violations))
		}
	}
	if r.Metrics.Faults > 0 || r.Metrics.Recoveries > 0 {
		b.WriteString("\nkind,label,count\n")
		for _, l := range sortedLabels(r.Metrics.FaultsByLabel) {
			fmt.Fprintf(&b, "fault,%s,%d\n", l, r.Metrics.FaultsByLabel[l])
		}
		for _, l := range sortedLabels(r.Metrics.RecoveriesByLabel) {
			fmt.Fprintf(&b, "recovery,%s,%d\n", l, r.Metrics.RecoveriesByLabel[l])
		}
	}
	if r.Metrics.MapCacheActive() {
		b.WriteString("\nrun,map_hits,map_misses,map_hit_rate,map_evictions,map_flushes\n")
		fmt.Fprintf(&b, "all,%d,%d,%.4f,%d,%d\n",
			r.Metrics.MapHits, r.Metrics.MapMisses, r.Metrics.MapHitRate(),
			r.Metrics.MapEvictions, r.Metrics.MapFlushes)
		for i := range r.Runs {
			m := &r.Runs[i].Metrics
			if !m.MapCacheActive() {
				continue
			}
			fmt.Fprintf(&b, "%d,%d,%d,%.4f,%d,%d\n",
				r.Runs[i].Index, m.MapHits, m.MapMisses, m.MapHitRate(),
				m.MapEvictions, m.MapFlushes)
		}
	}
	if shard := ShardCSV(r.Runs); shard != "" {
		b.WriteString("\n")
		b.WriteString(shard)
	}
	if tenants := TenantCSV(r.Runs); tenants != "" {
		b.WriteString("\n")
		b.WriteString(tenants)
	}
	b.WriteString("\n")
	b.WriteString(SpansCSV(r.Spans))
	return b.String()
}

// renderShardReport formats one run's shard view: per-shard occupancy
// with the imbalance-derived barrier cost, mailbox traffic, the
// critical-path timeline, and the lookahead-sensitivity table.
func renderShardReport(runIndex int, s *ShardReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nshard report (run %d): windows=%d recorded=%d lookahead=%s",
		runIndex, s.Windows, s.Recorded, us(s.Lookahead))
	if s.Truncated {
		b.WriteString(" [flight recorder wrapped; aggregates cover the recorded tail]")
	}
	b.WriteString("\n")
	var totalEvents uint64
	for _, u := range s.Shards {
		totalEvents += u.Events
	}
	for _, u := range s.Shards {
		share := 0.0
		if totalEvents > 0 {
			share = 100 * float64(u.Events) / float64(totalEvents)
		}
		fmt.Fprintf(&b, "  shard %-2d busy=%d/%d (%.1f%%) events=%-8d (%.1f%%) barrier-cost=%s\n",
			u.Shard, u.BusyWindows, s.Recorded,
			100*float64(u.BusyWindows)/float64(s.Recorded), u.Events, share, us(u.BarrierCost))
	}
	fmt.Fprintf(&b, "  single-busy windows: %.1f%% (no parallelism bought)\n", 100*s.SingleBusyShare)
	if len(s.Mailboxes) > 0 {
		b.WriteString("  mailboxes:")
		for _, mb := range s.Mailboxes {
			fmt.Fprintf(&b, " %d->%d posts=%d peak=%d", mb.Src, mb.Dst, mb.Posts, mb.Peak)
		}
		b.WriteString("\n")
	}
	if len(s.CriticalPath) > 0 {
		b.WriteString("  critical path:")
		for _, c := range s.CriticalPath {
			fmt.Fprintf(&b, " [w%d..w%d]=shard%d(%.0f%%)", c.FirstSeq, c.LastSeq, c.Shard, 100*c.Share)
		}
		b.WriteString("\n")
	}
	if len(s.Lookaheads) > 0 {
		b.WriteString("  lookahead sensitivity:")
		base := s.Lookaheads[0].Windows
		for _, p := range s.Lookaheads {
			fmt.Fprintf(&b, " %dx=%dw/%.1fev", p.Multiple, p.Windows, p.MeanEvents)
			if p.Multiple > 1 && base > 0 {
				fmt.Fprintf(&b, "(-%.0f%%)", 100*(1-float64(p.Windows)/float64(base)))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ShardCSV renders every run's shard report as CSV sections (empty
// string when no run has one).
func ShardCSV(runs []Run) string {
	any := false
	for i := range runs {
		if runs[i].Shards != nil {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	b.WriteString("run,shard,busy_windows,recorded_windows,total_windows,events,barrier_cost_ps\n")
	for i := range runs {
		s := runs[i].Shards
		if s == nil {
			continue
		}
		for _, u := range s.Shards {
			fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d\n",
				runs[i].Index, u.Shard, u.BusyWindows, s.Recorded, s.Windows, u.Events, u.BarrierCost)
		}
	}
	b.WriteString("\nrun,src,dst,posts,peak_depth\n")
	for i := range runs {
		s := runs[i].Shards
		if s == nil {
			continue
		}
		for _, mb := range s.Mailboxes {
			fmt.Fprintf(&b, "%d,%d,%d,%d,%d\n", runs[i].Index, mb.Src, mb.Dst, mb.Posts, mb.Peak)
		}
	}
	b.WriteString("\nrun,lookahead_multiple,windows,mean_events_per_window\n")
	for i := range runs {
		s := runs[i].Shards
		if s == nil {
			continue
		}
		for _, p := range s.Lookaheads {
			fmt.Fprintf(&b, "%d,%d,%d,%.2f\n", runs[i].Index, p.Multiple, p.Windows, p.MeanEvents)
		}
	}
	return b.String()
}

func sortedLabels(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// labelCounts renders "total (label=n label=n ...)" with labels sorted.
func labelCounts(total uint64, by map[string]uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", total)
	if len(by) > 0 {
		b.WriteString(" (")
		for i, l := range sortedLabels(by) {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%d", l, by[l])
		}
		b.WriteString(")")
	}
	return b.String()
}

func fmtSummary(name string, s LatencySummary) string {
	return fmt.Sprintf("  %-14s n=%-5d mean=%-10s p50=%-10s p90=%-10s p99=%-10s max=%s",
		name, s.Count, us(s.Mean), us(s.P50), us(s.P90), us(s.P99), us(s.Max))
}

func us(d sim.Duration) string { return fmt.Sprintf("%.1fus", d.Micros()) }

// Render formats the analysis as the analyzer report: per-op latency
// breakdown percentiles, per-run channel occupancy, the Gantt of the
// first run, and any protocol violations.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "logic analyzer report: %d run(s), %d op span(s), %d event(s)\n",
		len(r.Runs), len(r.Spans), r.Metrics.Events)
	b.WriteString("\nper-op latency breakdown (all runs):\n")
	b.WriteString(fmtSummary("latency", r.Components.Latency) + "\n")
	b.WriteString(fmtSummary("queue-wait", r.Components.QueueWait) + "\n")
	b.WriteString(fmtSummary("channel", r.Components.ChannelTime) + "\n")
	b.WriteString(fmtSummary("cell", r.Components.CellTime) + "\n")
	b.WriteString(fmtSummary("firmware", r.Components.Firmware) + "\n")

	b.WriteString("\nchannel occupancy per run:\n")
	for i := range r.Runs {
		run := &r.Runs[i]
		sw, hw := run.Metrics.SoftwareTime, run.Metrics.HardwareTime
		for _, ch := range run.Channels() {
			o := run.Timelines[ch].Occupancy()
			fmt.Fprintf(&b, "  run %-3d ch%-2d busy=%-10s idle=%-10s util=%-5.1f%% gaps=%-4d die-ovl=%-10s pipe-ovl=%-10s sw=%-10s hw=%s\n",
				run.Index, ch, us(o.Busy), us(o.Idle), 100*o.Utilization(),
				o.IdleGaps, us(o.DieOverlap), us(o.PipelineOverlap), us(sw), us(hw))
		}
		if run.Incomplete > 0 {
			fmt.Fprintf(&b, "  run %-3d %d incomplete span(s) (truncated trace?)\n", run.Index, run.Incomplete)
		}
	}

	// Fault-injection traces carry recovery forensics; quiet traces
	// render exactly as before (the section is absent, keeping the
	// checked-in goldens stable).
	if r.Metrics.Faults > 0 || r.Metrics.Recoveries > 0 {
		b.WriteString("\nfault injection & recovery (all runs):\n")
		b.WriteString("  faults:     " + labelCounts(r.Metrics.Faults, r.Metrics.FaultsByLabel) + "\n")
		b.WriteString("  recoveries: " + labelCounts(r.Metrics.Recoveries, r.Metrics.RecoveriesByLabel) + "\n")
		for i := range r.Runs {
			run := &r.Runs[i]
			if run.Metrics.Faults == 0 && run.Metrics.Recoveries == 0 {
				continue
			}
			keys := make([]obs.ChipKey, 0, len(run.Metrics.Chips))
			for k := range run.Metrics.Chips {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool {
				if keys[a].Channel != keys[b].Channel {
					return keys[a].Channel < keys[b].Channel
				}
				return keys[a].Chip < keys[b].Chip
			})
			for _, k := range keys {
				c := run.Metrics.Chips[k]
				if c.Faults == 0 && c.Recoveries == 0 {
					continue
				}
				fmt.Fprintf(&b, "  run %-3d ch%d chip%d: faults=%d recoveries=%d\n",
					run.Index, k.Channel, k.Chip, c.Faults, c.Recoveries)
			}
		}
	}

	// Traces from map-cache-enabled runs carry translation-paging
	// events; cache-disabled traces render exactly as before (section
	// absent, goldens stable).
	if r.Metrics.MapCacheActive() {
		b.WriteString("\nftl map cache (all runs):\n")
		fmt.Fprintf(&b, "  translations: hits=%d misses=%d hit-rate=%.1f%%\n",
			r.Metrics.MapHits, r.Metrics.MapMisses, 100*r.Metrics.MapHitRate())
		fmt.Fprintf(&b, "  paging:       evictions=%d flushes=%d\n",
			r.Metrics.MapEvictions, r.Metrics.MapFlushes)
		for i := range r.Runs {
			m := &r.Runs[i].Metrics
			if !m.MapCacheActive() {
				continue
			}
			fmt.Fprintf(&b, "  run %-3d hits=%-8d misses=%-8d hit-rate=%-5.1f%% evictions=%-6d flushes=%d\n",
				r.Runs[i].Index, m.MapHits, m.MapMisses, 100*m.MapHitRate(),
				m.MapEvictions, m.MapFlushes)
		}
	}

	// Sharded traces carry flight-recorder events; unsharded traces
	// render exactly as before (section absent, goldens stable).
	for i := range r.Runs {
		run := &r.Runs[i]
		if run.Shards != nil {
			b.WriteString(renderShardReport(run.Index, run.Shards))
		}
	}

	// Host-frontend traces carry per-command tenant events; traces
	// without them render exactly as before (section absent, goldens
	// stable).
	for i := range r.Runs {
		run := &r.Runs[i]
		if run.Tenants != nil {
			b.WriteString(renderTenantReport(run.Index, run.Tenants))
		}
	}

	if len(r.Runs) > 0 {
		first := &r.Runs[0]
		for _, ch := range first.Channels() {
			fmt.Fprintf(&b, "\nrun 0 ch%d timeline:\n%s", ch, first.Timelines[ch].Gantt(72))
		}
	}

	if len(r.Violations) == 0 {
		b.WriteString("\nprotocol violations: none\n")
	} else {
		fmt.Fprintf(&b, "\nprotocol violations: %d\n", len(r.Violations))
		for _, v := range r.Violations {
			b.WriteString("  " + v.String() + "\n")
		}
	}
	return b.String()
}
