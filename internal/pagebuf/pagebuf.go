// Package pagebuf is the simulator's page-buffer arena: a sync.Pool of
// fixed-size page payloads shared by every rig in the process, so the
// steady-state data path — NAND cell array → page register → channel →
// DRAM — recycles a bounded working set instead of allocating a fresh
// full page per READ/PROGRAM.
//
// Ownership discipline
//
// A *Buf is borrowed from a Pool with Get and owned exclusively by the
// borrower until Release. The rules, enforced under `-tags bufdebug`:
//
//   - Bytes() may only be called between Get and Release. After Release
//     the handle is dead; keeping the raw []byte across a Release is an
//     aliasing bug (the next Get reuses the storage).
//   - Release must be called exactly once per Get. Double release
//     panics under bufdebug.
//   - Buffers come back from Get with undefined contents: the borrower
//     must overwrite every byte it will later read (full-page copies in
//     the LUN do; partial writers must clear the tail themselves).
//
// The normal build compiles the checks away: Get/Bytes/Release are a
// sync.Pool hit, a field load, and a sync.Pool put. The bufdebug build
// poisons released payloads with PoisonByte and panics on
// use-after-release and double-release, so aliasing shows up as loud
// 0xDB patterns (or an immediate panic) instead of silent cross-buffer
// corruption.
package pagebuf

import (
	"fmt"
	"sync"
)

// Buf is one borrowed page buffer. Handles are pooled along with their
// payloads; never retain one across Release.
type Buf struct {
	data []byte
	pool *Pool
	dbg  debugState
}

// Bytes returns the payload. The slice is only valid until Release.
func (b *Buf) Bytes() []byte {
	b.checkLive("Bytes")
	return b.data
}

// Len reports the payload size (the pool's buffer size).
func (b *Buf) Len() int { return len(b.data) }

// Release returns the buffer to its pool. The handle and any slice
// obtained from Bytes are dead afterwards.
func (b *Buf) Release() {
	b.checkLive("Release")
	b.onRelease()
	b.pool.p.Put(b)
}

// Pool hands out page buffers of one fixed size.
type Pool struct {
	size int
	p    sync.Pool
}

// NewPool builds a standalone pool of size-byte buffers. Most callers
// want For, which shares pools process-wide by size.
func NewPool(size int) *Pool {
	if size <= 0 {
		panic(fmt.Sprintf("pagebuf: non-positive buffer size %d", size))
	}
	pl := &Pool{size: size}
	pl.p.New = func() interface{} {
		return &Buf{data: make([]byte, size), pool: pl}
	}
	return pl
}

// Size reports the pool's buffer size in bytes.
func (p *Pool) Size() int { return p.size }

// Get borrows a buffer. Contents are undefined; the borrower owns it
// until Release.
func (p *Pool) Get() *Buf {
	b := p.p.Get().(*Buf)
	b.onGet()
	return b
}

// registry shares one Pool per buffer size across the process, so
// concurrently running rigs with the same geometry feed one arena (and
// the bufdebug build can catch cross-rig aliasing).
var (
	regMu sync.Mutex
	reg   = map[int]*Pool{}
)

// For returns the process-wide shared pool for size-byte buffers.
func For(size int) *Pool {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := reg[size]; ok {
		return p
	}
	p := NewPool(size)
	reg[size] = p
	return p
}
