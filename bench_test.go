// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper (regenerate everything with
// `go test -bench=. -benchmem`), plus ablation benches for the design
// choices DESIGN.md calls out. Bandwidth results are attached as custom
// `MB/s` metrics; `cmd/babolbench` prints the same data as tables.
package repro

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/ftl"
	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// benchOpt keeps per-iteration work small while preserving shapes. The
// zero Parallel fans each sweep's rigs out across the CPUs; the
// serial-vs-parallel comparison lives in BenchmarkFig10Sweep.
func benchOpt() exp.Options {
	return exp.Options{Ops: 60, WaysList: []int{2, 8}, Blocks: 16}
}

// BenchmarkTable1Presets regenerates Table I (flash memory parameters).
func BenchmarkTable1Presets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.RenderTable1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2LoC regenerates Table II (lines of code per operation).
func BenchmarkTable2LoC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable3Area regenerates Table III (FPGA resources).
func BenchmarkTable3Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(exp.Table3()) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig10ReadThroughput regenerates the Figure 10 sweep (reduced
// LUN list per iteration) and reports the headline corner: Hynix,
// 200 MT/s, 8 LUNs, RTOS at 1 GHz.
func BenchmarkFig10ReadThroughput(b *testing.B) {
	var headline float64
	for i := 0; i < b.N; i++ {
		pts, err := exp.Fig10(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Package == "Hynix" && p.RateMT == 200 && p.LUNs == 8 &&
				p.Controller == ssd.CtrlBabolRTOS && p.CPUMHz == 1000 {
				headline = p.MBps
			}
		}
	}
	b.ReportMetric(headline, "MB/s")
}

// BenchmarkFig11PollPeriod regenerates the Figure 11 polling analysis
// and reports the coroutine environment's poll period in microseconds
// (the paper measures ≈30 µs).
func BenchmarkFig11PollPeriod(b *testing.B) {
	var coroPeriod float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig11(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Controller == ssd.CtrlBabolCoro {
				coroPeriod = r.MeanPollPeriod.Micros()
			}
		}
	}
	b.ReportMetric(coroPeriod, "us/poll")
}

// BenchmarkFig12EndToEnd regenerates the Figure 12 end-to-end comparison
// at 8 ways and reports BABOL-RTOS's bandwidth delta versus the hardware
// baseline in percent (paper: −2 % sequential).
func BenchmarkFig12EndToEnd(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		opt := benchOpt()
		opt.Ops = 120
		opt.WaysList = []int{8}
		pts, err := exp.Fig12(opt)
		if err != nil {
			b.Fatal(err)
		}
		var hw, rtos float64
		for _, p := range pts {
			if p.Pattern == hic.Sequential && p.Ways == 8 {
				switch p.Controller {
				case ssd.CtrlHW:
					hw = p.MBps
				case ssd.CtrlBabolRTOS:
					rtos = p.MBps
				}
			}
		}
		delta = (rtos - hw) / hw * 100
	}
	b.ReportMetric(delta, "%vsHW")
}

// --------------------------------------------------------- ablations --

// benchParams is the shrunken package used by the ablations.
func benchParams() nand.Params {
	p := nand.Hynix()
	p.Geometry.BlocksPerLUN = 16
	return p
}

// readBandwidth runs a read workload on a fresh rig and returns MB/s.
func readBandwidth(b *testing.B, cfg ssd.BuildConfig, ops, qd int) float64 {
	b.Helper()
	rig, err := ssd.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	working := 32 * cfg.Ways
	if err := rig.SSD.Preload(working); err != nil {
		b.Fatal(err)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindRead,
		NumOps: ops, QueueDepth: qd, LogicalPages: working,
	})
	if err != nil {
		b.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 {
		b.Fatalf("%d ops failed", res.Failed)
	}
	return res.BandwidthMBps(cfg.Params.Geometry.PageBytes)
}

// BenchmarkAblationTxnScheduler compares BABOL's transaction-scheduler
// policies at 4 ways — the design choice §V leaves to the SSD Architect.
// The policies are enumerated as an ordered job table (a map would give
// the sub-benchmarks a shuffled order run to run).
func BenchmarkAblationTxnScheduler(b *testing.B) {
	tm := onfi.DefaultTiming()
	bus := onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}
	jobs := []struct {
		name string
		mk   func() sched.TxnQueue
	}{
		{"issue-first", sched.NewTxnIssueFirst},
		{"round-robin", sched.NewTxnRoundRobin},
		{"fifo", sched.NewTxnFIFO},
		{"shortest-first", func() sched.TxnQueue { return sched.NewTxnShortestFirst(tm, bus) }},
	}
	for _, j := range jobs {
		j := j
		b.Run(j.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = readBandwidth(b, ssd.BuildConfig{
					Params: benchParams(), Ways: 4, RateMT: 200,
					Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000, TxnQueue: j.mk(),
				}, 80, 16)
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkAblationPollVsFixedWait compares status polling against the
// naive fixed-tR wait — the design choice behind Algorithm 2's poll loop
// (tR is variable, so a safe fixed wait must be pessimistic).
func BenchmarkAblationPollVsFixedWait(b *testing.B) {
	run := func(b *testing.B, fixed bool) sim.Duration {
		rig, err := ssd.Build(ssd.BuildConfig{
			Params: benchParams(), Ways: 1, RateMT: 200,
			Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer rig.Close()
		lun := rig.Channel.Chip(0)
		if err := lun.SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
			b.Fatal(err)
		}
		op := ops.ReadPage(onfi.Addr{}, 0, lun.Params().Geometry.PageBytes)
		if fixed {
			// A safe fixed wait must cover worst-case tR (nominal plus
			// the jitter bound).
			worst := lun.Params().TR + lun.Params().TR/10
			op = ops.ReadPageFixedWait(onfi.Addr{}, 0, lun.Params().Geometry.PageBytes, worst)
		}
		var end sim.Time
		rig.Babol.Start(core.OpRequest{
			Func: op, Chip: 0,
			Done: func(err error) {
				if err != nil {
					b.Fatal(err)
				}
				end = rig.Kernel.Now()
			},
		})
		rig.Kernel.Run()
		return sim.Duration(end)
	}
	for _, j := range []struct {
		name  string
		fixed bool
	}{{"poll", false}, {"fixed-wait", true}} {
		j := j
		b.Run(j.name, func(b *testing.B) {
			var d sim.Duration
			for i := 0; i < b.N; i++ {
				d = run(b, j.fixed)
			}
			b.ReportMetric(d.Micros(), "us/read")
		})
	}
}

// BenchmarkAblationECC measures the end-to-end cost of running the
// SEC-DED datapath on every read.
func BenchmarkAblationECC(b *testing.B) {
	for _, j := range []struct {
		name string
		ecc  bool
	}{{"off", false}, {"on", true}} {
		ecc := j.ecc
		b.Run(j.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = readBandwidth(b, ssd.BuildConfig{
					Params: benchParams(), Ways: 4, RateMT: 200,
					Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000, WithECC: ecc,
				}, 80, 16)
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkAblationCPUFrequency sweeps the firmware clock for the
// coroutine environment — the paper's "what processor does each software
// environment need" question, isolated.
func BenchmarkAblationCPUFrequency(b *testing.B) {
	for _, mhz := range []int{150, 400, 1000} {
		mhz := mhz
		b.Run(fmt.Sprintf("coro-%dMHz", mhz), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = readBandwidth(b, ssd.BuildConfig{
					Params: benchParams(), Ways: 8, RateMT: 200,
					Controller: ssd.CtrlBabolCoro, CPUMHz: mhz,
				}, 80, 16)
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkAblationCopybackGC measures garbage collection with NAND
// copyback (page moves stay inside the LUN) against read-out/write-in
// relocation, under a steady overwrite load.
func BenchmarkAblationCopybackGC(b *testing.B) {
	run := func(b *testing.B, copyback bool) float64 {
		p := benchParams()
		p.Geometry.BlocksPerLUN = 12
		// Scaled-down array times keep the bench quick; the ablation
		// compares channel traffic, which scaling preserves.
		p.TR = 20 * sim.Microsecond
		p.TPROG = 50 * sim.Microsecond
		p.TBERS = 200 * sim.Microsecond
		rig, err := ssd.Build(ssd.BuildConfig{
			Params: p, Ways: 2, RateMT: 200,
			Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000, UseCopyback: copyback,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer rig.Close()
		logical := rig.FTL.LogicalPages()
		res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
			Pattern: hic.Sequential, Kind: hic.KindWrite,
			NumOps: logical * 3, QueueDepth: 4, LogicalPages: logical,
		})
		if err != nil {
			b.Fatal(err)
		}
		rig.Kernel.Run()
		if res.Failed != 0 {
			b.Fatalf("%d writes failed", res.Failed)
		}
		return res.BandwidthMBps(p.Geometry.PageBytes)
	}
	for _, j := range []struct {
		name     string
		copyback bool
	}{{"read-program", false}, {"copyback", true}} {
		j := j
		b.Run(j.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = run(b, j.copyback)
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkAblationEraseSuspend measures read p99 latency under write+GC
// pressure with and without read-priority erase suspension — the
// tail-latency optimization of the erase-suspend literature the paper
// cites, expressed as one software operation.
func BenchmarkAblationEraseSuspend(b *testing.B) {
	run := func(b *testing.B, suspend bool) sim.Duration {
		p := benchParams()
		// A small, fast geometry keeps GC erases frequent enough that
		// the 80 sampled reads actually collide with them.
		p.Geometry = onfi.Geometry{Planes: 1, BlocksPerLUN: 16, PagesPerBlk: 4, PageBytes: 512, SpareBytes: 64}
		p.JitterPct = 0
		p.TR = 20 * sim.Microsecond
		p.TPROG = 50 * sim.Microsecond
		p.TBERS = 3 * sim.Millisecond
		rig, err := ssd.Build(ssd.BuildConfig{
			Params: p, Ways: 1, RateMT: 200,
			Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000, SuspendReads: suspend,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer rig.Close()
		logical := rig.FTL.LogicalPages()
		if err := rig.SSD.Preload(logical); err != nil {
			b.Fatal(err)
		}
		writes := 0
		var writeNext func()
		writeNext = func() {
			if writes >= logical*3 {
				return
			}
			writes++
			rig.SSD.Submit(hic.Command{Kind: hic.KindWrite, LPN: writes % logical, Done: func(err error) {
				if err != nil {
					b.Fatal(err)
				}
				writeNext()
			}})
		}
		writeNext()
		res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
			Pattern: hic.Random, Kind: hic.KindRead,
			NumOps: 80, QueueDepth: 1, LogicalPages: logical, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		rig.Kernel.Run()
		return res.LatencyPercentile(99)
	}
	for _, j := range []struct {
		name    string
		suspend bool
	}{{"baseline", false}, {"suspend", true}} {
		j := j
		b.Run(j.name, func(b *testing.B) {
			var p99 sim.Duration
			for i := 0; i < b.N; i++ {
				p99 = run(b, j.suspend)
			}
			b.ReportMetric(p99.Micros(), "p99-us")
		})
	}
}

// BenchmarkAblationMultiPlane compares multi-plane reads (one shared tR
// for both planes) against serial single-plane reads on one LUN.
func BenchmarkAblationMultiPlane(b *testing.B) {
	run := func(b *testing.B, multi bool) sim.Duration {
		p := benchParams()
		rig, err := ssd.Build(ssd.BuildConfig{
			Params: p, Ways: 1, RateMT: 200,
			Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer rig.Close()
		lun := rig.Channel.Chip(0)
		rows := []onfi.RowAddr{{Block: 0, Page: 0}, {Block: 1, Page: 0}} // planes 0 and 1
		for _, r := range rows {
			if err := lun.SeedPage(r, []byte{1}); err != nil {
				b.Fatal(err)
			}
		}
		n := p.Geometry.PageBytes
		var end sim.Time
		if multi {
			rig.Babol.Start(core.OpRequest{
				Func: ops.MPReadPages(rows, 0, n), Chip: 0,
				Done: func(err error) {
					if err != nil {
						b.Fatal(err)
					}
					end = rig.Kernel.Now()
				},
			})
		} else {
			rig.Babol.Start(core.OpRequest{
				Func: ops.ReadPage(onfi.Addr{Row: rows[0]}, 0, n), Chip: 0,
				Done: func(err error) {
					if err != nil {
						b.Fatal(err)
					}
					rig.Babol.Start(core.OpRequest{
						Func: ops.ReadPage(onfi.Addr{Row: rows[1]}, n, n), Chip: 0,
						Done: func(err error) {
							if err != nil {
								b.Fatal(err)
							}
							end = rig.Kernel.Now()
						},
					})
				},
			})
		}
		rig.Kernel.Run()
		return sim.Duration(end)
	}
	for _, j := range []struct {
		name  string
		multi bool
	}{{"single-plane", false}, {"multi-plane", true}} {
		j := j
		b.Run(j.name, func(b *testing.B) {
			var d sim.Duration
			for i := 0; i < b.N; i++ {
				d = run(b, j.multi)
			}
			b.ReportMetric(d.Micros(), "us/2pages")
		})
	}
}

// ------------------------------------------------------ FTL sharding --

// benchFTL builds an 8-chip FTL at 4 KiB pages: 7936 logical pages in
// 16 translation groups, so MapShards 8 yields a real split (two groups
// per shard) rather than a degenerate one.
func benchFTL(b *testing.B, shards int) *ftl.FTL {
	b.Helper()
	f, err := ftl.NewWithConfig(ftl.Config{
		Geometry: onfi.Geometry{
			Planes: 1, BlocksPerLUN: 64, PagesPerBlk: 16,
			PageBytes: 4096, SpareBytes: 128,
		},
		Chips: 8, ReservedBlocks: 2, MapShards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// ftlShardCases is the sharding ablation axis: one global lock versus
// the kernel-shaped split.
var ftlShardCases = []struct {
	name   string
	shards int
}{{"flat", 1}, {"sharded-8", 8}}

// BenchmarkFTLLookup measures translation throughput on a fully mapped
// drive, serial and with 8 concurrent readers — ISSUE 9's headline
// microbenchmark. Sharding converts the serial RWMutex into eight
// independent ones; on a multi-core host the parallel variant is where
// the ≥4× win shows up (on a single-core runner the goroutines
// timeslice, so the parallel numbers measure contention overhead, not
// scaling — BENCH_9.json carries the caveat).
func BenchmarkFTLLookup(b *testing.B) {
	for _, c := range ftlShardCases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			f := benchFTL(b, c.shards)
			logical := f.LogicalPages()
			for lpn := 0; lpn < logical; lpn++ {
				if _, err := f.AllocateWrite(lpn); err != nil {
					b.Fatal(err)
				}
			}
			b.Run("serial", func(b *testing.B) {
				b.ReportAllocs()
				lpn := 0
				for i := 0; i < b.N; i++ {
					if _, ok := f.Lookup(lpn); !ok {
						b.Fatal("unmapped")
					}
					// Prime-stride so consecutive lookups hop shards.
					lpn = (lpn + 4099) % logical
				}
			})
			b.Run("parallel-8", func(b *testing.B) {
				b.ReportAllocs()
				b.SetParallelism(8)
				var next atomic.Int64
				b.RunParallel(func(pb *testing.PB) {
					// Distinct per-goroutine start offsets keep readers
					// spread across shards instead of convoying.
					lpn := int(next.Add(977)) % logical
					for pb.Next() {
						if _, ok := f.Lookup(lpn); !ok {
							b.Fatal("unmapped")
						}
						lpn = (lpn + 4099) % logical
					}
				})
			})
		})
	}
}

// allocateWithRelief is the benchmark's write path: overwrite lpn,
// running a serialized GC sweep when the drive is out of space. The
// mutex admits one collector at a time; concurrent overwrites can only
// shrink a sealed victim's live set, so the erase stays safe.
func allocateWithRelief(b *testing.B, f *ftl.FTL, gcMu *sync.Mutex, lpn int) {
	if _, err := f.AllocateWrite(lpn); err == nil {
		return
	}
	gcMu.Lock()
	defer gcMu.Unlock()
	// Concurrent writers keep consuming space while this sweep runs, so
	// sweep-then-retry until the allocation lands (bounded: a stuck
	// sweep means a bug, not pressure).
	for attempt := 0; attempt < 100; attempt++ {
		if _, err := f.AllocateWrite(lpn); err == nil {
			return
		}
		for chip := 0; chip < f.Chips(); chip++ {
			victim, live, ok := f.GCCandidate(chip)
			if !ok {
				continue
			}
			cleared := true
			for _, l := range live {
				if loc, lok := f.Lookup(l); !lok || loc.Chip != chip || loc.Row.Block != victim {
					continue // overwritten since the candidate scan
				}
				if _, err := f.RelocateForGC(l); err != nil {
					cleared = false
					break
				}
			}
			if cleared {
				f.OnErased(chip, victim)
			}
		}
	}
	b.Fatal("ftl: GC relief made no progress after 100 sweeps")
}

// BenchmarkFTLAllocate measures steady-state overwrite allocation —
// map update, old-page invalidation, GC relief when the drive fills —
// serial and with 8 concurrent writers. Writers overwrite half the
// logical space so every allocation also invalidates, which is the
// contended path: it takes the LPN's shard lock plus two chip locks.
func BenchmarkFTLAllocate(b *testing.B) {
	for _, c := range ftlShardCases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			b.Run("serial", func(b *testing.B) {
				f := benchFTL(b, c.shards)
				var gcMu sync.Mutex
				working := f.LogicalPages() / 2
				b.ResetTimer()
				lpn := 0
				for i := 0; i < b.N; i++ {
					allocateWithRelief(b, f, &gcMu, lpn)
					lpn = (lpn + 4099) % working
				}
			})
			b.Run("parallel-8", func(b *testing.B) {
				f := benchFTL(b, c.shards)
				var gcMu sync.Mutex
				working := f.LogicalPages() / 2
				b.SetParallelism(8)
				b.ResetTimer()
				var next atomic.Int64
				b.RunParallel(func(pb *testing.PB) {
					lpn := int(next.Add(977)) % working
					for pb.Next() {
						allocateWithRelief(b, f, &gcMu, lpn)
						lpn = (lpn + 4099) % working
					}
				})
			})
		})
	}
}

// BenchmarkFig10Sweep runs the Figure 10 sweep serially and with the
// worker pool — the wall-clock case for the parallel runner. Results
// are byte-identical either way (TestParallelSweepDeterminism); only
// the elapsed time differs.
func BenchmarkFig10Sweep(b *testing.B) {
	for _, j := range []struct {
		name     string
		parallel int
	}{{"serial", 1}, {"parallel", 0}} {
		j := j
		b.Run(j.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := benchOpt()
				opt.Parallel = j.parallel
				if _, err := exp.Fig10(opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// simulationSpeed drives one read workload on a fresh rig and returns
// the virtual time it covered plus, on sharded rigs, the cluster's
// window and event counts from the armed shard telemetry (zero on the
// legacy path, which has no windows). Rig construction and preload run
// with the timer stopped so the metric measures the discrete-event
// engine, not DRAM zeroing. shards 0 is the legacy single-kernel path;
// shards ≥ 1 runs the conservative time-window cluster (windowed
// timestamps include the modeled HostHop, so virtual spans differ
// slightly from the legacy run — the RTF ratio stays comparable).
// Arming the telemetry is free by contract: byte-identical results and
// ~0 allocs/event (TestShardedTelemetryInvariance,
// TestAllocGateShardTelemetry), so the bench measures the same engine
// users run.
func simulationSpeed(b *testing.B, channels, ways, shards int, noPool bool) (virtual sim.Duration, windows, events uint64) {
	b.Helper()
	b.StopTimer()
	rig, err := ssd.Build(ssd.BuildConfig{
		Params: benchParams(), Channels: channels, Ways: ways, RateMT: 200,
		Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000, NoCoroPool: noPool,
		Shards: shards, ShardTelemetry: shards >= 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Workload scales with the chip count so every LUN on every channel
	// stays busy: the full-drive configuration is 64× the single-channel
	// one in chips AND in operations.
	working := 64 * channels
	if err := rig.SSD.Preload(working); err != nil {
		b.Fatal(err)
	}
	b.StartTimer()
	if _, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindRead,
		NumOps: 200 * channels, QueueDepth: 16 * channels, LogicalPages: working,
	}); err != nil {
		b.Fatal(err)
	}
	rig.Run()
	virtual = sim.Duration(rig.Now())
	if rig.Telemetry != nil {
		snap := rig.Telemetry.Snapshot()
		windows = snap.Windows
		for _, s := range snap.Shards {
			events += s.Events
		}
	}
	b.StopTimer()
	rig.Close()
	b.StartTimer()
	return virtual, windows, events
}

// BenchmarkSimulationSpeed reports how much virtual time one wall-second
// of simulation covers — the real-time factor, the practicality metric
// for using this library interactively (virtual-s/wall-s > 1 means the
// simulation outruns the hardware it models). Two scales:
//
//   - 1ch-8way: the historical configuration (BENCH_4.json's 7.3).
//   - full-drive-8ch-8way: 8 channels × 8 LUNs, the paper's full-drive
//     shape, with a proportionally scaled workload. This is the number
//     EXPERIMENTS.md's "Real-time factor" section tracks and the CI
//     floor in BENCH_6.json gates.
//
// Run with -benchmem: allocs/op is the per-workload allocation budget
// that the kernel's slot-recycling event queue and the controller's
// coroutine pool together keep flat.
// The sharded sub-benches measure the conservative time-window cluster
// at the full-drive shape: shards1 is the windowed single-kernel
// ablation (protocol cost with zero parallelism), sharded spreads the
// 8 channels over 8 shard kernels plus the host shard. On a single-core
// runner the windowed protocol is pure overhead (one barrier per
// microsecond of virtual time); the shard win needs real CPUs.
func BenchmarkSimulationSpeed(b *testing.B) {
	for _, j := range []struct {
		name           string
		channels, ways int
		shards         int
		noPool         bool
	}{
		{"1ch-8way", 1, 8, 0, false},
		{"1ch-8way-unpooled", 1, 8, 0, true}, // the coro-pool ablation
		{"full-drive-8ch-8way", 8, 8, 0, false},
		{"full-drive-8ch-8way-shards1", 8, 8, 1, false},
		{"full-drive-8ch-8way-sharded", 8, 8, 9, false},
	} {
		j := j
		b.Run(j.name, func(b *testing.B) {
			b.ReportAllocs()
			var virtualPerIter sim.Duration
			var windows, events uint64
			for i := 0; i < b.N; i++ {
				v, w, e := simulationSpeed(b, j.channels, j.ways, j.shards, j.noPool)
				virtualPerIter = v
				windows += w
				events += e
			}
			b.ReportMetric(virtualPerIter.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "virtual-s/wall-s")
			if windows > 0 {
				// Windowed-protocol self-report from the armed shard
				// telemetry: how many barrier windows the run paid for
				// and how much event work each one bought.
				b.ReportMetric(float64(windows)/b.Elapsed().Seconds(), "windows/s")
				b.ReportMetric(float64(events)/float64(windows), "ev/window")
			}
		})
	}
}
