package bus

import (
	"bytes"
	"testing"

	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/sim"
	"repro/internal/wave"
)

func smallParams() nand.Params {
	p := nand.Hynix()
	p.Geometry = onfi.Geometry{Planes: 1, BlocksPerLUN: 8, PagesPerBlk: 4, PageBytes: 256, SpareBytes: 16}
	p.JitterPct = 0
	return p
}

func newTestChannel(t *testing.T, chips int) (*sim.Kernel, *Channel) {
	t.Helper()
	k := sim.NewKernel()
	ch, err := New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}, onfi.DefaultTiming(), wave.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chips; i++ {
		l, err := nand.NewLUN(smallParams())
		if err != nil {
			t.Fatal(err)
		}
		ch.Attach(l)
	}
	return k, ch
}

func TestMaskHelpers(t *testing.T) {
	m := Mask(3)
	if !m.Has(3) || m.Has(2) {
		t.Error("Mask/Has wrong")
	}
	if (Mask(0) | Mask(5)).Count() != 2 {
		t.Error("Count wrong")
	}
	if ChipMask(0).Count() != 0 {
		t.Error("empty count wrong")
	}
	if firstChip(0) != -1 {
		t.Error("firstChip of empty mask should be -1")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	k := sim.NewKernel()
	if _, err := New(k, onfi.BusConfig{Mode: onfi.SDR, RateMT: 500}, onfi.DefaultTiming(), nil); err == nil {
		t.Error("bad bus config accepted")
	}
}

func TestLatchOccupiesChannel(t *testing.T) {
	k, ch := newTestChannel(t, 1)
	end, err := ch.Latch(Mask(0), []onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ch.Timing().LatchSegment(1)
	if end != sim.Time(want) {
		t.Errorf("latch end = %v, want %v", end, want)
	}
	if ch.Free() {
		t.Error("channel free immediately after latch")
	}
	k.RunUntil(end)
	if !ch.Free() {
		t.Error("channel not free after latch end")
	}
}

func TestChainedSegmentsAppend(t *testing.T) {
	_, ch := newTestChannel(t, 1)
	end1, err := ch.Latch(Mask(0), []onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Chained data out (without advancing the kernel) starts at end1.
	data, end2, err := ch.DataOut(Mask(0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1 {
		t.Fatal("no status byte")
	}
	if end2 <= end1 {
		t.Error("chained segment did not extend the schedule")
	}
	segs := ch.Recorder().ChannelSegments()
	if len(segs) != 2 {
		t.Fatalf("captured %d segments", len(segs))
	}
	if segs[1].Start < segs[0].End {
		t.Error("chained segments overlap")
	}
}

func TestStatusIdiom(t *testing.T) {
	_, ch := newTestChannel(t, 1)
	s, end, err := ch.Status(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s&onfi.StatusRDY == 0 {
		t.Errorf("idle LUN status %08b not ready", s)
	}
	if end == 0 {
		t.Error("status took no time")
	}
	// The recorded trace must satisfy the ONFI checker.
	chk := wave.NewChecker(ch.Timing(), ch.Config())
	if vs := chk.Check(ch.Recorder().Segments()); len(vs) != 0 {
		t.Errorf("status waveform violations: %v", vs)
	}
}

func TestFullReadWaveform(t *testing.T) {
	k, ch := newTestChannel(t, 1)
	lun := ch.Chip(0)
	want := bytes.Repeat([]byte{0xC3}, 256)
	if err := lun.SeedPage(onfi.RowAddr{Block: 1, Page: 2}, want); err != nil {
		t.Fatal(err)
	}

	// READ.1 + 5 addr + READ.2
	g := lun.Params().Geometry
	var latches []onfi.Latch
	latches = append(latches, onfi.CmdLatch(onfi.CmdRead1))
	latches = append(latches, g.AddrLatches(onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 2}})...)
	latches = append(latches, onfi.CmdLatch(onfi.CmdRead2))
	end, err := ch.Latch(Mask(0), latches, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Wait out tR.
	k.RunUntil(end.Add(lun.Params().TR))
	data, _, err := ch.DataOut(Mask(0), 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Error("read data mismatch")
	}
	chk := wave.NewChecker(ch.Timing(), ch.Config())
	if vs := chk.Check(ch.Recorder().Segments()); len(vs) != 0 {
		t.Errorf("read waveform violations: %v", vs)
	}
	st := ch.Stats()
	if st.LatchBursts != 1 || st.DataOutBursts != 1 || st.BytesOut != 256 {
		t.Errorf("stats: %+v", st)
	}
}

func TestGangLatch(t *testing.T) {
	k, ch := newTestChannel(t, 4)
	// Gang an ERASE to chips 1 and 3.
	g := ch.Chip(0).Params().Geometry
	var latches []onfi.Latch
	latches = append(latches, onfi.CmdLatch(onfi.CmdErase1))
	latches = append(latches, g.RowLatches(onfi.RowAddr{Block: 2})...)
	latches = append(latches, onfi.CmdLatch(onfi.CmdErase2))
	end, err := ch.Latch(Mask(1)|Mask(3), latches, 1)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(end.Add(ch.Chip(0).Params().TBERS * 2))
	if ch.Chip(1).EraseCount(2) != 1 || ch.Chip(3).EraseCount(2) != 1 {
		t.Error("gang erase did not reach both chips")
	}
	if ch.Chip(0).EraseCount(2) != 0 || ch.Chip(2).EraseCount(2) != 0 {
		t.Error("gang erase leaked to unselected chips")
	}
}

func TestGangDataIn(t *testing.T) {
	k, ch := newTestChannel(t, 2)
	g := ch.Chip(0).Params().Geometry
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 0, Page: 0}}
	var latches []onfi.Latch
	latches = append(latches, onfi.CmdLatch(onfi.CmdProgram1))
	latches = append(latches, g.AddrLatches(addr)...)
	if _, err := ch.Latch(Mask(0)|Mask(1), latches, 1); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x77}, 64)
	if _, err := ch.DataIn(Mask(0)|Mask(1), payload, 1); err != nil {
		t.Fatal(err)
	}
	end, err := ch.Latch(Mask(0)|Mask(1), []onfi.Latch{onfi.CmdLatch(onfi.CmdProgram2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(end.Add(ch.Chip(0).Params().TPROG * 2))
	for i := 0; i < 2; i++ {
		page, err := ch.Chip(i).PeekPage(addr.Row)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(page[:64], payload) {
			t.Errorf("chip %d missing replicated data", i)
		}
	}
}

func TestDataOutRejectsGang(t *testing.T) {
	_, ch := newTestChannel(t, 2)
	if _, _, err := ch.DataOut(Mask(0)|Mask(1), 4, 1); err == nil {
		t.Error("gang data out accepted")
	}
}

func TestBadMasksRejected(t *testing.T) {
	_, ch := newTestChannel(t, 1)
	if _, err := ch.Latch(0, []onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}, 1); err == nil {
		t.Error("empty mask accepted")
	}
	if _, err := ch.Latch(Mask(5), []onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}, 1); err == nil {
		t.Error("unattached chip accepted")
	}
	if _, err := ch.Latch(Mask(0), nil, 1); err == nil {
		t.Error("empty latch burst accepted")
	}
	if _, _, err := ch.DataOut(Mask(0), 0, 1); err == nil {
		t.Error("zero-byte data out accepted")
	}
	if _, err := ch.DataIn(Mask(0), nil, 1); err == nil {
		t.Error("empty data in accepted")
	}
	if _, err := ch.Pause(-1, 1); err == nil {
		t.Error("negative pause accepted")
	}
}

func TestPauseOccupies(t *testing.T) {
	k, ch := newTestChannel(t, 1)
	end, err := ch.Pause(150*sim.Nanosecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(150*sim.Nanosecond) {
		t.Errorf("pause end = %v", end)
	}
	if ch.Free() {
		t.Error("channel free during pause")
	}
	k.RunUntil(end)
	if !ch.Free() {
		t.Error("channel busy after pause")
	}
	if ch.Stats().Pauses != 1 {
		t.Error("pause not counted")
	}
}

func TestTransferRateMatters(t *testing.T) {
	k := sim.NewKernel()
	mk := func(rate int) sim.Duration {
		ch, err := New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: rate}, onfi.DefaultTiming(), nil)
		if err != nil {
			t.Fatal(err)
		}
		l, _ := nand.NewLUN(smallParams())
		ch.Attach(l)
		if _, err := ch.Latch(Mask(0), []onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}, 1); err != nil {
			t.Fatal(err)
		}
		start := ch.FreeAt()
		_, end, err := ch.DataOut(Mask(0), 256, 1)
		if err != nil {
			t.Fatal(err)
		}
		return end.Sub(start)
	}
	if fast, slow := mk(200), mk(100); slow <= fast {
		t.Errorf("100 MT/s (%v) should be slower than 200 MT/s (%v)", slow, fast)
	}
}

func TestSDRBootGate(t *testing.T) {
	// A package that powers up in SDR rejects fast data bursts until the
	// boot flow switches its timing mode (§IV-C).
	k := sim.NewKernel()
	ch, err := New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}, onfi.DefaultTiming(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams()
	p.BootInSDR = true
	l, err := nand.NewLUN(p)
	if err != nil {
		t.Fatal(err)
	}
	ch.Attach(l)
	if err := l.SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
		t.Fatal(err)
	}

	// Command/address latches are mode-agnostic: the READ issues fine.
	g := p.Geometry
	var latches []onfi.Latch
	latches = append(latches, onfi.CmdLatch(onfi.CmdRead1))
	latches = append(latches, g.AddrLatches(onfi.Addr{})...)
	latches = append(latches, onfi.CmdLatch(onfi.CmdRead2))
	end, err := ch.Latch(Mask(0), latches, 1)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(end.Add(p.TR))

	// But a 200 MT/s data burst against an SDR-mode part fails.
	if _, _, err := ch.DataOut(Mask(0), 4, 1); err == nil {
		t.Fatal("fast data out against SDR-mode chip accepted")
	}

	// Switch the timing mode via SET FEATURES (still only latches +
	// SDR-legal byte counts in a real flow; here we drive it directly).
	now := k.Now()
	if err := l.Latch(now, []onfi.Latch{
		onfi.CmdLatch(onfi.CmdSetFeatures), onfi.AddrLatch(byte(onfi.FeatTimingMode)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.DataIn(now, []byte{0x15, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if l.MaxRateMT() != onfi.NVDDR2.MaxRateMT() {
		t.Fatalf("MaxRateMT = %d after mode switch", l.MaxRateMT())
	}
	// Fast transfers now pass.
	if _, _, err := ch.DataOut(Mask(0), 4, 1); err != nil {
		t.Fatalf("post-switch data out: %v", err)
	}
}

func TestSetRate(t *testing.T) {
	k := sim.NewKernel()
	ch, err := New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 50}, onfi.DefaultTiming(), nil)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := nand.NewLUN(smallParams())
	ch.Attach(l)
	if err := ch.SetRate(9999); err == nil {
		t.Error("absurd rate accepted")
	}
	if ch.Config().RateMT != 50 {
		t.Error("failed SetRate mutated config")
	}
	slow := ch.Timing().DataSegment(ch.Config(), 256)
	if err := ch.SetRate(200); err != nil {
		t.Fatal(err)
	}
	fast := ch.Timing().DataSegment(ch.Config(), 256)
	if fast >= slow {
		t.Errorf("reclocking did not speed transfers: %v vs %v", fast, slow)
	}
}
