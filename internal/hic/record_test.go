package hic

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestReadJSONLValidation(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad json":       "{not json}\n",
		"bad op":         `{"at_ps":0,"queue":0,"op":"erase","lpn":1}` + "\n",
		"negative lpn":   `{"at_ps":0,"queue":0,"op":"read","lpn":-1}` + "\n",
		"negative queue": `{"at_ps":0,"queue":-1,"op":"read","lpn":1}` + "\n",
		"decreasing": `{"at_ps":10,"queue":0,"op":"read","lpn":1}` + "\n" +
			`{"at_ps":5,"queue":0,"op":"read","lpn":2}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := `{"at_ps":0,"queue":0,"tenant":"a","op":"read","lpn":1}` + "\n" +
		"\n" + // blank lines are skipped
		`{"at_ps":5,"queue":1,"op":"trim","lpn":2}` + "\n"
	entries, err := ReadJSONL(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Tenant != "a" || entries[1].Op != "trim" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestRecorderJSONLRoundTrip(t *testing.T) {
	rec := &Recorder{}
	rec.record(0, 0, Command{Kind: KindRead, LPN: 3, Tenant: "x"})
	rec.record(7, 1, Command{Kind: KindWrite, LPN: 4})
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	for i, want := range rec.Entries() {
		if entries[i] != want {
			t.Errorf("entry %d = %+v, want %+v", i, entries[i], want)
		}
	}
}

// TestReplayReproducesStream is the replay-exactness contract at unit
// scale: record a closed-loop tenant run, replay it open loop on a
// fresh identical rig, and both the re-recorded stream and the
// device-level submission stream match the original.
func TestReplayReproducesStream(t *testing.T) {
	run := func(entries []RecordEntry) (*Recorder, []int, *Result) {
		rec := &Recorder{}
		k, d, f := tenantRig(t, 2, rec)
		var res *Result
		if entries == nil {
			if _, err := RunTenants(k, f, []TenantSpec{
				{Name: "a", Queue: 0, QueueDepth: 3, NumOps: 25, SlicePages: 16, Seed: 1},
				{Name: "b", Queue: 1, QueueDepth: 2, NumOps: 25, Pattern: Sequential,
					Mix: Mix{ReadPct: 60, WritePct: 40}, SliceStart: 16, SlicePages: 16, Seed: 2},
			}, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			var err error
			res, err = Replay(k, f, entries, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		k.Run()
		return rec, d.seen, res
	}

	orig, origSeen, _ := run(nil)
	rerec, replaySeen, res := run(orig.Entries())

	if res.Done() != orig.Len() || res.Failed != 0 {
		t.Fatalf("replay result: %+v", res)
	}
	if len(rerec.Entries()) != len(orig.Entries()) {
		t.Fatalf("re-recorded %d entries, want %d", len(rerec.Entries()), len(orig.Entries()))
	}
	for i, want := range orig.Entries() {
		if rerec.Entries()[i] != want {
			t.Fatalf("re-recorded entry %d = %+v, want %+v", i, rerec.Entries()[i], want)
		}
	}
	if len(replaySeen) != len(origSeen) {
		t.Fatalf("device saw %d submissions on replay, %d originally", len(replaySeen), len(origSeen))
	}
	for i := range origSeen {
		if replaySeen[i] != origSeen[i] {
			t.Fatalf("device submission %d: replay LPN %d, original %d", i, replaySeen[i], origSeen[i])
		}
	}
}

func TestReplayRejectsBadTraces(t *testing.T) {
	k := sim.NewKernel()
	d := &fakeDrive{k: k, latency: sim.Microsecond}
	f, err := NewFrontend(k, d, FrontendConfig{Queues: []QueueConfig{{Depth: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(k, f, nil, nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Replay(k, f, []RecordEntry{{Queue: 3, Op: "read"}}, nil); err == nil {
		t.Error("out-of-range queue accepted")
	}
}
