// Package ssd assembles a complete solid-state drive around one channel:
// host interface (internal/hic) → FTL (internal/ftl) → a channel
// controller → NAND packages. The controller slot accepts either the
// BABOL software-defined controller or the hardware baseline, which is
// exactly the swap the paper performs on the Cosmos+ OpenSSD for its
// end-to-end evaluation (Fig. 12).
package ssd

import (
	"errors"
	"fmt"

	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/ftl"
	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/sim"
)

// ErrReadOnly reports a write rejected because the drive has degraded to
// read-only mode: spare blocks are exhausted (or every chip is offline)
// and no garbage is left to collect, so new data can never be placed.
var ErrReadOnly = errors.New("ssd: drive is in read-only degraded mode")

// ErrChipOffline reports an access to a chip removed from service after
// a failed RESET recovery.
var ErrChipOffline = errors.New("ssd: chip is offline")

// Backend is the page-level controller interface the SSD drives. Both
// the BABOL controller and the hardware baseline adapt to it.
type Backend interface {
	// ReadPage reads n bytes of the page at row on chip into DRAM.
	ReadPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error))
	// ProgramPage programs n bytes from DRAM into the page at row.
	ProgramPage(chip int, row onfi.RowAddr, dramAddr, n int, done func(error))
	// EraseBlock erases a block on chip.
	EraseBlock(chip, block int, done func(error))
	// Chip exposes the LUN for preloading.
	Chip(i int) *nand.LUN
}

// Config assembles an SSD.
type Config struct {
	Kernel  *sim.Kernel
	Backend Backend
	FTL     *ftl.FTL
	DRAM    *dram.Buffer
	// SlotBase/Slots carve the DRAM staging area: Slots in-flight
	// commands, each with one page-sized buffer at SlotBase.
	SlotBase int
	Slots    int
	// WithECC protects pages with the SEC-DED codec: parity is stored in
	// the spare area on program and verified/corrected on read.
	WithECC bool
	// UseCopyback relocates GC pages with NAND copyback (no channel data
	// transfer) when the backend supports it. Trades channel time for
	// skipping the ECC scrub on moved data.
	UseCopyback bool
	// SuspendReads lets host reads preempt in-flight GC erases via
	// erase suspension when the backend supports it — the tail-latency
	// optimization of [23], [54].
	SuspendReads bool
	// Tracer, when non-nil, receives SSD-level recovery decisions (chip
	// offlining, read-only degradation) as obs.KindRecovery events.
	Tracer obs.Tracer
}

// Stats counts SSD-level activity.
type Stats struct {
	HostReads      uint64
	HostWrites     uint64
	HostTrims      uint64
	GCCycles       uint64
	GCCopybacks    uint64
	UrgentReads    uint64 // reads served inside a suspended erase
	ECCCorrections uint64
	ECCFailures    uint64
	RecoveredOps   uint64 // operations reissued after an ONFI RESET revived a wedged chip
	OfflinedChips  uint64 // chips removed from service after recovery failed
	ReadOnly       bool   // drive has degraded to read-only mode
}

// SSD is one simulated drive.
type SSD struct {
	k       *sim.Kernel
	backend Backend
	ftl     *ftl.FTL
	mem     *dram.Buffer
	withECC bool
	// codec is the drive's ECC engine; its scratch is reused across every
	// encode/decode so the steady-state datapath allocates nothing. SSD
	// callbacks all run on the single-threaded simulation kernel, so one
	// codec per drive is safe.
	codec ecc.Codec

	pageBytes   int
	parityBytes int
	slotSize    int
	slotBase    int
	freeSlots   []int
	waiters     []func(int)
	// freeReads recycles host-read states (with their bound callbacks)
	// so the steady-state read path allocates nothing per command.
	freeReads []*readState

	// inflightPrograms counts in-flight PROGRAMs per LPN (host writes and
	// GC relocations): the FTL maps an LPN at allocation time, before the
	// program lands in the array, and the issue-first transaction
	// scheduler can reorder a later operation's latch burst ahead of the
	// program's data transfer. GC must therefore not relocate a page
	// whose program is still in flight — it would copy erased cells and
	// install the stale copy as the LPN's only mapping. programWaiters
	// holds the GC continuations parked on such pages.
	inflightPrograms map[int]int
	programWaiters   map[int][]func()

	// mapCache mirrors ftl.CacheEnabled(): when set, every host read
	// and write first acquires its LPN's translation page from the
	// FTL's map cache, and a miss charges a real NAND read of the map
	// page through the ordinary slot/backend path before the host op
	// proceeds. mapLoads coalesces concurrent misses on the same map
	// page: the first miss issues the flash read, later ones just park.
	mapCache bool
	mapLoads map[int][]mapWaiter

	gcRunning    map[int]bool
	useCopyback  bool
	suspendReads bool
	// offline marks chips removed from service after a failed RESET
	// recovery: the FTL stops allocating there and reads fail fast.
	offline map[int]bool
	// degraded latches read-only mode: writes fail with ErrReadOnly,
	// reads from surviving chips keep working.
	degraded bool
	tracer   obs.Tracer
	// eraseQueues holds the urgent-read sink for each chip with a
	// suspendable erase in flight: a same-domain urgentQueue on legacy
	// rigs, a cross-domain eraseRelay on sharded ones.
	eraseQueues map[int]urgentSink
	// stalledWrites wait for GC to free space.
	stalledWrites []hic.Command

	stats Stats
}

// New wires the SSD together.
func New(cfg Config) (*SSD, error) {
	if cfg.Kernel == nil || cfg.Backend == nil || cfg.FTL == nil || cfg.DRAM == nil {
		return nil, fmt.Errorf("ssd: Kernel, Backend, FTL, and DRAM are all required")
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("ssd: need at least one DRAM slot")
	}
	geo := cfg.FTL.Geometry()
	parity := 0
	if cfg.WithECC {
		parity = ecc.PageParityBytes(geo.PageBytes)
		if parity > geo.SpareBytes {
			return nil, fmt.Errorf("ssd: spare area %dB cannot hold %dB of ECC parity", geo.SpareBytes, parity)
		}
	}
	slotSize := geo.PageBytes + parity
	if _, err := cfg.DRAM.Window(cfg.SlotBase, cfg.Slots*slotSize); err != nil {
		return nil, fmt.Errorf("ssd: DRAM slots do not fit: %w", err)
	}
	s := &SSD{
		k:            cfg.Kernel,
		backend:      cfg.Backend,
		ftl:          cfg.FTL,
		mem:          cfg.DRAM,
		withECC:      cfg.WithECC,
		useCopyback:  cfg.UseCopyback,
		suspendReads: cfg.SuspendReads,
		eraseQueues:  make(map[int]urgentSink),
		pageBytes:    geo.PageBytes,
		parityBytes:  parity,
		slotSize:     slotSize,
		slotBase:     cfg.SlotBase,
		gcRunning:    make(map[int]bool),
		offline:      make(map[int]bool),
		tracer:       cfg.Tracer,

		inflightPrograms: make(map[int]int),
		programWaiters:   make(map[int][]func()),
	}
	if cfg.FTL.CacheEnabled() {
		s.mapCache = true
		s.mapLoads = make(map[int][]mapWaiter)
	}
	for i := 0; i < cfg.Slots; i++ {
		s.freeSlots = append(s.freeSlots, cfg.SlotBase+i*slotSize)
	}
	return s, nil
}

// FTL exposes the translation layer (read-only use intended).
func (s *SSD) FTL() *ftl.FTL { return s.ftl }

// Stats returns a snapshot of the counters.
func (s *SSD) Stats() Stats { return s.stats }

// acquireSlot hands a DRAM staging address to fn, immediately or once a
// slot frees.
func (s *SSD) acquireSlot(fn func(addr int)) {
	if n := len(s.freeSlots); n > 0 {
		addr := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		fn(addr)
		return
	}
	s.waiters = append(s.waiters, fn)
}

func (s *SSD) releaseSlot(addr int) {
	if len(s.waiters) > 0 {
		fn := s.waiters[0]
		s.waiters = s.waiters[1:]
		fn(addr)
		return
	}
	s.freeSlots = append(s.freeSlots, addr)
}

// Submit accepts one host command (implements hic.Submitter).
func (s *SSD) Submit(cmd hic.Command) {
	switch cmd.Kind {
	case hic.KindRead:
		s.stats.HostReads++
		s.read(cmd)
	case hic.KindWrite:
		s.stats.HostWrites++
		s.write(cmd)
	case hic.KindTrim:
		s.stats.HostTrims++
		s.trim(cmd)
	default:
		s.complete(cmd, fmt.Errorf("ssd: unknown command kind %d", cmd.Kind))
	}
}

func (s *SSD) complete(cmd hic.Command, err error) {
	if cmd.Done != nil {
		cmd.Done(err)
	}
}

func (s *SSD) read(cmd hic.Command) {
	if s.mapCache {
		mpn, hit := s.ftl.CacheAcquire(cmd.LPN)
		if !hit {
			s.mapMiss(mpn, mapWaiter{cmd: cmd})
			return
		}
		s.mapEvent("hit", -1)
	}
	s.readMapped(cmd)
}

// readMapped runs a host read whose translation page is resident (or
// whose drive models the whole map as resident — the cache-disabled
// default).
func (s *SSD) readMapped(cmd hic.Command) {
	loc, ok := s.ftl.Lookup(cmd.LPN)
	if !ok {
		// Reading a never-written page: NVMe returns zeroes; no flash
		// traffic is generated.
		s.complete(cmd, nil)
		return
	}
	if s.offline[loc.Chip] {
		s.complete(cmd, fmt.Errorf("ssd: read of LPN %d: %w", cmd.LPN, ErrChipOffline))
		return
	}
	r := s.getReadState()
	r.cmd = cmd
	r.loc = loc
	s.acquireSlot(r.startFn)
}

// readState carries one host read from slot acquisition through backend
// completion. Its callbacks are bound once and the SSD pools the states:
// a read in the steady state borrows everything it needs.
type readState struct {
	s        *SSD
	cmd      hic.Command
	loc      ftl.Location
	addr     int
	retries  int
	startFn  func(int)
	finishFn func(error)
}

func (s *SSD) getReadState() *readState {
	if n := len(s.freeReads); n > 0 {
		r := s.freeReads[n-1]
		s.freeReads[n-1] = nil
		s.freeReads = s.freeReads[:n-1]
		return r
	}
	r := &readState{s: s}
	r.startFn = r.start
	r.finishFn = r.finish
	return r
}

// start runs once the read holds a DRAM slot.
func (r *readState) start(addr int) {
	s := r.s
	r.addr = addr
	n := s.pageBytes + s.parityBytes
	// A suspendable erase on the target chip: jump the queue by
	// riding the erase operation's urgent-read service instead of
	// waiting multiple milliseconds behind it.
	if q := s.eraseQueues[r.loc.Chip]; q != nil {
		s.stats.UrgentReads++
		q.push(ops.UrgentRead{
			Addr: onfi.Addr{Row: r.loc.Row}, DramAddr: addr, N: n, Done: r.finishFn,
		})
		return
	}
	s.backend.ReadPage(r.loc.Chip, r.loc.Row, addr, n, r.finishFn)
}

// maxReadRetries bounds how many RESET-recovered reissues one host read
// gets before the chip is declared unusable.
const maxReadRetries = 3

// finish completes the read: ECC check, slot release, state recycle,
// host callback — recycled before the callback so a synchronously
// chained read reuses this state. A read aborted by RESET recovery is
// reissued (bounded); a dead chip is taken offline so later reads fail
// fast instead of burning a recovery cycle each.
func (r *readState) finish(err error) {
	s := r.s
	switch {
	case err == nil:
	case errors.Is(err, ops.ErrResetRecovered):
		if r.retries+1 < maxReadRetries {
			r.retries++
			s.stats.RecoveredOps++
			s.backend.ReadPage(r.loc.Chip, r.loc.Row, r.addr, s.pageBytes+s.parityBytes, r.finishFn)
			return
		}
		s.offlineChip(r.loc.Chip)
		err = fmt.Errorf("ssd: read wedged %d times on chip %d: %w", maxReadRetries, r.loc.Chip, ErrChipOffline)
	case errors.Is(err, ops.ErrChipDead):
		s.offlineChip(r.loc.Chip)
		err = fmt.Errorf("ssd: read of chip %d: %w", r.loc.Chip, ErrChipOffline)
	}
	if err == nil && s.withECC {
		err = s.decodeECC(r.addr)
	}
	s.releaseSlot(r.addr)
	cmd := r.cmd
	r.cmd = hic.Command{}
	r.retries = 0
	s.freeReads = append(s.freeReads, r)
	s.complete(cmd, err)
}

// urgentQueue feeds latency-critical reads to an interruptible erase.
// Pops advance a head index instead of reslicing away the front, so the
// backing array is reused once the queue drains rather than growing by
// every element ever pushed over the queue's lifetime.
type urgentQueue struct {
	items []ops.UrgentRead
	head  int
}

func (q *urgentQueue) push(ur ops.UrgentRead) { q.items = append(q.items, ur) }

// next pops the oldest urgent read; the erase operation calls it.
func (q *urgentQueue) next() (ops.UrgentRead, bool) {
	if q.head >= len(q.items) {
		q.items = q.items[:0]
		q.head = 0
		return ops.UrgentRead{}, false
	}
	ur := q.items[q.head]
	q.items[q.head] = ops.UrgentRead{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return ur, true
}

func (s *SSD) decodeECC(addr int) error {
	page, err := s.mem.Window(addr, s.pageBytes)
	if err != nil {
		return err
	}
	parity, err := s.mem.Window(addr+s.pageBytes, s.parityBytes)
	if err != nil {
		return err
	}
	corrected, err := s.codec.DecodePage(page, parity)
	s.stats.ECCCorrections += uint64(corrected)
	if err != nil {
		s.stats.ECCFailures++
		return fmt.Errorf("ssd: uncorrectable read: %w", err)
	}
	return nil
}

// scrubECC corrects a staged page in place and regenerates its parity —
// the GC-time scrub that keeps relocated data from accumulating raw bit
// errors across generations.
func (s *SSD) scrubECC(addr int) error {
	if err := s.decodeECC(addr); err != nil {
		return err
	}
	page, err := s.mem.Window(addr, s.pageBytes)
	if err != nil {
		return err
	}
	parity, err := s.mem.Window(addr+s.pageBytes, s.parityBytes)
	if err != nil {
		return err
	}
	return s.codec.EncodePageInto(parity, page)
}

// programStarted records an in-flight program against lpn's current
// mapping. Pair with programLanded once the program's outcome is known.
func (s *SSD) programStarted(lpn int) { s.inflightPrograms[lpn]++ }

// programLanded retires one in-flight program for lpn and, when none
// remain, releases GC continuations parked on the page.
func (s *SSD) programLanded(lpn int) {
	if n := s.inflightPrograms[lpn]; n > 1 {
		s.inflightPrograms[lpn] = n - 1
		return
	}
	delete(s.inflightPrograms, lpn)
	ws := s.programWaiters[lpn]
	if len(ws) == 0 {
		return
	}
	delete(s.programWaiters, lpn)
	for _, fn := range ws {
		fn()
	}
}

// awaitProgram parks fn until every in-flight program for lpn lands.
// Callers must have checked inflightPrograms[lpn] > 0.
func (s *SSD) awaitProgram(lpn int, fn func()) {
	s.programWaiters[lpn] = append(s.programWaiters[lpn], fn)
}

// trim deallocates a logical page (NVMe Dataset Management): the FTL
// drops the mapping, a later read returns zeroes, and GC stops
// relocating the page. Like a write, the translation page must be
// resident first — a trim dirties it — so trims pay map-cache misses
// like every other mutation.
func (s *SSD) trim(cmd hic.Command) {
	if s.degraded {
		s.complete(cmd, ErrReadOnly)
		return
	}
	if s.mapCache {
		mpn, hit := s.ftl.CacheAcquire(cmd.LPN)
		if !hit {
			s.mapMiss(mpn, mapWaiter{cmd: cmd, trim: true})
			return
		}
		s.mapEvent("hit", -1)
	}
	s.trimMapped(cmd)
}

// trimMapped runs a trim whose translation page is resident. A trim
// racing an in-flight program for the same LPN parks until the program
// lands (the host issued both concurrently, so "trim wins" ordering is
// legal — but invalidating under a program in flight would let GC see
// a half-settled mapping).
func (s *SSD) trimMapped(cmd hic.Command) {
	if s.degraded {
		s.complete(cmd, ErrReadOnly)
		return
	}
	if s.inflightPrograms[cmd.LPN] > 0 {
		s.awaitProgram(cmd.LPN, func() { s.trimMapped(cmd) })
		return
	}
	s.ftl.Invalidate(cmd.LPN)
	s.complete(cmd, nil)
}

// write expects the host payload to already be staged by the caller; the
// generator model writes a deterministic pattern derived from the LPN.
func (s *SSD) write(cmd hic.Command) {
	if s.degraded {
		s.complete(cmd, ErrReadOnly)
		return
	}
	if s.mapCache {
		// Acquire the translation page before taking a DRAM slot: the
		// map load itself needs a slot, so gating here keeps a
		// one-slot drive from deadlocking behind its own map read.
		mpn, hit := s.ftl.CacheAcquire(cmd.LPN)
		if !hit {
			s.mapMiss(mpn, mapWaiter{cmd: cmd, write: true})
			return
		}
		s.mapEvent("hit", -1)
	}
	s.writeMapped(cmd)
}

// writeMapped runs a host write whose translation page is resident. The
// degraded latch is re-checked: the drive may have gone read-only while
// this write waited on its map-page load.
func (s *SSD) writeMapped(cmd hic.Command) {
	if s.degraded {
		s.complete(cmd, ErrReadOnly)
		return
	}
	s.acquireSlot(func(addr int) {
		if err := s.stagePattern(addr, cmd.LPN); err != nil {
			s.releaseSlot(addr)
			s.complete(cmd, err)
			return
		}
		s.programWithRetry(cmd, addr, 0)
	})
}

// maxProgramRetries bounds grown-bad-block handling per host write.
const maxProgramRetries = 3

// programWithRetry allocates, programs, and — on a media FAIL — retires
// the grown-bad block and retries elsewhere, as every production FTL
// must (bad blocks grow over a drive's life; the host never sees them).
func (s *SSD) programWithRetry(cmd hic.Command, addr, attempt int) {
	loc, err := s.ftl.AllocateWrite(cmd.LPN)
	if err != nil {
		s.releaseSlot(addr)
		if s.degraded {
			// The drive already gave up on finding space; a write that
			// was mid-flight (holding a slot) when the mode latched must
			// fail like every other, not park forever.
			s.complete(cmd, ErrReadOnly)
			return
		}
		// Out of space: park the command and let GC free blocks —
		// a real drive back-pressures the host rather than failing.
		s.stalledWrites = append(s.stalledWrites, cmd)
		s.kickGC()
		return
	}
	n := s.pageBytes + s.parityBytes
	s.programStarted(cmd.LPN)
	s.backend.ProgramPage(loc.Chip, loc.Row, addr, n, func(err error) {
		if err == nil {
			s.programLanded(cmd.LPN)
			s.releaseSlot(addr)
			s.complete(cmd, nil)
			s.maybeGC(loc.Chip)
			return
		}
		s.ftl.Invalidate(cmd.LPN)
		switch {
		case errors.Is(err, ops.ErrChipDead):
			s.offlineChip(loc.Chip)
		case errors.Is(err, ops.ErrResetRecovered):
			// The chip wedged and a RESET revived it; the block is not
			// implicated, so retry elsewhere without retiring it.
			s.stats.RecoveredOps++
		default:
			s.ftl.RetireBlock(loc.Chip, loc.Row.Block)
		}
		if attempt+1 < maxProgramRetries {
			// Start the retry's program before retiring this one so the
			// in-flight count never dips to zero mid-retry (a parked GC
			// continuation must not run against the invalidated mapping).
			s.programWithRetry(cmd, addr, attempt+1)
			s.programLanded(cmd.LPN)
			return
		}
		s.programLanded(cmd.LPN)
		s.releaseSlot(addr)
		s.complete(cmd, err)
	})
}

// kickGC starts collection on every chip and fails stalled writes if no
// chip can make progress (true out-of-space).
func (s *SSD) kickGC() {
	started := false
	for chip := 0; chip < s.ftl.Chips(); chip++ {
		s.maybeGC(chip)
		if s.gcRunning[chip] {
			started = true
		}
	}
	if !started && len(s.stalledWrites) > 0 {
		// Last resort before declaring the drive full: garbage may be
		// trapped in a partially written GC block (relocated pages the
		// host has since overwritten). Force-seal those blocks so they
		// become collection candidates and retry.
		for chip := 0; chip < s.ftl.Chips(); chip++ {
			if s.ftl.ForceSealGC(chip) {
				s.maybeGC(chip)
				if s.gcRunning[chip] {
					started = true
				}
			}
		}
	}
	if !started && len(s.stalledWrites) > 0 {
		// No chip can collect and nothing is left to seal: the drive is
		// genuinely out of usable space. Degrade to read-only rather
		// than wedging — parked writes fail with ErrReadOnly and reads
		// of everything already written keep being served.
		s.enterDegraded()
	}
}

// offlineChip removes a chip from service after recovery failed: the
// FTL stops allocating there, future reads to it fail fast, and if
// every chip is gone the drive degrades to read-only.
func (s *SSD) offlineChip(chip int) {
	if s.offline[chip] {
		return
	}
	s.offline[chip] = true
	s.stats.OfflinedChips++
	s.ftl.OfflineChip(chip)
	s.recoveryEvent(chip, "chip-offline")
	for c := 0; c < s.ftl.Chips(); c++ {
		if !s.offline[c] {
			return
		}
	}
	s.enterDegraded()
}

// enterDegraded latches read-only mode: every parked and future write
// fails with ErrReadOnly, reads keep working, and the rig drains
// instead of wedging on writes it can never place. Draining the parked
// writes sits outside the latch guard on purpose — writes can stall
// after the transition (they were mid-flight when it happened) and must
// still be failed, every time.
func (s *SSD) enterDegraded() {
	if !s.degraded {
		s.degraded = true
		s.stats.ReadOnly = true
		s.recoveryEvent(-1, "read-only")
	}
	stalled := s.stalledWrites
	s.stalledWrites = nil
	for _, cmd := range stalled {
		s.complete(cmd, ErrReadOnly)
	}
}

// recoveryEvent emits an SSD-level recovery decision to the tracer.
func (s *SSD) recoveryEvent(chip int, label string) {
	if s.tracer == nil {
		return
	}
	s.tracer.Event(obs.Event{Time: s.k.Now(), Kind: obs.KindRecovery, Chip: chip, Label: label})
}

// drainStalled retries writes parked on out-of-space after GC reclaimed
// a block.
func (s *SSD) drainStalled() {
	if len(s.stalledWrites) == 0 {
		return
	}
	stalled := s.stalledWrites
	s.stalledWrites = nil
	for _, cmd := range stalled {
		s.write(cmd)
	}
}

// stagePattern fills a slot with the deterministic page content for lpn
// (and its parity when ECC is on).
func (s *SSD) stagePattern(addr, lpn int) error {
	w, err := s.mem.Window(addr, s.pageBytes)
	if err != nil {
		return err
	}
	FillPattern(w, lpn)
	if s.withECC {
		parity, err := s.mem.Window(addr+s.pageBytes, s.parityBytes)
		if err != nil {
			return err
		}
		return s.codec.EncodePageInto(parity, w)
	}
	return nil
}

// FillPattern writes the canonical test pattern for a logical page: a
// repeating LPN-derived sequence, so any read can be verified without
// storing a model of the whole drive.
func FillPattern(dst []byte, lpn int) {
	for i := range dst {
		dst[i] = byte(lpn>>8) ^ byte(lpn) ^ byte(i)
	}
}
