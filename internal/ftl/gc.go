package ftl

import "fmt"

// Garbage-collection policy: watermark detection, greedy victim
// selection, and live-page relocation. All of it is shard-aware in the
// locking sense — candidate scans take only the victim chip's lock, and
// relocations take only the moved LPN's map-shard lock plus the chips
// involved — so GC on one chip never stalls lookups or allocations
// against other chips or other LPN ranges.

// NeedsGC reports whether a chip has run low on free blocks (at or below
// the reserved watermark).
func (f *FTL) NeedsGC(chip int) bool {
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.offline {
		return false
	}
	free := len(cs.freeList)
	if cs.active >= 0 {
		free++
	}
	return free <= f.reserved
}

// GCCandidate picks the sealed block with the fewest live pages on a
// chip (greedy policy) and returns its live logical pages. ok is false
// when no sealed block exists. Only the chip's own lock is taken: the
// scan is per-chip state, so concurrent GC on other chips (or lookups
// anywhere) proceed untouched.
func (f *FTL) GCCandidate(chip int) (block int, liveLPNs []int, ok bool) {
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.offline {
		return 0, nil, false
	}
	best, bestValid := -1, int(^uint(0)>>1)
	for b := range cs.blocks {
		blk := &cs.blocks[b]
		if !blk.sealed || blk.bad {
			continue
		}
		if blk.valid < bestValid {
			best, bestValid = b, blk.valid
		}
	}
	if best < 0 {
		return 0, nil, false
	}
	blk := &cs.blocks[best]
	for _, lpn := range blk.lpns {
		if lpn != invalidLPN {
			liveLPNs = append(liveLPNs, lpn)
		}
	}
	return best, liveLPNs, true
}

// RelocateForGC re-allocates a live page during GC: it assigns a new
// physical page for lpn (counting a flash write but not a host write)
// and returns the destination. The caller copies the data and erases the
// victim afterwards.
func (f *FTL) RelocateForGC(lpn int) (Location, error) {
	loc, err := f.allocate(lpn, true)
	if err != nil {
		return loc, err
	}
	f.n.flashWrites.Add(1)
	f.n.gcMoves.Add(1)
	return loc, nil
}

// RelocateForGCOn is RelocateForGC pinned to one chip, for relocation
// mechanisms that cannot cross chips (NAND copyback moves data inside a
// single LUN). It fails only if the chip's GC stream is out of space,
// which the headroom rule prevents.
func (f *FTL) RelocateForGCOn(chip, lpn int) (Location, error) {
	if chip < 0 || chip >= f.chips {
		return Location{}, fmt.Errorf("ftl: chip %d out of range", chip)
	}
	if lpn < 0 || lpn >= f.logical {
		return Location{}, fmt.Errorf("ftl: LPN %d out of range [0,%d)", lpn, f.logical)
	}
	sh := f.shard(lpn)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cs := &f.chipsArr[chip]
	cs.mu.Lock()
	ok := f.hasSpace(cs, true)
	cs.mu.Unlock()
	if !ok {
		return Location{}, fmt.Errorf("ftl: chip %d GC stream out of space", chip)
	}
	f.clearMappingLocked(sh, lpn)
	loc, allocOK := f.allocateOn(chip, lpn, true)
	if !allocOK {
		return Location{}, fmt.Errorf("ftl: chip %d lost GC space mid-allocation", chip)
	}
	f.setMappingLocked(sh, lpn, loc)
	f.n.flashWrites.Add(1)
	f.n.gcMoves.Add(1)
	return loc, nil
}
