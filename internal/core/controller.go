// Package core implements the BABOL channel controller: the assembly of
// the software environment (operations as coroutines, task scheduler,
// transaction scheduler) with the programmable hardware (µFSM executor)
// described in the paper's Figure 5.
//
// The division of labour mirrors the paper exactly:
//
//   - Operations are sequential code (coroutines) that *describe* waveform
//     segments by accumulating µFSM instructions, bundle them into
//     transactions, and yield (Ctx.Submit — the paper's add_transaction +
//     co_await).
//   - The Task Scheduler picks which runnable operation the single
//     firmware core resumes next; every resume, submit, and poll
//     iteration is charged to the CPU model.
//   - The Transaction Scheduler orders queued transactions; the hardware
//     execution unit pops the head whenever the channel is free, with no
//     software on that path — the asynchronous principle that lets a slow
//     CPU coexist with a fast channel as long as descriptions are
//     produced early enough.
package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/coro"
	"repro/internal/cpumodel"
	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/ufsm"
)

// OpFunc is a flash operation: sequential logic that drives the µFSMs
// through the Ctx. It is the Go analogue of the paper's Algorithms 1–3.
type OpFunc func(*Ctx) error

// Config assembles a controller.
type Config struct {
	Kernel  *sim.Kernel
	Channel *bus.Channel
	DRAM    *dram.Buffer
	CPU     *cpumodel.CPU
	// TaskQueue defaults to FIFO; TxnQueue defaults to issue-first.
	TaskQueue sched.TaskQueue
	TxnQueue  sched.TxnQueue
	// Tracer receives the controller's event stream (admissions, CPU
	// charges, transaction life cycle, gate openings). nil means tracing
	// is off; every emission site is nil-guarded so the disabled path
	// costs one branch.
	Tracer obs.Tracer
	// CoroPool recycles operation-coroutine goroutines across operations
	// (see coro.Pool). A rig with several channel controllers shares one
	// pool — all controllers run on the same kernel goroutine, so the
	// pool's single-threaded contract holds. nil gives the controller a
	// private pool, which Close then owns and closes.
	CoroPool *coro.Pool
	// DisableCoroPool forces one goroutine per operation (plain
	// coro.New) — the reference path the pooled-determinism tests
	// compare against. Pooling never changes virtual-time behavior;
	// this switch exists to prove it.
	DisableCoroPool bool
}

// OpRequest is a request to run one operation, as the FTL would issue it.
type OpRequest struct {
	// Func is the operation logic.
	Func OpFunc
	// Chip is the primary target chip on the channel.
	Chip int
	// ExtraChips are additional chips a gang-scheduled operation drives;
	// admission waits until every listed chip is free.
	ExtraChips []int
	// Priority feeds priority-based schedulers; larger is more urgent.
	Priority int
	// Done is called when the operation completes (may be nil).
	Done func(error)
	// Label annotates traces and errors.
	Label string
}

// Stats counts controller activity.
type Stats struct {
	OpsSubmitted uint64
	// OpsCompleted counts every operation that terminated, successfully
	// or not — it includes OpsFailed. Use OpsSucceeded for the
	// error-free count.
	OpsCompleted   uint64
	OpsFailed      uint64
	TxnsExecuted   uint64
	AdmissionWaits uint64
	// Recoveries counts recovery actions recorded via
	// Ctx.Recovery (RESET escalations, chips declared dead).
	Recoveries uint64
}

// OpsSucceeded reports operations that terminated without error.
func (s Stats) OpsSucceeded() uint64 { return s.OpsCompleted - s.OpsFailed }

// Controller is one BABOL channel controller instance.
type Controller struct {
	k    *sim.Kernel
	ch   *bus.Channel
	mem  *dram.Buffer
	cpu  *cpumodel.CPU
	exec *ufsm.Executor

	taskQ sched.TaskQueue
	txnQ  sched.TxnQueue

	nextOpID  uint64
	nextTxnID uint64

	scratch *scratchRing

	// freeOps recycles finished opStates (with their Ctx, transaction
	// box, latch arena, and pre-bound callbacks); together with the
	// coroutine pool (which recycles the goroutine and handshake
	// channels) steady-state operation turnover allocates nothing. A
	// state is recycled strictly after finishOp: at that point its
	// coroutine has returned, its last transaction was delivered, and no
	// kernel callback references it.
	freeOps []*opState

	// Per-chip operation slots. Each chip runs one operation ("active")
	// and pre-admits one more ("staged"): the staged operation executes
	// its software up to its first transaction, whose description waits
	// on a hardware chip-busy gate. Producing the next segment's
	// description before the opportunity to execute it is the core
	// asynchronous principle (§III: "while a data transfer is ongoing,
	// there is enough time to decide in software on the next task to
	// give a particular LUN").
	chipActive map[int]*opState
	chipStaged map[int]*opState
	admitQ     []*opState
	live       map[uint64]*opState

	// pool recycles operation-coroutine goroutines; nil means pooling is
	// disabled (one goroutine per operation). ownPool marks a pool the
	// controller created itself and must close; a shared per-rig pool is
	// closed by the rig.
	pool    *coro.Pool
	ownPool bool

	dispatching bool // a software dispatch chain is in flight
	hwArmed     bool // the hardware unit is waiting for/running a txn
	closed      bool // Close ran; pending kernel callbacks are inert

	// Pre-bound method values for the steady-state callback chain
	// (schedule → switch → submit, arm → execute → complete). Each has
	// at most one pending instance at a time — dispatching serializes
	// the software chain and hwArmed the hardware one — so the pending
	// arguments live in the fields below instead of per-call closures.
	scheduleFn func()
	switchFn   func()
	submitFn   func()
	execHeadFn func()
	txnDoneFn  func()

	dispatchSt   *opState         // task picked by the pending schedule pass
	submitSt     *opState         // owner of the pending submit charge
	submitTx     *txn.Transaction // transaction of the pending submit charge
	completedTx  *txn.Transaction // transaction awaiting its completion callback
	completedRes txn.Result

	tracer  obs.Tracer
	stats   Stats
	latency LatencyStats
}

// New builds a controller. Channel, DRAM, CPU, and Kernel are required.
func New(cfg Config) (*Controller, error) {
	if cfg.Kernel == nil || cfg.Channel == nil || cfg.DRAM == nil || cfg.CPU == nil {
		return nil, fmt.Errorf("core: Kernel, Channel, DRAM, and CPU are all required")
	}
	if cfg.TaskQueue == nil {
		cfg.TaskQueue = sched.NewTaskFIFO()
	}
	if cfg.TxnQueue == nil {
		cfg.TxnQueue = sched.NewTxnIssueFirst()
	}
	exec := ufsm.NewExecutor(cfg.Channel, cfg.DRAM)
	exec.SetTracer(cfg.Tracer)
	c := &Controller{
		k:          cfg.Kernel,
		ch:         cfg.Channel,
		mem:        cfg.DRAM,
		cpu:        cfg.CPU,
		exec:       exec,
		taskQ:      cfg.TaskQueue,
		txnQ:       cfg.TxnQueue,
		scratch:    newScratchRing(cfg.DRAM),
		chipActive: make(map[int]*opState),
		chipStaged: make(map[int]*opState),
		live:       make(map[uint64]*opState),
		tracer:     cfg.Tracer,
	}
	if !cfg.DisableCoroPool {
		if cfg.CoroPool != nil {
			c.pool = cfg.CoroPool
		} else {
			c.pool = coro.NewPool()
			c.ownPool = true
		}
	}
	c.scheduleFn = c.schedulePass
	c.switchFn = c.switchPass
	c.submitFn = c.submitPass
	c.execHeadFn = c.execHead
	c.txnDoneFn = c.txnDone
	return c, nil
}

// Channel returns the controller's channel.
func (c *Controller) Channel() *bus.Channel { return c.ch }

// CPU returns the firmware CPU model.
func (c *Controller) CPU() *cpumodel.CPU { return c.cpu }

// DRAM returns the staging buffer the Packetizer DMAs against.
func (c *Controller) DRAM() *dram.Buffer { return c.mem }

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Pending reports operations admitted or waiting for admission.
func (c *Controller) Pending() int { return len(c.live) + len(c.admitQ) }

// Start submits an operation request. Admission, scheduling, and
// execution all happen in virtual time; Done fires when the operation
// finishes. Start returns the operation ID. Starting on a closed
// controller is a documented no-op returning 0.
func (c *Controller) Start(req OpRequest) uint64 {
	if c.closed {
		return 0
	}
	c.nextOpID++
	id := c.nextOpID
	var st *opState
	if n := len(c.freeOps); n > 0 {
		st = c.freeOps[n-1]
		c.freeOps[n-1] = nil
		c.freeOps = c.freeOps[:n-1]
		st.reset(id, req, c.k.Now())
	} else {
		st = &opState{id: id, req: req, ctrl: c, startedAt: c.k.Now()}
		// The callbacks below are bound once per pooled state: they read
		// the state's current fields, so they stay correct across reuse.
		st.admitFn = func() { c.admit(st) }
		st.runFn = func(y *coro.Yielder) error {
			st.ctx.y = y
			return st.req.Func(st.ctx)
		}
		st.ctx = &Ctx{st: st, ctrl: c}
		// One completion callback per state: every Submit reuses the
		// context's transaction box, and with it this Done.
		st.ctx.txnBox.Done = func(res txn.Result) { c.deliver(st, res) }
	}
	c.stats.OpsSubmitted++
	// Admission is a firmware action: charge it.
	c.charge(id, c.cpu.Profile().AdmitCycles, "admit", st.admitFn)
	return id
}

// charge is the single funnel for firmware work: it emits a CPU-charge
// event and then serializes fn on the CPU model. Because every
// cpu.Exec in the controller goes through here, the sum of the emitted
// durations reproduces cpumodel.Stats.BusyTime exactly. opID attributes
// the charge to the operation it serves (admit, switch, submit); it is
// 0 for work not on behalf of a specific operation (the schedule pass),
// so per-op sums from the event stream under-count by the scheduling
// share — trace consumers that need exact totals sum all charges.
func (c *Controller) charge(opID uint64, cycles int64, label string, fn func()) {
	if c.tracer != nil {
		c.tracer.Event(obs.Event{
			Time: c.k.Now(), Kind: obs.KindCPUCharge, OpID: opID,
			Cycles: cycles, Dur: c.cpu.CycleTime(cycles), Label: label,
		})
	}
	c.cpu.Exec(cycles, fn)
}

// gangReserved returns the set of chips a parked gang operation is
// waiting on. Freed slots on those chips are reserved: later
// single-chip operations must not leapfrog into them, or the gang
// operation — which needs all its chips free at once — starves.
func (c *Controller) gangReserved() map[int]bool {
	var blocked map[int]bool
	for _, w := range c.admitQ {
		if len(w.req.ExtraChips) == 0 {
			continue
		}
		if blocked == nil {
			blocked = make(map[int]bool)
		}
		for _, chip := range w.chips() {
			blocked[chip] = true
		}
	}
	return blocked
}

// admit places st in a chip slot if one is open, else parks it.
// Single-chip operations may enter the "staged" slot behind a running
// operation; gang operations (ExtraChips) need every chip's active slot
// free and are never staged. Chips a longer-parked gang operation waits
// on are off limits (see gangReserved).
func (c *Controller) admit(st *opState) {
	if c.closed {
		return
	}
	blocked := c.gangReserved()
	chips := st.chips()
	if len(chips) == 1 {
		chip := chips[0]
		if !blocked[chip] {
			switch {
			case c.chipActive[chip] == nil:
				c.chipActive[chip] = st
				c.admitted(st, "active")
				return
			case c.chipStaged[chip] == nil:
				c.chipStaged[chip] = st
				st.staged = true
				c.admitted(st, "staged")
				return
			}
		}
		c.park(st)
		return
	}
	for _, chip := range chips {
		if blocked[chip] || c.chipActive[chip] != nil || c.chipStaged[chip] != nil {
			c.park(st)
			return
		}
	}
	for _, chip := range chips {
		c.chipActive[chip] = st
	}
	c.admitted(st, "gang")
}

// park defers st to the next finishOp re-admission pass.
func (c *Controller) park(st *opState) {
	c.stats.AdmissionWaits++
	c.admitQ = append(c.admitQ, st)
	if c.tracer != nil {
		c.tracer.Event(obs.Event{
			Time: c.k.Now(), Kind: obs.KindAdmissionWait,
			OpID: st.id, Chip: st.req.Chip, Label: st.req.Label,
		})
	}
}

// admitted records the slot taken and activates the operation.
func (c *Controller) admitted(st *opState, slot string) {
	if c.tracer != nil {
		c.tracer.Event(obs.Event{
			Time: c.k.Now(), Kind: obs.KindOpAdmitted,
			OpID: st.id, Chip: st.req.Chip, Label: slot,
		})
	}
	c.activate(st)
}

func (c *Controller) activate(st *opState) {
	if c.pool != nil {
		st.co = c.pool.Get(st.runFn)
	} else {
		st.co = coro.New(st.runFn)
	}
	c.live[st.id] = st
	c.makeRunnable(st, 0)
}

// makeRunnable queues st for the firmware to resume, with extra cycles
// charged on top of the context switch (e.g. poll-result decoding).
func (c *Controller) makeRunnable(st *opState, extraCycles int64) {
	st.wakeExtra = extraCycles
	c.taskQ.Push(st)
	c.pump()
}

// pump drives the software side: one schedule pass + context switch at a
// time, serialized on the CPU model. The dispatching flag guarantees at
// most one schedule/switch pass is pending, so both use the pre-bound
// callbacks with the picked task parked in dispatchSt.
func (c *Controller) pump() {
	if c.closed || c.dispatching || c.taskQ.Len() == 0 {
		return
	}
	c.dispatching = true
	c.charge(0, c.cpu.Profile().ScheduleCycles, "schedule", c.scheduleFn)
}

// schedulePass is the deferred body of pump's schedule charge.
func (c *Controller) schedulePass() {
	if c.closed {
		c.dispatching = false
		return
	}
	t := c.taskQ.Pop()
	if t == nil {
		c.dispatching = false
		return
	}
	st := t.(*opState)
	c.dispatchSt = st
	c.charge(st.id, c.cpu.Profile().SwitchCycles+st.wakeExtra, "switch", c.switchFn)
}

// switchPass is the deferred body of the context-switch charge.
func (c *Controller) switchPass() {
	st := c.dispatchSt
	c.dispatchSt = nil
	if c.closed || st == nil {
		c.dispatching = false
		return
	}
	c.resumeOp(st)
	c.dispatching = false
	c.pump()
}

// resumeOp hands control to the operation coroutine until its next yield
// and then processes the yield reason.
func (c *Controller) resumeOp(st *opState) {
	if c.tracer != nil {
		c.tracer.Event(obs.Event{
			Time: c.k.Now(), Kind: obs.KindOpResumed,
			OpID: st.id, Chip: st.req.Chip,
		})
	}
	finished := st.co.Resume()
	if finished {
		c.finishOp(st, st.co.Err())
		return
	}
	switch st.ctx.pending {
	case pendSubmit:
		tx := st.ctx.pendingTxn
		resubmit := st.ctx.pollResubmit
		st.ctx.pendingTxn = nil
		// Building + enqueueing the transaction costs firmware time;
		// only after that charge does the description reach the
		// hardware-visible queue. A polling *resubmission* — the same
		// status transaction issued again because the last answer was
		// "busy" — additionally pays the loop-body cost (§VI-C calls
		// these "polling resubmissions"; they dominate the coroutine
		// environment's overhead).
		cycles := c.cpu.Profile().SubmitCycles
		label := "submit"
		if resubmit {
			cycles += c.cpu.Profile().PollCycles
			label = "poll-resubmit"
			if c.tracer != nil {
				c.tracer.Event(obs.Event{
					Time: c.k.Now(), Kind: obs.KindPollResubmit,
					OpID: st.id, Chip: st.req.Chip,
				})
			}
		}
		if c.submitTx == nil {
			c.submitSt, c.submitTx = st, tx
			c.charge(st.id, cycles, label, c.submitFn)
		} else {
			// Defensive fallback: dispatch serialization should make a
			// second pending submit impossible, but if it ever happens,
			// a fresh closure keeps both charges intact.
			c.charge(st.id, cycles, label, func() { c.submitBody(st, tx) })
		}
	case pendSleep:
		d := st.ctx.sleepFor
		st.ctx.sleepFor = 0
		if st.wakeFn == nil {
			st.wakeFn = func() {
				if c.closed {
					return
				}
				c.makeRunnable(st, 0)
			}
		}
		c.k.After(d, st.wakeFn)
	default:
		// A yield with no request is a cooperative reschedule.
		c.makeRunnable(st, 0)
	}
}

// submitPass is the deferred body of the submit charge, reading its
// arguments from the pending-submit fields.
func (c *Controller) submitPass() {
	st, tx := c.submitSt, c.submitTx
	c.submitSt, c.submitTx = nil, nil
	if st == nil {
		return
	}
	c.submitBody(st, tx)
}

// submitBody moves a built transaction into the hardware-visible queue
// (or holds it behind the chip-busy gate for a staged operation).
func (c *Controller) submitBody(st *opState, tx *txn.Transaction) {
	if c.closed {
		return
	}
	c.nextTxnID++
	tx.ID = c.nextTxnID
	if st.staged && !st.submittedAny {
		// The chip is still owned by its active operation: the
		// description waits on the hardware chip-busy gate.
		st.heldTxn = tx
		return
	}
	st.submittedAny = true
	c.pushTxn(tx)
	c.armHW()
}

// finishOp releases the operation's chips, promotes staged operations
// (releasing their gated transactions with no software on the path — the
// chip-busy bit is hardware), reports completion, and admits waiting
// operations.
func (c *Controller) finishOp(st *opState, err error) {
	delete(c.live, st.id)
	for _, chip := range st.chips() {
		if c.chipActive[chip] == st {
			c.chipActive[chip] = nil
		}
		if c.chipStaged[chip] == st {
			c.chipStaged[chip] = nil
		}
		if next := c.chipStaged[chip]; next != nil && c.chipActive[chip] == nil {
			c.chipActive[chip] = next
			c.chipStaged[chip] = nil
			next.staged = false
			if held := next.heldTxn; held != nil {
				// Fallback for operations without a Final-tagged last
				// transaction: release at software completion.
				next.heldTxn = nil
				next.submittedAny = true
				c.pushTxn(held)
				c.armHW()
			}
		}
	}
	lat := c.k.Now().Sub(st.startedAt)
	c.stats.OpsCompleted++
	c.latency.record(lat)
	if err != nil {
		c.stats.OpsFailed++
	}
	if c.tracer != nil {
		c.tracer.Event(obs.Event{
			Time: c.k.Now(), Kind: obs.KindOpFinished,
			OpID: st.id, Chip: st.req.Chip, Dur: lat,
			Err: err != nil, Label: st.req.Label,
		})
	}
	if st.req.Done != nil {
		st.req.Done(err)
	}
	// Re-run admission for parked operations (in arrival order). Each
	// pass is a firmware action and pays the same AdmitCycles as Start;
	// the CPU model's FIFO keeps the passes in arrival order, so a
	// re-parked gang operation re-reserves its chips before any later
	// operation's pass runs.
	parked := c.admitQ
	c.admitQ = nil
	p := c.cpu.Profile()
	for _, w := range parked {
		c.charge(w.id, p.AdmitCycles, "admit", w.admitFn)
	}
	// Drop the request's closures (Func/Done) and the finished coroutine,
	// then return the state to the pool for the next Start.
	st.req = OpRequest{}
	st.co = nil
	c.freeOps = append(c.freeOps, st)
}

// pushTxn moves a transaction into the hardware-visible queue,
// recording the post-push depth.
func (c *Controller) pushTxn(tx *txn.Transaction) {
	c.txnQ.Push(tx)
	if c.tracer != nil {
		c.tracer.Event(obs.Event{
			Time: c.k.Now(), Kind: obs.KindTxnEnqueued,
			OpID: tx.OpID, TxnID: tx.ID, Chip: tx.Chip, Depth: c.txnQ.Len(),
		})
	}
}

// armHW starts the hardware execution unit if it is idle: it waits for
// the channel to free and then plays the transaction scheduler's head.
// No software cost is charged on this path — the pop is the hardware
// "Operation Execution" module reacting to channel vacancy.
func (c *Controller) armHW() {
	if c.closed || c.hwArmed || c.txnQ.Len() == 0 {
		return
	}
	c.hwArmed = true
	if c.ch.Free() {
		c.execHead()
		return
	}
	c.k.At(c.ch.FreeAt(), c.execHeadFn)
}

func (c *Controller) execHead() {
	if c.closed {
		c.hwArmed = false
		return
	}
	tx := c.txnQ.Pop()
	if tx == nil {
		c.hwArmed = false
		return
	}
	if c.tracer != nil {
		c.tracer.Event(obs.Event{
			Time: c.k.Now(), Kind: obs.KindTxnPopped,
			OpID: tx.OpID, TxnID: tx.ID, Chip: tx.Chip, Depth: c.txnQ.Len(),
		})
	}
	start := c.k.Now()
	busyBefore := c.ch.Stats().BusyTime
	res := c.exec.Execute(tx)
	c.stats.TxnsExecuted++
	if c.tracer != nil {
		// The channel's busy-time delta is the exact occupancy this
		// transaction added (robust to error-truncated executions), so
		// summing these events reproduces bus.Stats.BusyTime.
		occ := c.ch.Stats().BusyTime - busyBefore
		c.tracer.Event(obs.Event{
			Time: start.Add(occ), Kind: obs.KindTxnExecuted,
			OpID: tx.OpID, TxnID: tx.ID, Chip: tx.Chip,
			Dur: occ, Start: start, End: start.Add(occ),
			Err: res.Err != nil,
		})
	}
	end := res.End
	if end < c.k.Now() {
		end = c.k.Now()
	}
	// hwArmed stays set until txnDone runs, so at most one completion is
	// pending and its arguments can ride in the completed* fields.
	c.completedTx, c.completedRes = tx, res
	c.k.At(end, c.txnDoneFn)
}

// txnDone is the completion callback of an executed transaction.
func (c *Controller) txnDone() {
	tx, res := c.completedTx, c.completedRes
	c.completedTx, c.completedRes = nil, txn.Result{}
	if c.closed || tx == nil {
		return
	}
	c.hwArmed = false
	if tx.Final {
		// The descriptor's "last" bit opens the chip gate in
		// hardware: a staged successor's held first transaction
		// enters the queue before the next pop.
		c.openGate(tx.Chip)
	}
	c.armHW()
	if tx.Done != nil {
		tx.Done(res)
	}
}

// openGate releases a staged operation's held first transaction for a
// chip whose active operation just executed its final transaction.
func (c *Controller) openGate(chip int) {
	next := c.chipStaged[chip]
	if next == nil || next.heldTxn == nil {
		return
	}
	if c.tracer != nil {
		c.tracer.Event(obs.Event{
			Time: c.k.Now(), Kind: obs.KindGateOpened,
			OpID: next.id, Chip: chip,
		})
	}
	held := next.heldTxn
	next.heldTxn = nil
	next.submittedAny = true
	c.pushTxn(held)
}

// deliver is called (via the transaction's Done) when an operation's
// submitted transaction completes: the operation becomes runnable again.
func (c *Controller) deliver(st *opState, res txn.Result) {
	if c.closed {
		return
	}
	st.ctx.result = res
	c.makeRunnable(st, 0)
}

// Close aborts all in-flight operations, releasing their coroutine
// goroutines, and neutralizes every kernel callback still scheduled
// against them (transaction completions, sleep timers, pending CPU
// work): a subsequent kernel drain is a no-op instead of resuming
// aborted coroutines or mutating freed state. A controller-owned
// coroutine pool is closed too, so its parked workers exit and the
// process goroutine count returns to baseline; a shared per-rig pool is
// left for the rig to close after every controller on it has aborted
// its operations. Close is idempotent; the controller must not be used
// afterwards (Start becomes a no-op).
func (c *Controller) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, st := range c.live {
		st.co.Abort()
		st.co = nil
	}
	if c.ownPool {
		c.pool.Close()
	}
	c.live = make(map[uint64]*opState)
	c.admitQ = nil
	c.chipActive = make(map[int]*opState)
	c.chipStaged = make(map[int]*opState)
	c.dispatching = false
	c.hwArmed = false
}
