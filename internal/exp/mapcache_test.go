package exp

import (
	"bytes"
	"strings"
	"testing"
)

// quickBudgets is a short ladder for test-scale op counts: disabled,
// starved (4 map pages across 4 shards), and comfortable.
func quickBudgets() []int64 { return []int64{0, 4 * 512, 32 * 512} }

// TestMapCacheDisabledByteIdentity is the acceptance gate for the
// tentpole's zero-cost-when-off contract, at the experiment level:
// with MapCacheBytes explicitly zero, figure CSVs and merged traces
// are byte-identical across the full shards × parallel grid. The cache
// must add no events, no decisions, and no reordering when disabled.
func TestMapCacheDisabledByteIdentity(t *testing.T) {
	var refCSV string
	var refTrace []byte
	first := true
	for _, shards := range shardCounts {
		for _, par := range []int{1, 8} {
			opt := shardQuick()
			opt.Shards = shards
			opt.Parallel = par
			opt.MapCacheBytes = 0
			var csv string
			trace := traceRun(t, opt, func(o Options) error {
				pts, err := Fig12(o)
				if err == nil {
					csv = Fig12CSV(pts)
				}
				return err
			})
			if first {
				refCSV, refTrace = csv, trace
				if len(trace) == 0 {
					t.Fatal("fig12 trace is empty; identity check is vacuous")
				}
				first = false
				continue
			}
			if csv != refCSV {
				t.Errorf("fig12 CSV at shards=%d parallel=%d diverged", shards, par)
			}
			if !bytes.Equal(trace, refTrace) {
				t.Errorf("fig12 trace at shards=%d parallel=%d diverged", shards, par)
			}
		}
	}
}

// TestMapCacheSweepDeterminism pins seed-reproducibility with the
// cache ENABLED: the budget sweep's CSV and merged trace must not
// depend on the worker count, and a repeat run must reproduce them
// byte for byte.
func TestMapCacheSweepDeterminism(t *testing.T) {
	run := func(par int) (string, []byte) {
		opt := Options{Ops: 48, Parallel: par}
		var csv string
		trace := traceRun(t, opt, func(o Options) error {
			pts, err := MapCache(o, quickBudgets())
			if err == nil {
				csv = MapCacheCSV(pts)
			}
			return err
		})
		return csv, trace
	}
	refCSV, refTrace := run(1)
	if len(refTrace) == 0 {
		t.Fatal("mapcache trace is empty; determinism check is vacuous")
	}
	for _, par := range []int{1, 8} {
		csv, trace := run(par)
		if csv != refCSV {
			t.Errorf("mapcache CSV at parallel=%d diverged:\n%s\nvs\n%s", par, csv, refCSV)
		}
		if !bytes.Equal(trace, refTrace) {
			t.Errorf("mapcache merged trace at parallel=%d diverged", par)
		}
	}
}

// TestMapCacheSweepShape sanity-checks the ablation's physics at test
// scale: the starved budget must actually miss, and bandwidth must not
// exceed the whole-map-resident baseline (a miss can only add time).
func TestMapCacheSweepShape(t *testing.T) {
	pts, err := MapCache(Options{Ops: 48}, quickBudgets())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	resident := pts[0]
	if resident.BudgetBytes != 0 || resident.Misses != 0 || resident.Hits != 0 {
		t.Fatalf("baseline point moved cache counters: %+v", resident)
	}
	starved := pts[1]
	if starved.Misses == 0 {
		t.Errorf("starved budget never missed: %+v", starved)
	}
	for _, p := range pts[1:] {
		if p.MBps > resident.MBps {
			t.Errorf("budget %dB beat the resident baseline (%.2f > %.2f MB/s): misses must cost time",
				p.BudgetBytes, p.MBps, resident.MBps)
		}
	}
	csv := MapCacheCSV(pts)
	if !strings.HasPrefix(csv, "budget_bytes,mbps,hit_rate,") {
		t.Errorf("CSV header drifted: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if out := RenderMapCache(pts); !strings.Contains(out, "resident") {
		t.Errorf("rendered sweep lacks the resident baseline row:\n%s", out)
	}
}

// TestChaosWithMapCache drives the fault-injection soak with a starved
// translation cache: map-page reads now cross the same RESET/offline
// recovery machinery as data reads, per seed, and the drive must still
// drain and verify.
func TestChaosWithMapCache(t *testing.T) {
	opt := shardQuick()
	opt.Shards = 2
	opt.MapCacheBytes = 2048
	pts, err := Chaos(opt, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d chaos points, want 3", len(pts))
	}
}
