package ssd

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/coro"
	"repro/internal/cpumodel"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/hwctrl"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/onfi"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/wave"
)

// ControllerKind selects which channel controller the SSD uses.
type ControllerKind uint8

const (
	// CtrlHW is the hardware baseline (the paper's "HW" / Cosmos+).
	CtrlHW ControllerKind = iota
	// CtrlBabolRTOS is BABOL on the RTOS software environment.
	CtrlBabolRTOS
	// CtrlBabolCoro is BABOL on the coroutine software environment.
	CtrlBabolCoro
)

func (k ControllerKind) String() string {
	switch k {
	case CtrlHW:
		return "HW"
	case CtrlBabolRTOS:
		return "RTOS"
	default:
		return "Coro"
	}
}

// BuildConfig describes a complete SSD: one or more channels, each with
// its own bus and controller, striped by a shared FTL.
type BuildConfig struct {
	Params         nand.Params    // package preset (geometry, timings)
	Channels       int            // independent channels (default 1)
	Ways           int            // LUNs per channel (defaults to preset wiring)
	RateMT         int            // channel speed in MT/s (default 200)
	Controller     ControllerKind // which controller drives the channel
	CPUMHz         int            // firmware clock for BABOL controllers (default 1000)
	ReservedBlocks int            // FTL over-provisioning per chip (default 2)
	Slots          int            // in-flight DRAM staging slots (default 2×ways)
	WithECC        bool
	// MapShards splits the FTL's L2P map into independently locked
	// LPN-range shards. 0 sizes the map to the kernel shard layout:
	// one map shard per cluster shard on sharded rigs, one per chip
	// otherwise. Pure concurrency/memory granularity — results are
	// identical at any count.
	MapShards int
	// MapCacheBytes bounds the DRAM budget of the FTL's translation
	// map (ftl.Config.MapCacheBytes): map pages are demand-paged under
	// this budget and misses are charged as NAND reads through the
	// ordinary ops path. 0 keeps the whole map resident (the legacy
	// model, byte-identical results).
	MapCacheBytes int64
	// UseCopyback relocates GC pages with NAND copyback (BABOL only).
	UseCopyback bool
	// SuspendReads lets host reads preempt GC erases (BABOL only).
	SuspendReads bool
	Record       bool // capture the channel waveform
	// TxnQueue overrides BABOL's transaction scheduler (default RR).
	TxnQueue sched.TxnQueue
	// Tracer receives the controllers' event streams; multi-channel rigs
	// tag each channel's events with its index. nil disables tracing.
	// The hardware baseline controller emits no events.
	//
	// Concurrency contract: a rig is single-threaded (everything runs on
	// its kernel's goroutine), so the Tracer sees strictly sequential
	// calls from this rig — but when many rigs run concurrently (the
	// exp package's parallel sweeps), each rig must get its own Tracer;
	// give each rig a private obs.Buffer and merge after the fact rather
	// than sharing one sink.
	Tracer obs.Tracer
	// Observe additionally aggregates the event stream into Rig.Metrics
	// (it composes with Tracer: both sinks see every event).
	Observe bool
	// Faults, when non-nil, arms the plan's campaigns on the LUNs they
	// target (global chip numbering: channel*Ways + way). Fault hits are
	// emitted as obs.KindFault events on the targeted chip's channel.
	Faults *fault.Plan
	// NoCoroPool disables the per-rig coroutine pool: every operation
	// gets a fresh goroutine, as before pooling existed. Virtual-time
	// results are identical either way (the pooled-determinism tests
	// compare the two paths byte for byte); the switch costs ~5 allocs
	// and a goroutine spawn per operation.
	NoCoroPool bool
	// Shards > 0 splits the rig across event-loop shards: the host
	// complex on shard 0 and contiguous channel groups on the rest, run
	// concurrently under a conservative time-window cluster (see
	// sim.Cluster). Shards is capped at 1+Channels; Shards == 1 keeps
	// the windowed protocol on a single kernel (the ablation baseline).
	// Results are byte-identical at every shard count for a given
	// HostHop; sharded rigs must be driven with Rig.Run, not Rig.Kernel.
	Shards int
	// HostHop is the modeled host↔channel-controller hop latency — the
	// latency of crossing the interconnect between the host-side
	// assembly (FTL, ECC, slot management) and a channel controller. It
	// doubles as the cluster's lookahead: a window of HostHop can run on
	// every shard in parallel. Defaults to 1µs when Shards > 0; setting
	// HostHop > 0 with Shards == 0 shards fully (1+Channels).
	HostHop sim.Duration
	// ShardTelemetry arms the cluster's shard instrument (sharded rigs
	// only): per-shard window occupancy and barrier/exec wall-clock,
	// per-(src,dst) mailbox accounting, and a flight recorder of recent
	// windows, all readable live via Rig.Telemetry.Snapshot while Run is
	// in flight. Mirrors the fault injector's nil-check-disarmed idiom:
	// off costs one branch per window, on stays allocation-free in
	// steady state, and armed telemetry never changes simulation results
	// or traces (the determinism tests compare on vs. off byte for
	// byte).
	ShardTelemetry bool
	// TraceShardWindows additionally flushes the flight recorder into
	// the rig's trace stream when Run completes: one
	// obs.KindShardWindow event per (window, busy shard) plus
	// obs.KindShardMailbox aggregates — the input to analyze's shard
	// report. Implies ShardTelemetry. Kept separate because the emitted
	// events describe the shard layout, so (unlike everything else in
	// the trace) they vary with the shard count; the telemetry-off
	// byte-identity contract applies to ShardTelemetry alone.
	TraceShardWindows bool
	// FlightRecorder sets the flight-recorder depth in windows;
	// non-positive means sim.DefaultFlightRecorder.
	FlightRecorder int
}

// Rig is a fully wired SSD plus handles to its parts. The singular
// Channel/Babol/HW fields alias channel 0 for the common single-channel
// case; the slices cover every channel.
type Rig struct {
	Kernel  *sim.Kernel
	Channel *bus.Channel
	DRAM    *dram.Buffer
	SSD     *SSD
	FTL     *ftl.FTL

	Channels []*bus.Channel

	// Babol is non-nil for BABOL controller kinds.
	Babol  *core.Controller
	Babols []*core.Controller
	// HW is non-nil for the hardware baseline.
	HW  *hwctrl.Controller
	HWs []*hwctrl.Controller

	// Metrics is the cross-channel roll-up of the controllers' event
	// streams; non-nil iff BuildConfig.Observe was set.
	Metrics *obs.Metrics

	// CoroPool is the rig's shared operation-coroutine pool (nil for
	// hardware-only rigs or when BuildConfig.NoCoroPool is set). All
	// BABOL controllers on the rig draw from it; it lives across
	// operations, GC cycles, and fault-recovery reissues, and is closed
	// by Rig.Close after the controllers have aborted their operations.
	// Sharded rigs keep one pool per shard (a pool is single-threaded,
	// and each shard is its own goroutine); CoroPool then aliases the
	// first of CoroPools.
	CoroPool *coro.Pool
	// CoroPools lists every per-shard pool of a sharded rig.
	CoroPools []*coro.Pool

	// Cluster is non-nil for sharded rigs (BuildConfig.Shards > 0):
	// Kernel is then the host shard's kernel, and the rig must be driven
	// with Run (which runs the cluster and folds the per-domain trace
	// buffers into Tracer/Metrics), never Kernel.Run alone.
	Cluster *sim.Cluster

	// Telemetry is the cluster's shard instrument; non-nil iff
	// BuildConfig.ShardTelemetry (or TraceShardWindows) was set on a
	// sharded rig. Its Snapshot is safe to read from any goroutine while
	// Run is in flight — the live feed behind the /shards endpoint.
	Telemetry *sim.Telemetry

	// sink and domBufs implement the sharded trace discipline: each
	// domain traces into its own buffer (so no Tracer sees calls from
	// two shards), and Run merges them into sink by (time, domain).
	sink    obs.Tracer
	domBufs []*obs.Buffer
	// tracer is the resolved event sink of an unsharded rig (cfg.Tracer
	// composed with Metrics); HostTracer hands it to host-side emitters.
	tracer obs.Tracer

	// traceWindows, shardSeqEmitted, and mboxEmitted implement the
	// TraceShardWindows flush: each Run emits only the windows recorded
	// since the last flush and per-Run mailbox post deltas, so repeated
	// Runs never double-count in a replayed stream.
	traceWindows    bool
	shardSeqEmitted uint64
	mboxEmitted     map[[2]int]uint64
}

// Close releases controller resources: in-flight operation coroutines
// are aborted, then the rig's coroutine pool (if any) stops its parked
// workers, returning the process goroutine count to baseline.
func (r *Rig) Close() {
	for _, c := range r.Babols {
		c.Close()
	}
	if len(r.CoroPools) > 0 {
		for _, p := range r.CoroPools {
			p.Close()
		}
		return
	}
	if r.CoroPool != nil {
		r.CoroPool.Close()
	}
}

// Build assembles an SSD per cfg.
func Build(cfg BuildConfig) (*Rig, error) {
	if cfg.Params.Name == "" {
		cfg.Params = nand.Hynix()
	}
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	if cfg.Ways == 0 {
		cfg.Ways = cfg.Params.LUNsPerChannel
	}
	if cfg.RateMT == 0 {
		cfg.RateMT = 200
	}
	if cfg.CPUMHz == 0 {
		cfg.CPUMHz = 1000
	}
	if cfg.ReservedBlocks == 0 {
		cfg.ReservedBlocks = 2
	}
	if cfg.Slots == 0 {
		cfg.Slots = 2 * cfg.Ways * cfg.Channels
	}

	shards, hop := cfg.Shards, cfg.HostHop
	if shards == 0 && hop > 0 {
		shards = 1 + cfg.Channels
	}
	if shards > 0 && hop == 0 {
		hop = sim.Microsecond
	}
	if max := 1 + cfg.Channels; shards > max {
		shards = max
	}

	var cluster *sim.Cluster
	var hostDom *sim.Domain
	var k *sim.Kernel
	if shards > 0 {
		cluster = sim.NewCluster(shards, hop)
		hostDom = cluster.AddDomain(0)
		k = hostDom.Kernel()
	} else {
		k = sim.NewKernel()
	}
	geo := cfg.Params.Geometry
	slotSize := geo.PageBytes + geo.SpareBytes
	memSize := cfg.Slots*slotSize + cfg.Channels*(128<<10) // slots + per-controller scratch
	mem := dram.New(memSize)

	mapShards := cfg.MapShards
	if mapShards == 0 && shards > 0 {
		// Size the map to the kernel shard layout: lock domains in the
		// translation map line up one-to-one with the cluster's event
		// domains, so a sharded rig never funnels its channels through
		// fewer map locks than it has kernels.
		mapShards = shards
	}
	f, err := ftl.NewWithConfig(ftl.Config{
		Geometry: geo, Chips: cfg.Ways * cfg.Channels,
		ReservedBlocks: cfg.ReservedBlocks,
		MapShards:      mapShards, MapCacheBytes: cfg.MapCacheBytes,
	})
	if err != nil {
		return nil, err
	}
	rig := &Rig{Kernel: k, DRAM: mem, FTL: f, Cluster: cluster}

	tracer := cfg.Tracer
	if cfg.Observe {
		rig.Metrics = obs.NewMetrics()
		if tracer != nil {
			tracer = obs.Multi{rig.Metrics, tracer}
		} else {
			tracer = rig.Metrics
		}
	}
	rig.tracer = tracer
	if cluster != nil && tracer != nil {
		// Sharded trace discipline: one buffer per domain, merged into
		// the real sink (including Metrics) by Rig.Run — a Tracer must
		// never see calls from two shards.
		rig.sink = tracer
		rig.domBufs = make([]*obs.Buffer, 1+cfg.Channels)
		for i := range rig.domBufs {
			rig.domBufs[i] = &obs.Buffer{}
		}
	}

	poolByShard := make(map[int]*coro.Pool)
	var backends []Backend
	for c := 0; c < cfg.Channels; c++ {
		chK := k
		var chDom *sim.Domain
		chTracer := tracer
		if cluster != nil {
			chDom = cluster.AddDomain(shardOf(c, cfg.Channels, shards))
			chK = chDom.Kernel()
			chTracer = domainTracer(rig.domBufs, 1+c)
		}
		var rec *wave.Recorder
		if cfg.Record {
			rec = wave.NewRecorder()
		}
		ch, err := bus.New(chK, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: cfg.RateMT}, onfi.DefaultTiming(), rec)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Ways; i++ {
			lun, err := nand.NewLUN(cfg.Params)
			if err != nil {
				return nil, err
			}
			if cfg.Faults != nil {
				if inj := cfg.Faults.Injector(c*cfg.Ways+i, obs.OnChannel(chTracer, c), i); inj != nil {
					lun.SetFaults(inj)
				}
			}
			ch.Attach(lun)
		}
		rig.Channels = append(rig.Channels, ch)

		switch cfg.Controller {
		case CtrlHW:
			hw := hwctrl.New(chK, ch, mem)
			rig.HWs = append(rig.HWs, hw)
			backends = append(backends, NewHWBackend(hw))
		case CtrlBabolRTOS, CtrlBabolCoro:
			profile := cpumodel.RTOS()
			if cfg.Controller == CtrlBabolCoro {
				profile = cpumodel.Coro()
			}
			cpu, err := cpumodel.New(chK, cfg.CPUMHz, profile)
			if err != nil {
				return nil, err
			}
			// One pool per shard, shared by the channel controllers on
			// it: all of a shard's controllers run on one goroutine, so
			// the pool's single-threaded contract holds. Unsharded rigs
			// are one implicit shard.
			shard := 0
			if cluster != nil {
				shard = shardOf(c, cfg.Channels, shards)
			}
			pool := poolByShard[shard]
			if pool == nil && !cfg.NoCoroPool {
				pool = coro.NewPool()
				poolByShard[shard] = pool
				if cluster != nil {
					rig.CoroPools = append(rig.CoroPools, pool)
				}
				if rig.CoroPool == nil {
					rig.CoroPool = pool
				}
			}
			ctrl, err := core.New(core.Config{
				Kernel: chK, Channel: ch, DRAM: mem, CPU: cpu, TxnQueue: cfg.TxnQueue,
				Tracer:   obs.OnChannel(chTracer, c),
				CoroPool: pool, DisableCoroPool: cfg.NoCoroPool,
			})
			if err != nil {
				return nil, err
			}
			rig.Babols = append(rig.Babols, ctrl)
			backends = append(backends, NewBabolBackend(ctrl))
		default:
			return nil, fmt.Errorf("ssd: unknown controller kind %d", cfg.Controller)
		}
		if cluster != nil {
			// Everything past this point talks to the channel through the
			// cross-domain funnel.
			backends[c] = wrapShard(backends[c], hostDom, chDom)
		}
	}
	if cluster != nil && (cfg.ShardTelemetry || cfg.TraceShardWindows) {
		// Arm after the domain graph is complete — the instrument sizes
		// its mailbox matrix to the domain count at arming time.
		rig.Telemetry = cluster.ArmTelemetry(cfg.FlightRecorder)
		rig.traceWindows = cfg.TraceShardWindows
	}
	rig.Channel = rig.Channels[0]
	if len(rig.Babols) > 0 {
		rig.Babol = rig.Babols[0]
	}
	if len(rig.HWs) > 0 {
		rig.HW = rig.HWs[0]
	}
	var backend Backend
	if cfg.Channels == 1 {
		backend = backends[0]
	} else {
		backend = NewMultiBackend(cfg.Ways, backends)
	}

	ssdTracer := tracer
	if cluster != nil {
		// The SSD assembly is host-domain code; its recovery events go
		// through the host's buffer like everything else.
		ssdTracer = domainTracer(rig.domBufs, 0)
	}
	drive, err := New(Config{
		Kernel: k, Backend: backend, FTL: f, DRAM: mem,
		SlotBase: 0, Slots: cfg.Slots, WithECC: cfg.WithECC,
		UseCopyback: cfg.UseCopyback, SuspendReads: cfg.SuspendReads,
		Tracer: ssdTracer,
	})
	if err != nil {
		return nil, err
	}
	rig.SSD = drive
	return rig, nil
}
