// Customop: write a brand-new, non-standard flash operation in a few
// lines of plain Go — the paper's core promise. The operation below is a
// "verified read": it reads a page, and if the caller's check rejects
// the data, it re-reads at each vendor read-retry voltage level (SET
// FEATURES) until the data verifies. No hardware change, no Verilog:
// just software composing the five µFSMs.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/babol"
	"repro/internal/bus"
	"repro/internal/onfi"
)

// scrubBlock is a fully custom maintenance operation an SSD architect
// might invent: it reads every page of a block and reports which pages
// still verify — the building block of a background scrubber. It is
// written directly against the Ctx µFSM API to show the raw layer the
// library operations are built from.
func scrubBlock(block int, pageBytes int, verify func(page int, data []byte) bool, bad *[]int) babol.OpFunc {
	return func(ctx *babol.Ctx) error {
		chip := ctx.ChipIndex()
		g := ctx.Geometry()
		scratch, err := ctx.Scratch(pageBytes)
		if err != nil {
			return err
		}
		for p := 0; p < g.PagesPerBlk; p++ {
			// Compose the READ waveform from µFSM instructions: chip
			// select, command+address latch burst, confirm.
			ctx.Chip(bus.Mask(chip))
			var latches []onfi.Latch
			latches = append(latches, onfi.CmdLatch(onfi.CmdRead1))
			latches = append(latches, g.AddrLatches(onfi.Addr{Row: onfi.RowAddr{Block: block, Page: p}})...)
			latches = append(latches, onfi.CmdLatch(onfi.CmdRead2))
			ctx.CmdAddr(latches...)
			if res := ctx.Submit(); res.Err != nil {
				return res.Err
			}
			// Poll tR out via the nested READ STATUS helper.
			for {
				s, err := babol.ReadStatus(ctx, chip)
				if err != nil {
					return err
				}
				if s&onfi.StatusRDY != 0 {
					break
				}
			}
			// Column change + transfer into our scratch window.
			cb := onfi.EncodeColAddr(0)
			ctx.CmdAddr(
				onfi.CmdLatch(onfi.CmdChangeReadCol1),
				onfi.AddrLatch(cb[0]), onfi.AddrLatch(cb[1]),
				onfi.CmdLatch(onfi.CmdChangeReadCol2),
			)
			ctx.ReadData(scratch.Addr, pageBytes)
			if res := ctx.Submit(); res.Err != nil {
				return res.Err
			}
			if !verify(p, scratch.Bytes) {
				*bad = append(*bad, p)
			}
		}
		return nil
	}
}

func main() {
	pkg := babol.Hynix()
	pkg.RawBitErrorPer512B = 12 // an aggressive error model for the demo
	sys, err := babol.NewSystem(babol.SystemConfig{
		Package: pkg, Ways: 1, DisableCapture: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Seed a block with a known pattern, then age it badly.
	const block, pageBytes = 7, 16384
	want := bytes.Repeat([]byte{0xA5}, pageBytes)
	for p := 0; p < pkg.Geometry.PagesPerBlk; p++ {
		if err := sys.Chip(0).SeedPage(onfi.RowAddr{Block: block, Page: p}, want); err != nil {
			log.Fatal(err)
		}
	}
	sys.Chip(0).Wear(block, pkg.MaxPECycles*3/4)

	// 1. Scrub the worn block with the custom operation: most pages will
	//    fail verification at the default read voltage.
	var badPages []int
	verify := func(_ int, data []byte) bool { return bytes.Equal(data, want) }
	sys.Start(babol.OpRequest{
		Func: scrubBlock(block, pageBytes, verify, &badPages),
		Chip: 0,
		Done: func(err error) {
			if err != nil {
				log.Fatal("scrub failed: ", err)
			}
		},
	})
	sys.Run()
	fmt.Printf("scrub of worn block %d: %d/%d pages fail at default voltage\n",
		block, len(badPages), pkg.Geometry.PagesPerBlk)

	// 2. Recover one failing page with the library's READ RETRY
	//    operation, which walks the SET FEATURES voltage table.
	if len(badPages) == 0 {
		fmt.Println("nothing to recover — try a higher error rate")
		return
	}
	target := onfi.Addr{Row: onfi.RowAddr{Block: block, Page: badPages[0]}}
	start := sys.Now()
	sys.Start(babol.OpRequest{
		Func: babol.ReadWithRetry(target, 0, pageBytes, func(data []byte) bool {
			return bytes.Equal(data, want)
		}),
		Chip: 0,
		Done: func(err error) {
			if err != nil {
				log.Fatal("read retry failed: ", err)
			}
		},
	})
	sys.Run()
	got, _ := sys.DRAM().Read(0, pageBytes)
	if !bytes.Equal(got, want) {
		log.Fatal("retry returned corrupt data")
	}
	fmt.Printf("READ RETRY recovered page %d cleanly in %v (virtual)\n",
		badPages[0], sys.Now().Sub(start))
	fmt.Printf("optimal retry level for that page: %d\n",
		sys.Chip(0).OptimalRetryLevel(uint32(block*pkg.Geometry.PagesPerBlk+badPages[0])))
}
