// Bringup: the §IV-C story end to end. Every package instance on a real
// board needs its own initialization — reset, identity check, geometry
// discovery from the ONFI parameter page, and per-chip DQS phase
// calibration (trace lengths differ per socket). BABOL expresses the
// whole flow as ordinary software composed from the same five µFSMs,
// where a hardware controller would need dedicated boot logic.
//
// The demo builds a channel whose four chips have different optimal
// phase trims (simulating board variation), shows that reads are garbage
// before calibration, runs the bring-up operation on every chip, and
// verifies clean reads afterwards.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/babol"
	"repro/internal/nand"
	"repro/internal/onfi"
)

func main() {
	// Four chips; each instance's clean DQS window sits somewhere else
	// (phase 8 is the power-on register default — chip 1 happens to need
	// no trimming, the others do).
	phases := []int{3, 8, 12, 5}
	sys, err := babol.NewSystem(babol.SystemConfig{
		Ways: 4,
		PerChip: func(i int, base babol.Params) babol.Params {
			base.PhaseOptimal = phases[i]
			return base
		},
		DisableCapture: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Seed a known page on every chip.
	marker := bytes.Repeat([]byte{0xC3}, 512)
	for c := 0; c < sys.Chips(); c++ {
		if err := sys.Chip(c).SeedPage(onfi.RowAddr{Block: 1}, marker); err != nil {
			log.Fatal(err)
		}
	}

	// Before calibration: chips whose optimum is far from the default
	// phase return corrupted data.
	readOK := func(chip int) bool {
		ok := false
		sys.Start(babol.OpRequest{
			Func: babol.ReadPage(onfi.Addr{Row: onfi.RowAddr{Block: 1}}, 0, 512),
			Chip: chip,
			Done: func(err error) {
				if err != nil {
					return
				}
				got, _ := sys.DRAM().Read(0, 512)
				ok = bytes.Equal(got, marker)
			},
		})
		sys.Run()
		return ok
	}
	fmt.Println("pre-calibration reads:")
	for c := 0; c < sys.Chips(); c++ {
		fmt.Printf("  chip %d (optimal phase %2d): clean=%v\n", c, phases[c], readOK(c))
	}

	// Bring-up per chip: RESET + READ ID, calibrate the phase, then
	// discover the geometry from the CRC-protected parameter page.
	fmt.Println("\nbring-up:")
	for c := 0; c < sys.Chips(); c++ {
		var chosen int
		var parsed nand.ParsedParamPage
		c := c
		bring := func(ctx *babol.Ctx) error {
			if err := babol.BootSequence(babol.Hynix().IDBytes[:2], 0x15)(ctx); err != nil {
				return err
			}
			if err := babol.CalibratePhase(16, &chosen)(ctx); err != nil {
				return err
			}
			return babol.ReadParameterPage(&parsed)(ctx)
		}
		var opErr error
		sys.Start(babol.OpRequest{Func: bring, Chip: c, Done: func(err error) { opErr = err }})
		sys.Run()
		if opErr != nil {
			log.Fatalf("chip %d bring-up: %v", c, opErr)
		}
		fmt.Printf("  chip %d: phase trimmed to %2d (optimum %2d), %s %s, %d×%d pages of %d B\n",
			c, chosen, phases[c], parsed.Manufacturer, parsed.Model,
			parsed.Geometry.BlocksPerLUN, parsed.Geometry.PagesPerBlk, parsed.Geometry.PageBytes)
	}

	// After calibration every chip reads clean.
	fmt.Println("\npost-calibration reads:")
	allOK := true
	for c := 0; c < sys.Chips(); c++ {
		ok := readOK(c)
		allOK = allOK && ok
		fmt.Printf("  chip %d: clean=%v\n", c, ok)
	}
	if !allOK {
		log.Fatal("calibration failed to fix all chips")
	}
	fmt.Printf("\nboard ready: %d chips calibrated at t=%v (virtual)\n", sys.Chips(), sys.Now())
}
