package nand

import (
	"bytes"
	"testing"

	"repro/internal/onfi"
	"repro/internal/sim"
)

// readPage drives a full READ through the protocol and returns the data.
func readPage(t *testing.T, l *LUN, start sim.Time, row onfi.RowAddr, n int) []byte {
	t.Helper()
	latchRead(t, l, start, onfi.Addr{Row: row})
	done := start.Add(2 * l.Params().TR) // jitter-safe margin
	got, err := l.DataOut(done, n)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFreshBlocksReadClean(t *testing.T) {
	l := newTestLUN(t)
	row := onfi.RowAddr{Block: 0, Page: 0}
	want := bytes.Repeat([]byte{0x55}, 64)
	if err := l.SeedPage(row, want); err != nil {
		t.Fatal(err)
	}
	got := readPage(t, l, 0, row, 64)
	if !bytes.Equal(got, want) {
		t.Error("fresh block read back with errors")
	}
	if l.Stats().InjectedBitErrors != 0 {
		t.Error("errors injected into fresh block")
	}
}

func TestWornBlocksInjectErrors(t *testing.T) {
	p := smallParams()
	p.RawBitErrorPer512B = 8 // aggressive, so small pages still see flips
	l, err := NewLUN(p)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a page whose optimal retry level differs from the default
	// level 0, so reading at the default voltage sees drift errors.
	row := onfi.RowAddr{Block: 1, Page: 0}
	for p := 0; p < l.Params().Geometry.PagesPerBlk; p++ {
		row.Page = p
		if l.OptimalRetryLevel(l.rowIndex(row)) != 0 {
			break
		}
	}
	want := bytes.Repeat([]byte{0x55}, 256)
	if err := l.SeedPage(row, want); err != nil {
		t.Fatal(err)
	}
	l.Wear(1, p.MaxPECycles) // end of life
	got := readPage(t, l, 0, row, 256)
	if bytes.Equal(got, want) {
		t.Error("end-of-life block read back clean")
	}
	if l.Stats().InjectedBitErrors == 0 {
		t.Error("no injected errors counted")
	}
}

func TestErrorInjectionDeterministic(t *testing.T) {
	mk := func() []byte {
		p := smallParams()
		p.RawBitErrorPer512B = 8
		l, _ := NewLUN(p)
		row := onfi.RowAddr{Block: 1, Page: 0}
		l.SeedPage(row, bytes.Repeat([]byte{0x55}, 256))
		l.Wear(1, p.MaxPECycles)
		return readPage(t, l, 0, row, 256)
	}
	if !bytes.Equal(mk(), mk()) {
		t.Error("error injection is not deterministic")
	}
}

func TestReadRetryReducesErrors(t *testing.T) {
	p := smallParams()
	p.RawBitErrorPer512B = 16
	l, err := NewLUN(p)
	if err != nil {
		t.Fatal(err)
	}
	row := onfi.RowAddr{Block: 2, Page: 1}
	want := bytes.Repeat([]byte{0x55}, 256)
	if err := l.SeedPage(row, want); err != nil {
		t.Fatal(err)
	}
	l.Wear(2, p.MaxPECycles/2)

	countErrs := func(got []byte) int {
		n := 0
		for i := range got {
			b := got[i] ^ want[i]
			for ; b != 0; b &= b - 1 {
				n++
			}
		}
		return n
	}

	opt := l.OptimalRetryLevel(l.rowIndex(row))
	// Pick a clearly wrong level.
	wrong := (opt + p.ReadRetryLevels/2) % p.ReadRetryLevels

	setLevel := func(now sim.Time, lvl int) sim.Time {
		ls := []onfi.Latch{onfi.CmdLatch(onfi.CmdSetFeatures), onfi.AddrLatch(byte(onfi.FeatReadRetry))}
		if err := l.Latch(now, ls); err != nil {
			t.Fatal(err)
		}
		if err := l.DataIn(now, []byte{byte(lvl), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
		return now.Add(sim.Microsecond)
	}

	now := setLevel(0, wrong)
	atWrong := countErrs(readPage(t, l, now, row, 256))
	now = now.Add(2 * p.TR)
	now = setLevel(now, opt)
	atOpt := countErrs(readPage(t, l, now, row, 256))
	if atOpt >= atWrong {
		t.Errorf("read retry did not help: optimal level %d errors, wrong level %d errors", atOpt, atWrong)
	}
}

func TestOptimalRetryLevelStable(t *testing.T) {
	l := newTestLUN(t)
	for row := uint32(0); row < 20; row++ {
		a, b := l.OptimalRetryLevel(row), l.OptimalRetryLevel(row)
		if a != b {
			t.Fatal("optimal retry level unstable")
		}
		if a < 0 || a >= l.Params().ReadRetryLevels {
			t.Fatalf("optimal retry level %d out of range", a)
		}
	}
}

func TestWearAccessors(t *testing.T) {
	l := newTestLUN(t)
	l.Wear(3, 42)
	if l.EraseCount(3) != 42 {
		t.Error("Wear did not apply")
	}
	l.Wear(-1, 5) // must not panic
	l.Wear(1000, 5)
	if l.EraseCount(-1) != 0 || l.EraseCount(1000) != 0 {
		t.Error("out-of-range EraseCount should be zero")
	}
}
